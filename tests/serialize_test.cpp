/**
 * @file
 * Tests for profile serialization: round-trips, merging, and error
 * handling — including a property test that every query agrees after
 * a save/load cycle.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "profile/serialize.hpp"
#include "testutil.hpp"
#include "workloads/workloads.hpp"

namespace pstest = pathsched::testing;

namespace pathsched::profile {
namespace {

using ir::BlockId;

TEST(SerializeEdge, RoundTripExactCounts)
{
    const auto w = workloads::makeCorr();
    EdgeProfiler ep(w.program);
    interp::Interpreter interp(w.program);
    interp.addListener(&ep);
    interp.run(w.train);

    const std::string text = toText(ep);
    EXPECT_NE(text.find("edgeprofile v1"), std::string::npos);

    EdgeProfiler loaded(w.program);
    std::string error;
    ASSERT_TRUE(fromText(text, loaded, error)) << error;

    for (BlockId b = 0; b < w.program.proc(0).blocks.size(); ++b)
        EXPECT_EQ(loaded.blockFreq(0, b), ep.blockFreq(0, b));
    ep.forEachEdge([&](ir::ProcId p, BlockId from, BlockId to,
                       uint64_t n) {
        EXPECT_EQ(loaded.edgeFreq(p, from, to), n);
    });
}

TEST(SerializeEdge, MergingAddsCounts)
{
    const auto w = workloads::makeAlt();
    EdgeProfiler ep(w.program);
    interp::Interpreter interp(w.program);
    interp.addListener(&ep);
    interp.run(w.train);
    const std::string text = toText(ep);

    EdgeProfiler merged(w.program);
    std::string error;
    ASSERT_TRUE(fromText(text, merged, error));
    ASSERT_TRUE(fromText(text, merged, error)); // load twice
    EXPECT_EQ(merged.blockFreq(0, 1), 2 * ep.blockFreq(0, 1));
}

TEST(SerializeEdge, RejectsGarbage)
{
    const auto w = workloads::makeAlt();
    EdgeProfiler ep(w.program);
    std::string error;
    EXPECT_FALSE(fromText("not a profile", ep, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fromText("edgeprofile v1\nbogus 1 2 3\n", ep, error));
}

TEST(SerializePath, HeaderCarriesParameters)
{
    const auto w = workloads::makeCorr();
    PathProfileParams params;
    params.maxBranches = 7;
    params.maxBlocks = 20;
    PathProfiler pp(w.program, params);
    interp::Interpreter interp(w.program);
    interp.addListener(&pp);
    interp.run(w.train);
    const std::string text = toText(pp);
    EXPECT_NE(text.find("pathprofile v1 7 20 0"), std::string::npos);

    PathProfiler loaded(w.program, params);
    std::string error;
    EXPECT_TRUE(fromText(text, loaded, error)) << error;
}

TEST(SerializePath, RejectsParameterMismatch)
{
    const auto w = workloads::makeAlt();
    PathProfiler pp(w.program, {});
    interp::Interpreter interp(w.program);
    interp.addListener(&pp);
    interp.run(w.train);
    const std::string text = toText(pp);

    PathProfileParams other;
    other.maxBranches = 3;
    PathProfiler loaded(w.program, other);
    std::string error;
    EXPECT_FALSE(fromText(text, loaded, error));
    EXPECT_NE(error.find("parameters"), std::string::npos);
}

TEST(SerializePath, RejectsOverBudgetRecord)
{
    const auto w = workloads::makeAlt();
    PathProfiler pp(w.program, {});
    std::string error;
    // Block 99 does not exist in alt's main.
    const std::string bogus =
        "pathprofile v1 15 64 0\npath 0 5 2 99 1\n";
    EXPECT_FALSE(fromText(bogus, pp, error));
}

// ---------------------------------------------------------------------
// Hardening: corrupt profile text must be rejected with a precise
// error, never wrapped (negative counts), silently truncated, or let
// through to index profiler state out of range.

TEST(SerializeEdge, RejectsOutOfRangeIds)
{
    const auto w = workloads::makeAlt();
    std::string error;
    {
        // Proc 99 does not exist.
        EdgeProfiler ep(w.program);
        EXPECT_FALSE(
            fromText("edgeprofile v1\nblock 99 0 1\n", ep, error));
        EXPECT_NE(error.find("line 2"), std::string::npos) << error;
        EXPECT_NE(error.find("out-of-range"), std::string::npos);
    }
    {
        // Block 99 does not exist in proc 0.
        EdgeProfiler ep(w.program);
        EXPECT_FALSE(
            fromText("edgeprofile v1\nblock 0 99 1\n", ep, error));
    }
    {
        // Edge records must range-check both endpoints too.
        EdgeProfiler ep(w.program);
        EXPECT_FALSE(
            fromText("edgeprofile v1\nedge 0 0 99 1\n", ep, error));
        EXPECT_FALSE(
            fromText("edgeprofile v1\nedge 0 99 0 1\n", ep, error));
    }
}

TEST(SerializeEdge, RejectsNegativeAndOverflowingCounts)
{
    const auto w = workloads::makeAlt();
    std::string error;
    EdgeProfiler ep(w.program);
    // istream >> uint64_t would wrap "-5" to 2^64-5; from_chars must
    // reject the sign outright.
    EXPECT_FALSE(fromText("edgeprofile v1\nblock 0 1 -5\n", ep, error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_FALSE(fromText(
        "edgeprofile v1\nblock 0 1 99999999999999999999999\n", ep,
        error));
    EXPECT_FALSE(fromText("edgeprofile v1\nblock 0 -1 5\n", ep, error));
    // Sanity: the uncorrupted record is fine.
    EXPECT_TRUE(fromText("edgeprofile v1\nblock 0 1 5\n", ep, error))
        << error;
}

TEST(SerializeEdge, RejectsTruncatedAndOverlongRecords)
{
    const auto w = workloads::makeAlt();
    std::string error;
    EdgeProfiler ep(w.program);
    EXPECT_FALSE(fromText("edgeprofile v1\nblock 0 1\n", ep, error));
    EXPECT_FALSE(fromText("edgeprofile v1\nedge 0 0 1\n", ep, error));
    EXPECT_FALSE(
        fromText("edgeprofile v1\nblock 0 1 5 junk\n", ep, error));
}

TEST(SerializePath, RejectsCorruptRecords)
{
    const auto w = workloads::makeAlt();
    std::string error;
    {
        // Unknown proc id: reject, do not abort.
        PathProfiler pp(w.program, {});
        EXPECT_FALSE(fromText("pathprofile v1 15 64 0\npath 99 5 1 0\n",
                              pp, error));
    }
    {
        // Truncated: record declares 3 ids but carries 2.
        PathProfiler pp(w.program, {});
        EXPECT_FALSE(fromText("pathprofile v1 15 64 0\npath 0 5 3 0 1\n",
                              pp, error));
        EXPECT_NE(error.find("truncated"), std::string::npos) << error;
    }
    {
        // Declared length far beyond the block budget must be rejected
        // before any allocation sized by it.
        PathProfiler pp(w.program, {});
        EXPECT_FALSE(fromText(
            "pathprofile v1 15 64 0\npath 0 5 99999999999 0\n", pp,
            error));
    }
    {
        // Zero-length and negative-count records.
        PathProfiler pp(w.program, {});
        EXPECT_FALSE(
            fromText("pathprofile v1 15 64 0\npath 0 5 0\n", pp, error));
        EXPECT_FALSE(fromText("pathprofile v1 15 64 0\npath 0 -5 1 0\n",
                              pp, error));
    }
}

/** Property: save/load is invisible to every pathFreq query. */
class PathRoundTrip : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(PathRoundTrip, QueriesAgree)
{
    pstest::GeneratedProgram gen = pstest::makeRandomProgram(GetParam());
    PathProfiler pp(gen.program, {});
    interp::Interpreter interp(gen.program);
    interp.addListener(&pp);
    interp.run(gen.input);

    const std::string text = toText(pp);
    PathProfiler loaded(gen.program, {});
    std::string error;
    ASSERT_TRUE(fromText(text, loaded, error)) << error;

    pp.finalize();
    loaded.finalize();
    EXPECT_EQ(loaded.numPaths(), pp.numPaths());

    // Every recorded window (and its suffixes via subtree sums) must
    // answer identically.
    pp.forEachPath([&](ir::ProcId p, const std::vector<BlockId> &seq,
                       uint64_t) {
        EXPECT_EQ(loaded.pathFreq(p, seq), pp.pathFreq(p, seq));
        if (seq.size() > 1) {
            const std::vector<BlockId> suffix(seq.begin() + 1,
                                              seq.end());
            EXPECT_EQ(loaded.pathFreq(p, suffix),
                      pp.pathFreq(p, suffix));
        }
    });
    for (const auto &proc : gen.program.procs) {
        for (BlockId b = 0; b < proc.blocks.size(); ++b)
            EXPECT_EQ(loaded.blockFreq(proc.id, b),
                      pp.blockFreq(proc.id, b));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathRoundTrip,
                         ::testing::Range<uint64_t>(1, 11));

} // namespace
} // namespace pathsched::profile
