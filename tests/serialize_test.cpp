/**
 * @file
 * Tests for profile serialization: round-trips, merging, and error
 * handling — including a property test that every query agrees after
 * a save/load cycle.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "interp/interpreter.hpp"
#include "profile/serialize.hpp"
#include "profile/validate.hpp"
#include "support/rng.hpp"
#include "testutil.hpp"
#include "workloads/workloads.hpp"

namespace pstest = pathsched::testing;

namespace pathsched::profile {
namespace {

using ir::BlockId;

TEST(SerializeEdge, RoundTripExactCounts)
{
    const auto w = workloads::makeCorr();
    EdgeProfiler ep(w.program);
    interp::Interpreter interp(w.program);
    interp.addListener(&ep);
    interp.run(w.train);

    const std::string text = toText(ep);
    EXPECT_NE(text.find("edgeprofile v1"), std::string::npos);

    EdgeProfiler loaded(w.program);
    std::string error;
    ASSERT_TRUE(fromText(text, loaded, error)) << error;

    for (BlockId b = 0; b < w.program.proc(0).blocks.size(); ++b)
        EXPECT_EQ(loaded.blockFreq(0, b), ep.blockFreq(0, b));
    ep.forEachEdge([&](ir::ProcId p, BlockId from, BlockId to,
                       uint64_t n) {
        EXPECT_EQ(loaded.edgeFreq(p, from, to), n);
    });
}

TEST(SerializeEdge, MergingAddsCounts)
{
    const auto w = workloads::makeAlt();
    EdgeProfiler ep(w.program);
    interp::Interpreter interp(w.program);
    interp.addListener(&ep);
    interp.run(w.train);
    const std::string text = toText(ep);

    EdgeProfiler merged(w.program);
    std::string error;
    ASSERT_TRUE(fromText(text, merged, error));
    ASSERT_TRUE(fromText(text, merged, error)); // load twice
    EXPECT_EQ(merged.blockFreq(0, 1), 2 * ep.blockFreq(0, 1));
}

TEST(SerializeEdge, RejectsGarbage)
{
    const auto w = workloads::makeAlt();
    EdgeProfiler ep(w.program);
    std::string error;
    EXPECT_FALSE(fromText("not a profile", ep, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fromText("edgeprofile v1\nbogus 1 2 3\n", ep, error));
}

TEST(SerializePath, HeaderCarriesParameters)
{
    const auto w = workloads::makeCorr();
    PathProfileParams params;
    params.maxBranches = 7;
    params.maxBlocks = 20;
    PathProfiler pp(w.program, params);
    interp::Interpreter interp(w.program);
    interp.addListener(&pp);
    interp.run(w.train);
    const std::string text = toText(pp);
    EXPECT_NE(text.find("pathprofile v1 7 20 0"), std::string::npos);

    PathProfiler loaded(w.program, params);
    std::string error;
    EXPECT_TRUE(fromText(text, loaded, error)) << error;
}

TEST(SerializePath, RejectsParameterMismatch)
{
    const auto w = workloads::makeAlt();
    PathProfiler pp(w.program, {});
    interp::Interpreter interp(w.program);
    interp.addListener(&pp);
    interp.run(w.train);
    const std::string text = toText(pp);

    PathProfileParams other;
    other.maxBranches = 3;
    PathProfiler loaded(w.program, other);
    std::string error;
    EXPECT_FALSE(fromText(text, loaded, error));
    EXPECT_NE(error.find("parameters"), std::string::npos);
}

TEST(SerializePath, RejectsOverBudgetRecord)
{
    const auto w = workloads::makeAlt();
    PathProfiler pp(w.program, {});
    std::string error;
    // Block 99 does not exist in alt's main.
    const std::string bogus =
        "pathprofile v1 15 64 0\npath 0 5 2 99 1\n";
    EXPECT_FALSE(fromText(bogus, pp, error));
}

// ---------------------------------------------------------------------
// Hardening: corrupt profile text must be rejected with a precise
// error, never wrapped (negative counts), silently truncated, or let
// through to index profiler state out of range.

TEST(SerializeEdge, RejectsOutOfRangeIds)
{
    const auto w = workloads::makeAlt();
    std::string error;
    {
        // Proc 99 does not exist.
        EdgeProfiler ep(w.program);
        EXPECT_FALSE(
            fromText("edgeprofile v1\nblock 99 0 1\n", ep, error));
        EXPECT_NE(error.find("line 2"), std::string::npos) << error;
        EXPECT_NE(error.find("out-of-range"), std::string::npos);
    }
    {
        // Block 99 does not exist in proc 0.
        EdgeProfiler ep(w.program);
        EXPECT_FALSE(
            fromText("edgeprofile v1\nblock 0 99 1\n", ep, error));
    }
    {
        // Edge records must range-check both endpoints too.
        EdgeProfiler ep(w.program);
        EXPECT_FALSE(
            fromText("edgeprofile v1\nedge 0 0 99 1\n", ep, error));
        EXPECT_FALSE(
            fromText("edgeprofile v1\nedge 0 99 0 1\n", ep, error));
    }
}

TEST(SerializeEdge, RejectsNegativeAndOverflowingCounts)
{
    const auto w = workloads::makeAlt();
    std::string error;
    EdgeProfiler ep(w.program);
    // istream >> uint64_t would wrap "-5" to 2^64-5; from_chars must
    // reject the sign outright.
    EXPECT_FALSE(fromText("edgeprofile v1\nblock 0 1 -5\n", ep, error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_FALSE(fromText(
        "edgeprofile v1\nblock 0 1 99999999999999999999999\n", ep,
        error));
    EXPECT_FALSE(fromText("edgeprofile v1\nblock 0 -1 5\n", ep, error));
    // Sanity: the uncorrupted record is fine.
    EXPECT_TRUE(fromText("edgeprofile v1\nblock 0 1 5\n", ep, error))
        << error;
}

TEST(SerializeEdge, RejectsTruncatedAndOverlongRecords)
{
    const auto w = workloads::makeAlt();
    std::string error;
    EdgeProfiler ep(w.program);
    EXPECT_FALSE(fromText("edgeprofile v1\nblock 0 1\n", ep, error));
    EXPECT_FALSE(fromText("edgeprofile v1\nedge 0 0 1\n", ep, error));
    EXPECT_FALSE(
        fromText("edgeprofile v1\nblock 0 1 5 junk\n", ep, error));
}

TEST(SerializePath, RejectsCorruptRecords)
{
    const auto w = workloads::makeAlt();
    std::string error;
    {
        // Unknown proc id: reject, do not abort.
        PathProfiler pp(w.program, {});
        EXPECT_FALSE(fromText("pathprofile v1 15 64 0\npath 99 5 1 0\n",
                              pp, error));
    }
    {
        // Truncated: record declares 3 ids but carries 2.
        PathProfiler pp(w.program, {});
        EXPECT_FALSE(fromText("pathprofile v1 15 64 0\npath 0 5 3 0 1\n",
                              pp, error));
        EXPECT_NE(error.find("truncated"), std::string::npos) << error;
    }
    {
        // Declared length far beyond the block budget must be rejected
        // before any allocation sized by it.
        PathProfiler pp(w.program, {});
        EXPECT_FALSE(fromText(
            "pathprofile v1 15 64 0\npath 0 5 99999999999 0\n", pp,
            error));
    }
    {
        // Zero-length and negative-count records.
        PathProfiler pp(w.program, {});
        EXPECT_FALSE(
            fromText("pathprofile v1 15 64 0\npath 0 5 0\n", pp, error));
        EXPECT_FALSE(fromText("pathprofile v1 15 64 0\npath 0 -5 1 0\n",
                              pp, error));
    }
}

/** Property: save/load is invisible to every pathFreq query. */
class PathRoundTrip : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(PathRoundTrip, QueriesAgree)
{
    pstest::GeneratedProgram gen = pstest::makeRandomProgram(GetParam());
    PathProfiler pp(gen.program, {});
    interp::Interpreter interp(gen.program);
    interp.addListener(&pp);
    interp.run(gen.input);

    const std::string text = toText(pp);
    PathProfiler loaded(gen.program, {});
    std::string error;
    ASSERT_TRUE(fromText(text, loaded, error)) << error;

    pp.finalize();
    loaded.finalize();
    EXPECT_EQ(loaded.numPaths(), pp.numPaths());

    // Every recorded window (and its suffixes via subtree sums) must
    // answer identically.
    pp.forEachPath([&](ir::ProcId p, const std::vector<BlockId> &seq,
                       uint64_t) {
        EXPECT_EQ(loaded.pathFreq(p, seq), pp.pathFreq(p, seq));
        if (seq.size() > 1) {
            const std::vector<BlockId> suffix(seq.begin() + 1,
                                              seq.end());
            EXPECT_EQ(loaded.pathFreq(p, suffix),
                      pp.pathFreq(p, suffix));
        }
    });
    for (const auto &proc : gen.program.procs) {
        for (BlockId b = 0; b < proc.blocks.size(); ++b)
            EXPECT_EQ(loaded.blockFreq(proc.id, b),
                      pp.blockFreq(proc.id, b));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathRoundTrip,
                         ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------
// v2 format: checksums, fingerprints, typed errors.

/** Train both profilers on @p w in one interpreter run. */
struct TrainedProfiles
{
    EdgeProfiler ep;
    PathProfiler pp;

    explicit TrainedProfiles(const workloads::Workload &w,
                             PathProfileParams params = {})
        : ep(w.program), pp(w.program, params)
    {
        interp::Interpreter interp(w.program);
        interp.addListener(&ep);
        interp.addListener(&pp);
        interp.run(w.train);
    }
};

TEST(SerializeV2, EdgeRoundTripIsLosslessAndChecksumStable)
{
    const auto w = workloads::makeCorr();
    TrainedProfiles t(w);

    const std::string text = toTextV2(t.ep, w.program);
    EXPECT_NE(text.find("edgeprofile v2 crc "), std::string::npos);
    EXPECT_NE(text.find("fingerprint 0 "), std::string::npos);

    EdgeProfiler loaded(w.program);
    ProfileMeta meta;
    ASSERT_TRUE(loadEdgeProfile(text, loaded, meta).ok());
    EXPECT_EQ(meta.version, 2);
    EXPECT_TRUE(meta.hasChecksum);
    EXPECT_TRUE(meta.checksumOk);
    uint64_t fp = 0;
    ASSERT_TRUE(meta.fingerprintFor(0, fp));
    EXPECT_EQ(fp, cfgFingerprint(w.program.proc(0)));

    for (BlockId b = 0; b < w.program.proc(0).blocks.size(); ++b)
        EXPECT_EQ(loaded.blockFreq(0, b), t.ep.blockFreq(0, b));
    t.ep.forEachEdge([&](ir::ProcId p, BlockId from, BlockId to,
                         uint64_t n) {
        EXPECT_EQ(loaded.edgeFreq(p, from, to), n);
    });

    // dump -> load -> dump is byte-identical (checksum included).
    EXPECT_EQ(toTextV2(loaded, w.program), text);
}

TEST(SerializeV2, PathRoundTripIsLosslessAndChecksumStable)
{
    const auto w = workloads::makeCorr();
    TrainedProfiles t(w);

    const std::string text = toTextV2(t.pp, w.program);
    EXPECT_NE(text.find("pathprofile v2 "), std::string::npos);

    PathProfiler loaded(w.program, {});
    ProfileMeta meta;
    ASSERT_TRUE(loadPathProfile(text, loaded, meta).ok());
    EXPECT_EQ(meta.version, 2);
    EXPECT_TRUE(meta.checksumOk);
    EXPECT_EQ(toTextV2(loaded, w.program), text);

    loaded.finalize();
    t.pp.finalize();
    EXPECT_EQ(loaded.numPaths(), t.pp.numPaths());
}

TEST(SerializeV2, BodyTamperFailsChecksumAsProfileCorrupt)
{
    const auto w = workloads::makeAlt();
    TrainedProfiles t(w);
    std::string text = toTextV2(t.ep, w.program);

    // Flip one digit of one count somewhere in the body.
    const size_t body = text.find('\n') + 1;
    const size_t pos = text.find_last_of("0123456789");
    ASSERT_GT(pos, body);
    text[pos] = text[pos] == '7' ? '8' : '7';

    EdgeProfiler loaded(w.program);
    ProfileMeta meta;
    const Status st = loadEdgeProfile(text, loaded, meta);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), ErrorKind::ProfileCorrupt);
    EXPECT_TRUE(meta.hasChecksum);
    EXPECT_FALSE(meta.checksumOk);
}

TEST(SerializeV2, ParameterMismatchIsProfileStale)
{
    const auto w = workloads::makeAlt();
    PathProfileParams trained;
    trained.maxBranches = 3;
    TrainedProfiles t(w, trained);

    PathProfiler other(w.program, {}); // default params differ
    ProfileMeta meta;
    const Status st =
        loadPathProfile(toTextV2(t.pp, w.program), other, meta);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), ErrorKind::ProfileStale);
}

TEST(SerializeV2, FinalizedProfilerIsTypedErrorNotAssert)
{
    const auto w = workloads::makeAlt();
    TrainedProfiles t(w);
    const std::string text = toText(t.pp);

    PathProfiler loaded(w.program, {});
    loaded.finalize();
    ProfileMeta meta;
    const Status st = loadPathProfile(text, loaded, meta);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), ErrorKind::BadProfile);
}

TEST(SerializeV2, LenientLoadSkipsAndAttributesBadRecords)
{
    const auto w = workloads::makeAlt();
    TrainedProfiles t(w);
    std::string text = toText(t.ep);
    text += "block 0 9999 5\n";   // out-of-range block
    text += "edge 0 zero one 2\n"; // unparseable ids
    text += "block notaproc 0 1\n";

    EdgeProfiler strict(w.program);
    ProfileMeta meta;
    EXPECT_FALSE(loadEdgeProfile(text, strict, meta).ok());

    EdgeProfiler lenient(w.program);
    LoadOptions lo;
    lo.lenient = true;
    ProfileMeta lmeta;
    ASSERT_TRUE(loadEdgeProfile(text, lenient, lmeta, lo).ok());
    EXPECT_EQ(lmeta.recordsSkipped, 3u);
    ASSERT_EQ(lmeta.skippedProcs.size(), 1u);
    EXPECT_EQ(lmeta.skippedProcs[0], 0u);
    EXPECT_EQ(lmeta.unattributedSkips, 1u);
    EXPECT_EQ(lenient.blockFreq(0, 1), t.ep.blockFreq(0, 1));
}

// ---------------------------------------------------------------------
// Mutation fuzz: no input may crash the loaders or the auditors.

/** Apply one random mutation to @p text. */
void
mutateOnce(std::string &text, pathsched::Rng &rng)
{
    if (text.empty()) {
        text.push_back(char('a' + rng.below(26)));
        return;
    }
    switch (rng.below(6)) {
      case 0: // truncate at a random offset (torn write)
        text.resize(rng.below(text.size() + 1));
        break;
      case 1: { // flip one byte to a random printable-or-not value
        text[rng.below(text.size())] = char(rng.below(256));
        break;
      }
      case 2: { // splice: duplicate a random chunk elsewhere
        const size_t from = rng.below(text.size());
        const size_t len =
            std::min<size_t>(rng.below(64) + 1, text.size() - from);
        const size_t at = rng.below(text.size() + 1);
        text.insert(at, text, from, len);
        break;
      }
      case 3: { // count overflow: inject a long digit run
        const size_t at = rng.below(text.size() + 1);
        text.insert(at, std::string(rng.below(30) + 1, '9'));
        break;
      }
      case 4: { // delete a random span
        const size_t from = rng.below(text.size());
        const size_t len =
            std::min<size_t>(rng.below(32) + 1, text.size() - from);
        text.erase(from, len);
        break;
      }
      default: { // fingerprint/hex flip: retarget a random hex digit
        const size_t pos = text.find_last_of("abcdef");
        if (pos != std::string::npos)
            text[pos] = char('0' + rng.below(10));
        else
            text[rng.below(text.size())] = 'f';
        break;
      }
    }
}

TEST(SerializeFuzz, MutatedProfilesNeverCrashLoadersOrAuditors)
{
    const auto w = workloads::makeCorr();
    TrainedProfiles t(w);
    const std::string bases[] = {
        toText(t.ep),
        toTextV2(t.ep, w.program),
        toText(t.pp),
        toTextV2(t.pp, w.program),
    };

    pathsched::Rng rng(0x5EED5EEDull);
    size_t accepted = 0, rejected = 0;
    const int kIters = 1200; // >= 1000 distinct seeded mutants

    for (int i = 0; i < kIters; ++i) {
        std::string text = bases[rng.below(4)];
        const uint64_t nmut = 1 + rng.below(3);
        for (uint64_t m = 0; m < nmut; ++m)
            mutateOnce(text, rng);

        // Every mutant goes through all loaders in both modes and,
        // when it still parses, through the semantic auditors — the
        // full admission surface.  Nothing may assert or crash.
        LoadOptions lenient;
        lenient.lenient = true;
        ValidateOptions vo;
        bool any_ok = false;

        {
            EdgeProfiler ep(w.program);
            ProfileMeta meta;
            if (loadEdgeProfile(text, ep, meta).ok())
                any_ok = true;
        }
        {
            EdgeProfiler ep(w.program);
            ProfileMeta meta;
            if (loadEdgeProfile(text, ep, meta, lenient).ok()) {
                any_ok = true;
                ProfileAudit audit;
                (void)auditEdgeProfile(w.program, ep, meta, vo, audit);
            }
        }
        {
            PathProfiler pp(w.program, {});
            ProfileMeta meta;
            if (loadPathProfile(text, pp, meta).ok())
                any_ok = true;
        }
        {
            PathProfiler pp(w.program, {});
            ProfileMeta meta;
            if (loadPathProfile(text, pp, meta, lenient).ok()) {
                any_ok = true;
                ProfileAudit audit;
                EdgeProfiler projected(w.program);
                (void)auditPathProfile(w.program, pp, meta, vo, audit,
                                       &projected);
            }
        }
        any_ok ? ++accepted : ++rejected;
    }

    // The harness must exercise both outcomes, or the mutations are
    // too weak (everything rejected) / too gentle (nothing rejected).
    EXPECT_GT(accepted, 0u);
    EXPECT_GT(rejected, 0u);
}

} // namespace
} // namespace pathsched::profile
