/**
 * @file
 * Profile admission tests: the path->edge projection identity, edge
 * flow conservation, fingerprint staleness, strict/repair/off modes,
 * and the pipeline's per-procedure degradation cascade (corrupt data
 * for one procedure must not perturb any other procedure's code).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/procedure.hpp"
#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "pipeline/pipeline.hpp"
#include "profile/serialize.hpp"
#include "profile/validate.hpp"
#include "workloads/workloads.hpp"

namespace pathsched::profile {
namespace {

using ir::BlockId;
using pipeline::PipelineOptions;
using pipeline::PipelineResult;
using pipeline::SchedConfig;

/** Train both profilers on @p w's training input in one run. */
struct Trained
{
    EdgeProfiler ep;
    PathProfiler pp;

    explicit Trained(const workloads::Workload &w,
                     PathProfileParams params = {})
        : ep(w.program), pp(w.program, params)
    {
        interp::Interpreter interp(w.program);
        interp.addListener(&ep);
        interp.addListener(&pp);
        interp.run(w.train);
    }
};

/** Every (block, edge) frequency of @p a equals @p b's. */
void
expectProfilesEqual(const ir::Program &prog, const EdgeProfiler &a,
                    const EdgeProfiler &b)
{
    std::vector<BlockId> succs;
    for (const ir::Procedure &proc : prog.procs) {
        for (size_t bl = 0; bl < proc.blocks.size(); ++bl) {
            EXPECT_EQ(a.blockFreq(proc.id, BlockId(bl)),
                      b.blockFreq(proc.id, BlockId(bl)))
                << proc.name << " block " << bl;
            succs.clear();
            ir::successorsOf(proc.blocks[bl], succs);
            for (BlockId s : succs)
                EXPECT_EQ(a.edgeFreq(proc.id, BlockId(bl), s),
                          b.edgeFreq(proc.id, BlockId(bl), s))
                    << proc.name << " edge " << bl << "->" << s;
        }
    }
}

// ---------------------------------------------------------------------
// The projection identity: final-block / final-pair projection of raw
// window counts reproduces the exact dynamic edge profile.

TEST(Projection, ReproducesRealEdgeProfile)
{
    for (const char *name : {"alt", "corr", "wc", "li"}) {
        const auto w = workloads::makeByName(name);
        Trained t(w);
        EdgeProfiler projected(w.program);
        projectPathsToEdges(t.pp, projected);
        expectProfilesEqual(w.program, t.ep, projected);
    }
}

TEST(Projection, ForwardModeKeepsBlocksExactAndNeverOvercountsEdges)
{
    // Forward mode chops windows at back edges, so a back edge never
    // appears as any window's final pair: its projected count is 0.
    // Block counts stay exact (the chopped window still ends in the
    // executed block), and no edge can ever project *above* its real
    // traversal count — which is what the admission checks rely on.
    PathProfileParams params;
    params.forwardPathsOnly = true;
    const auto w = workloads::makeCorr();
    Trained t(w, params);
    EdgeProfiler projected(w.program);
    projectPathsToEdges(t.pp, projected);

    std::vector<BlockId> succs;
    for (const ir::Procedure &proc : w.program.procs) {
        for (size_t bl = 0; bl < proc.blocks.size(); ++bl) {
            EXPECT_EQ(projected.blockFreq(proc.id, BlockId(bl)),
                      t.ep.blockFreq(proc.id, BlockId(bl)))
                << proc.name << " block " << bl;
            succs.clear();
            ir::successorsOf(proc.blocks[bl], succs);
            for (BlockId s : succs)
                EXPECT_LE(projected.edgeFreq(proc.id, BlockId(bl), s),
                          t.ep.edgeFreq(proc.id, BlockId(bl), s))
                    << proc.name << " edge " << bl << "->" << s;
        }
    }
}

// ---------------------------------------------------------------------
// Edge-profile admission.

TEST(EdgeAudit, AcceptsRealProfile)
{
    const auto w = workloads::makeCorr();
    Trained t(w);
    ProfileMeta meta;
    ProfileAudit audit;
    ASSERT_TRUE(
        auditEdgeProfile(w.program, t.ep, meta, {}, audit).ok());
    EXPECT_TRUE(audit.enabled);
    EXPECT_TRUE(audit.clean());
    EXPECT_EQ(audit.checked, w.program.procs.size());
}

TEST(EdgeAudit, QuarantinesInflatedBlockCount)
{
    const auto w = workloads::makeAlt();
    Trained t(w);
    // Block 1 is not the entry, so its inflow must match exactly.
    ASSERT_TRUE(t.ep.addBlockCount(0, 1, 1000));

    ProfileMeta meta;
    ProfileAudit audit;
    ASSERT_TRUE(
        auditEdgeProfile(w.program, t.ep, meta, {}, audit).ok());
    EXPECT_FALSE(audit.clean());
    ASSERT_EQ(audit.procs.size(), 1u);
    EXPECT_EQ(audit.procs[0].action, ProcAction::Quarantined);
    EXPECT_EQ(audit.procs[0].kind, ErrorKind::ProfileCorrupt);
    EXPECT_EQ(audit.quarantined, 1u);

    // Strict mode surfaces the same finding as a typed error.
    ValidateOptions strict;
    strict.mode = AdmissionMode::Strict;
    const Status st =
        auditEdgeProfile(w.program, t.ep, meta, strict, audit);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), ErrorKind::ProfileCorrupt);
}

TEST(EdgeAudit, QuarantinesNonCFGEdge)
{
    const auto w = workloads::makeAlt();
    Trained t(w);
    // Find a block pair that is not a CFG edge and record traffic on
    // it, as a splice of two unrelated profiles would.
    const ir::Procedure &proc = w.program.proc(0);
    std::vector<BlockId> succs;
    BlockId bad_from = 0, bad_to = 0;
    bool found = false;
    for (size_t u = 0; !found && u < proc.blocks.size(); ++u) {
        succs.clear();
        ir::successorsOf(proc.blocks[u], succs);
        for (size_t v = 0; !found && v < proc.blocks.size(); ++v) {
            if (std::find(succs.begin(), succs.end(), BlockId(v)) ==
                succs.end()) {
                bad_from = BlockId(u);
                bad_to = BlockId(v);
                found = true;
            }
        }
    }
    ASSERT_TRUE(found);
    ASSERT_TRUE(t.ep.addEdgeCount(0, bad_from, bad_to, 5));

    ProfileMeta meta;
    ProfileAudit audit;
    ASSERT_TRUE(
        auditEdgeProfile(w.program, t.ep, meta, {}, audit).ok());
    ASSERT_EQ(audit.procs.size(), 1u);
    EXPECT_EQ(audit.procs[0].action, ProcAction::Quarantined);
    EXPECT_NE(audit.procs[0].message.find("not in the CFG"),
              std::string::npos);
}

TEST(EdgeAudit, StaleFingerprintQuarantines)
{
    const auto w = workloads::makeAlt();
    Trained t(w);

    EdgeProfiler loaded(w.program);
    ProfileMeta meta;
    ASSERT_TRUE(
        loadEdgeProfile(toTextV2(t.ep, w.program), loaded, meta).ok());
    ASSERT_FALSE(meta.fingerprints.empty());
    meta.fingerprints[0].second ^= 1; // profile from a "different" IR

    ProfileAudit audit;
    ASSERT_TRUE(
        auditEdgeProfile(w.program, loaded, meta, {}, audit).ok());
    ASSERT_EQ(audit.procs.size(), 1u);
    EXPECT_EQ(audit.procs[0].action, ProcAction::Quarantined);
    EXPECT_EQ(audit.procs[0].kind, ErrorKind::ProfileStale);
    EXPECT_EQ(audit.staleProcs, 1u);

    ValidateOptions strict;
    strict.mode = AdmissionMode::Strict;
    const Status st =
        auditEdgeProfile(w.program, loaded, meta, strict, audit);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), ErrorKind::ProfileStale);
}

// ---------------------------------------------------------------------
// Path-profile admission.

TEST(PathAudit, AcceptsRealProfile)
{
    const auto w = workloads::makeCorr();
    Trained t(w);
    ProfileMeta meta;
    ProfileAudit audit;
    EdgeProfiler projected(w.program);
    ASSERT_TRUE(auditPathProfile(w.program, t.pp, meta, {}, audit,
                                 &projected)
                    .ok());
    EXPECT_TRUE(audit.clean());
    EXPECT_EQ(audit.repaired, 0u);
}

/** Multiply the count of one long window of proc @p proc by 10^6. */
std::string
inflateOneWindow(const std::string &text, unsigned proc)
{
    const std::string prefix = "path " + std::to_string(proc) + " ";
    size_t pos = 0;
    while ((pos = text.find(prefix, pos)) != std::string::npos) {
        if (pos != 0 && text[pos - 1] != '\n') {
            pos += prefix.size();
            continue;
        }
        const size_t count_at = pos + prefix.size();
        const size_t count_end = text.find(' ', count_at);
        const size_t eol = text.find('\n', pos);
        // Only corrupt a window long enough to carry an interior
        // (non-final) pair, so the pair-bound check can see the lie.
        const size_t len_at = count_end + 1;
        const size_t len_end = text.find(' ', len_at);
        if (len_end != std::string::npos && len_end < eol &&
            std::stoul(text.substr(len_at, len_end - len_at)) >= 3) {
            std::string out = text;
            out.insert(count_end, "000000");
            return out;
        }
        pos = eol;
    }
    ADD_FAILURE() << "no inflatable window for proc " << proc;
    return text;
}

TEST(PathAudit, RepairsOverstatedWindowByProjection)
{
    const auto w = workloads::makeCorr();
    Trained t(w);
    const std::string corrupt = inflateOneWindow(toText(t.pp), 0);

    PathProfiler loaded(w.program, {});
    ProfileMeta meta;
    ASSERT_TRUE(loadPathProfile(corrupt, loaded, meta).ok());

    ProfileAudit audit;
    EdgeProfiler projected(w.program);
    ASSERT_TRUE(auditPathProfile(w.program, loaded, meta, {}, audit,
                                 &projected)
                    .ok());
    EXPECT_FALSE(audit.clean());
    ASSERT_EQ(audit.procs.size(), 1u);
    EXPECT_EQ(audit.procs[0].action, ProcAction::ProjectedEdges);
    EXPECT_GE(audit.procs[0].droppedPaths, 1u);
    EXPECT_EQ(audit.repaired, 1u);
    EXPECT_EQ(audit.quarantined, 0u);
    // The surviving windows produced a usable projection.
    EXPECT_GT(projected.blockFreq(0, 0), 0u);
}

TEST(PathAudit, QuarantinesWhenEveryWindowIsBogus)
{
    const auto w = workloads::makeAlt();
    // One fabricated window over a pair that is not a CFG edge
    // (block 0 never branches to itself).
    PathProfiler loaded(w.program, {});
    ProfileMeta meta;
    ASSERT_TRUE(
        loadPathProfile("pathprofile v1 15 64 0\npath 0 5 2 0 0\n",
                        loaded, meta)
            .ok());

    ProfileAudit audit;
    EdgeProfiler projected(w.program);
    ASSERT_TRUE(auditPathProfile(w.program, loaded, meta, {}, audit,
                                 &projected)
                    .ok());
    ASSERT_EQ(audit.procs.size(), 1u);
    EXPECT_EQ(audit.procs[0].action, ProcAction::Quarantined);
    EXPECT_NE(audit.procs[0].message.find("all 1 windows dropped"),
              std::string::npos);

    ValidateOptions strict;
    strict.mode = AdmissionMode::Strict;
    EXPECT_FALSE(auditPathProfile(w.program, loaded, meta, strict,
                                  audit, &projected)
                     .ok());
}

TEST(PathAudit, OffModeChecksNothing)
{
    const auto w = workloads::makeAlt();
    Trained t(w);
    ValidateOptions off;
    off.mode = AdmissionMode::Off;
    ProfileAudit audit;
    ASSERT_TRUE(
        auditPathProfile(w.program, t.pp, {}, off, audit, nullptr)
            .ok());
    EXPECT_FALSE(audit.enabled);
}

// ---------------------------------------------------------------------
// The pipeline cascade: corrupt data for one procedure of a
// multi-procedure workload degrades that procedure only.

TEST(Cascade, CorruptProcDegradesAloneAndOthersAreBitIdentical)
{
    const auto w = workloads::makeVortex();
    ASSERT_GE(w.program.procs.size(), 3u);
    Trained t(w);
    const std::string clean_text = toText(t.pp);

    // Victim: any non-main procedure that recorded a window long
    // enough to carry an interior pair (so the corruption is visible).
    ir::ProcId victim = 0;
    t.pp.forEachPath([&](ir::ProcId p, const std::vector<BlockId> &seq,
                         uint64_t) {
        if (victim == 0 && p != 0 && seq.size() >= 3)
            victim = p;
    });
    ASSERT_NE(victim, 0u) << "no non-main proc with a long window";
    const std::string corrupt_text = inflateOneWindow(clean_text, victim);

    PipelineOptions base;
    base.keepTransformed = true;

    // Baseline: no external profile. Admission must stay disabled.
    const PipelineResult r0 = runPipeline(w.program, w.train, w.test,
                                          SchedConfig::P4, base);
    ASSERT_TRUE(r0.status.ok());
    EXPECT_FALSE(r0.profileAudit.enabled);
    ASSERT_NE(r0.transformed, nullptr);

    // A clean external profile (identical to the training profile)
    // admits fully and changes nothing.
    PipelineOptions clean = base;
    clean.profileInput.pathText = clean_text;
    const PipelineResult r1 = runPipeline(w.program, w.train, w.test,
                                          SchedConfig::P4, clean);
    ASSERT_TRUE(r1.status.ok());
    EXPECT_TRUE(r1.profileAudit.enabled);
    EXPECT_TRUE(r1.profileAudit.clean());
    EXPECT_EQ(r1.test.cycles, r0.test.cycles);
    EXPECT_EQ(ir::toString(*r1.transformed), ir::toString(*r0.transformed));

    // Corrupting one procedure's windows degrades that procedure and
    // leaves every other procedure's final code bit-identical.
    obs::StatRegistry stats;
    obs::Observer obs;
    obs.stats = &stats;
    PipelineOptions corrupt = clean;
    corrupt.profileInput.pathText = corrupt_text;
    corrupt.observability.observer = &obs;
    const PipelineResult r2 = runPipeline(w.program, w.train, w.test,
                                          SchedConfig::P4, corrupt);
    ASSERT_TRUE(r2.status.ok());
    EXPECT_TRUE(r2.outputMatches);
    EXPECT_FALSE(r2.profileAudit.clean());
    const ProcAudit *pa = r2.profileAudit.findProc(victim);
    ASSERT_NE(pa, nullptr);
    EXPECT_EQ(pa->procName, w.program.proc(victim).name);
    EXPECT_NE(pa->action, ProcAction::Accepted);
    for (const ir::Procedure &proc : w.program.procs) {
        if (proc.id == victim)
            continue;
        EXPECT_EQ(ir::toString(r2.transformed->proc(proc.id)),
                  ir::toString(r0.transformed->proc(proc.id)))
            << proc.name;
    }
    EXPECT_EQ(stats.counter("robust.P4.profile.repaired") +
                  stats.counter("robust.P4.profile.quarantined"),
              1u);
    EXPECT_EQ(stats.counter("profile.P4.audit.checked"),
              w.program.procs.size());

    // Strict mode refuses the same file outright.
    PipelineOptions strict = corrupt;
    strict.observability.observer = nullptr;
    strict.profileInput.check = AdmissionMode::Strict;
    const PipelineResult r3 = runPipeline(w.program, w.train, w.test,
                                          SchedConfig::P4, strict);
    EXPECT_FALSE(r3.status.ok());

    // Off mode trusts the file after a plain parse: no audit runs.
    PipelineOptions off = corrupt;
    off.observability.observer = nullptr;
    off.profileInput.check = AdmissionMode::Off;
    const PipelineResult r4 = runPipeline(w.program, w.train, w.test,
                                          SchedConfig::P4, off);
    ASSERT_TRUE(r4.status.ok());
    EXPECT_FALSE(r4.profileAudit.enabled);
}

TEST(Cascade, UnparseableFileFallsBackToTrainingProfile)
{
    const auto w = workloads::makeCorr();
    PipelineOptions base;
    base.keepTransformed = true;
    const PipelineResult r0 = runPipeline(w.program, w.train, w.test,
                                          SchedConfig::P4, base);
    ASSERT_TRUE(r0.status.ok());

    PipelineOptions bad = base;
    bad.profileInput.pathText = "this is not a profile\n";
    const PipelineResult r1 = runPipeline(w.program, w.train, w.test,
                                          SchedConfig::P4, bad);
    ASSERT_TRUE(r1.status.ok());
    EXPECT_TRUE(r1.profileAudit.enabled);
    EXPECT_TRUE(r1.profileAudit.fileRejected);
    EXPECT_FALSE(r1.profileAudit.fileStatus.ok());
    // The internal training profile took over: identical output code.
    EXPECT_EQ(ir::toString(*r1.transformed), ir::toString(*r0.transformed));

    // Strict mode turns the rejection into a failed run.
    PipelineOptions strict = bad;
    strict.profileInput.check = AdmissionMode::Strict;
    const PipelineResult r2 = runPipeline(w.program, w.train, w.test,
                                          SchedConfig::P4, strict);
    EXPECT_FALSE(r2.status.ok());
}

} // namespace
} // namespace pathsched::profile
