/**
 * @file
 * Replays every reduced fuzz finding in tests/corpus/ through the
 * differential oracle.
 *
 * Corpus files are the fuzz driver's currency: the first line is a
 * GenSpec, comment lines record the original classification and — for
 * harness drills — the mutation that must be armed to reproduce.
 * Files without a mutation are regression specs for fixed bugs and
 * must replay clean; files with one must be clean unmutated and fail
 * with the recorded classification once the mutation is armed, which
 * proves the oracle still catches the planted bug.
 */

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/oracle.hpp"
#include "support/mutation.hpp"

namespace fs = std::filesystem;
using namespace pathsched;

namespace {

struct CorpusEntry
{
    std::string name;
    gen::GenSpec spec;
    std::string klass;    ///< "# class:" first token, may be empty
    std::string mutation; ///< "# mutation:" value, may be empty
};

std::string firstToken(const std::string &s)
{
    const size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    const size_t e = s.find_first_of(" \t", b);
    return s.substr(b, e == std::string::npos ? std::string::npos : e - b);
}

std::vector<CorpusEntry> loadCorpus()
{
    std::vector<CorpusEntry> out;
    std::vector<fs::path> paths;
    for (const auto &de : fs::directory_iterator(PATHSCHED_CORPUS_DIR)) {
        if (de.path().extension() == ".spec")
            paths.push_back(de.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path &p : paths) {
        std::ifstream in(p);
        CorpusEntry e;
        e.name = p.filename().string();
        std::string line;
        bool haveSpec = false;
        while (std::getline(in, line)) {
            if (line.rfind("# class:", 0) == 0) {
                e.klass = firstToken(line.substr(8));
            } else if (line.rfind("# mutation:", 0) == 0) {
                e.mutation = firstToken(line.substr(11));
            } else if (!line.empty() && line[0] != '#' && !haveSpec) {
                std::string err;
                EXPECT_TRUE(gen::GenSpec::parse(line, e.spec, err))
                    << e.name << ": " << err;
                haveSpec = true;
            }
        }
        EXPECT_TRUE(haveSpec) << e.name << ": no spec line";
        if (haveSpec)
            out.push_back(std::move(e));
    }
    return out;
}

} // namespace

TEST(FuzzCorpus, HasEntries)
{
    EXPECT_GE(loadCorpus().size(), 5u);
}

/** Every corpus spec must replay clean with no mutation armed — these
 *  are regressions for fixed bugs (or the clean half of a drill). */
TEST(FuzzCorpus, AllSpecsReplayClean)
{
    for (const CorpusEntry &e : loadCorpus()) {
        const gen::OracleResult r = gen::checkSpec(e.spec);
        EXPECT_TRUE(r.ok()) << e.name << ":\n" << r.report();
    }
}

/** Drill entries must still trip the oracle, with the recorded
 *  classification, once their mutation is armed. */
TEST(FuzzCorpus, MutationDrillsStillFire)
{
    size_t drills = 0;
    for (const CorpusEntry &e : loadCorpus()) {
        if (e.mutation.empty())
            continue;
        ++drills;
        ASSERT_FALSE(e.klass.empty()) << e.name << ": drill without class";
        ScopedMutation arm(e.mutation);
        const gen::OracleResult r = gen::checkSpec(e.spec);
        ASSERT_FALSE(r.ok()) << e.name << ": mutation " << e.mutation
                             << " no longer caught";
        EXPECT_EQ(r.classification(), e.klass) << e.name;
    }
    EXPECT_GE(drills, 1u) << "corpus lost its harness drill";
}
