/**
 * @file
 * Virtual-I/O seam tests: the --io-inject grammar, every fault kind's
 * injected behaviour (including short-write's genuine torn prefix),
 * the nth/count/prob selectors, passthrough transparency, and the
 * atomicWriteFile publish protocol under faults.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "support/vio.hpp"

namespace pathsched {
namespace {

class VioTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "pathsched_vio_" +
               std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string
    path(const char *name) const
    {
        return dir_ + "/" + name;
    }

    static std::string
    slurp(const std::string &p)
    {
        std::ifstream in(p, std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    }

    std::string dir_;
};

// ---------------------------------------------------------------------
// Grammar.

TEST(VioGrammarTest, ParsesFullSpecAndArms)
{
    Vio vio;
    std::string err;
    EXPECT_FALSE(vio.armed());
    ASSERT_TRUE(vio.parseFaults(
        "path=wal,op=fsync,kind=eio,count=2;"
        "path=cache,kind=enospc,nth=3,prob=0.5",
        err))
        << err;
    EXPECT_TRUE(vio.armed());
    EXPECT_EQ(vio.faultsFired(), 0u);
}

TEST(VioGrammarTest, RejectsMalformedSpecsWithAMessage)
{
    const char *bad[] = {
        "",                          // empty
        "path=wal",                  // no kind
        "kind=sparks",               // unknown kind
        "kind=eio,op=chmod",         // unknown op
        "kind=eio,count=0",          // zero count
        "kind=eio,count=x",          // non-numeric
        "kind=eio,nth=0",            // nth is 1-based
        "kind=eio,prob=1.5",         // out of range
        "kind=eio,prob=x",           // non-numeric
        "kind=eio,flavor=spicy",     // unknown field
        "kindeio",                   // missing '='
    };
    for (const char *spec : bad) {
        Vio vio;
        std::string err;
        EXPECT_FALSE(vio.parseFaults(spec, err)) << spec;
        EXPECT_FALSE(err.empty()) << spec;
        EXPECT_FALSE(vio.armed()) << spec;
    }
}

// ---------------------------------------------------------------------
// Passthrough.

TEST_F(VioTest, PassthroughWritesAreTransparent)
{
    Vio vio; // disarmed
    const std::string p = path("plain.bin");
    Expected<int> fd =
        vio.openFile("wal", p, O_WRONLY | O_CREAT | O_TRUNC);
    ASSERT_TRUE(fd.ok()) << fd.status().toString();
    const std::string data = "forty-two bytes of durable payload";
    ASSERT_TRUE(
        vio.writeAll("wal", fd.value(), data.data(), data.size(), p)
            .ok());
    ASSERT_TRUE(vio.fsyncFile("wal", fd.value(), p).ok());
    ASSERT_TRUE(vio.closeFile("wal", fd.value(), p).ok());
    ASSERT_TRUE(vio.fsyncDir("dir", dir_).ok());
    EXPECT_EQ(slurp(p), data);
    EXPECT_EQ(vio.faultsFired(), 0u);

    const std::string p2 = path("renamed.bin");
    ASSERT_TRUE(vio.renameFile("wal", p, p2).ok());
    EXPECT_EQ(slurp(p2), data);
}

TEST_F(VioTest, RealErrorsComeBackTyped)
{
    Vio vio;
    Expected<int> fd = vio.openFile(
        "wal", dir_ + "/no/such/dir/f", O_WRONLY | O_CREAT);
    ASSERT_FALSE(fd.ok());
    EXPECT_EQ(fd.status().kind(), ErrorKind::IoError);
    Status st = vio.renameFile("wal", path("absent"), path("b"));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), ErrorKind::IoError);
}

// ---------------------------------------------------------------------
// Fault kinds.

TEST_F(VioTest, EnospcFiresOnWriteOnly)
{
    Vio vio;
    std::string err;
    ASSERT_TRUE(vio.parseFaults("path=wal,kind=enospc", err)) << err;
    const std::string p = path("f");
    // Default op for enospc is write: open must still succeed.
    Expected<int> fd =
        vio.openFile("wal", p, O_WRONLY | O_CREAT | O_TRUNC);
    ASSERT_TRUE(fd.ok());
    Status st = vio.writeAll("wal", fd.value(), "x", 1, p);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), ErrorKind::IoError);
    EXPECT_NE(st.message().find("injected enospc"), std::string::npos);
    EXPECT_EQ(vio.faultsFired(), 1u);
    // Nothing reached the file.
    ASSERT_TRUE(vio.closeFile("wal", fd.value(), p).ok());
    EXPECT_EQ(slurp(p), "");
}

TEST_F(VioTest, EioWithNoOpMatchesEveryOp)
{
    Vio vio;
    std::string err;
    ASSERT_TRUE(vio.parseFaults("kind=eio,count=2", err)) << err;
    // Fires on open (first) and then fsyncDir (second).
    Expected<int> fd = vio.openFile("wal", path("f"), O_WRONLY | O_CREAT);
    ASSERT_FALSE(fd.ok());
    Status st = vio.fsyncDir("dir", dir_);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("injected eio"), std::string::npos);
    // Budget of 2 spent: back to passthrough.
    Expected<int> fd2 =
        vio.openFile("wal", path("f"), O_WRONLY | O_CREAT);
    ASSERT_TRUE(fd2.ok());
    ASSERT_TRUE(vio.closeFile("wal", fd2.value(), path("f")).ok());
    EXPECT_EQ(vio.faultsFired(), 2u);
}

TEST_F(VioTest, ShortWritePersistsAGenuineTornPrefix)
{
    Vio vio;
    std::string err;
    ASSERT_TRUE(
        vio.parseFaults("path=wal,kind=short-write,count=1", err))
        << err;
    const std::string p = path("torn.bin");
    Expected<int> fd =
        vio.openFile("wal", p, O_WRONLY | O_CREAT | O_TRUNC);
    ASSERT_TRUE(fd.ok());
    const std::string data(64, 'A');
    Status st = vio.writeAll("wal", fd.value(), data.data(),
                             data.size(), p);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.message().find("injected short-write"),
              std::string::npos);
    ASSERT_TRUE(vio.closeFile("wal", fd.value(), p).ok());
    // Exactly half the buffer really landed on disk: a true torn tail,
    // not a clean no-op.
    EXPECT_EQ(slurp(p), data.substr(0, data.size() / 2));
}

TEST_F(VioTest, FsyncFailAndRenameFailTargetTheirDefaultOps)
{
    Vio vio;
    std::string err;
    ASSERT_TRUE(vio.parseFaults(
                    "path=wal,kind=fsync-fail,count=1;"
                    "path=wal,kind=rename-fail,count=1",
                    err))
        << err;
    const std::string p = path("f");
    Expected<int> fd =
        vio.openFile("wal", p, O_WRONLY | O_CREAT | O_TRUNC);
    ASSERT_TRUE(fd.ok()); // open untouched by either fault
    ASSERT_TRUE(vio.writeAll("wal", fd.value(), "x", 1, p).ok());
    EXPECT_FALSE(vio.fsyncFile("wal", fd.value(), p).ok());
    ASSERT_TRUE(vio.closeFile("wal", fd.value(), p).ok());
    EXPECT_FALSE(vio.renameFile("wal", p, path("g")).ok());
    // The real rename never ran.
    EXPECT_TRUE(std::filesystem::exists(p));
    EXPECT_FALSE(std::filesystem::exists(path("g")));
}

TEST_F(VioTest, InjectedCloseStillReallyClosesTheFd)
{
    Vio vio;
    std::string err;
    ASSERT_TRUE(vio.parseFaults("kind=eio,op=close,count=1", err))
        << err;
    const std::string p = path("f");
    Expected<int> fd =
        vio.openFile("wal", p, O_WRONLY | O_CREAT | O_TRUNC);
    ASSERT_TRUE(fd.ok());
    EXPECT_FALSE(vio.closeFile("wal", fd.value(), p).ok());
    // The fd must be gone despite the injected error — anything else
    // would turn injection into a real fd leak.
    EXPECT_EQ(::fcntl(fd.value(), F_GETFD), -1);
}

// ---------------------------------------------------------------------
// Selectors.

TEST_F(VioTest, LabelMatchingIsExactOrWildcard)
{
    Vio vio;
    std::string err;
    ASSERT_TRUE(vio.parseFaults("path=cache,kind=enospc", err)) << err;
    const std::string p = path("f");
    Expected<int> fd =
        vio.openFile("wal", p, O_WRONLY | O_CREAT | O_TRUNC);
    ASSERT_TRUE(fd.ok());
    // "wal" writes sail through a cache-only fault...
    EXPECT_TRUE(vio.writeAll("wal", fd.value(), "x", 1, p).ok());
    // ...and "cache" writes do not.
    EXPECT_FALSE(vio.writeAll("cache", fd.value(), "x", 1, p).ok());
    ASSERT_TRUE(vio.closeFile("wal", fd.value(), p).ok());
}

TEST_F(VioTest, NthFiresOnExactlyTheNthMatchingQuery)
{
    Vio vio;
    std::string err;
    ASSERT_TRUE(vio.parseFaults("path=wal,kind=enospc,nth=3", err))
        << err;
    const std::string p = path("f");
    Expected<int> fd =
        vio.openFile("wal", p, O_WRONLY | O_CREAT | O_TRUNC);
    ASSERT_TRUE(fd.ok());
    EXPECT_TRUE(vio.writeAll("wal", fd.value(), "a", 1, p).ok());
    EXPECT_TRUE(vio.writeAll("wal", fd.value(), "b", 1, p).ok());
    EXPECT_FALSE(vio.writeAll("wal", fd.value(), "c", 1, p).ok());
    EXPECT_TRUE(vio.writeAll("wal", fd.value(), "d", 1, p).ok());
    ASSERT_TRUE(vio.closeFile("wal", fd.value(), p).ok());
    EXPECT_EQ(vio.faultsFired(), 1u);
    EXPECT_EQ(slurp(p), "abd");
}

TEST_F(VioTest, ProbIsDeterministicUnderASeed)
{
    // Same seed -> identical fire pattern; different seed -> the
    // pattern is allowed to differ, and over 200 queries at p=0.5
    // both some fires and some passes must occur.
    auto pattern = [&](uint64_t seed) {
        Vio vio(seed);
        std::string err;
        EXPECT_TRUE(vio.parseFaults("path=wal,kind=enospc,prob=0.5",
                                    err))
            << err;
        const std::string p = path("f");
        Expected<int> fd =
            vio.openFile("wal", p, O_WRONLY | O_CREAT | O_TRUNC);
        EXPECT_TRUE(fd.ok());
        std::string bits;
        for (int i = 0; i < 200; ++i)
            bits += vio.writeAll("wal", fd.value(), "x", 1, p).ok()
                        ? '1'
                        : '0';
        EXPECT_TRUE(vio.closeFile("wal", fd.value(), p).ok());
        return bits;
    };
    const std::string a1 = pattern(7);
    const std::string a2 = pattern(7);
    EXPECT_EQ(a1, a2);
    EXPECT_NE(a1.find('0'), std::string::npos);
    EXPECT_NE(a1.find('1'), std::string::npos);
}

// ---------------------------------------------------------------------
// atomicWriteFile.

TEST_F(VioTest, AtomicWriteFilePublishesWholeFiles)
{
    const std::string p = path("out.json");
    ASSERT_TRUE(atomicWriteFile(nullptr, "status", p, "{\"a\":1}\n").ok());
    EXPECT_EQ(slurp(p), "{\"a\":1}\n");
    // Overwrite is atomic too.
    ASSERT_TRUE(atomicWriteFile(nullptr, "status", p, "{\"a\":2}\n").ok());
    EXPECT_EQ(slurp(p), "{\"a\":2}\n");
    // No temp files left behind.
    size_t files = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir_)) {
        (void)e;
        ++files;
    }
    EXPECT_EQ(files, 1u);
}

TEST_F(VioTest, AtomicWriteFileFaultsLeaveTheOldFileAndNoTemp)
{
    const std::string p = path("out.json");
    ASSERT_TRUE(atomicWriteFile(nullptr, "status", p, "old").ok());
    // A failure at each stage of the protocol must leave the published
    // file untouched and clean up its temp file.
    const char *specs[] = {
        "path=status,op=open,kind=eio,count=1",
        "path=status,kind=enospc,count=1",
        "path=status,kind=short-write,count=1",
        "path=status,kind=fsync-fail,count=1",
        "path=status,op=close,kind=eio,count=1",
        "path=status,kind=rename-fail,count=1",
    };
    for (const char *spec : specs) {
        Vio vio;
        std::string err;
        ASSERT_TRUE(vio.parseFaults(spec, err)) << spec << ": " << err;
        Status st = atomicWriteFile(&vio, "status", p, "new");
        EXPECT_FALSE(st.ok()) << spec;
        EXPECT_EQ(st.kind(), ErrorKind::IoError) << spec;
        EXPECT_EQ(slurp(p), "old") << spec;
        size_t files = 0;
        for (const auto &e :
             std::filesystem::directory_iterator(dir_)) {
            (void)e;
            ++files;
        }
        EXPECT_EQ(files, 1u) << spec << " left a temp file";
    }
    // With the budgets spent, the next publish goes through.
    ASSERT_TRUE(atomicWriteFile(nullptr, "status", p, "new").ok());
    EXPECT_EQ(slurp(p), "new");
}

// ---------------------------------------------------------------------
// Taxonomy hooks.

TEST(VioTaxonomyTest, NewErrorKindsRoundTripThroughTheParser)
{
    ErrorKind k;
    ASSERT_TRUE(parseErrorKind("io", k));
    EXPECT_EQ(k, ErrorKind::IoError);
    ASSERT_TRUE(parseErrorKind("IoError", k));
    EXPECT_EQ(k, ErrorKind::IoError);
    ASSERT_TRUE(parseErrorKind("unavailable", k));
    EXPECT_EQ(k, ErrorKind::Unavailable);
    EXPECT_STREQ(errorKindName(ErrorKind::IoError), "IoError");
    EXPECT_STREQ(errorKindName(ErrorKind::Unavailable), "Unavailable");
}

TEST(VioTaxonomyTest, KindNamesAreStableGrammarTokens)
{
    EXPECT_STREQ(ioFaultKindName(IoFaultKind::Enospc), "enospc");
    EXPECT_STREQ(ioFaultKindName(IoFaultKind::Eio), "eio");
    EXPECT_STREQ(ioFaultKindName(IoFaultKind::ShortWrite),
                 "short-write");
    EXPECT_STREQ(ioFaultKindName(IoFaultKind::FsyncFail), "fsync-fail");
    EXPECT_STREQ(ioFaultKindName(IoFaultKind::RenameFail),
                 "rename-fail");
}

} // namespace
} // namespace pathsched
