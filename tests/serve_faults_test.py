#!/usr/bin/env python3
"""Hostile-disk integration test for pathsched_serve (docs/robustness.md).

Drives the real daemon with a deterministic WAL fsync fault injected via
--io-inject and asserts the degraded-mode contract end to end:

  1. the first delta hits the injected EIO, is NACKed Unavailable, and
     the server enters degraded mode (visible in its log);
  2. the replay client's Unavailable backoff rides over the recovery
     tick: the whole stream still completes with exit 0 and every delta
     is admitted exactly once;
  3. the final status document carries the health block: state is back
     to healthy, with the degrade/recovery counters to prove the
     round trip happened;
  4. nothing acked was lost: a restart over the same state directory
     recovers to the bit-identical aggregate hash;
  5. a malformed --io-inject spec is rejected at startup with a
     diagnostic, not silently disarmed.

Usage: serve_faults_test.py <pathsched_serve> <pathsched_cli>
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

SERVE = sys.argv[1]
CLI = sys.argv[2]

failures = []


def check(cond, what):
    tag = "ok" if cond else "FAIL"
    print(f"  [{tag}] {what}")
    if not cond:
        failures.append(what)


def make_corpus(tmp, n):
    """n identical v2 path-profile dumps; distinct seqs deduplicate."""
    corpus = os.path.join(tmp, "deltas")
    os.makedirs(corpus)
    first = os.path.join(corpus, "d0.txt")
    r = subprocess.run(
        [CLI, "--workload", "wc", "--config", "P4",
         "--dump-paths", first, "--profile-version", "2"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    check(r.returncode == 0, f"profile dump exit 0 (got {r.returncode})")
    for i in range(1, n):
        shutil.copy(first, os.path.join(corpus, f"d{i}.txt"))
    return corpus


def start_server(tmp, tag, state, extra):
    sock = os.path.join(tmp, f"{tag}.sock")
    log = open(os.path.join(tmp, f"{tag}.log"), "w")
    proc = subprocess.Popen(
        [SERVE, "--listen", f"unix:{sock}", "--state", state,
         "--workload", "wc", "--config", "P4",
         "--snapshot-every", "2"] + extra,
        stdout=log, stderr=subprocess.STDOUT)
    deadline = time.time() + 30
    while time.time() < deadline and not os.path.exists(sock):
        if proc.poll() is not None:
            check(False, f"{tag}: server died at startup "
                         f"(exit {proc.returncode})")
            return proc, sock
        time.sleep(0.01)
    check(os.path.exists(sock), f"{tag}: server is listening")
    return proc, sock


def replay(sock, corpus, client="fault-test"):
    return subprocess.run(
        [SERVE, "--replay", corpus, "--connect", f"unix:{sock}",
         "--client", client, "--seq-base", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


def stop_and_read_status(proc, state, tag):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        check(False, f"{tag}: server did not stop on SIGTERM")
        return {}
    status_file = os.path.join(state, "status.json")
    check(os.path.exists(status_file), f"{tag}: status.json written")
    with open(status_file) as f:
        return json.load(f)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        corpus = make_corpus(tmp, 4)

        # --- Malformed spec: refused loudly at startup. ---
        print("startup: malformed --io-inject is rejected")
        r = subprocess.run(
            [SERVE, "--listen", f"unix:{os.path.join(tmp, 'bad.sock')}",
             "--state", os.path.join(tmp, "bad-state"),
             "--workload", "wc", "--config", "P4",
             "--io-inject", "path=wal,kind=sparks"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            timeout=60)
        check(r.returncode != 0, "bad spec exits nonzero")
        check("io-inject" in r.stdout,
              f"bad spec names the flag (got: {r.stdout.strip()!r})")

        # --- Faulted run: one WAL fsync EIO, then recovery. ---
        # A short epoch drives the recovery tick while the replay
        # client is still inside its Unavailable backoff (50..750 ms).
        print("fault: WAL fsync EIO on the first delta, then recover")
        state = os.path.join(tmp, "state")
        proc, sock = start_server(
            tmp, "faulty", state,
            ["--epoch-ms", "100",
             "--io-inject", "path=wal,op=fsync,kind=eio,count=1",
             "--io-inject-seed", "1"])
        r = replay(sock, corpus)
        check(r.returncode == 0,
              f"replay exit 0 despite the fault (got {r.returncode}): "
              f"{r.stdout}")
        status = stop_and_read_status(proc, state, "faulty")

        check(status.get("deltasAccepted") == 4,
              f"all 4 deltas admitted exactly once "
              f"(got {status.get('deltasAccepted')})")
        health = status.get("health", {})
        check(health.get("state") == "healthy",
              f"health is back to healthy (got {health.get('state')})")
        check(health.get("degradeEvents", 0) >= 1,
              f"a degrade event was recorded ({health})")
        check(health.get("recoveries", 0) >= 1,
              f"a recovery was recorded ({health})")
        check(health.get("nackedUnavailable", 0) >= 1,
              f"the faulted delta was NACKed Unavailable ({health})")
        with open(os.path.join(tmp, "faulty.log")) as f:
            log = f.read()
        check("entering degraded mode" in log,
              "server log announces degraded mode")
        check("injected eio" in log,
              "server log attributes the injected fault")

        # --- Durability: restart recovers the identical aggregate. ---
        print("restart: recovery over the faulted run's state dir")
        proc, sock = start_server(
            tmp, "restarted", state, ["--epoch-ms", "3600000"])
        recovered = stop_and_read_status(proc, state, "restarted")
        check(recovered.get("aggregateHash")
              == status.get("aggregateHash"),
              f"aggregate hash bit-identical across restart "
              f"({recovered.get('aggregateHash')} vs "
              f"{status.get('aggregateHash')})")
        check(recovered.get("health", {}).get("state") == "healthy",
              "restarted server is healthy")

    if failures:
        print(f"\n{len(failures)} check(s) FAILED")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
