/**
 * @file
 * Unit tests for the observability layer: stat registry semantics,
 * JSON writing/escaping/parsing, timer monotonicity, and trace-file
 * well-formedness (each trace is parsed back).
 */

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "obs/timer.hpp"

namespace pathsched::obs {
namespace {

// --------------------------------------------------------------------
// JSON escaping
// --------------------------------------------------------------------

TEST(JsonEscape, PassesPlainTextThrough)
{
    EXPECT_EQ(jsonEscape("form.P4.superblocks"), "form.P4.superblocks");
}

TEST(JsonEscape, EscapesQuotesAndBackslash)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("\"\\\""), "\\\"\\\\\\\"");
}

TEST(JsonEscape, EscapesControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
    EXPECT_EQ(jsonEscape("a\rb"), "a\\rb");
    EXPECT_EQ(jsonEscape(std::string("a\x01"
                                     "b")),
              "a\\u0001b");
    EXPECT_EQ(jsonEscape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonNumber, IntegralAndFractionalForms)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(-3.0), "-3");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
}

// --------------------------------------------------------------------
// Writer and parser round trips
// --------------------------------------------------------------------

TEST(JsonWriter, WritesNestedDocument)
{
    JsonWriter w(0);
    w.beginObject();
    w.member("n", uint64_t(7));
    w.key("xs");
    w.beginArray();
    w.value(int64_t(-1));
    w.value(true);
    w.valueNull();
    w.value("s");
    w.endArray();
    w.endObject();
    EXPECT_EQ(w.str(), R"({"n":7,"xs":[-1,true,null,"s"]})");
}

TEST(JsonParse, RoundTripsEscapedStrings)
{
    const std::string nasty = "q\"uote b\\ack \n\t\r ctrl\x01 end";
    JsonWriter w;
    w.beginObject();
    w.member("s", nasty);
    w.endObject();

    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(w.str(), v, &err)) << err;
    ASSERT_NE(v.find("s"), nullptr);
    EXPECT_EQ(v.find("s")->asString(), nasty);
}

TEST(JsonParse, ParsesScalarsArraysObjects)
{
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(
        R"({"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}})", v,
        &err))
        << err;
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_DOUBLE_EQ(a->items()[0].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(a->items()[1].asNumber(), 2.5);
    EXPECT_DOUBLE_EQ(a->items()[2].asNumber(), -300.0);
    EXPECT_TRUE(v.findPath("b.c")->asBool());
    EXPECT_TRUE(v.findPath("b.d")->isNull());
    EXPECT_EQ(v.findPath("b.missing"), nullptr);
}

TEST(JsonParse, RejectsMalformedInput)
{
    JsonValue v;
    EXPECT_FALSE(JsonValue::parse("", v));
    EXPECT_FALSE(JsonValue::parse("{", v));
    EXPECT_FALSE(JsonValue::parse("{\"a\":}", v));
    EXPECT_FALSE(JsonValue::parse("[1,]", v));
    EXPECT_FALSE(JsonValue::parse("\"unterminated", v));
    EXPECT_FALSE(JsonValue::parse("{} trailing", v));
    EXPECT_FALSE(JsonValue::parse("nulll", v));
}

// --------------------------------------------------------------------
// StatRegistry
// --------------------------------------------------------------------

TEST(StatRegistry, CountersAccumulateAndLookup)
{
    StatRegistry reg;
    EXPECT_TRUE(reg.empty());
    reg.addCounter("form.P4.superblocks", 3);
    reg.addCounter("form.P4.superblocks", 2);
    EXPECT_EQ(reg.counter("form.P4.superblocks"), 5u);
    EXPECT_EQ(reg.counter("no.such.stat"), 0u);
    ASSERT_NE(reg.find("form.P4.superblocks"), nullptr);
    EXPECT_EQ(reg.find("form.P4.superblocks")->kind,
              Stat::Kind::Counter);
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(StatRegistry, GaugesLastWriteWins)
{
    StatRegistry reg;
    reg.setGauge("layout.P4.codeBytes", 100);
    reg.setGauge("layout.P4.codeBytes", 250);
    EXPECT_DOUBLE_EQ(reg.find("layout.P4.codeBytes")->gauge, 250.0);
}

TEST(StatRegistry, DistributionsCollectSamples)
{
    StatRegistry reg;
    reg.addSample("time.P4.form.select", 1.0);
    reg.addSample("time.P4.form.select", 3.0);
    const Stat *s = reg.find("time.P4.form.select");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->dist.count(), 2u);
    EXPECT_DOUBLE_EQ(s->dist.mean(), 2.0);
}

TEST(StatRegistry, MergeCombinesAllKinds)
{
    StatRegistry a, b;
    a.addCounter("c", 1);
    a.addSample("d", 1.0);
    a.setGauge("g", 1.0);
    b.addCounter("c", 2);
    b.addCounter("only.in.b", 7);
    b.addSample("d", 3.0);
    b.setGauge("g", 9.0);
    a.merge(b);
    EXPECT_EQ(a.counter("c"), 3u);
    EXPECT_EQ(a.counter("only.in.b"), 7u);
    EXPECT_DOUBLE_EQ(a.find("g")->gauge, 9.0);
    EXPECT_EQ(a.find("d")->dist.count(), 2u);
    EXPECT_DOUBLE_EQ(a.find("d")->dist.mean(), 2.0);
}

TEST(StatRegistry, ToJsonNestsDottedPaths)
{
    StatRegistry reg;
    reg.addCounter("form.P4.superblocks", 4);
    reg.addCounter("form.P4e.superblocks", 6);
    reg.setGauge("layout.P4.codeBytes", 2048);

    JsonWriter w;
    reg.toJson(w);
    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(w.str(), v, &err)) << err;
    ASSERT_NE(v.findPath("form.P4.superblocks"), nullptr);
    EXPECT_DOUBLE_EQ(v.findPath("form.P4.superblocks")->asNumber(), 4.0);
    EXPECT_DOUBLE_EQ(v.findPath("form.P4e.superblocks")->asNumber(),
                     6.0);
    EXPECT_DOUBLE_EQ(v.findPath("layout.P4.codeBytes")->asNumber(),
                     2048.0);
}

TEST(StatRegistry, ToTextListsEveryStat)
{
    StatRegistry reg;
    reg.addCounter("a.count", 1234);
    reg.addSample("b.time", 2.0);
    const std::string text = reg.toText();
    EXPECT_NE(text.find("a.count"), std::string::npos);
    EXPECT_NE(text.find("1,234"), std::string::npos);
    EXPECT_NE(text.find("b.time"), std::string::npos);
    EXPECT_NE(text.find("mean"), std::string::npos);
}

// --------------------------------------------------------------------
// Timers and traces
// --------------------------------------------------------------------

TEST(ScopedTimer, ElapsedIsMonotonicAndNonNegative)
{
    ScopedTimer t("t");
    const double a = t.elapsedMs();
    ASSERT_GE(a, 0.0);
    // Burn a little time; elapsed must never decrease.
    volatile uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + uint64_t(i);
    const double b = t.elapsedMs();
    EXPECT_GE(b, a);
    t.stop();
    const double stopped = t.elapsedMs();
    EXPECT_GE(stopped, b);
    EXPECT_DOUBLE_EQ(t.elapsedMs(), stopped); // frozen after stop()
}

TEST(ScopedTimer, DeliversToAllSinks)
{
    StatRegistry reg;
    StageTrace trace;
    std::vector<StageTiming> timings;
    {
        ScopedTimer t("stage", &reg, &trace, &timings);
    }
    ASSERT_EQ(timings.size(), 1u);
    EXPECT_EQ(timings[0].name, "stage");
    EXPECT_GE(timings[0].ms, 0.0);
    const Stat *s = reg.find("stage");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->dist.count(), 1u);
    ASSERT_EQ(trace.events().size(), 1u);
    EXPECT_EQ(trace.events()[0].name, "stage");
}

TEST(Observer, PrefixesAndNullSafety)
{
    StatRegistry reg;
    Observer ob;
    ob.stats = &reg;
    const Observer sub = ob.withPrefix("time.P4.");
    sub.addCounter("x", 2);
    sub.addSample("y", 1.5);
    sub.setGauge("z", 3.0);
    EXPECT_EQ(reg.counter("time.P4.x"), 2u);
    EXPECT_NE(reg.find("time.P4.y"), nullptr);
    EXPECT_NE(reg.find("time.P4.z"), nullptr);

    const Observer null_ob; // all-null sinks: every call is a no-op
    null_ob.addCounter("a", 1);
    null_ob.addSample("b", 1.0);
    null_ob.setGauge("c", 1.0);
    { auto t = null_ob.time("d"); }
}

TEST(StageTrace, ChromeTraceParsesBackWellFormed)
{
    StageTrace trace;
    {
        ScopedTimer outer("outer", nullptr, &trace);
        ScopedTimer inner("inner \"quoted\"", nullptr, &trace);
    }
    const std::string doc = trace.toChromeTrace();

    JsonValue v;
    std::string err;
    ASSERT_TRUE(JsonValue::parse(doc, v, &err)) << err;
    const JsonValue *events = v.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->items().size(), 2u);
    for (const JsonValue &e : events->items()) {
        EXPECT_TRUE(e.find("name")->isString());
        EXPECT_EQ(e.find("ph")->asString(), "X");
        EXPECT_GE(e.find("ts")->asNumber(), 0.0);
        EXPECT_GE(e.find("dur")->asNumber(), 0.0);
        EXPECT_TRUE(e.find("pid")->isNumber());
        EXPECT_TRUE(e.find("tid")->isNumber());
    }
    // Destruction order stops `inner` first.
    EXPECT_EQ(events->items()[0].find("name")->asString(),
              "inner \"quoted\"");
    EXPECT_EQ(events->items()[1].find("name")->asString(), "outer");
    // The inner event nests within the outer one.
    const auto &in = events->items()[0];
    const auto &out = events->items()[1];
    EXPECT_GE(in.find("ts")->asNumber(), out.find("ts")->asNumber());
}

TEST(StageTrace, TimestampsAreMonotonicPerTrace)
{
    StageTrace trace;
    const uint64_t a = trace.nowUs();
    const uint64_t b = trace.nowUs();
    EXPECT_GE(b, a);
    trace.record("e1", a, b - a);
    trace.record("e2", b, 0);
    ASSERT_EQ(trace.events().size(), 2u);
    EXPECT_LE(trace.events()[0].tsUs, trace.events()[1].tsUs);
}

} // namespace
} // namespace pathsched::obs
