/**
 * @file
 * Unit tests for the IR: instructions, builder, CFG queries, verifier
 * and block duplication.
 */

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/clone.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

namespace pathsched::ir {
namespace {

/** A diamond: entry -> (left | right) -> join -> ret. */
Program
makeDiamond()
{
    Program prog;
    IrBuilder b(prog);
    const ProcId main = b.newProc("main", 1);
    const BlockId left = b.newBlock();
    const BlockId right = b.newBlock();
    const BlockId join = b.newBlock();

    const RegId x = b.param(0);
    b.brnz(x, left, right);
    b.setBlock(left);
    const RegId l = b.addi(x, 1);
    b.jmp(join);
    b.setBlock(right);
    const RegId r = b.addi(x, 2);
    b.jmp(join);
    b.setBlock(join);
    const RegId s = b.add(l, r);
    b.ret(s);
    prog.mainProc = main;
    return prog;
}

TEST(Instruction, SourceCollection)
{
    std::vector<RegId> srcs;
    makeAlu(Opcode::Add, 5, 1, 2).sources(srcs);
    EXPECT_EQ(srcs, (std::vector<RegId>{1, 2}));
    makeAluImm(Opcode::Add, 5, 1, 7).sources(srcs);
    EXPECT_EQ(srcs, (std::vector<RegId>{1}));
    makeLdi(5, 3).sources(srcs);
    EXPECT_TRUE(srcs.empty());
    makeSt(1, 0, 2).sources(srcs);
    EXPECT_EQ(srcs, (std::vector<RegId>{1, 2}));
    makeCall(5, 0, {3, 4}).sources(srcs);
    EXPECT_EQ(srcs, (std::vector<RegId>{3, 4}));
    makeRet(kNoReg).sources(srcs);
    EXPECT_TRUE(srcs.empty());
}

TEST(Instruction, RenameSources)
{
    Instruction i = makeAlu(Opcode::Add, 5, 1, 1);
    i.renameSources(1, 9);
    EXPECT_EQ(i.src1, 9u);
    EXPECT_EQ(i.src2, 9u);
    EXPECT_EQ(i.dst, 5u); // destinations never renamed

    Instruction c = makeCall(5, 0, {1, 2, 1});
    c.renameSources(1, 7);
    EXPECT_EQ(c.args, (std::vector<RegId>{7, 2, 7}));
}

TEST(Instruction, Classification)
{
    EXPECT_TRUE(makeBr(Opcode::BrNz, 0, 1, 2).isBranch());
    EXPECT_TRUE(makeBr(Opcode::BrZ, 0, 1, 2).isControlSlot());
    EXPECT_TRUE(makeJmp(1).isControlFlow());
    EXPECT_TRUE(makeRet(0).isControlFlow());
    EXPECT_TRUE(makeCall(0, 0, {}).isControlSlot());
    EXPECT_FALSE(makeCall(0, 0, {}).isControlFlow());
    EXPECT_TRUE(makeLd(0, 1, 0).isLoad());
    EXPECT_TRUE(makeLdSpec(0, 1, 0).isLoad());
    EXPECT_TRUE(makeSt(1, 0, 2).isStore());
    EXPECT_TRUE(makeSt(1, 0, 2).touchesMemory());
    EXPECT_TRUE(makeEmit(1).touchesMemory());
}

TEST(Instruction, Speculability)
{
    EXPECT_TRUE(makeAlu(Opcode::Add, 0, 1, 2).isSpeculable());
    EXPECT_TRUE(makeLdSpec(0, 1, 0).isSpeculable());
    EXPECT_FALSE(makeLd(0, 1, 0).isSpeculable());
    EXPECT_FALSE(makeSt(1, 0, 2).isSpeculable());
    EXPECT_FALSE(makeEmit(1).isSpeculable());
    EXPECT_FALSE(makeCall(0, 0, {}).isSpeculable());
    EXPECT_FALSE(makeBr(Opcode::BrNz, 0, 1, 2).isSpeculable());
}

TEST(Instruction, InvertBranch)
{
    EXPECT_EQ(invertBranch(Opcode::BrNz), Opcode::BrZ);
    EXPECT_EQ(invertBranch(Opcode::BrZ), Opcode::BrNz);
}

TEST(Builder, DiamondShape)
{
    Program prog = makeDiamond();
    const Procedure &p = prog.proc(0);
    EXPECT_EQ(p.blocks.size(), 4u);
    EXPECT_EQ(p.numParams, 1u);
    EXPECT_GT(p.numRegs, 1u);
    std::vector<std::string> errors;
    EXPECT_TRUE(verify(prog, VerifyMode::Strict, errors))
        << (errors.empty() ? "" : errors.front());
}

TEST(Builder, FindProc)
{
    Program prog = makeDiamond();
    EXPECT_EQ(prog.findProc("main"), 0u);
}

TEST(Cfg, SuccessorsOfDiamond)
{
    Program prog = makeDiamond();
    const Procedure &p = prog.proc(0);
    std::vector<BlockId> succs;
    successorsOf(p.blocks[0], succs);
    EXPECT_EQ(succs, (std::vector<BlockId>{1, 2}));
    successorsOf(p.blocks[1], succs);
    EXPECT_EQ(succs, (std::vector<BlockId>{3}));
    successorsOf(p.blocks[3], succs);
    EXPECT_TRUE(succs.empty()); // ret
}

TEST(Cfg, PredecessorsOfDiamond)
{
    Program prog = makeDiamond();
    const auto preds = computePreds(prog.proc(0));
    EXPECT_TRUE(preds[0].empty());
    EXPECT_EQ(preds[1], (std::vector<BlockId>{0}));
    EXPECT_EQ(preds[3], (std::vector<BlockId>{1, 2}));
}

TEST(Cfg, ExitsEnumeration)
{
    Program prog = makeDiamond();
    const Procedure &p = prog.proc(0);
    std::vector<BlockExit> exits;
    exitsOf(p.blocks[0], exits);
    ASSERT_EQ(exits.size(), 2u); // taken + fallthrough of the Br
    EXPECT_EQ(exits[0].target, 1u);
    EXPECT_FALSE(exits[0].isFallthrough);
    EXPECT_EQ(exits[1].target, 2u);
    EXPECT_TRUE(exits[1].isFallthrough);

    exitsOf(p.blocks[3], exits);
    ASSERT_EQ(exits.size(), 1u); // ret
    EXPECT_EQ(exits[0].target, kNoBlock);
}

TEST(Cfg, MidBlockExitSuccessors)
{
    // A superblock-form block: exit branch mid-block.
    BasicBlock bb;
    bb.instrs.push_back(makeLdi(0, 1));
    Instruction exit_br = makeBr(Opcode::BrNz, 0, 7, kNoBlock);
    exit_br.target1 = kNoBlock;
    bb.instrs.push_back(exit_br);
    bb.instrs.push_back(makeJmp(3));

    std::vector<BlockId> succs;
    successorsOf(bb, succs);
    EXPECT_EQ(succs, (std::vector<BlockId>{7, 3}));
}

TEST(Verifier, AcceptsStrictProgram)
{
    Program prog = makeDiamond();
    std::vector<std::string> errors;
    EXPECT_TRUE(verify(prog, VerifyMode::Strict, errors));
}

TEST(Verifier, RejectsMissingTerminator)
{
    Program prog = makeDiamond();
    prog.proc(0).blocks[1].instrs.pop_back(); // drop the jmp
    std::vector<std::string> errors;
    EXPECT_FALSE(verify(prog, VerifyMode::Strict, errors));
}

TEST(Verifier, RejectsOutOfRangeTarget)
{
    Program prog = makeDiamond();
    prog.proc(0).blocks[1].terminator().target0 = 99;
    std::vector<std::string> errors;
    EXPECT_FALSE(verify(prog, VerifyMode::Strict, errors));
}

TEST(Verifier, RejectsOutOfRangeRegister)
{
    Program prog = makeDiamond();
    prog.proc(0).blocks[3].instrs[0].src1 = 1000;
    std::vector<std::string> errors;
    EXPECT_FALSE(verify(prog, VerifyMode::Strict, errors));
}

TEST(Verifier, RejectsMidBlockBranchInStrictMode)
{
    Program prog = makeDiamond();
    auto &instrs = prog.proc(0).blocks[3].instrs;
    Instruction exit_br = makeBr(Opcode::BrNz, 0, 1, kNoBlock);
    instrs.insert(instrs.begin(), exit_br);
    std::vector<std::string> errors;
    EXPECT_FALSE(verify(prog, VerifyMode::Strict, errors));
    // ... but Superblock mode allows exactly this shape.
    EXPECT_TRUE(verify(prog, VerifyMode::Superblock, errors));
}

TEST(Verifier, RejectsBadCallArity)
{
    Program prog;
    IrBuilder b(prog);
    const ProcId callee = b.newProc("f", 2);
    b.ret(b.param(0));
    const ProcId main = b.newProc("main", 0);
    const RegId t = b.ldi(1);
    b.callValue(callee, {t}); // one arg, needs two
    b.ret(t);
    prog.mainProc = main;
    std::vector<std::string> errors;
    EXPECT_FALSE(verify(prog, VerifyMode::Strict, errors));
}

TEST(Verifier, RejectsEmptyBlock)
{
    Program prog = makeDiamond();
    prog.proc(0).newBlock();
    std::vector<std::string> errors;
    EXPECT_FALSE(verify(prog, VerifyMode::Strict, errors));
}

TEST(Clone, AppendBlockCopy)
{
    Program prog = makeDiamond();
    Procedure &p = prog.proc(0);
    const size_t before = p.blocks.size();
    const BlockId copy = appendBlockCopy(p, 1);
    EXPECT_EQ(p.blocks.size(), before + 1);
    EXPECT_EQ(p.blocks[copy].instrs.size(), p.blocks[1].instrs.size());
    EXPECT_EQ(p.blocks[copy].terminator().target0, 3u);
}

TEST(Clone, RemapTargets)
{
    Program prog = makeDiamond();
    Procedure &p = prog.proc(0);
    remapTargets(p.blocks[0], {{1, 3}});
    EXPECT_EQ(p.blocks[0].terminator().target0, 3u);
    EXPECT_EQ(p.blocks[0].terminator().target1, 2u); // unmapped stays
}

TEST(Clone, DuplicateRegionLinksInternally)
{
    Program prog = makeDiamond();
    Procedure &p = prog.proc(0);
    const auto copies = duplicateRegion(p, {1, 3});
    ASSERT_EQ(copies.size(), 2u);
    // The copy of block 1 must jump to the copy of block 3.
    EXPECT_EQ(p.blocks[copies[0]].terminator().target0, copies[1]);
}

TEST(Printer, MentionsKeyPieces)
{
    Program prog = makeDiamond();
    const std::string text = toString(prog);
    EXPECT_NE(text.find("proc main"), std::string::npos);
    EXPECT_NE(text.find("brnz"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
    EXPECT_NE(text.find("B3"), std::string::npos);
}

TEST(Printer, InstructionForms)
{
    EXPECT_EQ(toString(makeLdi(3, -7)), "ldi r3, -7");
    EXPECT_EQ(toString(makeAlu(Opcode::Add, 2, 0, 1)), "add r2, r0, r1");
    EXPECT_EQ(toString(makeAluImm(Opcode::Mul, 2, 0, 9)),
              "mul r2, r0, 9");
    EXPECT_EQ(toString(makeLd(1, 0, 4)), "ld r1, [r0 + 4]");
    EXPECT_EQ(toString(makeSt(0, 2, 1)), "st [r0 + 2], r1");
    EXPECT_EQ(toString(makeJmp(5)), "jmp B5");
}

TEST(SideTables, SyncGrowsWithBlocks)
{
    Program prog = makeDiamond();
    Procedure &p = prog.proc(0);
    p.newBlock();
    EXPECT_EQ(p.schedules.size(), p.blocks.size());
    EXPECT_EQ(p.superblocks.size(), p.blocks.size());
}

TEST(Program, InstrCount)
{
    Program prog = makeDiamond();
    EXPECT_EQ(prog.instrCount(), prog.proc(0).instrCount());
    EXPECT_EQ(prog.proc(0).instrCount(), 7u);
}

} // namespace
} // namespace pathsched::ir
