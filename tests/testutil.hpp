/**
 * @file
 * Test utilities: a seeded structured random-program generator used by
 * the property tests.
 *
 * This is now a thin shim over the production workload generator
 * (gen/generator.hpp) — the same engine the differential fuzzer
 * drives — so property tests and fuzzing exercise identical program
 * shapes.  Generated programs are strict-mode, always terminate (loops
 * have fixed trip counts), only touch memory inside their declared
 * window, and produce observable output through Emit and the return
 * value — which makes them ideal for differential testing of every
 * transformation pass (output must be invariant).
 */

#ifndef PATHSCHED_TESTS_TESTUTIL_HPP
#define PATHSCHED_TESTS_TESTUTIL_HPP

#include "interp/interpreter.hpp"
#include "ir/procedure.hpp"

namespace pathsched::testing {

/** Knobs for the random program generator (legacy shape; forwarded
 *  onto gen::GenSpec — new code should use GenSpec directly). */
struct GenParams
{
    uint32_t numProcs = 3;        ///< procedures beyond main
    uint32_t maxDepth = 3;        ///< nesting depth of if/loop regions
    uint32_t maxStmtsPerRegion = 5;
    uint64_t memWords = 64;       ///< scratch memory window
    bool allowCalls = true;
    bool allowLoads = true;
    bool allowStores = true;
    bool allowEmit = true;
};

/** A generated program plus an input that exercises it. */
struct GeneratedProgram
{
    ir::Program program;
    interp::ProgramInput input;
};

/**
 * Generate a random structured program from @p seed.  The call graph
 * is acyclic (procedures only call lower-numbered ones), every loop
 * has a data-independent trip count, and every memory access is within
 * [0, memWords).
 */
GeneratedProgram makeRandomProgram(uint64_t seed,
                                   const GenParams &params = GenParams());

} // namespace pathsched::testing

#endif // PATHSCHED_TESTS_TESTUTIL_HPP
