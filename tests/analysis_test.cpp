/**
 * @file
 * Unit tests for dominators, loop detection, liveness and the call
 * graph.
 */

#include <gtest/gtest.h>

#include "analysis/callgraph.hpp"
#include "analysis/dominators.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "ir/builder.hpp"

namespace pathsched::analysis {
namespace {

using ir::BlockId;
using ir::IrBuilder;
using ir::Opcode;
using ir::ProcId;
using ir::Program;
using ir::RegId;

/** entry -> (left|right) -> join -> ret */
Program
makeDiamond()
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId left = b.newBlock();
    const BlockId right = b.newBlock();
    const BlockId join = b.newBlock();
    b.brnz(b.param(0), left, right);
    b.setBlock(left);
    b.jmp(join);
    b.setBlock(right);
    b.jmp(join);
    b.setBlock(join);
    b.ret(b.param(0));
    return prog;
}

/** entry -> head; head -> (body|exit); body -> head (back edge). */
Program
makeLoop()
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId head = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId exit_b = b.newBlock();
    const RegId i = b.freshReg();
    b.ldiTo(i, 3);
    b.jmp(head);
    b.setBlock(head);
    const RegId c = b.alui(Opcode::CmpGt, i, 0);
    b.brnz(c, body, exit_b);
    b.setBlock(body);
    b.aluiTo(Opcode::Sub, i, i, 1);
    b.jmp(head);
    b.setBlock(exit_b);
    b.ret(i);
    return prog;
}

TEST(Dominators, Diamond)
{
    Program prog = makeDiamond();
    Dominators doms(prog.proc(0));
    EXPECT_EQ(doms.idom(0), 0u);
    EXPECT_EQ(doms.idom(1), 0u);
    EXPECT_EQ(doms.idom(2), 0u);
    EXPECT_EQ(doms.idom(3), 0u); // join's idom is the entry, not an arm
    EXPECT_TRUE(doms.dominates(0, 3));
    EXPECT_FALSE(doms.dominates(1, 3));
    EXPECT_TRUE(doms.dominates(2, 2));
}

TEST(Dominators, LoopHeaderDominatesBody)
{
    Program prog = makeLoop();
    Dominators doms(prog.proc(0));
    EXPECT_TRUE(doms.dominates(1, 2)); // head dominates body
    EXPECT_TRUE(doms.dominates(1, 3)); // ... and the exit
    EXPECT_FALSE(doms.dominates(2, 1));
}

TEST(Dominators, UnreachableBlockReported)
{
    Program prog = makeDiamond();
    {
        IrBuilder b(prog);
        b.setProc(0);
        const BlockId dead = b.newBlock();
        b.setBlock(dead);
        b.ret(ir::kNoReg);
    }
    Dominators doms(prog.proc(0));
    EXPECT_FALSE(doms.reachable(4));
    EXPECT_TRUE(doms.reachable(3));
}

TEST(Dominators, RpoStartsAtEntry)
{
    Program prog = makeLoop();
    Dominators doms(prog.proc(0));
    ASSERT_FALSE(doms.rpo().empty());
    EXPECT_EQ(doms.rpo().front(), 0u);
}

TEST(Loops, DetectsBackEdgeAndHeader)
{
    Program prog = makeLoop();
    Dominators doms(prog.proc(0));
    LoopInfo loops(prog.proc(0), doms);
    EXPECT_TRUE(loops.isBackEdge(2, 1));
    EXPECT_FALSE(loops.isBackEdge(1, 2));
    EXPECT_FALSE(loops.isBackEdge(0, 1));
    EXPECT_TRUE(loops.isLoopHeader(1));
    EXPECT_FALSE(loops.isLoopHeader(2));
    ASSERT_EQ(loops.loops().size(), 1u);
    EXPECT_EQ(loops.loops()[0].header, 1u);
    // Natural loop body: header and the latch block.
    EXPECT_EQ(loops.loops()[0].body, (std::vector<BlockId>{1, 2}));
}

TEST(Loops, DiamondHasNoLoops)
{
    Program prog = makeDiamond();
    Dominators doms(prog.proc(0));
    LoopInfo loops(prog.proc(0), doms);
    EXPECT_TRUE(loops.loops().empty());
    EXPECT_FALSE(loops.isLoopHeader(0));
}

TEST(Liveness, StraightLine)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const RegId x = b.param(0);
    const RegId t = b.addi(x, 1);
    b.ret(t);
    Liveness live(prog.proc(0));
    EXPECT_TRUE(live.liveIn(0).test(x));
    EXPECT_FALSE(live.liveIn(0).test(t)); // defined before use
}

TEST(Liveness, AcrossBlocks)
{
    Program prog = makeDiamond(); // join returns param(0)
    Liveness live(prog.proc(0));
    // param 0 is live into every block on the way to the ret.
    EXPECT_TRUE(live.liveIn(0).test(0));
    EXPECT_TRUE(live.liveIn(1).test(0));
    EXPECT_TRUE(live.liveIn(2).test(0));
    EXPECT_TRUE(live.liveIn(3).test(0));
    EXPECT_TRUE(live.liveOut(1).test(0));
}

TEST(Liveness, LoopCarried)
{
    Program prog = makeLoop();
    Liveness live(prog.proc(0));
    const RegId i = 1; // first fresh reg after the one param
    EXPECT_TRUE(live.liveIn(1).test(i));  // head reads i
    EXPECT_TRUE(live.liveOut(2).test(i)); // body feeds it back
    EXPECT_TRUE(live.liveIn(3).test(i));  // exit returns it
}

TEST(Liveness, DeadAfterLastUse)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const BlockId next = b.newBlock();
    const RegId t = b.ldi(5);
    b.emitValue(t);
    b.jmp(next);
    b.setBlock(next);
    const RegId u = b.ldi(6);
    b.ret(u);
    Liveness live(prog.proc(0));
    EXPECT_FALSE(live.liveIn(1).test(t));
    EXPECT_FALSE(live.liveOut(0).test(t));
}

TEST(Liveness, NumRegsSnapshot)
{
    Program prog = makeLoop();
    Liveness live(prog.proc(0));
    EXPECT_EQ(live.numRegs(), prog.proc(0).numRegs);
    prog.proc(0).newReg();
    EXPECT_EQ(live.numRegs() + 1, prog.proc(0).numRegs);
}

TEST(CallGraph, StaticEdgesAndWeights)
{
    Program prog;
    IrBuilder b(prog);
    const ProcId callee = b.newProc("f", 0);
    b.ret(b.ldi(1));
    const ProcId main = b.newProc("main", 0);
    const RegId v = b.callValue(callee, {});
    b.ret(v);
    prog.mainProc = main;

    CallGraph cg(prog);
    EXPECT_EQ(cg.numProcs(), 2u);
    auto edges = cg.edges();
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0].caller, main);
    EXPECT_EQ(edges[0].callee, callee);
    EXPECT_EQ(edges[0].weight, 0u);

    cg.addWeight(main, callee, 42);
    cg.addWeight(main, callee, 8);
    edges = cg.edges();
    EXPECT_EQ(edges[0].weight, 50u);
}

} // namespace
} // namespace pathsched::analysis
