/**
 * @file
 * Tests for linear-scan register allocation.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "machine/machine.hpp"
#include "regalloc/linear_scan.hpp"
#include "sched/compact.hpp"
#include "testutil.hpp"

namespace pstest = pathsched::testing;

namespace pathsched::regalloc {
namespace {

using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::RegId;

TEST(RegAlloc, MapsOntoSmallFile)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    RegId v = b.param(0);
    for (int i = 0; i < 40; ++i)
        v = b.addi(v, 1); // 40 short-lived temporaries
    b.ret(v);

    const AllocStats stats = allocateProgram(prog, 8);
    EXPECT_EQ(stats.procsAllocated, 1u);
    EXPECT_EQ(stats.procsSkipped, 0u);
    EXPECT_LE(stats.maxPressure, 8u);
    for (const auto &ins : prog.proc(0).blocks[0].instrs) {
        if (ins.hasDst()) {
            EXPECT_LT(ins.dst, 8u);
        }
    }
    interp::ProgramInput in;
    in.mainArgs = {2};
    EXPECT_EQ(interp::Interpreter(prog).run(in).returnValue, 42);
}

TEST(RegAlloc, ParamsKeepTheirRegisters)
{
    Program prog;
    IrBuilder b(prog);
    const auto callee = b.newProc("f", 2);
    b.ret(b.sub(b.param(0), b.param(1)));
    const auto main = b.newProc("main", 0);
    const RegId a = b.ldi(10);
    const RegId c = b.ldi(3);
    b.ret(b.callValue(callee, {a, c}));
    prog.mainProc = main;

    allocateProgram(prog, 16);
    // Callee must still read params from registers 0 and 1.
    const auto &f = prog.proc(callee);
    EXPECT_EQ(f.numParams, 2u);
    interp::ProgramInput in;
    EXPECT_EQ(interp::Interpreter(prog).run(in).returnValue, 7);
}

TEST(RegAlloc, HighPressureSpillsAndSucceeds)
{
    // 40 simultaneously live values cannot fit 8 registers: the
    // allocator spills the longest ranges to memory slots and retries.
    Program prog;
    prog.memWords = 4;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    std::vector<RegId> vals;
    for (int i = 0; i < 40; ++i)
        vals.push_back(b.ldi(i));
    RegId acc = b.ldi(0);
    for (const RegId v : vals)
        acc = b.add(acc, v); // all 40 live at the first add
    b.ret(acc);

    const uint64_t mem_before = prog.memWords;
    const AllocStats stats = allocateProgram(prog, 8);
    EXPECT_EQ(stats.procsAllocated, 1u);
    EXPECT_EQ(stats.procsSkipped, 0u);
    EXPECT_GT(stats.regsSpilled, 0u);
    EXPECT_EQ(prog.memWords, mem_before + stats.regsSpilled);
    for (const auto &ins : prog.proc(0).blocks[0].instrs) {
        if (ins.hasDst()) {
            EXPECT_LT(ins.dst, 8u);
        }
    }
    EXPECT_EQ(interp::Interpreter(prog).run({}).returnValue,
              40 * 39 / 2);
}

TEST(RegAlloc, RecursiveProcNeverUsesStaticSpillSlots)
{
    // A recursive procedure with high pressure must fall back (static
    // slots would be shared across live activations).
    Program prog;
    IrBuilder b(prog);
    const auto rec = b.newProc("rec", 1);
    {
        const auto base = b.newBlock();
        const auto deep = b.newBlock();
        const RegId n = b.param(0);
        std::vector<RegId> vals;
        for (int i = 0; i < 20; ++i)
            vals.push_back(b.addi(n, i)); // 20 live at once
        const RegId c = b.cmpLti(n, 1);
        b.brnz(c, base, deep);
        b.setBlock(base);
        {
            RegId acc = b.ldi(0);
            for (const RegId v : vals)
                acc = b.add(acc, v);
            b.ret(acc);
        }
        b.setBlock(deep);
        {
            const RegId m = b.alui(Opcode::Sub, n, 1);
            const RegId sub = b.callValue(rec, {m});
            RegId acc = sub;
            for (const RegId v : vals)
                acc = b.add(acc, v);
            b.ret(acc);
        }
    }
    const auto main = b.newProc("main", 0);
    b.ret(b.callValue(rec, {b.ldi(3)}));
    prog.mainProc = main;

    interp::Interpreter ref(prog);
    const int64_t expect = ref.run({}).returnValue;

    const AllocStats stats = allocateProgram(prog, 8);
    EXPECT_EQ(stats.procsSkipped, 1u); // rec falls back
    EXPECT_EQ(interp::Interpreter(prog).run({}).returnValue, expect);
}

TEST(RegAlloc, LiveAcrossBlocksSurvives)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const auto next = b.newBlock();
    const RegId keep = b.ldi(99);
    RegId v = b.param(0);
    for (int i = 0; i < 10; ++i)
        v = b.addi(v, 1);
    b.jmp(next);
    b.setBlock(next);
    b.ret(b.add(keep, v));

    allocateProgram(prog, 6);
    interp::ProgramInput in;
    in.mainArgs = {1};
    EXPECT_EQ(interp::Interpreter(prog).run(in).returnValue, 110);
}

/** Property: allocation (after compaction) preserves behaviour. */
class AllocSemantics : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(AllocSemantics, OutputInvariantAndBounded)
{
    pstest::GeneratedProgram gen = pstest::makeRandomProgram(GetParam());
    const auto ref = interp::Interpreter(gen.program).run(gen.input);

    Program prog = gen.program;
    const auto mm = machine::MachineModel::unitLatency();
    sched::compactProgram(prog, mm);
    const AllocStats stats = allocateProgram(prog, mm.numRegs);
    sched::scheduleProgram(prog, mm);

    for (const auto &proc : prog.procs) {
        if (proc.numRegs > mm.numRegs)
            continue; // skipped proc (pressure fallback)
        for (const auto &bb : proc.blocks) {
            for (const auto &ins : bb.instrs) {
                if (ins.hasDst()) {
                    EXPECT_LT(ins.dst, mm.numRegs);
                }
            }
        }
    }
    (void)stats;

    const auto got = interp::Interpreter(prog).run(gen.input);
    EXPECT_EQ(got.output, ref.output) << "seed " << GetParam();
    EXPECT_EQ(got.returnValue, ref.returnValue) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocSemantics,
                         ::testing::Range<uint64_t>(1, 21));

/** Property: a tiny register file forces spilling on random programs
 *  (acyclic call graphs, so every procedure is spill-eligible) and
 *  behaviour still holds. */
class SpillSemantics : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SpillSemantics, OutputInvariantUnderForcedSpills)
{
    pstest::GeneratedProgram gen = pstest::makeRandomProgram(GetParam());
    const auto ref = interp::Interpreter(gen.program).run(gen.input);

    Program prog = gen.program;
    const auto mm = machine::MachineModel::unitLatency();
    sched::compactProgram(prog, mm);
    const AllocStats stats = allocateProgram(prog, 12);
    sched::scheduleProgram(prog, mm);
    // With 12 registers and renaming-scale pressure, something spills
    // (or everything fits — both are legal; semantics must hold).
    (void)stats;

    const auto got = interp::Interpreter(prog).run(gen.input);
    EXPECT_EQ(got.output, ref.output) << "seed " << GetParam();
    EXPECT_EQ(got.returnValue, ref.returnValue) << "seed " << GetParam();
    EXPECT_EQ(stats.procsSkipped, 0u)
        << "acyclic call graphs must always allocate via spilling";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillSemantics,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
} // namespace pathsched::regalloc
