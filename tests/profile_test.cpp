/**
 * @file
 * Tests for the edge and general-path profilers, including a
 * brute-force differential property test of path frequencies on random
 * programs.
 */

#include <gtest/gtest.h>

#include <map>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "support/rng.hpp"
#include "testutil.hpp"

namespace pstest = pathsched::testing;

namespace pathsched::profile {
namespace {

using ir::BlockId;
using ir::IrBuilder;
using ir::Opcode;
using ir::ProcId;
using ir::Program;
using ir::RegId;

/** Records the per-activation block sequences of a run. */
class TraceRecorder : public interp::TraceListener
{
  public:
    void
    onProcEnter(ProcId proc) override
    {
        stack_.push_back({proc, {0}});
    }

    void
    onProcExit(ProcId) override
    {
        finished.push_back(std::move(stack_.back()));
        stack_.pop_back();
    }

    void
    onEdge(ProcId, BlockId, BlockId to) override
    {
        stack_.back().second.push_back(to);
    }

    std::vector<std::pair<ProcId, std::vector<BlockId>>> finished;

  private:
    std::vector<std::pair<ProcId, std::vector<BlockId>>> stack_;
};

/**
 * Reference implementation of the general-path frequency: the number
 * of trace positions whose budget-bounded window ends with @p seq.
 */
uint64_t
bruteForceFreq(const ir::Program &prog,
               const std::vector<std::pair<ProcId, std::vector<BlockId>>>
                   &activations,
               ProcId proc, const std::vector<BlockId> &seq,
               const PathProfileParams &params)
{
    const auto &p = prog.procs[proc];
    auto is_cond = [&](BlockId b2) {
        return !p.blocks[b2].empty() &&
               p.blocks[b2].terminator().isBranch();
    };

    uint64_t count = 0;
    for (const auto &[ap, trace] : activations) {
        if (ap != proc)
            continue;
        for (size_t i = 0; i < trace.size(); ++i) {
            // Maximal window length at end position i.
            size_t len = 1;
            uint32_t branches = 0;
            while (len <= i) {
                const BlockId older = trace[i - len];
                const uint32_t cost = is_cond(older) ? 1 : 0;
                if (branches + cost > params.maxBranches ||
                    len + 1 > params.maxBlocks) {
                    break;
                }
                branches += cost;
                ++len;
            }
            if (seq.size() > len)
                continue;
            bool match = true;
            for (size_t k = 0; k < seq.size(); ++k) {
                if (trace[i - k] != seq[seq.size() - 1 - k]) {
                    match = false;
                    break;
                }
            }
            count += match;
        }
    }
    return count;
}

/** alt-style loop: head -> (left|right) -> latch -> head, TTTF. */
Program
makePatternLoop(int64_t trips)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const BlockId head = b.newBlock();   // 1
    const BlockId left = b.newBlock();   // 2
    const BlockId right = b.newBlock();  // 3
    const BlockId latch = b.newBlock();  // 4
    const BlockId done = b.newBlock();   // 5
    const RegId i = b.freshReg();
    const RegId n = b.ldi(trips);
    b.ldiTo(i, 0);
    b.jmp(head);
    b.setBlock(head);
    const RegId t = b.alui(Opcode::And, i, 3);
    const RegId c = b.alui(Opcode::CmpNe, t, 3);
    b.brnz(c, left, right);
    b.setBlock(left);
    b.jmp(latch);
    b.setBlock(right);
    b.jmp(latch);
    b.setBlock(latch);
    b.aluiTo(Opcode::Add, i, i, 1);
    const RegId more = b.alu(Opcode::CmpLt, i, n);
    b.brnz(more, head, done);
    b.setBlock(done);
    b.ret(i);
    return prog;
}

TEST(EdgeProfiler, CountsEdgesAndBlocks)
{
    Program prog = makePatternLoop(8); // pattern TTTF TTTF
    EdgeProfiler ep(prog);
    interp::Interpreter interp(prog);
    interp.addListener(&ep);
    interp.run({});

    EXPECT_EQ(ep.blockFreq(0, 0), 1u);
    EXPECT_EQ(ep.blockFreq(0, 1), 8u); // head, once per iteration
    EXPECT_EQ(ep.edgeFreq(0, 1, 2), 6u); // left taken 3 of 4
    EXPECT_EQ(ep.edgeFreq(0, 1, 3), 2u);
    EXPECT_EQ(ep.edgeFreq(0, 4, 1), 7u); // back edge
    EXPECT_EQ(ep.edgeFreq(0, 4, 5), 1u);
    EXPECT_EQ(ep.edgeFreq(0, 1, 5), 0u); // never an edge
}

TEST(EdgeProfiler, MostLikelyQueries)
{
    Program prog = makePatternLoop(8);
    EdgeProfiler ep(prog);
    interp::Interpreter interp(prog);
    interp.addListener(&ep);
    interp.run({});

    EXPECT_EQ(ep.mostLikelySucc(0, 1), 2u); // left dominates
    EXPECT_EQ(ep.mostLikelyPred(0, 4), 2u);
    EXPECT_EQ(ep.mostLikelySucc(0, 4), 1u); // back edge dominates
    EXPECT_EQ(ep.mostLikelySucc(0, 5), ir::kNoBlock);
}

TEST(PathProfiler, ExactPatternFrequencies)
{
    Program prog = makePatternLoop(16); // 4 periods of TTTF
    PathProfiler pp(prog);
    interp::Interpreter interp(prog);
    interp.addListener(&pp);
    interp.run({});
    pp.finalize();

    EXPECT_EQ(pp.blockFreq(0, 1), 16u);
    // Within a period, head->left happens 3 times, head->right once.
    EXPECT_EQ(pp.pathFreq(0, {1, 2}), 12u);
    EXPECT_EQ(pp.pathFreq(0, {1, 3}), 4u);
    // The paper's Fig. 3 point: after right, the next iteration goes
    // left (pattern knowledge an edge profile cannot express).
    EXPECT_EQ(pp.pathFreq(0, {3, 4, 1, 2}), 3u);
    EXPECT_EQ(pp.pathFreq(0, {3, 4, 1, 3}), 0u);
    // After two lefts following a right, still left.
    EXPECT_EQ(pp.pathFreq(0, {3, 4, 1, 2, 4, 1, 2}), 3u);
}

TEST(PathProfiler, LongestSuffixFallback)
{
    Program prog = makePatternLoop(32);
    PathProfileParams params;
    params.maxBranches = 3; // shallow profile
    PathProfiler pp(prog, params);
    interp::Interpreter interp(prog);
    interp.addListener(&pp);
    interp.run({});
    pp.finalize();

    // A query longer than the depth falls back to its longest suffix
    // with exact frequencies instead of returning 0.
    const std::vector<BlockId> longq = {1, 2, 4, 1, 2, 4, 1, 2, 4};
    const uint64_t f_long = pp.pathFreq(0, longq);
    EXPECT_GT(f_long, 0u);
    // ... and equals the frequency of the suffix the budget admits.
    const std::vector<BlockId> shallow = {1, 2, 4, 1, 2, 4};
    EXPECT_EQ(f_long, pp.pathFreq(0, shallow));
}

TEST(PathProfiler, NeverExecutedPathIsZero)
{
    Program prog = makePatternLoop(8);
    PathProfiler pp(prog);
    interp::Interpreter interp(prog);
    interp.addListener(&pp);
    interp.run({});
    pp.finalize();
    EXPECT_EQ(pp.pathFreq(0, {2, 3}), 0u); // left never precedes right
    EXPECT_EQ(pp.blockFreq(0, 5), 1u);
}

TEST(PathProfiler, PerActivationWindows)
{
    // Recursive procedure: windows must not leak across activations.
    Program prog;
    IrBuilder b(prog);
    const ProcId rec = b.newProc("rec", 1);
    {
        const BlockId base = b.newBlock(); // 1
        const BlockId deeper = b.newBlock(); // 2
        const RegId n = b.param(0);
        b.brnz(n, deeper, base);
        b.setBlock(base);
        b.ret(b.ldi(0));
        b.setBlock(deeper);
        const RegId m = b.alui(Opcode::Sub, n, 1);
        const RegId v = b.callValue(rec, {m});
        b.ret(v);
    }
    const ProcId main = b.newProc("main", 0);
    b.ret(b.callValue(rec, {b.ldi(3)}));
    prog.mainProc = main;

    PathProfiler pp(prog);
    interp::Interpreter interp(prog);
    interp.addListener(&pp);
    interp.run({});
    pp.finalize();

    // Each activation sees entry(0) then one successor; a cross-
    // activation sequence like [2, 2] along the recursion must not be
    // recorded as a path.
    EXPECT_EQ(pp.pathFreq(rec, {0, 2}), 3u);
    EXPECT_EQ(pp.pathFreq(rec, {0, 1}), 1u);
    EXPECT_EQ(pp.pathFreq(rec, {2, 2}), 0u);
}

TEST(PathProfiler, ForwardModeChopsAtBackEdges)
{
    Program prog = makePatternLoop(16);
    PathProfileParams params;
    params.forwardPathsOnly = true;
    PathProfiler pp(prog, params);
    interp::Interpreter interp(prog);
    interp.addListener(&pp);
    interp.run({});
    pp.finalize();

    // Within-iteration paths survive...
    EXPECT_EQ(pp.pathFreq(0, {1, 2, 4}), 12u);
    // ... but any path spanning the back edge (4 -> 1) is chopped.
    EXPECT_EQ(pp.pathFreq(0, {4, 1}), 0u);
    EXPECT_EQ(pp.pathFreq(0, {3, 4, 1, 2}), 0u);
}

TEST(PathProfiler, StepAndPathCounters)
{
    Program prog = makePatternLoop(512);
    PathProfiler pp(prog);
    interp::Interpreter interp(prog);
    interp.addListener(&pp);
    interp.run({});
    pp.finalize();
    EXPECT_GT(pp.numSteps(), 0u);
    EXPECT_GT(pp.numPaths(), 0u);
    // Dynamic steps far exceed distinct paths on looping programs —
    // the precondition of the paper's O(1)-per-edge claim.
    EXPECT_GT(pp.numSteps(), uint64_t(pp.numPaths()));
}

/** Differential property test against the brute-force reference. */
class PathProfileProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(PathProfileProperty, MatchesBruteForce)
{
    const uint64_t seed = GetParam();
    pstest::GeneratedProgram gen = pstest::makeRandomProgram(seed);

    PathProfileParams params;
    params.maxBranches = 4; // small depth stresses the budget logic
    params.maxBlocks = 10;

    PathProfiler pp(gen.program, params);
    TraceRecorder rec;
    interp::Interpreter interp(gen.program);
    interp.addListener(&pp);
    interp.addListener(&rec);
    interp.run(gen.input);
    pp.finalize();

    // Sample query sequences from real trace windows plus mutations.
    Rng rng(seed ^ 0xabcdef);
    int checked = 0;
    for (const auto &[proc, trace] : rec.finished) {
        if (trace.empty() || checked > 40)
            continue;
        for (int q = 0; q < 6; ++q) {
            const size_t end = rng.below(trace.size());
            const size_t len = 1 + rng.below(std::min<size_t>(end + 1, 8));
            std::vector<BlockId> seq(trace.begin() + ptrdiff_t(end + 1 - len),
                                     trace.begin() + ptrdiff_t(end + 1));
            if (rng.chance(0.2) && !seq.empty())
                seq[rng.below(seq.size())] ^= 1; // likely-bogus mutation
            // The trie returns longest-suffix counts for over-budget
            // queries; truncate the query by the same budget rule so
            // the brute-force reference answers the same question.
            {
                const auto &p = gen.program.procs[proc];
                auto is_cond = [&](BlockId b2) {
                    return b2 < p.blocks.size() &&
                           !p.blocks[b2].empty() &&
                           p.blocks[b2].terminator().isBranch();
                };
                size_t keep = 1;
                uint32_t branches = 0;
                while (keep < seq.size()) {
                    const BlockId older = seq[seq.size() - 1 - keep];
                    const uint32_t cost = is_cond(older) ? 1 : 0;
                    if (branches + cost > params.maxBranches ||
                        keep + 1 > params.maxBlocks) {
                        break;
                    }
                    branches += cost;
                    ++keep;
                }
                seq.erase(seq.begin(),
                          seq.begin() + ptrdiff_t(seq.size() - keep));
            }
            const uint64_t expect = bruteForceFreq(
                gen.program, rec.finished, proc, seq, params);
            const uint64_t got = pp.pathFreq(proc, seq);
            if (expect > 0 || got > 0) {
                EXPECT_EQ(got, expect)
                    << "seed " << seed << " proc " << proc << " len "
                    << seq.size();
            }
            ++checked;
        }
    }
    EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathProfileProperty,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
} // namespace pathsched::profile
