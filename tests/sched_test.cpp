/**
 * @file
 * Tests for the compact pass: local optimization, renaming with
 * compensation stubs, the dependence graph / list scheduler (via
 * validateSchedule), and differential semantics preservation on random
 * programs.
 */

#include <gtest/gtest.h>

#include "analysis/liveness.hpp"
#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "machine/machine.hpp"
#include "sched/compact.hpp"
#include "sched/local_opt.hpp"
#include "sched/renamer.hpp"
#include "sched/scheduler.hpp"
#include "testutil.hpp"

namespace pstest = pathsched::testing;

namespace pathsched::sched {
namespace {

using ir::BlockId;
using ir::IrBuilder;
using ir::kNoReg;
using ir::Opcode;
using ir::Program;
using ir::RegId;

interp::RunResult
runProgram(const Program &prog, const interp::ProgramInput &in = {})
{
    interp::Interpreter interp(prog);
    return interp.run(in);
}

TEST(LocalOpt, CopyPropagationAndDce)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const RegId x = b.param(0);
    const RegId copy = b.mov(x);
    const RegId y = b.addi(copy, 1); // use of the copy
    b.ret(y);

    analysis::Liveness live(prog.proc(0));
    const LocalOptStats stats = optimizeBlock(prog.proc(0), 0, live);
    EXPECT_GE(stats.copiesPropagated, 1u);
    EXPECT_GE(stats.deadRemoved, 1u); // the mov becomes dead
    // The addi must now read the original register.
    const auto &instrs = prog.proc(0).blocks[0].instrs;
    ASSERT_EQ(instrs.size(), 2u);
    EXPECT_EQ(instrs[0].src1, x);
}

TEST(LocalOpt, ConstantsFoldIntoImmediates)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const RegId c = b.ldi(5);
    const RegId y = b.add(b.param(0), c);
    b.ret(y);

    analysis::Liveness live(prog.proc(0));
    const LocalOptStats stats = optimizeBlock(prog.proc(0), 0, live);
    EXPECT_GE(stats.constantsFolded, 1u);
    const auto &instrs = prog.proc(0).blocks[0].instrs;
    // ldi is dead after folding; add uses the immediate form.
    ASSERT_EQ(instrs.size(), 2u);
    EXPECT_TRUE(instrs[0].useImm);
    EXPECT_EQ(instrs[0].imm, 5);
}

TEST(LocalOpt, AddChainFolding)
{
    // i+1 then +1 then +1 collapses to base+k forms (what lets an
    // unrolled induction variable update in parallel).
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const RegId i0 = b.param(0);
    const RegId i1 = b.addi(i0, 1);
    const RegId i2 = b.addi(i1, 1);
    const RegId i3 = b.addi(i2, 1);
    b.emitValue(i1);
    b.emitValue(i2);
    b.emitValue(i3);
    b.ret(i3);

    analysis::Liveness live(prog.proc(0));
    const LocalOptStats stats = optimizeBlock(prog.proc(0), 0, live);
    EXPECT_GE(stats.chainsFolded, 2u);
    // All three adds now hang off the original register directly.
    for (const auto &ins : prog.proc(0).blocks[0].instrs) {
        if (ins.op == Opcode::Add) {
            EXPECT_EQ(ins.src1, i0);
        }
    }
}

TEST(LocalOpt, ChainFoldsIntoMemoryOffset)
{
    Program prog;
    prog.memWords = 16;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(0);
    const RegId p1 = b.addi(base, 4);
    const RegId v = b.ld(p1, 2); // -> ld [base + 6]
    b.ret(v);

    analysis::Liveness live(prog.proc(0));
    optimizeBlock(prog.proc(0), 0, live);
    const auto &instrs = prog.proc(0).blocks[0].instrs;
    bool found = false;
    for (const auto &ins : instrs) {
        if (ins.op == Opcode::Ld) {
            EXPECT_EQ(ins.imm, 6);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(LocalOpt, KeepsValuesLiveAtSideExits)
{
    // A value only read on the off-trace path of a mid-block exit must
    // survive DCE.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId off = b.newBlock();
    const RegId t = b.addi(b.param(0), 7); // only used off-trace
    {
        ir::Instruction exit_br =
            ir::makeBr(Opcode::BrNz, b.param(0), off, ir::kNoBlock);
        prog.proc(0).blocks[0].instrs.push_back(exit_br);
    }
    b.ret(b.ldi(0));
    b.setBlock(off);
    b.ret(t);

    analysis::Liveness live(prog.proc(0));
    const size_t before = prog.proc(0).blocks[0].instrs.size();
    optimizeBlock(prog.proc(0), 0, live);
    EXPECT_EQ(prog.proc(0).blocks[0].instrs.size(), before);
}

TEST(Renamer, RenamesNonLastDefs)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const RegId a = b.freshReg();
    b.ldiTo(a, 1);
    b.emitValue(a);
    b.ldiTo(a, 2); // second def of the same register
    b.emitValue(a);
    b.ret(a);

    analysis::Liveness live(prog.proc(0));
    const RenameStats stats = renameBlock(prog.proc(0), 0, live);
    EXPECT_EQ(stats.defsRenamed, 1u);
    const auto &instrs = prog.proc(0).blocks[0].instrs;
    // First def got a fresh register; its use follows it.
    EXPECT_NE(instrs[0].dst, a);
    EXPECT_EQ(instrs[1].src1, instrs[0].dst);
    // Last def keeps the architectural register.
    EXPECT_EQ(instrs[2].dst, a);
    // Semantics unchanged.
    EXPECT_EQ(runProgram(prog).output, (std::vector<int64_t>{1, 2}));
}

TEST(Renamer, CompensationStubOnLiveExit)
{
    // r is live at the exit target between its two defs: renaming the
    // first def must create a stub that restores r on the exit edge.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId off = b.newBlock();
    const RegId r = b.freshReg();
    b.ldiTo(r, 11);
    {
        ir::Instruction exit_br =
            ir::makeBr(Opcode::BrNz, b.param(0), off, ir::kNoBlock);
        prog.proc(0).blocks[0].instrs.push_back(exit_br);
    }
    b.ldiTo(r, 22);
    b.ret(r);
    b.setBlock(off);
    b.emitValue(r);
    b.ret(r);

    const size_t blocks_before = prog.proc(0).blocks.size();
    analysis::Liveness live(prog.proc(0));
    const RenameStats stats = renameBlock(prog.proc(0), 0, live);
    EXPECT_EQ(stats.defsRenamed, 1u);
    EXPECT_EQ(stats.stubsCreated, 1u);
    EXPECT_EQ(stats.copiesInserted, 1u);
    EXPECT_EQ(prog.proc(0).blocks.size(), blocks_before + 1);

    // Exit taken: the stub must deliver 11 to the off-trace path.
    interp::ProgramInput in;
    in.mainArgs = {1};
    auto res = runProgram(prog, in);
    EXPECT_EQ(res.output, (std::vector<int64_t>{11}));
    EXPECT_EQ(res.returnValue, 11);
    // Exit not taken: fall through to the second def.
    in.mainArgs = {0};
    res = runProgram(prog, in);
    EXPECT_EQ(res.returnValue, 22);
}

TEST(Renamer, NoStubWhenNotLiveAtExit)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId off = b.newBlock();
    const RegId r = b.freshReg();
    b.ldiTo(r, 11);
    b.emitValue(r);
    {
        ir::Instruction exit_br =
            ir::makeBr(Opcode::BrNz, b.param(0), off, ir::kNoBlock);
        prog.proc(0).blocks[0].instrs.push_back(exit_br);
    }
    b.ldiTo(r, 22);
    b.ret(r);
    b.setBlock(off);
    b.ret(b.ldi(0)); // off-trace path never reads r

    analysis::Liveness live(prog.proc(0));
    const RenameStats stats = renameBlock(prog.proc(0), 0, live);
    EXPECT_EQ(stats.stubsCreated, 0u);
}

/** Compact a whole program and check every block's schedule. */
void
compactAndValidate(Program &prog, const machine::MachineModel &mm)
{
    compactProgram(prog, mm);
    std::vector<std::string> errors;
    for (const auto &proc : prog.procs) {
        analysis::Liveness live(proc);
        for (BlockId b2 = 0; b2 < proc.blocks.size(); ++b2) {
            EXPECT_TRUE(validateSchedule(proc, b2, live, mm, errors))
                << proc.name << " block " << b2 << ": "
                << (errors.empty() ? "" : errors.back());
        }
    }
}

TEST(Scheduler, PacksIndependentWork)
{
    // 8 independent ldi + a ret: one cycle of 8 plus the control op.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    std::vector<RegId> vals;
    for (int i = 0; i < 8; ++i)
        vals.push_back(b.ldi(i));
    RegId acc = vals[0];
    b.ret(acc);

    const auto mm = machine::MachineModel::unitLatency();
    CompactOptions opts;
    opts.localOpt = false; // keep all the ldi alive? they are dead...
    opts.rename = false;
    compactProgram(prog, mm, opts);
    const auto &sched = prog.proc(0).schedules[0];
    ASSERT_TRUE(sched.valid);
    EXPECT_EQ(sched.numCycles, 2u); // 8-wide cycle 0, ret in cycle 1
}

TEST(Scheduler, RespectsIssueWidth)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    for (int i = 0; i < 17; ++i)
        b.emitValue(b.ldi(i)); // emits serialize; ldis are free
    b.ret(kNoReg);

    const auto mm = machine::MachineModel::unitLatency();
    compactAndValidate(prog, mm);
}

TEST(Scheduler, SerialChainTakesLatencySum)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    RegId v = b.param(0);
    for (int i = 0; i < 5; ++i)
        v = b.addi(v, 1);
    b.emitValue(v);
    b.ret(v);

    const auto mm = machine::MachineModel::unitLatency();
    CompactOptions opts;
    opts.localOpt = false; // keep the serial chain intact
    opts.rename = false;
    compactProgram(prog, mm, opts);
    const auto &sched = prog.proc(0).schedules[0];
    // 5 dependent adds + emit/ret: at least 6 cycles.
    EXPECT_GE(sched.numCycles, 6u);
}

TEST(Scheduler, RealisticLatenciesRespected)
{
    Program prog;
    prog.memWords = 8;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(0);
    const RegId v = b.ld(base, 0); // latency 3
    const RegId w = b.addi(v, 1);
    b.ret(w);

    const auto mm = machine::MachineModel::realisticLatency();
    compactProgram(prog, mm);
    const auto &proc = prog.proc(0);
    const auto &sched = proc.schedules[0];
    ASSERT_TRUE(sched.valid);
    // Find the load and its consumer in the flattened order.
    uint32_t ld_cycle = 0, add_cycle = 0;
    for (size_t i = 0; i < proc.blocks[0].instrs.size(); ++i) {
        if (proc.blocks[0].instrs[i].isLoad())
            ld_cycle = sched.cycleOf[i];
        if (proc.blocks[0].instrs[i].op == Opcode::Add)
            add_cycle = sched.cycleOf[i];
    }
    EXPECT_GE(add_cycle, ld_cycle + 3);

    std::vector<std::string> errors;
    analysis::Liveness live(proc);
    EXPECT_TRUE(validateSchedule(proc, 0, live, mm, errors));
}

TEST(Scheduler, HoistedLoadBecomesSpeculative)
{
    // A load after a side exit with a dead-at-exit destination should
    // hoist above the branch and turn into LdSpec.
    Program prog;
    prog.memWords = 8;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId off = b.newBlock();
    const RegId base = b.ldi(0);
    // Put the branch condition on a dependence chain so the exit
    // schedules late and the load has room to hoist above it.
    const RegId c1 = b.addi(b.param(0), 1);
    const RegId c2 = b.muli(c1, 3);
    const RegId c3 = b.alui(Opcode::And, c2, 1);
    {
        ir::Instruction exit_br =
            ir::makeBr(Opcode::BrNz, c3, off, ir::kNoBlock);
        prog.proc(0).blocks[0].instrs.push_back(exit_br);
    }
    const RegId v = b.ld(base, 3);
    const RegId w = b.addi(v, 1);
    b.emitValue(w);
    b.ret(w);
    b.setBlock(off);
    b.ret(b.ldi(0));

    const auto mm = machine::MachineModel::unitLatency();
    compactProgram(prog, mm);

    const auto &proc = prog.proc(0);
    const auto &sched = proc.schedules[0];
    bool found_spec = false;
    uint32_t br_cycle = 0, ld_cycle = 0;
    for (size_t i = 0; i < proc.blocks[0].instrs.size(); ++i) {
        const auto &ins = proc.blocks[0].instrs[i];
        if (ins.op == Opcode::LdSpec) {
            found_spec = true;
            ld_cycle = sched.cycleOf[i];
        }
        if (ins.isBranch())
            br_cycle = sched.cycleOf[i];
    }
    ASSERT_TRUE(found_spec);
    EXPECT_LE(ld_cycle, br_cycle);

    // Semantics on both paths: cond = ((arg+1)*3) & 1.
    interp::ProgramInput in;
    in.memImage = {0, 0, 0, 9};
    in.mainArgs = {1}; // cond 0: fall through, load feeds the add
    EXPECT_EQ(interp::Interpreter(prog).run(in).returnValue, 10);
    in.mainArgs = {0}; // cond 1: early exit
    EXPECT_EQ(interp::Interpreter(prog).run(in).returnValue, 0);
}

TEST(Scheduler, StoresNeverCrossExits)
{
    Program prog;
    prog.memWords = 8;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId off = b.newBlock();
    const RegId base = b.ldi(0);
    const RegId one = b.ldi(1);
    b.st(base, 0, one); // before the exit
    {
        ir::Instruction exit_br =
            ir::makeBr(Opcode::BrNz, b.param(0), off, ir::kNoBlock);
        prog.proc(0).blocks[0].instrs.push_back(exit_br);
    }
    b.st(base, 1, one); // after the exit
    b.ret(kNoReg);
    b.setBlock(off);
    const RegId v0 = b.ld(base, 0);
    const RegId v1 = b.ld(base, 1);
    b.emitValue(v0);
    b.emitValue(v1);
    b.ret(kNoReg);

    const auto mm = machine::MachineModel::unitLatency();
    compactProgram(prog, mm);

    // Taking the exit must observe the first store but not the second.
    interp::ProgramInput in;
    in.mainArgs = {1};
    const auto res = interp::Interpreter(prog).run(in);
    EXPECT_EQ(res.output, (std::vector<int64_t>{1, 0}));
}

TEST(Scheduler, WawWithLongerSecondLatency)
{
    // Regression: Ldi (1 cycle) then Ld (3 cycles) writing the same
    // register used to underflow the WAW edge latency and wedge the
    // scheduler.
    Program prog;
    prog.memWords = 8;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(0);
    const RegId r = b.freshReg();
    b.ldiTo(r, 5);
    b.emitValue(r);
    b.ldTo(r, base, 2); // second def, longer latency
    b.ret(r);

    const auto mm = machine::MachineModel::realisticLatency();
    CompactOptions opts;
    opts.rename = false; // keep the WAW pair intact
    opts.localOpt = false;
    compactProgram(prog, mm, opts);

    interp::ProgramInput in;
    in.memImage = {0, 0, 42};
    const auto res = interp::Interpreter(prog).run(in);
    EXPECT_EQ(res.output, (std::vector<int64_t>{5}));
    EXPECT_EQ(res.returnValue, 42);
}

TEST(Compact, EveryBlockGetsValidSchedule)
{
    pstest::GeneratedProgram gen = pstest::makeRandomProgram(3);
    const auto mm = machine::MachineModel::unitLatency();
    compactAndValidate(gen.program, mm);
    std::vector<std::string> errors;
    EXPECT_TRUE(ir::verify(gen.program, ir::VerifyMode::Superblock,
                           errors))
        << (errors.empty() ? "" : errors.front());
}

/** Differential property: compaction preserves program behaviour. */
class CompactSemantics : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CompactSemantics, OutputInvariant)
{
    pstest::GeneratedProgram gen = pstest::makeRandomProgram(GetParam());
    const auto ref = runProgram(gen.program, gen.input);

    for (const bool realistic : {false, true}) {
        Program prog = gen.program;
        const auto mm = realistic
                            ? machine::MachineModel::realisticLatency()
                            : machine::MachineModel::unitLatency();
        compactProgram(prog, mm);
        const auto got = runProgram(prog, gen.input);
        EXPECT_EQ(got.output, ref.output) << "seed " << GetParam();
        EXPECT_EQ(got.returnValue, ref.returnValue)
            << "seed " << GetParam();
        // Compaction must not slow programs down (unit latency).
        if (!realistic) {
            EXPECT_LE(got.cycles, ref.cycles);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactSemantics,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
} // namespace pathsched::sched
