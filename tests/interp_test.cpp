/**
 * @file
 * Unit tests for the interpreter: opcode semantics (parameterized),
 * control flow, calls and recursion, memory, non-excepting loads,
 * cycle accounting against schedules, and I-cache charging.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "layout/code_layout.hpp"

namespace pathsched::interp {
namespace {

using ir::BlockId;
using ir::IrBuilder;
using ir::kNoReg;
using ir::Opcode;
using ir::ProcId;
using ir::Program;
using ir::RegId;

/** Build main(){ return a OP b; } and run it. */
int64_t
runAlu(Opcode op, int64_t a, int64_t b_val)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId ra = b.ldi(a);
    const RegId rb = b.ldi(b_val);
    const RegId r = b.alu(op, ra, rb);
    b.ret(r);
    Interpreter interp(prog);
    return interp.run({}).returnValue;
}

struct AluCase
{
    Opcode op;
    int64_t a, b, expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{};

TEST_P(AluSemantics, MatchesReference)
{
    const AluCase &c = GetParam();
    EXPECT_EQ(runAlu(c.op, c.a, c.b), c.expected)
        << opcodeName(c.op) << "(" << c.a << ", " << c.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluSemantics,
    ::testing::Values(
        AluCase{Opcode::Add, 2, 3, 5},
        AluCase{Opcode::Add, INT64_MAX, 1, INT64_MIN}, // wraps
        AluCase{Opcode::Sub, 2, 3, -1},
        AluCase{Opcode::Mul, -4, 3, -12},
        AluCase{Opcode::Div, 7, 2, 3},
        AluCase{Opcode::Div, -7, 2, -3}, // truncates toward zero
        AluCase{Opcode::Div, 5, 0, 0},   // total definition
        AluCase{Opcode::Div, INT64_MIN, -1, INT64_MIN},
        AluCase{Opcode::Rem, 7, 3, 1},
        AluCase{Opcode::Rem, 5, 0, 0},
        AluCase{Opcode::Rem, INT64_MIN, -1, 0},
        AluCase{Opcode::And, 0b1100, 0b1010, 0b1000},
        AluCase{Opcode::Or, 0b1100, 0b1010, 0b1110},
        AluCase{Opcode::Xor, 0b1100, 0b1010, 0b0110},
        AluCase{Opcode::Shl, 3, 2, 12},
        AluCase{Opcode::Shl, 1, 64, 1},   // shift count masked to 0
        AluCase{Opcode::Shr, -8, 1, -4},  // arithmetic shift
        AluCase{Opcode::Shr, 8, 2, 2},
        AluCase{Opcode::CmpEq, 4, 4, 1},
        AluCase{Opcode::CmpEq, 4, 5, 0},
        AluCase{Opcode::CmpNe, 4, 5, 1},
        AluCase{Opcode::CmpLt, -1, 0, 1},
        AluCase{Opcode::CmpLe, 3, 3, 1},
        AluCase{Opcode::CmpGt, 3, 3, 0},
        AluCase{Opcode::CmpGe, 4, 3, 1}));

TEST(Interp, ImmediateOperands)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId a = b.ldi(10);
    const RegId r = b.alui(Opcode::Sub, a, 4);
    b.ret(r);
    EXPECT_EQ(Interpreter(prog).run({}).returnValue, 6);
}

TEST(Interp, MainArgsArriveInParams)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 2);
    const RegId r = b.sub(b.param(0), b.param(1));
    b.ret(r);
    ProgramInput in;
    in.mainArgs = {9, 4};
    EXPECT_EQ(Interpreter(prog).run(in).returnValue, 5);
}

TEST(Interp, BranchDirections)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId t = b.newBlock();
    const BlockId f = b.newBlock();
    b.brnz(b.param(0), t, f);
    b.setBlock(t);
    b.ret(b.ldi(100));
    b.setBlock(f);
    b.ret(b.ldi(200));

    ProgramInput in;
    in.mainArgs = {1};
    EXPECT_EQ(Interpreter(prog).run(in).returnValue, 100);
    in.mainArgs = {0};
    EXPECT_EQ(Interpreter(prog).run(in).returnValue, 200);
}

TEST(Interp, LoopComputesSum)
{
    // sum 1..n via a loop.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId head = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId done = b.newBlock();
    const RegId n = b.param(0);
    const RegId i = b.freshReg();
    const RegId sum = b.freshReg();
    b.ldiTo(i, 1);
    b.ldiTo(sum, 0);
    b.jmp(head);
    b.setBlock(head);
    const RegId c = b.alu(Opcode::CmpLe, i, n);
    b.brnz(c, body, done);
    b.setBlock(body);
    b.aluTo(Opcode::Add, sum, sum, i);
    b.aluiTo(Opcode::Add, i, i, 1);
    b.jmp(head);
    b.setBlock(done);
    b.ret(sum);

    ProgramInput in;
    in.mainArgs = {10};
    const RunResult r = Interpreter(prog).run(in);
    EXPECT_EQ(r.returnValue, 55);
    EXPECT_EQ(r.dynBranches, 11u);
}

TEST(Interp, CallsAndReturnValues)
{
    Program prog;
    IrBuilder b(prog);
    const ProcId twice = b.newProc("twice", 1);
    b.ret(b.muli(b.param(0), 2));
    const ProcId main = b.newProc("main", 0);
    const RegId v = b.callValue(twice, {b.ldi(21)});
    b.ret(v);
    prog.mainProc = main;
    const RunResult r = Interpreter(prog).run({});
    EXPECT_EQ(r.returnValue, 42);
    EXPECT_EQ(r.dynCalls, 1u);
}

TEST(Interp, RecursionFactorial)
{
    Program prog;
    IrBuilder b(prog);
    const ProcId fact = b.newProc("fact", 1);
    {
        const BlockId base = b.newBlock();
        const BlockId rec = b.newBlock();
        const RegId n = b.param(0);
        const RegId c = b.cmpLti(n, 2);
        b.brnz(c, base, rec);
        b.setBlock(base);
        b.ret(b.ldi(1));
        b.setBlock(rec);
        const RegId sub = b.callValue(fact, {b.alui(Opcode::Sub, n, 1)});
        b.ret(b.mul(n, sub));
    }
    const ProcId main = b.newProc("main", 1);
    b.ret(b.callValue(fact, {b.param(0)}));
    prog.mainProc = main;

    ProgramInput in;
    in.mainArgs = {6};
    EXPECT_EQ(Interpreter(prog).run(in).returnValue, 720);
}

TEST(Interp, CallCountsCollected)
{
    Program prog;
    IrBuilder b(prog);
    const ProcId f = b.newProc("f", 0);
    b.ret(b.ldi(0));
    const ProcId main = b.newProc("main", 0);
    b.callVoid(f, {});
    b.callVoid(f, {});
    b.ret(kNoReg);
    prog.mainProc = main;

    InterpOptions opts;
    opts.collectCallCounts = true;
    Interpreter interp(prog, opts);
    const RunResult r = interp.run({});
    EXPECT_EQ(r.callCounts.at({main, f}), 2u);
}

TEST(Interp, MemoryRoundTripAndImage)
{
    Program prog;
    prog.memWords = 8;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(0);
    const RegId v = b.ld(base, 3); // from the image
    b.st(base, 4, v);
    const RegId w = b.ld(base, 4);
    b.ret(w);
    ProgramInput in;
    in.memImage = {0, 0, 0, 77};
    EXPECT_EQ(Interpreter(prog).run(in).returnValue, 77);
}

TEST(Interp, SpeculativeLoadOutOfRangeYieldsZero)
{
    Program prog;
    prog.memWords = 4;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(0);
    const RegId bad = b.ldSpec(base, 1000);
    const RegId neg = b.ldSpec(base, -5);
    b.ret(b.add(bad, neg));
    EXPECT_EQ(Interpreter(prog).run({}).returnValue, 0);
}

TEST(Interp, EmitProducesOrderedOutput)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    b.emitValue(b.ldi(3));
    b.emitValue(b.ldi(1));
    b.emitValue(b.ldi(2));
    b.ret(kNoReg);
    const RunResult r = Interpreter(prog).run({});
    EXPECT_EQ(r.output, (std::vector<int64_t>{3, 1, 2}));
}

TEST(Interp, UnscheduledBlockCostsOneCyclePerInstr)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId a = b.ldi(1);
    const RegId c = b.addi(a, 1);
    b.ret(c); // 3 instructions in one block
    const RunResult r = Interpreter(prog).run({});
    EXPECT_EQ(r.cycles, 3u);
    EXPECT_EQ(r.dynInstrs, 3u);
}

TEST(Interp, ScheduledBlockChargedByExitCycle)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId a = b.ldi(1);
    const RegId c = b.ldi(2);
    const RegId d = b.add(a, c);
    b.ret(d);
    // Hand schedule: both ldi in cycle 0, add in 1, ret in 1.
    auto &proc = prog.proc(0);
    proc.syncSideTables();
    proc.schedules[0].valid = true;
    proc.schedules[0].cycleOf = {0, 0, 1, 1};
    proc.schedules[0].numCycles = 2;
    const RunResult r = Interpreter(prog).run({});
    EXPECT_EQ(r.cycles, 2u);
}

TEST(Interp, EarlyExitChargesExitCycle)
{
    // Superblock-form block: mid-block exit in cycle 0 taken; the
    // remaining cycles never execute.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const BlockId off = b.newBlock();
    const RegId one = b.ldi(1);
    {
        ir::Instruction exit_br = ir::makeBr(Opcode::BrNz, one, off,
                                             ir::kNoBlock);
        exit_br.target1 = ir::kNoBlock;
        prog.proc(0).blocks[0].instrs.push_back(exit_br);
    }
    b.emitValue(one); // skipped
    b.ret(one);
    b.setBlock(off);
    b.ret(b.ldi(9));

    auto &proc = prog.proc(0);
    proc.syncSideTables();
    proc.schedules[0].valid = true;
    proc.schedules[0].cycleOf = {0, 0, 5, 5};
    proc.schedules[0].numCycles = 6;

    const RunResult r = Interpreter(prog).run({});
    EXPECT_EQ(r.returnValue, 9);
    EXPECT_TRUE(r.output.empty()); // emit after taken exit skipped
    // Exit cycle 0 -> 1 cycle, plus the off-trace block (2 instrs).
    EXPECT_EQ(r.cycles, 3u);
}

TEST(Interp, SuperblockStatsTrackExitOrdinals)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId off = b.newBlock();
    const RegId x = b.param(0);
    {
        ir::Instruction exit_br = ir::makeBr(Opcode::BrNz, x, off,
                                             ir::kNoBlock);
        prog.proc(0).blocks[0].instrs.push_back(exit_br);
    }
    b.ret(b.ldi(1));
    b.setBlock(off);
    b.ret(b.ldi(2));

    auto &proc = prog.proc(0);
    proc.syncSideTables();
    auto &sb = proc.superblocks[0];
    sb.isSuperblock = true;
    sb.numSrcBlocks = 3;
    sb.srcOrdinalOf = {1, 2, 2}; // br from trace block 1, tail block 2

    ProgramInput in;
    in.mainArgs = {1}; // take the early exit
    RunResult r = Interpreter(prog).run(in);
    EXPECT_EQ(r.sbEntries, 1u);
    EXPECT_EQ(r.sbBlocksExecuted, 2u); // ordinal 1 + 1
    EXPECT_EQ(r.sbBlocksInSb, 3u);
    EXPECT_EQ(r.sbCompletions, 0u);

    in.mainArgs = {0}; // fall through to the end
    r = Interpreter(prog).run(in);
    EXPECT_EQ(r.sbBlocksExecuted, 3u);
    EXPECT_EQ(r.sbCompletions, 1u);
}

TEST(Interp, ICacheChargesMissPenalty)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId a = b.ldi(1);
    b.ret(a); // two instructions, same 32B line

    const layout::CodeLayout layout = layout::layoutProgram(prog);
    icache::ICache cache; // 32KB, 32B lines, 6-cycle penalty
    InterpOptions opts;
    opts.codeLayout = &layout;
    opts.cache = &cache;
    const RunResult r = Interpreter(prog, opts).run({});
    EXPECT_EQ(r.icacheAccesses, 2u);
    EXPECT_EQ(r.icacheMisses, 1u); // cold line, then a hit
    EXPECT_EQ(r.stallCycles, 6u);
    EXPECT_EQ(r.cycles, 2u + 6u);
}

TEST(Interp, ListenersSeeEdgesAndActivations)
{
    class Recorder : public TraceListener
    {
      public:
        int enters = 0, exits = 0;
        std::vector<std::pair<ir::BlockId, ir::BlockId>> edges;
        void onProcEnter(ir::ProcId) override { ++enters; }
        void onProcExit(ir::ProcId) override { ++exits; }
        void
        onEdge(ir::ProcId, ir::BlockId from, ir::BlockId to) override
        {
            edges.push_back({from, to});
        }
    };

    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const BlockId next = b.newBlock();
    b.jmp(next);
    b.setBlock(next);
    b.ret(kNoReg);

    Recorder rec;
    Interpreter interp(prog);
    interp.addListener(&rec);
    interp.run({});
    EXPECT_EQ(rec.enters, 1);
    EXPECT_EQ(rec.exits, 1);
    ASSERT_EQ(rec.edges.size(), 1u);
    EXPECT_EQ(rec.edges[0], (std::pair<ir::BlockId, ir::BlockId>{0, 1}));
}

} // namespace
} // namespace pathsched::interp
