/**
 * @file
 * Direct structural tests of the dependence graph: every edge class
 * (RAW, WAR, WAW, memory with disambiguation, control chain, exit
 * constraints) on hand-built instruction sequences.
 */

#include <gtest/gtest.h>

#include "analysis/liveness.hpp"
#include "ir/builder.hpp"
#include "machine/machine.hpp"
#include "sched/depgraph.hpp"
#include "sched/exit_live.hpp"

namespace pathsched::sched {
namespace {

using ir::BlockId;
using ir::Instruction;
using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::RegId;

/** Find the edge u -> v, returning its latency or -1 if absent. */
int
edgeLatency(const DepGraph &g, uint32_t u, uint32_t v)
{
    for (const auto &e : g.succs(u)) {
        if (e.to == v)
            return int(e.latency);
    }
    return -1;
}

/** Build a graph for a block with no exits beyond its terminator. */
DepGraph
graphFor(const Program &prog, BlockId b = 0)
{
    const auto &proc = prog.proc(0);
    analysis::Liveness live(proc);
    const auto exits = collectExits(proc, b, live);
    return DepGraph(proc.blocks[b].instrs, exits,
                    machine::MachineModel::unitLatency());
}

TEST(DepGraph, RawEdgeCarriesProducerLatency)
{
    Program prog;
    prog.memWords = 8;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(0);     // 0
    const RegId v = b.ld(base, 0);   // 1: RAW on base
    const RegId w = b.addi(v, 1);    // 2: RAW on v
    b.ret(w);                        // 3

    const auto &proc = prog.proc(0);
    analysis::Liveness live(proc);
    const auto exits = collectExits(proc, 0, live);
    {
        DepGraph g(proc.blocks[0].instrs, exits,
                   machine::MachineModel::unitLatency());
        EXPECT_EQ(edgeLatency(g, 0, 1), 1);
        EXPECT_EQ(edgeLatency(g, 1, 2), 1);
        EXPECT_EQ(edgeLatency(g, 2, 3), 1); // ret reads w
    }
    {
        DepGraph g(proc.blocks[0].instrs, exits,
                   machine::MachineModel::realisticLatency());
        EXPECT_EQ(edgeLatency(g, 1, 2), 3); // load latency
    }
}

TEST(DepGraph, WarAllowsSameCycleOrderedIssue)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const RegId x = b.param(0);
    b.emitValue(x);        // 0: reads x
    b.ldiTo(x, 9);         // 1: writes x -> WAR with 0
    b.emitValue(x);        // 2
    b.ret(ir::kNoReg);     // 3

    const DepGraph g = graphFor(prog);
    EXPECT_EQ(edgeLatency(g, 0, 1), 0); // WAR: zero-latency, ordered
}

TEST(DepGraph, WawForcesLaterCycle)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId r = b.freshReg();
    b.ldiTo(r, 1); // 0
    b.ldiTo(r, 2); // 1: WAW with 0
    b.ret(r);      // 2

    const DepGraph g = graphFor(prog);
    EXPECT_EQ(edgeLatency(g, 0, 1), 1);
}

TEST(DepGraph, StoreLoadSameBaseDifferentOffsetDisambiguated)
{
    Program prog;
    prog.memWords = 8;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(0);   // 0
    const RegId one = b.ldi(1);    // 1
    b.st(base, 2, one);            // 2: store [base+2]
    const RegId v = b.ld(base, 3); // 3: load [base+3] — provably disjoint
    const RegId w = b.ld(base, 2); // 4: load [base+2] — must wait
    b.ret(b.add(v, w));            // 5, 6

    const DepGraph g = graphFor(prog);
    EXPECT_EQ(edgeLatency(g, 2, 3), -1); // no edge: different words
    EXPECT_EQ(edgeLatency(g, 2, 4), 1);  // store -> aliasing load
}

TEST(DepGraph, RedefinedBaseBlocksDisambiguation)
{
    Program prog;
    prog.memWords = 16;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.freshReg();
    b.ldiTo(base, 0);              // 0
    const RegId one = b.ldi(1);    // 1
    b.st(base, 2, one);            // 2
    b.ldiTo(base, 4);              // 3: base changes version
    const RegId v = b.ld(base, 3); // 4: offset differs but base moved
    b.ret(v);                      // 5

    const DepGraph g = graphFor(prog);
    // Same register, different def version: must stay conservative.
    EXPECT_EQ(edgeLatency(g, 2, 4), 1);
}

TEST(DepGraph, LoadsCommute)
{
    Program prog;
    prog.memWords = 8;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(0);
    const RegId v = b.ld(base, 0); // 1
    const RegId w = b.ld(base, 0); // 2: same address, both reads
    b.ret(b.add(v, w));

    const DepGraph g = graphFor(prog);
    EXPECT_EQ(edgeLatency(g, 1, 2), -1);
}

TEST(DepGraph, CallsActAsMemoryBarriers)
{
    Program prog;
    prog.memWords = 8;
    IrBuilder b(prog);
    const auto callee = b.newProc("f", 0);
    b.ret(b.ldi(0));
    const auto main = b.newProc("main", 0);
    const RegId base = b.ldi(0);   // 0
    const RegId v = b.ld(base, 1); // 1
    b.callVoid(callee, {});        // 2
    const RegId w = b.ld(base, 1); // 3: must not cross the call
    b.ret(b.add(v, w));            // 4, 5
    prog.mainProc = main;

    const auto &proc = prog.proc(main);
    analysis::Liveness live(proc);
    const auto exits = collectExits(proc, 0, live);
    DepGraph g(proc.blocks[0].instrs, exits,
               machine::MachineModel::unitLatency());
    EXPECT_EQ(edgeLatency(g, 1, 2), 0); // load ordered before the call
    EXPECT_EQ(edgeLatency(g, 2, 3), 1); // call clobbers memory
}

TEST(DepGraph, ControlOpsChainInOrder)
{
    Program prog;
    IrBuilder b(prog);
    const auto callee = b.newProc("f", 0);
    b.ret(b.ldi(0));
    const auto main = b.newProc("main", 0);
    b.callVoid(callee, {}); // 0
    b.callVoid(callee, {}); // 1
    b.ret(ir::kNoReg);      // 2
    prog.mainProc = main;

    const auto &proc = prog.proc(main);
    analysis::Liveness live(proc);
    const auto exits = collectExits(proc, 0, live);
    DepGraph g(proc.blocks[0].instrs, exits,
               machine::MachineModel::unitLatency());
    EXPECT_EQ(edgeLatency(g, 0, 1), 1);
    EXPECT_EQ(edgeLatency(g, 1, 2), 1);
}

TEST(DepGraph, ExitPinsLiveDestinations)
{
    // Instruction after an exit writing a register live at the exit
    // target must stay strictly below the exit.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId off = b.newBlock();
    const RegId r = b.freshReg();
    b.ldiTo(r, 1); // 0
    {
        Instruction exit_br =
            ir::makeBr(Opcode::BrNz, b.param(0), off, ir::kNoBlock);
        prog.proc(0).blocks[0].instrs.push_back(exit_br); // 1
    }
    b.ldiTo(r, 2); // 2: r is live at `off`
    b.ret(r);      // 3
    b.setBlock(off);
    b.emitValue(r);
    b.ret(r);

    const DepGraph g = graphFor(prog);
    EXPECT_EQ(edgeLatency(g, 1, 2), 1); // pinned below the exit
}

TEST(DepGraph, ExitDoesNotPinDeadDestinations)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId off = b.newBlock();
    {
        Instruction exit_br =
            ir::makeBr(Opcode::BrNz, b.param(0), off, ir::kNoBlock);
        prog.proc(0).blocks[0].instrs.push_back(exit_br); // 0
    }
    const RegId t = b.ldi(7); // 1: dead at `off`
    b.ret(t);                 // 2
    b.setBlock(off);
    b.ret(b.ldi(0));

    const DepGraph g = graphFor(prog);
    EXPECT_EQ(edgeLatency(g, 0, 1), -1); // free to speculate upward
}

TEST(DepGraph, StoresPinnedOnBothSidesOfExit)
{
    Program prog;
    prog.memWords = 8;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId off = b.newBlock();
    const RegId base = b.ldi(0); // 0
    b.st(base, 0, base);         // 1: before the exit
    {
        Instruction exit_br =
            ir::makeBr(Opcode::BrNz, b.param(0), off, ir::kNoBlock);
        prog.proc(0).blocks[0].instrs.push_back(exit_br); // 2
    }
    b.st(base, 1, base); // 3: after the exit
    b.ret(ir::kNoReg);   // 4
    b.setBlock(off);
    b.ret(ir::kNoReg);

    const DepGraph g = graphFor(prog);
    EXPECT_EQ(edgeLatency(g, 1, 2), 0); // store may share the cycle,
                                        // but issues before the exit
    EXPECT_EQ(edgeLatency(g, 2, 3), 1); // never above the exit
}

TEST(DepGraph, EverythingReachesTheTerminator)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    b.ldi(1);
    b.ldi(2);
    b.ldi(3);
    b.ret(ir::kNoReg); // index 3

    const DepGraph g = graphFor(prog);
    for (uint32_t i = 0; i < 3; ++i)
        EXPECT_GE(edgeLatency(g, i, 3), 0) << i;
}

TEST(DepGraph, HeightsDecreaseAlongChains)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    RegId v = b.param(0);
    v = b.addi(v, 1); // 0
    v = b.addi(v, 1); // 1
    v = b.addi(v, 1); // 2
    b.ret(v);         // 3

    const DepGraph g = graphFor(prog);
    EXPECT_GT(g.height(0), g.height(1));
    EXPECT_GT(g.height(1), g.height(2));
    EXPECT_GT(g.height(2), g.height(3));
}

} // namespace
} // namespace pathsched::sched
