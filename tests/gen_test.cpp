/**
 * @file
 * Tests for the seeded workload generator, the differential oracle and
 * the spec reducer (src/gen/) — the engine under pathsched_fuzz.
 *
 * The properties here are the fuzzer's soundness arguments: specs
 * round-trip through text, generation is deterministic, every workload
 * verifies and terminates inside its static step bound, reduction
 * edits are replayable, the oracle passes clean workloads, and a
 * deliberately planted scheduling bug (support/mutation.hpp) is
 * caught, classified, and reduced to a one-procedure repro.
 */

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "gen/oracle.hpp"
#include "gen/reduce.hpp"
#include "interp/interpreter.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "support/mutation.hpp"

namespace pathsched::gen {
namespace {

// ---------------------------------------------------------------------
// Spec text round-trip.

TEST(GenSpec, DefaultRoundTripsThroughText)
{
    const GenSpec a = GenSpec().normalized();
    GenSpec b;
    std::string err;
    ASSERT_TRUE(GenSpec::parse(a.toString(), b, err)) << err;
    EXPECT_EQ(a.toString(), b.toString());
}

TEST(GenSpec, KnobsAndEditsRoundTrip)
{
    GenSpec a;
    a.seed = 77;
    a.procs = 5;
    a.depth = 4;
    a.stmts = 9;
    a.maxTrips = 11;
    a.memWords = 16;
    a.branch = BranchKind::Tttf;
    a.period = 6;
    a.callDensity = 0.21;
    a.edits.push_back({Edit::Kind::DropProc, 2, 0, 1});
    a.edits.push_back({Edit::Kind::DropStmt, 5, 13, 1});
    a.edits.push_back({Edit::Kind::SetTrips, 5, 4, 2});
    const GenSpec na = a.normalized();
    GenSpec b;
    std::string err;
    ASSERT_TRUE(GenSpec::parse(na.toString(), b, err)) << err;
    EXPECT_EQ(na.toString(), b.toString());
    ASSERT_EQ(b.edits.size(), 3u);
    EXPECT_EQ(b.edits[0].kind, Edit::Kind::DropProc);
    EXPECT_EQ(b.edits[1].node, 13u);
    EXPECT_EQ(b.edits[2].trips, 2u);
}

TEST(GenSpec, RejectsMalformedText)
{
    GenSpec out;
    std::string err;
    EXPECT_FALSE(GenSpec::parse("seed=", out, err));
    EXPECT_FALSE(GenSpec::parse("bogus=3", out, err));
    EXPECT_FALSE(GenSpec::parse("seed=1,branch=sometimes", out, err));
    EXPECT_FALSE(GenSpec::parse("drop=x7", out, err));
    EXPECT_FALSE(GenSpec::parse("settrips=p1.n2", out, err));
    EXPECT_FALSE(err.empty());
}

TEST(GenSpec, NormalizeClampsOutOfRangeKnobs)
{
    GenSpec a;
    a.procs = 99;
    a.depth = 40;
    a.maxTrips = 1000;
    a.loadDensity = 0.9;
    a.storeDensity = 0.9;
    const GenSpec n = a.normalized();
    EXPECT_LE(n.procs, 12u);
    EXPECT_LE(n.depth, 5u);
    EXPECT_LE(n.maxTrips, 32u);
    // Densities are rescaled so simple statements remain possible.
    EXPECT_LE(n.callDensity + n.loadDensity + n.storeDensity +
                  n.emitDensity + n.ifDensity + n.loopDensity,
              0.851);
}

// ---------------------------------------------------------------------
// Generation: determinism, validity, termination.

TEST(Generator, SameSpecIsByteIdentical)
{
    GenSpec spec;
    spec.seed = 1234;
    spec.branch = BranchKind::Mixed;
    const Workload a = generate(spec);
    const Workload b = generate(spec);
    EXPECT_EQ(ir::toString(a.program), ir::toString(b.program));
    EXPECT_EQ(a.train.mainArgs, b.train.mainArgs);
    EXPECT_EQ(a.train.memImage, b.train.memImage);
    EXPECT_EQ(a.test.memImage, b.test.memImage);
    EXPECT_EQ(a.stepBound, b.stepBound);
}

TEST(Generator, TrainAndTestInputsDiffer)
{
    const Workload w = generate(GenSpec{.seed = 5});
    EXPECT_NE(w.train.memImage, w.test.memImage);
    EXPECT_EQ(w.train.memImage.size(), w.spec.memWords);
    EXPECT_EQ(w.test.memImage.size(), w.spec.memWords);
}

class GeneratorFamilies : public ::testing::TestWithParam<BranchKind>
{};

TEST_P(GeneratorFamilies, VerifiesAndTerminatesWithinBound)
{
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        GenSpec spec;
        spec.seed = seed;
        spec.branch = GetParam();
        spec.ifDensity = 0.22;
        spec.loopDensity = 0.14;
        const Workload w = generate(spec);
        std::vector<std::string> errs;
        ASSERT_TRUE(ir::verify(w.program, ir::VerifyMode::Strict, errs))
            << "seed " << seed << ": "
            << (errs.empty() ? "" : errs.front());
        ASSERT_GT(w.stepBound, 0u);

        interp::InterpOptions io;
        io.maxSteps = w.stepBound;
        interp::Interpreter interp(w.program, io);
        const interp::RunResult r = interp.run(w.train);
        EXPECT_FALSE(r.truncated()) << "seed " << seed;
        EXPECT_LE(r.dynInstrs, w.stepBound) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Families, GeneratorFamilies,
    ::testing::Values(BranchKind::Random, BranchKind::Tttf,
                      BranchKind::Phased, BranchKind::Correlated,
                      BranchKind::Mixed));

TEST(Generator, HeavyNestingStillFitsTheStepCeiling)
{
    // Worst-case knobs: deep nesting, max trips, call-dense.  The
    // normalizer (trip halving, call thinning) must keep the static
    // bound finite and the program runnable.
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        GenSpec spec;
        spec.seed = seed;
        spec.procs = 8;
        spec.depth = 5;
        spec.loopDepth = 3;
        spec.maxTrips = 32;
        spec.callDensity = 0.25;
        spec.loopDensity = 0.25;
        spec.ifDensity = 0.2;
        const Workload w = generate(spec);
        ASSERT_LE(w.stepBound, 250'000u) << "seed " << seed;
        interp::InterpOptions io;
        io.maxSteps = w.stepBound;
        interp::Interpreter interp(w.program, io);
        EXPECT_FALSE(interp.run(w.train).truncated()) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Edits: the reducer's replayable shrink operations.

TEST(GeneratorEdits, DropProcStubsOnlyThatProcedure)
{
    GenSpec spec;
    spec.seed = 42;
    const Workload base = generate(spec);

    GenSpec dropped = spec;
    dropped.edits.push_back({Edit::Kind::DropProc, 1, 0, 1});
    const Workload w = generate(dropped);

    ASSERT_EQ(w.program.procs.size(), base.program.procs.size());
    // Arity is preserved so existing call sites stay valid...
    EXPECT_EQ(w.program.procs[1].numParams,
              base.program.procs[1].numParams);
    // ...the stub is trivial...
    EXPECT_LE(w.program.procs[1].blocks[0].instrs.size(), 2u);
    // ...and every procedure on an independent RNG stream is
    // bit-identical to the unedited generation.
    for (size_t p = 0; p < w.program.procs.size(); ++p) {
        if (p == 1)
            continue;
        EXPECT_EQ(ir::toString(w.program.procs[p]),
                  ir::toString(base.program.procs[p]))
            << "proc " << p;
    }
    std::vector<std::string> errs;
    EXPECT_TRUE(ir::verify(w.program, ir::VerifyMode::Strict, errs))
        << (errs.empty() ? "" : errs.front());
}

TEST(GeneratorEdits, ListNodesShrinksUnderDrops)
{
    GenSpec spec;
    spec.seed = 9;
    const std::vector<NodeInfo> before = listNodes(spec);
    ASSERT_FALSE(before.empty());

    // Dropping the largest subtree removes at least that many nodes.
    const NodeInfo *largest = &before[0];
    for (const NodeInfo &n : before) {
        if (n.subtreeSize > largest->subtreeSize)
            largest = &n;
    }
    GenSpec edited = spec;
    edited.edits.push_back(
        {Edit::Kind::DropStmt, largest->proc, largest->node, 1});
    const std::vector<NodeInfo> after = listNodes(edited);
    EXPECT_EQ(after.size(), before.size() - largest->subtreeSize);
    std::vector<std::string> errs;
    EXPECT_TRUE(
        ir::verify(generate(edited).program, ir::VerifyMode::Strict, errs))
        << (errs.empty() ? "" : errs.front());
}

TEST(GeneratorEdits, SetTripsPinsLoops)
{
    // Find a spec with a loop, pin it to one trip, and check the
    // reference run shortens.
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        GenSpec spec;
        spec.seed = seed;
        spec.loopDensity = 0.3;
        bool found = false;
        for (const NodeInfo &n : listNodes(spec)) {
            if (!n.isLoop || n.trips < 4)
                continue;
            GenSpec pinned = spec;
            pinned.edits.push_back(
                {Edit::Kind::SetTrips, n.proc, n.node, 1});
            EXPECT_LT(generate(pinned).stepBound,
                      generate(spec).stepBound);
            found = true;
            break;
        }
        if (found)
            return;
    }
    FAIL() << "no loop with >=4 trips in 50 seeds";
}

// ---------------------------------------------------------------------
// Oracle: clean workloads pass every check.

TEST(Oracle, CleanSeedsPassAllConfigs)
{
    for (uint64_t seed = 60; seed < 66; ++seed) {
        GenSpec spec;
        spec.seed = seed;
        const OracleResult res = checkSpec(spec, {});
        EXPECT_TRUE(res.ok())
            << "seed " << seed << "\n"
            << res.report();
        EXPECT_GT(res.refDynInstrs, 0u);
    }
}

// ---------------------------------------------------------------------
// Planted-bug drill: the oracle must catch a real scheduling bug, and
// the reducer must shrink it while preserving the classification.

const char kMemdepRepro[] =
    "seed=19,mem=2,calls=0,loads=0.3,stores=0.3,emits=0.1,"
    "ifs=0.15,loops=0.1";

TEST(Mutation, PlantedCompactBugIsCaughtAndClassified)
{
    GenSpec spec;
    std::string err;
    ASSERT_TRUE(GenSpec::parse(kMemdepRepro, spec, err)) << err;

    // Clean without the mutation...
    ASSERT_TRUE(checkSpec(spec, {}).ok());

    // ...typed output-compare degradation with it.  BB stays clean by
    // construction (the mutation only fires in multi-exit blocks).
    ScopedMutation arm("compact-drop-memdep");
    const OracleResult res = checkSpec(spec, {});
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.findings[0].check, "degraded");
    EXPECT_EQ(res.findings[0].detail, "output-compare");
    for (const OracleFinding &f : res.findings)
        EXPECT_NE(f.config, "BB") << f.message;
}

TEST(Mutation, ReducerShrinksPlantedBugToOneProcedure)
{
    GenSpec spec;
    std::string err;
    ASSERT_TRUE(GenSpec::parse(kMemdepRepro, spec, err)) << err;

    ScopedMutation arm("compact-drop-memdep");
    const std::string klass = checkSpec(spec, {}).classification();
    ASSERT_NE(klass, "-");

    OracleOptions fast;
    fast.metamorphic = false;
    ReduceStats stats;
    const GenSpec minimal = reduceSpec(
        spec,
        [&](const GenSpec &cand) {
            return checkSpec(cand, fast).classification() == klass;
        },
        &stats, 300);

    EXPECT_GT(stats.probes, 0u);
    EXPECT_GT(stats.accepted, 0u);
    EXPECT_EQ(liveProcCount(minimal), 1u);
    // The minimized spec still fails the same way, and replays clean
    // once the mutation is disarmed.
    EXPECT_EQ(checkSpec(minimal, {}).classification(), klass);
    setMutationsForTest("");
    EXPECT_TRUE(checkSpec(minimal, {}).ok());
}

} // namespace
} // namespace pathsched::gen
