/**
 * @file
 * Executor, determinism and stage-cache tests.
 *
 * The parallel executor's contract is that the thread count and
 * scheduling policy change only *how* the per-procedure chains
 * interleave, never what they produce: the transformed IR, the measured
 * run, and every non-timing statistic must be byte-identical to the
 * serial run for every configuration.  The matrix here pins that down,
 * along with the memoized stage cache (hit-after-no-change,
 * miss-after-input-change, corrupt-entry rejection) and the
 * PipelineOptions v2 surface (builder, deprecated-flat-field folding).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "ir/printer.hpp"
#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/executor.hpp"
#include "pipeline/pipeline.hpp"
#include "support/faultinject.hpp"
#include "support/vio.hpp"
#include "workloads/workloads.hpp"

namespace pathsched {
namespace {

using pipeline::ExecPolicy;
using pipeline::Executor;
using pipeline::ExecStats;
using pipeline::PipelineOptions;
using pipeline::PipelineResult;
using pipeline::SchedConfig;
using pipeline::StageCache;
using pipeline::TaskGraph;

// ---------------------------------------------------------------------
// Executor unit tests.

TEST(Executor, RunsEveryTaskExactlyOnceSerial)
{
    TaskGraph g;
    std::vector<int> hits(10, 0);
    for (size_t i = 0; i < hits.size(); ++i)
        g.add([&hits, i] { ++hits[i]; });
    Executor ex(1);
    const ExecStats s = ex.run(g);
    EXPECT_EQ(s.tasks, hits.size());
    EXPECT_EQ(s.threads, 1u);
    EXPECT_EQ(s.steals, 0u);
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(Executor, SingleThreadRunsIndependentTasksInInsertionOrder)
{
    // The 1-thread ready FIFO is what replays the historical serial
    // stage loops, so insertion order is a documented guarantee there.
    TaskGraph g;
    std::vector<size_t> order;
    for (size_t i = 0; i < 20; ++i)
        g.add([&order, i] { order.push_back(i); });
    Executor ex(1);
    ex.run(g);
    ASSERT_EQ(order.size(), 20u);
    for (size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Executor, DependenciesRunBeforeSuccessors)
{
    for (const ExecPolicy policy :
         {ExecPolicy::Static, ExecPolicy::Dynamic, ExecPolicy::Steal}) {
        TaskGraph g;
        std::atomic<int> stage{0};
        std::atomic<bool> violated{false};
        // A chain a -> b -> c plus an independent task on each link.
        const size_t a = g.add([&] { stage = 1; });
        const size_t b = g.add(
            [&] {
                if (stage.load() != 1)
                    violated = true;
                stage = 2;
            },
            {a});
        g.add(
            [&] {
                if (stage.load() != 2)
                    violated = true;
            },
            {b});
        for (int i = 0; i < 8; ++i)
            g.add([] {});
        Executor ex(4, policy);
        const ExecStats s = ex.run(g);
        EXPECT_EQ(s.tasks, 11u) << pipeline::execPolicyName(policy);
        EXPECT_FALSE(violated.load()) << pipeline::execPolicyName(policy);
    }
}

TEST(Executor, AllPoliciesCompleteManyTasksMultiThreaded)
{
    for (const ExecPolicy policy :
         {ExecPolicy::Static, ExecPolicy::Dynamic, ExecPolicy::Steal}) {
        TaskGraph g;
        std::atomic<uint64_t> sum{0};
        for (uint64_t i = 0; i < 200; ++i)
            g.add([&sum, i] { sum += i; }, {}, int(i % 7));
        Executor ex(4, policy);
        const ExecStats s = ex.run(g);
        EXPECT_EQ(s.tasks, 200u);
        EXPECT_EQ(s.threads, 4u);
        EXPECT_EQ(sum.load(), 199u * 200u / 2u)
            << pipeline::execPolicyName(policy);
    }
}

TEST(Executor, PolicyNamesRoundTrip)
{
    for (const ExecPolicy policy :
         {ExecPolicy::Static, ExecPolicy::Dynamic, ExecPolicy::Steal}) {
        ExecPolicy parsed;
        ASSERT_TRUE(pipeline::parseExecPolicy(
            pipeline::execPolicyName(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
    ExecPolicy parsed;
    EXPECT_FALSE(pipeline::parseExecPolicy("magic", parsed));
}

// ---------------------------------------------------------------------
// Determinism matrix: N threads x policy must be byte-identical to
// serial for every configuration.

constexpr SchedConfig kAllConfigs[] = {
    SchedConfig::BB, SchedConfig::M4, SchedConfig::M16, SchedConfig::P4,
    SchedConfig::P4e, SchedConfig::G4, SchedConfig::G4e};

/** Registry text with the thread/timing-dependent subtrees removed:
 *  "time.*" (wall clocks), "executor.*" (steal counts).  Everything
 *  else must be invariant across thread counts. */
std::string
invariantStats(const obs::StatRegistry &reg)
{
    std::istringstream in(reg.toText());
    std::string line, out;
    while (std::getline(in, line)) {
        if (line.rfind("time.", 0) == 0 ||
            line.rfind("executor.", 0) == 0)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

struct RunCapture
{
    std::string ir;
    std::string stats;
    uint64_t cycles = 0;
    std::vector<int64_t> output;
    int64_t returnValue = 0;
    size_t degraded = 0;
};

RunCapture
captureRun(const workloads::Workload &w, SchedConfig config,
           unsigned threads, ExecPolicy policy,
           FaultInjector *faults = nullptr)
{
    obs::StatRegistry registry;
    obs::Observer observer;
    observer.stats = &registry;
    PipelineOptions opts;
    opts.keepTransformed = true;
    opts.observability.observer = &observer;
    opts.executor.threads = threads;
    opts.executor.policy = policy;
    opts.robustness.faults = faults;
    const PipelineResult r = pipeline::runPipeline(
        w.program, w.train, w.test, config, opts);
    EXPECT_TRUE(r.status.ok()) << r.status.toString();
    EXPECT_TRUE(r.outputMatches);
    RunCapture c;
    if (r.transformed)
        c.ir = ir::toString(*r.transformed);
    c.stats = invariantStats(registry);
    c.cycles = r.test.cycles;
    c.output = r.test.output;
    c.returnValue = r.test.returnValue;
    c.degraded = r.degraded.size();
    return c;
}

class DeterminismMatrix
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(DeterminismMatrix, ParallelRunsAreByteIdenticalToSerial)
{
    const auto w = workloads::makeByName(GetParam());
    for (const SchedConfig config : kAllConfigs) {
        const RunCapture serial =
            captureRun(w, config, 1, ExecPolicy::Steal);
        EXPECT_FALSE(serial.ir.empty());
        for (const unsigned threads : {2u, 8u}) {
            for (const ExecPolicy policy :
                 {ExecPolicy::Static, ExecPolicy::Dynamic,
                  ExecPolicy::Steal}) {
                const RunCapture par =
                    captureRun(w, config, threads, policy);
                const std::string what =
                    std::string(GetParam()) + "/" +
                    pipeline::configName(config) + " x" +
                    std::to_string(threads) + " " +
                    pipeline::execPolicyName(policy);
                EXPECT_EQ(par.ir, serial.ir) << what;
                EXPECT_EQ(par.cycles, serial.cycles) << what;
                EXPECT_EQ(par.output, serial.output) << what;
                EXPECT_EQ(par.returnValue, serial.returnValue) << what;
                EXPECT_EQ(par.stats, serial.stats) << what;
                EXPECT_EQ(par.degraded, serial.degraded) << what;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Workloads, DeterminismMatrix,
                         ::testing::Values("wc", "alt", "corr"));

// ---------------------------------------------------------------------
// Fault isolation: a quarantined procedure on one worker must not
// poison its siblings, and attribution must not depend on the thread
// count (proc-targeted deterministic faults only — see pipeline.cpp).

TEST(FaultIsolation, QuarantineIsIdenticalAcrossThreadCounts)
{
    // gcc has enough procedures that the chains genuinely overlap.
    const auto w = workloads::makeByName("gcc");
    auto arm = [](FaultInjector &inj) {
        std::string err;
        ASSERT_TRUE(inj.parse("stage=compact,proc=2", err)) << err;
        ASSERT_TRUE(inj.parse("stage=regalloc,proc=5", err)) << err;
    };
    FaultInjector serial_inj(0);
    arm(serial_inj);
    const RunCapture serial = captureRun(
        w, SchedConfig::P4, 1, ExecPolicy::Steal, &serial_inj);
    EXPECT_EQ(serial.degraded, 2u);

    FaultInjector par_inj(0);
    arm(par_inj);
    const RunCapture par = captureRun(w, SchedConfig::P4, 4,
                                      ExecPolicy::Steal, &par_inj);
    EXPECT_EQ(par.degraded, 2u);
    EXPECT_EQ(par.ir, serial.ir);
    EXPECT_EQ(par.cycles, serial.cycles);
    EXPECT_EQ(par.output, serial.output);
    EXPECT_EQ(par.stats, serial.stats);
}

// ---------------------------------------------------------------------
// Stage cache.

TEST(StageCacheTest, WarmRerunHitsEveryProcedureAndMatchesCold)
{
    const auto w = workloads::makeByName("wc");
    StageCache cache;
    PipelineOptions opts;
    opts.keepTransformed = true;
    opts.executor.cache = &cache;
    const PipelineResult cold = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, opts);
    ASSERT_TRUE(cold.status.ok());
    EXPECT_EQ(cold.exec.cacheHits, 0u);
    EXPECT_GT(cold.exec.cacheMisses, 0u);

    const PipelineResult warm = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, opts);
    ASSERT_TRUE(warm.status.ok());
    EXPECT_EQ(warm.exec.cacheMisses, 0u);
    EXPECT_EQ(warm.exec.cacheHits, cold.exec.cacheMisses);

    // A hit replays the chain exactly: same IR, same measured run,
    // same per-stage counters.
    EXPECT_EQ(ir::toString(*warm.transformed),
              ir::toString(*cold.transformed));
    EXPECT_EQ(warm.test.cycles, cold.test.cycles);
    EXPECT_EQ(warm.test.output, cold.test.output);
    EXPECT_EQ(warm.form.superblocksFormed, cold.form.superblocksFormed);
    EXPECT_EQ(warm.compact.sched.totalCycles,
              cold.compact.sched.totalCycles);
    EXPECT_EQ(warm.alloc.regsSpilled, cold.alloc.regsSpilled);
}

TEST(StageCacheTest, ProfileChangeMissesTheCache)
{
    // Same program, same config — but a different training input
    // changes the profile content hash, so reuse would be wrong.
    auto w = workloads::makeByName("wc");
    StageCache cache;
    PipelineOptions opts;
    opts.executor.cache = &cache;
    const PipelineResult first = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, opts);
    ASSERT_TRUE(first.status.ok());

    auto edited = w.train;
    ASSERT_FALSE(edited.memImage.empty());
    edited.memImage[0] ^= 1; // different text -> different path counts
    const PipelineResult second = pipeline::runPipeline(
        w.program, edited, w.test, SchedConfig::P4, opts);
    ASSERT_TRUE(second.status.ok());
    EXPECT_GT(second.exec.cacheMisses, 0u);
}

TEST(StageCacheTest, ConfigKnobsAreInTheKey)
{
    const auto w = workloads::makeByName("wc");
    StageCache cache;
    PipelineOptions opts;
    opts.executor.cache = &cache;
    const PipelineResult first = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, opts);
    ASSERT_TRUE(first.status.ok());

    PipelineOptions narrower = opts;
    narrower.maxInstrs = 32;
    const PipelineResult second = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, narrower);
    ASSERT_TRUE(second.status.ok());
    EXPECT_EQ(second.exec.cacheHits, 0u);
    EXPECT_GT(second.exec.cacheMisses, 0u);
}

TEST(StageCacheTest, BudgetedAndFaultedRunsBypassTheCache)
{
    const auto w = workloads::makeByName("wc");
    StageCache cache;
    PipelineOptions opts;
    opts.executor.cache = &cache;
    opts.robustness.budget.formGrowthOps = 1'000'000'000;
    const PipelineResult r = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, opts);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.exec.cacheHits, 0u);
    EXPECT_EQ(r.exec.cacheMisses, 0u);
    EXPECT_EQ(cache.stats().stores, 0u);
}

class DiskCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "pathsched_cache_" +
               std::to_string(::getpid());
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string dir_;
};

TEST_F(DiskCacheTest, EntriesPersistAcrossCacheInstances)
{
    const auto w = workloads::makeByName("wc");
    PipelineOptions opts;
    opts.keepTransformed = true;
    uint64_t stored = 0;
    std::string cold_ir;
    {
        StageCache writer(dir_);
        opts.executor.cache = &writer;
        const PipelineResult cold = pipeline::runPipeline(
            w.program, w.train, w.test, SchedConfig::P4, opts);
        ASSERT_TRUE(cold.status.ok());
        stored = writer.stats().stores;
        cold_ir = ir::toString(*cold.transformed);
    }
    EXPECT_GT(stored, 0u);

    // A fresh instance (fresh process in real use) hits via disk.
    StageCache reader(dir_);
    opts.executor.cache = &reader;
    const PipelineResult warm = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, opts);
    ASSERT_TRUE(warm.status.ok());
    EXPECT_EQ(warm.exec.cacheMisses, 0u);
    EXPECT_GT(reader.stats().diskHits, 0u);
    EXPECT_EQ(ir::toString(*warm.transformed), cold_ir);
}

TEST_F(DiskCacheTest, CorruptEntriesAreRejectedAsMisses)
{
    const auto w = workloads::makeByName("wc");
    PipelineOptions opts;
    opts.keepTransformed = true;
    std::string cold_ir;
    {
        StageCache writer(dir_);
        opts.executor.cache = &writer;
        const PipelineResult cold = pipeline::runPipeline(
            w.program, w.train, w.test, SchedConfig::P4, opts);
        ASSERT_TRUE(cold.status.ok());
        cold_ir = ir::toString(*cold.transformed);
    }

    // Flip a byte in the middle of every entry file: the checksum must
    // catch it and the run must recompute rather than trust the blob.
    size_t corrupted = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir_)) {
        std::fstream f(e.path(),
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.is_open());
        f.seekg(0, std::ios::end);
        const auto size = f.tellg();
        ASSERT_GT(size, 0);
        f.seekp(std::streamoff(size) / 2);
        char c = 0;
        f.seekg(std::streamoff(size) / 2);
        f.read(&c, 1);
        c = char(c ^ 0xff);
        f.seekp(std::streamoff(size) / 2);
        f.write(&c, 1);
        ++corrupted;
    }
    ASSERT_GT(corrupted, 0u);

    StageCache reader(dir_);
    opts.executor.cache = &reader;
    const PipelineResult r = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, opts);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.outputMatches);
    EXPECT_EQ(reader.stats().corrupt, corrupted);
    EXPECT_EQ(r.exec.cacheHits, 0u);
    EXPECT_EQ(ir::toString(*r.transformed), cold_ir);
}

TEST_F(DiskCacheTest, DiskFaultDisablesTheTierWithoutChangingOutput)
{
    // A mid-run ENOSPC on the cache directory must demote the cache to
    // memory-only: the pipeline keeps running, produces bit-identical
    // IR, and never touches the sick disk again.
    const auto w = workloads::makeByName("wc");
    PipelineOptions opts;
    opts.keepTransformed = true;

    // Baseline: no cache at all.
    std::string plain_ir;
    {
        const PipelineResult plain = pipeline::runPipeline(
            w.program, w.train, w.test, SchedConfig::P4, opts);
        ASSERT_TRUE(plain.status.ok());
        plain_ir = ir::toString(*plain.transformed);
    }

    Vio vio;
    std::string err;
    ASSERT_TRUE(vio.parseFaults("path=cache,kind=enospc", err)) << err;
    StageCache cache(dir_, &vio);
    opts.executor.cache = &cache;
    const PipelineResult r = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, opts);
    ASSERT_TRUE(r.status.ok());
    EXPECT_TRUE(r.outputMatches);
    EXPECT_TRUE(cache.diskDisabled());
    EXPECT_GE(cache.stats().diskFailures, 1u);
    EXPECT_EQ(ir::toString(*r.transformed), plain_ir);

    // The memory tier survives: an in-process rerun hits it.
    const PipelineResult warm = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, opts);
    ASSERT_TRUE(warm.status.ok());
    EXPECT_GT(warm.exec.cacheHits, 0u);
    EXPECT_EQ(ir::toString(*warm.transformed), plain_ir);

    // Nothing half-written was left behind on the faulted disk.
    size_t leftovers = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir_)) {
        (void)e;
        ++leftovers;
    }
    EXPECT_EQ(leftovers, 0u);
}

TEST(StageCacheTest, SerializeProcedureRoundTrips)
{
    const auto w = workloads::makeByName("alt");
    for (const auto &proc : w.program.procs) {
        std::string blob;
        pipeline::serializeProcedure(proc, blob);
        size_t pos = 0;
        ir::Procedure out;
        ASSERT_TRUE(pipeline::deserializeProcedure(blob, pos, out));
        EXPECT_EQ(pos, blob.size());
        out.syncSideTables();
        EXPECT_EQ(ir::toString(out), ir::toString(proc));
    }
    // Truncation at any point must fail cleanly, never read past end.
    std::string blob;
    pipeline::serializeProcedure(w.program.procs[0], blob);
    for (size_t cut = 0; cut < blob.size();
         cut += 1 + blob.size() / 37) {
        size_t pos = 0;
        ir::Procedure out;
        EXPECT_FALSE(pipeline::deserializeProcedure(
            blob.substr(0, cut), pos, out));
    }
}

// ---------------------------------------------------------------------
// PipelineOptions v2: the grouped-field builder.

TEST(PipelineOptionsV2, BuilderWritesGroupedFields)
{
    obs::Observer observer;
    FaultInjector inj(0);
    StageCache cache;
    ResourceBudget budget;
    budget.interpSteps = 123;
    const PipelineOptions opts =
        PipelineOptions::Builder()
            .machine(machine::MachineModel::realisticLatency())
            .icache(true)
            .registerAllocate(false)
            .pettisHansen(false)
            .maxInstrs(64)
            .edgeProfile("edge text")
            .pathProfile("path text")
            .profileCheck(profile::AdmissionMode::Strict)
            .profileFlowSlack(7)
            .budget(budget)
            .faults(&inj)
            .observer(&observer)
            .interpStats(true)
            .threads(8)
            .execPolicy(ExecPolicy::Dynamic)
            .cache(&cache)
            .build();
    EXPECT_FALSE(opts.useICache == false);
    EXPECT_FALSE(opts.registerAllocate);
    EXPECT_FALSE(opts.pettisHansen);
    EXPECT_EQ(opts.maxInstrs, 64u);
    EXPECT_EQ(opts.profileInput.edgeText, "edge text");
    EXPECT_EQ(opts.profileInput.pathText, "path text");
    EXPECT_EQ(opts.profileInput.check, profile::AdmissionMode::Strict);
    EXPECT_EQ(opts.profileInput.flowSlack, 7u);
    EXPECT_EQ(opts.robustness.budget.interpSteps, 123u);
    EXPECT_EQ(opts.robustness.faults, &inj);
    EXPECT_EQ(opts.observability.observer, &observer);
    EXPECT_TRUE(opts.observability.interpStats);
    EXPECT_EQ(opts.executor.threads, 8u);
    EXPECT_EQ(opts.executor.policy, ExecPolicy::Dynamic);
    EXPECT_EQ(opts.executor.cache, &cache);
}

TEST(PipelineOptionsV2, GroupedBudgetGovernsARun)
{
    const auto w = workloads::makeByName("wc");
    PipelineOptions opts;
    opts.robustness.budget.deadline = Deadline::afterMs(0);
    const PipelineResult r = pipeline::runPipeline(
        w.program, w.train, w.test, SchedConfig::P4, opts);
    EXPECT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.kind(), ErrorKind::DeadlineExceeded);
}

} // namespace
} // namespace pathsched
