/**
 * @file
 * Property tests for the merge algebra behind sharded aggregation.
 *
 * RunningStat::merge is the prototype associative combine the serve
 * aggregate's contract is modeled on (src/serve/aggregate.hpp): for
 * integer-valued sample streams — which profile counts are — count,
 * sum, min, max and mean must be *bit-identical* no matter how the
 * stream is split into shards or in which order the shards are merged.
 * Variance (m2) is Chan's parallel formula and is only associative up
 * to floating-point rounding, so it gets a tolerance, not equality.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "support/rng.hpp"
#include "support/statistics.hpp"

namespace pathsched {
namespace {

std::vector<double>
randomIntegerSamples(Rng &rng, size_t n)
{
    std::vector<double> xs;
    xs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        xs.push_back(double(rng.below(1u << 20)));
    return xs;
}

RunningStat
accumulate(const std::vector<double> &xs)
{
    RunningStat s;
    for (double x : xs)
        s.add(x);
    return s;
}

/** Split @p xs into @p nShards shard accumulators, assigning each
 *  sample to a random shard, then merge the shards in random order. */
RunningStat
shardAndMerge(const std::vector<double> &xs, uint32_t nShards, Rng &rng)
{
    std::vector<std::unique_ptr<RunningStat>> shards;
    for (uint32_t i = 0; i < nShards; ++i)
        shards.push_back(std::make_unique<RunningStat>());
    for (double x : xs)
        shards[rng.below(nShards)]->add(x);
    while (shards.size() > 1) {
        const size_t a = rng.below(shards.size());
        size_t b = rng.below(shards.size() - 1);
        if (b >= a)
            ++b;
        shards[a]->merge(*shards[b]);
        shards.erase(shards.begin() + ptrdiff_t(b));
    }
    return *shards[0];
}

TEST(RunningStatMergeTest, IntegerStreamsMergeBitIdentically)
{
    for (uint64_t seed = 1; seed <= 16; ++seed) {
        Rng rng(seed * 0x9e3779b97f4a7c15ULL);
        const auto xs =
            randomIntegerSamples(rng, 50 + rng.below(200));
        const RunningStat whole = accumulate(xs);

        for (uint32_t nShards : {2u, 3u, 7u}) {
            const RunningStat merged = shardAndMerge(xs, nShards, rng);
            EXPECT_EQ(merged.count(), whole.count());
            // Bit-identical, not approximately equal: these are the
            // fields the crash-recovery hashes depend on.
            EXPECT_EQ(merged.sum(), whole.sum());
            EXPECT_EQ(merged.mean(), whole.mean());
            EXPECT_EQ(merged.min(), whole.min());
            EXPECT_EQ(merged.max(), whole.max());
            // Variance is associative only up to rounding.
            EXPECT_NEAR(merged.variance(), whole.variance(),
                        1e-6 * (1.0 + whole.variance()))
                << "seed " << seed << " shards " << nShards;
        }
    }
}

TEST(RunningStatMergeTest, EmptyIsTheIdentityElement)
{
    Rng rng(42);
    const auto xs = randomIntegerSamples(rng, 64);
    const RunningStat whole = accumulate(xs);

    RunningStat left = whole;
    left.merge(RunningStat());
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_EQ(left.sum(), whole.sum());
    EXPECT_EQ(left.mean(), whole.mean());
    EXPECT_EQ(left.min(), whole.min());
    EXPECT_EQ(left.max(), whole.max());
    EXPECT_EQ(left.variance(), whole.variance());

    RunningStat right;
    right.merge(whole);
    EXPECT_EQ(right.count(), whole.count());
    EXPECT_EQ(right.sum(), whole.sum());
    EXPECT_EQ(right.mean(), whole.mean());
    EXPECT_EQ(right.min(), whole.min());
    EXPECT_EQ(right.max(), whole.max());
    EXPECT_EQ(right.variance(), whole.variance());
}

TEST(RunningStatMergeTest, SplitPointSweepIsExactForIntegerStreams)
{
    Rng rng(7);
    const auto xs = randomIntegerSamples(rng, 40);
    const RunningStat whole = accumulate(xs);
    // Every contiguous split [0,k) + [k,n) merges to the same stats.
    for (size_t k = 0; k <= xs.size(); ++k) {
        RunningStat a = accumulate(
            std::vector<double>(xs.begin(), xs.begin() + ptrdiff_t(k)));
        const RunningStat b = accumulate(
            std::vector<double>(xs.begin() + ptrdiff_t(k), xs.end()));
        a.merge(b);
        EXPECT_EQ(a.count(), whole.count()) << "split " << k;
        EXPECT_EQ(a.sum(), whole.sum()) << "split " << k;
        EXPECT_EQ(a.mean(), whole.mean()) << "split " << k;
        EXPECT_EQ(a.min(), whole.min()) << "split " << k;
        EXPECT_EQ(a.max(), whole.max()) << "split " << k;
    }
}

TEST(RunningStatMergeTest, MergeMatchesDirectComputation)
{
    Rng rng(13);
    const auto xs = randomIntegerSamples(rng, 100);
    const RunningStat merged = shardAndMerge(xs, 5, rng);

    double sum = 0, mn = xs[0], mx = xs[0];
    for (double x : xs) {
        sum += x;
        mn = std::min(mn, x);
        mx = std::max(mx, x);
    }
    EXPECT_EQ(merged.count(), xs.size());
    EXPECT_EQ(merged.sum(), sum);
    EXPECT_EQ(merged.min(), mn);
    EXPECT_EQ(merged.max(), mx);
    // The canonical mean is derived from the exact sum.
    EXPECT_EQ(merged.mean(), sum / double(xs.size()));

    double m2 = 0;
    const double mean = sum / double(xs.size());
    for (double x : xs)
        m2 += (x - mean) * (x - mean);
    const double variance = m2 / double(xs.size() - 1);
    EXPECT_NEAR(merged.variance(), variance, 1e-6 * (1.0 + variance));
}

} // namespace
} // namespace pathsched
