/**
 * @file
 * Unit tests for the support library: Rng, BitVec, statistics and
 * string utilities.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "support/bitvec.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/strutil.hpp"

namespace pathsched {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(double(hits) / 10000.0, 0.25, 0.03);
}

TEST(BitVec, SetTestReset)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_FALSE(v.test(0));
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(129));
    EXPECT_FALSE(v.test(1));
    v.reset(64);
    EXPECT_FALSE(v.test(64));
    EXPECT_EQ(v.count(), 2u);
}

TEST(BitVec, UnionReportsChange)
{
    BitVec a(70), b(70);
    b.set(69);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_FALSE(a.unionWith(b)); // already contained
    EXPECT_TRUE(a.test(69));
}

TEST(BitVec, SubtractRemovesBits)
{
    BitVec a(10), b(10);
    a.set(3);
    a.set(4);
    b.set(3);
    a.subtract(b);
    EXPECT_FALSE(a.test(3));
    EXPECT_TRUE(a.test(4));
}

TEST(BitVec, EqualityComparesContentAndSize)
{
    BitVec a(10), b(10), c(11);
    EXPECT_TRUE(a == b);
    b.set(5);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(BitVec, ClearZeroesEverything)
{
    BitVec a(100);
    a.set(7);
    a.set(99);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
}

TEST(RunningStat, TracksMinMaxMeanSum)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(-1.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.mean(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStat, EmptyAccumulatorIsWellDefined)
{
    const RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, SingleSampleHasZeroVariance)
{
    RunningStat s;
    s.add(7.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 7.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStat, WelfordMatchesDirectVariance)
{
    // Sample variance of {2, 4, 4, 4, 5, 5, 7, 9} is 32/7.
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(RunningStat, WelfordIsStableForOffsetSamples)
{
    // A naive sum-of-squares accumulator loses all precision here;
    // Welford keeps the exact small variance around a huge mean.
    RunningStat s;
    const double base = 1e9;
    for (double x : {base + 1.0, base + 2.0, base + 3.0})
        s.add(x);
    EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStat, MergeMatchesSequentialFeed)
{
    RunningStat all, a, b;
    const std::vector<double> xs = {1.0, -2.0, 3.5, 0.0, 10.0, 4.25};
    for (size_t i = 0; i < xs.size(); ++i) {
        all.add(xs[i]);
        (i < 3 ? a : b).add(xs[i]);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
}

TEST(RunningStat, MergeWithEmptySides)
{
    RunningStat a, empty;
    a.add(1.0);
    a.add(3.0);
    const double var = a.variance();
    a.merge(empty); // no-op
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.variance(), var);
    empty.merge(a); // adopt
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Statistics, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Strutil, Strfmt)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Strutil, Join)
{
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"a"}, ", "), "a");
    EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Strutil, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
}

TEST(Strutil, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padRight("abcd", 2), "abcd");
}

} // namespace
} // namespace pathsched
