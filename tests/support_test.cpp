/**
 * @file
 * Unit tests for the support library: Rng, BitVec, statistics and
 * string utilities.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/bitvec.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/strutil.hpp"

namespace pathsched {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25);
    EXPECT_NEAR(double(hits) / 10000.0, 0.25, 0.03);
}

TEST(BitVec, SetTestReset)
{
    BitVec v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_FALSE(v.test(0));
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(129));
    EXPECT_FALSE(v.test(1));
    v.reset(64);
    EXPECT_FALSE(v.test(64));
    EXPECT_EQ(v.count(), 2u);
}

TEST(BitVec, UnionReportsChange)
{
    BitVec a(70), b(70);
    b.set(69);
    EXPECT_TRUE(a.unionWith(b));
    EXPECT_FALSE(a.unionWith(b)); // already contained
    EXPECT_TRUE(a.test(69));
}

TEST(BitVec, SubtractRemovesBits)
{
    BitVec a(10), b(10);
    a.set(3);
    a.set(4);
    b.set(3);
    a.subtract(b);
    EXPECT_FALSE(a.test(3));
    EXPECT_TRUE(a.test(4));
}

TEST(BitVec, EqualityComparesContentAndSize)
{
    BitVec a(10), b(10), c(11);
    EXPECT_TRUE(a == b);
    b.set(5);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(BitVec, ClearZeroesEverything)
{
    BitVec a(100);
    a.set(7);
    a.set(99);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
}

TEST(RunningStat, TracksMinMaxMeanSum)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    s.add(2.0);
    s.add(4.0);
    s.add(-1.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.mean(), 5.0 / 3.0, 1e-12);
}

TEST(Statistics, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Strutil, Strfmt)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Strutil, Join)
{
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"a"}, ", "), "a");
    EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Strutil, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
}

TEST(Strutil, Padding)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padRight("abcd", 2), "abcd");
}

} // namespace
} // namespace pathsched
