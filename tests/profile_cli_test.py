#!/usr/bin/env python3
"""Profile admission through the real CLI (docs/robustness.md).

Exercises the externally visible contract of the admission layer:

  1. dump/load round trip: a v2 profile dumped from a workload admits
     cleanly back into the same workload (exit 0, identical cycles);
  2. --validate-profile exit codes: 0 clean, 2 admissible with
     degradations (corrupted counts), 3 rejected (checksum/garbage);
  3. staleness: a profile trained on one workload fed to another is
     quarantined per procedure and the run degrades (exit 2), it
     never crashes (exit 3) the driver;
  4. a corpus of malformed profile files: whatever the mutation, the
     CLI must exit 0, 1 or 2 — never 3 (panic) and never a signal;
  5. --profile-check=off trusts a parseable file without auditing.

Usage: profile_cli_test.py <pathsched_cli>
"""

import os
import subprocess
import sys
import tempfile

CLI = sys.argv[1]

failures = []


def check(cond, what):
    tag = "ok" if cond else "FAIL"
    print(f"  [{tag}] {what}")
    if not cond:
        failures.append(what)


def run_cli(args, **kw):
    return subprocess.run(
        [CLI] + args,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **kw,
    )


def cycles_of(stdout):
    """Sum every cycle count in the result table (crude but stable)."""
    total = 0
    for line in stdout.splitlines():
        parts = line.split()
        for p in parts:
            if p.isdigit():
                total += int(p)
    return total


def test_round_trip(tmp):
    print("round trip: dump v2, load back, validate")
    paths = os.path.join(tmp, "wc.paths")
    r = run_cli(["--workload", "wc", "--config", "P4",
                 "--profile-version", "2", "--dump-paths", paths])
    check(r.returncode == 0, f"dump run exits 0 (got {r.returncode})")
    with open(paths) as f:
        text = f.read()
    check(text.startswith("pathprofile v2 "), "dump is v2")
    check("fingerprint 0 " in text, "dump carries fingerprints")

    base = run_cli(["--workload", "wc", "--config", "P4"])
    loaded = run_cli(["--workload", "wc", "--config", "P4",
                      "--load-paths", paths])
    check(loaded.returncode == 0,
          f"clean load exits 0 (got {loaded.returncode})")
    check(cycles_of(loaded.stdout) == cycles_of(base.stdout),
          "clean external profile reproduces the training run")

    v = run_cli(["--workload", "wc", "--load-paths", paths,
                 "--validate-profile"])
    check(v.returncode == 0,
          f"--validate-profile clean exits 0 (got {v.returncode})")
    check("clean" in v.stdout, "validation report says clean")


def test_validate_exit_codes(tmp):
    print("--validate-profile: 2 on degradations, 3 on rejection")
    paths = os.path.join(tmp, "corr.paths")
    run_cli(["--workload", "corr", "--config", "P4",
             "--dump-paths", paths])
    with open(paths) as f:
        lines = f.read().splitlines(keepends=True)

    # Inflate one long window's count: admissible but degraded.
    bad = os.path.join(tmp, "corr-inflated.paths")
    out = []
    done = False
    for line in lines:
        tok = line.split()
        if not done and len(tok) >= 4 and tok[0] == "path" \
                and int(tok[3]) >= 3:
            tok[2] = tok[2] + "000000"
            line = " ".join(tok) + "\n"
            done = True
        out.append(line)
    check(done, "found a window to corrupt")
    with open(bad, "w") as f:
        f.writelines(out)
    v = run_cli(["--workload", "corr", "--load-paths", bad,
                 "--validate-profile"])
    check(v.returncode == 2,
          f"corrupt counts validate as 2 (got {v.returncode})")

    # Garbage never validates: exit 3.
    junk = os.path.join(tmp, "junk.paths")
    with open(junk, "w") as f:
        f.write("this is not a profile\n")
    v = run_cli(["--workload", "corr", "--load-paths", junk,
                 "--validate-profile"])
    check(v.returncode == 3,
          f"garbage validates as 3 (got {v.returncode})")

    # A tampered v2 body fails the checksum: exit 3.
    v2 = os.path.join(tmp, "corr-v2.paths")
    run_cli(["--workload", "corr", "--config", "P4",
             "--profile-version", "2", "--dump-paths", v2])
    with open(v2) as f:
        text = f.read()
    body = text.index("\n") + 1
    tampered = text[:-2] + ("1" if text[-2] != "1" else "2") + "\n"
    check(len(tampered) == len(text) and tampered != text,
          "tamper changed one body byte")
    with open(v2, "w") as f:
        f.write(tampered)
    v = run_cli(["--workload", "corr", "--load-paths", v2,
                 "--validate-profile"])
    check(v.returncode == 3,
          f"checksum mismatch validates as 3 (got {v.returncode})")


def test_stale_profile(tmp):
    print("stale: wc profile against com degrades, never crashes")
    paths = os.path.join(tmp, "wc-v2.paths")
    run_cli(["--workload", "wc", "--config", "P4",
             "--profile-version", "2", "--dump-paths", paths])
    r = run_cli(["--workload", "com", "--config", "P4",
                 "--load-paths", paths])
    check(r.returncode == 2,
          f"stale profile degrades the run, exit 2 (got {r.returncode})")
    check("quarantined" in r.stderr or "rejected" in r.stderr,
          "stderr names the degradation")

    v = run_cli(["--workload", "com", "--load-paths", paths,
                 "--validate-profile"])
    check(v.returncode in (2, 3),
          f"cross-workload validation is not clean (got {v.returncode})")


def test_malformed_corpus(tmp):
    print("malformed corpus: CLI never panics, never crashes")
    paths = os.path.join(tmp, "alt.paths")
    run_cli(["--workload", "alt", "--config", "P4",
             "--dump-paths", paths])
    with open(paths) as f:
        good = f.read()

    corpus = {
        "empty": "",
        "garbage": "not a profile at all\n",
        "truncated-header": "pathprofile",
        "bad-params": "pathprofile v1 15 64\n",
        "negative-count": "pathprofile v1 15 64 0\npath 0 -5 1 0\n",
        "overflow-count": "pathprofile v1 15 64 0\n"
                          "path 0 99999999999999999999999 1 0\n",
        "out-of-range-block": "pathprofile v1 15 64 0\n"
                              "path 0 5 2 0 99\n",
        "huge-declared-len": "pathprofile v1 15 64 0\n"
                             "path 0 5 99999999999 0\n",
        "truncated-body": good[: max(1, len(good) // 2)],
        "spliced": good + good,
        "binary": "pathprofile v1 15 64 0\npath \x00\x01\xff 1 0\n",
    }
    for name, text in corpus.items():
        f = os.path.join(tmp, f"corpus-{name}.paths")
        with open(f, "w") as fh:
            fh.write(text)
        for extra in ([], ["--validate-profile"]):
            r = run_cli(["--workload", "alt", "--config", "P4",
                         "--load-paths", f] + extra)
            mode = "validate" if extra else "run"
            check(r.returncode >= 0 and (extra or r.returncode != 3),
                  f"{name}/{mode}: no crash/panic "
                  f"(exit {r.returncode})")


def test_profile_check_off(tmp):
    print("--profile-check=off: parseable files are trusted")
    paths = os.path.join(tmp, "wc.paths")
    run_cli(["--workload", "wc", "--config", "P4",
             "--dump-paths", paths])
    r = run_cli(["--workload", "wc", "--config", "P4",
                 "--load-paths", paths, "--profile-check=off"])
    check(r.returncode == 0,
          f"off-mode clean load exits 0 (got {r.returncode})")
    check("profile:" not in r.stderr, "off mode reports nothing")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        test_round_trip(tmp)
        test_validate_exit_codes(tmp)
        test_stale_profile(tmp)
        test_malformed_corpus(tmp)
        test_profile_check_off(tmp)
    if failures:
        print(f"\n{len(failures)} check(s) FAILED")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
