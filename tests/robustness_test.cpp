/**
 * @file
 * Fault-tolerance tests: the typed-error taxonomy, the deterministic
 * fault-injection harness, and the pipeline's per-procedure BB
 * quarantine.  The core matrix injects one fault at every stage
 * boundary of a real workload and asserts the run still completes with
 * correct output, exactly one recorded degradation, and the
 * "robust.<config>.*" counters set.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "support/faultinject.hpp"
#include "support/status.hpp"
#include "workloads/workloads.hpp"

namespace pathsched {
namespace {

using pipeline::PipelineOptions;
using pipeline::PipelineResult;
using pipeline::SchedConfig;

// ---------------------------------------------------------------------
// Status / ErrorKind basics.

TEST(Status, DefaultIsOkAndErrorCarriesKindAndMessage)
{
    const Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.toString(), "OK");

    const Status bad =
        Status::error(ErrorKind::ScheduleFailed, "block 3 unscheduled");
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.kind(), ErrorKind::ScheduleFailed);
    EXPECT_EQ(bad.message(), "block 3 unscheduled");
    EXPECT_EQ(bad.toString(), "ScheduleFailed: block 3 unscheduled");
}

TEST(Status, EveryKindNameParsesBack)
{
    // The full closed taxonomy: kAllErrorKinds must cover every kind
    // exactly once, and every name must round-trip through the parser.
    size_t n = 0;
    for (ErrorKind k : kAllErrorKinds) {
        ++n;
        ErrorKind parsed;
        ASSERT_TRUE(parseErrorKind(errorKindName(k), parsed))
            << errorKindName(k);
        EXPECT_EQ(parsed, k);
        // Canonical names are unique (no two kinds share one).
        for (ErrorKind other : kAllErrorKinds) {
            if (other != k) {
                EXPECT_STRNE(errorKindName(k), errorKindName(other));
            }
        }
    }
    EXPECT_EQ(n, 12u) << "new ErrorKind added without updating "
                         "kAllErrorKinds or this test";

    ErrorKind parsed;
    EXPECT_TRUE(parseErrorKind("verify", parsed));
    EXPECT_EQ(parsed, ErrorKind::VerifyFailed);
    EXPECT_TRUE(parseErrorKind("deadline", parsed));
    EXPECT_EQ(parsed, ErrorKind::DeadlineExceeded);
    EXPECT_TRUE(parseErrorKind("budget", parsed));
    EXPECT_EQ(parsed, ErrorKind::BudgetExceeded);
    EXPECT_TRUE(parseErrorKind("io", parsed));
    EXPECT_EQ(parsed, ErrorKind::IoError);
    EXPECT_TRUE(parseErrorKind("unavailable", parsed));
    EXPECT_EQ(parsed, ErrorKind::Unavailable);
    EXPECT_FALSE(parseErrorKind("no-such-kind", parsed));
}

TEST(Status, ExpectedHoldsValueOrError)
{
    Expected<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 7);

    Expected<int> bad(Status::error(ErrorKind::BadProfile, "nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().kind(), ErrorKind::BadProfile);
}

// ---------------------------------------------------------------------
// FaultInjector.

TEST(FaultInjector, ParseAcceptsFullGrammar)
{
    FaultInjector inj;
    std::string err;
    ASSERT_TRUE(inj.parse(
        "stage=form,proc=3,kind=verify,count=2;stage=compact", err))
        << err;
    EXPECT_EQ(inj.size(), 2u);

    // Second spec: any proc, default kind, unlimited fires.
    EXPECT_EQ(inj.fire("compact", 17), ErrorKind::Injected);
    EXPECT_EQ(inj.fire("compact", 0), ErrorKind::Injected);

    // First spec: only proc 3, kind verify, at most twice.
    EXPECT_EQ(inj.fire("form", 2), std::nullopt);
    EXPECT_EQ(inj.fire("form", 3), ErrorKind::VerifyFailed);
    EXPECT_EQ(inj.fire("form", 3), ErrorKind::VerifyFailed);
    EXPECT_EQ(inj.fire("form", 3), std::nullopt); // budget spent
    EXPECT_EQ(inj.totalFired(), 4u);
}

TEST(FaultInjector, ParseRejectsMalformedSpecs)
{
    const char *bad[] = {
        "",                       // empty
        "proc=1",                 // no stage
        "stage=form,proc=x",      // bad proc id
        "stage=form,proc=-1",     // negative proc id
        "stage=form,kind=nope",   // unknown kind
        "stage=form,count=0",     // zero budget
        "stage=form,prob=2.0",    // out-of-range probability
        "stage=form,bogus=1",     // unknown field
        "stage=form,procid",      // field without '='
    };
    for (const char *spec : bad) {
        FaultInjector inj;
        std::string err;
        EXPECT_FALSE(inj.parse(spec, err)) << spec;
        EXPECT_FALSE(err.empty()) << spec;
    }
}

TEST(FaultInjector, ProbabilisticFiresAreSeedDeterministic)
{
    auto fires = [](uint64_t seed) {
        FaultInjector inj(seed);
        std::string err;
        EXPECT_TRUE(inj.parse("stage=form,prob=0.5", err)) << err;
        std::vector<bool> seen;
        for (uint32_t p = 0; p < 256; ++p)
            seen.push_back(inj.fire("form", p).has_value());
        return seen;
    };
    // Same seed => the same fire set, draw for draw, across two
    // independently constructed injectors.
    const auto a = fires(42);
    const auto b = fires(42);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, fires(43));
    // prob=0.5 over 256 draws fires some but not all (the determinism
    // check above would pass vacuously for an always/never injector).
    EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
    EXPECT_NE(std::count(a.begin(), a.end(), true), 256);
}

// ---------------------------------------------------------------------
// Pipeline quarantine: the injection matrix.

PipelineResult
runWc(SchedConfig config, PipelineOptions opts)
{
    const auto w = workloads::makeByName("wc");
    return pipeline::runPipeline(w.program, w.train, w.test, config,
                                 opts);
}

class InjectMatrix : public ::testing::TestWithParam<const char *>
{};

TEST_P(InjectMatrix, WcP4CompletesWithExactlyOneDegradation)
{
    const std::string stage = GetParam();
    FaultInjector inj;
    std::string err;
    ASSERT_TRUE(inj.parse("stage=" + stage + ",count=1", err)) << err;

    obs::StatRegistry registry;
    obs::Observer observer;
    observer.stats = &registry;
    PipelineOptions opts;
    opts.robustness.faults = &inj;
    opts.observability.observer = &observer;

    const PipelineResult r = runWc(SchedConfig::P4, opts);
    EXPECT_TRUE(r.status.ok()) << r.status.toString();
    EXPECT_TRUE(r.outputMatches);
    EXPECT_GT(r.test.cycles, 0u);
    EXPECT_EQ(inj.totalFired(), 1u);
    ASSERT_EQ(r.degraded.size(), 1u);
    EXPECT_TRUE(r.degradedRun());
    EXPECT_EQ(r.degraded[0].stage, stage);
    EXPECT_EQ(r.degraded[0].kind, ErrorKind::Injected);
    EXPECT_FALSE(r.degraded[0].procName.empty());

    EXPECT_EQ(registry.counter("robust.P4.degraded"), 1u);
    EXPECT_EQ(registry.counter("robust.P4.errors.Injected"), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Stages, InjectMatrix,
    ::testing::Values("form", "materialize", "compact", "regalloc",
                      "verify", "output-compare"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Robustness, InjectedKindIsRecordedVerbatim)
{
    FaultInjector inj;
    std::string err;
    ASSERT_TRUE(inj.parse("stage=compact,count=1,kind=schedule", err))
        << err;
    PipelineOptions opts;
    opts.robustness.faults = &inj;
    const PipelineResult r = runWc(SchedConfig::P4, opts);
    EXPECT_TRUE(r.outputMatches);
    ASSERT_EQ(r.degraded.size(), 1u);
    EXPECT_EQ(r.degraded[0].kind, ErrorKind::ScheduleFailed);
}

TEST(Robustness, ArmedButNonMatchingInjectorChangesNothing)
{
    const PipelineResult clean = runWc(SchedConfig::P4, {});
    ASSERT_TRUE(clean.status.ok());
    EXPECT_FALSE(clean.degradedRun());

    FaultInjector inj;
    std::string err;
    ASSERT_TRUE(inj.parse("stage=form,proc=1000000", err)) << err;
    PipelineOptions opts;
    opts.robustness.faults = &inj;
    const PipelineResult armed = runWc(SchedConfig::P4, opts);

    EXPECT_EQ(inj.totalFired(), 0u);
    EXPECT_FALSE(armed.degradedRun());
    EXPECT_EQ(armed.test.cycles, clean.test.cycles);
    EXPECT_EQ(armed.test.dynInstrs, clean.test.dynInstrs);
    EXPECT_EQ(armed.codeBytes, clean.codeBytes);
}

TEST(Robustness, FullDegradationFallsBackToBBNumbers)
{
    const PipelineResult bb = runWc(SchedConfig::BB, {});

    FaultInjector inj;
    std::string err;
    ASSERT_TRUE(inj.parse("stage=form", err)) << err; // every proc
    PipelineOptions opts;
    opts.robustness.faults = &inj;
    const PipelineResult r = runWc(SchedConfig::P4, opts);

    EXPECT_TRUE(r.status.ok());
    EXPECT_TRUE(r.outputMatches);
    const auto w = workloads::makeByName("wc");
    EXPECT_EQ(r.degraded.size(), w.program.procs.size());
    // With every procedure quarantined the transformed program is the
    // BB program: the measured numbers must agree exactly.
    EXPECT_EQ(r.test.cycles, bb.test.cycles);
    EXPECT_EQ(r.test.dynInstrs, bb.test.dynInstrs);
    EXPECT_EQ(r.codeBytes, bb.codeBytes);
}

TEST(Robustness, TrainingStepLimitReturnsTypedStatus)
{
    PipelineOptions opts;
    opts.maxSteps = 100; // far below wc's training run
    const PipelineResult r = runWc(SchedConfig::P4, opts);
    ASSERT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.kind(), ErrorKind::StepLimit);
    EXPECT_FALSE(r.degradedRun());
}

TEST(Robustness, DegradationsAppearInJsonReport)
{
    FaultInjector inj;
    std::string err;
    ASSERT_TRUE(inj.parse("stage=regalloc,count=1", err)) << err;
    PipelineOptions opts;
    opts.robustness.faults = &inj;
    PipelineResult r = runWc(SchedConfig::P4, opts);
    ASSERT_EQ(r.degraded.size(), 1u);

    std::vector<pipeline::ReportRun> runs;
    runs.push_back({"wc", std::move(r)});
    const std::string json = pipeline::reportJson(runs, nullptr);
    EXPECT_NE(json.find("\"status\": \"OK\""), std::string::npos);
    EXPECT_NE(json.find("\"degraded\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"degradations\":"), std::string::npos);
    EXPECT_NE(json.find("\"stage\": \"regalloc\""), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"Injected\""), std::string::npos);
}

TEST(Robustness, CleanReportCarriesOkStatusAndZeroDegraded)
{
    PipelineResult r = runWc(SchedConfig::BB, {});
    std::vector<pipeline::ReportRun> runs;
    runs.push_back({"wc", std::move(r)});
    const std::string json = pipeline::reportJson(runs, nullptr);
    EXPECT_NE(json.find("\"status\": \"OK\""), std::string::npos);
    EXPECT_NE(json.find("\"degraded\": 0"), std::string::npos);
    EXPECT_EQ(json.find("\"degradations\":"), std::string::npos);
}

} // namespace
} // namespace pathsched
