/**
 * @file
 * Direct unit tests of trace materialization: each internal-terminator
 * conversion case (fallthrough-on-trace, taken-on-trace with branch
 * inversion, unconditional jump elision, both-targets-on-trace), the
 * self-loop back edge, and ordinal bookkeeping.
 */

#include <gtest/gtest.h>

#include "form/internal.hpp"
#include "form/materialize.hpp"
#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"

namespace pathsched::form {
namespace {

using ir::BlockId;
using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::RegId;

/** Materialize one hand-chosen trace in @p prog's main procedure. */
FormStats
materialize(Program &prog, const Trace &t)
{
    FormConfig cfg;
    ProcFormState state(prog.proc(prog.mainProc), cfg);
    state.traces.push_back(t);
    for (BlockId b : t)
        state.traceOf[b] = 0;
    state.traceIsLoop.assign(1, 0);
    state.traceEnlarged.assign(1, 0);
    FormStats stats;
    const Status st = materializeTraces(state, stats);
    EXPECT_TRUE(st.ok()) << st.toString();
    return stats;
}

TEST(Materialize, FallthroughTerminatorBecomesExit)
{
    // head's Br: taken -> off, fallthrough -> next (on trace).
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId next = b.newBlock(); // 1
    const BlockId off = b.newBlock();  // 2
    b.brnz(b.param(0), off, next);
    b.setBlock(next);
    b.ret(b.ldi(1));
    b.setBlock(off);
    b.ret(b.ldi(2));

    materialize(prog, {0, next});
    const auto &p = prog.proc(0);
    const auto &sb = p.superblocks[0];
    ASSERT_TRUE(sb.isSuperblock);
    EXPECT_EQ(sb.numSrcBlocks, 2u);
    // The internal branch kept its sense and points off-trace, with
    // the in-block fallthrough marked by kNoBlock.
    bool found_exit = false;
    for (size_t i = 0; i + 1 < p.blocks[0].instrs.size(); ++i) {
        const auto &ins = p.blocks[0].instrs[i];
        if (ins.isBranch()) {
            EXPECT_EQ(ins.op, Opcode::BrNz);
            EXPECT_EQ(ins.target0, off);
            EXPECT_EQ(ins.target1, ir::kNoBlock);
            found_exit = true;
        }
    }
    EXPECT_TRUE(found_exit);
}

TEST(Materialize, TakenTerminatorInvertsBranchSense)
{
    // head's Br: taken -> next (on trace), fallthrough -> off.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId next = b.newBlock(); // 1
    const BlockId off = b.newBlock();  // 2
    b.brnz(b.param(0), next, off);
    b.setBlock(next);
    b.ret(b.ldi(1));
    b.setBlock(off);
    b.ret(b.ldi(2));

    materialize(prog, {0, next});
    const auto &p = prog.proc(0);
    bool found_exit = false;
    for (size_t i = 0; i + 1 < p.blocks[0].instrs.size(); ++i) {
        const auto &ins = p.blocks[0].instrs[i];
        if (ins.isBranch()) {
            EXPECT_EQ(ins.op, Opcode::BrZ) << "sense must invert";
            EXPECT_EQ(ins.target0, off);
            found_exit = true;
        }
    }
    EXPECT_TRUE(found_exit);

    // Semantics on both directions.
    interp::ProgramInput in;
    in.mainArgs = {1};
    EXPECT_EQ(interp::Interpreter(prog).run(in).returnValue, 1);
    in.mainArgs = {0};
    EXPECT_EQ(interp::Interpreter(prog).run(in).returnValue, 2);
}

TEST(Materialize, JumpsAreElided)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const BlockId next = b.newBlock();
    const RegId v = b.ldi(7);
    b.jmp(next);
    b.setBlock(next);
    b.ret(v);

    materialize(prog, {0, next});
    const auto &p = prog.proc(0);
    // ldi + ret only: the jmp disappeared.
    ASSERT_EQ(p.blocks[0].instrs.size(), 2u);
    EXPECT_EQ(p.blocks[0].instrs[0].op, Opcode::Ldi);
    EXPECT_EQ(p.blocks[0].instrs[1].op, Opcode::Ret);
    EXPECT_EQ(interp::Interpreter(prog).run({}).returnValue, 7);
}

TEST(Materialize, BranchWithBothTargetsOnTraceIsDropped)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId next = b.newBlock();
    b.brnz(b.param(0), next, next); // degenerate: both ways continue
    b.setBlock(next);
    b.ret(b.ldi(3));

    materialize(prog, {0, next});
    const auto &p = prog.proc(0);
    for (const auto &ins : p.blocks[0].instrs)
        EXPECT_FALSE(ins.isBranch());
    EXPECT_EQ(interp::Interpreter(prog).run({.mainArgs = {1},
                                             .memImage = {}})
                  .returnValue,
              3);
}

TEST(Materialize, SelfLoopBackEdgeMarksLoop)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId head = b.newBlock(); // 1
    const BlockId body = b.newBlock(); // 2
    const BlockId done = b.newBlock(); // 3
    const RegId i = b.freshReg();
    b.ldiTo(i, 0);
    b.jmp(head);
    b.setBlock(head);
    const RegId c = b.alu(Opcode::CmpLt, i, b.param(0));
    b.brnz(c, body, done);
    b.setBlock(body);
    b.aluiTo(Opcode::Add, i, i, 1);
    b.jmp(head);
    b.setBlock(done);
    b.ret(i);

    materialize(prog, {head, body});
    const auto &p = prog.proc(0);
    const auto &sb = p.superblocks[head];
    ASSERT_TRUE(sb.isSuperblock);
    EXPECT_TRUE(sb.isLoop); // terminator jumps back to the head
    EXPECT_EQ(p.blocks[head].terminator().target0, head);

    interp::ProgramInput in;
    in.mainArgs = {5};
    EXPECT_EQ(interp::Interpreter(prog).run(in).returnValue, 5);
}

TEST(Materialize, RepeatedBlocksBecomeCopies)
{
    // An "enlarged" trace visiting the loop twice: the head's code
    // appears twice in the merged block.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId head = b.newBlock(); // 1
    const BlockId done = b.newBlock(); // 2
    const RegId i = b.freshReg();
    b.ldiTo(i, 0);
    b.jmp(head);
    b.setBlock(head);
    b.aluiTo(Opcode::Add, i, i, 1);
    const RegId c = b.alu(Opcode::CmpLt, i, b.param(0));
    b.brnz(c, head, done);
    b.setBlock(done);
    b.ret(i);

    materialize(prog, {head, head, head});
    const auto &p = prog.proc(0);
    const auto &sb = p.superblocks[head];
    ASSERT_TRUE(sb.isSuperblock);
    EXPECT_EQ(sb.numSrcBlocks, 3u);
    // Internal back-branches became exits... to the head itself: the
    // taken direction continued the trace, so the sense inverted and
    // the exits now point at `done`.
    int adds = 0;
    for (const auto &ins : p.blocks[head].instrs)
        adds += ins.op == Opcode::Add && ins.useImm;
    EXPECT_EQ(adds, 3);

    std::vector<std::string> errors;
    EXPECT_TRUE(ir::verify(prog, ir::VerifyMode::Superblock, errors))
        << (errors.empty() ? "" : errors.front());
    interp::ProgramInput in;
    in.mainArgs = {7};
    EXPECT_EQ(interp::Interpreter(prog).run(in).returnValue, 7);
}

TEST(Materialize, OrdinalsFollowTracePositions)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const BlockId m1 = b.newBlock();
    const BlockId m2 = b.newBlock();
    b.ldi(1);
    b.jmp(m1);
    b.setBlock(m1);
    b.ldi(2);
    b.jmp(m2);
    b.setBlock(m2);
    b.ret(b.ldi(3));

    materialize(prog, {0, m1, m2});
    const auto &sb = prog.proc(0).superblocks[0];
    ASSERT_TRUE(sb.isSuperblock);
    // ldi(1) [ord 0], ldi(2) [ord 1], ldi(3)+ret [ord 2]; jmps elided.
    EXPECT_EQ(sb.srcOrdinalOf,
              (std::vector<uint32_t>{0, 1, 2, 2}));
}

} // namespace
} // namespace pathsched::form
