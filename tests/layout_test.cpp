/**
 * @file
 * Tests for code layout and Pettis-Hansen procedure placement.
 */

#include <gtest/gtest.h>

#include "analysis/callgraph.hpp"
#include "ir/builder.hpp"
#include "layout/code_layout.hpp"
#include "layout/pettis_hansen.hpp"

namespace pathsched::layout {
namespace {

using ir::IrBuilder;
using ir::ProcId;
using ir::Program;

Program
makeThreeProcs()
{
    Program prog;
    IrBuilder b(prog);
    const ProcId a = b.newProc("a", 0);
    b.ret(b.ldi(0));
    const ProcId c = b.newProc("b", 0);
    b.callVoid(a, {});
    b.ret(b.ldi(0));
    const ProcId m = b.newProc("main", 0);
    b.callVoid(a, {});
    b.callVoid(c, {});
    b.ret(b.ldi(0));
    prog.mainProc = m;
    return prog;
}

TEST(CodeLayout, ContiguousFourByteOps)
{
    Program prog = makeThreeProcs();
    const CodeLayout cl = layoutProgram(prog);
    EXPECT_EQ(cl.instrBytes, 4u);
    EXPECT_EQ(cl.totalBytes, prog.instrCount() * 4);
    // Instructions within a block are consecutive.
    EXPECT_EQ(cl.instrAddr(0, 0, 1), cl.instrAddr(0, 0, 0) + 4);
    // Procedures in id order by default: proc 1 follows proc 0.
    EXPECT_EQ(cl.blockAddr[1][0],
              cl.blockAddr[0][0] + prog.proc(0).instrCount() * 4);
}

TEST(CodeLayout, HonorsExplicitOrder)
{
    Program prog = makeThreeProcs();
    const CodeLayout cl = layoutProgram(prog, {2, 0, 1});
    EXPECT_EQ(cl.blockAddr[2][0], 0u);
    EXPECT_LT(cl.blockAddr[0][0], cl.blockAddr[1][0]);
    EXPECT_EQ(cl.totalBytes, prog.instrCount() * 4);
}

TEST(CodeLayout, AppendsUnlistedProcs)
{
    Program prog = makeThreeProcs();
    const CodeLayout cl = layoutProgram(prog, {1});
    EXPECT_EQ(cl.blockAddr[1][0], 0u);
    // 0 and 2 follow in id order.
    EXPECT_LT(cl.blockAddr[0][0], cl.blockAddr[2][0]);
}

TEST(CodeLayout, HotFirstPacksSuperblocks)
{
    Program prog = makeThreeProcs();
    auto &p0 = prog.proc(0);
    // Fake superblock metadata: block 0 is the entry, mark a later
    // block hot.
    IrBuilder b(prog);
    b.setProc(0);
    const auto cold = b.newBlock();
    b.setBlock(cold);
    b.ret(b.ldi(0));
    const auto hot = b.newBlock();
    b.setBlock(hot);
    b.ret(b.ldi(1));
    p0.syncSideTables();
    p0.superblocks[hot].isSuperblock = true;

    const CodeLayout cl =
        layoutProgram(prog, {}, BlockOrder::HotFirst);
    EXPECT_EQ(cl.blockAddr[0][0], 0u);              // entry leads
    EXPECT_LT(cl.blockAddr[0][hot], cl.blockAddr[0][cold]);
    EXPECT_EQ(cl.totalBytes, prog.instrCount() * 4);
}

TEST(PettisHansen, HotPairPlacedAdjacent)
{
    Program prog = makeThreeProcs();
    analysis::CallGraph cg(prog);
    cg.addWeight(2, 1, 1000); // main-b hot
    cg.addWeight(2, 0, 10);
    cg.addWeight(1, 0, 5);

    const auto order = pettisHansenOrder(cg);
    ASSERT_EQ(order.size(), 3u);
    // main (2) and b (1) must be adjacent.
    size_t pos2 = 0, pos1 = 0;
    for (size_t i = 0; i < order.size(); ++i) {
        if (order[i] == 2)
            pos2 = i;
        if (order[i] == 1)
            pos1 = i;
    }
    EXPECT_EQ(std::max(pos1, pos2) - std::min(pos1, pos2), 1u);
}

TEST(PettisHansen, DeterministicOnTies)
{
    Program prog = makeThreeProcs();
    analysis::CallGraph cg(prog);
    cg.addWeight(2, 1, 10);
    cg.addWeight(2, 0, 10);
    const auto o1 = pettisHansenOrder(cg);
    const auto o2 = pettisHansenOrder(cg);
    EXPECT_EQ(o1, o2);
}

TEST(PettisHansen, ZeroWeightsKeepIdOrder)
{
    Program prog = makeThreeProcs();
    analysis::CallGraph cg(prog);
    const auto order = pettisHansenOrder(cg);
    EXPECT_EQ(order, (std::vector<ir::ProcId>{0, 1, 2}));
}

} // namespace
} // namespace pathsched::layout
