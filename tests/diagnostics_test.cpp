/**
 * @file
 * Death tests for the library's failure modes: out-of-range memory,
 * runaway programs, and verifier panics.  These pin down the
 * fatal/panic contract (fatal = user error, exit(1); panic = internal
 * bug, abort) the support library documents.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "support/logging.hpp"

namespace pathsched {
namespace {

using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::RegId;

TEST(Diagnostics, LoadOutOfRangeIsFatal)
{
    Program prog;
    prog.memWords = 4;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(0);
    const RegId v = b.ld(base, 100); // out of range
    b.ret(v);
    interp::Interpreter interp(prog);
    EXPECT_EXIT(interp.run({}), ::testing::ExitedWithCode(1),
                "invalid address");
}

TEST(Diagnostics, StoreToNegativeAddressIsFatal)
{
    Program prog;
    prog.memWords = 4;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(-10);
    b.st(base, 0, base);
    b.ret(ir::kNoReg);
    interp::Interpreter interp(prog);
    EXPECT_EXIT(interp.run({}), ::testing::ExitedWithCode(1),
                "invalid address");
}

TEST(Diagnostics, RunawayLoopHitsStepCeiling)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const auto loop = b.newBlock();
    b.jmp(loop);
    b.setBlock(loop);
    b.jmp(loop); // spins forever

    interp::InterpOptions opts;
    opts.maxSteps = 1000;
    interp::Interpreter interp(prog, opts);
    // The ceiling is a typed, recoverable stop (not a fatal exit): the
    // caller classifies it, e.g. runPipeline turns a training-run limit
    // into ErrorKind::StepLimit.
    const interp::RunResult res = interp.run({});
    EXPECT_TRUE(res.stepLimit);
    EXPECT_EQ(res.dynInstrs, 1000u);
}

TEST(Diagnostics, VerifyOrDiePanicsOnBrokenProgram)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    b.ret(ir::kNoReg);
    prog.proc(0).blocks[0].instrs[0].src1 = 999; // bad register
    EXPECT_DEATH(ir::verifyOrDie(prog, ir::VerifyMode::Strict),
                 "verification failed");
}

TEST(Diagnostics, FindProcPanicsOnUnknownName)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    b.ret(ir::kNoReg);
    EXPECT_DEATH((void)prog.findProc("nope"), "no procedure");
}

TEST(Diagnostics, SpeculativeLoadNeverFaults)
{
    // The dual of LoadOutOfRangeIsFatal: the non-excepting form of
    // the same access must succeed and produce 0 (§3.2's suppressed
    // trap).
    Program prog;
    prog.memWords = 4;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const RegId base = b.ldi(0);
    const RegId v = b.ldSpec(base, 100);
    b.ret(v);
    interp::Interpreter interp(prog);
    EXPECT_EQ(interp.run({}).returnValue, 0);
}

} // namespace
} // namespace pathsched
