/**
 * @file
 * End-to-end smoke tests: every micro workload through every config.
 */

#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace pathsched {
namespace {

using pipeline::PipelineOptions;
using pipeline::runPipeline;
using pipeline::SchedConfig;

TEST(Smoke, AltAllConfigs)
{
    const workloads::Workload w = workloads::makeAlt();
    PipelineOptions opts;
    for (SchedConfig config :
         {SchedConfig::BB, SchedConfig::M4, SchedConfig::M16,
          SchedConfig::P4, SchedConfig::P4e}) {
        const auto res = runPipeline(w.program, w.train, w.test, config,
                                     opts);
        EXPECT_TRUE(res.outputMatches) << res.name;
        EXPECT_GT(res.test.cycles, 0u) << res.name;
    }
}

TEST(Smoke, PathBeatsEdgeOnAlt)
{
    const workloads::Workload w = workloads::makeAlt();
    PipelineOptions opts;
    const auto m4 = runPipeline(w.program, w.train, w.test,
                                SchedConfig::M4, opts);
    const auto p4 = runPipeline(w.program, w.train, w.test,
                                SchedConfig::P4, opts);
    EXPECT_LT(p4.test.cycles, m4.test.cycles);
}

TEST(Smoke, WcRunsAndCounts)
{
    const workloads::Workload w = workloads::makeWc();
    PipelineOptions opts;
    const auto bb = runPipeline(w.program, w.train, w.test,
                                SchedConfig::BB, opts);
    ASSERT_EQ(bb.test.output.size(), 3u);
    EXPECT_GT(bb.test.output[0], 0); // lines
    EXPECT_GT(bb.test.output[1], 0); // words
    EXPECT_EQ(bb.test.output[2], 80000); // chars
}

} // namespace
} // namespace pathsched
