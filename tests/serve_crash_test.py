#!/usr/bin/env python3
"""Crash-recovery integration test for pathsched_serve (docs/serving.md).

Drives the real daemon over a unix socket with the real replay client
and asserts the headline durability contract end to end:

  1. an uninterrupted run (stream N deltas, SIGTERM) produces a status
     document with an aggregate hash and a schedule hash;
  2. the same stream with a SIGKILL dropped into the middle — after
     some deltas are acked, before the rest — followed by a restart
     and the remainder of the stream, recovers to the *bit-identical*
     aggregate hash and schedule hash.  Nothing acked is lost, nothing
     is double-counted (the post-crash resend of an already-admitted
     seq must come back as a duplicate, visible in the client stats);
  3. recovery is visible: the restarted server reports replayed WAL
     records in its status document.

Usage: serve_crash_test.py <pathsched_serve> <pathsched_cli>
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time

SERVE = sys.argv[1]
CLI = sys.argv[2]

failures = []


def check(cond, what):
    tag = "ok" if cond else "FAIL"
    print(f"  [{tag}] {what}")
    if not cond:
        failures.append(what)


def make_corpus(tmp, n):
    """n identical v2 path-profile dumps; distinct seqs deduplicate."""
    corpus = os.path.join(tmp, "deltas")
    os.makedirs(corpus)
    first = os.path.join(corpus, "d0.txt")
    r = subprocess.run(
        [CLI, "--workload", "wc", "--config", "P4",
         "--dump-paths", first, "--profile-version", "2"],
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
    check(r.returncode == 0, f"profile dump exit 0 (got {r.returncode})")
    for i in range(1, n):
        shutil.copy(first, os.path.join(corpus, f"d{i}.txt"))
    return corpus


def start_server(tmp, tag, state):
    sock = os.path.join(tmp, f"{tag}.sock")
    log = open(os.path.join(tmp, f"{tag}.log"), "w")
    # A huge epoch keeps the run deterministic: no timer ticks race
    # the deltas, so both runs perform the identical op sequence.
    proc = subprocess.Popen(
        [SERVE, "--listen", f"unix:{sock}", "--state", state,
         "--workload", "wc", "--config", "P4",
         "--epoch-ms", "3600000", "--snapshot-every", "2"],
        stdout=log, stderr=subprocess.STDOUT)
    deadline = time.time() + 30
    while time.time() < deadline and not os.path.exists(sock):
        if proc.poll() is not None:
            check(False, f"{tag}: server died at startup "
                         f"(exit {proc.returncode})")
            return proc, sock
        time.sleep(0.01)
    check(os.path.exists(sock), f"{tag}: server is listening")
    return proc, sock


def replay(sock, corpus, files, seq_base, client="crash-test"):
    """Replay a subset of the corpus; returns CompletedProcess."""
    sub = tempfile.mkdtemp(dir=os.path.dirname(corpus))
    for f in files:
        shutil.copy(os.path.join(corpus, f), sub)
    return subprocess.run(
        [SERVE, "--replay", sub, "--connect", f"unix:{sock}",
         "--client", client, "--seq-base", str(seq_base)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


def stop_and_read_status(proc, state, tag):
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        check(False, f"{tag}: server did not stop on SIGTERM")
        return {}
    check(proc.returncode == 0,
          f"{tag}: graceful exit 0 (got {proc.returncode})")
    status_file = os.path.join(state, "status.json")
    check(os.path.exists(status_file), f"{tag}: status.json written")
    with open(status_file) as f:
        return json.load(f)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        corpus = make_corpus(tmp, 4)
        all_files = sorted(os.listdir(corpus))

        # --- Uninterrupted control run. ---
        print("control: stream 4 deltas uninterrupted")
        state_a = os.path.join(tmp, "state-a")
        proc, sock = start_server(tmp, "control", state_a)
        r = replay(sock, corpus, all_files, seq_base=1)
        check(r.returncode == 0,
              f"control replay exit 0 (got {r.returncode}): {r.stdout}")
        control = stop_and_read_status(proc, state_a, "control")
        check(control.get("deltasAccepted") == 4,
              f"control accepted 4 deltas "
              f"(got {control.get('deltasAccepted')})")
        check(control.get("scheduleHash", "0" * 16) != "0" * 16,
              "control produced a schedule")

        # --- Crash run: 2 deltas, SIGKILL, restart, remainder. ---
        print("crash: 2 deltas, kill -9, restart, 2 more deltas")
        state_b = os.path.join(tmp, "state-b")
        proc, sock = start_server(tmp, "crash1", state_b)
        r = replay(sock, corpus, all_files[:2], seq_base=1)
        check(r.returncode == 0,
              f"pre-crash replay exit 0 (got {r.returncode})")
        proc.kill()  # SIGKILL: no flush, no snapshot, no goodbye
        proc.wait()
        check(proc.returncode == -signal.SIGKILL,
              "server killed with SIGKILL")

        proc, sock = start_server(tmp, "crash2", state_b)
        # The client resends its last unacked window after a crash;
        # seq 2 was already admitted, so it must dedup, then 3 and 4
        # are fresh.
        r = replay(sock, corpus, all_files[1:], seq_base=2)
        check(r.returncode == 0,
              f"post-crash replay exit 0 (got {r.returncode})")
        recovered = stop_and_read_status(proc, state_b, "crash")

        rec = recovered.get("recovery", {})
        check(rec.get("recordsReplayed", 0) + rec.get("snapshotGen", 0)
              > 0, f"restart recovered WAL state ({rec})")
        check(recovered.get("deltasAccepted") == 2,
              f"restarted server admitted exactly the 2 fresh deltas "
              f"(got {recovered.get('deltasAccepted')})")
        dup = (recovered.get("stats", {}).get("serve", {})
               .get("client", {}).get("crash-test", {})
               .get("duplicates", 0))
        check(dup == 1, f"the resent pre-crash seq deduplicated "
                        f"(got {dup})")

        # --- The bit-identity contract. ---
        check(recovered.get("aggregateHash")
              == control.get("aggregateHash"),
              f"aggregate hash bit-identical after kill -9 + recovery "
              f"({recovered.get('aggregateHash')} vs "
              f"{control.get('aggregateHash')})")
        check(recovered.get("scheduleHash")
              == control.get("scheduleHash"),
              f"schedule hash bit-identical after kill -9 + recovery "
              f"({recovered.get('scheduleHash')} vs "
              f"{control.get('scheduleHash')})")

    if failures:
        print(f"\n{len(failures)} check(s) FAILED")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
