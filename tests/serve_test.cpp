/**
 * @file
 * Aggregation-server tests: wire framing, the admitted-delta algebra,
 * WAL torn-tail recovery, the admission ladder, fingerprint-gated
 * rescheduling, and the headline crash contract — destroying a
 * ServeCore without shutdown (kill -9 semantics) and recovering a
 * fresh one must yield a bit-identical aggregate and a bit-identical
 * schedule versus an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "interp/interpreter.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "profile/serialize.hpp"
#include "serve/admission.hpp"
#include "serve/aggregate.hpp"
#include "serve/server.hpp"
#include "serve/wal.hpp"
#include "serve/wire.hpp"
#include "support/rng.hpp"
#include "workloads/workloads.hpp"

namespace pathsched::serve {
namespace {

// ---------------------------------------------------------------------
// Wire format.

TEST(WireTest, MessageRoundTrips)
{
    Message m;
    ASSERT_TRUE(decodeMessage(encodeHello("client-7"), m).ok());
    EXPECT_EQ(m.type, MsgType::Hello);
    EXPECT_EQ(m.version, kWireVersion);
    EXPECT_EQ(m.clientId, "client-7");

    ASSERT_TRUE(decodeMessage(encodeDelta(42, 1, "payload text"), m).ok());
    EXPECT_EQ(m.type, MsgType::Delta);
    EXPECT_EQ(m.seq, 42u);
    EXPECT_EQ(m.profileKind, 1);
    EXPECT_EQ(m.text, "payload text");

    ASSERT_TRUE(
        decodeMessage(encodeAck(9, AckCode::Throttled, "slow down"), m)
            .ok());
    EXPECT_EQ(m.type, MsgType::Ack);
    EXPECT_EQ(m.seq, 9u);
    EXPECT_EQ(m.ack, AckCode::Throttled);
    EXPECT_EQ(m.text, "slow down");

    ASSERT_TRUE(decodeMessage(encodeStatsRep("{}"), m).ok());
    EXPECT_EQ(m.type, MsgType::StatsRep);
    EXPECT_EQ(m.text, "{}");
}

TEST(WireTest, DecoderReassemblesFragmentedStream)
{
    std::string stream;
    appendFrame(stream, encodeTick());
    appendFrame(stream, encodeDelta(1, 0, "abc"));

    FrameDecoder dec;
    std::string payload;
    // Feed one byte at a time: every prefix is just "NeedMore".
    for (size_t i = 0; i < stream.size(); ++i) {
        dec.feed(stream.data() + i, 1);
        if (i + 1 < stream.size()) {
            EXPECT_FALSE(dec.corrupt());
        }
    }
    ASSERT_EQ(dec.next(payload), FrameDecoder::Result::Frame);
    Message m;
    ASSERT_TRUE(decodeMessage(payload, m).ok());
    EXPECT_EQ(m.type, MsgType::Tick);
    ASSERT_EQ(dec.next(payload), FrameDecoder::Result::Frame);
    ASSERT_TRUE(decodeMessage(payload, m).ok());
    EXPECT_EQ(m.seq, 1u);
    EXPECT_EQ(dec.next(payload), FrameDecoder::Result::NeedMore);
    EXPECT_EQ(dec.pendingBytes(), 0u);
}

TEST(WireTest, CorruptCrcPoisonsTheDecoder)
{
    std::string stream;
    appendFrame(stream, encodeTick());
    stream[stream.size() - 1] ^= 0x40; // flip a payload bit

    FrameDecoder dec;
    dec.feed(stream.data(), stream.size());
    std::string payload;
    EXPECT_EQ(dec.next(payload), FrameDecoder::Result::Corrupt);
    EXPECT_TRUE(dec.corrupt());
    // Poisoned for good: later valid bytes must not resurrect it.
    std::string more;
    appendFrame(more, encodeTick());
    dec.feed(more.data(), more.size());
    EXPECT_EQ(dec.next(payload), FrameDecoder::Result::Corrupt);
}

TEST(WireTest, OversizeDeclaredLengthIsRejectedBeforeAllocation)
{
    FrameDecoder dec(1024);
    std::string evil;
    putU32(evil, 0x7fffffffu); // 2 GiB declared payload
    putU32(evil, 0);
    dec.feed(evil.data(), evil.size());
    std::string payload;
    EXPECT_EQ(dec.next(payload), FrameDecoder::Result::Corrupt);
}

TEST(WireTest, TruncatedMessageBodyIsATypedError)
{
    const std::string good = encodeDelta(7, 0, "text");
    for (size_t cut = 1; cut < good.size(); ++cut) {
        Message m;
        const Status st = decodeMessage(good.substr(0, cut), m);
        // Every strict prefix must fail loudly, never crash.
        EXPECT_FALSE(st.ok()) << "prefix length " << cut;
    }
}

// ---------------------------------------------------------------------
// AdmittedDelta algebra.

TEST(AdmittedDeltaTest, NormalizeSortsAndFoldsDuplicates)
{
    AdmittedDelta d;
    d.edges.push_back({2, 0, 1, 5});
    d.edges.push_back({1, 3, 4, 7});
    d.edges.push_back({2, 0, 1, 5}); // duplicate key
    d.blocks.push_back({1, 9, 2});
    d.blocks.push_back({1, 9, 3});
    d.paths.push_back({1, {0, 1, 2}, 4});
    d.paths.push_back({1, {0, 1, 2}, 6});
    d.normalize();

    ASSERT_EQ(d.edges.size(), 2u);
    EXPECT_EQ(d.edges[0].proc, 1u);
    EXPECT_EQ(d.edges[1].count, 10u);
    ASSERT_EQ(d.blocks.size(), 1u);
    EXPECT_EQ(d.blocks[0].count, 5u);
    ASSERT_EQ(d.paths.size(), 1u);
    EXPECT_EQ(d.paths[0].count, 10u);
}

TEST(AdmittedDeltaTest, EncodeDecodeRoundTrips)
{
    AdmittedDelta d;
    d.clientId = "shard-3";
    d.seq = 99;
    d.blocks.push_back({0, 1, 100});
    d.edges.push_back({0, 1, 2, 50});
    d.paths.push_back({0, {1, 2, 3}, 25});
    d.normalize();

    std::string blob;
    d.encode(blob);
    AdmittedDelta back;
    size_t pos = 0;
    ASSERT_TRUE(AdmittedDelta::decode(blob, pos, back).ok());
    EXPECT_EQ(pos, blob.size());
    EXPECT_EQ(back.clientId, "shard-3");
    EXPECT_EQ(back.seq, 99u);
    ASSERT_EQ(back.paths.size(), 1u);
    EXPECT_EQ(back.paths[0].blocks, (std::vector<uint32_t>{1, 2, 3}));

    // Every strict prefix is a typed error, not a crash or a hang.
    for (size_t cut = 0; cut < blob.size(); ++cut) {
        AdmittedDelta t;
        size_t p = 0;
        EXPECT_FALSE(
            AdmittedDelta::decode(blob.substr(0, cut), p, t).ok())
            << "prefix length " << cut;
    }
}

// ---------------------------------------------------------------------
// Aggregate: windowing, bounded memory, merge algebra, fingerprints.

AdmittedDelta
randomDelta(Rng &rng, const std::string &client, uint64_t seq)
{
    AdmittedDelta d;
    d.clientId = client;
    d.seq = seq;
    const uint32_t nEdges = uint32_t(rng.below(6));
    for (uint32_t i = 0; i < nEdges; ++i)
        d.edges.push_back({uint32_t(rng.below(3)), uint32_t(rng.below(8)),
                           uint32_t(rng.below(8)),
                           1 + rng.below(1000)});
    const uint32_t nBlocks = uint32_t(rng.below(4));
    for (uint32_t i = 0; i < nBlocks; ++i)
        d.blocks.push_back({uint32_t(rng.below(3)),
                            uint32_t(rng.below(8)), 1 + rng.below(1000)});
    if (rng.chance(0.5)) {
        std::vector<uint32_t> window;
        const uint32_t len = 1 + uint32_t(rng.below(4));
        for (uint32_t i = 0; i < len; ++i)
            window.push_back(uint32_t(rng.below(8)));
        d.paths.push_back(
            {uint32_t(rng.below(3)), window, 1 + rng.below(1000)});
    }
    d.normalize();
    return d;
}

TEST(AggregateTest, WindowRotationDiscardsOldBuckets)
{
    AggregateOptions opts;
    opts.windows = 2;
    Aggregate agg(opts);

    AdmittedDelta d;
    d.clientId = "c";
    d.seq = 1;
    d.edges.push_back({0, 0, 1, 10});
    d.normalize();
    agg.apply(d);
    EXPECT_EQ(agg.liveKeys(), 1u);

    agg.advanceEpoch(1); // still inside the 2-epoch window
    EXPECT_EQ(agg.liveKeys(), 1u);
    agg.advanceEpoch(2); // epoch-0 bucket falls out
    EXPECT_EQ(agg.liveKeys(), 0u);
    EXPECT_TRUE(agg.liveProcs().empty());
    // The seq cursor survives decay: re-sending seq 1 is a duplicate.
    EXPECT_EQ(agg.lastSeq("c"), 1u);
}

TEST(AggregateTest, KeyCapDropsNewKeysButKeepsCounting)
{
    AggregateOptions opts;
    opts.maxKeysPerBucket = 2;
    Aggregate agg(opts);

    AdmittedDelta d;
    d.clientId = "c";
    d.seq = 1;
    d.edges.push_back({0, 0, 1, 5});
    d.edges.push_back({0, 1, 2, 5});
    d.edges.push_back({0, 2, 3, 5}); // third key: over the cap
    d.normalize();
    agg.apply(d);
    EXPECT_EQ(agg.liveKeys(), 2u);
    EXPECT_EQ(agg.droppedKeys(), 1u);

    // Existing keys still accumulate at the cap.
    AdmittedDelta d2;
    d2.clientId = "c";
    d2.seq = 2;
    d2.edges.push_back({0, 0, 1, 7});
    d2.normalize();
    agg.apply(d2);
    EXPECT_EQ(agg.liveKeys(), 2u);
    EXPECT_EQ(agg.droppedKeys(), 1u);
}

/**
 * The merge algebra property: any sharding of a delta stream across
 * any number of aggregates, merged in any grouping and order, must
 * produce a byte-identical canonical serialization.  This is the
 * property that makes sharded ingestion and crash replay equivalent.
 */
TEST(AggregateTest, MergeIsAssociativeAndCommutativeBitExactly)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(seed * 0x2545F4914F6CDD1DULL);
        std::vector<AdmittedDelta> stream;
        for (uint64_t i = 0; i < 40; ++i)
            stream.push_back(randomDelta(
                rng, "client-" + std::to_string(rng.below(4)), i + 1));

        // Baseline: one aggregate consumes the whole stream in order.
        Aggregate base;
        for (const auto &d : stream)
            base.apply(d);
        const std::string want = base.serialize();

        // Shard randomly, then merge the shards in a random order.
        const uint32_t nShards = 2 + uint32_t(rng.below(4));
        std::vector<std::unique_ptr<Aggregate>> shards;
        for (uint32_t s = 0; s < nShards; ++s)
            shards.push_back(std::make_unique<Aggregate>());
        for (const auto &d : stream)
            shards[rng.below(nShards)]->apply(d);

        while (shards.size() > 1) {
            const size_t a = rng.below(shards.size());
            size_t b = rng.below(shards.size() - 1);
            if (b >= a)
                ++b;
            shards[a]->merge(*shards[b]);
            shards.erase(shards.begin() + ptrdiff_t(b));
        }
        EXPECT_EQ(shards[0]->serialize(), want) << "seed " << seed;
        EXPECT_EQ(shards[0]->contentHash(), base.contentHash());
    }
}

TEST(AggregateTest, MergeWithEmptyIsIdentity)
{
    Rng rng(7);
    Aggregate a;
    for (uint64_t i = 0; i < 10; ++i)
        a.apply(randomDelta(rng, "c", i + 1));
    const std::string before = a.serialize();

    Aggregate empty;
    a.merge(empty);
    EXPECT_EQ(a.serialize(), before);

    Aggregate empty2;
    empty2.merge(a);
    EXPECT_EQ(empty2.serialize(), before);
}

TEST(AggregateTest, SerializeDeserializeRoundTripsAndRejectsBitRot)
{
    Rng rng(11);
    Aggregate a;
    for (uint64_t i = 0; i < 20; ++i)
        a.apply(randomDelta(rng, "c" + std::to_string(i % 3), i + 1));
    a.advanceEpoch(2);

    const std::string blob = a.serialize();
    Aggregate back;
    ASSERT_TRUE(Aggregate::deserialize(blob, AggregateOptions(), back).ok());
    EXPECT_EQ(back.serialize(), blob);
    EXPECT_EQ(back.epoch(), a.epoch());
    EXPECT_EQ(back.lastSeq("c0"), a.lastSeq("c0"));

    std::string bad = blob;
    bad[bad.size() / 2] ^= 1;
    Aggregate junk;
    EXPECT_FALSE(
        Aggregate::deserialize(bad, AggregateOptions(), junk).ok());
}

TEST(AggregateTest, FingerprintIgnoresUniformScalingButSeesRankMoves)
{
    auto feed = [](Aggregate &agg, uint64_t hotCount, uint64_t coldCount,
                   uint64_t seq) {
        AdmittedDelta d;
        d.clientId = "c";
        d.seq = seq;
        d.edges.push_back({0, 0, 1, hotCount});
        d.edges.push_back({0, 1, 2, coldCount});
        d.normalize();
        agg.apply(d);
    };

    Aggregate a, b, c;
    feed(a, 100, 10, 1);
    feed(b, 1000, 100, 1); // 10x uniform growth: same hot set, same order
    feed(c, 10, 100, 1);   // rank flip: the hot edge changed
    const uint64_t fa = a.hotFingerprint(0);
    const uint64_t fb = b.hotFingerprint(0);
    const uint64_t fc = c.hotFingerprint(0);
    EXPECT_NE(fa, 0u);
    EXPECT_EQ(fa, fb);
    EXPECT_NE(fa, fc);
    // No live data -> fingerprint 0 (reserved).
    EXPECT_EQ(a.hotFingerprint(77), 0u);
}

// ---------------------------------------------------------------------
// WAL: durability, torn tails, snapshots.

class WalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "pathsched_wal_" +
               std::to_string(::getpid()) + "_" +
               ::testing::UnitTest::GetInstance()
                   ->current_test_info()
                   ->name();
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string dir_;
};

TEST_F(WalTest, RecoversAppendedRecordsAfterAbruptClose)
{
    Rng rng(3);
    Aggregate live;
    {
        Wal wal(dir_);
        Aggregate scratch;
        RecoveryInfo info;
        ASSERT_TRUE(wal.open(scratch, info).ok());
        for (uint64_t i = 0; i < 12; ++i) {
            const AdmittedDelta d = randomDelta(rng, "c", i + 1);
            ASSERT_TRUE(wal.appendAdmitted(d).ok());
            live.apply(d);
        }
        ASSERT_TRUE(wal.appendEpoch(1).ok());
        live.advanceEpoch(1);
        // Wal destructor closes the fd without any flush — the
        // in-memory aggregate is "lost" as in a crash.
    }
    Wal wal2(dir_);
    Aggregate recovered;
    RecoveryInfo info;
    ASSERT_TRUE(wal2.open(recovered, info).ok());
    EXPECT_EQ(info.recordsReplayed, 12u);
    EXPECT_EQ(info.epochRecords, 1u);
    EXPECT_EQ(info.tornSegments, 0u);
    EXPECT_EQ(recovered.serialize(), live.serialize());
}

TEST_F(WalTest, TornTailIsTruncatedNotTrusted)
{
    Rng rng(5);
    Aggregate upToTear;
    std::string walFile;
    {
        Wal wal(dir_);
        Aggregate scratch;
        RecoveryInfo info;
        ASSERT_TRUE(wal.open(scratch, info).ok());
        for (uint64_t i = 0; i < 6; ++i) {
            const AdmittedDelta d = randomDelta(rng, "c", i + 1);
            ASSERT_TRUE(wal.appendAdmitted(d).ok());
            upToTear.apply(d);
        }
        walFile = dir_ + "/wal." + std::to_string(wal.liveGen()) + ".bin";
    }
    // Simulate a torn write: append half a frame of garbage.
    {
        std::ofstream out(walFile, std::ios::app | std::ios::binary);
        const char torn[] = {0x20, 0x00, 0x00, 0x00, 0x11};
        out.write(torn, sizeof torn);
    }
    Wal wal2(dir_);
    Aggregate recovered;
    RecoveryInfo info;
    ASSERT_TRUE(wal2.open(recovered, info).ok());
    EXPECT_EQ(info.recordsReplayed, 6u);
    EXPECT_EQ(info.tornSegments, 1u);
    EXPECT_GT(info.tornBytes, 0u);
    EXPECT_EQ(recovered.serialize(), upToTear.serialize());

    // The torn bytes were truncated away: a third recovery is clean.
    Wal wal3(dir_);
    Aggregate again;
    RecoveryInfo info3;
    ASSERT_TRUE(wal3.open(again, info3).ok());
    EXPECT_EQ(info3.tornSegments, 0u);
    EXPECT_EQ(again.serialize(), upToTear.serialize());
}

TEST_F(WalTest, SnapshotRotatesAndCorruptSnapshotFallsBack)
{
    Rng rng(9);
    Aggregate live;
    uint64_t snapGen = 0;
    {
        Wal wal(dir_);
        Aggregate scratch;
        RecoveryInfo info;
        ASSERT_TRUE(wal.open(scratch, info).ok());
        for (uint64_t i = 0; i < 4; ++i) {
            const AdmittedDelta d = randomDelta(rng, "c", i + 1);
            ASSERT_TRUE(wal.appendAdmitted(d).ok());
            live.apply(d);
        }
        ASSERT_TRUE(wal.snapshot(live).ok());
        snapGen = wal.liveGen() - 1;
        // Two more records in the post-snapshot segment.
        for (uint64_t i = 4; i < 6; ++i) {
            const AdmittedDelta d = randomDelta(rng, "c", i + 1);
            ASSERT_TRUE(wal.appendAdmitted(d).ok());
            live.apply(d);
        }
    }
    {
        Wal wal2(dir_);
        Aggregate recovered;
        RecoveryInfo info;
        ASSERT_TRUE(wal2.open(recovered, info).ok());
        EXPECT_EQ(info.snapshotGen, snapGen);
        EXPECT_EQ(info.recordsReplayed, 2u); // only the new segment
        EXPECT_EQ(recovered.serialize(), live.serialize());
    }
    // Corrupt the snapshot: recovery must fall back to full replay of
    // whatever segments remain rather than trusting a bad blob.
    {
        std::fstream f(dir_ + "/snap." + std::to_string(snapGen) + ".bin",
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(16);
        f.put('\x5a');
    }
    Wal wal3(dir_);
    Aggregate recovered3;
    RecoveryInfo info3;
    ASSERT_TRUE(wal3.open(recovered3, info3).ok());
    EXPECT_GE(info3.snapshotsSkipped, 1u);
}

TEST_F(WalTest, SnapshotLargerThanOneFrameRoundTrips)
{
    // An aggregate whose canonical blob exceeds kMaxFramePayload must
    // still snapshot and recover bit-identically: the writer chunks
    // the blob across frames, recovery reassembles them.  (Before
    // chunking, recovery's single-frame read classified such a
    // snapshot as corrupt — after snapshot() had already deleted the
    // WAL segments covering it, losing acked state.)
    Aggregate live;
    {
        AdmittedDelta d;
        d.clientId = "c";
        d.seq = 1;
        d.edges.reserve(220000);
        for (uint32_t i = 0; i < 220000; ++i)
            d.edges.push_back({i >> 12, i, i + 1, 7});
        d.normalize();
        live.apply(d);
    }
    const std::string blob = live.serialize();
    ASSERT_GT(blob.size(), size_t(kMaxFramePayload));

    uint64_t snapGen = 0;
    {
        Wal wal(dir_);
        Aggregate scratch;
        RecoveryInfo info;
        ASSERT_TRUE(wal.open(scratch, info).ok());
        ASSERT_TRUE(wal.snapshot(live).ok());
        snapGen = wal.liveGen() - 1;
    }
    Wal wal2(dir_);
    Aggregate recovered;
    RecoveryInfo info;
    ASSERT_TRUE(wal2.open(recovered, info).ok());
    EXPECT_EQ(info.snapshotGen, snapGen);
    EXPECT_EQ(info.snapshotsSkipped, 0u);
    EXPECT_EQ(recovered.serialize(), blob);
}

TEST_F(WalTest, OversizedRecordIsRefusedNotWrittenUnreplayably)
{
    // A record beyond kMaxWalPayload must fail the append with a typed
    // error — writing it would make the segment unreplayable (recovery
    // would classify it as corrupt and truncate the tail).
    AdmittedDelta huge;
    huge.clientId = "c";
    huge.seq = 1;
    huge.paths.push_back(
        {0, std::vector<uint32_t>(kMaxWalPayload / 4 + 64, 3), 1});

    Aggregate survivor;
    {
        Wal wal(dir_);
        Aggregate scratch;
        RecoveryInfo info;
        ASSERT_TRUE(wal.open(scratch, info).ok());
        const Status st = wal.appendAdmitted(huge);
        ASSERT_FALSE(st.ok());
        EXPECT_EQ(st.kind(), ErrorKind::BudgetExceeded);
        EXPECT_EQ(wal.liveRecords(), 0u);
        // The log stays healthy: later records append and replay.
        AdmittedDelta small;
        small.clientId = "c";
        small.seq = 2;
        small.edges.push_back({0, 0, 1, 5});
        small.normalize();
        ASSERT_TRUE(wal.appendAdmitted(small).ok());
        survivor.apply(small);
    }
    Wal wal2(dir_);
    Aggregate recovered;
    RecoveryInfo info;
    ASSERT_TRUE(wal2.open(recovered, info).ok());
    EXPECT_EQ(info.recordsReplayed, 1u);
    EXPECT_EQ(info.tornSegments, 0u);
    EXPECT_EQ(recovered.serialize(), survivor.serialize());
}

// ---------------------------------------------------------------------
// Serving helpers: a real workload profile as the delta payload.

profile::PathProfileParams
defaultPathParams()
{
    return profile::PathProfileParams{};
}

std::string
pathProfileText(const workloads::Workload &w)
{
    profile::PathProfiler pp(w.program, defaultPathParams());
    interp::Interpreter interp(w.program);
    interp.addListener(&pp);
    interp.run(w.train);
    return profile::toTextV2(pp, w.program);
}

std::string
edgeProfileText(const workloads::Workload &w)
{
    profile::EdgeProfiler ep(w.program);
    interp::Interpreter interp(w.program);
    interp.addListener(&ep);
    interp.run(w.train);
    return profile::toTextV2(ep, w.program);
}

// ---------------------------------------------------------------------
// Admission ladder.

class AdmissionTest : public ::testing::Test
{
  protected:
    AdmissionTest()
        : w_(workloads::makeByName("wc")),
          text_(pathProfileText(w_))
    {}

    Admission
    make(AdmissionOptions opts = AdmissionOptions())
    {
        return Admission(w_.program, defaultPathParams(), opts);
    }

    workloads::Workload w_;
    std::string text_;
};

TEST_F(AdmissionTest, AcceptsAWellFormedDelta)
{
    Admission adm = make();
    const AdmissionResult r = adm.evaluate("c1", 0, 1, 1, text_);
    EXPECT_EQ(r.code, AckCode::Accepted);
    EXPECT_FALSE(r.delta.empty());
    EXPECT_EQ(adm.stats("c1").admitted, 1u);
}

TEST_F(AdmissionTest, DuplicateSeqIsDeduplicated)
{
    Admission adm = make();
    EXPECT_EQ(adm.evaluate("c1", 0, 1, 1, text_).code, AckCode::Accepted);
    // Cursor says 1 was admitted; the blind resend is a duplicate.
    EXPECT_EQ(adm.evaluate("c1", 1, 1, 1, text_).code,
              AckCode::Duplicate);
    EXPECT_EQ(adm.stats("c1").duplicates, 1u);
}

TEST_F(AdmissionTest, EmptyTokenBucketThrottles)
{
    AdmissionOptions opts;
    opts.tokensPerEpoch = 2;
    opts.maxTokens = 2;
    Admission adm = make(opts);
    EXPECT_EQ(adm.evaluate("c1", 0, 1, 1, text_).code, AckCode::Accepted);
    EXPECT_EQ(adm.evaluate("c1", 1, 2, 1, text_).code, AckCode::Accepted);
    EXPECT_EQ(adm.evaluate("c1", 2, 3, 1, text_).code,
              AckCode::Throttled);
    EXPECT_EQ(adm.stats("c1").throttled, 1u);
    // Other clients have their own bucket.
    EXPECT_EQ(adm.evaluate("c2", 0, 1, 1, text_).code, AckCode::Accepted);
    // The epoch refills the offender's bucket.
    adm.onEpoch(1);
    EXPECT_EQ(adm.evaluate("c1", 2, 3, 1, text_).code, AckCode::Accepted);
}

TEST_F(AdmissionTest, RepeatedRejectsEscalateToQuarantineAndExpire)
{
    AdmissionOptions opts;
    opts.scorePerReject = 4;
    opts.quarantineThreshold = 8;
    opts.quarantineEpochs = 2;
    Admission adm = make(opts);

    EXPECT_EQ(adm.evaluate("bad", 0, 1, 1, "not a profile").code,
              AckCode::Rejected);
    EXPECT_FALSE(adm.quarantined("bad"));
    EXPECT_EQ(adm.evaluate("bad", 0, 2, 1, "still not a profile").code,
              AckCode::Rejected);
    EXPECT_TRUE(adm.quarantined("bad"));
    EXPECT_EQ(adm.stats("bad").quarantineEntries, 1u);

    // While quarantined even a valid delta is dropped unread.
    EXPECT_EQ(adm.evaluate("bad", 0, 3, 1, text_).code,
              AckCode::Quarantined);
    // A different client is unaffected.
    EXPECT_EQ(adm.evaluate("good", 0, 1, 1, text_).code,
              AckCode::Accepted);

    adm.onEpoch(1);
    adm.onEpoch(2);
    EXPECT_TRUE(adm.quarantined("bad"));
    adm.onEpoch(3);
    EXPECT_FALSE(adm.quarantined("bad"));
    EXPECT_EQ(adm.evaluate("bad", 0, 4, 1, text_).code,
              AckCode::Accepted);
}

TEST_F(AdmissionTest, StaleFingerprintRejectsAtFileGranularity)
{
    // A v2 header carries CFG fingerprints; flipping one makes the
    // whole file stale under the PR-4 staleness rules.
    std::string stale = text_;
    const size_t fp = stale.find("fingerprint");
    ASSERT_NE(fp, std::string::npos);
    const size_t digit = stale.find_first_of("0123456789abcdef", fp + 12);
    ASSERT_NE(digit, std::string::npos);
    stale[digit] = stale[digit] == '0' ? '1' : '0';

    Admission adm = make();
    const AdmissionResult r = adm.evaluate("c1", 0, 1, 1, stale);
    // The delta must not land in the aggregate as-is: either the file
    // is rejected outright or every stale proc was stripped.
    if (r.code == AckCode::Accepted)
        EXPECT_GT(adm.stats("c1").procsStale +
                      adm.stats("c1").procsQuarantined,
                  0u);
    else
        EXPECT_EQ(r.code, AckCode::Rejected);
}

// ---------------------------------------------------------------------
// ServeCore: end-to-end frames, crash bit-identity, fingerprint gate.

class ServeCoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        base_ = ::testing::TempDir() + "pathsched_serve_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name();
        std::filesystem::remove_all(base_);
        std::filesystem::create_directories(base_);
        w_ = workloads::makeByName("wc");
        pathText_ = pathProfileText(w_);
        edgeText_ = edgeProfileText(w_);
    }
    void TearDown() override { std::filesystem::remove_all(base_); }

    std::unique_ptr<ServeCore>
    makeCore(const std::string &sub, ServeOptions opts = ServeOptions())
    {
        auto core = std::make_unique<ServeCore>(w_, opts,
                                                base_ + "/" + sub);
        EXPECT_TRUE(core->init().ok());
        return core;
    }

    /** Hello + one path-profile Delta; returns the ack code. */
    AckCode
    sendDelta(ServeCore &core, const std::string &conn,
              const std::string &client, uint64_t seq,
              const std::string &text)
    {
        bool drop = false;
        auto acks =
            core.handleFrame(conn, encodeHello(client), drop);
        EXPECT_FALSE(drop);
        auto resp =
            core.handleFrame(conn, encodeDelta(seq, 1, text), drop);
        EXPECT_FALSE(drop);
        EXPECT_EQ(resp.size(), 1u);
        Message m;
        EXPECT_TRUE(decodeMessage(resp[0], m).ok());
        EXPECT_EQ(m.type, MsgType::Ack);
        return m.ack;
    }

    std::string base_;
    workloads::Workload w_;
    std::string pathText_;
    std::string edgeText_;
};

TEST_F(ServeCoreTest, HelloIsRequiredAndVersionChecked)
{
    auto core = makeCore("s");
    bool drop = false;
    // Delta before Hello: protocol misuse, connection dropped.
    auto resp = core->handleFrame("conn-a",
                                  encodeDelta(1, 1, pathText_), drop);
    EXPECT_TRUE(drop);
    ASSERT_EQ(resp.size(), 1u);
    Message m;
    ASSERT_TRUE(decodeMessage(resp[0], m).ok());
    EXPECT_EQ(m.ack, AckCode::Error);

    // Wrong wire version is refused up front.
    drop = false;
    resp = core->handleFrame("conn-b", encodeHello("c1", 999), drop);
    EXPECT_TRUE(drop);

    // Bad client id is refused at the trust boundary.
    drop = false;
    resp = core->handleFrame("conn-c", encodeHello("no spaces!"), drop);
    EXPECT_TRUE(drop);
}

TEST_F(ServeCoreTest, DeltaIsAdmittedWalLoggedAndAcked)
{
    auto core = makeCore("s");
    EXPECT_EQ(sendDelta(*core, "conn-a", "c1", 1, pathText_),
              AckCode::Accepted);
    EXPECT_EQ(core->deltasAccepted(), 1u);
    EXPECT_GT(core->aggregate().liveKeys(), 0u);
    EXPECT_EQ(core->aggregate().lastSeq("c1"), 1u);
    // Resending the same seq on a new connection is deduplicated.
    EXPECT_EQ(sendDelta(*core, "conn-b", "c1", 1, pathText_),
              AckCode::Duplicate);
}

/**
 * The headline crash contract.  Stream deltas and epoch ticks into a
 * core and destroy it without any shutdown (exactly what SIGKILL does
 * to the daemon), then recover a fresh core from the same state
 * directory: the aggregate serialization, the aggregate hash and the
 * final schedule must all be bit-identical to an uninterrupted run
 * that performed the same operations.
 */
TEST_F(ServeCoreTest, Kill9RecoveryIsBitIdentical)
{
    ServeOptions opts;
    opts.snapshotEvery = 3; // force a mid-stream snapshot + rotation
    auto drive = [&](ServeCore &core, uint64_t fromSeq, uint64_t toSeq) {
        for (uint64_t s = fromSeq; s <= toSeq; ++s) {
            EXPECT_EQ(sendDelta(core, "conn", "c1", s, pathText_),
                      AckCode::Accepted);
            if (s % 2 == 0) {
                EXPECT_TRUE(core.tick().ok());
            }
        }
    };

    // Uninterrupted control run.
    auto control = makeCore("control", opts);
    drive(*control, 1, 6);
    const RescheduleOutcome cr = control->attemptReschedule(true);
    ASSERT_TRUE(cr.status.ok());
    ASSERT_TRUE(cr.ran);
    const std::string wantAgg = control->aggregate().serialize();
    const std::string wantBlob = control->scheduleBlob();
    ASSERT_FALSE(wantBlob.empty());

    // Crash run: half the stream, then the core dies with no shutdown.
    {
        auto victim = makeCore("crash", opts);
        drive(*victim, 1, 3);
        // ~ServeCore performs no flush; the WAL fd is simply closed.
    }
    auto reborn = makeCore("crash", opts);
    EXPECT_GT(reborn->recovery().recordsReplayed +
                  (reborn->recovery().snapshotGen != 0 ? 1u : 0u),
              0u);
    // The client's blind resend of an already-admitted seq is absorbed.
    EXPECT_EQ(sendDelta(*reborn, "conn", "c1", 3, pathText_),
              AckCode::Duplicate);
    drive(*reborn, 4, 6);
    const RescheduleOutcome rr = reborn->attemptReschedule(true);
    ASSERT_TRUE(rr.status.ok());
    ASSERT_TRUE(rr.ran);

    EXPECT_EQ(reborn->aggregate().serialize(), wantAgg);
    EXPECT_EQ(reborn->aggregate().contentHash(),
              control->aggregate().contentHash());
    EXPECT_EQ(reborn->scheduleBlob(), wantBlob);
    EXPECT_EQ(reborn->scheduleHash(), control->scheduleHash());
}

TEST_F(ServeCoreTest, CrashDuringSnapshotKeepsPreviousGeneration)
{
    ServeOptions opts;
    auto core = makeCore("s", opts);
    EXPECT_EQ(sendDelta(*core, "conn", "c1", 1, pathText_),
              AckCode::Accepted);
    ASSERT_TRUE(core->flush().ok()); // snapshot gen 1
    const std::string want = core->aggregate().serialize();
    core.reset();

    // A crash mid-snapshot leaves a stray temp file; recovery must
    // ignore it and restore from the completed generation.
    {
        std::ofstream junk(base_ + "/s/snap.tmp", std::ios::binary);
        junk << "half-written snapshot";
    }
    auto reborn = makeCore("s", opts);
    EXPECT_EQ(reborn->aggregate().serialize(), want);
}

TEST_F(ServeCoreTest, RescheduleIsFingerprintGatedAndCacheServed)
{
    auto core = makeCore("s");
    EXPECT_EQ(sendDelta(*core, "conn", "c1", 1, pathText_),
              AckCode::Accepted);

    const RescheduleOutcome first = core->attemptReschedule(false);
    ASSERT_TRUE(first.status.ok());
    EXPECT_TRUE(first.ran);
    EXPECT_GT(first.procsMoved, 0u);
    EXPECT_NE(first.scheduleHash, 0u);

    // A forced re-run with the aggregate untouched is served entirely
    // from the stage cache: zero misses, identical schedule.
    const RescheduleOutcome forced = core->attemptReschedule(true);
    ASSERT_TRUE(forced.status.ok());
    EXPECT_TRUE(forced.ran);
    EXPECT_EQ(forced.cacheMisses, 0u);
    EXPECT_GT(forced.cacheHits, 0u);
    EXPECT_EQ(forced.scheduleHash, first.scheduleHash);

    // The same profile again (new seq): counts double uniformly, the
    // hot set and its order are unchanged -> the gate skips the run.
    EXPECT_EQ(sendDelta(*core, "conn", "c1", 2, pathText_),
              AckCode::Accepted);
    const RescheduleOutcome second = core->attemptReschedule(false);
    EXPECT_TRUE(second.attempted);
    EXPECT_FALSE(second.ran);
    EXPECT_TRUE(second.skippedUnmoved);
}

TEST_F(ServeCoreTest, RotatedOutProcedureCountsAsMoved)
{
    auto core = makeCore("s");
    EXPECT_EQ(sendDelta(*core, "conn", "c1", 1, pathText_),
              AckCode::Accepted);
    const RescheduleOutcome first = core->attemptReschedule(false);
    ASSERT_TRUE(first.status.ok());
    ASSERT_TRUE(first.ran);
    const uint64_t scheduledProcs = first.procsLive;
    ASSERT_GT(scheduledProcs, 0u);

    // Advance past the decay window so every bucket holding the delta
    // rotates out.
    for (uint64_t i = 0; i <= core->aggregate().options().windows; ++i)
        ASSERT_TRUE(core->tick().ok());
    ASSERT_EQ(core->aggregate().liveKeys(), 0u);

    // The scheduled procedures' hot state changed to "no data": the
    // gate must count them as moved rather than read the empty window
    // as "nothing moved" forever.  With nothing live to schedule from
    // the run itself is still skipped (last-known-good retention), but
    // the gate stays armed for when data returns.
    const RescheduleOutcome gone = core->attemptReschedule(false);
    EXPECT_EQ(gone.procsLive, 0u);
    EXPECT_EQ(gone.procsMoved, scheduledProcs);
    EXPECT_FALSE(gone.ran);
}

TEST_F(ServeCoreTest, EdgeProfileDeltasDriveBBConfigs)
{
    ServeOptions opts;
    opts.config = pipeline::SchedConfig::M4;
    auto core = makeCore("s", opts);
    bool drop = false;
    core->handleFrame("conn", encodeHello("c1"), drop);
    auto resp =
        core->handleFrame("conn", encodeDelta(1, 0, edgeText_), drop);
    ASSERT_EQ(resp.size(), 1u);
    Message m;
    ASSERT_TRUE(decodeMessage(resp[0], m).ok());
    EXPECT_EQ(m.ack, AckCode::Accepted);

    const RescheduleOutcome oc = core->attemptReschedule(true);
    ASSERT_TRUE(oc.status.ok());
    EXPECT_TRUE(oc.ran);
    EXPECT_NE(oc.scheduleHash, 0u);
}

TEST_F(ServeCoreTest, StatusAndReportDocumentsAreWellFormed)
{
    auto core = makeCore("s");
    EXPECT_EQ(sendDelta(*core, "conn", "c1", 1, pathText_),
              AckCode::Accepted);
    (void)core->attemptReschedule(true);

    const std::string status = core->statusJson();
    EXPECT_NE(status.find("\"pathsched-serve-status-v1\""),
              std::string::npos);
    EXPECT_NE(status.find("\"aggregateHash\""), std::string::npos);
    EXPECT_NE(status.find("serve"), std::string::npos);

    // Satellite: per-client admission attribution in the registry.
    const auto &reg = core->stats();
    EXPECT_EQ(reg.counter("serve.client.c1.admitted"), 1u);
    EXPECT_EQ(reg.counter("serve.ingest.accepted"), 1u);

    const std::string report = core->reportJson();
    EXPECT_NE(report.find("\"runs\""), std::string::npos);
}

TEST_F(ServeCoreTest, StatsReqFlushTickAndByeOverFrames)
{
    auto core = makeCore("s");
    bool drop = false;
    core->handleFrame("conn", encodeHello("c1"), drop);
    ASSERT_FALSE(drop);

    auto resp = core->handleFrame("conn", encodeStatsReq(), drop);
    ASSERT_EQ(resp.size(), 1u);
    Message m;
    ASSERT_TRUE(decodeMessage(resp[0], m).ok());
    EXPECT_EQ(m.type, MsgType::StatsRep);
    EXPECT_FALSE(m.text.empty());

    (void)core->handleFrame("conn", encodeFlush(), drop);
    EXPECT_FALSE(drop);
    const uint64_t epochBefore = core->aggregate().epoch();
    (void)core->handleFrame("conn", encodeTick(), drop);
    EXPECT_FALSE(drop);
    EXPECT_EQ(core->aggregate().epoch(), epochBefore + 1);

    (void)core->handleFrame("conn", encodeBye(), drop);
    EXPECT_TRUE(drop);
}

TEST(ServeMiscTest, ClientIdValidation)
{
    EXPECT_TRUE(validClientId("shard-01_a"));
    EXPECT_FALSE(validClientId(""));
    EXPECT_FALSE(validClientId("has space"));
    EXPECT_FALSE(validClientId("dot.dot"));
    EXPECT_FALSE(validClientId(std::string(65, 'a')));
}

// ---------------------------------------------------------------------
// Degraded-mode health machine: injected disk faults against ServeCore.

TEST_F(ServeCoreTest, WalFaultDegradesNacksRecoversAndLosesNothing)
{
    Vio vio;
    std::string err;
    ASSERT_TRUE(
        vio.parseFaults("path=wal,op=fsync,kind=eio,count=1", err))
        << err;
    ServeOptions fopts;
    fopts.vio = &vio;
    auto faulty = makeCore("faulty", fopts);
    auto control = makeCore("control");
    ASSERT_EQ(faulty->health(), Health::Healthy);

    // The injected fsync failure turns the append into an Unavailable
    // NACK — never a silent ack of a record that may not be durable.
    EXPECT_EQ(sendDelta(*faulty, "ca", "c1", 1, pathText_),
              AckCode::Unavailable);
    EXPECT_EQ(faulty->health(), Health::Degraded);
    EXPECT_EQ(faulty->deltasAccepted(), 0u);

    // While degraded: reads are served, writes keep NACKing, and the
    // epoch clock stands still so memory and WAL stay in sync.
    bool drop = false;
    auto resp = faulty->handleFrame("ca", encodeStatsReq(), drop);
    EXPECT_FALSE(drop);
    ASSERT_EQ(resp.size(), 1u);
    Message m;
    ASSERT_TRUE(decodeMessage(resp[0], m).ok());
    EXPECT_EQ(m.type, MsgType::StatsRep);
    EXPECT_EQ(sendDelta(*faulty, "ca", "c1", 1, pathText_),
              AckCode::Unavailable);

    // The tick-driven reopen retries, the fault budget is spent, and
    // the server snapshots its way back to healthy — then the epoch
    // advances as usual.
    ASSERT_TRUE(faulty->tick().ok());
    EXPECT_EQ(faulty->health(), Health::Healthy);
    EXPECT_EQ(sendDelta(*faulty, "ca", "c1", 1, pathText_),
              AckCode::Accepted);
    EXPECT_GE(faulty->stats().counter("serve.health.degradeEvents"),
              1u);
    EXPECT_GE(faulty->stats().counter("serve.health.recoveries"), 1u);

    // The NACK'd attempts were side-effect-free: the recovered server
    // is bit-identical to a control that saw only tick + the delta.
    ASSERT_TRUE(control->tick().ok());
    EXPECT_EQ(sendDelta(*control, "cb", "c1", 1, pathText_),
              AckCode::Accepted);
    EXPECT_EQ(faulty->aggregate().serialize(),
              control->aggregate().serialize());

    // No acked delta lost: kill -9 the recovered server; a clean
    // restart replays to the same bytes.
    const std::string pre = faulty->aggregate().serialize();
    faulty.reset();
    auto reborn = makeCore("faulty");
    EXPECT_EQ(reborn->aggregate().serialize(), pre);
}

TEST_F(ServeCoreTest, RepeatedReopenFailureEscalatesToFailing)
{
    // The WAL append fault degrades; the snapshot fault then blocks
    // every recovery attempt, so the server must escalate to Failing
    // while still serving reads and NACKing writes.
    Vio vio;
    std::string err;
    ASSERT_TRUE(vio.parseFaults(
                    "path=wal,op=fsync,kind=eio,count=1;"
                    "path=snap,op=fsync,kind=fsync-fail",
                    err))
        << err;
    ServeOptions fopts;
    fopts.vio = &vio;
    fopts.reopenBackoffCapTicks = 1;
    fopts.failingAfterRetries = 2;
    auto core = makeCore("failing", fopts);

    EXPECT_EQ(sendDelta(*core, "ca", "c1", 1, pathText_),
              AckCode::Unavailable);
    EXPECT_EQ(core->health(), Health::Degraded);
    const uint64_t epochBefore = core->aggregate().epoch();
    // Odd ticks attempt the reopen (and fail); even ticks burn down
    // the one-tick backoff and legitimately return OK.
    int failedTicks = 0;
    for (int i = 0; i < 6; ++i)
        if (!core->tick().ok())
            ++failedTicks;
    EXPECT_GE(failedTicks, 3);
    EXPECT_EQ(core->health(), Health::Failing);
    // Time stood still: no epoch advanced while the WAL was down.
    EXPECT_EQ(core->aggregate().epoch(), epochBefore);
    EXPECT_GE(core->stats().counter("serve.health.reopenFailures"),
              2u);
    // Still answering reads, still refusing writes.
    EXPECT_EQ(sendDelta(*core, "ca", "c1", 1, pathText_),
              AckCode::Unavailable);
    bool drop = false;
    auto resp = core->handleFrame("ca", encodeStatsReq(), drop);
    EXPECT_FALSE(drop);
    ASSERT_EQ(resp.size(), 1u);
}

TEST_F(ServeCoreTest, HealthBlockIsInStatusAndReportDocuments)
{
    Vio vio;
    std::string err;
    ASSERT_TRUE(
        vio.parseFaults("path=wal,op=fsync,kind=eio,count=1", err))
        << err;
    ServeOptions fopts;
    fopts.vio = &vio;
    auto core = makeCore("s", fopts);
    EXPECT_EQ(sendDelta(*core, "ca", "c1", 1, pathText_),
              AckCode::Unavailable);
    ASSERT_TRUE(core->tick().ok());
    EXPECT_EQ(sendDelta(*core, "ca", "c1", 1, pathText_),
              AckCode::Accepted);

    const std::string status = core->statusJson();
    EXPECT_NE(status.find("\"health\""), std::string::npos);
    EXPECT_NE(status.find("\"healthy\""), std::string::npos);
    EXPECT_NE(status.find("\"degradeEvents\""), std::string::npos);
    EXPECT_NE(status.find("\"recoveries\""), std::string::npos);
    EXPECT_NE(status.find("\"nackedUnavailable\""), std::string::npos);

    const std::string report = core->reportJson();
    EXPECT_NE(report.find("\"health\""), std::string::npos);
    EXPECT_NE(report.find("\"runs\""), std::string::npos);
    EXPECT_EQ(core->stats().counter("serve.health.state"), 0u);
}

// ---------------------------------------------------------------------
// Torn-tail byte sweep: recovery at every truncation offset.

TEST_F(WalTest, TornTailSweepRecoversThePrefixAtEveryByteOffset)
{
    Rng rng(11);
    Aggregate expected; // state after all but the final record
    std::string expectedBytes;
    uint64_t sizeBefore = 0, sizeAfter = 0;
    const std::string walFile = dir_ + "/wal.1.bin";
    {
        Wal wal(dir_);
        Aggregate scratch;
        RecoveryInfo info;
        ASSERT_TRUE(wal.open(scratch, info).ok());
        const uint64_t kRecords = 4;
        for (uint64_t s = 1; s <= kRecords; ++s) {
            const AdmittedDelta d = randomDelta(rng, "c", s);
            if (s == kRecords) {
                expectedBytes = expected.serialize();
                sizeBefore = std::filesystem::file_size(walFile);
            } else {
                expected.apply(d);
            }
            ASSERT_TRUE(wal.appendAdmitted(d).ok());
        }
        sizeAfter = std::filesystem::file_size(walFile);
    }
    ASSERT_GT(sizeAfter, sizeBefore);
    std::string full;
    {
        std::ifstream in(walFile, std::ios::binary);
        full.assign((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    }
    ASSERT_EQ(full.size(), sizeAfter);

    const std::string sweepDir = dir_ + "_sweep";
    std::filesystem::remove_all(sweepDir);
    std::filesystem::create_directories(sweepDir);
    for (uint64_t off = sizeBefore; off < sizeAfter; ++off) {
        {
            std::ofstream out(sweepDir + "/wal.1.bin",
                              std::ios::binary | std::ios::trunc);
            out.write(full.data(), std::streamsize(off));
        }
        Wal wal(sweepDir);
        Aggregate agg;
        RecoveryInfo info;
        ASSERT_TRUE(wal.open(agg, info).ok()) << "offset " << off;
        // The invariant at every byte: the torn record contributes
        // nothing — recovery lands on exactly the pre-record state.
        ASSERT_EQ(agg.serialize(), expectedBytes) << "offset " << off;
        // A cut at the record boundary is a clean end, not a tear.
        ASSERT_EQ(info.tornSegments, off == sizeBefore ? 0u : 1u)
            << "offset " << off;
    }
    std::filesystem::remove_all(sweepDir);
}

} // namespace
} // namespace pathsched::serve
