/**
 * @file
 * Resource-governance tests: Deadline / BudgetMeter units, interpreter
 * step-budget and deadline truncation, and the pipeline's budget
 * exhaustion contract — each stage's budget failure degrades exactly
 * the affected procedure through the quarantine path (never aborts),
 * while an expired run-wide deadline ends the run with a typed status.
 */

#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "support/budget.hpp"
#include "workloads/workloads.hpp"

namespace pathsched {
namespace {

using pipeline::PipelineOptions;
using pipeline::PipelineResult;
using pipeline::SchedConfig;

// ---------------------------------------------------------------------
// Deadline.

TEST(Deadline, DefaultNeverExpires)
{
    const Deadline d;
    EXPECT_FALSE(d.active());
    EXPECT_FALSE(d.expired());
    EXPECT_EQ(d.remainingMs(), 0.0);
    EXPECT_FALSE(Deadline::never().active());
}

TEST(Deadline, ZeroBudgetExpiresImmediately)
{
    const Deadline d = Deadline::afterMs(0);
    EXPECT_TRUE(d.active());
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.remainingMs(), 0.0);
}

TEST(Deadline, GenerousBudgetIsPending)
{
    const Deadline d = Deadline::afterMs(60'000);
    EXPECT_TRUE(d.active());
    EXPECT_FALSE(d.expired());
    EXPECT_GT(d.remainingMs(), 0.0);
}

// ---------------------------------------------------------------------
// ResourceBudget / BudgetMeter.

TEST(ResourceBudget, DefaultIsUnlimited)
{
    ResourceBudget b;
    EXPECT_TRUE(b.unlimited());
    b.compactOps = 1;
    EXPECT_FALSE(b.unlimited());
    b = ResourceBudget();
    b.deadline = Deadline::afterMs(60'000);
    EXPECT_FALSE(b.unlimited());
}

TEST(BudgetMeter, NullBudgetChargesNothing)
{
    BudgetMeter meter(nullptr, "test", 0);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(meter.checkpoint(1'000'000).ok());
    EXPECT_EQ(meter.used(), 0u);
}

TEST(BudgetMeter, OpCapExhaustionIsTyped)
{
    ResourceBudget budget;
    budget.compactOps = 10;
    BudgetMeter meter(&budget, "compact", budget.compactOps);
    EXPECT_TRUE(meter.checkpoint(5).ok());
    EXPECT_TRUE(meter.checkpoint(5).ok()); // exactly at the cap: fine
    const Status st = meter.checkpoint(1);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), ErrorKind::BudgetExceeded);
    EXPECT_NE(st.message().find("compact"), std::string::npos);
    EXPECT_EQ(meter.used(), 11u);
}

TEST(BudgetMeter, ExpiredDeadlineIsTyped)
{
    ResourceBudget budget;
    budget.deadline = Deadline::afterMs(0);
    BudgetMeter meter(&budget, "form", 0); // no op cap
    const Status st = meter.checkpoint();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), ErrorKind::DeadlineExceeded);
}

TEST(BudgetMeter, DeadlineStatusHelper)
{
    EXPECT_TRUE(deadlineStatus(nullptr, "x").ok());
    ResourceBudget pending;
    pending.deadline = Deadline::afterMs(60'000);
    EXPECT_TRUE(deadlineStatus(&pending, "x").ok());
    ResourceBudget expired;
    expired.deadline = Deadline::afterMs(0);
    const Status st = deadlineStatus(&expired, "form");
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.kind(), ErrorKind::DeadlineExceeded);
    EXPECT_NE(st.message().find("form"), std::string::npos);
}

// ---------------------------------------------------------------------
// Interpreter truncation.

/** main(n): branchy counting loop, ~6 ops per iteration. */
ir::Program
loopProgram()
{
    ir::Program prog;
    ir::IrBuilder b(prog);
    const ir::ProcId mainp = b.newProc("main", 1);
    const ir::RegId n = b.param(0);

    const ir::BlockId entry = 0;
    const ir::BlockId header = b.newBlock();
    const ir::BlockId body = b.newBlock();
    const ir::BlockId hot = b.newBlock(); // taken 3 iterations in 4
    const ir::BlockId latch = b.newBlock();
    const ir::BlockId done = b.newBlock();

    b.setBlock(entry);
    const ir::RegId i = b.ldi(0);
    const ir::RegId acc = b.ldi(0);
    b.jmp(header);

    b.setBlock(header);
    const ir::RegId c = b.cmpLt(i, n);
    b.brz(c, done, body);

    b.setBlock(body);
    const ir::RegId low = b.alui(ir::Opcode::And, i, 3);
    b.brnz(low, hot, latch);

    b.setBlock(hot);
    b.aluiTo(ir::Opcode::Add, acc, acc, 1);
    b.jmp(latch);

    b.setBlock(latch);
    b.aluiTo(ir::Opcode::Add, acc, acc, 3);
    b.aluiTo(ir::Opcode::Add, i, i, 1);
    b.jmp(header);

    b.setBlock(done);
    b.emitValue(acc);
    b.ret(acc);

    prog.mainProc = mainp;
    return prog;
}

interp::ProgramInput
inputN(int64_t n)
{
    interp::ProgramInput in;
    in.mainArgs = {n};
    return in;
}

TEST(InterpBudget, StepBudgetTruncatesWithAttribution)
{
    const ir::Program prog = loopProgram();
    interp::InterpOptions opts;
    opts.budgetSteps = 50;
    interp::Interpreter interp(prog, opts);
    const interp::RunResult r = interp.run(inputN(1000));
    EXPECT_TRUE(r.budgetStop);
    EXPECT_FALSE(r.stepLimit);
    EXPECT_FALSE(r.deadlineStop);
    EXPECT_TRUE(r.truncated());
    EXPECT_EQ(r.stopProc, prog.mainProc);
}

TEST(InterpBudget, BudgetAtOrAboveMaxStepsDefersToRunawayGuard)
{
    const ir::Program prog = loopProgram();
    interp::InterpOptions opts;
    opts.maxSteps = 50;
    opts.budgetSteps = 100;
    interp::Interpreter interp(prog, opts);
    const interp::RunResult r = interp.run(inputN(1000));
    EXPECT_TRUE(r.stepLimit);
    EXPECT_FALSE(r.budgetStop);
    EXPECT_EQ(r.stopProc, prog.mainProc);
}

TEST(InterpBudget, CompleteRunHasNoTruncationOrStopProc)
{
    const ir::Program prog = loopProgram();
    interp::Interpreter interp(prog);
    const interp::RunResult r = interp.run(inputN(10));
    EXPECT_FALSE(r.truncated());
    EXPECT_EQ(r.stopProc, ir::kNoProc);
}

TEST(InterpBudget, ExpiredDeadlineTruncatesLongRun)
{
    // The deadline is polled every kDeadlineCheckStride steps, so the
    // run must be long enough to cross at least one stride boundary.
    const ir::Program prog = loopProgram();
    interp::InterpOptions opts;
    opts.deadline = Deadline::afterMs(0);
    interp::Interpreter interp(prog, opts);
    const interp::RunResult r = interp.run(inputN(100'000));
    EXPECT_TRUE(r.deadlineStop);
    EXPECT_TRUE(r.truncated());
    EXPECT_EQ(r.stopProc, prog.mainProc);
}

// ---------------------------------------------------------------------
// Pipeline budget exhaustion: each stage degrades exactly the affected
// procedure and the run completes.

PipelineResult
runWc(SchedConfig config, const PipelineOptions &opts)
{
    const auto w = workloads::makeByName("wc");
    return pipeline::runPipeline(w.program, w.train, w.test, config,
                                 opts);
}

struct StageBudgetCase
{
    const char *stage;
    ResourceBudget budget;
};

class StageBudgetMatrix
    : public ::testing::TestWithParam<StageBudgetCase>
{};

TEST_P(StageBudgetMatrix, WcP4DegradesExactlyTheExhaustedProcedure)
{
    const StageBudgetCase &c = GetParam();
    obs::StatRegistry registry;
    obs::Observer observer;
    observer.stats = &registry;
    PipelineOptions opts;
    opts.observability.observer = &observer;
    opts.robustness.budget = c.budget;

    const PipelineResult r = runWc(SchedConfig::P4, opts);
    EXPECT_TRUE(r.status.ok()) << r.status.toString();
    EXPECT_TRUE(r.outputMatches);
    EXPECT_TRUE(r.budgeted);
    ASSERT_FALSE(r.degraded.empty());
    for (const auto &d : r.degraded) {
        EXPECT_EQ(d.stage, c.stage);
        EXPECT_EQ(d.kind, ErrorKind::BudgetExceeded);
    }
    EXPECT_EQ(r.budgetDegradations(), r.degraded.size());
    EXPECT_EQ(registry.counter("robust.P4.budget.exhausted"),
              r.degraded.size());
}

INSTANTIATE_TEST_SUITE_P(
    Stages, StageBudgetMatrix,
    ::testing::Values(
        StageBudgetCase{"form", [] {
                            ResourceBudget b;
                            b.formGrowthOps = 1;
                            return b;
                        }()},
        StageBudgetCase{"compact", [] {
                            ResourceBudget b;
                            b.compactOps = 10;
                            return b;
                        }()},
        StageBudgetCase{"regalloc", [] {
                            ResourceBudget b;
                            b.regallocOps = 10;
                            return b;
                        }()}),
    [](const ::testing::TestParamInfo<StageBudgetCase> &info) {
        return std::string(info.param.stage);
    });

TEST(PipelineBudget, ExpiredDeadlineReturnsTypedStatus)
{
    PipelineOptions opts;
    opts.robustness.budget.deadline = Deadline::afterMs(0);
    const PipelineResult r = runWc(SchedConfig::P4, opts);
    ASSERT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.kind(), ErrorKind::DeadlineExceeded);
}

TEST(PipelineBudget, TinyStepBudgetReturnsTypedStatusNotPanic)
{
    // Far below even the training run: the pipeline must report a
    // typed BudgetExceeded, never abort.
    PipelineOptions opts;
    opts.robustness.budget.interpSteps = 100;
    const PipelineResult r = runWc(SchedConfig::P4, opts);
    ASSERT_FALSE(r.status.ok());
    EXPECT_EQ(r.status.kind(), ErrorKind::BudgetExceeded);
}

TEST(PipelineBudget, TestRunBudgetDegradesTheStoppedProcedure)
{
    // A budget the original program fits under but the transformed
    // (speculation + compensation stubs) program exceeds: the pipeline
    // must attribute the overrun to the procedure it stopped in,
    // degrade it to BB, and complete within budget.
    const ir::Program prog = loopProgram();
    const interp::ProgramInput train = inputN(40);
    const interp::ProgramInput test = inputN(5000);

    interp::Interpreter ref(prog);
    const uint64_t orig_steps = ref.run(test).dynInstrs;

    PipelineOptions opts;
    const PipelineResult plain = pipeline::runPipeline(
        prog, train, test, SchedConfig::P4, opts);
    ASSERT_TRUE(plain.status.ok());
    const uint64_t transformed_steps = plain.test.dynInstrs;
    if (transformed_steps <= orig_steps)
        GTEST_SKIP() << "transformed run not longer than the original "
                        "(nothing to attribute)";

    opts.robustness.budget.interpSteps = (orig_steps + transformed_steps) / 2;
    const PipelineResult r = pipeline::runPipeline(
        prog, train, test, SchedConfig::P4, opts);
    EXPECT_TRUE(r.status.ok()) << r.status.toString();
    EXPECT_TRUE(r.outputMatches);
    ASSERT_FALSE(r.degraded.empty());
    EXPECT_EQ(r.degraded[0].stage, "interp");
    EXPECT_EQ(r.degraded[0].kind, ErrorKind::BudgetExceeded);
    EXPECT_EQ(r.degraded[0].procName, "main");
    EXPECT_LE(r.test.dynInstrs, opts.robustness.budget.interpSteps);
}

TEST(PipelineBudget, UnbudgetedRunIsUnchanged)
{
    const PipelineResult plain = runWc(SchedConfig::P4, {});
    ASSERT_TRUE(plain.status.ok());
    EXPECT_FALSE(plain.budgeted);
    EXPECT_FALSE(plain.degradedRun());

    // A generous budget must not change any measurement either.
    PipelineOptions opts;
    opts.robustness.budget.deadline = Deadline::afterMs(600'000);
    opts.robustness.budget.formGrowthOps = 1'000'000'000;
    opts.robustness.budget.compactOps = 1'000'000'000;
    opts.robustness.budget.regallocOps = 1'000'000'000;
    opts.robustness.budget.interpSteps = 1'000'000'000;
    const PipelineResult governed = runWc(SchedConfig::P4, opts);
    ASSERT_TRUE(governed.status.ok());
    EXPECT_TRUE(governed.budgeted);
    EXPECT_FALSE(governed.degradedRun());
    EXPECT_EQ(governed.test.cycles, plain.test.cycles);
    EXPECT_EQ(governed.test.dynInstrs, plain.test.dynInstrs);
    EXPECT_EQ(governed.codeBytes, plain.codeBytes);
}

TEST(PipelineBudget, ReportBudgetBlockIsGatedOnGovernance)
{
    PipelineResult plain = runWc(SchedConfig::BB, {});
    std::vector<pipeline::ReportRun> runs;
    runs.push_back({"wc", std::move(plain)});
    const std::string without = pipeline::reportJson(runs, nullptr);
    EXPECT_EQ(without.find("\"budget\""), std::string::npos);

    PipelineOptions opts;
    opts.robustness.budget.formGrowthOps = 1;
    PipelineResult governed = runWc(SchedConfig::P4, opts);
    ASSERT_TRUE(governed.status.ok());
    const size_t exhausted = governed.budgetDegradations();
    EXPECT_GT(exhausted, 0u);
    std::vector<pipeline::ReportRun> gruns;
    gruns.push_back({"wc", std::move(governed)});
    const std::string with = pipeline::reportJson(gruns, nullptr);
    EXPECT_NE(with.find("\"budget\""), std::string::npos);
    EXPECT_NE(with.find("\"exhausted\": " + std::to_string(exhausted)),
              std::string::npos);
}

} // namespace
} // namespace pathsched
