#!/usr/bin/env python3
"""Integration tests for pathsched_fuzz (docs/fuzzing.md).

Drives the real fuzz binary end to end:

  1. determinism: --print-ir for the same spec is byte-identical
     across two separate processes and under --threads 8;
  2. a clean sweep exits 0 and leaves a journal whose records carry
     the crc field the reader checks on resume;
  3. the mutation drill: with PATHSCHED_MUTATION=compact-drop-memdep a
     one-seed sweep at the known repro catches the planted compaction
     bug (exit 2), auto-reduces it into the corpus directory with the
     mutation recorded, and the reduced spec replays clean once the
     mutation is disarmed;
  4. pathsched_cli --gen runs a generated workload through the normal
     reporting path.

Usage: fuzz_driver_test.py <pathsched_fuzz> <pathsched_cli>
"""

import json
import os
import subprocess
import sys
import tempfile

FUZZ = sys.argv[1]
CLI = sys.argv[2]

MEMDEP_SPEC = ("mem=2,stores=0.3,loads=0.3,calls=0,"
               "emits=0.1,ifs=0.15,loops=0.1")

failures = []


def check(cond, what):
    tag = "ok" if cond else "FAIL"
    print(f"  [{tag}] {what}")
    if not cond:
        failures.append(what)


def run(args, env_extra=None, cwd=None):
    env = dict(os.environ)
    env.pop("PATHSCHED_MUTATION", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        args, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env, cwd=cwd, timeout=600)


def read_journal(path):
    events = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


print("[1] --print-ir determinism across processes and thread counts")
spec = "seed=77,procs=4,ifs=0.2,loops=0.12,calls=0.15"
a = run([FUZZ, "--print-ir", spec])
b = run([FUZZ, "--print-ir", spec])
c = run([FUZZ, "--print-ir", spec, "--threads", "8"])
check(a.returncode == 0, "print-ir exits 0")
check(len(a.stdout) > 100, "print-ir emits the program")
check(a.stdout == b.stdout, "two processes produce identical IR")
check(a.stdout == c.stdout, "--threads 8 produces identical IR")

with tempfile.TemporaryDirectory() as td:
    print("[2] clean sweep exits 0 with a checksummed journal")
    journal = os.path.join(td, "journal.jsonl")
    corpus = os.path.join(td, "corpus")
    r = run([FUZZ, "--count", "5", "--seed-base", "1000",
             "--jobs", "2", "--journal", journal,
             "--corpus-dir", corpus])
    check(r.returncode == 0, f"clean sweep exits 0 (got {r.returncode})")
    events = read_journal(journal)
    kinds = [e.get("event") for e in events]
    check(kinds.count("seed") == 5, "journal has one record per seed")
    check("suite-start" in kinds and "suite-end" in kinds,
          "journal brackets the suite")
    check(all("crc" in e for e in events), "every record is checksummed")
    check(not os.path.isdir(corpus) or not os.listdir(corpus),
          "clean sweep writes no corpus files")

    print("[3] mutation drill: catch, classify, reduce, clean replay")
    journal2 = os.path.join(td, "drill.jsonl")
    r = run([FUZZ, "--count", "1", "--seed-base", "19",
             "--spec", MEMDEP_SPEC, "--journal", journal2,
             "--corpus-dir", corpus],
            env_extra={"PATHSCHED_MUTATION": "compact-drop-memdep"})
    check(r.returncode == 2, f"drill sweep exits 2 (got {r.returncode})")
    reduced = os.path.join(corpus, "seed-19.spec")
    check(os.path.isfile(reduced), "reduced repro landed in the corpus")
    if os.path.isfile(reduced):
        text = open(reduced).read()
        check("# mutation: compact-drop-memdep" in text,
              "repro records the armed mutation")
        check("# class: " in text, "repro records the classification")
        check("drop=" in text, "reduction actually shrank the workload")
        rr = run([FUZZ, "--replay", reduced])
        check(rr.returncode == 0,
              f"reduced spec replays clean unmutated (got {rr.returncode})")
        rm = run([FUZZ, "--replay", reduced],
                 env_extra={"PATHSCHED_MUTATION": "compact-drop-memdep"})
        check(rm.returncode == 2,
              f"reduced spec still fails mutated (got {rm.returncode})")
    evs = read_journal(journal2)
    kinds = [e.get("event") for e in evs]
    check("reduce-done" in kinds, "journal records the reduction")

    print("[4] pathsched_cli --gen smoke")
    r = run([CLI, "--gen", "seed=3,procs=2", "--config", "P4"])
    check(r.returncode == 0, f"cli --gen exits 0 (got {r.returncode})")
    check("gen-3" in r.stdout, "table names the generated workload")

print()
if failures:
    print(f"FAILED: {len(failures)} check(s)")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("all checks passed")
