/**
 * @file
 * Integration tests: the full pipeline over every workload and
 * configuration, plus determinism and option handling.
 */

#include <gtest/gtest.h>

#include "pipeline/backend.hpp"
#include "pipeline/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace pathsched::pipeline {
namespace {

struct PipelineCase
{
    std::string workload;
    SchedConfig config;
};

std::string
caseName(const ::testing::TestParamInfo<PipelineCase> &info)
{
    return info.param.workload + "_" + configName(info.param.config);
}

class PipelineAllConfigs : public ::testing::TestWithParam<PipelineCase>
{};

TEST_P(PipelineAllConfigs, TransformedProgramBehavesIdentically)
{
    const auto &c = GetParam();
    const auto w = workloads::makeByName(c.workload);
    PipelineOptions opts;
    const PipelineResult r =
        runPipeline(w.program, w.train, w.test, c.config, opts);
    EXPECT_TRUE(r.outputMatches);
    EXPECT_GT(r.test.cycles, 0u);
    EXPECT_GT(r.test.dynInstrs, 0u);
    EXPECT_EQ(r.name, configName(c.config));
    if (backendFor(c.config).formsSuperblocks) {
        EXPECT_GT(r.form.superblocksFormed, 0u) << c.workload;
        EXPECT_GT(r.test.sbEntries, 0u) << c.workload;
        // Executed blocks never exceed the superblock's size.
        EXPECT_LE(r.test.sbBlocksExecuted, r.test.sbBlocksInSb);
    }
}

std::vector<PipelineCase>
allCases()
{
    std::vector<PipelineCase> cases;
    for (const auto &name : workloads::benchmarkNames()) {
        for (const BackendDesc *be : allBackends())
            cases.push_back({name, be->config});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PipelineAllConfigs,
                         ::testing::ValuesIn(allCases()), caseName);

TEST(Pipeline, SchedulingBeatsBasicBlocks)
{
    // Superblock scheduling should never lose to per-block scheduling
    // under a perfect cache (same compactor, strictly more scope).
    for (const auto &name : workloads::benchmarkNames()) {
        const auto w = workloads::makeByName(name);
        PipelineOptions opts;
        const auto bb =
            runPipeline(w.program, w.train, w.test, SchedConfig::BB, opts);
        const auto p4 =
            runPipeline(w.program, w.train, w.test, SchedConfig::P4, opts);
        EXPECT_LT(p4.test.cycles, bb.test.cycles) << name;
    }
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    const auto w = workloads::makeByName("corr");
    PipelineOptions opts;
    const auto a =
        runPipeline(w.program, w.train, w.test, SchedConfig::P4, opts);
    const auto b2 =
        runPipeline(w.program, w.train, w.test, SchedConfig::P4, opts);
    EXPECT_EQ(a.test.cycles, b2.test.cycles);
    EXPECT_EQ(a.codeBytes, b2.codeBytes);
    EXPECT_EQ(a.numPaths, b2.numPaths);
    EXPECT_EQ(a.test.output, b2.test.output);
}

TEST(Pipeline, SourceProgramUntouched)
{
    const auto w = workloads::makeByName("alt");
    const size_t before = w.program.instrCount();
    PipelineOptions opts;
    runPipeline(w.program, w.train, w.test, SchedConfig::P4, opts);
    EXPECT_EQ(w.program.instrCount(), before);
}

TEST(Pipeline, CacheRunChargesStalls)
{
    const auto w = workloads::makeByName("gcc");
    PipelineOptions opts;
    opts.useICache = true;
    const auto r =
        runPipeline(w.program, w.train, w.test, SchedConfig::P4, opts);
    EXPECT_GT(r.test.icacheAccesses, 0u);
    EXPECT_GT(r.test.icacheMisses, 0u);
    EXPECT_EQ(r.test.stallCycles,
              r.test.icacheMisses * opts.cacheParams.missPenaltyCycles);
    EXPECT_GT(r.test.cycles, r.test.stallCycles);
}

TEST(Pipeline, PerfectCacheHasNoStalls)
{
    const auto w = workloads::makeByName("alt");
    PipelineOptions opts;
    const auto r =
        runPipeline(w.program, w.train, w.test, SchedConfig::M4, opts);
    EXPECT_EQ(r.test.stallCycles, 0u);
    EXPECT_EQ(r.test.icacheAccesses, 0u);
}

TEST(Pipeline, EnlargementToggleShrinksCode)
{
    const auto w = workloads::makeByName("alt");
    PipelineOptions with;
    PipelineOptions without;
    without.enlarge = false;
    const auto a =
        runPipeline(w.program, w.train, w.test, SchedConfig::P4, with);
    const auto b2 =
        runPipeline(w.program, w.train, w.test, SchedConfig::P4, without);
    EXPECT_LT(b2.codeBytes, a.codeBytes);
    EXPECT_TRUE(b2.outputMatches);
}

TEST(Pipeline, PathDepthOneDegradesAlt)
{
    // With a 1-branch window the profiler cannot see the TTTF pattern,
    // so path formation loses most of its edge over M4 on alt.
    const auto w = workloads::makeByName("alt");
    PipelineOptions deep;
    PipelineOptions shallow;
    shallow.pathParams.maxBranches = 1;
    const auto d =
        runPipeline(w.program, w.train, w.test, SchedConfig::P4, deep);
    const auto s =
        runPipeline(w.program, w.train, w.test, SchedConfig::P4, shallow);
    EXPECT_LT(d.test.cycles, s.test.cycles);
}

TEST(Pipeline, FormConfigMapping)
{
    PipelineOptions opts;
    EXPECT_EQ(formConfigFor(SchedConfig::M4, opts).mode,
              form::ProfileMode::Edge);
    EXPECT_EQ(formConfigFor(SchedConfig::M16, opts).unrollFactor, 16u);
    EXPECT_EQ(formConfigFor(SchedConfig::P4, opts).mode,
              form::ProfileMode::Path);
    EXPECT_FALSE(formConfigFor(SchedConfig::P4, opts).nonLoopStopsAtAnyHead);
    EXPECT_TRUE(formConfigFor(SchedConfig::P4e, opts).nonLoopStopsAtAnyHead);
}

TEST(Pipeline, ReportsFormAndPathStatistics)
{
    const auto w = workloads::makeByName("wc");
    PipelineOptions opts;
    const auto r =
        runPipeline(w.program, w.train, w.test, SchedConfig::P4, opts);
    EXPECT_GT(r.numPaths, 0u);
    EXPECT_GT(r.trainSteps, 0u);
    EXPECT_GT(r.form.tracesSelected, 0u);
    EXPECT_GT(r.codeBytes, 0u);
}

} // namespace
} // namespace pathsched::pipeline
