/**
 * @file
 * Tests for the scheduler-backend registry (pipeline/backend.hpp): the
 * descriptor table itself, the string-keyed lookup, capability flags,
 * and a grep-style guard that no raw `config == SchedConfig::X`
 * predicate survives outside the registry's own files.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "pipeline/backend.hpp"

namespace pathsched::pipeline {
namespace {

TEST(BackendRegistry, BuiltinsRegisteredInCanonicalOrder)
{
    const auto &all = allBackends();
    ASSERT_GE(all.size(), 7u);
    const std::vector<std::string> expected = {"BB", "M4", "M16", "P4",
                                               "P4e", "G4", "G4e"};
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(all[i]->name, expected[i]);
}

TEST(BackendRegistry, NamesAndConfigsAreUnique)
{
    std::set<std::string> names;
    std::set<int> configs;
    for (const BackendDesc *be : allBackends()) {
        EXPECT_TRUE(names.insert(be->name).second) << be->name;
        EXPECT_TRUE(configs.insert(int(be->config)).second) << be->name;
        EXPECT_FALSE(std::string(be->summary).empty()) << be->name;
    }
}

TEST(BackendRegistry, StringLookupRoundTrips)
{
    for (const BackendDesc *be : allBackends()) {
        const BackendDesc *found = findBackend(be->name);
        ASSERT_NE(found, nullptr) << be->name;
        EXPECT_EQ(found, be);
        EXPECT_EQ(&backendFor(be->config), be);
        EXPECT_STREQ(configName(be->config), be->name);
    }
    EXPECT_EQ(findBackend("definitely-not-a-backend"), nullptr);
    EXPECT_EQ(findBackend(""), nullptr);
}

TEST(BackendRegistry, CapabilityFlagsMatchTheFamilies)
{
    const auto caps = [](const char *name) {
        const BackendDesc *be = findBackend(name);
        EXPECT_NE(be, nullptr) << name;
        return be;
    };
    // BB: no profile, no transform.
    EXPECT_FALSE(caps("BB")->needsProfile());
    EXPECT_FALSE(caps("BB")->hasTransform());
    // M-family: edge profile, superblocks.
    for (const char *n : {"M4", "M16"}) {
        EXPECT_TRUE(caps(n)->needsEdgeProfile()) << n;
        EXPECT_FALSE(caps(n)->needsPathProfile()) << n;
        EXPECT_TRUE(caps(n)->formsSuperblocks) << n;
    }
    // P-family: path profile, superblocks.
    for (const char *n : {"P4", "P4e"}) {
        EXPECT_FALSE(caps(n)->needsEdgeProfile()) << n;
        EXPECT_TRUE(caps(n)->needsPathProfile()) << n;
        EXPECT_TRUE(caps(n)->formsSuperblocks) << n;
    }
    // G4: edge-profiled GCM, untouched CFG.
    EXPECT_TRUE(caps("G4")->needsEdgeProfile());
    EXPECT_FALSE(caps("G4")->needsPathProfile());
    EXPECT_TRUE(caps("G4")->usesGcm);
    EXPECT_FALSE(caps("G4")->formsSuperblocks);
    EXPECT_STREQ(caps("G4")->transformLabel, "gcm");
    // G4e: GCM + path-driven enlargement needs both profiles.
    EXPECT_TRUE(caps("G4e")->needsEdgeProfile());
    EXPECT_TRUE(caps("G4e")->needsPathProfile());
    EXPECT_TRUE(caps("G4e")->usesGcm);
    EXPECT_TRUE(caps("G4e")->formsSuperblocks);
    // Every transform-bearing backend carries a label.
    for (const BackendDesc *be : allBackends()) {
        if (be->hasTransform()) {
            EXPECT_FALSE(std::string(be->transformLabel).empty())
                << be->name;
        }
    }
}

// ---------------------------------------------------------------------
// The guard: enumerator comparisons must not come back.

bool
isSourceFile(const std::filesystem::path &p)
{
    const auto ext = p.extension().string();
    return ext == ".cpp" || ext == ".hpp";
}

TEST(BackendRegistry, NoRawSchedConfigComparisonsOutsideTheRegistry)
{
#ifndef PATHSCHED_SOURCE_DIR
    GTEST_SKIP() << "source tree location not compiled in";
#else
    namespace fs = std::filesystem;
    const fs::path root(PATHSCHED_SOURCE_DIR);
    ASSERT_TRUE(fs::exists(root / "src" / "pipeline" / "backend.hpp"))
        << "PATHSCHED_SOURCE_DIR does not point at the repo";

    // Built from pieces so this file does not match itself; the
    // registry's own files are the one sanctioned home of the pattern
    // (backend.hpp's doc comment quotes it as the anti-pattern).
    const std::string kind("SchedConfig::");
    const std::vector<std::string> needles = {
        "== " + kind, "!= " + kind, "==" + kind, "!=" + kind};

    std::vector<std::string> offenders;
    for (const char *dir : {"src", "tools", "examples", "bench",
                            "tests"}) {
        for (const auto &ent :
             fs::recursive_directory_iterator(root / dir)) {
            if (!ent.is_regular_file() || !isSourceFile(ent.path()))
                continue;
            const std::string rel =
                fs::relative(ent.path(), root).string();
            if (rel == "src/pipeline/backend.hpp" ||
                rel == "src/pipeline/backend.cpp" ||
                rel == "tests/backend_registry_test.cpp")
                continue;
            std::ifstream in(ent.path());
            std::stringstream ss;
            ss << in.rdbuf();
            const std::string text = ss.str();
            for (const std::string &needle : needles) {
                if (text.find(needle) != std::string::npos) {
                    offenders.push_back(rel + ": '" + needle + "'");
                    break;
                }
            }
        }
    }
    EXPECT_TRUE(offenders.empty())
        << "raw SchedConfig comparisons found — query the BackendDesc "
           "capabilities instead:\n  " +
               [&] {
                   std::string joined;
                   for (const auto &o : offenders)
                       joined += o + "\n  ";
                   return joined;
               }();
#endif
}

} // namespace
} // namespace pathsched::pipeline
