/**
 * @file
 * Whole-pipeline property tests on random programs: every
 * configuration must preserve behaviour on generated control flow too
 * (not just the curated workloads), across generator shapes that
 * stress different passes — call-free (pure CFG), store-heavy (memory
 * dependences), deeply nested (formation), and default.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "form/form.hpp"
#include "ir/verifier.hpp"
#include "pipeline/pipeline.hpp"
#include "profile/serialize.hpp"
#include "support/rng.hpp"
#include "testutil.hpp"

namespace pstest = pathsched::testing;

namespace pathsched::pipeline {
namespace {

struct RandomCase
{
    uint64_t seed;
    SchedConfig config;
    int shape; // generator-parameter variant
};

pstest::GenParams
shapeParams(int shape)
{
    pstest::GenParams p;
    switch (shape) {
      case 0: // default
        break;
      case 1: // pure control flow: stresses formation/scheduling only
        p.allowCalls = false;
        p.allowLoads = false;
        p.allowStores = false;
        p.maxDepth = 4;
        break;
      case 2: // memory heavy: stresses dependence construction
        p.allowCalls = false;
        p.maxStmtsPerRegion = 8;
        break;
      case 3: // deep nesting and calls: stresses trace termination
        p.maxDepth = 5;
        p.numProcs = 5;
        break;
      default:
        break;
    }
    return p;
}

class RandomPipeline : public ::testing::TestWithParam<RandomCase>
{};

TEST_P(RandomPipeline, BehaviourPreservedEndToEnd)
{
    const RandomCase &c = GetParam();
    pstest::GeneratedProgram gen =
        pstest::makeRandomProgram(c.seed, shapeParams(c.shape));

    // Train on one input, test on a different one: derives fresh data
    // for the memory image so formation decisions are profiled on a
    // genuinely different run, as the paper's train/test split does.
    pstest::GeneratedProgram other =
        pstest::makeRandomProgram(c.seed ^ 0x5a5a5a5a,
                                  shapeParams(c.shape));
    interp::ProgramInput test = gen.input;
    if (test.memImage.size() == other.input.memImage.size())
        test.memImage = other.input.memImage;

    PipelineOptions opts;
    // Random programs are tiny; exercise the cache path anyway.
    opts.useICache = (c.seed % 2) == 0;
    const PipelineResult r =
        runPipeline(gen.program, gen.input, test, c.config, opts);
    EXPECT_TRUE(r.outputMatches) << "seed " << c.seed;
    EXPECT_GT(r.test.cycles, 0u);
}

std::vector<RandomCase>
randomCases()
{
    std::vector<RandomCase> cases;
    const SchedConfig configs[] = {SchedConfig::M4, SchedConfig::M16,
                                   SchedConfig::P4, SchedConfig::P4e};
    for (uint64_t seed = 100; seed < 110; ++seed) {
        for (const SchedConfig config : configs)
            cases.push_back({seed, config, int(seed % 4)});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline,
                         ::testing::ValuesIn(randomCases()));

// ---------------------------------------------------------------------
// Corrupt-profile fuzzing: serialized profiles that have been bit
// flipped, digit-mangled, or truncated must either be rejected cleanly
// by fromText (with an error message) or load into a profile that the
// pipeline's formation layer can consume without crashing — and any
// program it produces must still behave identically.  A corrupt
// profile may make formation pick silly traces; it must never make the
// compiled program compute something else.

/** Apply 1..4 seed-deterministic mutations to serialized profile text. */
std::string
corruptText(std::string text, Rng &rng)
{
    if (text.empty())
        return text;
    const uint64_t edits = 1 + rng.below(4);
    for (uint64_t e = 0; e < edits; ++e) {
        switch (rng.below(4)) {
          case 0: // flip one bit
            text[rng.below(text.size())] ^= char(1u << rng.below(8));
            break;
          case 1: // swap in a random digit (mangles ids and counts)
            text[rng.below(text.size())] =
                char('0' + rng.below(10));
            break;
          case 2: // truncate (mid-record truncation included)
            text.resize(rng.below(text.size() + 1));
            break;
          case 3: { // duplicate a chunk (repeated / overlong records)
            const size_t at = size_t(rng.below(text.size()));
            const size_t len =
                std::min<size_t>(text.size() - at,
                                 size_t(1 + rng.below(40)));
            text.insert(at, text.substr(at, len));
            break;
          }
        }
        if (text.empty())
            return text;
    }
    return text;
}

class CorruptProfile : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(CorruptProfile, RejectsCleanlyOrPreservesBehaviour)
{
    const uint64_t seed = GetParam();
    pstest::GeneratedProgram gen = pstest::makeRandomProgram(seed);
    const interp::RunResult baseline =
        interp::Interpreter(gen.program).run(gen.input);

    // Collect a genuine path profile and serialize it.
    profile::PathProfiler trained(gen.program, {});
    {
        interp::Interpreter interp(gen.program);
        interp.addListener(&trained);
        interp.run(gen.input);
    }
    const std::string text = profile::toText(trained);

    // Many corruption rounds per seed: each round mutates the pristine
    // text independently so late rounds aren't biased by earlier ones.
    Rng rng(seed ^ 0xc0221017u);
    for (int round = 0; round < 32; ++round) {
        const std::string corrupt = corruptText(text, rng);
        profile::PathProfiler loaded(gen.program, {});
        std::string error;
        if (!profile::fromText(corrupt, loaded, error)) {
            EXPECT_FALSE(error.empty()) << "round " << round;
            continue; // clean rejection
        }

        // The corruption survived parsing (e.g. only counts changed).
        // Formation must still be safe: form each procedure the way
        // runPipeline does, restoring the original body when a
        // procedure's formation reports an error (the BB quarantine).
        loaded.finalize();
        ir::Program prog = gen.program;
        form::FormConfig fc;
        fc.mode = form::ProfileMode::Path;
        form::FormStats stats;
        for (ir::ProcId p = 0; p < prog.procs.size(); ++p) {
            const Status st =
                form::formProcedure(prog, p, nullptr, &loaded, fc,
                                    stats);
            if (!st.ok()) {
                prog.procs[p] = gen.program.procs[p];
                prog.procs[p].syncSideTables();
            }
        }
        std::vector<std::string> errors;
        ASSERT_TRUE(
            ir::verify(prog, ir::VerifyMode::Superblock, errors))
            << "round " << round << ": "
            << (errors.empty() ? "" : errors.front());

        const interp::RunResult run =
            interp::Interpreter(prog).run(gen.input);
        EXPECT_EQ(run.output, baseline.output) << "round " << round;
        EXPECT_EQ(run.returnValue, baseline.returnValue)
            << "round " << round;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptProfile,
                         ::testing::Range<uint64_t>(200, 208));

} // namespace
} // namespace pathsched::pipeline
