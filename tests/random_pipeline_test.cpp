/**
 * @file
 * Whole-pipeline property tests on random programs: every
 * configuration must preserve behaviour on generated control flow too
 * (not just the curated workloads), across generator shapes that
 * stress different passes — call-free (pure CFG), store-heavy (memory
 * dependences), deeply nested (formation), and default.
 */

#include <gtest/gtest.h>

#include "pipeline/pipeline.hpp"
#include "testutil.hpp"

namespace pstest = pathsched::testing;

namespace pathsched::pipeline {
namespace {

struct RandomCase
{
    uint64_t seed;
    SchedConfig config;
    int shape; // generator-parameter variant
};

pstest::GenParams
shapeParams(int shape)
{
    pstest::GenParams p;
    switch (shape) {
      case 0: // default
        break;
      case 1: // pure control flow: stresses formation/scheduling only
        p.allowCalls = false;
        p.allowLoads = false;
        p.allowStores = false;
        p.maxDepth = 4;
        break;
      case 2: // memory heavy: stresses dependence construction
        p.allowCalls = false;
        p.maxStmtsPerRegion = 8;
        break;
      case 3: // deep nesting and calls: stresses trace termination
        p.maxDepth = 5;
        p.numProcs = 5;
        break;
      default:
        break;
    }
    return p;
}

class RandomPipeline : public ::testing::TestWithParam<RandomCase>
{};

TEST_P(RandomPipeline, BehaviourPreservedEndToEnd)
{
    const RandomCase &c = GetParam();
    pstest::GeneratedProgram gen =
        pstest::makeRandomProgram(c.seed, shapeParams(c.shape));

    // Train on one input, test on a different one: derives fresh data
    // for the memory image so formation decisions are profiled on a
    // genuinely different run, as the paper's train/test split does.
    pstest::GeneratedProgram other =
        pstest::makeRandomProgram(c.seed ^ 0x5a5a5a5a,
                                  shapeParams(c.shape));
    interp::ProgramInput test = gen.input;
    if (test.memImage.size() == other.input.memImage.size())
        test.memImage = other.input.memImage;

    PipelineOptions opts;
    // Random programs are tiny; exercise the cache path anyway.
    opts.useICache = (c.seed % 2) == 0;
    const PipelineResult r =
        runPipeline(gen.program, gen.input, test, c.config, opts);
    EXPECT_TRUE(r.outputMatches) << "seed " << c.seed;
    EXPECT_GT(r.test.cycles, 0u);
}

std::vector<RandomCase>
randomCases()
{
    std::vector<RandomCase> cases;
    const SchedConfig configs[] = {SchedConfig::M4, SchedConfig::M16,
                                   SchedConfig::P4, SchedConfig::P4e};
    for (uint64_t seed = 100; seed < 110; ++seed) {
        for (const SchedConfig config : configs)
            cases.push_back({seed, config, int(seed % 4)});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipeline,
                         ::testing::ValuesIn(randomCases()));

} // namespace
} // namespace pathsched::pipeline
