/**
 * @file
 * Round-trip guard for the machine-readable reports.
 *
 * Runs the wc workload through every paper configuration with the full
 * observability stack attached, serializes through the same
 * pipeline::reportJson the CLI's --json flag uses, parses the document
 * back, and checks the members the BENCH trajectory and external
 * tooling rely on: every config's test.cycles, per-stage wall times,
 * and registry counters.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/stats.hpp"
#include "obs/timer.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "workloads/workloads.hpp"

namespace pathsched {
namespace {

using pipeline::SchedConfig;

const std::vector<SchedConfig> kAllConfigs = {
    SchedConfig::BB, SchedConfig::M4, SchedConfig::M16, SchedConfig::P4,
    SchedConfig::P4e};

class ReportRoundTrip : public ::testing::Test
{
  protected:
    // One shared run of wc x all configs (the expensive part).
    static void
    SetUpTestSuite()
    {
        registry_ = new obs::StatRegistry();
        trace_ = new obs::StageTrace();
        runs_ = new std::vector<pipeline::ReportRun>();

        obs::Observer observer;
        observer.stats = registry_;
        observer.trace = trace_;

        const auto w = workloads::makeByName("wc");
        pipeline::PipelineOptions opts;
        opts.observability.observer = &observer;
        opts.observability.interpStats = true;
        for (const SchedConfig c : kAllConfigs)
            runs_->push_back({"wc", pipeline::runPipeline(
                                        w.program, w.train, w.test, c,
                                        opts)});
        doc_ = new std::string(pipeline::reportJson(*runs_, registry_));
    }

    static void
    TearDownTestSuite()
    {
        delete runs_;
        delete registry_;
        delete trace_;
        delete doc_;
        runs_ = nullptr;
        registry_ = nullptr;
        trace_ = nullptr;
        doc_ = nullptr;
    }

    static std::vector<pipeline::ReportRun> *runs_;
    static obs::StatRegistry *registry_;
    static obs::StageTrace *trace_;
    static std::string *doc_;
};

std::vector<pipeline::ReportRun> *ReportRoundTrip::runs_ = nullptr;
obs::StatRegistry *ReportRoundTrip::registry_ = nullptr;
obs::StageTrace *ReportRoundTrip::trace_ = nullptr;
std::string *ReportRoundTrip::doc_ = nullptr;

TEST_F(ReportRoundTrip, DocumentParsesBack)
{
    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::JsonValue::parse(*doc_, v, &err)) << err;
    ASSERT_NE(v.find("schema"), nullptr);
    EXPECT_EQ(v.find("schema")->asString(), pipeline::kReportSchema);
}

TEST_F(ReportRoundTrip, EveryConfigReportsTestCycles)
{
    obs::JsonValue v;
    ASSERT_TRUE(obs::JsonValue::parse(*doc_, v));
    const obs::JsonValue *runs = v.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items().size(), kAllConfigs.size());

    std::set<std::string> configs_seen;
    for (const auto &run : runs->items()) {
        ASSERT_NE(run.find("workload"), nullptr);
        EXPECT_EQ(run.find("workload")->asString(), "wc");
        ASSERT_NE(run.find("config"), nullptr);
        configs_seen.insert(run.find("config")->asString());

        const obs::JsonValue *cycles = run.findPath("test.cycles");
        ASSERT_NE(cycles, nullptr) << "missing test.cycles for config "
                                   << run.find("config")->asString();
        EXPECT_GT(cycles->asNumber(), 0.0);
        EXPECT_TRUE(run.find("outputMatches")->asBool());
    }
    EXPECT_EQ(configs_seen,
              (std::set<std::string>{"BB", "M4", "M16", "P4", "P4e"}));
}

TEST_F(ReportRoundTrip, EveryRunCarriesStageWallTimes)
{
    obs::JsonValue v;
    ASSERT_TRUE(obs::JsonValue::parse(*doc_, v));
    for (const auto &run : v.find("runs")->items()) {
        const obs::JsonValue *stages = run.find("stages");
        ASSERT_NE(stages, nullptr);
        ASSERT_TRUE(stages->isArray());
        std::set<std::string> names;
        for (const auto &s : stages->items()) {
            names.insert(s.find("name")->asString());
            EXPECT_GE(s.find("ms")->asNumber(), 0.0);
        }
        // Every pipeline run goes through at least these stages.
        for (const char *required :
             {"train", "compact", "regalloc", "postsched", "layout",
              "test", "verify"})
            EXPECT_TRUE(names.count(required))
                << "missing stage " << required;
        EXPECT_GE(run.find("totalMs")->asNumber(), 0.0);
    }
}

TEST_F(ReportRoundTrip, RegistryCountersMatchResults)
{
    // The registry's test.<cfg>.cycles counters must agree with the
    // PipelineResult values serialized into the report.
    for (const auto &run : *runs_) {
        const std::string key = "test." + run.result.name + ".cycles";
        EXPECT_EQ(registry_->counter(key), run.result.test.cycles)
            << key;
    }
    // Superblock configs registered formation counters.
    EXPECT_GT(registry_->counter("form.P4.superblocks"), 0u);
    EXPECT_GT(registry_->counter("form.M4.superblocks"), 0u);
    // interpStats attached a listener whose op count matches the
    // interpreter's own measurement.
    for (const auto &run : *runs_) {
        const std::string key =
            "interp." + run.result.name + ".test.ops";
        EXPECT_EQ(registry_->counter(key), run.result.test.dynInstrs)
            << key;
    }
}

TEST_F(ReportRoundTrip, RegistryNestsIntoStatsSubtree)
{
    obs::JsonValue v;
    ASSERT_TRUE(obs::JsonValue::parse(*doc_, v));
    const obs::JsonValue *cycles =
        v.findPath("stats.test.P4.cycles");
    ASSERT_NE(cycles, nullptr);
    EXPECT_GT(cycles->asNumber(), 0.0);
    // Stage-time distributions made it in, with sane members.
    const obs::JsonValue *train =
        v.findPath("stats.time.P4.train");
    ASSERT_NE(train, nullptr);
    EXPECT_GE(train->findPath("mean")->asNumber(), 0.0);
    EXPECT_GE(train->findPath("count")->asNumber(), 1.0);
}

TEST_F(ReportRoundTrip, TraceIsWellFormedAndCoversStages)
{
    obs::JsonValue v;
    std::string err;
    ASSERT_TRUE(obs::JsonValue::parse(trace_->toChromeTrace(), v, &err))
        << err;
    const obs::JsonValue *events = v.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_GE(events->items().size(), 5u * 7u); // >= stages x configs
    bool saw_p4_train = false;
    for (const auto &e : events->items()) {
        EXPECT_EQ(e.find("ph")->asString(), "X");
        if (e.find("name")->asString() == "time.P4.train")
            saw_p4_train = true;
    }
    EXPECT_TRUE(saw_p4_train);
}

} // namespace
} // namespace pathsched
