/**
 * @file
 * Tests for the form pass: trace selection (edge and path), tail
 * duplication / materialization invariants, classical and unified
 * enlargement, unreachable-block cleanup, and differential semantics
 * preservation on random programs.
 */

#include <gtest/gtest.h>

#include "form/form.hpp"
#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/verifier.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "testutil.hpp"

namespace pstest = pathsched::testing;

namespace pathsched::form {
namespace {

using ir::BlockId;
using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::RegId;

/** Profile a program on @p input with both profilers. */
struct Profiles
{
    explicit Profiles(const Program &prog) : edge(prog), path(prog, {}) {}

    void
    train(const Program &prog, const interp::ProgramInput &input)
    {
        interp::Interpreter interp(prog);
        interp.addListener(&edge);
        interp.addListener(&path);
        interp.run(input);
        path.finalize();
    }

    profile::EdgeProfiler edge;
    profile::PathProfiler path;
};

/** alt-style periodic loop (Fig. 3's motivating example). */
Program
makeAltLoop()
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId head = b.newBlock();   // 1 ("A")
    const BlockId left = b.newBlock();   // 2 ("B")
    const BlockId right = b.newBlock();  // 3 ("C")
    const BlockId latch = b.newBlock();  // 4 ("D")
    const BlockId done = b.newBlock();   // 5
    const RegId n = b.param(0);
    const RegId i = b.freshReg();
    const RegId acc = b.freshReg();
    b.ldiTo(i, 0);
    b.ldiTo(acc, 0);
    b.jmp(head);
    b.setBlock(head);
    const RegId t = b.alui(Opcode::And, i, 3);
    const RegId c = b.alui(Opcode::CmpNe, t, 3);
    b.brnz(c, left, right);
    b.setBlock(left);
    b.aluTo(Opcode::Add, acc, acc, i);
    b.jmp(latch);
    b.setBlock(right);
    b.aluiTo(Opcode::Xor, acc, acc, 5);
    b.jmp(latch);
    b.setBlock(latch);
    b.aluiTo(Opcode::Add, i, i, 1);
    const RegId more = b.alu(Opcode::CmpLt, i, n);
    b.brnz(more, head, done);
    b.setBlock(done);
    b.emitValue(acc);
    b.ret(acc);
    return prog;
}

interp::ProgramInput
altInput(int64_t n)
{
    interp::ProgramInput in;
    in.mainArgs = {n};
    return in;
}

TEST(FormEdge, SelectsDominantTraceAndUnrolls)
{
    Program prog = makeAltLoop();
    Profiles prof(prog);
    prof.train(prog, altInput(64));

    FormConfig cfg;
    cfg.mode = ProfileMode::Edge;
    cfg.unrollFactor = 4;
    const FormStats stats = formProgram(prog, &prof.edge, &prof.path,
                                        cfg);
    EXPECT_GE(stats.multiBlockTraces, 1u);
    EXPECT_GE(stats.superblocksFormed, 1u);
    EXPECT_GE(stats.enlargedSuperblocks, 1u);

    // The loop superblock lives at the head block and is unrolled 4x:
    // 3 trace blocks per iteration.
    const auto &sb = prog.proc(0).superblocks[1];
    ASSERT_TRUE(sb.isSuperblock);
    EXPECT_EQ(sb.numSrcBlocks, 12u);
    EXPECT_TRUE(sb.isLoop);
}

TEST(FormEdge, MutualMostLikelyBlocksNonMutualExtension)
{
    // X and Y both fall into J; J's most likely predecessor is X, so
    // the hot trace takes J while Y survives as a side entrance.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId head = b.newBlock(); // 1
    const BlockId x = b.newBlock();    // 2
    const BlockId y = b.newBlock();    // 3
    const BlockId j = b.newBlock();    // 4
    const BlockId done = b.newBlock(); // 5
    const RegId n = b.param(0);
    const RegId i = b.freshReg();
    b.ldiTo(i, 0);
    b.jmp(head);
    b.setBlock(head);
    const RegId c = b.alui(Opcode::And, i, 3); // nonzero 3 of 4
    b.brnz(c, x, y);
    b.setBlock(x);
    b.jmp(j);
    b.setBlock(y);
    b.jmp(j);
    b.setBlock(j);
    b.aluiTo(Opcode::Add, i, i, 1);
    const RegId more = b.alu(Opcode::CmpLt, i, n);
    b.brnz(more, head, done);
    b.setBlock(done);
    b.ret(i);

    Profiles prof(prog);
    prof.train(prog, altInput(32));

    FormConfig cfg;
    cfg.mode = ProfileMode::Edge;
    cfg.enlarge = false;
    formProgram(prog, &prof.edge, &prof.path, cfg);
    // Superblock [head, x, j] forms at the head block; y survives as a
    // plain block still reaching the original j (tail duplicate).
    const auto &p0 = prog.proc(0);
    ASSERT_TRUE(p0.superblocks[head].isSuperblock);
    EXPECT_EQ(p0.superblocks[head].numSrcBlocks, 3u);
}

TEST(FormPath, CapturesPeriodicPattern)
{
    Program prog = makeAltLoop();
    Profiles prof(prog);
    prof.train(prog, altInput(64));

    FormConfig cfg;
    cfg.mode = ProfileMode::Path;
    cfg.maxLoopHeads = 4;
    formProgram(prog, &prof.edge, &prof.path, cfg);

    // Path-based enlargement follows the TTTF pattern through the
    // loop: the superblock contains left-iterations AND the right
    // iteration (Fig. 3(b)), unlike classical unrolling which only
    // replicates the dominant body.
    const auto &p0 = prog.proc(0);
    const auto &sb = p0.superblocks[1];
    ASSERT_TRUE(sb.isSuperblock);
    // Count copies of the "right" block's signature instruction
    // (xor-imm 5) inside the merged superblock.
    int rights = 0, lefts = 0;
    for (const auto &ins : p0.blocks[1].instrs) {
        if (ins.op == Opcode::Xor && ins.useImm && ins.imm == 5)
            ++rights;
        if (ins.op == Opcode::Add && !ins.useImm)
            ++lefts;
    }
    EXPECT_GE(rights, 1); // the pattern's F iteration is in the trace
    EXPECT_GE(lefts, 3);  // ... after the three T iterations
}

TEST(FormPath, CompletionThresholdGatesEnlargement)
{
    Program prog = makeAltLoop();
    Profiles prof(prog);
    prof.train(prog, altInput(64));

    FormConfig cfg;
    cfg.mode = ProfileMode::Path;
    cfg.completionThreshold = 1.01; // nothing completes this often
    formProgram(prog, &prof.edge, &prof.path, cfg);
    const auto &sb = prog.proc(0).superblocks[1];
    ASSERT_TRUE(sb.isSuperblock);
    EXPECT_EQ(sb.numSrcBlocks, 3u); // selection only, no enlargement
}

TEST(FormPath, MaxInstrsCapRespected)
{
    Program prog = makeAltLoop();
    Profiles prof(prog);
    prof.train(prog, altInput(64));

    FormConfig cfg;
    cfg.mode = ProfileMode::Path;
    cfg.maxInstrs = 20;
    cfg.maxLoopHeads = 100;
    formProgram(prog, &prof.edge, &prof.path, cfg);
    for (const auto &proc : prog.procs) {
        for (BlockId b2 = 0; b2 < proc.blocks.size(); ++b2) {
            if (proc.superblocks[b2].isSuperblock) {
                EXPECT_LE(proc.blocks[b2].instrs.size(), 24u);
            }
        }
    }
}

TEST(Form, SuperblocksAreSingleEntry)
{
    Program prog = makeAltLoop();
    Profiles prof(prog);
    prof.train(prog, altInput(64));

    FormConfig cfg;
    cfg.mode = ProfileMode::Path;
    formProgram(prog, &prof.edge, &prof.path, cfg);

    // No mid-block position of any superblock is a branch target: all
    // CFG edges enter blocks at their top, which is the superblock
    // invariant tail duplication guarantees.
    std::vector<std::string> errors;
    EXPECT_TRUE(ir::verify(prog, ir::VerifyMode::Superblock, errors))
        << (errors.empty() ? "" : errors.front());
}

TEST(Form, OrdinalsAlignWithInstructions)
{
    Program prog = makeAltLoop();
    Profiles prof(prog);
    prof.train(prog, altInput(64));
    FormConfig cfg;
    cfg.mode = ProfileMode::Path;
    formProgram(prog, &prof.edge, &prof.path, cfg);

    for (const auto &proc : prog.procs) {
        for (BlockId b2 = 0; b2 < proc.blocks.size(); ++b2) {
            const auto &sb = proc.superblocks[b2];
            if (!sb.isSuperblock)
                continue;
            ASSERT_EQ(sb.srcOrdinalOf.size(),
                      proc.blocks[b2].instrs.size());
            // Ordinals are non-decreasing and end at numSrcBlocks-1.
            uint32_t prev = 0;
            for (uint32_t o : sb.srcOrdinalOf) {
                EXPECT_GE(o, prev);
                EXPECT_LT(o, sb.numSrcBlocks);
                prev = o;
            }
        }
    }
}

TEST(Form, UnreachableTailsRemoved)
{
    Program prog = makeAltLoop();
    Profiles prof(prog);
    prof.train(prog, altInput(64));
    const size_t blocks_before = prog.proc(0).blocks.size();

    FormConfig cfg;
    cfg.mode = ProfileMode::Path;
    cfg.enlarge = false; // selection only: the merged [head,left,latch]
                         // trace leaves the original `left` unreachable
    FormStats stats = formProgram(prog, &prof.edge, &prof.path, cfg);
    EXPECT_GT(stats.unreachableRemoved, 0u);
    EXPECT_LE(prog.proc(0).blocks.size(),
              blocks_before + stats.blocksDuplicated);
}

TEST(FormP4e, NonLoopSuperblocksStayTailOnly)
{
    Program prog = makeAltLoop();
    Profiles prof(prog);
    prof.train(prog, altInput(64));

    FormConfig p4;
    p4.mode = ProfileMode::Path;
    FormConfig p4e = p4;
    p4e.nonLoopStopsAtAnyHead = true;

    Program prog_p4 = prog;
    Program prog_p4e = prog;
    formProgram(prog_p4, &prof.edge, &prof.path, p4);
    formProgram(prog_p4e, &prof.edge, &prof.path, p4e);
    // P4e can only shrink code relative to P4.
    EXPECT_LE(prog_p4e.instrCount(), prog_p4.instrCount());
}

TEST(Form, IrreducibleCycleHandledSafely)
{
    // Two entries into the B<->C cycle (no dominating header): neither
    // selection nor enlargement may wedge, and semantics must hold.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId bb = b.newBlock(); // 1
    const BlockId cc = b.newBlock(); // 2
    const BlockId done = b.newBlock(); // 3
    const RegId n = b.param(0);
    const RegId i = b.freshReg();
    b.ldiTo(i, 0);
    {
        const RegId odd = b.alui(Opcode::And, n, 1);
        b.brnz(odd, cc, bb); // enter the cycle at either point
    }
    b.setBlock(bb);
    {
        b.aluiTo(Opcode::Add, i, i, 1);
        const RegId c = b.alu(Opcode::CmpLt, i, n);
        b.brnz(c, cc, done);
    }
    b.setBlock(cc);
    {
        b.aluiTo(Opcode::Add, i, i, 2);
        const RegId c = b.alu(Opcode::CmpLt, i, n);
        b.brnz(c, bb, done);
    }
    b.setBlock(done);
    b.emitValue(i);
    b.ret(i);

    interp::ProgramInput in;
    in.mainArgs = {25};
    interp::Interpreter ref_interp(prog);
    const auto ref = ref_interp.run(in);

    Profiles prof(prog);
    prof.train(prog, in);
    for (const ProfileMode mode : {ProfileMode::Edge, ProfileMode::Path}) {
        Program formed = prog;
        FormConfig cfg;
        cfg.mode = mode;
        formProgram(formed, &prof.edge, &prof.path, cfg);
        interp::Interpreter interp(formed);
        const auto got = interp.run(in);
        EXPECT_EQ(got.output, ref.output);
        EXPECT_EQ(got.returnValue, ref.returnValue);
    }
}

TEST(FormUpward, GrowsTracesAboveTheSeed)
{
    // A preheader chain above a hot loop: the seed lands on the loop
    // head, and upward growth should pull the preheader blocks in.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const BlockId pre1 = b.newBlock();  // 1
    const BlockId pre2 = b.newBlock();  // 2
    const BlockId work = b.newBlock();  // 3 (hot straight-line chain)
    const BlockId done = b.newBlock();  // 4
    const RegId n = b.param(0);
    const RegId acc = b.freshReg();
    b.ldiTo(acc, 0);
    b.jmp(pre1);
    b.setBlock(pre1);
    b.aluiTo(Opcode::Add, acc, acc, 1);
    b.jmp(pre2);
    b.setBlock(pre2);
    b.aluiTo(Opcode::Add, acc, acc, 2);
    b.jmp(work);
    b.setBlock(work);
    b.aluTo(Opcode::Add, acc, acc, n);
    b.jmp(done);
    b.setBlock(done);
    b.emitValue(acc);
    b.ret(acc);

    Profiles prof(prog);
    prof.train(prog, altInput(5));

    // Force the seed away from the entry by seeding priority: all
    // blocks execute once, so the smallest-id nonzero block (entry 0)
    // seeds first and the chain is one trace either way; instead,
    // check upward growth on a program copy where the downward-only
    // selection is handicapped by marking the entry pre-assigned is
    // not expressible — so verify behaviourally: with growUpward the
    // partitioning is unchanged or coarser, and semantics hold.
    for (const ProfileMode mode : {ProfileMode::Edge, ProfileMode::Path}) {
        Program down = prog, up = prog;
        FormConfig cfg;
        cfg.mode = mode;
        formProgram(down, &prof.edge, &prof.path, cfg);
        cfg.growUpward = true;
        formProgram(up, &prof.edge, &prof.path, cfg);
        // Upward growth can only merge more blocks into superblocks.
        EXPECT_LE(up.proc(0).blocks.size(), down.proc(0).blocks.size());

        interp::Interpreter i1(down), i2(up);
        EXPECT_EQ(i1.run(altInput(5)).output, i2.run(altInput(5)).output);
    }
}

/** Upward growth must preserve behaviour on random programs too. */
class UpwardSemantics : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(UpwardSemantics, OutputInvariant)
{
    pstest::GeneratedProgram gen = pstest::makeRandomProgram(GetParam());
    interp::Interpreter ref_interp(gen.program);
    const auto ref = ref_interp.run(gen.input);

    Profiles prof(gen.program);
    prof.train(gen.program, gen.input);

    for (const ProfileMode mode : {ProfileMode::Edge, ProfileMode::Path}) {
        Program prog = gen.program;
        FormConfig cfg;
        cfg.mode = mode;
        cfg.growUpward = true;
        formProgram(prog, &prof.edge, &prof.path, cfg);
        interp::Interpreter interp(prog);
        const auto got = interp.run(gen.input);
        EXPECT_EQ(got.output, ref.output) << "seed " << GetParam();
        EXPECT_EQ(got.returnValue, ref.returnValue)
            << "seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpwardSemantics,
                         ::testing::Range<uint64_t>(1, 11));

/** Differential property: formation preserves program behaviour. */
struct FormCase
{
    uint64_t seed;
    ProfileMode mode;
    bool p4e;
};

class FormSemantics : public ::testing::TestWithParam<FormCase>
{};

TEST_P(FormSemantics, OutputInvariant)
{
    const FormCase &c = GetParam();
    pstest::GeneratedProgram gen = pstest::makeRandomProgram(c.seed);

    interp::Interpreter ref_interp(gen.program);
    const auto ref = ref_interp.run(gen.input);

    Profiles prof(gen.program);
    prof.train(gen.program, gen.input);

    Program prog = gen.program;
    FormConfig cfg;
    cfg.mode = c.mode;
    cfg.nonLoopStopsAtAnyHead = c.p4e;
    formProgram(prog, &prof.edge, &prof.path, cfg);

    interp::Interpreter interp(prog);
    const auto got = interp.run(gen.input);
    EXPECT_EQ(got.output, ref.output) << "seed " << c.seed;
    EXPECT_EQ(got.returnValue, ref.returnValue) << "seed " << c.seed;
}

std::vector<FormCase>
formCases()
{
    std::vector<FormCase> cases;
    for (uint64_t seed = 1; seed <= 15; ++seed) {
        cases.push_back({seed, ProfileMode::Edge, false});
        cases.push_back({seed, ProfileMode::Path, false});
        cases.push_back({seed, ProfileMode::Path, true});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(SeedsAndModes, FormSemantics,
                         ::testing::ValuesIn(formCases()));

} // namespace
} // namespace pathsched::form
