#include "testutil.hpp"

#include <algorithm>

#include "gen/generator.hpp"

namespace pathsched::testing {

GeneratedProgram
makeRandomProgram(uint64_t seed, const GenParams &params)
{
    gen::GenSpec spec;
    spec.seed = seed;
    spec.procs = params.numProcs;
    spec.depth = params.maxDepth;
    spec.loopDepth = std::min(params.maxDepth, 3u);
    spec.stmts = params.maxStmtsPerRegion;
    spec.memWords = params.memWords;
    if (!params.allowCalls)
        spec.callDensity = 0;
    if (!params.allowLoads)
        spec.loadDensity = 0;
    if (!params.allowStores)
        spec.storeDensity = 0;
    if (!params.allowEmit)
        spec.emitDensity = 0;

    gen::Workload w = gen::generate(spec);
    GeneratedProgram out;
    out.program = std::move(w.program);
    out.input = std::move(w.train);
    return out;
}

} // namespace pathsched::testing
