#include "testutil.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace pathsched::testing {

using ir::BlockId;
using ir::IrBuilder;
using ir::Opcode;
using ir::ProcId;
using ir::RegId;

namespace {

const Opcode kAluOps[] = {
    Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And, Opcode::Or,
    Opcode::Xor, Opcode::Shl, Opcode::Shr, Opcode::CmpEq, Opcode::CmpNe,
    Opcode::CmpLt, Opcode::CmpLe, Opcode::CmpGt, Opcode::CmpGe,
    Opcode::Div, Opcode::Rem,
};

/** Per-program generation context. */
class Generator
{
  public:
    Generator(uint64_t seed, const GenParams &params)
        : rng_(seed), params_(params), builder_(out_.program)
    {}

    GeneratedProgram
    run()
    {
        out_.program.memWords = params_.memWords;

        // Leaf-to-root: procedure k may call procedures < k, so the
        // call graph is acyclic and termination is structural.
        std::vector<ProcId> callable;
        for (uint32_t k = 0; k < params_.numProcs; ++k) {
            const uint32_t nparams = uint32_t(rng_.below(3));
            const ProcId p = genProc("proc" + std::to_string(k), nparams,
                                     callable);
            callable.push_back(p);
        }
        const ProcId main =
            genProc("main", uint32_t(rng_.below(3)), callable);
        out_.program.mainProc = main;

        const auto &mp = out_.program.proc(main);
        for (uint32_t a = 0; a < mp.numParams; ++a)
            out_.input.mainArgs.push_back(rng_.range(-64, 64));
        for (uint64_t w = 0; w < params_.memWords; ++w)
            out_.input.memImage.push_back(rng_.range(-100, 100));
        return std::move(out_);
    }

  private:
    /** Registers currently holding defined values in the open proc. */
    std::vector<RegId> vars_;
    RegId memBase_ = ir::kNoReg;

    RegId
    pickVar()
    {
        return vars_[rng_.below(vars_.size())];
    }

    void
    noteVar(RegId v)
    {
        if (vars_.size() >= 12) {
            vars_[rng_.below(vars_.size())] = v;
        } else {
            vars_.push_back(v);
        }
    }

    ProcId
    genProc(const std::string &name, uint32_t nparams,
            const std::vector<ProcId> &callable)
    {
        const ProcId p = builder_.newProc(name, nparams);
        vars_.clear();
        for (uint32_t a = 0; a < nparams; ++a)
            vars_.push_back(builder_.param(a));
        for (int k = 0; k < 3; ++k)
            vars_.push_back(builder_.ldi(rng_.range(-20, 20)));
        memBase_ = builder_.ldi(0);

        genRegion(0, callable);
        builder_.ret(pickVar());
        return p;
    }

    void
    genRegion(uint32_t depth, const std::vector<ProcId> &callable)
    {
        const uint64_t stmts = 1 + rng_.below(params_.maxStmtsPerRegion);
        for (uint64_t s = 0; s < stmts; ++s)
            genStatement(depth, callable);
    }

    void
    genStatement(uint32_t depth, const std::vector<ProcId> &callable)
    {
        const double roll = rng_.uniform();
        if (roll < 0.35) {
            genAlu();
        } else if (roll < 0.45 && params_.allowLoads) {
            const RegId v = builder_.ld(
                memBase_, int64_t(rng_.below(params_.memWords)));
            noteVar(v);
        } else if (roll < 0.55 && params_.allowStores) {
            builder_.st(memBase_, int64_t(rng_.below(params_.memWords)),
                        pickVar());
        } else if (roll < 0.62 && params_.allowEmit) {
            builder_.emitValue(pickVar());
        } else if (roll < 0.72 && params_.allowCalls &&
                   !callable.empty()) {
            const ProcId callee =
                callable[rng_.below(callable.size())];
            std::vector<RegId> args;
            for (uint32_t a = 0;
                 a < out_.program.proc(callee).numParams; ++a) {
                args.push_back(pickVar());
            }
            noteVar(builder_.callValue(callee, std::move(args)));
        } else if (roll < 0.88 && depth < params_.maxDepth) {
            genIf(depth, callable);
        } else if (depth < params_.maxDepth) {
            genLoop(depth, callable);
        } else {
            genAlu();
        }
    }

    void
    genAlu()
    {
        const Opcode op = kAluOps[rng_.below(std::size(kAluOps))];
        const bool use_imm = rng_.chance(0.4);
        const bool overwrite = rng_.chance(0.3);
        RegId dst;
        if (use_imm) {
            dst = overwrite ? pickVar() : builder_.freshReg();
            builder_.aluiTo(op, dst, pickVar(), rng_.range(-32, 32));
        } else {
            dst = overwrite ? pickVar() : builder_.freshReg();
            builder_.aluTo(op, dst, pickVar(), pickVar());
        }
        noteVar(dst);
    }

    void
    genIf(uint32_t depth, const std::vector<ProcId> &callable)
    {
        const RegId cond = builder_.alui(Opcode::And, pickVar(),
                                         int64_t(1 + rng_.below(7)));
        const BlockId then_b = builder_.newBlock();
        const BlockId else_b = builder_.newBlock();
        const BlockId join_b = builder_.newBlock();
        builder_.brnz(cond, then_b, else_b);

        // Both arms see the same incoming vars; registers defined in
        // only one arm must not escape, so the var pool is restored.
        const std::vector<RegId> saved = vars_;
        builder_.setBlock(then_b);
        genRegion(depth + 1, callable);
        builder_.jmp(join_b);
        vars_ = saved;
        builder_.setBlock(else_b);
        genRegion(depth + 1, callable);
        builder_.jmp(join_b);
        vars_ = saved;
        builder_.setBlock(join_b);
    }

    void
    genLoop(uint32_t depth, const std::vector<ProcId> &callable)
    {
        const int64_t trips = rng_.range(1, 6);
        const RegId counter = builder_.freshReg();
        builder_.ldiTo(counter, trips);
        const BlockId head = builder_.newBlock();
        const BlockId exit_b = builder_.newBlock();
        builder_.jmp(head);

        const std::vector<RegId> saved = vars_;
        builder_.setBlock(head);
        genRegion(depth + 1, callable);
        vars_ = saved; // loop-carried defs stay within the body
        builder_.aluiTo(Opcode::Sub, counter, counter, 1);
        const RegId more = builder_.alui(Opcode::CmpGt, counter, 0);
        builder_.brnz(more, head, exit_b);
        builder_.setBlock(exit_b);
    }

    Rng rng_;
    GenParams params_;
    GeneratedProgram out_;
    IrBuilder builder_;
};

} // namespace

GeneratedProgram
makeRandomProgram(uint64_t seed, const GenParams &params)
{
    return Generator(seed, params).run();
}

} // namespace pathsched::testing
