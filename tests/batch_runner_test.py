#!/usr/bin/env python3
"""Integration tests for pathsched_batch (docs/batch.md).

Covers the crash-isolation contract end to end, against the real
binaries:

  1. a task that exceeds --task-timeout-ms is killed, retried the
     configured number of times, journaled per attempt, and the suite
     exits 3;
  2. a degraded child (exit 2, via --inject) makes the suite exit 2
     with a complete journal;
  3. SIGKILLing the *runner* mid-suite loses nothing: rerunning with
     --resume skips every journaled completion and the union of the two
     runs executes every task exactly once;
  4. SIGTERM stops the suite gracefully: children are killed, the
     journal gains a suite-abort record and is flushed, the runner
     exits 4, and --resume finishes the remainder.

Usage: batch_runner_test.py <pathsched_batch> <pathsched_cli>
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

BATCH = sys.argv[1]
CLI = sys.argv[2]

failures = []


def check(cond, what):
    tag = "ok" if cond else "FAIL"
    print(f"  [{tag}] {what}")
    if not cond:
        failures.append(what)


def read_journal(path):
    events = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def run_batch(args, **kw):
    return subprocess.run(
        [BATCH, "--cli", CLI] + args,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        **kw,
    )


def test_timeout_and_retries(tmp):
    print("timeout + bounded retries:")
    journal = os.path.join(tmp, "timeout.jsonl")
    r = run_batch(
        ["--workloads", "wc", "--configs", "P4",
         "--task-timeout-ms", "1", "--retries", "1",
         "--backoff-ms", "10", "--journal", journal])
    check(r.returncode == 3, f"suite exit 3 on permanent failure "
                             f"(got {r.returncode})")
    ev = read_journal(journal)
    done = [e for e in ev if e.get("event") == "done"]
    check(len(done) == 2, f"two journaled attempts (got {len(done)})")
    check(all(e["outcome"] == "timeout" for e in done),
          "both attempts timed out")
    check([e["attempt"] for e in done] == [1, 2],
          "attempts numbered 1 then 2")
    end = [e for e in ev if e.get("event") == "suite-end"]
    check(len(end) == 1 and end[0]["failed"] == 1,
          "suite-end records the permanent failure")


def test_degraded_exit(tmp):
    print("degraded child propagates exit 2:")
    journal = os.path.join(tmp, "degraded.jsonl")
    r = run_batch(
        ["--workloads", "wc", "--configs", "P4", "--journal", journal,
         "--", "--inject", "stage=compact,proc=0"])
    check(r.returncode == 2, f"suite exit 2 (got {r.returncode})")
    ev = read_journal(journal)
    done = [e for e in ev if e.get("event") == "done"]
    check(len(done) == 1 and done[0]["outcome"] == "degraded",
          "journal records the degraded outcome")
    check(done[0]["exit"] == 2, "child exit code journaled")


def test_kill_runner_and_resume(tmp):
    print("SIGKILL the runner mid-suite, then --resume:")
    journal = os.path.join(tmp, "resume.jsonl")
    workloads = "wc,com,alt,ph"
    configs = "BB,M4,M16,P4,P4e"
    args = ["--workloads", workloads, "--configs", configs,
            "--jobs", "1", "--journal", journal]
    proc = subprocess.Popen([BATCH, "--cli", CLI] + args,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)

    # Wait until at least two tasks are journaled as done, then kill
    # the runner without any grace (the journal must already be safe).
    deadline = time.time() + 60
    while time.time() < deadline:
        if proc.poll() is not None:
            break
        try:
            done = [e for e in read_journal(journal)
                    if e.get("event") == "done"]
        except FileNotFoundError:
            done = []
        if len(done) >= 2:
            break
        time.sleep(0.01)
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
        proc.wait()
        check(True, "runner killed mid-suite")
    else:
        # The suite finished before we could kill it; --resume must
        # then be a pure no-op, which the assertions below still cover.
        check(True, "suite finished before the kill (fast machine)")

    first = read_journal(journal)
    first_done = {e["task"] for e in first if e.get("event") == "done"
                  and e["outcome"] in ("ok", "degraded")}
    check(len(first_done) >= 2, "at least two tasks journaled before "
                                "the kill")

    r = run_batch(args + ["--resume"])
    check(r.returncode == 0, f"resumed suite exit 0 (got "
                             f"{r.returncode})")
    ev = read_journal(journal)

    # The resumed run's header records the skips.
    headers = [e for e in ev if e.get("event") == "suite-start"]
    check(len(headers) == 2, "one header per invocation")
    check(headers[1]["skipped"] == len(first_done),
          f"resume skipped exactly the completed tasks "
          f"({headers[1]['skipped']} vs {len(first_done)})")

    # No completed task was re-executed: each task has exactly one
    # successful done event across both runs, and completed tasks have
    # no start events after the resume header.
    all_tasks = {f"{w}/{c}" for w in workloads.split(",")
                 for c in configs.split(",")}
    ok_done = {}
    for e in ev:
        if e.get("event") == "done" and e["outcome"] in ("ok",
                                                         "degraded"):
            ok_done[e["task"]] = ok_done.get(e["task"], 0) + 1
    check(set(ok_done) == all_tasks,
          "every task completed exactly once across both runs")
    check(all(n == 1 for n in ok_done.values()),
          f"no task completed twice ({ok_done})")
    resume_idx = ev.index(headers[1])
    restarted = {e["task"] for e in ev[resume_idx:]
                 if e.get("event") == "start"}
    check(not (restarted & first_done),
          "no completed task was re-executed after --resume")

    ends = [e for e in ev if e.get("event") == "suite-end"]
    final = ends[-1]
    check(final["ok"] + final["degraded"] + final["failed"]
          == len(all_tasks),
          "final summary covers all tasks exactly once")


def test_sigterm_graceful_interrupt(tmp):
    print("SIGTERM mid-suite: graceful stop, exit 4, resumable journal")
    journal = os.path.join(tmp, "sigterm.jsonl")
    workloads = "wc,com,alt,ph"
    configs = "BB,M4,M16,P4,P4e"
    args = ["--workloads", workloads, "--configs", configs,
            "--jobs", "1", "--journal", journal]
    proc = subprocess.Popen([BATCH, "--cli", CLI] + args,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE, text=True)

    deadline = time.time() + 60
    while time.time() < deadline:
        if proc.poll() is not None:
            break
        try:
            done = [e for e in read_journal(journal)
                    if e.get("event") == "done"]
        except FileNotFoundError:
            done = []
        if len(done) >= 1:
            break
        time.sleep(0.01)

    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=60)
        check(proc.returncode == 4,
              f"interrupted suite exits 4 (got {proc.returncode})")
        check("interrupted by signal" in stderr,
              "stderr explains the interruption")
        ev = read_journal(journal)
        aborts = [e for e in ev if e.get("event") == "suite-abort"]
        check(len(aborts) == 1 and aborts[0]["signal"] == 15,
              "journal records one suite-abort with the signal number")
        # Nothing after the abort record: the journal was flushed and
        # closed before exit.
        check(ev[-1]["event"] == "suite-abort",
              "suite-abort is the final journal record")
    else:
        check(proc.returncode == 0,
              "suite finished before the signal (fast machine)")

    # The journal is clean: --resume completes the remainder.
    r = run_batch(args + ["--resume"])
    check(r.returncode == 0, f"resumed suite exit 0 (got "
                             f"{r.returncode})")
    ev = read_journal(journal)
    ok_done = {}
    for e in ev:
        if e.get("event") == "done" and e["outcome"] in ("ok",
                                                         "degraded"):
            ok_done[e["task"]] = ok_done.get(e["task"], 0) + 1
    all_tasks = {f"{w}/{c}" for w in workloads.split(",")
                 for c in configs.split(",")}
    check(set(ok_done) == all_tasks,
          "every task completed across interrupt + resume")
    check(all(n == 1 for n in ok_done.values()),
          f"no task completed twice ({ok_done})")


def test_corrupt_journal_line_resume(tmp):
    print("corrupt (torn) journal line: --resume skips it and re-runs")
    journal = os.path.join(tmp, "crc.jsonl")
    args = ["--workloads", "wc,alt", "--configs", "BB,M4",
            "--jobs", "1", "--journal", journal]
    r = run_batch(args)
    check(r.returncode == 0, f"initial suite exit 0 (got {r.returncode})")

    # Every journal line carries a CRC header.
    with open(journal) as f:
        lines = [l for l in f.read().splitlines() if l]
    check(all(l.startswith('{"crc":"') for l in lines),
          "every journal line is checksummed")

    # Tear the *last* done line mid-record, as a crash during write
    # would, and flip a digit inside an intact earlier done line.
    done_idx = [i for i, l in enumerate(lines)
                if '"event":"done"' in l]
    check(len(done_idx) >= 2, "at least two done lines to corrupt")
    torn = done_idx[-1]
    lines[torn] = lines[torn][: len(lines[torn]) // 2]
    with open(journal, "w") as f:
        f.write("\n".join(lines) + "\n")

    r = run_batch(args + ["--resume"])
    check(r.returncode == 0, f"resume exit 0 (got {r.returncode})")
    check("corrupt line" in r.stderr,
          "resume warns about the corrupt line")

    # The torn line is not valid JSON, so read leniently.
    ev = read_journal_lenient(journal)
    headers = [e for e in ev if e.get("event") == "suite-start"]
    check(headers[-1].get("journalCorrupt", 0) == 1,
          f"suite-start counts 1 corrupt line "
          f"(got {headers[-1].get('journalCorrupt')})")
    # 4 tasks ran, 3 clean done lines survived: resume skips 3 and
    # re-runs exactly the task whose done record was torn.
    check(headers[-1]["skipped"] == 3,
          f"resume skipped the 3 intact tasks "
          f"(got {headers[-1]['skipped']})")
    resume_idx = ev.index(headers[-1])
    rerun = {e["task"] for e in ev[resume_idx:]
             if e.get("event") == "start"}
    check(len(rerun) == 1, f"exactly one task re-ran (got {rerun})")


def read_journal_lenient(path):
    events = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                pass
    return events


def main():
    with tempfile.TemporaryDirectory() as tmp:
        test_timeout_and_retries(tmp)
        test_degraded_exit(tmp)
        test_kill_runner_and_resume(tmp)
    with tempfile.TemporaryDirectory() as tmp:
        test_sigterm_graceful_interrupt(tmp)
    with tempfile.TemporaryDirectory() as tmp:
        test_corrupt_journal_line_resume(tmp)
    if failures:
        print(f"\n{len(failures)} check(s) FAILED")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
