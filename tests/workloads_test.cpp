/**
 * @file
 * Tests for the 14 Table-1 workloads: structural validity, distinct
 * train/test inputs, and per-benchmark behavioural checks.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/verifier.hpp"
#include "workloads/textutil.hpp"
#include "workloads/workloads.hpp"

namespace pathsched::workloads {
namespace {

class EveryWorkload : public ::testing::TestWithParam<std::string>
{};

TEST_P(EveryWorkload, VerifiesStrict)
{
    const Workload w = makeByName(GetParam());
    std::vector<std::string> errors;
    EXPECT_TRUE(ir::verify(w.program, ir::VerifyMode::Strict, errors))
        << (errors.empty() ? "" : errors.front());
    EXPECT_EQ(w.name, GetParam());
    EXPECT_FALSE(w.description.empty());
    EXPECT_FALSE(w.group.empty());
}

TEST_P(EveryWorkload, TrainAndTestInputsDiffer)
{
    const Workload w = makeByName(GetParam());
    EXPECT_TRUE(w.train.mainArgs != w.test.mainArgs ||
                w.train.memImage != w.test.memImage);
}

TEST_P(EveryWorkload, RunsAndProducesOutput)
{
    const Workload w = makeByName(GetParam());
    for (const auto *input : {&w.train, &w.test}) {
        interp::Interpreter interp(w.program);
        const auto r = interp.run(*input);
        EXPECT_FALSE(r.output.empty()) << GetParam();
        EXPECT_GT(r.dynBranches, 1000u) << GetParam();
        // Within simulation budget: the suite must stay laptop-scale.
        EXPECT_LT(r.dynInstrs, 30'000'000u) << GetParam();
    }
}

TEST_P(EveryWorkload, DeterministicConstruction)
{
    const Workload a = makeByName(GetParam());
    const Workload b = makeByName(GetParam());
    EXPECT_EQ(a.program.instrCount(), b.program.instrCount());
    EXPECT_EQ(a.test.memImage, b.test.memImage);
    interp::Interpreter ia(a.program), ib(b.program);
    EXPECT_EQ(ia.run(a.test).output, ib.run(b.test).output);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, EveryWorkload, ::testing::ValuesIn(benchmarkNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Workloads, NamesAreUniqueAndComplete)
{
    const auto names = benchmarkNames();
    EXPECT_EQ(names.size(), 14u);
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
    EXPECT_EQ(standardBenchmarks().size(), 14u);
}

TEST(Workloads, WcCountsMatchHostReference)
{
    const Workload w = makeWc();
    interp::Interpreter interp(w.program);
    const auto r = interp.run(w.test);
    ASSERT_EQ(r.output.size(), 3u);

    // Host-side reference word count over the same image.
    const auto &mem = w.test.memImage;
    const int64_t n = mem[0];
    int64_t lines = 0, words = 0, chars = 0;
    bool inword = false;
    for (int64_t i = 0; i < n; ++i) {
        const int64_t c = mem[size_t(1 + i)];
        ++chars;
        if (c == ' ' || c == '\n') {
            inword = false;
            lines += c == '\n';
        } else if (!inword) {
            inword = true;
            ++words;
        }
    }
    EXPECT_EQ(r.output[0], lines);
    EXPECT_EQ(r.output[1], words);
    EXPECT_EQ(r.output[2], chars);
}

TEST(Workloads, AltPatternIsPeriodicTTTF)
{
    // The alt loop must branch T,T,T,F repeatedly: with n = 8 the
    // taken/total ratio is exactly 6/8 on the pattern branch.
    const Workload w = makeAlt();
    interp::ProgramInput in;
    in.mainArgs = {8};
    interp::Interpreter interp(w.program);
    const auto r = interp.run(in);
    EXPECT_EQ(r.returnValue, r.output.back());
}

TEST(Workloads, CompressFindsMatches)
{
    const Workload w = makeCompress();
    interp::Interpreter interp(w.program);
    const auto r = interp.run(w.test);
    ASSERT_EQ(r.output.size(), 2u);
    // The dictionary-built input must produce many LZ matches.
    EXPECT_GT(r.output[1], 1000);
}

TEST(Workloads, EqntottVerdictsAreBounded)
{
    const Workload w = makeEqntott();
    interp::Interpreter interp(w.program);
    const auto r = interp.run(w.test);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_GE(r.output[0], 0); // masked accumulator
}

TEST(Workloads, VortexInsertsAndValidates)
{
    const Workload w = makeVortex();
    interp::Interpreter interp(w.program);
    const auto r = interp.run(w.test);
    ASSERT_EQ(r.output.size(), 2u);
    EXPECT_GT(r.output[1], 5000); // inserted record count
}

TEST(Workloads, GccAndGoHaveLargeFootprints)
{
    // The miss-rate experiments need footprints beyond the 32KB cache.
    EXPECT_GT(makeGcc().program.instrCount() * 4, 32u * 1024u);
    EXPECT_GT(makeGo().program.instrCount() * 4, 24u * 1024u);
}

TEST(TextUtil, GeneratorsAreSeededAndSized)
{
    const auto a = makeText(1, 1000);
    const auto b = makeText(1, 1000);
    const auto c = makeText(2, 1000);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a.size(), 1000u);

    const auto d = makeCompressibleData(3, 500);
    EXPECT_EQ(d.size(), 500u);
    const auto v = makeRandomValues(4, 100, 10);
    EXPECT_EQ(v.size(), 100u);
    for (const int64_t x : v) {
        EXPECT_GE(x, 0);
        EXPECT_LT(x, 10);
    }
}

} // namespace
} // namespace pathsched::workloads
