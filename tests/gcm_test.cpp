/**
 * @file
 * Unit tests for global code motion (sched/gcm.hpp): loop-invariant
 * hoisting, the dominating-def legality bound, side-effect pinning,
 * latency-aware tie-breaking, and differential semantics preservation
 * on random programs.
 */

#include <gtest/gtest.h>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "machine/machine.hpp"
#include "sched/gcm.hpp"
#include "testutil.hpp"

namespace pstest = pathsched::testing;

namespace pathsched::sched {
namespace {

using ir::BlockId;
using ir::IrBuilder;
using ir::Opcode;
using ir::Program;
using ir::RegId;

interp::RunResult
runProgram(const Program &prog, const interp::ProgramInput &in = {})
{
    interp::Interpreter interp(prog);
    return interp.run(in);
}

size_t
countOpcode(const ir::Procedure &proc, BlockId b, Opcode op)
{
    size_t n = 0;
    for (const auto &ins : proc.blocks[b].instrs)
        if (ins.op == op)
            ++n;
    return n;
}

/**
 * entry(0): ra=5, ri=3, racc=0 -> head(1): brnz -> body(2) | exit(3);
 * body holds @c rt = ra * 7.  When @p defInHead, ra is (re)defined in
 * the loop head instead, pinning the multiply inside the loop.
 */
Program
makeLoopProgram(bool defInHead, BlockId &entry, BlockId &body)
{
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    entry = b.currentBlock();
    const BlockId head = b.newBlock();
    body = b.newBlock();
    const BlockId exit_b = b.newBlock();
    const RegId ra = b.freshReg();
    const RegId ri = b.freshReg();
    const RegId racc = b.freshReg();
    b.ldiTo(ra, 5);
    b.ldiTo(ri, 3);
    b.ldiTo(racc, 0);
    b.jmp(head);
    b.setBlock(head);
    if (defInHead)
        b.aluiTo(Opcode::Add, ra, ra, 1); // per-iteration def of ra
    const RegId c = b.alui(Opcode::CmpGt, ri, 0);
    b.brnz(c, body, exit_b);
    b.setBlock(body);
    const RegId rt = b.muli(ra, 7); // the hoisting candidate
    b.aluTo(Opcode::Add, racc, racc, rt);
    b.aluiTo(Opcode::Sub, ri, ri, 1);
    b.jmp(head);
    b.setBlock(exit_b);
    b.emitValue(racc);
    b.ret(racc);
    return prog;
}

TEST(Gcm, HoistsLoopInvariantOutOfLoop)
{
    BlockId entry = 0, body = 0;
    Program prog = makeLoopProgram(false, entry, body);
    const auto before = runProgram(prog);

    GcmStats stats;
    ASSERT_TRUE(gcmProcedure(prog, prog.mainProc, {}, stats).ok());
    EXPECT_TRUE(ir::verifyStatus(prog, ir::VerifyMode::Strict).ok());

    // The multiply left the loop body for the entry block.
    EXPECT_EQ(countOpcode(prog.proc(prog.mainProc), body, Opcode::Mul),
              0u);
    EXPECT_EQ(countOpcode(prog.proc(prog.mainProc), entry, Opcode::Mul),
              1u);
    EXPECT_GE(stats.hoisted, 1u);
    EXPECT_GE(stats.loopHoisted, 1u);

    const auto after = runProgram(prog);
    EXPECT_EQ(after.output, before.output);
    EXPECT_EQ(after.returnValue, before.returnValue);
}

TEST(Gcm, NeverHoistsAboveDominatingDef)
{
    // Same shape, but ra is redefined in the loop head: every block
    // above the body now has a def of the multiply's source between it
    // and the original position, so the multiply must stay put.
    BlockId entry = 0, body = 0;
    Program prog = makeLoopProgram(true, entry, body);
    const auto before = runProgram(prog);

    GcmStats stats;
    ASSERT_TRUE(gcmProcedure(prog, prog.mainProc, {}, stats).ok());
    EXPECT_TRUE(ir::verifyStatus(prog, ir::VerifyMode::Strict).ok());
    EXPECT_EQ(countOpcode(prog.proc(prog.mainProc), body, Opcode::Mul),
              1u);
    EXPECT_EQ(countOpcode(prog.proc(prog.mainProc), entry, Opcode::Mul),
              0u);

    const auto after = runProgram(prog);
    EXPECT_EQ(after.output, before.output);
    EXPECT_EQ(after.returnValue, before.returnValue);
}

TEST(Gcm, SideEffectsKeepTheirOrder)
{
    // Stores, loads and emits are pinned; the loop body's side-effect
    // sequence must survive GCM byte-for-byte.
    Program prog;
    IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 0);
    const BlockId head = b.newBlock();
    const BlockId body = b.newBlock();
    const BlockId exit_b = b.newBlock();
    const RegId base = b.freshReg();
    const RegId ri = b.freshReg();
    b.ldiTo(base, 0);
    b.ldiTo(ri, 3);
    b.jmp(head);
    b.setBlock(head);
    const RegId c = b.alui(Opcode::CmpGt, ri, 0);
    b.brnz(c, body, exit_b);
    b.setBlock(body);
    b.st(base, 0, ri);
    const RegId rv = b.ld(base, 0);
    b.emitValue(rv);
    b.aluiTo(Opcode::Sub, ri, ri, 1);
    b.jmp(head);
    b.setBlock(exit_b);
    b.ret(ri);
    prog.memWords = 1;

    const std::string body_before =
        ir::toString(prog.proc(prog.mainProc));
    const auto before = runProgram(prog);

    GcmStats stats;
    ASSERT_TRUE(gcmProcedure(prog, prog.mainProc, {}, stats).ok());
    EXPECT_EQ(ir::toString(prog.proc(prog.mainProc)), body_before);
    EXPECT_EQ(stats.hoisted, 0u);

    const auto after = runProgram(prog);
    EXPECT_EQ(after.output, before.output);
}

TEST(Gcm, LatencyAwareHoistNeedsAMachineModel)
{
    // entry -> tail, straight line, equal loop depth and frequency: a
    // long-latency multiply hoists only when a machine model says its
    // latency is worth overlapping with the jump.
    const auto build = [](BlockId &entry, BlockId &tail) {
        Program prog;
        IrBuilder b(prog);
        prog.mainProc = b.newProc("main", 0);
        entry = b.currentBlock();
        tail = b.newBlock();
        const RegId ra = b.ldi(5);
        b.jmp(tail);
        b.setBlock(tail);
        const RegId rt = b.muli(ra, 7);
        b.emitValue(rt);
        b.ret(rt);
        return prog;
    };

    BlockId entry = 0, tail = 0;
    {
        Program prog = build(entry, tail);
        GcmStats stats;
        ASSERT_TRUE(gcmProcedure(prog, prog.mainProc, {}, stats).ok());
        // Unit latency: a tie keeps the instruction late.
        EXPECT_EQ(
            countOpcode(prog.proc(prog.mainProc), tail, Opcode::Mul),
            1u);
        EXPECT_EQ(stats.latencyHoisted, 0u);
    }
    {
        Program prog = build(entry, tail);
        const machine::MachineModel mm =
            machine::MachineModel::realisticLatency();
        ASSERT_GE(mm.latencyOf(Opcode::Mul), 2u);
        GcmOptions opts;
        opts.machine = &mm;
        GcmStats stats;
        const auto before = runProgram(prog);
        ASSERT_TRUE(
            gcmProcedure(prog, prog.mainProc, opts, stats).ok());
        EXPECT_EQ(
            countOpcode(prog.proc(prog.mainProc), entry, Opcode::Mul),
            1u);
        EXPECT_EQ(stats.latencyHoisted, 1u);
        EXPECT_EQ(runProgram(prog).output, before.output);
    }
}

TEST(Gcm, RandomProgramsKeepTheirSemantics)
{
    // Differential property test: GCM must preserve output on the same
    // generator the fuzz driver uses.
    for (uint64_t seed = 1; seed <= 25; ++seed) {
        pstest::GeneratedProgram g = pstest::makeRandomProgram(seed);
        Program transformed = g.program;
        GcmStats stats;
        bool ok = true;
        for (ir::ProcId p = 0; p < transformed.procs.size(); ++p) {
            const Status st = gcmProcedure(transformed, p, {}, stats);
            ASSERT_TRUE(st.ok())
                << "seed " << seed << ": " << st.toString();
            ok = ok && st.ok();
        }
        ASSERT_TRUE(ok);
        const auto before = runProgram(g.program, g.input);
        const auto after = runProgram(transformed, g.input);
        EXPECT_EQ(after.output, before.output) << "seed " << seed;
        EXPECT_EQ(after.returnValue, before.returnValue)
            << "seed " << seed;
    }
}

} // namespace
} // namespace pathsched::sched
