/**
 * @file
 * Tests for the direct-mapped instruction cache model.
 */

#include <gtest/gtest.h>

#include "icache/icache.hpp"

namespace pathsched::icache {
namespace {

TEST(ICache, DefaultsMatchThePaper)
{
    ICache c;
    EXPECT_EQ(c.params().sizeBytes, 32u * 1024u);
    EXPECT_EQ(c.params().lineBytes, 32u);
    EXPECT_EQ(c.params().missPenaltyCycles, 6u);
}

TEST(ICache, ColdMissThenHit)
{
    ICache c;
    EXPECT_EQ(c.access(0), 6u);
    EXPECT_EQ(c.access(4), 0u);  // same line
    EXPECT_EQ(c.access(31), 0u); // still the same 32B line
    EXPECT_EQ(c.access(32), 6u); // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(ICache, DirectMappedConflict)
{
    ICache::Params p;
    p.sizeBytes = 64; // two 32B lines
    p.lineBytes = 32;
    p.missPenaltyCycles = 10;
    ICache c(p);
    EXPECT_EQ(c.access(0), 10u);
    EXPECT_EQ(c.access(64), 10u); // maps to the same set, evicts
    EXPECT_EQ(c.access(0), 10u);  // conflict miss
    EXPECT_EQ(c.access(32), 10u); // the other set, independent
    EXPECT_EQ(c.access(32), 0u);
}

TEST(ICache, ResetClearsStateAndStats)
{
    ICache c;
    c.access(0);
    c.access(0);
    c.reset();
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_EQ(c.access(0), 6u); // cold again
}

TEST(ICache, MissRateZeroWhenUntouched)
{
    ICache c;
    EXPECT_DOUBLE_EQ(c.missRate(), 0.0);
}

} // namespace
} // namespace pathsched::icache
