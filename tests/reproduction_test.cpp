/**
 * @file
 * Executable reproduction claims: the qualitative shapes EXPERIMENTS.md
 * reports for every figure are asserted here, so a regression that
 * silently flips a paper-level conclusion fails CI rather than only
 * changing a bench printout.
 *
 * These tests run full pipelines over the whole suite; they are the
 * slowest in the repository (a few seconds each) and deliberately
 * assert *shapes* (who wins, direction of effects), never absolute
 * cycle counts.
 */

#include <gtest/gtest.h>

#include <map>

#include "pipeline/pipeline.hpp"
#include "support/statistics.hpp"
#include "workloads/workloads.hpp"

namespace pathsched {
namespace {

using pipeline::PipelineOptions;
using pipeline::PipelineResult;
using pipeline::runPipeline;
using pipeline::SchedConfig;

/** Shared cross-test result cache (each TEST re-runs are expensive). */
class Suite
{
  public:
    static Suite &
    instance()
    {
        static Suite s;
        return s;
    }

    const PipelineResult &
    get(const std::string &name, SchedConfig config, bool icache)
    {
        const auto key = std::make_tuple(name, config, icache);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            const auto &w = workload(name);
            PipelineOptions opts;
            opts.useICache = icache;
            it = cache_
                     .emplace(key, runPipeline(w.program, w.train,
                                               w.test, config, opts))
                     .first;
        }
        return it->second;
    }

    double
    ratio(const std::string &name, SchedConfig config, bool icache)
    {
        const double m4 =
            double(get(name, SchedConfig::M4, icache).test.cycles);
        return double(get(name, config, icache).test.cycles) / m4;
    }

  private:
    const workloads::Workload &
    workload(const std::string &name)
    {
        auto it = workloads_.find(name);
        if (it == workloads_.end()) {
            it = workloads_.emplace(name, workloads::makeByName(name))
                     .first;
        }
        return it->second;
    }

    std::map<std::tuple<std::string, SchedConfig, bool>, PipelineResult>
        cache_;
    std::map<std::string, workloads::Workload> workloads_;
};

const std::vector<std::string> kMicros = {"alt", "ph", "corr"};

TEST(Reproduction, Fig4PathsBeatEdgesOverall)
{
    auto &s = Suite::instance();
    std::vector<double> ratios;
    int wins = 0;
    for (const auto &name : workloads::benchmarkNames()) {
        const double r = s.ratio(name, SchedConfig::P4, false);
        ratios.push_back(r);
        wins += r < 1.0;
    }
    // Paper: 2-16% SPEC reductions, larger on micros.
    EXPECT_LT(geomean(ratios), 0.90);
    EXPECT_GE(wins, 11) << "P4 must beat M4 on most benchmarks";
}

TEST(Reproduction, Fig4MicrosShowLargeWins)
{
    auto &s = Suite::instance();
    for (const auto &name : kMicros)
        EXPECT_LT(s.ratio(name, SchedConfig::P4, false), 0.85) << name;
}

TEST(Reproduction, Fig5CodeExpansionHurtsSomeoneAndP4eRescues)
{
    auto &s = Suite::instance();
    // Our gcc analogue is the benchmark that flips under the cache.
    EXPECT_GT(s.ratio("gcc", SchedConfig::P4, true), 1.0);
    EXPECT_LT(s.ratio("gcc", SchedConfig::P4e, true), 1.0);
}

TEST(Reproduction, MissRatesRiseUnderPathExpansion)
{
    auto &s = Suite::instance();
    const auto &m4 = s.get("gcc", SchedConfig::M4, true);
    const auto &p4 = s.get("gcc", SchedConfig::P4, true);
    const auto &p4e = s.get("gcc", SchedConfig::P4e, true);
    auto rate = [](const PipelineResult &r) {
        return double(r.test.icacheMisses) /
               double(std::max<uint64_t>(1, r.test.icacheAccesses));
    };
    EXPECT_GT(rate(p4), 2.0 * rate(m4));   // paper: 2.67% -> 3.92%
    EXPECT_LT(rate(p4e), 1.5 * rate(m4));  // P4e restrains expansion
    EXPECT_GT(p4.codeBytes, m4.codeBytes); // expansion is the cause
    EXPECT_LE(p4e.codeBytes, p4.codeBytes);
}

TEST(Reproduction, Fig6PathsAtUnroll4BeatEdgesAtUnroll16)
{
    auto &s = Suite::instance();
    std::vector<double> p4e, m16;
    for (const auto &name : workloads::benchmarkNames()) {
        p4e.push_back(s.ratio(name, SchedConfig::P4e, true));
        m16.push_back(s.ratio(name, SchedConfig::M16, true));
    }
    EXPECT_LT(geomean(p4e), geomean(m16));
    // ... except where raw unrolling dominates: the eqntott analogue.
    const auto names = workloads::benchmarkNames();
    for (size_t i = 0; i < names.size(); ++i) {
        if (names[i] == "eqn") {
            EXPECT_LT(m16[i], p4e[i]) << "eqntott: unrolling must win";
        }
    }
}

TEST(Reproduction, Fig7PathsExecuteFurtherWithSmallerSuperblocks)
{
    auto &s = Suite::instance();
    int exec_wins = 0, size_wins = 0, n = 0;
    for (const auto &name : workloads::benchmarkNames()) {
        const auto &m16 = s.get(name, SchedConfig::M16, false);
        const auto &p4 = s.get(name, SchedConfig::P4, false);
        if (m16.test.sbEntries == 0 || p4.test.sbEntries == 0)
            continue;
        ++n;
        exec_wins += p4.test.sbAvgBlocksExecuted() >=
                     0.95 * m16.test.sbAvgBlocksExecuted();
        size_wins += p4.test.sbAvgBlocksInSuperblock() <=
                     m16.test.sbAvgBlocksInSuperblock();
    }
    // P4 stays near (or above) M16's executed-blocks average on most
    // benchmarks while building smaller superblocks on nearly all.
    EXPECT_GE(exec_wins, n - 3);
    EXPECT_GE(size_wins, n - 1);
}

TEST(Reproduction, Fig7GoAndLiImmuneToUnrolling)
{
    // "the cycle counts for M4 and M16 under go and li demonstrate
    // that unrolling alone is insufficient."
    auto &s = Suite::instance();
    for (const char *name : {"go", "li"}) {
        const auto &m4 = s.get(name, SchedConfig::M4, false);
        const auto &m16 = s.get(name, SchedConfig::M16, false);
        EXPECT_NEAR(m16.test.sbAvgBlocksExecuted(),
                    m4.test.sbAvgBlocksExecuted(),
                    0.05 * m4.test.sbAvgBlocksExecuted())
            << name;
        EXPECT_GT(double(m16.test.cycles), 0.98 * double(m4.test.cycles))
            << name << ": M16 must not meaningfully beat M4";
    }
}

TEST(Reproduction, SuperblockProgressDrivesTheWin)
{
    // The causal claim of the whole paper, in Fig. 7's own metric:
    // execution gets *further into* path-formed superblocks — the
    // dynamically weighted blocks-executed-per-entry average rises
    // under P4 on nearly every benchmark.  (Raw completion fractions
    // are not comparable: P4 also builds bigger superblocks.)
    auto &s = Suite::instance();
    int progress_wins = 0, n = 0;
    for (const auto &name : workloads::benchmarkNames()) {
        const auto &m4 = s.get(name, SchedConfig::M4, false);
        const auto &p4 = s.get(name, SchedConfig::P4, false);
        if (m4.test.sbEntries == 0 || p4.test.sbEntries == 0)
            continue;
        ++n;
        progress_wins += p4.test.sbAvgBlocksExecuted() >=
                         0.95 * m4.test.sbAvgBlocksExecuted();
    }
    EXPECT_GE(progress_wins, n - 2);
}

} // namespace
} // namespace pathsched
