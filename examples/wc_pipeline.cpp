/**
 * @file
 * End-to-end pipeline walkthrough on the wc workload: every paper
 * configuration, with and without the instruction cache, plus the
 * formation and compaction statistics the passes report.
 */

#include <cstdio>

#include "pipeline/backend.hpp"
#include "pipeline/pipeline.hpp"
#include "support/strutil.hpp"
#include "workloads/workloads.hpp"

using namespace pathsched;

int
main()
{
    const workloads::Workload w = workloads::makeWc();
    std::printf("wc end-to-end: %s\n", w.description.c_str());
    std::printf("train input: %zu words, test input: %zu words\n\n",
                w.train.memImage.size(), w.test.memImage.size());

    std::printf("%-5s %12s %8s %9s %10s %8s %9s\n", "cfg", "cycles",
                "vs M4", "code(B)", "sb-formed", "enlarged",
                "exec/size");

    pipeline::PipelineOptions opts;
    uint64_t m4_cycles = 0;
    // Every registered backend, in registry order — a new backend shows
    // up in this table with no edit here.
    for (const pipeline::BackendDesc *be : pipeline::allBackends()) {
        const auto r = pipeline::runPipeline(w.program, w.train, w.test,
                                             be->config, opts);
        if (r.name == "M4")
            m4_cycles = r.test.cycles;
        std::printf("%-5s %12llu %8s %9llu %10llu %8llu %5.1f/%.1f\n",
                    r.name.c_str(), (unsigned long long)r.test.cycles,
                    m4_cycles ? strfmt("%.3f", double(r.test.cycles) /
                                                   double(m4_cycles))
                                    .c_str()
                              : "-",
                    (unsigned long long)r.codeBytes,
                    (unsigned long long)r.form.superblocksFormed,
                    (unsigned long long)r.form.enlargedSuperblocks,
                    r.test.sbAvgBlocksExecuted(),
                    r.test.sbAvgBlocksInSuperblock());
    }

    std::printf("\nwith the 32KB direct-mapped I-cache attached:\n");
    opts.useICache = true;
    for (const auto config :
         {pipeline::SchedConfig::M4, pipeline::SchedConfig::P4,
          pipeline::SchedConfig::P4e}) {
        const auto r = pipeline::runPipeline(w.program, w.train, w.test,
                                             config, opts);
        std::printf("  %-4s cycles=%llu  miss rate=%.3f%%  "
                    "stalls=%llu\n",
                    r.name.c_str(), (unsigned long long)r.test.cycles,
                    r.test.icacheAccesses
                        ? 100.0 * double(r.test.icacheMisses) /
                              double(r.test.icacheAccesses)
                        : 0.0,
                    (unsigned long long)r.test.stallCycles);
    }

    std::printf("\nwc output on the test text (lines, words, chars): ");
    interp::Interpreter interp(w.program);
    for (const int64_t v : interp.run(w.test).output)
        std::printf("%lld ", (long long)v);
    std::printf("\n");
    return 0;
}
