/**
 * @file
 * Branch-correlation study on the corr microbenchmark (Young & Smith's
 * example): two branches test the same condition with a merge point
 * between them.  Edge profiles see two independent 75% branches; the
 * path profile proves they always agree, so path-based formation
 * builds superblocks that rarely take early exits.
 */

#include <cstdio>

#include "interp/interpreter.hpp"
#include "pipeline/pipeline.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "workloads/workloads.hpp"

using namespace pathsched;

int
main()
{
    const workloads::Workload w = workloads::makeCorr();

    // --- What the two profiles see. ---
    profile::EdgeProfiler edges(w.program);
    profile::PathProfiler paths(w.program, {});
    {
        interp::Interpreter interp(w.program);
        interp.addListener(&edges);
        interp.addListener(&paths);
        interp.run(w.train);
        paths.finalize();
    }

    // Blocks (makeCorr layout): head=1 branches on x to then=2/else=3,
    // mid=4 re-branches on x to 5/6.
    const ir::ProcId p = w.program.mainProc;
    std::printf("corr: two branches on the same condition\n");
    std::printf("========================================\n\n");
    std::printf("edge profile (independent points):\n");
    std::printf("  first branch taken:  %llu / %llu\n",
                (unsigned long long)edges.edgeFreq(p, 1, 2),
                (unsigned long long)edges.blockFreq(p, 1));
    std::printf("  second branch taken: %llu / %llu\n",
                (unsigned long long)edges.edgeFreq(p, 4, 5),
                (unsigned long long)edges.blockFreq(p, 4));
    std::printf("  -> an edge-driven selector estimates the trace\n"
                "     head..then..mid..then2 completes ~56%% of the "
                "time (0.75 * 0.75)\n\n");

    std::printf("path profile (exact):\n");
    std::printf("  f(then path, agreeing)    = %llu\n",
                (unsigned long long)paths.pathFreq(p, {1, 2, 4, 5}));
    std::printf("  f(then path, disagreeing) = %llu\n",
                (unsigned long long)paths.pathFreq(p, {1, 2, 4, 6}));
    std::printf("  f(else path, agreeing)    = %llu\n",
                (unsigned long long)paths.pathFreq(p, {1, 3, 4, 6}));
    std::printf("  f(else path, disagreeing) = %llu\n",
                (unsigned long long)paths.pathFreq(p, {1, 3, 4, 5}));
    std::printf("  -> the branches never disagree: the hot trace "
                "completes 100%% of its entries\n\n");

    // --- What that buys at schedule time. ---
    pipeline::PipelineOptions opts;
    const auto m4 = pipeline::runPipeline(w.program, w.train, w.test,
                                          pipeline::SchedConfig::M4,
                                          opts);
    const auto p4 = pipeline::runPipeline(w.program, w.train, w.test,
                                          pipeline::SchedConfig::P4,
                                          opts);
    std::printf("schedule quality (test input):\n");
    std::printf("  M4  (edge profiles): %llu cycles\n",
                (unsigned long long)m4.test.cycles);
    std::printf("  P4  (path profiles): %llu cycles  (%.1f%% fewer)\n",
                (unsigned long long)p4.test.cycles,
                100.0 * (1.0 - double(p4.test.cycles) /
                                   double(m4.test.cycles)));
    return 0;
}
