/**
 * @file
 * Reproduces Figure 1 of the paper: two programs with *identical* edge
 * profiles whose trace ABC completes 100% of the time in one and 50%
 * in the other.  An edge profile can only bound f(ABC) to a range;
 * the general path profile measures it exactly.
 *
 * CFG (as in the figure): A -> B (500), X -> B (500), B -> C (1000
 * minus B->Y), B -> Y; C is also reached from elsewhere.  We realize
 * it as a loop driving A or X alternately, with B's branch either
 * perfectly correlated with the A-entry (program 1: ABC always
 * completes) or anti-correlated (program 2: A-entries always leave at
 * B->Y), producing the same aggregate counts.
 */

#include <cstdio>

#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"

using namespace pathsched;

namespace {

/**
 * Build the Fig. 1 CFG.  @p correlated selects whether B's branch
 * follows the A-path (trace ABC completes) or opposes it.
 */
ir::Program
makeFigure1(bool correlated)
{
    ir::Program prog;
    ir::IrBuilder b(prog);
    prog.mainProc = b.newProc("main", 1);
    const ir::BlockId head = b.newBlock();  // loop driver
    const ir::BlockId blkA = b.newBlock();
    const ir::BlockId blkX = b.newBlock();
    const ir::BlockId blkB = b.newBlock();
    const ir::BlockId blkC = b.newBlock();
    const ir::BlockId blkY = b.newBlock();
    const ir::BlockId latch = b.newBlock();
    const ir::BlockId done = b.newBlock();

    const ir::RegId n = b.param(0);
    const ir::RegId i = b.freshReg();
    const ir::RegId via_a = b.freshReg();
    const ir::RegId acc = b.freshReg();
    b.ldiTo(i, 0);
    b.ldiTo(acc, 0);
    b.jmp(head);

    b.setBlock(head);
    b.aluiTo(ir::Opcode::And, via_a, i, 1); // alternate A and X
    b.brnz(via_a, blkA, blkX);

    b.setBlock(blkA);
    b.aluiTo(ir::Opcode::Add, acc, acc, 1);
    b.jmp(blkB);

    b.setBlock(blkX);
    b.aluiTo(ir::Opcode::Add, acc, acc, 2);
    b.jmp(blkB);

    b.setBlock(blkB);
    {
        // Correlated: B -> C exactly when we came through A.
        // Anti-correlated: B -> C exactly when we came through X.
        const ir::RegId cond =
            correlated ? b.mov(via_a) : b.alui(ir::Opcode::Xor, via_a, 1);
        b.brnz(cond, blkC, blkY);
    }

    b.setBlock(blkC);
    b.aluiTo(ir::Opcode::Add, acc, acc, 10);
    b.jmp(latch);

    b.setBlock(blkY);
    b.aluiTo(ir::Opcode::Add, acc, acc, 100);
    b.jmp(latch);

    b.setBlock(latch);
    b.aluiTo(ir::Opcode::Add, i, i, 1);
    const ir::RegId more = b.alu(ir::Opcode::CmpLt, i, n);
    b.brnz(more, head, done);
    b.setBlock(done);
    b.emitValue(acc);
    b.ret(acc);
    return prog;
}

void
report(const char *label, const ir::Program &prog)
{
    profile::EdgeProfiler edges(prog);
    profile::PathProfiler paths(prog, {});
    interp::ProgramInput in;
    in.mainArgs = {2000};
    interp::Interpreter interp(prog);
    interp.addListener(&edges);
    interp.addListener(&paths);
    interp.run(in);
    paths.finalize();

    // Fig. 1's blocks: A=2, X=3, B=4, C=5, Y=6 in this encoding.
    const uint64_t ab = edges.edgeFreq(0, 2, 4);
    const uint64_t xb = edges.edgeFreq(0, 3, 4);
    const uint64_t bc = edges.edgeFreq(0, 4, 5);
    const uint64_t by = edges.edgeFreq(0, 4, 6);
    const uint64_t abc = paths.pathFreq(0, {2, 4, 5});
    const uint64_t aby = paths.pathFreq(0, {2, 4, 6});

    std::printf("%s\n", label);
    std::printf("  edge profile:  A->B=%llu  X->B=%llu  B->C=%llu  "
                "B->Y=%llu\n",
                (unsigned long long)ab, (unsigned long long)xb,
                (unsigned long long)bc, (unsigned long long)by);
    const uint64_t lower = bc > xb ? bc - xb : 0;
    std::printf("  edge-only bound:  %llu <= f(ABC) <= %llu\n",
                (unsigned long long)lower,
                (unsigned long long)std::min(ab, bc));
    std::printf("  path profile:  f(ABC)=%llu  f(ABY)=%llu   "
                "(trace ABC completes %.0f%% of A-entries)\n\n",
                (unsigned long long)abc, (unsigned long long)aby,
                ab ? 100.0 * double(abc) / double(ab) : 0.0);
}

} // namespace

int
main()
{
    std::printf("Figure 1: identical edge profiles, opposite truths\n");
    std::printf("==================================================\n\n");
    report("program 1 (B's branch correlated with the A-entry):",
           makeFigure1(true));
    report("program 2 (B's branch anti-correlated):",
           makeFigure1(false));
    std::printf("A trace selector driven by the edge profile cannot "
                "tell these programs apart;\nthe path profile decides "
                "whether enlarging superblock ABC is worthwhile.\n");
    return 0;
}
