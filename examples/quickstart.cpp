/**
 * @file
 * Quickstart: build a small program with the IR builder, profile it,
 * form path-based superblocks, compact them, and measure the result.
 *
 * This walks the library's whole public API surface in ~100 lines:
 *   IrBuilder -> Interpreter(+PathProfiler) -> formProgram ->
 *   compactProgram -> Interpreter again.
 */

#include <cstdio>

#include "form/form.hpp"
#include "interp/interpreter.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "machine/machine.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "sched/compact.hpp"

using namespace pathsched;

int
main()
{
    // --- 1. Build: a loop whose conditional alternates TTTF. ---
    ir::Program program;
    ir::IrBuilder b(program);
    const ir::ProcId main_proc = b.newProc("main", 1);
    const ir::BlockId head = b.newBlock();
    const ir::BlockId left = b.newBlock();
    const ir::BlockId right = b.newBlock();
    const ir::BlockId latch = b.newBlock();
    const ir::BlockId done = b.newBlock();

    const ir::RegId n = b.param(0);
    const ir::RegId i = b.freshReg();
    const ir::RegId acc = b.freshReg();
    b.ldiTo(i, 0);
    b.ldiTo(acc, 0);
    b.jmp(head);
    b.setBlock(head);
    const ir::RegId t = b.alui(ir::Opcode::And, i, 3);
    const ir::RegId c = b.alui(ir::Opcode::CmpNe, t, 3);
    b.brnz(c, left, right);
    b.setBlock(left);
    b.aluTo(ir::Opcode::Add, acc, acc, i);
    b.jmp(latch);
    b.setBlock(right);
    b.aluiTo(ir::Opcode::Xor, acc, acc, 255);
    b.jmp(latch);
    b.setBlock(latch);
    b.aluiTo(ir::Opcode::Add, i, i, 1);
    const ir::RegId more = b.alu(ir::Opcode::CmpLt, i, n);
    b.brnz(more, head, done);
    b.setBlock(done);
    b.emitValue(acc);
    b.ret(acc);
    program.mainProc = main_proc;

    std::printf("=== original program ===\n%s\n",
                ir::toString(program).c_str());

    // --- 2. Train: run with profilers attached. ---
    interp::ProgramInput train;
    train.mainArgs = {1000};
    profile::EdgeProfiler edges(program);
    profile::PathProfiler paths(program, {});
    {
        interp::Interpreter interp(program);
        interp.addListener(&edges);
        interp.addListener(&paths);
        interp.run(train);
        paths.finalize();
    }
    std::printf("training run: %zu distinct general paths recorded\n\n",
                paths.numPaths());

    // --- 3. Form: path-driven superblock selection + enlargement. ---
    ir::Program scheduled = program;
    form::FormConfig fc;
    fc.mode = form::ProfileMode::Path;
    const form::FormStats fs =
        form::formProgram(scheduled, &edges, &paths, fc);
    std::printf("formed %llu superblocks (%llu enlarged, "
                "%llu blocks duplicated)\n",
                (unsigned long long)fs.superblocksFormed,
                (unsigned long long)fs.enlargedSuperblocks,
                (unsigned long long)fs.blocksDuplicated);

    // --- 4. Compact: optimize, rename, list-schedule. ---
    const auto mm = machine::MachineModel::unitLatency();
    sched::compactProgram(scheduled, mm);
    std::printf("\n=== scheduled program (cycle numbers on the left) "
                "===\n%s\n",
                ir::toString(scheduled).c_str());

    // --- 5. Measure: same input, transformed code. ---
    interp::ProgramInput test;
    test.mainArgs = {4000};
    ir::Program baseline = program;
    sched::compactProgram(baseline, mm); // basic-block schedule
    const auto before = interp::Interpreter(baseline).run(test);
    const auto after = interp::Interpreter(scheduled).run(test);
    std::printf("basic-block scheduled: %llu cycles\n",
                (unsigned long long)before.cycles);
    std::printf("path-based superblocks: %llu cycles (%.1f%% fewer)\n",
                (unsigned long long)after.cycles,
                100.0 * (1.0 - double(after.cycles) /
                                   double(before.cycles)));
    std::printf("outputs match: %s\n",
                before.output == after.output ? "yes" : "NO");
    return 0;
}
