/**
 * @file
 * Reproduces Figure 3 of the paper: classical edge-profile unrolling
 * versus path-based enlargement on the periodic (alt) and phased (ph)
 * loops.  Both loops produce the *same* edge profile; the path profile
 * drives completely different — and better — enlargements.
 */

#include <cstdio>

#include "pipeline/pipeline.hpp"
#include "workloads/workloads.hpp"

using namespace pathsched;

namespace {

void
study(const workloads::Workload &w)
{
    std::printf("--- %s: %s ---\n", w.name.c_str(),
                w.description.c_str());
    pipeline::PipelineOptions opts;
    uint64_t m4_cycles = 0;
    for (const auto config :
         {pipeline::SchedConfig::M4, pipeline::SchedConfig::P4}) {
        const auto r = pipeline::runPipeline(w.program, w.train, w.test,
                                             config, opts);
        if (r.name == "M4")
            m4_cycles = r.test.cycles;
        std::printf(
            "  %-3s  cycles=%9llu (%.3f vs M4)   superblock: "
            "%.1f blocks executed of %.1f, completes %.0f%%\n",
            r.name.c_str(), (unsigned long long)r.test.cycles,
            double(r.test.cycles) / double(m4_cycles),
            r.test.sbAvgBlocksExecuted(),
            r.test.sbAvgBlocksInSuperblock(),
            r.test.sbEntries
                ? 100.0 * double(r.test.sbCompletions) /
                      double(r.test.sbEntries)
                : 0.0);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("Figure 3 study: what does the enlarger build?\n");
    std::printf("=============================================\n\n");
    std::printf(
        "alt's conditional repeats TTTF; ph's is true for the first\n"
        "half of the run and false for the second.  Their edge\n"
        "profiles are identical (75%% and ~50%% taken), so classical\n"
        "unrolling must guess.  General paths see the actual\n"
        "sequences:\n"
        "  - on alt, path enlargement lays out T,T,T,F iterations in\n"
        "    one superblock that completes almost every entry\n"
        "    (Fig. 3b);\n"
        "  - on ph, it builds one superblock per phase (Fig. 3c).\n\n");

    study(workloads::makeAlt());
    study(workloads::makePh());

    std::printf("The \"blocks executed\" column is the paper's Fig. 7\n"
                "metric: paths push it toward the superblock size,\n"
                "which is precisely why their schedules win.\n");
    return 0;
}
