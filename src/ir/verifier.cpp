#include "ir/verifier.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::ir {

namespace {

/** Collects violations with procedure/block context prefixes. */
class Checker
{
  public:
    Checker(const Program &prog, VerifyMode mode,
            std::vector<std::string> &errors)
        : prog_(prog), mode_(mode), errors_(errors)
    {}

    void
    run()
    {
        if (prog_.mainProc == kNoProc ||
            prog_.mainProc >= prog_.procs.size()) {
            errors_.push_back("program has no valid main procedure");
        }
        for (const auto &p : prog_.procs)
            checkProc(p);
    }

    void runProc(ProcId proc) { checkProc(prog_.procs[proc]); }

  private:
    void
    err(const Procedure &p, BlockId b, const std::string &msg)
    {
        errors_.push_back(
            strfmt("proc %s block %u: %s", p.name.c_str(), b, msg.c_str()));
    }

    void
    checkProc(const Procedure &p)
    {
        if (p.blocks.empty()) {
            errors_.push_back(strfmt("proc %s has no blocks",
                                     p.name.c_str()));
            return;
        }
        if (p.numParams > p.numRegs)
            errors_.push_back(strfmt("proc %s: numParams > numRegs",
                                     p.name.c_str()));
        for (BlockId b = 0; b < p.blocks.size(); ++b)
            checkBlock(p, b);
    }

    void
    checkReg(const Procedure &p, BlockId b, RegId r, const char *what)
    {
        if (r != kNoReg && r >= p.numRegs)
            err(p, b, strfmt("%s register r%u out of range (numRegs=%u)",
                             what, r, p.numRegs));
    }

    void
    checkTarget(const Procedure &p, BlockId b, BlockId t, const char *what)
    {
        if (t >= p.blocks.size())
            err(p, b, strfmt("%s target %u out of range", what, t));
    }

    void
    checkBlock(const Procedure &p, BlockId b)
    {
        const BasicBlock &bb = p.blocks[b];
        if (bb.empty()) {
            err(p, b, "block is empty");
            return;
        }
        for (size_t i = 0; i < bb.instrs.size(); ++i) {
            const Instruction &ins = bb.instrs[i];
            const bool last = i + 1 == bb.instrs.size();
            checkInstr(p, b, ins, last);
        }
        const Instruction &t = bb.terminator();
        const bool proper_term =
            (t.isBranch() && t.target1 != kNoBlock) ||
            t.op == Opcode::Jmp || t.op == Opcode::Ret;
        if (!proper_term)
            err(p, b, strfmt("last instruction (%s) is not a terminator",
                             opcodeName(t.op)));
    }

    void
    checkInstr(const Procedure &p, BlockId b, const Instruction &ins,
               bool last)
    {
        std::vector<RegId> srcs;
        ins.sources(srcs);
        for (RegId r : srcs)
            checkReg(p, b, r, "source");
        checkReg(p, b, ins.dst, "dest");

        if (ins.isBranch()) {
            checkTarget(p, b, ins.target0, "taken");
            if (last) {
                if (ins.target1 == kNoBlock) {
                    err(p, b, "terminator branch lacks fallthrough target");
                } else {
                    checkTarget(p, b, ins.target1, "fallthrough");
                }
            } else {
                if (mode_ == VerifyMode::Strict) {
                    err(p, b, "mid-block branch in strict mode");
                } else if (ins.target1 != kNoBlock) {
                    err(p, b, "mid-block exit branch has a fallthrough "
                              "target");
                }
            }
            if (ins.hasDst())
                err(p, b, "branch writes a register");
        } else if (ins.op == Opcode::Jmp || ins.op == Opcode::Ret) {
            if (!last)
                err(p, b, strfmt("mid-block %s", opcodeName(ins.op)));
            if (ins.op == Opcode::Jmp)
                checkTarget(p, b, ins.target0, "jump");
        } else if (ins.op == Opcode::Call) {
            if (ins.callee >= prog_.procs.size()) {
                err(p, b, "call to invalid procedure");
            } else if (ins.args.size() !=
                       prog_.procs[ins.callee].numParams) {
                err(p, b,
                    strfmt("call to %s passes %zu args, expects %u",
                           prog_.procs[ins.callee].name.c_str(),
                           ins.args.size(),
                           prog_.procs[ins.callee].numParams));
            }
        } else if (ins.op == Opcode::St || ins.op == Opcode::Emit) {
            if (ins.hasDst())
                err(p, b, strfmt("%s writes a register",
                                 opcodeName(ins.op)));
        } else if (ins.op != Opcode::Nop) {
            if (!ins.hasDst())
                err(p, b, strfmt("%s lacks a destination",
                                 opcodeName(ins.op)));
        }
    }

    const Program &prog_;
    VerifyMode mode_;
    std::vector<std::string> &errors_;
};

} // namespace

bool
verify(const Program &prog, VerifyMode mode,
       std::vector<std::string> &errors)
{
    errors.clear();
    Checker(prog, mode, errors).run();
    return errors.empty();
}

bool
verifyProc(const Program &prog, ProcId proc, VerifyMode mode,
           std::vector<std::string> &errors)
{
    errors.clear();
    ps_assert_msg(proc < prog.procs.size(),
                  "verifyProc: procedure %u out of range", proc);
    Checker(prog, mode, errors).runProc(proc);
    return errors.empty();
}

namespace {

Status
errorsToStatus(const std::vector<std::string> &errors)
{
    if (errors.empty())
        return Status();
    // Cap the message at a handful of violations; callers that need
    // the full list use verify()/verifyProc() directly.
    std::string msg = strfmt("%zu violation(s): ", errors.size());
    const size_t shown = std::min<size_t>(errors.size(), 3);
    for (size_t i = 0; i < shown; ++i) {
        if (i)
            msg += "; ";
        msg += errors[i];
    }
    return Status::error(ErrorKind::VerifyFailed, std::move(msg));
}

} // namespace

Status
verifyStatus(const Program &prog, VerifyMode mode)
{
    std::vector<std::string> errors;
    verify(prog, mode, errors);
    return errorsToStatus(errors);
}

Status
verifyProcStatus(const Program &prog, ProcId proc, VerifyMode mode)
{
    std::vector<std::string> errors;
    verifyProc(prog, proc, mode, errors);
    return errorsToStatus(errors);
}

void
verifyOrDie(const Program &prog, VerifyMode mode)
{
    std::vector<std::string> errors;
    if (!verify(prog, mode, errors)) {
        for (const auto &e : errors)
            warn("verify: %s", e.c_str());
        panic("IR verification failed with %zu error(s): %s",
              errors.size(), errors.front().c_str());
    }
}

} // namespace pathsched::ir
