/**
 * @file
 * Fundamental identifier types for the pathsched IR.
 */

#ifndef PATHSCHED_IR_TYPES_HPP
#define PATHSCHED_IR_TYPES_HPP

#include <cstdint>
#include <limits>

namespace pathsched::ir {

/** Virtual register id, scoped to a procedure. */
using RegId = uint32_t;
/** Basic block index within a procedure; the entry block is always 0. */
using BlockId = uint32_t;
/** Procedure index within a program. */
using ProcId = uint32_t;

/** Sentinel for "no register". */
inline constexpr RegId kNoReg = std::numeric_limits<RegId>::max();
/** Sentinel for "no block" (e.g. the fallthrough of a mid-block exit). */
inline constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();
/** Sentinel for "no procedure". */
inline constexpr ProcId kNoProc = std::numeric_limits<ProcId>::max();

} // namespace pathsched::ir

#endif // PATHSCHED_IR_TYPES_HPP
