/**
 * @file
 * Structural well-formedness checks for IR programs.
 */

#ifndef PATHSCHED_IR_VERIFIER_HPP
#define PATHSCHED_IR_VERIFIER_HPP

#include <string>
#include <vector>

#include "ir/procedure.hpp"
#include "support/status.hpp"

namespace pathsched::ir {

/**
 * Verification mode.  Strict programs (pre-formation) allow branches
 * only as block terminators with both targets set.  Superblock programs
 * additionally allow mid-block exit branches whose fallthrough is
 * kNoBlock.
 */
enum class VerifyMode { Strict, Superblock };

/**
 * Check @p prog for structural errors.
 *
 * @param prog the program to verify
 * @param mode strictness level (see VerifyMode)
 * @param errors human-readable description of each violation found
 * @return true when no violations were found
 */
bool verify(const Program &prog, VerifyMode mode,
            std::vector<std::string> &errors);

/**
 * Check only procedure @p proc of @p prog (program-level checks such
 * as main-procedure validity are skipped).  Same reporting contract
 * as verify().
 */
bool verifyProc(const Program &prog, ProcId proc, VerifyMode mode,
                std::vector<std::string> &errors);

/** verify() folded into a Status: OK, or ErrorKind::VerifyFailed with
 *  the violations joined into the message. */
Status verifyStatus(const Program &prog, VerifyMode mode);

/** verifyProc() folded into a Status (see verifyStatus). */
Status verifyProcStatus(const Program &prog, ProcId proc,
                        VerifyMode mode);

/** Verify and panic with the first error on failure — the
 *  non-recoverable wrapper around verifyStatus(). */
void verifyOrDie(const Program &prog, VerifyMode mode);

} // namespace pathsched::ir

#endif // PATHSCHED_IR_VERIFIER_HPP
