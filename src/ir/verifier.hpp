/**
 * @file
 * Structural well-formedness checks for IR programs.
 */

#ifndef PATHSCHED_IR_VERIFIER_HPP
#define PATHSCHED_IR_VERIFIER_HPP

#include <string>
#include <vector>

#include "ir/procedure.hpp"

namespace pathsched::ir {

/**
 * Verification mode.  Strict programs (pre-formation) allow branches
 * only as block terminators with both targets set.  Superblock programs
 * additionally allow mid-block exit branches whose fallthrough is
 * kNoBlock.
 */
enum class VerifyMode { Strict, Superblock };

/**
 * Check @p prog for structural errors.
 *
 * @param prog the program to verify
 * @param mode strictness level (see VerifyMode)
 * @param errors human-readable description of each violation found
 * @return true when no violations were found
 */
bool verify(const Program &prog, VerifyMode mode,
            std::vector<std::string> &errors);

/** Verify and panic with the first error on failure. */
void verifyOrDie(const Program &prog, VerifyMode mode);

} // namespace pathsched::ir

#endif // PATHSCHED_IR_VERIFIER_HPP
