#include "ir/builder.hpp"

#include "support/logging.hpp"

namespace pathsched::ir {

ProcId
IrBuilder::newProc(const std::string &name, uint32_t num_params)
{
    Procedure p;
    p.name = name;
    p.id = ProcId(prog_.procs.size());
    p.numParams = num_params;
    p.numRegs = num_params;
    prog_.procs.push_back(std::move(p));
    procId_ = prog_.procs.back().id;
    block_ = prog_.procs.back().newBlock();
    return procId_;
}

BlockId
IrBuilder::newBlock()
{
    ps_assert(procId_ != kNoProc);
    return proc().newBlock();
}

void
IrBuilder::setProc(ProcId p)
{
    ps_assert(p < prog_.procs.size());
    procId_ = p;
    block_ = 0;
}

RegId
IrBuilder::param(uint32_t i) const
{
    ps_assert(i < prog_.proc(procId_).numParams);
    return i;
}

void
IrBuilder::append(Instruction ins)
{
    ps_assert(procId_ != kNoProc && block_ != kNoBlock);
    proc().blocks[block_].instrs.push_back(std::move(ins));
}

RegId
IrBuilder::ldi(int64_t v)
{
    RegId d = freshReg();
    append(makeLdi(d, v));
    return d;
}

RegId
IrBuilder::alu(Opcode op, RegId a, RegId b)
{
    RegId d = freshReg();
    append(makeAlu(op, d, a, b));
    return d;
}

RegId
IrBuilder::alui(Opcode op, RegId a, int64_t imm)
{
    RegId d = freshReg();
    append(makeAluImm(op, d, a, imm));
    return d;
}

RegId
IrBuilder::mov(RegId src)
{
    RegId d = freshReg();
    append(makeMov(d, src));
    return d;
}

RegId
IrBuilder::ld(RegId base, int64_t off)
{
    RegId d = freshReg();
    append(makeLd(d, base, off));
    return d;
}

RegId
IrBuilder::ldSpec(RegId base, int64_t off)
{
    RegId d = freshReg();
    append(makeLdSpec(d, base, off));
    return d;
}

RegId
IrBuilder::callValue(ProcId callee, std::vector<RegId> args)
{
    RegId d = freshReg();
    append(makeCall(d, callee, std::move(args)));
    return d;
}

void
IrBuilder::aluTo(Opcode op, RegId dst, RegId a, RegId b)
{
    append(makeAlu(op, dst, a, b));
}

void
IrBuilder::aluiTo(Opcode op, RegId dst, RegId a, int64_t imm)
{
    append(makeAluImm(op, dst, a, imm));
}

void
IrBuilder::ldiTo(RegId dst, int64_t v)
{
    append(makeLdi(dst, v));
}

void
IrBuilder::movTo(RegId dst, RegId src)
{
    append(makeMov(dst, src));
}

void
IrBuilder::ldTo(RegId dst, RegId base, int64_t off)
{
    append(makeLd(dst, base, off));
}

void
IrBuilder::st(RegId base, int64_t off, RegId value)
{
    append(makeSt(base, off, value));
}

void
IrBuilder::emitValue(RegId value)
{
    append(makeEmit(value));
}

void
IrBuilder::callVoid(ProcId callee, std::vector<RegId> args)
{
    append(makeCall(kNoReg, callee, std::move(args)));
}

void
IrBuilder::brnz(RegId cond, BlockId taken, BlockId fallthru)
{
    append(makeBr(Opcode::BrNz, cond, taken, fallthru));
}

void
IrBuilder::brz(RegId cond, BlockId taken, BlockId fallthru)
{
    append(makeBr(Opcode::BrZ, cond, taken, fallthru));
}

void
IrBuilder::jmp(BlockId target)
{
    append(makeJmp(target));
}

void
IrBuilder::ret(RegId value)
{
    append(makeRet(value));
}

} // namespace pathsched::ir
