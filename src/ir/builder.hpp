/**
 * @file
 * Convenience builder for constructing IR programs.
 *
 * The builder keeps a current procedure and insertion block; value
 * operations allocate a fresh destination register and return it, while
 * the *To variants write a caller-chosen register (used for loop-carried
 * variables, since the IR is not SSA).
 */

#ifndef PATHSCHED_IR_BUILDER_HPP
#define PATHSCHED_IR_BUILDER_HPP

#include <string>
#include <vector>

#include "ir/procedure.hpp"

namespace pathsched::ir {

/** Incremental program builder used by workloads, tests and examples. */
class IrBuilder
{
  public:
    explicit IrBuilder(Program &prog) : prog_(prog) {}

    /** Create a procedure and make it current; its entry block is 0. */
    ProcId newProc(const std::string &name, uint32_t num_params);

    /** Create a new block in the current procedure. */
    BlockId newBlock();

    /** Select the procedure whose blocks subsequent calls target. */
    void setProc(ProcId p);

    /** Select the block that subsequent instructions append to. */
    void setBlock(BlockId b) { block_ = b; }

    BlockId currentBlock() const { return block_; }
    ProcId currentProc() const { return procId_; }
    Procedure &proc() { return prog_.proc(procId_); }

    /** Register holding parameter @p i of the current procedure. */
    RegId param(uint32_t i) const;

    /** Allocate a fresh register without defining it. */
    RegId freshReg() { return proc().newReg(); }

    /** @name Value-producing operations (fresh destination)
     *  @{
     */
    RegId ldi(int64_t v);
    RegId alu(Opcode op, RegId a, RegId b);
    RegId alui(Opcode op, RegId a, int64_t imm);
    RegId add(RegId a, RegId b) { return alu(Opcode::Add, a, b); }
    RegId addi(RegId a, int64_t v) { return alui(Opcode::Add, a, v); }
    RegId sub(RegId a, RegId b) { return alu(Opcode::Sub, a, b); }
    RegId mul(RegId a, RegId b) { return alu(Opcode::Mul, a, b); }
    RegId muli(RegId a, int64_t v) { return alui(Opcode::Mul, a, v); }
    RegId cmpEq(RegId a, RegId b) { return alu(Opcode::CmpEq, a, b); }
    RegId cmpEqi(RegId a, int64_t v) { return alui(Opcode::CmpEq, a, v); }
    RegId cmpLt(RegId a, RegId b) { return alu(Opcode::CmpLt, a, b); }
    RegId cmpLti(RegId a, int64_t v) { return alui(Opcode::CmpLt, a, v); }
    RegId mov(RegId src);
    RegId ld(RegId base, int64_t off);
    RegId ldSpec(RegId base, int64_t off);
    RegId callValue(ProcId callee, std::vector<RegId> args);
    /** @} */

    /** @name Operations writing an existing register
     *  @{
     */
    void aluTo(Opcode op, RegId dst, RegId a, RegId b);
    void aluiTo(Opcode op, RegId dst, RegId a, int64_t imm);
    void ldiTo(RegId dst, int64_t v);
    void movTo(RegId dst, RegId src);
    void ldTo(RegId dst, RegId base, int64_t off);
    /** @} */

    /** @name Side-effecting and control operations
     *  @{
     */
    void st(RegId base, int64_t off, RegId value);
    void emitValue(RegId value);
    void callVoid(ProcId callee, std::vector<RegId> args);
    void brnz(RegId cond, BlockId taken, BlockId fallthru);
    void brz(RegId cond, BlockId taken, BlockId fallthru);
    void jmp(BlockId target);
    void ret(RegId value = kNoReg);
    /** @} */

  private:
    void append(Instruction ins);

    Program &prog_;
    ProcId procId_ = kNoProc;
    BlockId block_ = kNoBlock;
};

} // namespace pathsched::ir

#endif // PATHSCHED_IR_BUILDER_HPP
