/**
 * @file
 * Basic blocks, procedures and programs for the pathsched IR.
 */

#ifndef PATHSCHED_IR_PROCEDURE_HPP
#define PATHSCHED_IR_PROCEDURE_HPP

#include <string>
#include <vector>

#include "ir/instruction.hpp"
#include "ir/types.hpp"

namespace pathsched::ir {

/**
 * VLIW schedule of one block: a cycle number per instruction.
 * Instructions sharing a cycle issue together.  An invalid (default)
 * schedule means the block has not been compacted; the interpreter then
 * charges one cycle per instruction.
 */
struct BlockSchedule
{
    bool valid = false;
    /** Cycle of each instruction, aligned with BasicBlock::instrs. */
    std::vector<uint32_t> cycleOf;
    /** Total cycles in the block when executed to completion. */
    uint32_t numCycles = 0;
};

/**
 * Metadata describing a block that was formed as a superblock.
 * Records which original trace position each instruction came from so
 * that the simulator can report "basic blocks executed per superblock
 * entry" (Fig. 7 of the paper) after arbitrary code motion.
 */
struct SuperblockInfo
{
    bool isSuperblock = false;
    /** Number of constituent (trace) blocks merged into this block. */
    uint32_t numSrcBlocks = 0;
    /** Trace ordinal (0-based) of each instruction's source block. */
    std::vector<uint32_t> srcOrdinalOf;
    /** True if the block's final terminator targets the block itself. */
    bool isLoop = false;
};

/** A basic block: a straight-line instruction list. */
struct BasicBlock
{
    std::vector<Instruction> instrs;

    bool empty() const { return instrs.empty(); }
    const Instruction &terminator() const { return instrs.back(); }
    Instruction &terminator() { return instrs.back(); }
};

/**
 * A procedure: an entry block (always block 0), a block list, and a
 * virtual register space.  Parameter i arrives in register i.
 */
struct Procedure
{
    std::string name;
    ProcId id = kNoProc;
    uint32_t numParams = 0;
    /** One past the largest allocated virtual register. */
    uint32_t numRegs = 0;
    std::vector<BasicBlock> blocks;
    /** Per-block compaction schedules (empty until the compact pass). */
    std::vector<BlockSchedule> schedules;
    /** Per-block superblock metadata (empty until the form pass). */
    std::vector<SuperblockInfo> superblocks;

    /** Allocate a fresh virtual register. */
    RegId newReg() { return numRegs++; }

    /** Append a new empty block and return its id. */
    BlockId newBlock();

    /** Grow the schedules/superblocks side tables to match blocks. */
    void syncSideTables();

    /** Total instruction count over all blocks. */
    size_t instrCount() const;
};

/** A whole program: procedures plus the data memory size it expects. */
struct Program
{
    std::vector<Procedure> procs;
    ProcId mainProc = kNoProc;
    /** Number of 64-bit data memory words the program addresses. */
    uint64_t memWords = 0;

    const Procedure &proc(ProcId id) const { return procs[id]; }
    Procedure &proc(ProcId id) { return procs[id]; }

    /** Find a procedure by name; panics if absent. */
    ProcId findProc(const std::string &name) const;

    /** Total instruction count over all procedures. */
    size_t instrCount() const;
};

/**
 * Collect the CFG successor blocks of @p bb in deterministic order:
 * mid-block exit targets first (in instruction order), then the
 * terminator's targets.  Duplicates are retained only once.
 */
void successorsOf(const BasicBlock &bb, std::vector<BlockId> &out);

/** One control-flow exit of a block. */
struct BlockExit
{
    /** Index of the exiting instruction within the block. */
    uint32_t instrIdx;
    /** Destination block, kNoBlock for a Ret. */
    BlockId target;
    /** True for the terminator's fallthrough/jump (trace continuation). */
    bool isFallthrough;
};

/** Enumerate every exit (mid-block and terminator) of @p bb. */
void exitsOf(const BasicBlock &bb, std::vector<BlockExit> &out);

/** Compute the per-block unique predecessor lists of @p proc. */
std::vector<std::vector<BlockId>> computePreds(const Procedure &proc);

} // namespace pathsched::ir

#endif // PATHSCHED_IR_PROCEDURE_HPP
