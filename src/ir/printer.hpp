/**
 * @file
 * Human-readable dumps of IR programs, procedures and instructions.
 */

#ifndef PATHSCHED_IR_PRINTER_HPP
#define PATHSCHED_IR_PRINTER_HPP

#include <string>

#include "ir/procedure.hpp"

namespace pathsched::ir {

/** Render one instruction, e.g. "add r3, r1, r2" or "brnz r4, B2, B3". */
std::string toString(const Instruction &ins);

/** Render a procedure with block labels and optional schedule cycles. */
std::string toString(const Procedure &proc);

/** Render a whole program. */
std::string toString(const Program &prog);

} // namespace pathsched::ir

#endif // PATHSCHED_IR_PRINTER_HPP
