/**
 * @file
 * Instruction definition for the pathsched IR.
 *
 * The IR is a small RISC-like, load/store, register-based representation
 * patterned after the Alpha-derived VLIW model of Young & Smith (MICRO-31
 * 1998).  Registers are virtual (per-procedure, unbounded) until register
 * allocation maps them onto the 128-register machine file.
 *
 * Control flow comes in two flavours:
 *  - "strict" blocks end in exactly one terminator (BrNz/BrZ with both
 *    targets, Jmp, or Ret) and contain no other branches;
 *  - "superblock" blocks, produced by trace formation, may additionally
 *    contain mid-block *exit* branches whose fallthrough target is
 *    kNoBlock, meaning execution continues with the next instruction in
 *    the same block.  This is how a compacted superblock with side exits
 *    is represented.
 */

#ifndef PATHSCHED_IR_INSTRUCTION_HPP
#define PATHSCHED_IR_INSTRUCTION_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ir/types.hpp"

namespace pathsched::ir {

/**
 * Operation codes.  ALU operations take (src1, src2) or (src1, imm) when
 * Instruction::useImm is set.  Division and remainder by zero produce 0;
 * shifts use only the low 6 bits of the shift amount.  These total
 * definitions keep speculative execution of any ALU op side-effect free.
 */
enum class Opcode : uint8_t {
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
    Mov,    ///< dst = src1
    Ldi,    ///< dst = imm
    Ld,     ///< dst = mem[src1 + imm]; faults on out-of-range address
    LdSpec, ///< non-excepting load: out-of-range address yields 0
    St,     ///< mem[src1 + imm] = src2
    Emit,   ///< append src1 to the program's observable output stream
    BrNz,   ///< if src1 != 0 goto target0 else target1 / fallthrough
    BrZ,    ///< if src1 == 0 goto target0 else target1 / fallthrough
    Jmp,    ///< goto target0
    Ret,    ///< return src1 (or 0 when src1 == kNoReg)
    Call,   ///< dst = callee(args...); not a terminator
    Nop,
};

/** Number of distinct opcodes (for tables indexed by opcode). */
inline constexpr size_t kNumOpcodes = size_t(Opcode::Nop) + 1;

/** A single IR instruction.  Fields are public: the IR is pass-owned data. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    /** When set, ALU src2 is replaced by the immediate field. */
    bool useImm = false;
    RegId dst = kNoReg;
    RegId src1 = kNoReg;
    RegId src2 = kNoReg;
    /** Immediate operand; also the address offset of Ld/LdSpec/St. */
    int64_t imm = 0;
    /** Taken target of BrNz/BrZ, or the target of Jmp. */
    BlockId target0 = kNoBlock;
    /**
     * Fallthrough target of a terminator branch.  kNoBlock on a branch
     * that is not the last instruction of its block marks a superblock
     * side exit (execution falls through within the block).
     */
    BlockId target1 = kNoBlock;
    /** Callee of a Call. */
    ProcId callee = kNoProc;
    /** Argument registers of a Call. */
    std::vector<RegId> args;

    /** True for conditional branches (BrNz/BrZ). */
    bool isBranch() const { return op == Opcode::BrNz || op == Opcode::BrZ; }
    /** True for instructions that may redirect control flow. */
    bool isControlFlow() const
    {
        return isBranch() || op == Opcode::Jmp || op == Opcode::Ret;
    }
    /**
     * True for instructions that occupy the machine's single control slot
     * per cycle (branches, jumps, returns, and calls).
     */
    bool isControlSlot() const { return isControlFlow() || op == Opcode::Call; }
    bool isLoad() const { return op == Opcode::Ld || op == Opcode::LdSpec; }
    bool isStore() const { return op == Opcode::St; }
    /** True if the instruction reads or writes data memory or output. */
    bool touchesMemory() const
    {
        return isLoad() || isStore() || op == Opcode::Emit ||
               op == Opcode::Call;
    }
    /** True if the instruction writes a register. */
    bool hasDst() const { return dst != kNoReg; }
    /**
     * True if the instruction may be executed speculatively (hoisted
     * above a branch): it must be free of side effects and non-excepting.
     * Ld qualifies only after conversion to LdSpec.
     */
    bool isSpeculable() const
    {
        switch (op) {
          case Opcode::St:
          case Opcode::Emit:
          case Opcode::Call:
          case Opcode::Ld:
          case Opcode::BrNz:
          case Opcode::BrZ:
          case Opcode::Jmp:
          case Opcode::Ret:
            return false;
          default:
            return true;
        }
    }

    /** Collect the registers this instruction reads. */
    void sources(std::vector<RegId> &out) const;

    /** Replace every read of register @p from with @p to. */
    void renameSources(RegId from, RegId to);
};

/** Mnemonic for an opcode, e.g. "add". */
const char *opcodeName(Opcode op);

/** Flip a conditional branch's sense (BrNz <-> BrZ).  Panics otherwise. */
Opcode invertBranch(Opcode op);

/** @name Instruction factory helpers
 *  Free functions that build well-formed instructions.
 *  @{
 */
Instruction makeAlu(Opcode op, RegId dst, RegId src1, RegId src2);
Instruction makeAluImm(Opcode op, RegId dst, RegId src1, int64_t imm);
Instruction makeMov(RegId dst, RegId src);
Instruction makeLdi(RegId dst, int64_t imm);
Instruction makeLd(RegId dst, RegId base, int64_t offset);
Instruction makeLdSpec(RegId dst, RegId base, int64_t offset);
Instruction makeSt(RegId base, int64_t offset, RegId value);
Instruction makeEmit(RegId value);
Instruction makeBr(Opcode op, RegId cond, BlockId taken, BlockId fallthru);
Instruction makeJmp(BlockId target);
Instruction makeRet(RegId value);
Instruction makeCall(RegId dst, ProcId callee, std::vector<RegId> args);
/** @} */

} // namespace pathsched::ir

#endif // PATHSCHED_IR_INSTRUCTION_HPP
