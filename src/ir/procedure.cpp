#include "ir/procedure.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace pathsched::ir {

BlockId
Procedure::newBlock()
{
    blocks.emplace_back();
    syncSideTables();
    return BlockId(blocks.size() - 1);
}

void
Procedure::syncSideTables()
{
    if (schedules.size() < blocks.size())
        schedules.resize(blocks.size());
    if (superblocks.size() < blocks.size())
        superblocks.resize(blocks.size());
}

size_t
Procedure::instrCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks)
        n += bb.instrs.size();
    return n;
}

ProcId
Program::findProc(const std::string &name) const
{
    for (const auto &p : procs) {
        if (p.name == name)
            return p.id;
    }
    panic("no procedure named '%s'", name.c_str());
}

size_t
Program::instrCount() const
{
    size_t n = 0;
    for (const auto &p : procs)
        n += p.instrCount();
    return n;
}

void
successorsOf(const BasicBlock &bb, std::vector<BlockId> &out)
{
    out.clear();
    auto push = [&](BlockId b) {
        if (b == kNoBlock)
            return;
        if (std::find(out.begin(), out.end(), b) == out.end())
            out.push_back(b);
    };
    for (size_t i = 0; i + 1 < bb.instrs.size(); ++i) {
        const Instruction &ins = bb.instrs[i];
        if (ins.isBranch())
            push(ins.target0); // mid-block exit; fallthrough is in-block
    }
    if (!bb.instrs.empty()) {
        const Instruction &t = bb.terminator();
        if (t.isBranch()) {
            push(t.target0);
            push(t.target1);
        } else if (t.op == Opcode::Jmp) {
            push(t.target0);
        }
    }
}

void
exitsOf(const BasicBlock &bb, std::vector<BlockExit> &out)
{
    out.clear();
    for (size_t i = 0; i < bb.instrs.size(); ++i) {
        const Instruction &ins = bb.instrs[i];
        const bool last = i + 1 == bb.instrs.size();
        if (ins.isBranch()) {
            out.push_back({uint32_t(i), ins.target0, false});
            if (last && ins.target1 != kNoBlock)
                out.push_back({uint32_t(i), ins.target1, true});
        } else if (ins.op == Opcode::Jmp) {
            out.push_back({uint32_t(i), ins.target0, true});
        } else if (ins.op == Opcode::Ret) {
            out.push_back({uint32_t(i), kNoBlock, true});
        }
    }
}

std::vector<std::vector<BlockId>>
computePreds(const Procedure &proc)
{
    std::vector<std::vector<BlockId>> preds(proc.blocks.size());
    std::vector<BlockId> succs;
    for (BlockId b = 0; b < proc.blocks.size(); ++b) {
        successorsOf(proc.blocks[b], succs);
        for (BlockId s : succs) {
            auto &ps = preds[s];
            if (std::find(ps.begin(), ps.end(), b) == ps.end())
                ps.push_back(b);
        }
    }
    return preds;
}

} // namespace pathsched::ir
