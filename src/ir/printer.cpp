#include "ir/printer.hpp"

#include "support/strutil.hpp"

namespace pathsched::ir {

namespace {

std::string
regName(RegId r)
{
    return r == kNoReg ? std::string("-") : strfmt("r%u", r);
}

} // namespace

std::string
toString(const Instruction &ins)
{
    switch (ins.op) {
      case Opcode::Mov:
        return strfmt("mov %s, %s", regName(ins.dst).c_str(),
                      regName(ins.src1).c_str());
      case Opcode::Ldi:
        return strfmt("ldi %s, %lld", regName(ins.dst).c_str(),
                      (long long)ins.imm);
      case Opcode::Ld:
      case Opcode::LdSpec:
        return strfmt("%s %s, [%s + %lld]", opcodeName(ins.op),
                      regName(ins.dst).c_str(), regName(ins.src1).c_str(),
                      (long long)ins.imm);
      case Opcode::St:
        return strfmt("st [%s + %lld], %s", regName(ins.src1).c_str(),
                      (long long)ins.imm, regName(ins.src2).c_str());
      case Opcode::Emit:
        return strfmt("emit %s", regName(ins.src1).c_str());
      case Opcode::BrNz:
      case Opcode::BrZ:
        if (ins.target1 == kNoBlock) {
            return strfmt("%s %s, B%u  ; exit", opcodeName(ins.op),
                          regName(ins.src1).c_str(), ins.target0);
        }
        return strfmt("%s %s, B%u, B%u", opcodeName(ins.op),
                      regName(ins.src1).c_str(), ins.target0, ins.target1);
      case Opcode::Jmp:
        return strfmt("jmp B%u", ins.target0);
      case Opcode::Ret:
        return strfmt("ret %s", regName(ins.src1).c_str());
      case Opcode::Call: {
        std::vector<std::string> parts;
        for (RegId a : ins.args)
            parts.push_back(regName(a));
        return strfmt("call %s, proc%u(%s)", regName(ins.dst).c_str(),
                      ins.callee, join(parts, ", ").c_str());
      }
      case Opcode::Nop:
        return "nop";
      default:
        if (ins.useImm) {
            return strfmt("%s %s, %s, %lld", opcodeName(ins.op),
                          regName(ins.dst).c_str(),
                          regName(ins.src1).c_str(), (long long)ins.imm);
        }
        return strfmt("%s %s, %s, %s", opcodeName(ins.op),
                      regName(ins.dst).c_str(), regName(ins.src1).c_str(),
                      regName(ins.src2).c_str());
    }
}

std::string
toString(const Procedure &proc)
{
    std::string out = strfmt("proc %s (#%u, %u params, %u regs)\n",
                             proc.name.c_str(), proc.id, proc.numParams,
                             proc.numRegs);
    for (BlockId b = 0; b < proc.blocks.size(); ++b) {
        const bool is_sb = b < proc.superblocks.size() &&
                           proc.superblocks[b].isSuperblock;
        out += strfmt("  B%u:%s\n", b, is_sb ? "  ; superblock" : "");
        const bool sched = b < proc.schedules.size() &&
                           proc.schedules[b].valid;
        for (size_t i = 0; i < proc.blocks[b].instrs.size(); ++i) {
            if (sched) {
                out += strfmt("    [c%3u] %s\n",
                              proc.schedules[b].cycleOf[i],
                              toString(proc.blocks[b].instrs[i]).c_str());
            } else {
                out += strfmt("    %s\n",
                              toString(proc.blocks[b].instrs[i]).c_str());
            }
        }
    }
    return out;
}

std::string
toString(const Program &prog)
{
    std::string out = strfmt("program: %zu procs, main=%u, mem=%llu words\n",
                             prog.procs.size(), prog.mainProc,
                             (unsigned long long)prog.memWords);
    for (const auto &p : prog.procs)
        out += toString(p);
    return out;
}

} // namespace pathsched::ir
