#include "ir/instruction.hpp"

#include "support/logging.hpp"

namespace pathsched::ir {

void
Instruction::sources(std::vector<RegId> &out) const
{
    out.clear();
    switch (op) {
      case Opcode::Ldi:
      case Opcode::Jmp:
      case Opcode::Nop:
        break;
      case Opcode::Mov:
      case Opcode::Emit:
      case Opcode::BrNz:
      case Opcode::BrZ:
        if (src1 != kNoReg)
            out.push_back(src1);
        break;
      case Opcode::Ret:
        if (src1 != kNoReg)
            out.push_back(src1);
        break;
      case Opcode::Ld:
      case Opcode::LdSpec:
        out.push_back(src1);
        break;
      case Opcode::St:
        out.push_back(src1);
        out.push_back(src2);
        break;
      case Opcode::Call:
        for (RegId a : args)
            out.push_back(a);
        break;
      default: // ALU ops
        out.push_back(src1);
        if (!useImm)
            out.push_back(src2);
        break;
    }
}

void
Instruction::renameSources(RegId from, RegId to)
{
    auto fix = [&](RegId &r) {
        if (r == from)
            r = to;
    };
    switch (op) {
      case Opcode::Ldi:
      case Opcode::Jmp:
      case Opcode::Nop:
        break;
      case Opcode::Mov:
      case Opcode::Emit:
      case Opcode::BrNz:
      case Opcode::BrZ:
      case Opcode::Ret:
      case Opcode::Ld:
      case Opcode::LdSpec:
        fix(src1);
        break;
      case Opcode::St:
        fix(src1);
        fix(src2);
        break;
      case Opcode::Call:
        for (RegId &a : args)
            fix(a);
        break;
      default: // ALU ops
        fix(src1);
        if (!useImm)
            fix(src2);
        break;
    }
}

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLe: return "cmple";
      case Opcode::CmpGt: return "cmpgt";
      case Opcode::CmpGe: return "cmpge";
      case Opcode::Mov: return "mov";
      case Opcode::Ldi: return "ldi";
      case Opcode::Ld: return "ld";
      case Opcode::LdSpec: return "ld.s";
      case Opcode::St: return "st";
      case Opcode::Emit: return "emit";
      case Opcode::BrNz: return "brnz";
      case Opcode::BrZ: return "brz";
      case Opcode::Jmp: return "jmp";
      case Opcode::Ret: return "ret";
      case Opcode::Call: return "call";
      case Opcode::Nop: return "nop";
    }
    return "<bad>";
}

Opcode
invertBranch(Opcode op)
{
    if (op == Opcode::BrNz)
        return Opcode::BrZ;
    if (op == Opcode::BrZ)
        return Opcode::BrNz;
    panic("invertBranch on non-branch opcode %s", opcodeName(op));
}

Instruction
makeAlu(Opcode op, RegId dst, RegId src1, RegId src2)
{
    Instruction i;
    i.op = op;
    i.dst = dst;
    i.src1 = src1;
    i.src2 = src2;
    return i;
}

Instruction
makeAluImm(Opcode op, RegId dst, RegId src1, int64_t imm)
{
    Instruction i;
    i.op = op;
    i.useImm = true;
    i.dst = dst;
    i.src1 = src1;
    i.imm = imm;
    return i;
}

Instruction
makeMov(RegId dst, RegId src)
{
    Instruction i;
    i.op = Opcode::Mov;
    i.dst = dst;
    i.src1 = src;
    return i;
}

Instruction
makeLdi(RegId dst, int64_t imm)
{
    Instruction i;
    i.op = Opcode::Ldi;
    i.dst = dst;
    i.imm = imm;
    return i;
}

Instruction
makeLd(RegId dst, RegId base, int64_t offset)
{
    Instruction i;
    i.op = Opcode::Ld;
    i.dst = dst;
    i.src1 = base;
    i.imm = offset;
    return i;
}

Instruction
makeLdSpec(RegId dst, RegId base, int64_t offset)
{
    Instruction i;
    i.op = Opcode::LdSpec;
    i.dst = dst;
    i.src1 = base;
    i.imm = offset;
    return i;
}

Instruction
makeSt(RegId base, int64_t offset, RegId value)
{
    Instruction i;
    i.op = Opcode::St;
    i.src1 = base;
    i.src2 = value;
    i.imm = offset;
    return i;
}

Instruction
makeEmit(RegId value)
{
    Instruction i;
    i.op = Opcode::Emit;
    i.src1 = value;
    return i;
}

Instruction
makeBr(Opcode op, RegId cond, BlockId taken, BlockId fallthru)
{
    ps_assert(op == Opcode::BrNz || op == Opcode::BrZ);
    Instruction i;
    i.op = op;
    i.src1 = cond;
    i.target0 = taken;
    i.target1 = fallthru;
    return i;
}

Instruction
makeJmp(BlockId target)
{
    Instruction i;
    i.op = Opcode::Jmp;
    i.target0 = target;
    return i;
}

Instruction
makeRet(RegId value)
{
    Instruction i;
    i.op = Opcode::Ret;
    i.src1 = value;
    return i;
}

Instruction
makeCall(RegId dst, ProcId callee, std::vector<RegId> args)
{
    Instruction i;
    i.op = Opcode::Call;
    i.dst = dst;
    i.callee = callee;
    i.args = std::move(args);
    return i;
}

} // namespace pathsched::ir
