/**
 * @file
 * Block duplication helpers used by tail duplication and enlargement.
 */

#ifndef PATHSCHED_IR_CLONE_HPP
#define PATHSCHED_IR_CLONE_HPP

#include <unordered_map>
#include <vector>

#include "ir/procedure.hpp"

namespace pathsched::ir {

/**
 * Append a copy of block @p src to @p proc and return the new block id.
 * Branch targets are copied verbatim (still pointing at the originals);
 * use remapTargets() to retarget edges inside a duplicated region.
 */
BlockId appendBlockCopy(Procedure &proc, BlockId src);

/**
 * Rewrite every control-flow target of @p bb through @p mapping.
 * Targets absent from the mapping are left unchanged.
 */
void remapTargets(BasicBlock &bb,
                  const std::unordered_map<BlockId, BlockId> &mapping);

/**
 * Duplicate the block sequence @p region (in order) into @p proc,
 * remapping intra-region edges so the copies link to each other the way
 * the originals did.  Returns the new ids, aligned with @p region.
 */
std::vector<BlockId>
duplicateRegion(Procedure &proc, const std::vector<BlockId> &region);

} // namespace pathsched::ir

#endif // PATHSCHED_IR_CLONE_HPP
