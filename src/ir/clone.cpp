#include "ir/clone.hpp"

#include "support/logging.hpp"

namespace pathsched::ir {

BlockId
appendBlockCopy(Procedure &proc, BlockId src)
{
    ps_assert(src < proc.blocks.size());
    // Copy first: newBlock() may reallocate the block vector.
    BasicBlock copy = proc.blocks[src];
    BlockId id = proc.newBlock();
    proc.blocks[id] = std::move(copy);
    return id;
}

void
remapTargets(BasicBlock &bb,
             const std::unordered_map<BlockId, BlockId> &mapping)
{
    for (Instruction &ins : bb.instrs) {
        if (ins.isBranch() || ins.op == Opcode::Jmp) {
            if (auto it = mapping.find(ins.target0); it != mapping.end())
                ins.target0 = it->second;
            if (ins.target1 != kNoBlock) {
                if (auto it = mapping.find(ins.target1);
                    it != mapping.end()) {
                    ins.target1 = it->second;
                }
            }
        }
    }
}

std::vector<BlockId>
duplicateRegion(Procedure &proc, const std::vector<BlockId> &region)
{
    std::unordered_map<BlockId, BlockId> mapping;
    std::vector<BlockId> copies;
    copies.reserve(region.size());
    for (BlockId b : region) {
        BlockId c = appendBlockCopy(proc, b);
        copies.push_back(c);
        mapping[b] = c;
    }
    for (BlockId c : copies)
        remapTargets(proc.blocks[c], mapping);
    return copies;
}

} // namespace pathsched::ir
