/**
 * @file
 * Pettis-Hansen-style procedure placement.
 *
 * The paper's back end runs a Pettis & Hansen procedure-placement
 * optimization (PLDI'90) before measuring I-cache behaviour (§2.3).
 * This pass implements the classic greedy algorithm: repeatedly take the
 * heaviest call-graph edge and merge the two procedure chains it
 * connects, orienting the join to keep the hot pair adjacent.
 */

#ifndef PATHSCHED_LAYOUT_PETTIS_HANSEN_HPP
#define PATHSCHED_LAYOUT_PETTIS_HANSEN_HPP

#include <vector>

#include "analysis/callgraph.hpp"
#include "ir/types.hpp"

namespace pathsched::layout {

/**
 * Compute a procedure order from dynamic call-edge weights.
 * Unconnected procedures retain their relative id order at the end.
 */
std::vector<ir::ProcId> pettisHansenOrder(const analysis::CallGraph &cg);

} // namespace pathsched::layout

#endif // PATHSCHED_LAYOUT_PETTIS_HANSEN_HPP
