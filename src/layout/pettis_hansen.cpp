#include "layout/pettis_hansen.hpp"

#include <algorithm>
#include <deque>

namespace pathsched::layout {

using ir::ProcId;

std::vector<ProcId>
pettisHansenOrder(const analysis::CallGraph &cg)
{
    const size_t n = cg.numProcs();

    // Undirected edge weights, combining both call directions.
    std::map<std::pair<ProcId, ProcId>, uint64_t> undirected;
    for (const auto &e : cg.edges()) {
        if (e.caller == e.callee || e.weight == 0)
            continue;
        auto key = std::minmax(e.caller, e.callee);
        undirected[{key.first, key.second}] += e.weight;
    }

    struct WeightedEdge
    {
        uint64_t weight;
        ProcId a, b;
    };
    std::vector<WeightedEdge> edges;
    edges.reserve(undirected.size());
    for (const auto &[key, w] : undirected)
        edges.push_back({w, key.first, key.second});
    // Heaviest first; deterministic tie-break on the endpoint ids.
    std::sort(edges.begin(), edges.end(), [](const auto &x, const auto &y) {
        if (x.weight != y.weight)
            return x.weight > y.weight;
        if (x.a != y.a)
            return x.a < y.a;
        return x.b < y.b;
    });

    // Each procedure starts as a singleton chain.
    std::vector<std::deque<ProcId>> chains(n);
    std::vector<size_t> chainOf(n);
    for (ProcId p = 0; p < n; ++p) {
        chains[p].push_back(p);
        chainOf[p] = p;
    }

    for (const auto &e : edges) {
        const size_t ca = chainOf[e.a], cb = chainOf[e.b];
        if (ca == cb)
            continue;
        auto &A = chains[ca];
        auto &B = chains[cb];
        // Orient the merge so e.a and e.b end up adjacent when they sit
        // at chain ends; otherwise simply concatenate.
        if (A.back() != e.a && A.front() == e.a)
            std::reverse(A.begin(), A.end());
        if (B.front() != e.b && B.back() == e.b)
            std::reverse(B.begin(), B.end());
        for (ProcId p : B) {
            A.push_back(p);
            chainOf[p] = ca;
        }
        B.clear();
    }

    std::vector<ProcId> order;
    order.reserve(n);
    for (const auto &chain : chains) {
        for (ProcId p : chain)
            order.push_back(p);
    }
    return order;
}

} // namespace pathsched::layout
