/**
 * @file
 * Instruction address assignment for I-cache simulation.
 *
 * Every operation occupies four bytes, laid out in linear (post-
 * compaction, cycle-major) order within its block; blocks are laid out
 * in id order within a procedure; procedures in a caller-chosen order
 * (identity, or Pettis-Hansen).  Code expansion from tail duplication
 * and enlargement therefore shows up directly as a larger footprint,
 * which is what drives the paper's I-cache results.
 */

#ifndef PATHSCHED_LAYOUT_CODE_LAYOUT_HPP
#define PATHSCHED_LAYOUT_CODE_LAYOUT_HPP

#include <cstdint>
#include <vector>

#include "ir/procedure.hpp"

namespace pathsched::layout {

/** Start addresses of every block of every procedure. */
struct CodeLayout
{
    /** blockAddr[proc][block] = byte address of the block's first op. */
    std::vector<std::vector<uint64_t>> blockAddr;
    /** Bytes per operation. */
    uint32_t instrBytes = 4;
    /** Total code bytes (the paper's "Size (KB)" column analogue). */
    uint64_t totalBytes = 0;

    /** Address of instruction @p idx of block @p b in procedure @p p. */
    uint64_t
    instrAddr(ir::ProcId p, ir::BlockId b, size_t idx) const
    {
        return blockAddr[p][b] + uint64_t(idx) * instrBytes;
    }
};

/** Block ordering within each procedure. */
enum class BlockOrder
{
    ById,     ///< block id order (creation order)
    HotFirst, ///< superblocks first, then plain blocks and stubs —
              ///< the intra-procedural half of Pettis-Hansen chaining
};

/**
 * Lay the program out with procedures in @p proc_order (a permutation of
 * all procedure ids; missing procedures are appended in id order).
 */
CodeLayout layoutProgram(const ir::Program &prog,
                         const std::vector<ir::ProcId> &proc_order,
                         BlockOrder block_order = BlockOrder::ById);

/** Lay the program out with procedures in id order. */
CodeLayout layoutProgram(const ir::Program &prog);

} // namespace pathsched::layout

#endif // PATHSCHED_LAYOUT_CODE_LAYOUT_HPP
