#include "layout/code_layout.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace pathsched::layout {

CodeLayout
layoutProgram(const ir::Program &prog,
              const std::vector<ir::ProcId> &proc_order,
              BlockOrder block_order)
{
    CodeLayout out;
    out.blockAddr.resize(prog.procs.size());

    std::vector<ir::ProcId> order = proc_order;
    std::vector<uint8_t> seen(prog.procs.size(), 0);
    for (ir::ProcId p : order) {
        ps_assert(p < prog.procs.size() && !seen[p]);
        seen[p] = 1;
    }
    for (ir::ProcId p = 0; p < prog.procs.size(); ++p) {
        if (!seen[p])
            order.push_back(p);
    }

    uint64_t addr = 0;
    for (ir::ProcId p : order) {
        const auto &proc = prog.procs[p];
        out.blockAddr[p].resize(proc.blocks.size());

        // Address-assignment order within the procedure.  The entry
        // block always leads; HotFirst then packs the superblocks
        // contiguously so the hot footprint contends less in a
        // direct-mapped cache.
        std::vector<ir::BlockId> blocks;
        blocks.reserve(proc.blocks.size());
        for (ir::BlockId b = 0; b < proc.blocks.size(); ++b)
            blocks.push_back(b);
        if (block_order == BlockOrder::HotFirst) {
            std::stable_sort(
                blocks.begin(), blocks.end(),
                [&](ir::BlockId a, ir::BlockId b) {
                    auto rank = [&](ir::BlockId x) {
                        if (x == 0)
                            return 0; // entry first
                        const bool sb =
                            x < proc.superblocks.size() &&
                            proc.superblocks[x].isSuperblock;
                        return sb ? 1 : 2;
                    };
                    return rank(a) < rank(b);
                });
        }

        for (ir::BlockId b : blocks) {
            out.blockAddr[p][b] = addr;
            addr += uint64_t(proc.blocks[b].instrs.size()) * out.instrBytes;
        }
    }
    out.totalBytes = addr;
    return out;
}

CodeLayout
layoutProgram(const ir::Program &prog)
{
    return layoutProgram(prog, {});
}

} // namespace pathsched::layout
