#include "sched/compact.hpp"

#include <memory>

#include "analysis/liveness.hpp"

namespace pathsched::sched {

CompactStats
compactProgram(ir::Program &prog, const machine::MachineModel &mm,
               const CompactOptions &options)
{
    CompactStats stats;
    for (auto &proc : prog.procs) {
        proc.syncSideTables();

        // Phase 1: local optimization and renaming on the blocks that
        // exist now.  Renaming appends stub blocks, which must not be
        // re-processed (they are already minimal).
        const size_t original_blocks = proc.blocks.size();
        {
            analysis::Liveness live(proc);
            for (ir::BlockId b = 0; b < original_blocks; ++b) {
                if (options.localOpt)
                    stats.opt += optimizeBlock(proc, b, live);
                if (options.rename)
                    stats.rename += renameBlock(proc, b, live);
            }
        }
        proc.syncSideTables();

        // Phase 2: liveness over the renamed procedure (fresh registers
        // and stubs included), then schedule everything.
        analysis::Liveness live(proc);
        for (ir::BlockId b = 0; b < proc.blocks.size(); ++b)
            stats.sched += scheduleBlock(proc, b, live, mm,
                                         options.priority);
    }
    return stats;
}

ScheduleStats
scheduleProgram(ir::Program &prog, const machine::MachineModel &mm,
                SchedPriority priority)
{
    ScheduleStats stats;
    for (auto &proc : prog.procs) {
        proc.syncSideTables();
        analysis::Liveness live(proc);
        for (ir::BlockId b = 0; b < proc.blocks.size(); ++b)
            stats += scheduleBlock(proc, b, live, mm, priority);
    }
    return stats;
}

} // namespace pathsched::sched
