#include "sched/compact.hpp"

#include <chrono>
#include <memory>

#include "analysis/liveness.hpp"
#include "pipeline/stages.hpp"
#include "support/strutil.hpp"

namespace pathsched::sched {

Status
compactProcedure(ir::Program &prog, ir::ProcId proc_id,
                 const machine::MachineModel &mm,
                 const CompactOptions &options, CompactStats &stats)
{
    using Clock = std::chrono::steady_clock;
    static const obs::Observer no_obs;
    const obs::Observer &ob =
        options.observer != nullptr ? *options.observer : no_obs;
    // Local opt and renaming interleave per block, so their times are
    // accumulated across the block loop and sampled once per procedure
    // (as distributions only; intervals would overlap in a trace).
    const bool timed = ob.stats != nullptr;

    ps_assert_msg(proc_id < prog.procs.size(),
                  "compactProcedure: procedure %u out of range", proc_id);
    ir::Procedure &proc = prog.procs[proc_id];
    proc.syncSideTables();

    // Cooperative governance: one unit per instruction touched, polled
    // at block granularity in both phases.
    BudgetMeter meter(options.budget, "compact",
                      options.budget != nullptr
                          ? options.budget->compactOps
                          : 0);

    // Phase 1: local optimization and renaming on the blocks that
    // exist now.  Renaming appends stub blocks, which must not be
    // re-processed (they are already minimal).
    const size_t original_blocks = proc.blocks.size();
    double opt_ms = 0, rename_ms = 0;
    {
        analysis::Liveness live(proc);
        for (ir::BlockId b = 0; b < original_blocks; ++b) {
            Status st =
                meter.checkpoint(proc.blocks[b].instrs.size() + 1);
            if (!st.ok())
                return st;
            if (options.localOpt) {
                const auto t0 = timed ? Clock::now()
                                      : Clock::time_point();
                stats.opt += optimizeBlock(proc, b, live);
                if (timed)
                    opt_ms += std::chrono::duration<double,
                                                    std::milli>(
                                  Clock::now() - t0)
                                  .count();
            }
            if (options.rename) {
                const auto t0 = timed ? Clock::now()
                                      : Clock::time_point();
                stats.rename += renameBlock(proc, b, live);
                if (timed)
                    rename_ms += std::chrono::duration<double,
                                                       std::milli>(
                                     Clock::now() - t0)
                                     .count();
            }
        }
    }
    if (timed) {
        if (options.localOpt)
            ob.addSample("localopt", opt_ms);
        if (options.rename)
            ob.addSample("rename", rename_ms);
    }
    proc.syncSideTables();

    // Phase 2: liveness over the renamed procedure (fresh registers
    // and stubs included), then schedule everything.
    auto t = ob.time("presched");
    analysis::Liveness live(proc);
    for (ir::BlockId b = 0; b < proc.blocks.size(); ++b) {
        Status st = meter.checkpoint(proc.blocks[b].instrs.size() + 1);
        if (!st.ok())
            return st;
        stats.sched += scheduleBlock(proc, b, live, mm,
                                     options.priority);
    }

    // Every block must have come out with a usable schedule; a miss
    // means the procedure cannot be costed and must be quarantined.
    for (ir::BlockId b = 0; b < proc.blocks.size(); ++b) {
        const ir::BlockSchedule &sched = proc.schedules[b];
        if (!sched.valid ||
            sched.cycleOf.size() != proc.blocks[b].instrs.size()) {
            return Status::error(
                ErrorKind::ScheduleFailed,
                strfmt("proc %s block %u has no valid schedule",
                       proc.name.c_str(), b));
        }
    }
    return Status();
}

CompactStats
compactProgram(ir::Program &prog, const machine::MachineModel &mm,
               const CompactOptions &options)
{
    CompactStats stats;
    pipeline::forEachProcOrDie(prog, "compaction", [&](ir::ProcId p) {
        return compactProcedure(prog, p, mm, options, stats);
    });
    return stats;
}

ScheduleStats
scheduleProcedure(ir::Program &prog, ir::ProcId proc_id,
                  const machine::MachineModel &mm, SchedPriority priority)
{
    ScheduleStats stats;
    ps_assert_msg(proc_id < prog.procs.size(),
                  "scheduleProcedure: procedure %u out of range",
                  proc_id);
    ir::Procedure &proc = prog.procs[proc_id];
    proc.syncSideTables();
    analysis::Liveness live(proc);
    for (ir::BlockId b = 0; b < proc.blocks.size(); ++b)
        stats += scheduleBlock(proc, b, live, mm, priority);
    return stats;
}

ScheduleStats
scheduleProgram(ir::Program &prog, const machine::MachineModel &mm,
                SchedPriority priority)
{
    ScheduleStats stats;
    for (ir::ProcId p = 0; p < prog.procs.size(); ++p)
        stats += scheduleProcedure(prog, p, mm, priority);
    return stats;
}

} // namespace pathsched::sched
