#include "sched/local_opt.hpp"

#include <unordered_map>

#include "sched/exit_live.hpp"
#include "support/logging.hpp"

namespace pathsched::sched {

using ir::BlockId;
using ir::Instruction;
using ir::kNoReg;
using ir::Opcode;
using ir::RegId;

namespace {

bool
isCommutative(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::CmpEq:
      case Opcode::CmpNe:
        return true;
      default:
        return false;
    }
}

/** Forward dataflow state for one linear scan. */
class ForwardState
{
  public:
    /** Start a new value version for @p r, invalidating stale facts. */
    void
    define(RegId r)
    {
        ++version_[r];
        copy_.erase(r);
        constant_.erase(r);
        chain_.erase(r);
    }

    void
    recordCopy(RegId dst, RegId src)
    {
        copy_[dst] = {src, version_[src]};
    }

    void recordConst(RegId dst, int64_t v) { constant_[dst] = v; }

    void
    recordChain(RegId dst, RegId base, int64_t off)
    {
        // Fold transitively: if base itself is a chain, root through it.
        if (auto it = chain_.find(base);
            it != chain_.end() && it->second.version == version_[it->second.base]) {
            base = it->second.base;
            off += it->second.offset;
        }
        chain_[dst] = {base, off, version_[base]};
    }

    /** Resolve @p r through the copy map (one hop is enough: the map is
     *  maintained transitively because sources are rewritten first). */
    RegId
    resolveCopy(RegId r) const
    {
        auto it = copy_.find(r);
        if (it == copy_.end() || it->second.version != versionOf(it->second.src))
            return r;
        return it->second.src;
    }

    bool
    constOf(RegId r, int64_t &out) const
    {
        auto it = constant_.find(r);
        if (it == constant_.end())
            return false;
        out = it->second;
        return true;
    }

    /** Current add-chain root of @p r, if any: r == base + offset. */
    bool
    chainOf(RegId r, RegId &base, int64_t &off) const
    {
        auto it = chain_.find(r);
        if (it == chain_.end() ||
            it->second.version != versionOf(it->second.base)) {
            return false;
        }
        base = it->second.base;
        off = it->second.offset;
        return true;
    }

  private:
    uint32_t
    versionOf(RegId r) const
    {
        auto it = version_.find(r);
        return it == version_.end() ? 0 : it->second;
    }

    struct CopyFact
    {
        RegId src;
        uint32_t version;
    };
    struct ChainFact
    {
        RegId base;
        int64_t offset;
        uint32_t version;
    };
    std::unordered_map<RegId, uint32_t> version_;
    std::unordered_map<RegId, CopyFact> copy_;
    std::unordered_map<RegId, int64_t> constant_;
    std::unordered_map<RegId, ChainFact> chain_;
};

bool
isAluOp(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
      case Opcode::Div: case Opcode::Rem: case Opcode::And:
      case Opcode::Or: case Opcode::Xor: case Opcode::Shl:
      case Opcode::Shr: case Opcode::CmpEq: case Opcode::CmpNe:
      case Opcode::CmpLt: case Opcode::CmpLe: case Opcode::CmpGt:
      case Opcode::CmpGe:
        return true;
      default:
        return false;
    }
}

/** One forward simplification sweep.  Returns true when anything changed. */
bool
forwardPass(ir::BasicBlock &bb, LocalOptStats &stats)
{
    ForwardState state;
    bool changed = false;
    std::vector<RegId> srcs;

    for (Instruction &ins : bb.instrs) {
        // 1. Copy-propagate every source.
        ins.sources(srcs);
        for (RegId r : srcs) {
            const RegId to = state.resolveCopy(r);
            if (to != r) {
                ins.renameSources(r, to);
                ++stats.copiesPropagated;
                changed = true;
            }
        }

        // 2. Immediate forms and constant folding for ALU ops.
        if (isAluOp(ins.op)) {
            int64_t c;
            if (!ins.useImm && state.constOf(ins.src2, c)) {
                ins.useImm = true;
                ins.imm = c;
                ins.src2 = kNoReg;
                ++stats.constantsFolded;
                changed = true;
            } else if (!ins.useImm && isCommutative(ins.op) &&
                       state.constOf(ins.src1, c)) {
                ins.src1 = ins.src2;
                ins.useImm = true;
                ins.imm = c;
                ins.src2 = kNoReg;
                ++stats.constantsFolded;
                changed = true;
            }
            // Normalize subtract-immediate into add-immediate so the
            // chain folding below sees one shape.
            if (ins.op == Opcode::Sub && ins.useImm &&
                ins.imm != INT64_MIN) {
                ins.op = Opcode::Add;
                ins.imm = -ins.imm;
                changed = true;
            }
            // i + c1 where i = base + c0  ->  base + (c0 + c1)
            if (ins.op == Opcode::Add && ins.useImm) {
                RegId base;
                int64_t off;
                if (state.chainOf(ins.src1, base, off) &&
                    base != ins.src1) {
                    ins.src1 = base;
                    ins.imm += off;
                    ++stats.chainsFolded;
                    changed = true;
                }
            }
        }

        // 3. Fold add chains into memory offsets.
        if (ins.isLoad() || ins.op == Opcode::St) {
            RegId base;
            int64_t off;
            if (state.chainOf(ins.src1, base, off) && base != ins.src1) {
                ins.src1 = base;
                ins.imm += off;
                ++stats.chainsFolded;
                changed = true;
            }
        }

        // 4. Update dataflow facts from this definition.
        if (ins.hasDst()) {
            state.define(ins.dst);
            if (ins.op == Opcode::Mov && ins.src1 != ins.dst) {
                state.recordCopy(ins.dst, ins.src1);
            } else if (ins.op == Opcode::Ldi) {
                state.recordConst(ins.dst, ins.imm);
            } else if (ins.op == Opcode::Add && ins.useImm &&
                       ins.src1 != ins.dst) {
                state.recordChain(ins.dst, ins.src1, ins.imm);
            }
        }
    }
    return changed;
}

/** Backward dead-code elimination sweep, exact at side exits. */
bool
deadCodePass(ir::Procedure &proc, BlockId b,
             const analysis::Liveness &live, LocalOptStats &stats)
{
    ir::BasicBlock &bb = proc.blocks[b];
    const std::vector<ExitInfo> exits = collectExits(proc, b, live);

    // Sized to the liveness universe: this pass runs before renaming,
    // so the block only mentions registers the solver knew about.
    BitVec live_now(live.numRegs());
    std::vector<uint8_t> keep(bb.instrs.size(), 1);
    std::vector<RegId> srcs;

    size_t exit_cursor = exits.size();
    for (size_t i = bb.instrs.size(); i-- > 0;) {
        const Instruction &ins = bb.instrs[i];
        // Fold in liveness contributed by exits at or after this point.
        while (exit_cursor > 0 && exits[exit_cursor - 1].instrIdx >= i) {
            live_now.unionWith(exits[exit_cursor - 1].liveAtTarget);
            --exit_cursor;
        }

        const bool side_effect = ins.op == Opcode::St ||
                                 ins.op == Opcode::Emit ||
                                 ins.op == Opcode::Call ||
                                 ins.isControlFlow() ||
                                 ins.op == Opcode::Nop;
        if (!side_effect && ins.hasDst() && !live_now.test(ins.dst)) {
            keep[i] = 0;
            ++stats.deadRemoved;
            continue;
        }
        if (ins.hasDst())
            live_now.reset(ins.dst);
        ins.sources(srcs);
        for (RegId r : srcs)
            live_now.set(r);
    }

    bool changed = false;
    for (uint8_t k : keep)
        changed |= k == 0;
    if (!changed)
        return false;

    std::vector<Instruction> kept;
    std::vector<uint32_t> kept_ordinals;
    ir::SuperblockInfo &sb = proc.superblocks[b];
    kept.reserve(bb.instrs.size());
    for (size_t i = 0; i < bb.instrs.size(); ++i) {
        if (keep[i]) {
            kept.push_back(std::move(bb.instrs[i]));
            if (sb.isSuperblock)
                kept_ordinals.push_back(sb.srcOrdinalOf[i]);
        }
    }
    bb.instrs = std::move(kept);
    if (sb.isSuperblock)
        sb.srcOrdinalOf = std::move(kept_ordinals);
    return true;
}

} // namespace

LocalOptStats
optimizeBlock(ir::Procedure &proc, BlockId b,
              const analysis::Liveness &live)
{
    LocalOptStats stats;
    for (int iter = 0; iter < 4; ++iter) {
        bool changed = forwardPass(proc.blocks[b], stats);
        changed |= deadCodePass(proc, b, live, stats);
        if (!changed)
            break;
    }
    return stats;
}

} // namespace pathsched::sched
