/**
 * @file
 * Top-down cycle scheduler (list scheduling) for one block.
 *
 * Implements the paper's compact pass core (§2.3): per superblock (or
 * plain basic block), instructions are placed cycle by cycle on the
 * 8-wide machine with one control operation per cycle, prioritized by
 * critical-path height.  The block's instruction list is rewritten into
 * issue order (cycle-major), the BlockSchedule side table records each
 * instruction's cycle, and loads that ended up above an earlier branch
 * are converted to non-excepting LdSpec.
 */

#ifndef PATHSCHED_SCHED_SCHEDULER_HPP
#define PATHSCHED_SCHED_SCHEDULER_HPP

#include <string>
#include <vector>

#include "analysis/liveness.hpp"
#include "ir/procedure.hpp"
#include "machine/machine.hpp"

namespace pathsched::sched {

/** List-scheduler candidate priority (ablation knob). */
enum class SchedPriority
{
    CriticalPath, ///< highest dependence height first (the default)
    SourceOrder,  ///< earliest ready instruction in program order
};

/** Counters reported by scheduleBlock. */
struct ScheduleStats
{
    uint64_t blocksScheduled = 0;
    uint64_t loadsSpeculated = 0;
    uint64_t totalCycles = 0; ///< static schedule lengths, summed

    ScheduleStats &
    operator+=(const ScheduleStats &o)
    {
        blocksScheduled += o.blocksScheduled;
        loadsSpeculated += o.loadsSpeculated;
        totalCycles += o.totalCycles;
        return *this;
    }
};

/**
 * Compact block @p b of @p proc in place.  @p live must describe the
 * procedure in its current (post-renaming) form.
 */
ScheduleStats scheduleBlock(
    ir::Procedure &proc, ir::BlockId b, const analysis::Liveness &live,
    const machine::MachineModel &mm,
    SchedPriority priority = SchedPriority::CriticalPath);

/**
 * Validate the schedule of block @p b: dependence latencies, issue
 * order on zero-latency edges, slot and control-slot limits.  Appends a
 * description of each violation to @p errors and returns true when
 * none were found.  Intended for tests.
 */
bool validateSchedule(const ir::Procedure &proc, ir::BlockId b,
                      const analysis::Liveness &live,
                      const machine::MachineModel &mm,
                      std::vector<std::string> &errors);

} // namespace pathsched::sched

#endif // PATHSCHED_SCHED_SCHEDULER_HPP
