#include "sched/depgraph.hpp"

#include <algorithm>
#include <unordered_map>

#include "support/logging.hpp"
#include "support/mutation.hpp"

namespace pathsched::sched {

using ir::Instruction;
using ir::kNoReg;
using ir::Opcode;
using ir::RegId;

namespace {

/** Memory-op summary for simple base+offset disambiguation. */
struct MemRef
{
    uint32_t idx;
    bool isLoad;     // Ld/LdSpec
    bool isStore;    // St
    bool isBarrier;  // Call or Emit: never disambiguated
    RegId base = kNoReg;
    int64_t offset = 0;
    /** Index of the in-block def of `base`, or UINT32_MAX (live-in). */
    uint32_t baseVersion = UINT32_MAX;
};

/**
 * True when the two references provably touch different words: same
 * base register value (same in-block version) with different offsets.
 */
bool
provablyDisjoint(const MemRef &a, const MemRef &b)
{
    if (a.isBarrier || b.isBarrier)
        return false;
    return a.base == b.base && a.baseVersion == b.baseVersion &&
           a.offset != b.offset;
}

} // namespace

void
DepGraph::addEdge(uint32_t from, uint32_t to, uint32_t latency)
{
    ps_assert(from < to || latency == 0);
    ps_assert(from != to);
    succs_[from].push_back({to, latency});
    ++numPreds_[to];
}

DepGraph::DepGraph(const std::vector<Instruction> &instrs,
                   const std::vector<ExitInfo> &exits,
                   const machine::MachineModel &mm)
{
    const uint32_t n = uint32_t(instrs.size());
    succs_.resize(n);
    numPreds_.assign(n, 0);
    height_.assign(n, 0);

    // Planted bug for harness self-tests (support/mutation.hpp): with
    // the mutation armed, store->load dependences are dropped in
    // multi-exit (superblock) blocks only, so single-exit blocks — and
    // with them the BB quarantine fallback — keep scheduling correctly.
    const bool drop_memdep =
        exits.size() > 1 && mutationArmed("compact-drop-memdep");

    std::unordered_map<RegId, uint32_t> last_def;
    std::unordered_map<RegId, std::vector<uint32_t>> readers_since_def;
    std::vector<MemRef> mem_refs;
    uint32_t last_control = UINT32_MAX;
    std::vector<RegId> srcs;

    size_t exit_pos = 0; // exits processed so far (all before instr i)

    for (uint32_t i = 0; i < n; ++i) {
        const Instruction &ins = instrs[i];
        const uint32_t lat = mm.latencyOf(ins.op);

        // --- register dependences ---
        ins.sources(srcs);
        for (RegId r : srcs) {
            if (auto it = last_def.find(r); it != last_def.end()) {
                addEdge(it->second, i,
                        mm.latencyOf(instrs[it->second].op)); // RAW
            }
        }
        if (ins.hasDst()) {
            const RegId d = ins.dst;
            if (auto it = readers_since_def.find(d);
                it != readers_since_def.end()) {
                for (uint32_t r : it->second) {
                    if (r != i)
                        addEdge(r, i, 0); // WAR: same cycle, ordered
                }
                it->second.clear();
            }
            if (auto it = last_def.find(d); it != last_def.end()) {
                // WAW: the later def's write must land after the
                // earlier one's.  Guard the subtraction: the second
                // def may have the longer latency.
                const uint32_t ulat = mm.latencyOf(instrs[it->second].op);
                const uint32_t waw = ulat > lat ? ulat - lat + 1 : 1;
                addEdge(it->second, i, waw);
            }
            last_def[d] = i;
        }
        for (RegId r : srcs)
            readers_since_def[r].push_back(i);

        // --- memory / output dependences ---
        const bool mem_read = ins.isLoad();
        const bool mem_write = ins.op == Opcode::St;
        const bool mem_barrier =
            ins.op == Opcode::Call || ins.op == Opcode::Emit;
        if (mem_read || mem_write || mem_barrier) {
            MemRef ref;
            ref.idx = i;
            ref.isLoad = mem_read;
            ref.isStore = mem_write;
            ref.isBarrier = mem_barrier;
            if (mem_read || mem_write) {
                ref.base = ins.src1;
                ref.offset = ins.imm;
                if (auto it = last_def.find(ins.src1);
                    it != last_def.end()) {
                    ref.baseVersion = it->second;
                }
            }
            for (const MemRef &prev : mem_refs) {
                if (prev.isLoad && ref.isLoad)
                    continue; // loads commute
                if (drop_memdep && prev.isStore && ref.isLoad)
                    continue; // deliberately wrong (mutation armed)
                if (provablyDisjoint(prev, ref))
                    continue; // limited load/store reordering
                // Reads may share the consumer's cycle (ordered);
                // writes and barriers force the next cycle.
                const uint32_t mlat =
                    (prev.isStore || prev.isBarrier) ? 1 : 0;
                addEdge(prev.idx, i, mlat);
            }
            mem_refs.push_back(ref);
        }

        // --- control ordering ---
        if (ins.isControlSlot()) {
            if (last_control != UINT32_MAX)
                addEdge(last_control, i, 1);
            last_control = i;
        }

        // --- exit constraints ---
        // (a) this instruction vs. exits *before* it.
        for (size_t e = 0; e < exit_pos; ++e) {
            const ExitInfo &x = exits[e];
            const bool pinned_dst =
                ins.hasDst() && ins.dst < x.liveAtTarget.size() &&
                x.liveAtTarget.test(ins.dst);
            const bool pinned_effect =
                ins.op == Opcode::St || ins.op == Opcode::Emit;
            if (pinned_dst || pinned_effect)
                addEdge(x.instrIdx, i, 1); // may not move above the exit
        }
        // (b) if this instruction *is* an exit, constrain earlier ops.
        if (exit_pos < exits.size() && exits[exit_pos].instrIdx == i) {
            const ExitInfo &x = exits[exit_pos++];
            for (uint32_t j = 0; j < i; ++j) {
                const Instruction &prev = instrs[j];
                if (prev.op == Opcode::St || prev.op == Opcode::Emit) {
                    addEdge(j, i, 0); // side effects may not sink below
                } else if (prev.hasDst() &&
                           prev.dst < x.liveAtTarget.size() &&
                           x.liveAtTarget.test(prev.dst)) {
                    // Value observable off-trace: must be complete (and
                    // issued, for the 0 case) when the exit is taken.
                    const uint32_t plat = mm.latencyOf(prev.op);
                    addEdge(j, i, plat > 0 ? plat - 1 : 0);
                }
            }
        }
    }

    // Everything must issue no later than the terminator's cycle, and
    // before it in issue order.
    if (n > 0) {
        const uint32_t term = n - 1;
        std::vector<uint8_t> has_term_edge(n, 0);
        for (uint32_t i = 0; i < term; ++i) {
            for (const Edge &e : succs_[i]) {
                if (e.to == term)
                    has_term_edge[i] = 1;
            }
        }
        for (uint32_t i = 0; i < term; ++i) {
            if (!has_term_edge[i])
                addEdge(i, term, 0);
        }
    }

    // Critical-path heights: edges always point to larger indices, so a
    // single reverse sweep suffices.
    for (uint32_t i = n; i-- > 0;) {
        uint32_t h = mm.latencyOf(instrs[i].op);
        for (const Edge &e : succs_[i])
            h = std::max(h, e.latency + height_[e.to]);
        height_[i] = h;
    }
}

} // namespace pathsched::sched
