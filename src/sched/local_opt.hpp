/**
 * @file
 * Per-block value-numbering-lite and dead-code elimination.
 *
 * The paper's back end performs "value numbering and dead-code
 * elimination" on each superblock before prescheduling (§2.3).  This
 * pass implements the pieces that matter for compaction quality:
 *
 *  - copy propagation ("move renaming": a use of an unscheduled move's
 *    destination is substituted with the move's source);
 *  - constant propagation of Ldi values into immediate operand forms;
 *  - add-immediate chain folding (i+1+1 -> i+2), which is what lets an
 *    unrolled induction variable update in parallel across iterations;
 *  - folding of add-immediate chains into load/store address offsets;
 *  - dead-code elimination precise to superblock side exits.
 */

#ifndef PATHSCHED_SCHED_LOCAL_OPT_HPP
#define PATHSCHED_SCHED_LOCAL_OPT_HPP

#include <cstdint>

#include "analysis/liveness.hpp"
#include "ir/procedure.hpp"

namespace pathsched::sched {

/** Counters reported by optimizeBlock. */
struct LocalOptStats
{
    uint64_t copiesPropagated = 0;
    uint64_t constantsFolded = 0;
    uint64_t chainsFolded = 0;
    uint64_t deadRemoved = 0;

    LocalOptStats &
    operator+=(const LocalOptStats &o)
    {
        copiesPropagated += o.copiesPropagated;
        constantsFolded += o.constantsFolded;
        chainsFolded += o.chainsFolded;
        deadRemoved += o.deadRemoved;
        return *this;
    }
};

/**
 * Optimize block @p b of @p proc in place.  @p live must describe the
 * procedure in its current form; the pass never changes cross-block
 * liveness (it only removes instructions and rewrites operands), so one
 * Liveness instance remains valid across a whole-procedure sweep.
 */
LocalOptStats optimizeBlock(ir::Procedure &proc, ir::BlockId b,
                            const analysis::Liveness &live);

} // namespace pathsched::sched

#endif // PATHSCHED_SCHED_LOCAL_OPT_HPP
