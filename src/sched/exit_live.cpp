#include "sched/exit_live.hpp"

namespace pathsched::sched {

std::vector<ExitInfo>
collectExits(const ir::Procedure &proc, ir::BlockId b,
             const analysis::Liveness &live)
{
    const ir::BasicBlock &bb = proc.blocks[b];
    std::vector<ExitInfo> out;
    for (size_t i = 0; i < bb.instrs.size(); ++i) {
        const ir::Instruction &ins = bb.instrs[i];
        const bool last = i + 1 == bb.instrs.size();
        if (ins.isBranch()) {
            ExitInfo e;
            e.instrIdx = uint32_t(i);
            e.isTerminator = last;
            e.liveAtTarget = live.liveIn(ins.target0);
            if (last && ins.target1 != ir::kNoBlock)
                e.liveAtTarget.unionWith(live.liveIn(ins.target1));
            out.push_back(std::move(e));
        } else if (ins.op == ir::Opcode::Jmp) {
            ExitInfo e;
            e.instrIdx = uint32_t(i);
            e.isTerminator = true;
            e.liveAtTarget = live.liveIn(ins.target0);
            out.push_back(std::move(e));
        } else if (ins.op == ir::Opcode::Ret) {
            ExitInfo e;
            e.instrIdx = uint32_t(i);
            e.isTerminator = true;
            e.liveAtTarget = BitVec(live.numRegs());
            out.push_back(std::move(e));
        }
    }
    return out;
}

} // namespace pathsched::sched
