/**
 * @file
 * Global Code Motion (Click, PLDI'95) over the strict-form CFG.
 *
 * The superblock pipeline buys global motion by duplicating code until
 * the motion is local (form -> compact).  GCM is the opposite trade:
 * leave the CFG alone and move individual instructions between existing
 * blocks along the dominator tree.  gcmProcedure() hoists each movable
 * instruction to the best legal block on its dominator chain:
 *
 *  - *legal*: the placement range is bounded early by the instruction's
 *    dependences and late by its original block, exactly Click's
 *    early/late interval restricted to blocks that dominate the
 *    original position.  Because this IR is not SSA, legality is
 *    re-derived from first principles per candidate block D over the
 *    region control can traverse between D and the original position
 *    (backward reachability from the original block that stops at D —
 *    when the original block sits on a D-free cycle its own tail is
 *    part of that region, which is where loop-carried updates live):
 *    no definition of a source register and no definition of the
 *    destination other than the candidate itself anywhere in the
 *    region, the destination dead at D's exit (so the hoisted,
 *    possibly speculative, execution can never clobber a live value;
 *    uses fed by the candidate itself are killed at the original
 *    position and never surface there), and D's terminator must not
 *    read the destination (the insertion point precedes it).
 *  - *best*: minimal loop depth, then minimal profiled block frequency
 *    ("loop-depth-aware late scheduling"); ties keep the instruction as
 *    late (as close to its original block) as possible — except for
 *    long-latency instructions, which hoist to the earliest tied block
 *    so their latency overlaps the branches in between ("latency-aware
 *    hoisting", the `lat >= 2 ? late->dom : late` rule of the cuik
 *    exemplar).
 *
 * Only speculable, memory-free, register-writing instructions move
 * (ALU/compare/Mov/Ldi): St/Emit/Call/branches are pinned by side
 * effects, Ld by its faulting address check, and LdSpec by stores it
 * could move across.  Instructions whose destination doubles as a
 * source are pinned too — re-executing them on a cycle through the
 * target block would not be idempotent.
 *
 * Runs before compaction on strict blocks only; the per-block list
 * scheduler then overlaps whatever ended up in each block.  Follows the
 * src/pipeline/stages.hpp conventions: per-procedure, Status-returning,
 * deadline-polled.
 */

#ifndef PATHSCHED_SCHED_GCM_HPP
#define PATHSCHED_SCHED_GCM_HPP

#include <cstdint>
#include <vector>

#include "ir/procedure.hpp"
#include "machine/machine.hpp"
#include "obs/timer.hpp"
#include "support/budget.hpp"
#include "support/status.hpp"

namespace pathsched::sched {

/** Everything configurable about one GCM run. */
struct GcmOptions
{
    /** Machine model; its latencies drive latency-aware hoisting.
     *  Null behaves as unit latency (no latency-motivated motion). */
    const machine::MachineModel *machine = nullptr;
    /**
     * Per-block execution frequencies of the procedure (index = block
     * id), the profile-guided placement signal.  Null or short vectors
     * read as frequency 0, turning the frequency tie-break off.
     */
    const std::vector<uint64_t> *blockFreq = nullptr;
    /** Optional timing sink (the caller picks the prefix). */
    const obs::Observer *observer = nullptr;
    /** Optional budget; only the deadline is polled (per block). */
    const ResourceBudget *budget = nullptr;
};

/** Counters reported by gcmProcedure (deterministic). */
struct GcmStats
{
    uint64_t candidates = 0;     ///< movable instructions examined
    uint64_t hoisted = 0;        ///< instructions moved to a dominator
    uint64_t loopHoisted = 0;    ///< subset moved to a shallower loop depth
    uint64_t latencyHoisted = 0; ///< subset moved purely for latency overlap

    GcmStats &
    operator+=(const GcmStats &o)
    {
        candidates += o.candidates;
        hoisted += o.hoisted;
        loopHoisted += o.loopHoisted;
        latencyHoisted += o.latencyHoisted;
        return *this;
    }
};

/**
 * Run global code motion over procedure @p proc of @p prog in place,
 * accumulating counters into @p stats.  The procedure must be in
 * strict form (no superblock side exits); block count and CFG shape
 * are unchanged, only instruction-to-block assignment moves.
 *
 * Non-OK on deadline expiry or when the moved procedure fails strict
 * structural verification (an internal invariant breach surfaced as a
 * recoverable status so the pipeline's quarantine can degrade the
 * procedure); the procedure may then be partially rewritten and the
 * caller must restore its original body.
 */
Status gcmProcedure(ir::Program &prog, ir::ProcId proc,
                    const GcmOptions &options, GcmStats &stats);

} // namespace pathsched::sched

#endif // PATHSCHED_SCHED_GCM_HPP
