/**
 * @file
 * Register renaming for compaction (§2.3 of the paper).
 *
 * Three renaming mechanisms from the paper's compact pass:
 *
 *  - *anti/output renaming*: every definition of a register other than
 *    the block's last is rewritten to a fresh register (with in-block
 *    uses following suit), removing WAR/WAW serialization — this is
 *    what lets unrolled loop iterations overlap;
 *  - *live off-trace renaming*: when a renamed (intermediate) value is
 *    live at a side exit, a compensation stub block is placed on the
 *    exit edge that copies the fresh register back to the architectural
 *    one.  After the stub exists, the architectural register is no
 *    longer live at the exit, so later definitions of it may be hoisted
 *    above the exit — "this allows more instructions to be above
 *    superblock exits";
 *  - *move renaming* is copy propagation and lives in local_opt.
 */

#ifndef PATHSCHED_SCHED_RENAMER_HPP
#define PATHSCHED_SCHED_RENAMER_HPP

#include <cstdint>

#include "analysis/liveness.hpp"
#include "ir/procedure.hpp"

namespace pathsched::sched {

/** Counters reported by renameBlock. */
struct RenameStats
{
    uint64_t defsRenamed = 0;
    uint64_t stubsCreated = 0;
    uint64_t copiesInserted = 0;

    RenameStats &
    operator+=(const RenameStats &o)
    {
        defsRenamed += o.defsRenamed;
        stubsCreated += o.stubsCreated;
        copiesInserted += o.copiesInserted;
        return *this;
    }
};

/**
 * Rename block @p b of @p proc in place, appending compensation stub
 * blocks to the procedure as needed.  @p live must describe the
 * procedure *before* any block of it was renamed (renaming introduces
 * only fresh registers and retargets exits onto new stubs, so the
 * liveness of pre-existing blocks stays valid for the whole sweep).
 * Liveness must be recomputed before scheduling.
 */
RenameStats renameBlock(ir::Procedure &proc, ir::BlockId b,
                        const analysis::Liveness &live);

} // namespace pathsched::sched

#endif // PATHSCHED_SCHED_RENAMER_HPP
