#include "sched/scheduler.hpp"

#include <algorithm>

#include "sched/depgraph.hpp"
#include "sched/exit_live.hpp"
#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::sched {

using ir::BlockId;
using ir::Instruction;
using ir::Opcode;

ScheduleStats
scheduleBlock(ir::Procedure &proc, BlockId b,
              const analysis::Liveness &live,
              const machine::MachineModel &mm, SchedPriority priority)
{
    ScheduleStats stats;
    ir::BasicBlock &bb = proc.blocks[b];
    const uint32_t n = uint32_t(bb.instrs.size());
    ps_assert(n > 0);

    const std::vector<ExitInfo> exits = collectExits(proc, b, live);
    const DepGraph graph(bb.instrs, exits, mm);

    std::vector<uint32_t> preds_left(n), est(n, 0), cyc(n, 0);
    std::vector<uint8_t> done(n, 0);
    for (uint32_t i = 0; i < n; ++i)
        preds_left[i] = graph.numPreds(i);

    std::vector<uint32_t> issue_order;
    issue_order.reserve(n);

    uint32_t cycle = 0;
    uint32_t scheduled = 0;
    while (scheduled < n) {
        uint32_t slots = 0;
        uint32_t control = 0;
        bool placed_any = true;
        while (placed_any && slots < mm.issueWidth) {
            placed_any = false;
            // Default: highest critical-path height first, original
            // order breaking ties (deterministic).  SourceOrder takes
            // the earliest ready instruction instead (ablation).
            uint32_t best = UINT32_MAX;
            for (uint32_t i = 0; i < n; ++i) {
                if (done[i] || preds_left[i] != 0 || est[i] > cycle)
                    continue;
                if (bb.instrs[i].isControlSlot() &&
                    control >= mm.controlPerCycle) {
                    continue;
                }
                if (best == UINT32_MAX) {
                    best = i;
                    if (priority == SchedPriority::SourceOrder)
                        break;
                } else if (priority == SchedPriority::CriticalPath &&
                           graph.height(i) > graph.height(best)) {
                    best = i;
                }
            }
            if (best == UINT32_MAX)
                break;
            done[best] = 1;
            cyc[best] = cycle;
            issue_order.push_back(best);
            ++scheduled;
            ++slots;
            if (bb.instrs[best].isControlSlot())
                ++control;
            for (const DepGraph::Edge &e : graph.succs(best)) {
                --preds_left[e.to];
                est[e.to] = std::max(est[e.to], cycle + e.latency);
            }
            placed_any = true;
        }
        if (scheduled == n)
            break;
        // Advance to the earliest cycle at which anything can start.
        uint32_t next = UINT32_MAX;
        for (uint32_t i = 0; i < n; ++i) {
            if (!done[i] && preds_left[i] == 0)
                next = std::min(next, est[i]);
        }
        ps_assert_msg(next != UINT32_MAX,
                      "scheduler wedged: dependence cycle in block");
        cycle = std::max(cycle + 1, next);
    }

    // Flatten into issue order and fill the schedule side table.
    ir::SuperblockInfo &sb = proc.superblocks[b];
    std::vector<Instruction> new_instrs;
    std::vector<uint32_t> new_ordinals;
    std::vector<uint32_t> cycle_of;
    new_instrs.reserve(n);
    cycle_of.reserve(n);
    for (uint32_t k = 0; k < n; ++k) {
        const uint32_t i = issue_order[k];
        new_instrs.push_back(std::move(bb.instrs[i]));
        cycle_of.push_back(cyc[i]);
        if (sb.isSuperblock)
            new_ordinals.push_back(sb.srcOrdinalOf[i]);
    }

    // Convert loads hoisted above an earlier conditional branch into
    // non-excepting speculative loads (§2.3, §3.2).
    std::vector<uint32_t> issue_pos(n);
    for (uint32_t k = 0; k < n; ++k)
        issue_pos[issue_order[k]] = k;
    for (uint32_t i = 0; i < n; ++i) {
        if (new_instrs[issue_pos[i]].op != Opcode::Ld)
            continue;
        for (uint32_t e = 0; e < i; ++e) {
            const Instruction &maybe_br = new_instrs[issue_pos[e]];
            if (maybe_br.isBranch() && issue_pos[i] < issue_pos[e]) {
                new_instrs[issue_pos[i]].op = Opcode::LdSpec;
                ++stats.loadsSpeculated;
                break;
            }
        }
    }

    bb.instrs = std::move(new_instrs);
    if (sb.isSuperblock)
        sb.srcOrdinalOf = std::move(new_ordinals);
    ir::BlockSchedule &sched = proc.schedules[b];
    sched.valid = true;
    sched.cycleOf = std::move(cycle_of);
    sched.numCycles = sched.cycleOf.empty() ? 0 : sched.cycleOf.back() + 1;

    ++stats.blocksScheduled;
    stats.totalCycles += sched.numCycles;
    return stats;
}

bool
validateSchedule(const ir::Procedure &proc, BlockId b,
                 const analysis::Liveness &live,
                 const machine::MachineModel &mm,
                 std::vector<std::string> &errors)
{
    const ir::BasicBlock &bb = proc.blocks[b];
    const ir::BlockSchedule &sched = proc.schedules[b];
    const size_t before = errors.size();

    if (!sched.valid) {
        errors.push_back(strfmt("block %u: no schedule", b));
        return false;
    }
    if (sched.cycleOf.size() != bb.instrs.size()) {
        errors.push_back(strfmt("block %u: schedule size mismatch", b));
        return false;
    }

    // Cycles must be non-decreasing in linear order.
    for (size_t i = 1; i < bb.instrs.size(); ++i) {
        if (sched.cycleOf[i] < sched.cycleOf[i - 1]) {
            errors.push_back(
                strfmt("block %u: cycle order violated at %zu", b, i));
        }
    }

    // Re-derive the dependence graph from the (current) linear order
    // and check every edge against the recorded cycles.
    const std::vector<ExitInfo> exits = collectExits(proc, b, live);
    const DepGraph graph(bb.instrs, exits, mm);
    for (uint32_t u = 0; u < bb.instrs.size(); ++u) {
        for (const DepGraph::Edge &e : graph.succs(u)) {
            if (e.latency > 0 &&
                sched.cycleOf[e.to] < sched.cycleOf[u] + e.latency) {
                errors.push_back(strfmt(
                    "block %u: edge %u->%u latency %u violated "
                    "(cycles %u, %u)",
                    b, u, e.to, e.latency, sched.cycleOf[u],
                    sched.cycleOf[e.to]));
            }
        }
    }

    // Resource limits per cycle.
    const uint32_t cycles = sched.numCycles;
    std::vector<uint32_t> slots(cycles, 0), control(cycles, 0);
    for (size_t i = 0; i < bb.instrs.size(); ++i) {
        ++slots[sched.cycleOf[i]];
        if (bb.instrs[i].isControlSlot())
            ++control[sched.cycleOf[i]];
    }
    for (uint32_t c = 0; c < cycles; ++c) {
        if (slots[c] > mm.issueWidth) {
            errors.push_back(
                strfmt("block %u: %u ops in cycle %u", b, slots[c], c));
        }
        if (control[c] > mm.controlPerCycle) {
            errors.push_back(strfmt("block %u: %u control ops in cycle %u",
                                    b, control[c], c));
        }
    }

    return errors.size() == before;
}

} // namespace pathsched::sched
