/**
 * @file
 * The compact pass: whole-program compaction driver.
 *
 * Per procedure: local optimization and renaming over every block
 * (appending compensation stubs), then a liveness recomputation, then
 * list scheduling of every block — superblocks and plain blocks alike,
 * so the basic-block baseline and the superblock configurations share
 * one compactor, as in the paper ("our experimental results use the
 * same compact pass for both edge- and path-profile-based superblock
 * scheduling").
 */

#ifndef PATHSCHED_SCHED_COMPACT_HPP
#define PATHSCHED_SCHED_COMPACT_HPP

#include "ir/procedure.hpp"
#include "machine/machine.hpp"
#include "obs/timer.hpp"
#include "sched/local_opt.hpp"
#include "sched/renamer.hpp"
#include "sched/scheduler.hpp"

namespace pathsched::sched {

/** Feature toggles for ablations. */
struct CompactOptions
{
    bool localOpt = true;
    bool rename = true;
    SchedPriority priority = SchedPriority::CriticalPath;
    /**
     * Optional observability sink: per-procedure local-opt / rename /
     * preschedule wall times are sampled through it (the caller picks
     * the prefix, e.g. "time.P4.compact.").  Null disables timing.
     */
    const obs::Observer *observer = nullptr;
};

/** Aggregated counters from compactProgram. */
struct CompactStats
{
    LocalOptStats opt;
    RenameStats rename;
    ScheduleStats sched;
};

/** Compact every block of every procedure of @p prog in place. */
CompactStats compactProgram(ir::Program &prog,
                            const machine::MachineModel &mm,
                            const CompactOptions &options = CompactOptions());

/**
 * Re-run list scheduling only (no optimization or renaming) over every
 * block.  This is the postschedule step after register allocation: the
 * scheduler now sees the anti/output dependences the allocator's
 * register reuse introduced.
 */
ScheduleStats scheduleProgram(
    ir::Program &prog, const machine::MachineModel &mm,
    SchedPriority priority = SchedPriority::CriticalPath);

} // namespace pathsched::sched

#endif // PATHSCHED_SCHED_COMPACT_HPP
