/**
 * @file
 * The compact pass: whole-program compaction driver.
 *
 * Per procedure: local optimization and renaming over every block
 * (appending compensation stubs), then a liveness recomputation, then
 * list scheduling of every block — superblocks and plain blocks alike,
 * so the basic-block baseline and the superblock configurations share
 * one compactor, as in the paper ("our experimental results use the
 * same compact pass for both edge- and path-profile-based superblock
 * scheduling").
 */

#ifndef PATHSCHED_SCHED_COMPACT_HPP
#define PATHSCHED_SCHED_COMPACT_HPP

#include "ir/procedure.hpp"
#include "machine/machine.hpp"
#include "obs/timer.hpp"
#include "sched/local_opt.hpp"
#include "sched/renamer.hpp"
#include "sched/scheduler.hpp"
#include "support/budget.hpp"
#include "support/status.hpp"

namespace pathsched::sched {

/** Feature toggles for ablations. */
struct CompactOptions
{
    bool localOpt = true;
    bool rename = true;
    SchedPriority priority = SchedPriority::CriticalPath;
    /**
     * Optional observability sink: per-procedure local-opt / rename /
     * preschedule wall times are sampled through it (the caller picks
     * the prefix, e.g. "time.P4.compact.").  Null disables timing.
     */
    const obs::Observer *observer = nullptr;
    /**
     * Optional resource budget (not owned).  compactProcedure charges
     * one unit per instruction it touches against budget->compactOps
     * and polls budget->deadline at block granularity; exhaustion
     * returns BudgetExceeded / DeadlineExceeded.  Null disables.
     */
    const ResourceBudget *budget = nullptr;
};

/** Aggregated counters from compactProgram. */
struct CompactStats
{
    LocalOptStats opt;
    RenameStats rename;
    ScheduleStats sched;

    CompactStats &
    operator+=(const CompactStats &o)
    {
        opt += o.opt;
        rename += o.rename;
        sched += o.sched;
        return *this;
    }
};

/**
 * Compact every block of procedure @p proc of @p prog in place,
 * accumulating counters into @p stats — the recoverable per-procedure
 * entry point behind compactProgram().  Returns
 * ErrorKind::ScheduleFailed when any block ends up without a valid
 * schedule; the procedure may be partially rewritten then, so the
 * caller must discard or restore it.
 */
Status compactProcedure(ir::Program &prog, ir::ProcId proc,
                        const machine::MachineModel &mm,
                        const CompactOptions &options,
                        CompactStats &stats);

/** Compact every block of every procedure of @p prog in place.
 *  Panics on failure — callers that need recovery use
 *  compactProcedure(). */
CompactStats compactProgram(ir::Program &prog,
                            const machine::MachineModel &mm,
                            const CompactOptions &options = CompactOptions());

/** scheduleProgram() for a single procedure (the per-procedure
 *  postschedule used by the pipeline's quarantine path). */
ScheduleStats scheduleProcedure(
    ir::Program &prog, ir::ProcId proc, const machine::MachineModel &mm,
    SchedPriority priority = SchedPriority::CriticalPath);

/**
 * Re-run list scheduling only (no optimization or renaming) over every
 * block.  This is the postschedule step after register allocation: the
 * scheduler now sees the anti/output dependences the allocator's
 * register reuse introduced.
 */
ScheduleStats scheduleProgram(
    ir::Program &prog, const machine::MachineModel &mm,
    SchedPriority priority = SchedPriority::CriticalPath);

} // namespace pathsched::sched

#endif // PATHSCHED_SCHED_COMPACT_HPP
