#include "sched/gcm.hpp"

#include <algorithm>
#include <chrono>

#include "analysis/dominators.hpp"
#include "analysis/liveness.hpp"
#include "analysis/loops.hpp"
#include "ir/verifier.hpp"

namespace pathsched::sched {

namespace {

/** Loop-nesting depth per block: how many natural-loop bodies contain
 *  it.  Irreducible regions simply count the loops found, which is the
 *  conservative (hoist-less) direction. */
std::vector<uint32_t>
computeLoopDepth(const ir::Procedure &proc, const analysis::LoopInfo &loops)
{
    std::vector<uint32_t> depth(proc.blocks.size(), 0);
    for (const analysis::NaturalLoop &l : loops.loops()) {
        for (ir::BlockId b : l.body)
            ++depth[b];
    }
    return depth;
}

/** Placement desirability of a block: lexicographic (loop depth,
 *  profiled frequency).  Lower is better. */
struct PlaceKey
{
    uint32_t depth = 0;
    uint64_t freq = 0;

    bool
    operator<(const PlaceKey &o) const
    {
        if (depth != o.depth)
            return depth < o.depth;
        return freq < o.freq;
    }
    bool
    operator==(const PlaceKey &o) const
    {
        return depth == o.depth && freq == o.freq;
    }
};

/**
 * One instruction's hoist analysis.  Scratch vectors live here so the
 * per-candidate region walk allocates nothing in steady state.
 */
class Hoister
{
  public:
    Hoister(const ir::Procedure &proc,
            const std::vector<std::vector<ir::BlockId>> &preds)
        : proc_(proc), preds_(preds), inRegion_(proc.blocks.size(), 0)
    {}

    /**
     * True when the instruction at @p b[@p idx] (destination @p dst,
     * sources @p srcs) may move to the end of dominator @p D — see the
     * file comment of gcm.hpp for the conditions.  @p live must be
     * current for the procedure's present body.
     */
    bool
    safeAt(ir::BlockId b, size_t idx, ir::RegId dst,
           const std::vector<ir::RegId> &srcs, ir::BlockId D,
           const analysis::Liveness &live)
    {
        // Region: every block that can execute between the last
        // occurrence of D and the next arrival at b — backward
        // reachability from b that never crosses D.  b is in the
        // region; D is not.  When the walk re-reaches b itself, b lies
        // on a D-free cycle: control can pass through ALL of b (the
        // suffix after idx included) on its way back to idx, so the
        // whole block is on a D->b path, not just the prefix.
        std::fill(inRegion_.begin(), inRegion_.end(), 0);
        stack_.clear();
        inRegion_[b] = 1;
        stack_.push_back(b);
        bool cyclic = false;
        while (!stack_.empty()) {
            ir::BlockId x = stack_.back();
            stack_.pop_back();
            for (ir::BlockId p : preds_[x]) {
                if (p == D)
                    continue;
                if (p == b)
                    cyclic = true; // already in region; just note it
                if (inRegion_[p])
                    continue;
                inRegion_[p] = 1;
                stack_.push_back(p);
            }
        }

        // (a) No definition of any source anywhere in the region: the
        // value computed at the end of D must equal the value the
        // original position would compute, on every D->idx path —
        // including, when b is on a D-free cycle, paths through b's
        // own suffix (a loop-carried source update lives exactly
        // there).  (b) No definition of the destination other than the
        // candidate itself: a second def merging into the same
        // register would be clobbered.  Uses of the destination need
        // no scan — a use the candidate itself feeds is killed at idx
        // and invariant by (a); any other use is upward-exposed
        // through the (def-free, by (b)) region into liveIn of one of
        // D's successors, which (d) rejects.
        for (ir::BlockId x = 0; x < proc_.blocks.size(); ++x) {
            if (!inRegion_[x])
                continue;
            const auto &instrs = proc_.blocks[x].instrs;
            const size_t limit =
                (x == b && !cyclic) ? idx : instrs.size();
            for (size_t j = 0; j < limit; ++j) {
                if (x == b && j == idx)
                    continue; // the candidate itself
                const ir::Instruction &J = instrs[j];
                if (J.hasDst() &&
                    (J.dst == dst ||
                     std::find(srcs.begin(), srcs.end(), J.dst) !=
                         srcs.end()))
                    return false;
            }
        }

        // (c) The insertion point is just before D's terminator, which
        // must therefore not read the destination.
        proc_.blocks[D].terminator().sources(tmpSrcs_);
        if (std::find(tmpSrcs_.begin(), tmpSrcs_.end(), dst) !=
            tmpSrcs_.end())
            return false;

        // (d) The hoisted instruction writes dst at the end of every D
        // execution, speculatively on paths that never reach idx: the
        // old value of dst must be dead at D's exit.  liveIn here is
        // the pre-move solution, so the candidate's own consumers
        // (killed at idx) do not surface — anything that does surface
        // would genuinely read the clobbered value.
        ir::successorsOf(proc_.blocks[D], tmpSuccs_);
        for (ir::BlockId y : tmpSuccs_) {
            if (live.liveIn(y).test(dst))
                return false;
        }
        return true;
    }

  private:
    const ir::Procedure &proc_;
    const std::vector<std::vector<ir::BlockId>> &preds_;
    std::vector<uint8_t> inRegion_;
    std::vector<ir::BlockId> stack_;
    std::vector<ir::RegId> tmpSrcs_;
    std::vector<ir::BlockId> tmpSuccs_;
};

/** A GCM-movable instruction: speculable (total, side-effect free),
 *  memory-free (LdSpec still reads memory a store could change),
 *  register-writing, and idempotent (dst is not also a source). */
bool
movable(const ir::Instruction &I, std::vector<ir::RegId> &srcs)
{
    if (!I.isSpeculable() || I.touchesMemory() || !I.hasDst())
        return false;
    I.sources(srcs);
    return std::find(srcs.begin(), srcs.end(), I.dst) == srcs.end();
}

} // namespace

Status
gcmProcedure(ir::Program &prog, ir::ProcId proc, const GcmOptions &options,
             GcmStats &stats)
{
    const auto t0 = std::chrono::steady_clock::now();
    ir::Procedure &p = prog.procs[proc];
    const auto preds = ir::computePreds(p);
    const analysis::Dominators doms(p);
    const analysis::LoopInfo loops(p, doms);
    const std::vector<uint32_t> loop_depth = computeLoopDepth(p, loops);

    auto freqOf = [&](ir::BlockId b) -> uint64_t {
        if (options.blockFreq == nullptr ||
            b >= options.blockFreq->size())
            return 0;
        return (*options.blockFreq)[b];
    };
    auto keyOf = [&](ir::BlockId b) -> PlaceKey {
        return {loop_depth[b], freqOf(b)};
    };

    analysis::Liveness live(p);
    Hoister hoister(p, preds);
    std::vector<ir::RegId> srcs;

    for (ir::BlockId b = 0; b < p.blocks.size(); ++b) {
        if (!doms.reachable(b) || doms.idom(b) == b)
            continue; // unreachable, or the entry (nothing dominates it)
        Status st = deadlineStatus(options.budget, "gcm");
        if (!st.ok())
            return st;
        auto &instrs = p.blocks[b].instrs;
        for (size_t i = 0; i + 1 < instrs.size();) {
            if (!movable(instrs[i], srcs)) {
                ++i;
                continue;
            }
            ++stats.candidates;
            const ir::RegId dst = instrs[i].dst;
            const uint32_t lat =
                options.machine != nullptr
                    ? options.machine->latencyOf(instrs[i].op)
                    : 1;
            const PlaceKey origin_key = keyOf(b);
            ir::BlockId best = b;
            PlaceKey best_key = origin_key;
            // Walk the dominator chain upward.  The unsafe region only
            // grows with distance, so the first illegal candidate ends
            // the walk.
            for (ir::BlockId D = doms.idom(b);;) {
                if (!hoister.safeAt(b, i, dst, srcs, D, live))
                    break;
                const PlaceKey k = keyOf(D);
                // Ties keep the latest placement — unless the latency
                // is worth overlapping, in which case they hoist.
                if (k < best_key || (lat >= 2 && k == best_key)) {
                    best = D;
                    best_key = k;
                }
                if (doms.idom(D) == D)
                    break; // reached the entry
                D = doms.idom(D);
            }
            if (best == b) {
                ++i;
                continue;
            }
            auto &dest = p.blocks[best].instrs;
            dest.insert(dest.end() - 1, instrs[i]);
            instrs.erase(instrs.begin() + ptrdiff_t(i));
            ++stats.hoisted;
            if (best_key.depth < origin_key.depth)
                ++stats.loopHoisted;
            else if (best_key == origin_key)
                ++stats.latencyHoisted;
            // Motion changes live ranges; the exit-liveness check needs
            // a fresh solution before the next candidate.
            live = analysis::Liveness(p);
            // do not advance i: the next instruction shifted into place
        }
    }

    if (options.observer != nullptr) {
        options.observer->addSample(
            "placeMs", std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
    return ir::verifyProcStatus(prog, proc, ir::VerifyMode::Strict);
}

} // namespace pathsched::sched
