/**
 * @file
 * Per-exit liveness view of a block.
 *
 * Compaction decides speculation legality per side exit: an instruction
 * may move above an exit only if its destination is not live at the
 * exit's target.  This helper snapshots, for every exit of a block, the
 * registers live at its destination.
 */

#ifndef PATHSCHED_SCHED_EXIT_LIVE_HPP
#define PATHSCHED_SCHED_EXIT_LIVE_HPP

#include <vector>

#include "analysis/liveness.hpp"
#include "ir/procedure.hpp"
#include "support/bitvec.hpp"

namespace pathsched::sched {

/** One exit of a block with the live-at-target register set. */
struct ExitInfo
{
    /** Instruction index of the exiting branch/jump/return. */
    uint32_t instrIdx;
    /** True for the block's final instruction. */
    bool isTerminator;
    /** Registers live at the exit's destination (empty set for Ret). */
    BitVec liveAtTarget;
};

/**
 * Collect the exits of block @p b of @p proc.  A terminator branch
 * contributes a single ExitInfo whose live set is the union over both
 * targets; a Ret contributes an empty live set (its operand read is a
 * normal data dependence).
 */
std::vector<ExitInfo> collectExits(const ir::Procedure &proc,
                                   ir::BlockId b,
                                   const analysis::Liveness &live);

} // namespace pathsched::sched

#endif // PATHSCHED_SCHED_EXIT_LIVE_HPP
