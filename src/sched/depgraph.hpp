/**
 * @file
 * Dependence graph over one block's instructions.
 *
 * Edge latencies encode scheduling constraints for the top-down cycle
 * scheduler:
 *  - latency L >= 1: the successor may start no earlier than L cycles
 *    after the predecessor issues;
 *  - latency 0: the successor may share the predecessor's cycle but
 *    must follow it in issue (linear) order.  The interpreter executes
 *    the flattened order, so 0-latency edges are exactly the "same
 *    packet, dependence-safe order" constraints.
 *
 * Speculation policy (§2.3): side-effect-free ops may move above side
 * exits when their destination is not live at the exit target (live
 * off-trace renaming arranges for that to usually hold); loads hoisted
 * above a branch are converted to non-excepting LdSpec by the
 * scheduler; stores, emits and calls never move above or below an exit.
 */

#ifndef PATHSCHED_SCHED_DEPGRAPH_HPP
#define PATHSCHED_SCHED_DEPGRAPH_HPP

#include <cstdint>
#include <vector>

#include "ir/procedure.hpp"
#include "machine/machine.hpp"
#include "sched/exit_live.hpp"

namespace pathsched::sched {

/** A dependence DAG; node i is instruction i, edges point forward. */
class DepGraph
{
  public:
    struct Edge
    {
        uint32_t to;
        uint32_t latency;
    };

    /**
     * Build the graph for @p instrs with exit constraints @p exits
     * (from collectExits on the same block) and latencies from @p mm.
     */
    DepGraph(const std::vector<ir::Instruction> &instrs,
             const std::vector<ExitInfo> &exits,
             const machine::MachineModel &mm);

    size_t size() const { return succs_.size(); }
    const std::vector<Edge> &succs(uint32_t i) const { return succs_[i]; }
    uint32_t numPreds(uint32_t i) const { return numPreds_[i]; }

    /** Critical-path height of node @p i (priority for list scheduling). */
    uint32_t height(uint32_t i) const { return height_[i]; }

  private:
    void addEdge(uint32_t from, uint32_t to, uint32_t latency);

    std::vector<std::vector<Edge>> succs_;
    std::vector<uint32_t> numPreds_;
    std::vector<uint32_t> height_;
};

} // namespace pathsched::sched

#endif // PATHSCHED_SCHED_DEPGRAPH_HPP
