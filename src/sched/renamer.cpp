#include "sched/renamer.hpp"

#include <map>
#include <unordered_map>

#include "sched/exit_live.hpp"
#include "support/logging.hpp"

namespace pathsched::sched {

using ir::BlockId;
using ir::Instruction;
using ir::RegId;

RenameStats
renameBlock(ir::Procedure &proc, BlockId b, const analysis::Liveness &live)
{
    RenameStats stats;
    const std::vector<ExitInfo> exits = collectExits(proc, b, live);

    // Work on a local copy: stub creation below resizes proc.blocks.
    std::vector<Instruction> instrs = std::move(proc.blocks[b].instrs);

    std::unordered_map<RegId, size_t> last_def;
    for (size_t i = 0; i < instrs.size(); ++i) {
        if (instrs[i].hasDst())
            last_def[instrs[i].dst] = i;
    }

    // Ordered map: stub copy order must be deterministic.
    std::map<RegId, RegId> renamed;
    std::vector<RegId> srcs;
    size_t exit_pos = 0;

    for (size_t i = 0; i < instrs.size(); ++i) {
        Instruction &ins = instrs[i];

        ins.sources(srcs);
        for (RegId r : srcs) {
            if (auto it = renamed.find(r); it != renamed.end())
                ins.renameSources(r, it->second);
        }

        if (ins.hasDst()) {
            const RegId r = ins.dst;
            if (last_def[r] != i) {
                const RegId fresh = proc.newReg();
                renamed[r] = fresh;
                ins.dst = fresh;
                ++stats.defsRenamed;
            } else {
                renamed.erase(r);
            }
        }

        if (exit_pos < exits.size() && exits[exit_pos].instrIdx == i) {
            const ExitInfo &e = exits[exit_pos++];
            // The terminator can never need compensation: every last
            // definition keeps its architectural register, so `renamed`
            // is empty by the end of the block.
            if (!e.isTerminator && ins.isBranch()) {
                std::vector<std::pair<RegId, RegId>> copies;
                for (const auto &[orig, fresh] : renamed) {
                    if (orig < e.liveAtTarget.size() &&
                        e.liveAtTarget.test(orig)) {
                        copies.emplace_back(orig, fresh);
                    }
                }
                if (!copies.empty()) {
                    const BlockId stub = proc.newBlock();
                    auto &sbb = proc.blocks[stub];
                    for (const auto &[orig, fresh] : copies) {
                        sbb.instrs.push_back(ir::makeMov(orig, fresh));
                        ++stats.copiesInserted;
                    }
                    sbb.instrs.push_back(ir::makeJmp(ins.target0));
                    ins.target0 = stub;
                    ++stats.stubsCreated;
                }
            }
        }
    }
    ps_assert(renamed.empty());

    proc.blocks[b].instrs = std::move(instrs);
    return stats;
}

} // namespace pathsched::sched
