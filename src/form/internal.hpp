/**
 * @file
 * Shared state between the formation sub-passes.  Internal to ps_form.
 */

#ifndef PATHSCHED_FORM_INTERNAL_HPP
#define PATHSCHED_FORM_INTERNAL_HPP

#include <cstdint>
#include <vector>

#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "form/form.hpp"
#include "ir/procedure.hpp"

namespace pathsched::form {

/** Per-procedure formation workspace. */
struct ProcFormState
{
    ProcFormState(ir::Procedure &p, const FormConfig &cfg)
        : proc(p), config(cfg), doms(p), loops(p, doms),
          traceOf(p.blocks.size(), UINT32_MAX)
    {}

    ir::Procedure &proc;
    const FormConfig &config;
    analysis::Dominators doms;
    analysis::LoopInfo loops;

    /** Selection tiling; extended in place by enlargement. */
    std::vector<Trace> traces;
    /** Block -> owning trace, UINT32_MAX when unassigned. */
    std::vector<uint32_t> traceOf;
    /** Initial (pre-enlargement) loop-ness per trace. */
    std::vector<uint8_t> traceIsLoop;
    /** Traces changed by enlargement. */
    std::vector<uint8_t> traceEnlarged;

    bool
    assigned(ir::BlockId b) const
    {
        return traceOf[b] != UINT32_MAX;
    }

    /** True when @p b heads a materializable (multi-block) trace. */
    bool
    isSuperblockHead(ir::BlockId b) const
    {
        const uint32_t t = traceOf[b];
        return t != UINT32_MAX && traces[t].size() >= 2 &&
               traces[t][0] == b;
    }

    /** True when @p b heads a superblock loop. */
    bool
    isSuperblockLoopHead(ir::BlockId b) const
    {
        return isSuperblockHead(b) && traceIsLoop[traceOf[b]];
    }

    /** Instruction count of the original blocks along @p t. */
    size_t
    traceInstrs(const Trace &t) const
    {
        size_t n = 0;
        for (ir::BlockId b : t)
            n += proc.blocks[b].instrs.size();
        return n;
    }
};

/** Profile-agnostic query interface used by selection and enlargement. */
class FormProfile
{
  public:
    virtual ~FormProfile() = default;

    /** Execution frequency of block @p b. */
    virtual uint64_t blockFreq(ir::BlockId b) const = 0;

    /**
     * The most likely extension of trace @p t among the CFG successors
     * of its last block, with its estimated frequency as a trace
     * (exact under path profiles, an edge-frequency proxy under edge
     * profiles).  Returns ir::kNoBlock when no successor ever executed.
     */
    virtual ir::BlockId mostLikelySuccessor(const Trace &t,
                                            uint64_t &freq) const = 0;

    /**
     * Estimated probability that an entry at the head of @p t executes
     * the whole trace (exact under path profiles; the product of branch
     * probabilities under edge profiles).
     */
    virtual double completionRatio(const Trace &t) const = 0;

    /** True when the selector requires mutual-most-likely agreement. */
    virtual bool requiresMutual() const = 0;

    /** Most likely predecessor of @p b (edge profiles only). */
    virtual ir::BlockId mostLikelyPred(ir::BlockId b) const = 0;

    /**
     * The most likely upward extension of trace @p t among the CFG
     * predecessors of its head, with its frequency (upward growth,
     * footnote 2).  Returns ir::kNoBlock when nothing qualifies or,
     * for path profiles, when @p t already exceeds the profiling
     * depth (a prefix extension would then be unmeasurable).
     */
    virtual ir::BlockId mostLikelyPredecessor(const Trace &t,
                                              uint64_t &freq) const = 0;
};

} // namespace pathsched::form

#endif // PATHSCHED_FORM_INTERNAL_HPP
