/**
 * @file
 * Trace selection: edge-profile mutual-most-likely and path-profile
 * most-likely-path-successor (Fig. 2 of the paper).  Internal to
 * ps_form.
 */

#ifndef PATHSCHED_FORM_SELECT_HPP
#define PATHSCHED_FORM_SELECT_HPP

#include <memory>

#include "form/internal.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"

namespace pathsched::form {

/** Build the FormProfile adapter for one procedure. */
std::unique_ptr<FormProfile>
makeEdgeFormProfile(const ir::Procedure &proc,
                    const profile::EdgeProfiler &ep);
std::unique_ptr<FormProfile>
makePathFormProfile(const ir::Procedure &proc,
                    const profile::PathProfiler &pp);

/**
 * Partition the procedure's blocks into traces (§2.1/§2.2): seeds in
 * decreasing block-frequency order, grown downward through the most
 * likely successor, terminated at assigned blocks and back edges (and,
 * under edge profiles, at non-mutual successors).  Fills state.traces,
 * state.traceOf and state.traceIsLoop.
 */
void selectTraces(ProcFormState &state, const FormProfile &profile);

} // namespace pathsched::form

#endif // PATHSCHED_FORM_SELECT_HPP
