#include "form/select.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace pathsched::form {

using ir::BlockId;
using ir::kNoBlock;

namespace {

/** Edge-profile adapter: heuristics over independent point statistics. */
class EdgeFormProfile : public FormProfile
{
  public:
    EdgeFormProfile(const ir::Procedure &proc,
                    const profile::EdgeProfiler &ep)
        : proc_(proc), ep_(ep)
    {}

    uint64_t
    blockFreq(BlockId b) const override
    {
        return ep_.blockFreq(proc_.id, b);
    }

    BlockId
    mostLikelySuccessor(const Trace &t, uint64_t &freq) const override
    {
        const BlockId last = t.back();
        const BlockId s = ep_.mostLikelySucc(proc_.id, last);
        freq = s == kNoBlock ? 0 : ep_.edgeFreq(proc_.id, last, s);
        return s;
    }

    double
    completionRatio(const Trace &t) const override
    {
        // Edge profiles cannot measure trace completion; the classical
        // estimate multiplies independent branch probabilities (and is
        // exactly the approximation Fig. 1 shows can be wrong).
        double p = 1.0;
        for (size_t i = 0; i + 1 < t.size(); ++i) {
            const uint64_t bf = ep_.blockFreq(proc_.id, t[i]);
            if (bf == 0)
                return 0.0;
            p *= double(ep_.edgeFreq(proc_.id, t[i], t[i + 1])) /
                 double(bf);
        }
        return p;
    }

    bool requiresMutual() const override { return true; }

    BlockId
    mostLikelyPred(BlockId b) const override
    {
        return ep_.mostLikelyPred(proc_.id, b);
    }

    BlockId
    mostLikelyPredecessor(const Trace &t, uint64_t &freq) const override
    {
        const BlockId p = ep_.mostLikelyPred(proc_.id, t.front());
        freq = p == kNoBlock ? 0 : ep_.edgeFreq(proc_.id, p, t.front());
        return p;
    }

  private:
    const ir::Procedure &proc_;
    const profile::EdgeProfiler &ep_;
};

/** Path-profile adapter: exact trace frequencies (Fig. 2). */
class PathFormProfile : public FormProfile
{
  public:
    PathFormProfile(const ir::Procedure &proc,
                    const profile::PathProfiler &pp)
        : proc_(proc), pp_(pp)
    {}

    uint64_t
    blockFreq(BlockId b) const override
    {
        return pp_.blockFreq(proc_.id, b);
    }

    BlockId
    mostLikelySuccessor(const Trace &t, uint64_t &freq) const override
    {
        std::vector<BlockId> succs;
        ir::successorsOf(proc_.blocks[t.back()], succs);
        // Only the trailing window can matter for the query; clip long
        // traces so candidate windows stay within the profiling depth.
        const size_t keep =
            std::min<size_t>(t.size(), pp_.params().maxBlocks);
        std::vector<BlockId> window(t.end() - ptrdiff_t(keep), t.end());
        window.push_back(kNoBlock); // placeholder for the candidate

        BlockId best = kNoBlock;
        uint64_t best_freq = 0;
        for (BlockId s : succs) {
            window.back() = s;
            const uint64_t f = pp_.pathFreq(proc_.id, window);
            if (f > best_freq ||
                (f > 0 && f == best_freq && s < best)) {
                best = s;
                best_freq = f;
            }
        }
        freq = best_freq;
        return best;
    }

    double
    completionRatio(const Trace &t) const override
    {
        const uint64_t head = pp_.blockFreq(proc_.id, t[0]);
        if (head == 0)
            return 0.0;
        const uint64_t whole = pp_.pathFreq(proc_.id, t);
        return std::min(1.0, double(whole) / double(head));
    }

    bool requiresMutual() const override { return false; }

    BlockId mostLikelyPred(BlockId) const override { return kNoBlock; }

    BlockId
    mostLikelyPredecessor(const Trace &t, uint64_t &freq) const override
    {
        freq = 0;
        // A prefix extension is only measurable while the whole trace
        // still fits inside one profiled window.
        if (t.size() + 1 > pp_.params().maxBlocks)
            return kNoBlock;
        if (preds_.empty())
            preds_ = ir::computePreds(proc_);

        std::vector<BlockId> window;
        window.reserve(t.size() + 1);
        window.push_back(kNoBlock); // candidate slot
        window.insert(window.end(), t.begin(), t.end());

        BlockId best = kNoBlock;
        for (BlockId p : preds_[t.front()]) {
            window.front() = p;
            const uint64_t f = pp_.pathFreq(proc_.id, window);
            if (f > freq || (f > 0 && f == freq && p < best)) {
                best = p;
                freq = f;
            }
        }
        return best;
    }

  private:
    const ir::Procedure &proc_;
    const profile::PathProfiler &pp_;
    mutable std::vector<std::vector<BlockId>> preds_;
};

} // namespace

std::unique_ptr<FormProfile>
makeEdgeFormProfile(const ir::Procedure &proc,
                    const profile::EdgeProfiler &ep)
{
    return std::make_unique<EdgeFormProfile>(proc, ep);
}

std::unique_ptr<FormProfile>
makePathFormProfile(const ir::Procedure &proc,
                    const profile::PathProfiler &pp)
{
    return std::make_unique<PathFormProfile>(proc, pp);
}

void
selectTraces(ProcFormState &state, const FormProfile &profile)
{
    const size_t n = state.proc.blocks.size();

    // Seeds in decreasing node-frequency order (§2.2), skipping blocks
    // that never executed.
    std::vector<BlockId> seeds;
    for (BlockId b = 0; b < n; ++b) {
        if (profile.blockFreq(b) > 0)
            seeds.push_back(b);
    }
    std::sort(seeds.begin(), seeds.end(), [&](BlockId a, BlockId b) {
        const uint64_t fa = profile.blockFreq(a);
        const uint64_t fb = profile.blockFreq(b);
        return fa != fb ? fa > fb : a < b;
    });

    for (BlockId seed : seeds) {
        if (state.assigned(seed))
            continue;
        const uint32_t idx = uint32_t(state.traces.size());
        Trace trace{seed};
        state.traceOf[seed] = idx;

        while (true) {
            uint64_t freq = 0;
            const BlockId s = profile.mostLikelySuccessor(trace, freq);
            if (s == kNoBlock || freq == 0)
                break;
            if (state.assigned(s))
                break;
            if (state.loops.isBackEdge(trace.back(), s))
                break;
            if (profile.requiresMutual() &&
                profile.mostLikelyPred(s) != trace.back()) {
                break;
            }
            state.traceOf[s] = idx;
            trace.push_back(s);
        }

        if (state.config.growUpward) {
            while (true) {
                uint64_t freq = 0;
                const BlockId p =
                    profile.mostLikelyPredecessor(trace, freq);
                if (p == kNoBlock || freq == 0)
                    break;
                if (state.assigned(p))
                    break;
                if (state.loops.isBackEdge(p, trace.front()))
                    break;
                if (profile.requiresMutual()) {
                    // Mutual-most-likely, upward flavour: p's most
                    // likely successor must be the current head.
                    Trace probe{p};
                    uint64_t succ_freq = 0;
                    if (profile.mostLikelySuccessor(probe, succ_freq) !=
                        trace.front()) {
                        break;
                    }
                }
                state.traceOf[p] = idx;
                trace.insert(trace.begin(), p);
            }
        }
        state.traces.push_back(std::move(trace));
    }

    // Initial loop-ness: the trace's most likely continuation returns
    // to its own head ("superblocks whose last blocks are likely to
    // jump to their first blocks", §2.1).
    state.traceIsLoop.assign(state.traces.size(), 0);
    state.traceEnlarged.assign(state.traces.size(), 0);
    for (size_t i = 0; i < state.traces.size(); ++i) {
        uint64_t freq = 0;
        const BlockId s =
            profile.mostLikelySuccessor(state.traces[i], freq);
        if (s == state.traces[i][0] && freq > 0)
            state.traceIsLoop[i] = 1;
    }
}

} // namespace pathsched::form
