#include "form/enlarge.hpp"

#include <algorithm>
#include <cmath>

#include "support/logging.hpp"

namespace pathsched::form {

using ir::BlockId;
using ir::kNoBlock;

namespace {

/**
 * Unified path-based enlargement of one trace (Fig. 2's enlarge_trace).
 * Appends most-likely-path successors; stops at non-loop superblock
 * heads, at the (maxLoopHeads+1)-th loop head, at the size cap, or —
 * under the "P4e" policy — at any head when the trace is not a loop.
 */
bool
enlargePath(ProcFormState &state, const FormProfile &profile,
            uint32_t idx)
{
    const FormConfig &cfg = state.config;
    Trace t = state.traces[idx];
    if (profile.completionRatio(t) < cfg.completionThreshold)
        return false;

    const bool orig_is_loop = state.traceIsLoop[idx] != 0;
    uint32_t loop_heads = 0;
    size_t instrs = state.traceInstrs(t);

    while (true) {
        uint64_t freq = 0;
        const BlockId s = profile.mostLikelySuccessor(t, freq);
        if (s == kNoBlock || freq == 0)
            break;
        if (state.isSuperblockHead(s)) {
            if (!state.isSuperblockLoopHead(s))
                break;
            if (cfg.nonLoopStopsAtAnyHead && !orig_is_loop)
                break; // P4e: non-loops use only tail-duplicated code
            if (loop_heads >= cfg.maxLoopHeads)
                break;
            ++loop_heads;
        } else if (state.loops.isLoopHeader(s)) {
            // A natural-loop header swallowed into a trace interior:
            // still bound the number of times enlargement laps it.
            if (loop_heads >= cfg.maxLoopHeads)
                break;
            ++loop_heads;
        }
        const size_t add = state.proc.blocks[s].instrs.size();
        if (instrs + add > cfg.maxInstrs)
            break;
        t.push_back(s);
        instrs += add;
    }

    if (t.size() == state.traces[idx].size())
        return false;
    state.traces[idx] = std::move(t);
    state.traceEnlarged[idx] = 1;
    return true;
}

/**
 * Classical superblock-loop unrolling and peeling (§2.1): the trace is
 * repeated k times, where k is the unroll factor for high-iteration
 * loops and the observed mean iteration count for low-iteration loops
 * (peeling).  In both cases the final back edge still targets the
 * head, which is exactly how the classical transformations connect
 * their copies.
 */
bool
enlargeEdgeLoop(ProcFormState &state, const FormProfile &profile,
                uint32_t idx)
{
    // No completion gate here: an edge profile cannot measure whether
    // the body completes (Fig. 1), so the classical transformation
    // unrolls along the dominant directions regardless — exactly the
    // behaviour Fig. 3(a) illustrates.  The unroll degree still adapts
    // to the observed mean iteration count (peeling).
    const FormConfig &cfg = state.config;
    const Trace &t = state.traces[idx];
    const uint64_t head_freq = profile.blockFreq(t[0]);
    uint64_t back_freq = 0;
    {
        Trace probe = t;
        uint64_t freq = 0;
        const BlockId s = profile.mostLikelySuccessor(probe, freq);
        if (s == t[0])
            back_freq = freq;
    }
    const uint64_t entries =
        head_freq > back_freq ? head_freq - back_freq : 0;
    double avg_iter = cfg.unrollFactor;
    if (entries > 0)
        avg_iter = double(head_freq) / double(entries);

    uint64_t k = uint64_t(std::llround(avg_iter));
    k = std::clamp<uint64_t>(k, 1, cfg.unrollFactor);
    const size_t body = state.traceInstrs(t);
    while (k > 1 && k * body > cfg.maxInstrs)
        --k;
    if (k <= 1)
        return false;

    Trace unrolled;
    unrolled.reserve(t.size() * k);
    for (uint64_t copy = 0; copy < k; ++copy)
        unrolled.insert(unrolled.end(), t.begin(), t.end());
    state.traces[idx] = std::move(unrolled);
    state.traceEnlarged[idx] = 1;
    return true;
}

/** Classical BTE requires the expanded branch to be decisively biased. */
constexpr double kBteLikelihood = 0.70;
/** Classical BTE examines the superblock's last branch, appends the
 *  target, and may repeat once on the new last branch — it is not the
 *  unbounded path walk of the unified mechanism. */
constexpr int kBteMaxExpansions = 2;

/**
 * Classical branch target expansion (§2.1): while the trace's last
 * branch likely jumps to the head of another (non-loop) superblock,
 * append that superblock's selected contents, up to a small bound.
 */
bool
enlargeEdgeTargetExpansion(ProcFormState &state,
                           const FormProfile &profile, uint32_t idx)
{
    const FormConfig &cfg = state.config;
    Trace t = state.traces[idx];
    if (profile.completionRatio(t) < cfg.completionThreshold)
        return false;

    size_t instrs = state.traceInstrs(t);
    bool changed = false;
    for (int round = 0; round < kBteMaxExpansions; ++round) {
        uint64_t freq = 0;
        const BlockId s = profile.mostLikelySuccessor(t, freq);
        if (s == kNoBlock || freq == 0)
            break;
        const uint64_t last_freq = profile.blockFreq(t.back());
        if (last_freq == 0 ||
            double(freq) / double(last_freq) < kBteLikelihood) {
            break; // not "likely" enough to expand
        }
        if (s == t[0])
            break; // never expand into ourselves
        if (!state.isSuperblockHead(s) || state.isSuperblockLoopHead(s))
            break;
        const Trace &target = state.traces[state.traceOf[s]];
        const size_t add = state.traceInstrs(target);
        if (instrs + add > cfg.maxInstrs)
            break;
        t.insert(t.end(), target.begin(), target.end());
        instrs += add;
        changed = true;
    }

    if (!changed)
        return false;
    state.traces[idx] = std::move(t);
    state.traceEnlarged[idx] = 1;
    return true;
}

} // namespace

void
enlargeTraces(ProcFormState &state, const FormProfile &profile,
              FormStats &stats)
{
    // Hottest superblocks first.
    std::vector<uint32_t> order(state.traces.size());
    for (uint32_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        const uint64_t fa = profile.blockFreq(state.traces[a][0]);
        const uint64_t fb = profile.blockFreq(state.traces[b][0]);
        return fa != fb ? fa > fb : a < b;
    });

    const ResourceBudget *bud = state.config.budget;
    for (uint32_t idx : order) {
        // Stop growing on an expired deadline; formProcedure reports
        // the typed error right after this pass returns.
        if (bud != nullptr && bud->deadline.expired())
            break;
        bool enlarged = false;
        if (state.config.mode == ProfileMode::Path) {
            enlarged = enlargePath(state, profile, idx);
        } else if (state.traceIsLoop[idx]) {
            enlarged = enlargeEdgeLoop(state, profile, idx);
        } else {
            enlarged = enlargeEdgeTargetExpansion(state, profile, idx);
        }
        if (enlarged)
            ++stats.enlargedSuperblocks;
    }
}

} // namespace pathsched::form
