/**
 * @file
 * Superblock enlargement: the classical trio (branch target expansion,
 * loop peeling, loop unrolling) under edge profiles, and the unified
 * most-likely-path-successor mechanism under path profiles (Fig. 2).
 * Internal to ps_form.
 */

#ifndef PATHSCHED_FORM_ENLARGE_HPP
#define PATHSCHED_FORM_ENLARGE_HPP

#include "form/internal.hpp"

namespace pathsched::form {

/**
 * Extend the selected traces in place according to state.config.
 * Traces are processed in decreasing head-frequency order; extended
 * traces are flagged in state.traceEnlarged.
 */
void enlargeTraces(ProcFormState &state, const FormProfile &profile,
                   FormStats &stats);

} // namespace pathsched::form

#endif // PATHSCHED_FORM_ENLARGE_HPP
