#include "form/materialize.hpp"

#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::form {

using ir::BasicBlock;
using ir::BlockId;
using ir::Instruction;
using ir::kNoBlock;
using ir::Opcode;

Status
materializeTraces(ProcFormState &state, FormStats &stats)
{
    ir::Procedure &proc = state.proc;
    proc.syncSideTables();

    // Heads are overwritten in place, but enlarged traces may revisit
    // them, so all code is copied from a pre-materialization snapshot.
    const std::vector<BasicBlock> snapshot = proc.blocks;

    auto broken = [&](const std::string &msg) {
        return Status::error(
            ErrorKind::VerifyFailed,
            strfmt("proc %s: %s", proc.name.c_str(), msg.c_str()));
    };

    for (size_t ti = 0; ti < state.traces.size(); ++ti) {
        const Trace &t = state.traces[ti];
        if (t.size() < 2)
            continue;
        const BlockId head = t[0];

        std::vector<Instruction> merged;
        std::vector<uint32_t> ordinals;
        for (size_t i = 0; i < t.size(); ++i) {
            const BasicBlock &src = snapshot[t[i]];
            if (src.instrs.empty())
                return broken(strfmt("trace block %u is empty", t[i]));
            for (size_t j = 0; j < src.instrs.size(); ++j) {
                const bool last = j + 1 == src.instrs.size();
                Instruction ins = src.instrs[j];
                if (last && i + 1 < t.size()) {
                    // Internal terminator: turn into a side exit (or
                    // drop) so the trace falls through within the
                    // merged block.
                    const BlockId on_trace = t[i + 1];
                    if (ins.isBranch()) {
                        if (ins.target0 != on_trace &&
                            ins.target1 != on_trace) {
                            return broken(strfmt(
                                "trace successor %u is not a CFG "
                                "successor of block %u",
                                on_trace, t[i]));
                        }
                        if (ins.target0 == on_trace &&
                            ins.target1 == on_trace) {
                            continue; // both ways continue the trace
                        }
                        if (ins.target0 == on_trace) {
                            // Trace follows the taken edge: invert so
                            // "taken" means "leave the superblock".
                            ins.op = ir::invertBranch(ins.op);
                            ins.target0 = ins.target1;
                        }
                        ins.target1 = kNoBlock; // side-exit form
                    } else if (ins.op == Opcode::Jmp) {
                        if (ins.target0 != on_trace) {
                            return broken(strfmt(
                                "trace jumps past successor %u from "
                                "block %u",
                                on_trace, t[i]));
                        }
                        continue; // pure fallthrough inside the block
                    } else {
                        return broken(strfmt(
                            "block %u cannot be a trace interior "
                            "(terminator %s)",
                            t[i], opcodeName(ins.op)));
                    }
                }
                merged.push_back(std::move(ins));
                ordinals.push_back(uint32_t(i));
            }
        }
        if (merged.empty())
            return broken(strfmt("trace at head %u merged to nothing",
                                 head));

        ir::SuperblockInfo &sb = proc.superblocks[head];
        sb.isSuperblock = true;
        sb.numSrcBlocks = uint32_t(t.size());
        sb.srcOrdinalOf = std::move(ordinals);
        const Instruction &term = merged.back();
        sb.isLoop = term.target0 == head ||
                    (term.isBranch() && term.target1 == head);

        proc.blocks[head].instrs = std::move(merged);
        ++stats.superblocksFormed;
        stats.blocksDuplicated += t.size() - 1;
    }
    return Status();
}

void
removeUnreachable(ir::Procedure &proc, FormStats &stats)
{
    proc.syncSideTables();
    const size_t n = proc.blocks.size();
    std::vector<uint8_t> reachable(n, 0);
    std::vector<BlockId> work{0};
    reachable[0] = 1;
    std::vector<BlockId> succs;
    while (!work.empty()) {
        const BlockId b = work.back();
        work.pop_back();
        ir::successorsOf(proc.blocks[b], succs);
        for (BlockId s : succs) {
            if (!reachable[s]) {
                reachable[s] = 1;
                work.push_back(s);
            }
        }
    }

    std::vector<BlockId> remap(n, kNoBlock);
    BlockId next = 0;
    for (BlockId b = 0; b < n; ++b) {
        if (reachable[b])
            remap[b] = next++;
    }
    if (next == n)
        return; // nothing to drop

    stats.unreachableRemoved += n - next;
    std::vector<BasicBlock> blocks(next);
    std::vector<ir::BlockSchedule> schedules(next);
    std::vector<ir::SuperblockInfo> superblocks(next);
    for (BlockId b = 0; b < n; ++b) {
        if (!reachable[b])
            continue;
        blocks[remap[b]] = std::move(proc.blocks[b]);
        schedules[remap[b]] = std::move(proc.schedules[b]);
        superblocks[remap[b]] = std::move(proc.superblocks[b]);
    }
    for (auto &bb : blocks) {
        for (Instruction &ins : bb.instrs) {
            if (ins.isBranch() || ins.op == Opcode::Jmp) {
                ps_assert(remap[ins.target0] != kNoBlock);
                ins.target0 = remap[ins.target0];
                if (ins.target1 != kNoBlock) {
                    ps_assert(remap[ins.target1] != kNoBlock);
                    ins.target1 = remap[ins.target1];
                }
            }
        }
    }
    proc.blocks = std::move(blocks);
    proc.schedules = std::move(schedules);
    proc.superblocks = std::move(superblocks);
}

} // namespace pathsched::form
