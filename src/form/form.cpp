#include "form/form.hpp"

#include "form/enlarge.hpp"
#include "form/internal.hpp"
#include "form/materialize.hpp"
#include "form/select.hpp"
#include "ir/verifier.hpp"
#include "pipeline/stages.hpp"
#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::form {

Status
formProcedure(ir::Program &prog, ir::ProcId proc_id,
              const profile::EdgeProfiler *ep,
              const profile::PathProfiler *pp, const FormConfig &config,
              FormStats &stats)
{
    if (config.mode == ProfileMode::Edge) {
        ps_assert_msg(ep != nullptr, "edge formation needs an edge profile");
    } else {
        ps_assert_msg(pp != nullptr, "path formation needs a path profile");
    }
    ps_assert_msg(proc_id < prog.procs.size(),
                  "formProcedure: procedure %u out of range", proc_id);

    // A null observer keeps the timers sink-free (near-zero cost).
    static const obs::Observer no_obs;
    const obs::Observer &ob =
        config.observer != nullptr ? *config.observer : no_obs;

    {
        Status st = deadlineStatus(config.budget, "form");
        if (!st.ok())
            return st;
    }

    ir::Procedure &proc = prog.procs[proc_id];
    const size_t orig_ops = proc.instrCount();
    ProcFormState state(proc, config);
    std::unique_ptr<FormProfile> profile =
        config.mode == ProfileMode::Edge
            ? makeEdgeFormProfile(proc, *ep)
            : makePathFormProfile(proc, *pp);

    {
        auto t = ob.time("select");
        selectTraces(state, *profile);
    }
    stats.tracesSelected += state.traces.size();
    for (const Trace &t : state.traces) {
        if (t.size() >= 2)
            ++stats.multiBlockTraces;
    }

    if (config.enlarge) {
        auto t = ob.time("enlarge");
        enlargeTraces(state, *profile, stats);
        // enlargeTraces stops growing on an expired deadline but cannot
        // report it; surface the typed error here.
        Status st = deadlineStatus(config.budget, "form");
        if (!st.ok())
            return st;
    }

    {
        auto t = ob.time("materialize");
        Status st = materializeTraces(state, stats);
        if (!st.ok())
            return st;
        removeUnreachable(proc, stats);
    }
    proc.syncSideTables();

    if (config.budget != nullptr && config.budget->formGrowthOps != 0) {
        const size_t now_ops = proc.instrCount();
        if (now_ops > orig_ops + config.budget->formGrowthOps) {
            return Status::error(
                ErrorKind::BudgetExceeded,
                strfmt("form: proc %s grew by %zu ops "
                       "(growth budget %llu)",
                       proc.name.c_str(), now_ops - orig_ops,
                       (unsigned long long)config.budget->formGrowthOps));
        }
    }

    return ir::verifyProcStatus(prog, proc_id,
                                ir::VerifyMode::Superblock);
}

FormStats
formProgram(ir::Program &prog, const profile::EdgeProfiler *ep,
            const profile::PathProfiler *pp, const FormConfig &config)
{
    FormStats stats;
    pipeline::forEachProcOrDie(prog, "formation", [&](ir::ProcId p) {
        return formProcedure(prog, p, ep, pp, config, stats);
    });
    ir::verifyOrDie(prog, ir::VerifyMode::Superblock);
    return stats;
}

} // namespace pathsched::form
