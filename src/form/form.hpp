/**
 * @file
 * Superblock formation (the paper's "form" pass, §2).
 *
 * Formation runs in three steps (§2.1):
 *  1. trace selection partitions each procedure's blocks into traces —
 *     mutual-most-likely under edge profiles, or most-likely-path-
 *     successor under path profiles (Fig. 2);
 *  2. tail duplication turns each multi-block trace into a superblock:
 *     here the trace is materialized as one merged block (internal
 *     branches become side exits) while the original non-head blocks
 *     survive to serve side entrances;
 *  3. enlargement appends copies of likely successor blocks — the
 *     classical trio (branch target expansion, loop peeling, loop
 *     unrolling) under edge profiles, or the single unified
 *     most-likely-path-successor mechanism under path profiles.
 */

#ifndef PATHSCHED_FORM_FORM_HPP
#define PATHSCHED_FORM_FORM_HPP

#include <cstdint>
#include <vector>

#include "ir/procedure.hpp"
#include "obs/timer.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "support/budget.hpp"
#include "support/status.hpp"

namespace pathsched::form {

/** A trace: a block-id sequence in the original CFG's id space.
 *  Selection traces are simple; enlarged traces may repeat blocks. */
using Trace = std::vector<ir::BlockId>;

/** Which profile drives formation. */
enum class ProfileMode { Edge, Path };

/** Formation configuration; defaults match the paper's "P4". */
struct FormConfig
{
    ProfileMode mode = ProfileMode::Path;
    /** Run the enlargement step at all. */
    bool enlarge = true;
    /** Edge scheme: loop unrolling factor ("M4" = 4, "M16" = 16). */
    uint32_t unrollFactor = 4;
    /** Path scheme: superblock-loop heads allowed per trace (paper: 4). */
    uint32_t maxLoopHeads = 4;
    /** "P4e": non-loop superblocks stop enlarging at any head. */
    bool nonLoopStopsAtAnyHead = false;
    /** Only enlarge superblocks completing at least this often
     *  (the paper's user-specified "high frequency", §2.2). */
    double completionThreshold = 0.50;
    /** Preset superblock instruction-count cap (§2.2). */
    uint32_t maxInstrs = 256;
    /**
     * Also grow traces upward from the seed (footnote 2: the paper's
     * implementation did not, predicting no noticeable improvement;
     * bench_ablation_upward tests that prediction).
     */
    bool growUpward = false;
    /**
     * Optional observability sink: per-procedure select / enlarge /
     * materialize wall times are sampled through it (the caller picks
     * the prefix, e.g. "time.P4.form.").  Null disables timing.
     */
    const obs::Observer *observer = nullptr;
    /**
     * Optional resource budget (not owned; see support/budget.hpp).
     * formProcedure honours budget->deadline (DeadlineExceeded) and
     * budget->formGrowthOps, a cap on the ops the formed procedure may
     * gain over its original body (BudgetExceeded) — the governed
     * replacement for hoping the per-trace unroll/size caps bound
     * whole-procedure growth.  Null disables all checks.
     */
    const ResourceBudget *budget = nullptr;
};

/** Counters reported by formProgram. */
struct FormStats
{
    uint64_t tracesSelected = 0;
    uint64_t multiBlockTraces = 0;
    uint64_t superblocksFormed = 0;
    uint64_t enlargedSuperblocks = 0;
    uint64_t blocksDuplicated = 0;
    uint64_t unreachableRemoved = 0;

    FormStats &
    operator+=(const FormStats &o)
    {
        tracesSelected += o.tracesSelected;
        multiBlockTraces += o.multiBlockTraces;
        superblocksFormed += o.superblocksFormed;
        enlargedSuperblocks += o.enlargedSuperblocks;
        blocksDuplicated += o.blocksDuplicated;
        unreachableRemoved += o.unreachableRemoved;
        return *this;
    }
};

/**
 * Form superblocks over procedure @p proc of @p prog in place,
 * accumulating counters into @p stats — the recoverable per-procedure
 * entry point behind formProgram().
 *
 * On a non-OK return (a superblock invariant break during
 * materialization, or the formed procedure failing structural
 * verification) the procedure may be partially rewritten; the caller
 * must discard the program copy or restore the procedure's original
 * body (the pipeline's per-procedure BB quarantine does the latter).
 */
Status formProcedure(ir::Program &prog, ir::ProcId proc,
                     const profile::EdgeProfiler *ep,
                     const profile::PathProfiler *pp,
                     const FormConfig &config, FormStats &stats);

/**
 * Form superblocks over every procedure of @p prog in place.
 * Pass @p ep for ProfileMode::Edge and @p pp (finalized) for
 * ProfileMode::Path; the other pointer may be null.  Panics on any
 * formation failure — callers that need recovery use formProcedure().
 */
FormStats formProgram(ir::Program &prog,
                      const profile::EdgeProfiler *ep,
                      const profile::PathProfiler *pp,
                      const FormConfig &config);

} // namespace pathsched::form

#endif // PATHSCHED_FORM_FORM_HPP
