/**
 * @file
 * Trace materialization (tail duplication + merge) and unreachable
 * block cleanup.  Internal to ps_form.
 */

#ifndef PATHSCHED_FORM_MATERIALIZE_HPP
#define PATHSCHED_FORM_MATERIALIZE_HPP

#include "form/internal.hpp"
#include "support/status.hpp"

namespace pathsched::form {

/**
 * Rewrite every multi-block trace as a single merged superblock living
 * in the trace head's block slot: the trace blocks' code is copied in
 * order, internal terminators become side exits (taken sense inverted
 * when the trace follows the taken edge), and unconditional jumps along
 * the trace are elided.  Original non-head blocks are left untouched —
 * they are the tail duplicates that serve any side entrances.
 *
 * @return ErrorKind::VerifyFailed when a trace breaks the superblock
 * invariants (a non-CFG successor, an interior call/ret); the
 * procedure may be partially rewritten then, so the caller must
 * discard or restore it.
 */
Status materializeTraces(ProcFormState &state, FormStats &stats);

/**
 * Drop blocks unreachable from the entry (typically tail blocks whose
 * every predecessor was absorbed into superblocks), remapping ids and
 * side tables.
 */
void removeUnreachable(ir::Procedure &proc, FormStats &stats);

} // namespace pathsched::form

#endif // PATHSCHED_FORM_MATERIALIZE_HPP
