/**
 * @file
 * Transport for the aggregation server: poll()-driven socket loop.
 *
 * One thread, nonblocking sockets, bounded buffers — the loop multiplexes
 * every client connection over the transport-free ServeCore:
 *
 *  - Addresses are "unix:/path/sock" or "tcp:host:port"; both sides
 *    (daemon and client library) parse the same syntax.
 *  - Per-connection receive and send buffers are capped; a peer that
 *    overflows either (frames bigger than it may send, or refusing to
 *    read acks) is disconnected — backpressure degrades to dropped
 *    connections, never unbounded memory.
 *  - The epoch timer rides the poll() timeout: every epochMs of wall
 *    time the loop calls ServeCore::tick(), which rotates the decay
 *    window, refills admission tokens, and (on its cadence) attempts a
 *    fingerprint-gated reschedule.
 *  - SIGTERM/SIGINT request a graceful stop: the loop exits, snapshots,
 *    and writes the status document; kill -9 is the crash the WAL
 *    recovers from.
 */

#ifndef PATHSCHED_SERVE_SOCKET_HPP
#define PATHSCHED_SERVE_SOCKET_HPP

#include <cstdint>
#include <string>

#include "serve/server.hpp"
#include "support/status.hpp"

namespace pathsched::serve {

/** A parsed "unix:..." / "tcp:host:port" endpoint. */
struct Endpoint
{
    bool isUnix = false;
    std::string path; ///< unix socket path
    std::string host; ///< tcp host (numeric or name)
    uint16_t port = 0;

    /** Parse @p spec; typed BadProfile-family error on bad syntax. */
    static Status parse(const std::string &spec, Endpoint &out);
};

/** Socket-loop tunables. */
struct SocketLoopOptions
{
    /** Wall milliseconds per aggregation epoch. */
    uint64_t epochMs = 1000;
    /** Cap on one connection's buffered unparsed input. */
    size_t maxRecvBuffer = 8u << 20;
    /** Cap on one connection's unsent responses. */
    size_t maxSendBuffer = 8u << 20;
    /** Max concurrent connections; further accepts are closed. */
    size_t maxConnections = 256;
    /** Stop after this many accepted deltas (0 = run forever) — lets
     *  tests and the CI smoke drive a deterministic amount of work. */
    uint64_t maxDeltas = 0;
    /** Stop after this many epoch ticks (0 = run forever). */
    uint64_t maxEpochs = 0;
};

/**
 * Run the serve loop on @p core, listening at @p ep, until a stop
 * signal (SIGTERM/SIGINT), maxDeltas/maxEpochs, or a fatal socket
 * error.  On a graceful stop the core is flushed (snapshot +
 * reschedule attempt).  Returns non-OK only for setup/fatal errors.
 */
Status runSocketLoop(ServeCore &core, const Endpoint &ep,
                     const SocketLoopOptions &opts);

} // namespace pathsched::serve

#endif // PATHSCHED_SERVE_SOCKET_HPP
