#include "serve/admission.hpp"

#include <algorithm>

#include "profile/edge_profile.hpp"
#include "profile/serialize.hpp"
#include "profile/validate.hpp"
#include "support/strutil.hpp"

namespace pathsched::serve {

Admission::Admission(const ir::Program &prog,
                     profile::PathProfileParams pathParams,
                     AdmissionOptions opts)
    : prog_(&prog), path_params_(pathParams), opts_(opts)
{}

Admission::ClientState &
Admission::state(const std::string &clientId)
{
    ClientState &cs = clients_[clientId];
    if (!cs.tokensInit) {
        cs.tokens = opts_.maxTokens;
        cs.tokensInit = true;
    }
    return cs;
}

void
Admission::bumpScore(ClientState &cs, uint32_t amount)
{
    cs.score += amount;
    if (cs.score >= opts_.quarantineThreshold) {
        cs.quarantinedUntil = epoch_ + 1 + opts_.quarantineEpochs;
        cs.score = 0;
        ++cs.stats.quarantineEntries;
    }
}

void
Admission::onEpoch(uint64_t newEpoch)
{
    if (newEpoch <= epoch_)
        return;
    const uint64_t steps = newEpoch - epoch_;
    epoch_ = newEpoch;
    for (auto &[id, cs] : clients_) {
        // Refill is per elapsed epoch; score halves per elapsed epoch.
        const uint64_t refill =
            steps >= 64 ? opts_.maxTokens : steps * opts_.tokensPerEpoch;
        cs.tokens = std::min(opts_.maxTokens, cs.tokens + refill);
        cs.score = steps >= 32 ? 0 : uint32_t(cs.score >> steps);
    }
}

bool
Admission::quarantined(const std::string &clientId) const
{
    auto it = clients_.find(clientId);
    return it != clients_.end() &&
           it->second.quarantinedUntil > epoch_;
}

const ClientStats &
Admission::stats(const std::string &clientId) const
{
    static const ClientStats kEmpty;
    auto it = clients_.find(clientId);
    return it == clients_.end() ? kEmpty : it->second.stats;
}

const std::map<std::string, ClientStats> &
Admission::allStats() const
{
    stats_view_.clear();
    for (const auto &[id, cs] : clients_)
        stats_view_[id] = cs.stats;
    return stats_view_;
}

AdmissionResult
Admission::evaluate(const std::string &clientId, uint64_t lastSeq,
                    uint64_t seq, uint8_t profileKind,
                    const std::string &text)
{
    AdmissionResult res;
    ClientState &cs = state(clientId);

    // 1. Exactly-once: the durable cursor survives crashes, so a
    //    reconnecting client blindly resending is harmless.
    if (seq <= lastSeq) {
        ++cs.stats.duplicates;
        res.code = AckCode::Duplicate;
        res.detail = strfmt("seq %llu already admitted (cursor %llu)",
                            (unsigned long long)seq,
                            (unsigned long long)lastSeq);
        return res;
    }

    // 2. Quarantine: misbehaving clients are dropped unread.
    if (cs.quarantinedUntil > epoch_) {
        ++cs.stats.quarantinedDeltas;
        res.code = AckCode::Quarantined;
        res.detail = strfmt("quarantined until epoch %llu",
                            (unsigned long long)cs.quarantinedUntil);
        return res;
    }

    // 3. Rate limit: out of tokens degrades to retry-later.
    if (cs.tokens == 0) {
        ++cs.stats.throttled;
        res.code = AckCode::Throttled;
        res.detail = "rate limit: token bucket empty this epoch";
        return res;
    }
    --cs.tokens;

    // 4./5. Parse leniently, audit in Repair mode, keep survivors.
    profile::ProfileMeta meta;
    profile::LoadOptions lo;
    lo.lenient = true;
    profile::ValidateOptions vo;
    vo.mode = profile::AdmissionMode::Repair;
    vo.flowSlack = opts_.flowSlack;
    profile::ProfileAudit audit;
    AdmittedDelta delta;
    delta.clientId = clientId;
    delta.seq = seq;

    auto reject = [&](const Status &st) {
        ++cs.stats.rejected;
        bumpScore(cs, opts_.scorePerReject);
        res.code = AckCode::Rejected;
        res.detail = st.toString();
        return res;
    };

    if (profileKind == 0) {
        profile::EdgeProfiler ep(*prog_);
        if (Status st = loadEdgeProfile(text, ep, meta, lo); !st.ok())
            return reject(st);
        if (Status st =
                auditEdgeProfile(*prog_, ep, meta, vo, audit);
            !st.ok() || audit.fileRejected)
            return reject(!st.ok() ? st : audit.fileStatus);
        ep.forEachBlock([&](ir::ProcId p, ir::BlockId b, uint64_t c) {
            if (audit.findProc(p) == nullptr)
                delta.blocks.push_back({uint32_t(p), uint32_t(b), c});
        });
        ep.forEachEdge([&](ir::ProcId p, ir::BlockId f, ir::BlockId t,
                           uint64_t c) {
            if (audit.findProc(p) == nullptr)
                delta.edges.push_back(
                    {uint32_t(p), uint32_t(f), uint32_t(t), c});
        });
    } else {
        profile::PathProfiler pp(*prog_, path_params_);
        if (Status st = loadPathProfile(text, pp, meta, lo); !st.ok())
            return reject(st);
        profile::EdgeProfiler projected(*prog_);
        if (Status st = auditPathProfile(*prog_, pp, meta, vo, audit,
                                         &projected);
            !st.ok() || audit.fileRejected)
            return reject(!st.ok() ? st : audit.fileStatus);
        pp.forEachPath([&](ir::ProcId p,
                           const std::vector<ir::BlockId> &seqv,
                           uint64_t c) {
            if (audit.findProc(p) != nullptr)
                return; // projected or quarantined: no raw windows
            AdmittedDelta::PathRec rec;
            rec.proc = uint32_t(p);
            rec.blocks.assign(seqv.begin(), seqv.end());
            rec.count = c;
            delta.paths.push_back(std::move(rec));
        });
        // ProjectedEdges procedures ride along as edge counts — the
        // PR-4 degradation cascade, preserved through aggregation.
        projected.forEachBlock(
            [&](ir::ProcId p, ir::BlockId b, uint64_t c) {
                const auto *pa = audit.findProc(p);
                if (pa != nullptr &&
                    pa->action == profile::ProcAction::ProjectedEdges)
                    delta.blocks.push_back(
                        {uint32_t(p), uint32_t(b), c});
            });
        projected.forEachEdge([&](ir::ProcId p, ir::BlockId f,
                                  ir::BlockId t, uint64_t c) {
            const auto *pa = audit.findProc(p);
            if (pa != nullptr &&
                pa->action == profile::ProcAction::ProjectedEdges)
                delta.edges.push_back(
                    {uint32_t(p), uint32_t(f), uint32_t(t), c});
        });
    }

    // Attribution counters (satellite: ProfileMeta skip surfacing).
    cs.stats.skippedRecords += meta.recordsSkipped;
    cs.stats.unattributedSkips += meta.unattributedSkips;
    cs.stats.procsStale += audit.staleProcs;
    uint32_t badProcs = 0;
    for (const auto &pa : audit.procs) {
        if (pa.action == profile::ProcAction::Quarantined) {
            ++cs.stats.procsQuarantined;
            ++badProcs;
        } else if (pa.action == profile::ProcAction::ProjectedEdges) {
            ++cs.stats.procsProjected;
        }
    }
    if (badProcs > 0)
        bumpScore(cs, badProcs * opts_.scorePerBadProc);

    delta.normalize();
    ++cs.stats.admitted;
    res.code = AckCode::Accepted;
    res.detail =
        strfmt("admitted %zu block, %zu edge, %zu path records%s",
               delta.blocks.size(), delta.edges.size(),
               delta.paths.size(),
               audit.procs.empty() ? "" : " (some procs degraded)");
    res.delta = std::move(delta);
    return res;
}

} // namespace pathsched::serve
