/**
 * @file
 * Client library for the aggregation server.
 *
 * A blocking, retrying uploader: connect (unix:/tcp:), Hello, then
 * sendDelta() per profile delta, each awaiting its Ack with a timeout.
 * Failures retry with doubling backoff up to a cap; after a reconnect
 * the client blindly resends the in-flight delta — the server's durable
 * per-client seq cursor makes the resend land as Duplicate when the
 * first copy was admitted before the connection died, so at-least-once
 * sending composes into exactly-once aggregation.
 *
 * The replay tool (pathsched_serve --replay) and the reconnect-storm
 * bench are built on this class; tests use it against an in-process
 * daemon.
 */

#ifndef PATHSCHED_SERVE_CLIENT_HPP
#define PATHSCHED_SERVE_CLIENT_HPP

#include <cstdint>
#include <string>

#include "serve/socket.hpp"
#include "serve/wire.hpp"
#include "support/status.hpp"

namespace pathsched::serve {

/** Retry/backoff policy for one client. */
struct ClientOptions
{
    /** Milliseconds to wait for one Ack (also connect timeout). */
    uint64_t ackTimeoutMs = 5000;
    /** First retry backoff; doubles per consecutive failure. */
    uint64_t backoffMs = 50;
    /** Backoff ceiling. */
    uint64_t backoffCapMs = 2000;
    /** Connection + send attempts per operation before giving up. */
    uint32_t maxAttempts = 5;
};

/** Blocking wire client; not thread-safe. */
class Client
{
  public:
    Client(Endpoint ep, std::string clientId,
           ClientOptions opts = ClientOptions());
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect and Hello (retrying per the options).  Idempotent. */
    Status connect();

    /** Drop the connection (next operation reconnects). */
    void disconnect();

    /**
     * Upload one profile delta and wait for its Ack.  Retries
     * (reconnect + resend, doubling backoff) on connection failures
     * and Throttled acks; Duplicate counts as success.  @p ackOut
     * (optional) receives the final Ack code.
     */
    Status sendDelta(uint64_t seq, uint8_t profileKind,
                     const std::string &text,
                     AckCode *ackOut = nullptr);

    /** Ask the server to advance its epoch (test/admin use). */
    Status sendTick();

    /** Ask the server to snapshot + reschedule now. */
    Status sendFlush();

    /** Fetch the server's status JSON. */
    Status requestStats(std::string &jsonOut);

    /** Total reconnects performed (observability for the bench). */
    uint64_t reconnects() const { return reconnects_; }

  private:
    Status connectOnce();
    Status sendFrame(const std::string &payload);
    /** Read frames until one Ack/StatsRep arrives or timeout. */
    Status awaitResponse(Message &out);
    Status requestResponse(const std::string &payload, Message &out);

    Endpoint ep_;
    std::string client_id_;
    ClientOptions opts_;
    int fd_ = -1;
    FrameDecoder decoder_;
    uint64_t reconnects_ = 0;
};

} // namespace pathsched::serve

#endif // PATHSCHED_SERVE_CLIENT_HPP
