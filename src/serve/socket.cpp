#include "serve/socket.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <limits>
#include <map>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::serve {

Status
Endpoint::parse(const std::string &spec, Endpoint &out)
{
    auto bad = [&](const char *what) {
        return Status::error(
            ErrorKind::BadProfile,
            strfmt("endpoint '%s': %s", spec.c_str(), what));
    };
    out = Endpoint();
    if (spec.rfind("unix:", 0) == 0) {
        out.isUnix = true;
        out.path = spec.substr(5);
        if (out.path.empty())
            return bad("empty unix socket path");
        if (out.path.size() >= sizeof(sockaddr_un{}.sun_path))
            return bad("unix socket path too long");
        return Status();
    }
    if (spec.rfind("tcp:", 0) == 0) {
        const std::string rest = spec.substr(4);
        const size_t colon = rest.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == rest.size())
            return bad("want tcp:host:port");
        out.host = rest.substr(0, colon);
        uint64_t port = 0;
        for (size_t i = colon + 1; i < rest.size(); ++i) {
            if (rest[i] < '0' || rest[i] > '9')
                return bad("non-numeric port");
            port = port * 10 + uint64_t(rest[i] - '0');
            if (port > 65535)
                return bad("port out of range");
        }
        if (port == 0)
            return bad("port out of range");
        out.port = uint16_t(port);
        return Status();
    }
    return bad("want unix:<path> or tcp:<host>:<port>");
}

namespace {

volatile sig_atomic_t g_serve_stop = 0;

void
onServeSignal(int)
{
    g_serve_stop = 1;
}

void
installServeSignals()
{
    struct sigaction sa;
    memset(&sa, 0, sizeof sa);
    sa.sa_handler = onServeSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: poll() must wake on the signal
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
}

Status
sockError(const char *op)
{
    return Status::error(ErrorKind::BadProfile,
                         strfmt("socket: %s: %s", op, strerror(errno)));
}

bool
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

struct Conn
{
    int fd = -1;
    std::string key;
    FrameDecoder decoder;
    std::string sendBuf;
    bool closing = false; ///< flush sendBuf, then close
};

} // namespace

Status
runSocketLoop(ServeCore &core, const Endpoint &ep,
              const SocketLoopOptions &opts)
{
    // --- listen socket ----------------------------------------------
    const int lfd = socket(ep.isUnix ? AF_UNIX : AF_INET,
                           SOCK_STREAM, 0);
    if (lfd < 0)
        return sockError("socket");
    if (ep.isUnix) {
        sockaddr_un addr;
        memset(&addr, 0, sizeof addr);
        addr.sun_family = AF_UNIX;
        strncpy(addr.sun_path, ep.path.c_str(),
                sizeof addr.sun_path - 1);
        (void)unlink(ep.path.c_str()); // stale socket from a crash
        if (bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                 sizeof addr) != 0) {
            ::close(lfd);
            return sockError("bind");
        }
    } else {
        const int one = 1;
        setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr;
        memset(&addr, 0, sizeof addr);
        addr.sin_family = AF_INET;
        addr.sin_port = htons(ep.port);
        if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
            ::close(lfd);
            return Status::error(
                ErrorKind::BadProfile,
                strfmt("socket: bad IPv4 address '%s'",
                       ep.host.c_str()));
        }
        if (bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                 sizeof addr) != 0) {
            ::close(lfd);
            return sockError("bind");
        }
    }
    if (listen(lfd, 64) != 0 || !setNonBlocking(lfd)) {
        ::close(lfd);
        return sockError("listen");
    }

    installServeSignals();

    std::map<int, Conn> conns;
    uint64_t nextKey = 1;
    uint64_t epochsRun = 0;
    auto lastTick = std::chrono::steady_clock::now();
    auto closeConn = [&](int fd) {
        core.dropConnection(conns[fd].key);
        conns.erase(fd);
        ::close(fd);
    };

    bool stopping = false;
    while (!stopping) {
        if (g_serve_stop != 0)
            break;
        if (opts.maxDeltas != 0 &&
            core.deltasAccepted() >= opts.maxDeltas)
            break;
        if (opts.maxEpochs != 0 && epochsRun >= opts.maxEpochs)
            break;

        // --- poll set ----------------------------------------------
        std::vector<pollfd> pfds;
        pfds.push_back({lfd, POLLIN, 0});
        for (auto &[fd, c] : conns) {
            short ev = c.closing ? 0 : POLLIN;
            if (!c.sendBuf.empty())
                ev |= POLLOUT;
            pfds.push_back({fd, ev, 0});
        }

        // Timeout = time until the next epoch tick.
        const auto now = std::chrono::steady_clock::now();
        const auto sinceTick =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - lastTick)
                .count();
        // epochMs is user-controlled: clamp before converting so a
        // value beyond INT_MAX cannot wrap negative and turn the poll
        // loop into a busy spin.
        const int64_t remainMs =
            int64_t(std::min<uint64_t>(
                opts.epochMs,
                uint64_t(std::numeric_limits<int>::max()))) -
            sinceTick;
        const int timeout = remainMs < 0 ? 0 : int(remainMs);
        const int nready = poll(pfds.data(), nfds_t(pfds.size()),
                                timeout);
        if (nready < 0 && errno != EINTR) {
            ::close(lfd);
            return sockError("poll");
        }

        // --- epoch timer -------------------------------------------
        const auto after = std::chrono::steady_clock::now();
        if (std::chrono::duration_cast<std::chrono::milliseconds>(
                after - lastTick)
                .count() >= int64_t(opts.epochMs)) {
            lastTick = after;
            ++epochsRun;
            if (Status st = core.tick(); !st.ok())
                warn("serve: epoch tick failed: %s",
                     st.toString().c_str());
        }
        if (nready <= 0)
            continue;

        // --- accept ------------------------------------------------
        if ((pfds[0].revents & POLLIN) != 0) {
            for (;;) {
                const int cfd = accept(lfd, nullptr, nullptr);
                if (cfd < 0)
                    break;
                if (conns.size() >= opts.maxConnections ||
                    !setNonBlocking(cfd)) {
                    ::close(cfd); // at capacity: shed load
                    continue;
                }
                Conn c;
                c.fd = cfd;
                c.key = strfmt("conn-%llu",
                               (unsigned long long)nextKey++);
                conns.emplace(cfd, std::move(c));
            }
        }

        // --- per-connection I/O ------------------------------------
        std::vector<int> dead;
        for (size_t i = 1; i < pfds.size(); ++i) {
            const int fd = pfds[i].fd;
            auto it = conns.find(fd);
            if (it == conns.end())
                continue;
            Conn &c = it->second;
            if ((pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) !=
                0) {
                dead.push_back(fd);
                continue;
            }
            if ((pfds[i].revents & POLLIN) != 0) {
                char buf[1 << 16];
                bool connDead = false;
                for (;;) {
                    const ssize_t n = read(fd, buf, sizeof buf);
                    if (n > 0) {
                        c.decoder.feed(buf, size_t(n));
                        if (c.decoder.pendingBytes() >
                            opts.maxRecvBuffer) {
                            connDead = true; // refuses to frame: shed
                            break;
                        }
                        continue;
                    }
                    if (n == 0) {
                        connDead = true;
                        break;
                    }
                    if (errno == EAGAIN || errno == EWOULDBLOCK)
                        break;
                    if (errno == EINTR)
                        continue;
                    connDead = true;
                    break;
                }
                // Drain complete frames even off a dying connection:
                // what arrived intact is still valid input.
                std::string payload;
                for (;;) {
                    const auto r = c.decoder.next(payload);
                    if (r == FrameDecoder::Result::NeedMore)
                        break;
                    if (r == FrameDecoder::Result::Corrupt) {
                        // Torn/corrupt stream: the remainder is
                        // untrusted; drop the connection.
                        connDead = true;
                        break;
                    }
                    bool drop = false;
                    for (const std::string &resp :
                         core.handleFrame(c.key, payload, drop))
                        appendFrame(c.sendBuf, resp);
                    if (drop) {
                        c.closing = true;
                        break;
                    }
                }
                if (connDead) {
                    dead.push_back(fd);
                    continue;
                }
                if (c.sendBuf.size() > opts.maxSendBuffer) {
                    dead.push_back(fd); // refuses to read acks: shed
                    continue;
                }
            }
            if (!c.sendBuf.empty()) {
                const ssize_t n =
                    write(fd, c.sendBuf.data(), c.sendBuf.size());
                if (n > 0)
                    c.sendBuf.erase(0, size_t(n));
                else if (n < 0 && errno != EAGAIN &&
                         errno != EWOULDBLOCK && errno != EINTR) {
                    dead.push_back(fd);
                    continue;
                }
            }
            if (c.closing && c.sendBuf.empty())
                dead.push_back(fd);
        }
        for (int fd : dead)
            closeConn(fd);
    }

    // Graceful stop: drain nothing further, snapshot, close.
    for (auto &[fd, c] : conns) {
        core.dropConnection(c.key);
        ::close(fd);
    }
    conns.clear();
    ::close(lfd);
    if (ep.isUnix)
        (void)unlink(ep.path.c_str());
    if (Status st = core.flush(); !st.ok())
        return st;
    return Status();
}

} // namespace pathsched::serve
