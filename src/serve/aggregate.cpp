#include "serve/aggregate.hpp"

#include <algorithm>

#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "serve/wire.hpp"
#include "support/hash.hpp"
#include "support/strutil.hpp"

namespace pathsched::serve {

// ---------------------------------------------------------------------------
// AdmittedDelta

void
AdmittedDelta::normalize()
{
    auto blockKey = [](const BlockRec &r) {
        return std::pair<uint32_t, uint32_t>(r.proc, r.block);
    };
    std::sort(blocks.begin(), blocks.end(),
              [&](const BlockRec &a, const BlockRec &b) {
                  return blockKey(a) < blockKey(b);
              });
    auto edgeKey = [](const EdgeRec &r) {
        return std::tuple<uint32_t, uint32_t, uint32_t>(r.proc, r.from,
                                                        r.to);
    };
    std::sort(edges.begin(), edges.end(),
              [&](const EdgeRec &a, const EdgeRec &b) {
                  return edgeKey(a) < edgeKey(b);
              });
    auto pathKey = [](const PathRec &r) {
        return std::pair<uint32_t, const std::vector<uint32_t> &>(
            r.proc, r.blocks);
    };
    std::sort(paths.begin(), paths.end(),
              [&](const PathRec &a, const PathRec &b) {
                  return pathKey(a) < pathKey(b);
              });

    // Fold duplicate keys by summing.
    auto foldInto = [](auto &vec, auto sameKey) {
        size_t w = 0;
        for (size_t r = 0; r < vec.size(); ++r) {
            if (w > 0 && sameKey(vec[w - 1], vec[r])) {
                vec[w - 1].count += vec[r].count;
            } else {
                if (w != r)
                    vec[w] = std::move(vec[r]);
                ++w;
            }
        }
        vec.resize(w);
    };
    foldInto(blocks, [&](const BlockRec &a, const BlockRec &b) {
        return blockKey(a) == blockKey(b);
    });
    foldInto(edges, [&](const EdgeRec &a, const EdgeRec &b) {
        return edgeKey(a) == edgeKey(b);
    });
    foldInto(paths, [](const PathRec &a, const PathRec &b) {
        return a.proc == b.proc && a.blocks == b.blocks;
    });
}

void
AdmittedDelta::encode(std::string &out) const
{
    putStr(out, clientId);
    putU64(out, seq);
    putU32(out, uint32_t(blocks.size()));
    for (const BlockRec &r : blocks) {
        putU32(out, r.proc);
        putU32(out, r.block);
        putU64(out, r.count);
    }
    putU32(out, uint32_t(edges.size()));
    for (const EdgeRec &r : edges) {
        putU32(out, r.proc);
        putU32(out, r.from);
        putU32(out, r.to);
        putU64(out, r.count);
    }
    putU32(out, uint32_t(paths.size()));
    for (const PathRec &r : paths) {
        putU32(out, r.proc);
        putU32(out, uint32_t(r.blocks.size()));
        for (uint32_t b : r.blocks)
            putU32(out, b);
        putU64(out, r.count);
    }
}

Status
AdmittedDelta::decode(const std::string &in, size_t &pos,
                      AdmittedDelta &out)
{
    auto bad = [](const char *what) {
        return Status::error(ErrorKind::ProfileCorrupt,
                             strfmt("admitted delta: %s", what));
    };
    out = AdmittedDelta();
    if (!getStr(in, pos, out.clientId) || !getU64(in, pos, out.seq))
        return bad("truncated header");
    uint32_t n = 0;
    if (!getU32(in, pos, n))
        return bad("truncated block count");
    // Each block record occupies 16 payload bytes; reject counts the
    // remaining input cannot possibly hold before reserving.
    if (uint64_t(n) * 16 > in.size() - pos)
        return bad("block count exceeds payload");
    out.blocks.resize(n);
    for (BlockRec &r : out.blocks)
        if (!getU32(in, pos, r.proc) || !getU32(in, pos, r.block) ||
            !getU64(in, pos, r.count))
            return bad("truncated block record");
    if (!getU32(in, pos, n))
        return bad("truncated edge count");
    if (uint64_t(n) * 20 > in.size() - pos)
        return bad("edge count exceeds payload");
    out.edges.resize(n);
    for (EdgeRec &r : out.edges)
        if (!getU32(in, pos, r.proc) || !getU32(in, pos, r.from) ||
            !getU32(in, pos, r.to) || !getU64(in, pos, r.count))
            return bad("truncated edge record");
    if (!getU32(in, pos, n))
        return bad("truncated path count");
    if (uint64_t(n) * 16 > in.size() - pos)
        return bad("path count exceeds payload");
    out.paths.resize(n);
    for (PathRec &r : out.paths) {
        uint32_t len = 0;
        if (!getU32(in, pos, r.proc) || !getU32(in, pos, len))
            return bad("truncated path record");
        if (uint64_t(len) * 4 > in.size() - pos)
            return bad("path length exceeds payload");
        r.blocks.resize(len);
        for (uint32_t &b : r.blocks)
            if (!getU32(in, pos, b))
                return bad("truncated path blocks");
        if (!getU64(in, pos, r.count))
            return bad("truncated path count field");
    }
    return Status();
}

// ---------------------------------------------------------------------------
// Aggregate

Aggregate::Aggregate(AggregateOptions opts) : opts_(opts)
{
    if (opts_.windows == 0)
        opts_.windows = 1;
}

Aggregate::Bucket &
Aggregate::currentBucket()
{
    Bucket &b = buckets_[epoch_];
    b.epoch = epoch_;
    return b;
}

std::vector<const Aggregate::Bucket *>
Aggregate::liveBuckets() const
{
    const uint64_t oldest =
        epoch_ >= opts_.windows - 1 ? epoch_ - (opts_.windows - 1) : 0;
    std::vector<const Bucket *> out;
    for (const auto &[ep, b] : buckets_)
        if (ep >= oldest && !b.empty())
            out.push_back(&b);
    return out;
}

void
Aggregate::apply(const AdmittedDelta &delta)
{
    Bucket &b = currentBucket();
    auto room = [&]() { return b.keyCount() < opts_.maxKeysPerBucket; };
    for (const auto &r : delta.blocks) {
        const uint64_t key = (uint64_t(r.proc) << 32) | r.block;
        auto it = b.blocks.find(key);
        if (it != b.blocks.end())
            it->second += r.count;
        else if (room())
            b.blocks.emplace(key, r.count);
        else
            ++dropped_keys_;
    }
    for (const auto &r : delta.edges) {
        const auto key = std::pair<uint64_t, uint64_t>(
            r.proc, (uint64_t(r.from) << 32) | r.to);
        auto it = b.edges.find(key);
        if (it != b.edges.end())
            it->second += r.count;
        else if (room())
            b.edges.emplace(key, r.count);
        else
            ++dropped_keys_;
    }
    for (const auto &r : delta.paths) {
        const auto key =
            std::pair<uint32_t, std::vector<uint32_t>>(r.proc, r.blocks);
        auto it = b.paths.find(key);
        if (it != b.paths.end())
            it->second += r.count;
        else if (room())
            b.paths.emplace(key, r.count);
        else
            ++dropped_keys_;
    }
    uint64_t &cursor = last_seq_[delta.clientId];
    if (delta.seq > cursor)
        cursor = delta.seq;
}

void
Aggregate::advanceEpoch(uint64_t newEpoch)
{
    if (newEpoch <= epoch_)
        return;
    epoch_ = newEpoch;
    const uint64_t oldest =
        epoch_ >= opts_.windows - 1 ? epoch_ - (opts_.windows - 1) : 0;
    for (auto it = buckets_.begin(); it != buckets_.end();)
        it = it->first < oldest ? buckets_.erase(it) : std::next(it);
}

uint64_t
Aggregate::lastSeq(const std::string &clientId) const
{
    auto it = last_seq_.find(clientId);
    return it == last_seq_.end() ? 0 : it->second;
}

void
Aggregate::merge(const Aggregate &other)
{
    // Shards observe walltime independently; the merged view adopts
    // the most advanced epoch and then drops whatever rotated out.
    const uint64_t mergedEpoch = std::max(epoch_, other.epoch_);
    for (const auto &[ep, ob] : other.buckets_) {
        if (ob.empty())
            continue;
        Bucket &b = buckets_[ep];
        b.epoch = ep;
        for (const auto &[k, v] : ob.blocks)
            b.blocks[k] += v;
        for (const auto &[k, v] : ob.edges)
            b.edges[k] += v;
        for (const auto &[k, v] : ob.paths)
            b.paths[k] += v;
    }
    for (const auto &[id, seq] : other.last_seq_) {
        uint64_t &cursor = last_seq_[id];
        if (seq > cursor)
            cursor = seq;
    }
    dropped_keys_ += other.dropped_keys_;
    advanceEpoch(mergedEpoch);
}

uint64_t
Aggregate::liveKeys() const
{
    uint64_t n = 0;
    for (const Bucket *b : liveBuckets())
        n += b->keyCount();
    return n;
}

std::vector<uint32_t>
Aggregate::liveProcs() const
{
    std::vector<uint32_t> procs;
    for (const Bucket *b : liveBuckets()) {
        for (const auto &[k, v] : b->blocks)
            procs.push_back(uint32_t(k >> 32));
        for (const auto &[k, v] : b->edges)
            procs.push_back(uint32_t(k.first));
        for (const auto &[k, v] : b->paths)
            procs.push_back(k.first);
    }
    std::sort(procs.begin(), procs.end());
    procs.erase(std::unique(procs.begin(), procs.end()), procs.end());
    return procs;
}

uint64_t
Aggregate::hotFingerprint(uint32_t proc) const
{
    // Summed live counts per key for this procedure.
    std::map<uint64_t, uint64_t> edgeSum; ///< (from<<32)|to -> count
    std::map<std::vector<uint32_t>, uint64_t> pathSum;
    bool any = false;
    for (const Bucket *b : liveBuckets()) {
        for (const auto &[k, v] : b->edges)
            if (uint32_t(k.first) == proc) {
                edgeSum[k.second] += v;
                any = true;
            }
        for (const auto &[k, v] : b->paths)
            if (k.first == proc) {
                pathSum[k.second] += v;
                any = true;
            }
        for (const auto &[k, v] : b->blocks)
            if (uint32_t(k >> 32) == proc)
                any = true;
    }
    if (!any)
        return 0;

    // Top-K by count descending, ties toward the smaller key (the map
    // iteration order), so the selection is deterministic.
    auto topK = [&](const auto &sums, auto hashKey, const char *tag,
                    uint64_t &state) {
        using Entry =
            std::pair<uint64_t, typename std::decay_t<
                                    decltype(sums)>::const_iterator>;
        std::vector<Entry> ranked;
        ranked.reserve(sums.size());
        for (auto it = sums.begin(); it != sums.end(); ++it)
            ranked.push_back({it->second, it});
        std::stable_sort(ranked.begin(), ranked.end(),
                         [](const Entry &a, const Entry &b) {
                             return a.first > b.first;
                         });
        const size_t k =
            std::min<size_t>(ranked.size(), opts_.fingerprintTopK);
        state = fnv1a64(tag, std::string(tag).size(), state);
        for (size_t i = 0; i < k; ++i)
            hashKey(ranked[i].second->first, state);
    };

    // Only key identity and rank enter the hash — see the class doc.
    uint64_t fp = fnv1a64Mix(0xcbf29ce484222325ULL, proc);
    topK(edgeSum,
         [](uint64_t key, uint64_t &st) { st = fnv1a64Mix(st, key); },
         "edges", fp);
    topK(pathSum,
         [](const std::vector<uint32_t> &key, uint64_t &st) {
             st = fnv1a64Mix(st, key.size());
             for (uint32_t b : key)
                 st = fnv1a64Mix(st, b);
         },
         "paths", fp);
    return fp == 0 ? 1 : fp; // reserve 0 for "no data"
}

std::map<uint32_t, uint64_t>
Aggregate::hotFingerprints() const
{
    std::map<uint32_t, uint64_t> out;
    for (uint32_t proc : liveProcs())
        out[proc] = hotFingerprint(proc);
    return out;
}

void
Aggregate::dumpEdges(profile::EdgeProfiler &ep, uint64_t &skipped) const
{
    std::map<uint64_t, uint64_t> blockSum;
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> edgeSum;
    for (const Bucket *b : liveBuckets()) {
        for (const auto &[k, v] : b->blocks)
            blockSum[k] += v;
        for (const auto &[k, v] : b->edges)
            edgeSum[k] += v;
    }
    for (const auto &[k, v] : blockSum)
        if (!ep.addBlockCount(ir::ProcId(k >> 32),
                              ir::BlockId(k & 0xFFFFFFFFu), v))
            ++skipped;
    for (const auto &[k, v] : edgeSum)
        if (!ep.addEdgeCount(ir::ProcId(k.first),
                             ir::BlockId(k.second >> 32),
                             ir::BlockId(k.second & 0xFFFFFFFFu), v))
            ++skipped;
}

void
Aggregate::dumpPaths(profile::PathProfiler &pp, uint64_t &skipped) const
{
    std::map<std::pair<uint32_t, std::vector<uint32_t>>, uint64_t>
        pathSum;
    for (const Bucket *b : liveBuckets())
        for (const auto &[k, v] : b->paths)
            pathSum[k] += v;
    std::vector<ir::BlockId> seq;
    for (const auto &[k, v] : pathSum) {
        seq.assign(k.second.begin(), k.second.end());
        if (!pp.addPathCount(ir::ProcId(k.first), seq, v))
            ++skipped;
    }
}

bool
Aggregate::hasPathData() const
{
    for (const Bucket *b : liveBuckets())
        if (!b->paths.empty())
            return true;
    return false;
}

std::string
Aggregate::serialize() const
{
    std::string out;
    out += "psagg1"; // magic + version
    putU32(out, opts_.windows);
    putU64(out, epoch_);
    putU64(out, dropped_keys_);

    const auto live = liveBuckets();
    putU32(out, uint32_t(live.size()));
    for (const Bucket *b : live) {
        putU64(out, b->epoch);
        putU32(out, uint32_t(b->blocks.size()));
        for (const auto &[k, v] : b->blocks) {
            putU64(out, k);
            putU64(out, v);
        }
        putU32(out, uint32_t(b->edges.size()));
        for (const auto &[k, v] : b->edges) {
            putU64(out, k.first);
            putU64(out, k.second);
            putU64(out, v);
        }
        putU32(out, uint32_t(b->paths.size()));
        for (const auto &[k, v] : b->paths) {
            putU32(out, k.first);
            putU32(out, uint32_t(k.second.size()));
            for (uint32_t blk : k.second)
                putU32(out, blk);
            putU64(out, v);
        }
    }
    putU32(out, uint32_t(last_seq_.size()));
    for (const auto &[id, seq] : last_seq_) {
        putStr(out, id);
        putU64(out, seq);
    }
    putU64(out, fnv1a64(out.data(), out.size()));
    return out;
}

Status
Aggregate::deserialize(const std::string &blob,
                       const AggregateOptions &opts, Aggregate &out)
{
    auto bad = [](const char *what) {
        return Status::error(ErrorKind::ProfileCorrupt,
                             strfmt("aggregate blob: %s", what));
    };
    if (blob.size() < 6 + 8 || blob.compare(0, 6, "psagg1") != 0)
        return bad("bad magic/version");
    {
        size_t tail = blob.size() - 8;
        uint64_t declared = 0;
        size_t tpos = tail;
        getU64(blob, tpos, declared);
        if (declared != fnv1a64(blob.data(), tail))
            return bad("trailer hash mismatch");
    }
    const std::string body(blob, 0, blob.size() - 8);
    size_t pos = 6;

    out = Aggregate(opts);
    uint32_t windows = 0;
    if (!getU32(body, pos, windows) || !getU64(body, pos, out.epoch_) ||
        !getU64(body, pos, out.dropped_keys_))
        return bad("truncated header");
    if (windows != opts.windows)
        return bad("window count mismatch with configured options");

    uint32_t nbuckets = 0;
    if (!getU32(body, pos, nbuckets))
        return bad("truncated bucket count");
    for (uint32_t i = 0; i < nbuckets; ++i) {
        uint64_t ep = 0;
        if (!getU64(body, pos, ep))
            return bad("truncated bucket epoch");
        Bucket &b = out.buckets_[ep];
        b.epoch = ep;
        uint32_t n = 0;
        if (!getU32(body, pos, n))
            return bad("truncated block map size");
        for (uint32_t j = 0; j < n; ++j) {
            uint64_t k = 0, v = 0;
            if (!getU64(body, pos, k) || !getU64(body, pos, v))
                return bad("truncated block entry");
            b.blocks[k] = v;
        }
        if (!getU32(body, pos, n))
            return bad("truncated edge map size");
        for (uint32_t j = 0; j < n; ++j) {
            uint64_t k1 = 0, k2 = 0, v = 0;
            if (!getU64(body, pos, k1) || !getU64(body, pos, k2) ||
                !getU64(body, pos, v))
                return bad("truncated edge entry");
            b.edges[{k1, k2}] = v;
        }
        if (!getU32(body, pos, n))
            return bad("truncated path map size");
        for (uint32_t j = 0; j < n; ++j) {
            uint32_t proc = 0, len = 0;
            if (!getU32(body, pos, proc) || !getU32(body, pos, len))
                return bad("truncated path entry");
            if (uint64_t(len) * 4 > body.size() - pos)
                return bad("path length exceeds blob");
            std::vector<uint32_t> blocks(len);
            for (uint32_t &blk : blocks)
                if (!getU32(body, pos, blk))
                    return bad("truncated path blocks");
            uint64_t v = 0;
            if (!getU64(body, pos, v))
                return bad("truncated path count");
            b.paths[{proc, std::move(blocks)}] = v;
        }
    }
    uint32_t nclients = 0;
    if (!getU32(body, pos, nclients))
        return bad("truncated client count");
    for (uint32_t i = 0; i < nclients; ++i) {
        std::string id;
        uint64_t seq = 0;
        if (!getStr(body, pos, id) || !getU64(body, pos, seq))
            return bad("truncated client cursor");
        out.last_seq_[id] = seq;
    }
    if (pos != body.size())
        return bad("trailing bytes");
    return Status();
}

uint64_t
Aggregate::contentHash() const
{
    const std::string blob = serialize();
    return fnv1a64(blob.data(), blob.size());
}

} // namespace pathsched::serve
