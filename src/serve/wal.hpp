/**
 * @file
 * Write-ahead log + snapshot durability for the aggregation server.
 *
 * Layout of a state directory:
 *
 *   wal.<gen>.bin    CRC-framed record stream (serve/wire.hpp frames,
 *                    each record capped at kMaxWalPayload — enforced
 *                    at append time so every durable record replays),
 *                    fsync'd per append
 *   snap.<gen>.bin   frame sequence whose concatenated payloads are
 *                    the canonical aggregate blob (Aggregate::
 *                    serialize, chunked at kMaxFramePayload so blobs
 *                    of any size round-trip), written temp+rename+
 *                    fsync
 *
 * Generations order durability: snapshot generation G captures the
 * state after every record in wal.<g>.bin for g <= G; the live log is
 * always wal.<S+1>.bin where S is the newest snapshot.  Recovery:
 *
 *   1. load the highest *valid* snapshot (bad trailer -> fall back to
 *      the previous one; no snapshot -> empty aggregate),
 *   2. replay wal segments with gen > S in ascending order,
 *   3. stop a segment's replay at the first torn/corrupt frame — the
 *      tail beyond a torn write is untrusted, exactly like a torn
 *      batch-journal line — and truncate it away.
 *
 * Because every record is the *post-admission* canonical delta
 * (AdmittedDelta) or an epoch advance, replay is pure arithmetic: no
 * re-parsing of client text, no re-auditing, no dependence on the
 * server's current admission options.  A kill -9 at any byte therefore
 * recovers to exactly the pre-crash admitted aggregate, which the
 * crash tests assert by byte-comparing Aggregate::serialize().
 *
 * Record payloads (first byte is the MsgType tag):
 *   WalAdmitted  u8 tag | AdmittedDelta::encode body
 *   WalEpoch     u8 tag | u64 newEpoch
 */

#ifndef PATHSCHED_SERVE_WAL_HPP
#define PATHSCHED_SERVE_WAL_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "serve/aggregate.hpp"
#include "support/status.hpp"
#include "support/vio.hpp"

namespace pathsched::serve {

/** Statistics from one recovery pass (for logs / status docs). */
struct RecoveryInfo
{
    uint64_t snapshotGen = 0;     ///< generation restored from (0 = none)
    uint64_t segmentsReplayed = 0;///< wal segments applied
    uint64_t recordsReplayed = 0; ///< admitted-delta records applied
    uint64_t epochRecords = 0;    ///< epoch-advance records applied
    uint64_t tornSegments = 0;    ///< segments with a truncated tail
    uint64_t tornBytes = 0;       ///< bytes discarded from torn tails
    uint64_t snapshotsSkipped = 0;///< corrupt snapshots passed over
};

/** Durability manager for one state directory. */
class Wal
{
  public:
    /** Does not touch the filesystem; call open().  All durable writes
     *  go through @p vio (nullptr = the system passthrough); labels:
     *  "wal" (segment appends), "snap" (snapshot files), "dir"
     *  (directory fsyncs). */
    explicit Wal(std::string dir, Vio *vio = nullptr);
    ~Wal();

    Wal(const Wal &) = delete;
    Wal &operator=(const Wal &) = delete;

    /**
     * Recover @p agg from the directory (creating it when absent) and
     * open the live segment for appending.  @p info reports what
     * recovery did.  Fatal config errors (unwritable directory) are
     * returned, not aborted on.
     */
    Status open(Aggregate &agg, RecoveryInfo &info);

    /** Append one admitted delta, fsync'd before returning. */
    Status appendAdmitted(const AdmittedDelta &delta);

    /** Append an epoch-advance record, fsync'd before returning. */
    Status appendEpoch(uint64_t newEpoch);

    /**
     * Write a snapshot of @p agg covering everything appended so far,
     * rotate to a fresh live segment, and delete superseded files.
     * The snapshot is temp+rename'd so a crash mid-snapshot leaves the
     * previous generation intact.
     */
    Status snapshot(const Aggregate &agg);

    /**
     * Degraded-mode recovery: abandon the suspect live segment (its
     * on-disk tail is unknown after a failed write/fsync) and publish
     * a fresh snapshot of @p agg, which holds exactly the acked state.
     * The snapshot supersedes every earlier segment — including the
     * suspect one, which is garbage-collected — and rotates to a new
     * live segment, so success means the WAL is healthy again.  On
     * failure the Wal stays closed for appends; callers must not
     * append until a later retry succeeds.
     */
    Status reopenAndSnapshot(const Aggregate &agg);

    /** Records appended to the live segment since open()/snapshot(). */
    uint64_t liveRecords() const { return live_records_; }

    /** Generation of the live wal segment. */
    uint64_t liveGen() const { return live_gen_; }

    const std::string &dir() const { return dir_; }

    /** Apply one WAL record payload to @p agg (shared by recovery and
     *  tests).  Typed error on a malformed record. */
    static Status applyRecord(const std::string &payload, Aggregate &agg,
                              RecoveryInfo *info);

  private:
    Status openLiveSegment();
    Status appendFrameDurable(const std::string &payload);

    std::string walPath(uint64_t gen) const;
    std::string snapPath(uint64_t gen) const;

    std::string dir_;
    Vio *vio_;
    int fd_ = -1;
    uint64_t live_gen_ = 1;
    uint64_t live_records_ = 0;
};

} // namespace pathsched::serve

#endif // PATHSCHED_SERVE_WAL_HPP
