/**
 * @file
 * Per-client streaming admission: the PR-4 profile admission layer
 * applied at the ingest boundary, plus client hygiene.
 *
 * Every Delta frame runs a deterministic ladder, cheapest test first:
 *
 *   1. Duplicate   seq <= the client's last *durable* seq (from the
 *                  aggregate, which the WAL restores) — replays after a
 *                  reconnect are acked but never double-counted.
 *   2. Quarantined the client's misbehaviour score crossed the
 *                  threshold recently; frames are dropped unread until
 *                  the quarantine epoch passes.
 *   3. Throttled   the client's token bucket is empty this epoch —
 *                  backpressure degrades to "retry later", never OOM.
 *   4. Rejected    the delta failed the profile loader (lenient) or
 *                  the PR-4 semantic audit (Repair mode) at file
 *                  granularity; the misbehaviour score rises.
 *   5. Accepted    whatever survives per-procedure admission becomes a
 *                  canonical AdmittedDelta: Accepted procedures keep
 *                  their records, ProjectedEdges procedures contribute
 *                  their projected edge counts, Quarantined/stale
 *                  procedures contribute nothing (and bump the score a
 *                  little).  An empty-but-well-formed delta is still
 *                  Accepted so the seq cursor advances.
 *
 * Scoring, decay and token refill are all integer arithmetic driven by
 * the epoch counter, so a replayed ingest makes identical decisions.
 * Scores and tokens are *soft* state: a restart clears them (documented
 * in docs/serving.md); only the seq cursors are durable, because only
 * they affect the aggregate's bit-exact recovery contract.
 */

#ifndef PATHSCHED_SERVE_ADMISSION_HPP
#define PATHSCHED_SERVE_ADMISSION_HPP

#include <cstdint>
#include <map>
#include <string>

#include "ir/procedure.hpp"
#include "profile/path_profile.hpp"
#include "serve/aggregate.hpp"
#include "serve/wire.hpp"

namespace pathsched::serve {

/** Admission tunables (all integer / epoch-driven; see file doc). */
struct AdmissionOptions
{
    /** Deltas a client may submit per epoch (token refill). */
    uint64_t tokensPerEpoch = 64;
    /** Token bucket cap (burst allowance across idle epochs). */
    uint64_t maxTokens = 128;
    /** Score added for a file-level rejection. */
    uint32_t scorePerReject = 4;
    /** Score added per quarantined/stale procedure inside an otherwise
     *  admitted delta. */
    uint32_t scorePerBadProc = 1;
    /** Score at which the client is quarantined. */
    uint32_t quarantineThreshold = 16;
    /** Epochs a quarantine lasts. */
    uint32_t quarantineEpochs = 4;
    /** Flow slack forwarded to the PR-4 semantic checks. */
    uint64_t flowSlack = 1;
};

/** Per-client admission counters (exported as serve.client.<id>.*). */
struct ClientStats
{
    uint64_t admitted = 0;
    uint64_t duplicates = 0;
    uint64_t throttled = 0;
    uint64_t quarantinedDeltas = 0;
    uint64_t rejected = 0;
    /** Malformed records the lenient loader skipped (ProfileMeta). */
    uint64_t skippedRecords = 0;
    /** Skipped records whose proc field was unreadable (ProfileMeta). */
    uint64_t unattributedSkips = 0;
    /** Procedures quarantined by the semantic audit. */
    uint64_t procsQuarantined = 0;
    /** Procedures degraded to projected edges by the audit. */
    uint64_t procsProjected = 0;
    /** Procedures rejected for a stale CFG fingerprint. */
    uint64_t procsStale = 0;
    /** Times this client entered quarantine. */
    uint64_t quarantineEntries = 0;
};

/** Verdict for one Delta frame. */
struct AdmissionResult
{
    AckCode code = AckCode::Error;
    /** Human-readable detail for the Ack / log line. */
    std::string detail;
    /** Valid only when code == Accepted. */
    AdmittedDelta delta;
};

/** The admission ladder plus per-client soft state. */
class Admission
{
  public:
    Admission(const ir::Program &prog,
              profile::PathProfileParams pathParams,
              AdmissionOptions opts = AdmissionOptions());

    /**
     * Run the ladder on one Delta.  @p lastSeq is the client's durable
     * cursor (Aggregate::lastSeq).  @p profileKind: 0 edge, 1 path.
     */
    AdmissionResult evaluate(const std::string &clientId,
                             uint64_t lastSeq, uint64_t seq,
                             uint8_t profileKind,
                             const std::string &text);

    /** Epoch rolled over: refill tokens, decay scores, expire
     *  quarantines whose term has passed. */
    void onEpoch(uint64_t newEpoch);

    uint64_t epoch() const { return epoch_; }

    /** Stats for @p clientId (zeros when unseen). */
    const ClientStats &stats(const std::string &clientId) const;

    /** Every client with admission state, for stats export. */
    const std::map<std::string, ClientStats> &allStats() const;

    /** True while @p clientId is quarantined. */
    bool quarantined(const std::string &clientId) const;

  private:
    struct ClientState
    {
        uint64_t tokens = 0;
        bool tokensInit = false;
        uint32_t score = 0;
        /** First epoch at which frames are accepted again; 0 = none. */
        uint64_t quarantinedUntil = 0;
        ClientStats stats;
    };

    ClientState &state(const std::string &clientId);
    void bumpScore(ClientState &cs, uint32_t amount);

    const ir::Program *prog_;
    profile::PathProfileParams path_params_;
    AdmissionOptions opts_;
    uint64_t epoch_ = 0;
    std::map<std::string, ClientState> clients_;
    /** Rebuilt view for allStats(). */
    mutable std::map<std::string, ClientStats> stats_view_;
};

} // namespace pathsched::serve

#endif // PATHSCHED_SERVE_ADMISSION_HPP
