/**
 * @file
 * ServeCore: the aggregation server's socket-independent core.
 *
 * One ServeCore owns the whole serving state for one workload:
 *
 *   frames in ─▶ admission ladder ─▶ WAL (fsync) ─▶ aggregate
 *                                                      │ epoch tick
 *                                                      ▼
 *                        hot-path fingerprints moved? ─▶ reschedule
 *                        (unchanged procs hit the PR-5 stage cache)
 *
 * The core is deliberately transport-free: handleFrame()/handleMessage()
 * take an opaque connection key and return the response payloads to
 * send, so the same code path runs under the poll() daemon
 * (serve/socket.hpp), the in-process bench fleet (bench_serve), and the
 * crash tests — which destroy a ServeCore *without* shutdown() to
 * simulate kill -9 and then recover a fresh one from the state
 * directory.
 *
 * Durability order per admitted delta: WAL append (fsync) first, then
 * the in-memory merge, then the Ack.  A crash between any two steps
 * loses nothing: an unacked admitted delta is already in the WAL, and
 * the client's blind resend after reconnect lands as Duplicate via the
 * recovered seq cursor.
 *
 * Rescheduling integrates the PR-3/PR-5 layers: the run is governed by
 * an optional deadline (a reschedule storm cannot starve ingest — the
 * run ends with a typed DeadlineExceeded and is retried at the next
 * trigger), and the stage cache serves every procedure whose profile
 * slice and CFG did not change, so only moved-fingerprint procedures
 * pay for transformation.
 */

#ifndef PATHSCHED_SERVE_SERVER_HPP
#define PATHSCHED_SERVE_SERVER_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/stats.hpp"
#include "pipeline/cache.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/report.hpp"
#include "serve/admission.hpp"
#include "serve/aggregate.hpp"
#include "serve/wal.hpp"
#include "serve/wire.hpp"
#include "workloads/workloads.hpp"

namespace pathsched::serve {

/** Everything configurable about one serving instance. */
struct ServeOptions
{
    AggregateOptions aggregate;
    AdmissionOptions admission;
    /** Scheduling configuration the server maintains. */
    pipeline::SchedConfig config = pipeline::SchedConfig::P4;
    /** Base pipeline options (machine model, path params, ...).  The
     *  core overrides the profile-input, executor-cache, deadline and
     *  keepTransformed fields per reschedule. */
    pipeline::PipelineOptions pipelineBase;
    /** Wall budget per reschedule attempt; 0 = none.  Crash tests run
     *  with 0 so schedules stay bit-reproducible. */
    uint64_t reschedDeadlineMs = 0;
    /** Attempt a reschedule every N epoch ticks (>= 1). */
    uint32_t reschedEveryEpochs = 1;
    /** Snapshot + rotate the WAL after this many live records;
     *  0 = only on flush(). */
    uint64_t snapshotEvery = 256;
    /** Stage-cache disk tier; empty = memory-only. */
    std::string cacheDir;
    /** Virtual I/O seam for every durable write (WAL, snapshots, the
     *  cache disk tier, schedule output); nullptr = the system
     *  passthrough.  Arm faults on it to exercise degraded mode. */
    Vio *vio = nullptr;
    /** Degraded mode: cap on the doubling WAL-reopen backoff, counted
     *  in epoch ticks (first retry happens on the next tick). */
    uint32_t reopenBackoffCapTicks = 64;
    /** Degraded -> failing after this many consecutive reopen
     *  failures (still recoverable; the ladder keeps retrying). */
    uint32_t failingAfterRetries = 8;
};

/** Server health ladder (see docs/serving.md, "Degraded mode"). */
enum class Health : uint8_t
{
    Healthy = 0,  ///< WAL appends succeed; deltas are acked
    Degraded = 1, ///< WAL down; deltas NACK'd Unavailable, reads served
    Failing = 2,  ///< reopen retries keep failing; still retrying
};

/** Stable display name, e.g. "degraded". */
const char *healthName(Health h);

/** Outcome of one reschedule attempt (see attemptReschedule). */
struct RescheduleOutcome
{
    bool attempted = false; ///< fingerprints were inspected
    bool ran = false;       ///< a pipeline run actually executed
    bool skippedUnmoved = false; ///< no fingerprint moved; run skipped
    uint64_t procsLive = 0;  ///< procedures with live profile data
    uint64_t procsMoved = 0; ///< procedures whose fingerprint moved
    uint64_t cacheHits = 0;  ///< stage-cache hits inside the run
    uint64_t cacheMisses = 0;
    /** Pipeline status of the run (OK when !ran). */
    Status status;
    /** Content hash of the scheduled program (0 until a run succeeds). */
    uint64_t scheduleHash = 0;
};

/** The transport-free aggregation/rescheduling core. */
class ServeCore
{
  public:
    ServeCore(workloads::Workload workload, ServeOptions opts,
              std::string stateDir);
    ~ServeCore();

    ServeCore(const ServeCore &) = delete;
    ServeCore &operator=(const ServeCore &) = delete;

    /** Recover from the state directory and open the WAL.  Must be
     *  called (and succeed) before any other method. */
    Status init();

    /** What recovery found (valid after init()). */
    const RecoveryInfo &recovery() const { return recovery_; }

    /**
     * Feed one raw frame payload from connection @p connKey; the
     * returned payloads (if any) are the responses to frame and send
     * back.  @p dropConn is set when the connection must be closed
     * (protocol misuse, Bye).
     */
    std::vector<std::string> handleFrame(const std::string &connKey,
                                         const std::string &payload,
                                         bool &dropConn);

    /** Forget connection-local state (socket layer calls on close). */
    void dropConnection(const std::string &connKey);

    /** Advance the epoch by one: WAL-log it, rotate the aggregate
     *  window, refill admission tokens, and — every
     *  reschedEveryEpochs ticks — attempt a reschedule. */
    Status tick();

    /** Snapshot now and attempt a (fingerprint-gated) reschedule. */
    Status flush();

    /**
     * Reschedule when any live procedure's hot-path fingerprint moved
     * since the last successful run (@p force skips the gate).  On
     * success the scheduled program is serialized into scheduleBlob().
     */
    RescheduleOutcome attemptReschedule(bool force);

    /** Canonical serialization of the last successful schedule (empty
     *  until one succeeds). */
    const std::string &scheduleBlob() const { return schedule_blob_; }

    /** FNV-1a of scheduleBlob(); 0 until a run succeeds. */
    uint64_t scheduleHash() const { return schedule_hash_; }

    const Aggregate &aggregate() const { return agg_; }
    const Admission &admission() const { return admission_; }
    const workloads::Workload &workload() const { return workload_; }

    /** Server-wide counters, including serve.client.<id>.* admission
     *  attribution (synced on access). */
    const obs::StatRegistry &stats();

    /** The server's status document (aggregate hashes, counters,
     *  recovery info, last reschedule) as pretty JSON. */
    std::string statusJson();

    /** v1 report document (pipeline/report.hpp) over every successful
     *  reschedule run, with the serve registry attached. */
    std::string reportJson();

    /** Write the last schedule blob to @p path; false on I/O error or
     *  when no schedule exists yet. */
    bool writeScheduleBlob(const std::string &path) const;

    uint64_t framesSeen() const { return frames_seen_; }
    uint64_t deltasAccepted() const { return deltas_accepted_; }

    /** Current health state (see the Health ladder). */
    Health health() const { return health_; }

  private:
    struct ConnState
    {
        bool hello = false;
        std::string clientId;
    };

    std::vector<std::string> handleMessage(const std::string &connKey,
                                           const Message &msg,
                                           bool &dropConn);
    Status maybeSnapshot();
    void syncClientCounters();

    /** Enter degraded mode because of @p why (idempotent). */
    void degrade(const Status &why);
    /** One WAL reopen+snapshot attempt; OK = healthy again. */
    Status attemptRecovery();
    /** Append the health block to a JSON document under key
     *  "health". */
    void healthToJson(obs::JsonWriter &w);

    workloads::Workload workload_;
    ServeOptions opts_;
    Aggregate agg_;
    Wal wal_;
    Admission admission_;
    pipeline::StageCache cache_;
    obs::StatRegistry registry_;
    RecoveryInfo recovery_;
    std::map<std::string, ConnState> conns_;

    bool inited_ = false;
    uint64_t frames_seen_ = 0;
    uint64_t deltas_accepted_ = 0;
    uint64_t ticks_ = 0;

    /** Health state machine (WAL availability). */
    Health health_ = Health::Healthy;
    std::string last_health_error_;
    uint32_t ticks_until_retry_ = 0; ///< countdown to the next reopen
    uint32_t retry_backoff_ = 1;     ///< next wait after a failed reopen
    uint32_t reopen_failures_ = 0;   ///< consecutive failed reopens

    /** Fingerprints as of the last *successful* reschedule. */
    std::map<uint32_t, uint64_t> scheduled_fps_;
    std::string schedule_blob_;
    uint64_t schedule_hash_ = 0;
    RescheduleOutcome last_resched_;
    std::vector<pipeline::ReportRun> runs_;
};

/** True when @p id is a valid client id: nonempty, at most 64 chars,
 *  only [A-Za-z0-9_-] (client ids appear in dotted stat paths and in
 *  filenames, so the alphabet is restricted at the trust boundary). */
bool validClientId(const std::string &id);

} // namespace pathsched::serve

#endif // PATHSCHED_SERVE_SERVER_HPP
