#include "serve/wal.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "serve/wire.hpp"
#include "support/strutil.hpp"

namespace pathsched::serve {

namespace {

Status
ioError(const char *op, const std::string &path)
{
    return Status::error(ErrorKind::IoError,
                         strfmt("wal: %s %s: %s", op, path.c_str(),
                                strerror(errno)));
}

/** Parse "<prefix>.<gen>.bin" -> gen; 0 when the name doesn't match. */
uint64_t
parseGen(const std::string &name, const char *prefix)
{
    const std::string pre = std::string(prefix) + ".";
    if (name.size() <= pre.size() + 4 || name.compare(0, pre.size(), pre) != 0 ||
        name.compare(name.size() - 4, 4, ".bin") != 0)
        return 0;
    uint64_t gen = 0;
    for (size_t i = pre.size(); i < name.size() - 4; ++i) {
        if (name[i] < '0' || name[i] > '9')
            return 0;
        gen = gen * 10 + uint64_t(name[i] - '0');
    }
    return gen;
}

/** All generations present for @p prefix, ascending. */
std::vector<uint64_t>
listGens(const std::string &dir, const char *prefix)
{
    std::vector<uint64_t> gens;
    DIR *d = opendir(dir.c_str());
    if (d == nullptr)
        return gens;
    while (dirent *e = readdir(d))
        if (uint64_t g = parseGen(e->d_name, prefix); g != 0)
            gens.push_back(g);
    closedir(d);
    std::sort(gens.begin(), gens.end());
    return gens;
}

Status
readWholeFile(const std::string &path, std::string &out)
{
    FILE *f = fopen(path.c_str(), "rb");
    if (f == nullptr)
        return ioError("open", path);
    char buf[1 << 16];
    out.clear();
    size_t n;
    while ((n = fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    const bool bad = ferror(f) != 0;
    fclose(f);
    if (bad)
        return ioError("read", path);
    return Status();
}

} // namespace

Wal::Wal(std::string dir, Vio *vio)
    : dir_(std::move(dir)),
      vio_(vio != nullptr ? vio : &Vio::system())
{}

Wal::~Wal()
{
    // No flush here beyond what each append already fsync'd: dropping
    // a Wal without snapshot() is exactly the crash the recovery path
    // must handle, and the in-process crash tests rely on that.
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
Wal::walPath(uint64_t gen) const
{
    return strfmt("%s/wal.%llu.bin", dir_.c_str(),
                  (unsigned long long)gen);
}

std::string
Wal::snapPath(uint64_t gen) const
{
    return strfmt("%s/snap.%llu.bin", dir_.c_str(),
                  (unsigned long long)gen);
}

Status
Wal::applyRecord(const std::string &payload, Aggregate &agg,
                 RecoveryInfo *info)
{
    size_t pos = 0;
    uint8_t tag = 0;
    if (!getU8(payload, pos, tag))
        return Status::error(ErrorKind::ProfileCorrupt,
                             "wal: empty record");
    switch (MsgType(tag)) {
    case MsgType::WalAdmitted: {
        AdmittedDelta delta;
        if (Status st = AdmittedDelta::decode(payload, pos, delta);
            !st.ok())
            return st;
        if (pos != payload.size())
            return Status::error(ErrorKind::ProfileCorrupt,
                                 "wal: trailing bytes in record");
        agg.apply(delta);
        if (info != nullptr)
            ++info->recordsReplayed;
        return Status();
    }
    case MsgType::WalEpoch: {
        uint64_t ep = 0;
        if (!getU64(payload, pos, ep) || pos != payload.size())
            return Status::error(ErrorKind::ProfileCorrupt,
                                 "wal: malformed epoch record");
        agg.advanceEpoch(ep);
        if (info != nullptr)
            ++info->epochRecords;
        return Status();
    }
    default:
        return Status::error(ErrorKind::ProfileCorrupt,
                             strfmt("wal: unknown record tag %u", tag));
    }
}

Status
Wal::open(Aggregate &agg, RecoveryInfo &info)
{
    if (mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
        return ioError("mkdir", dir_);

    // 1. Newest snapshot whose trailer verifies; corrupt ones (torn
    //    rename never produces these, but disks bit-rot) are skipped,
    //    falling back generation by generation.
    uint64_t snapGen = 0;
    {
        std::vector<uint64_t> snaps = listGens(dir_, "snap");
        for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
            std::string blob;
            if (Status st = readWholeFile(snapPath(*it), blob); !st.ok()) {
                ++info.snapshotsSkipped;
                continue;
            }
            // Snapshot files are a sequence of frames whose payloads
            // concatenate to the aggregate blob (the blob can exceed a
            // single frame's cap; see Wal::snapshot).  Any corruption
            // or trailing partial frame invalidates the whole file.
            FrameDecoder dec;
            dec.feed(blob.data(), blob.size());
            std::string payload, aggBlob;
            bool frames = false, bad = false;
            for (;;) {
                const auto r = dec.next(payload);
                if (r == FrameDecoder::Result::Frame) {
                    aggBlob += payload;
                    frames = true;
                    continue;
                }
                bad = r != FrameDecoder::Result::NeedMore ||
                      dec.pendingBytes() > 0;
                break;
            }
            if (bad || !frames) {
                ++info.snapshotsSkipped;
                continue;
            }
            Aggregate restored(agg.options());
            if (Status st = Aggregate::deserialize(
                    aggBlob, agg.options(), restored);
                !st.ok()) {
                ++info.snapshotsSkipped;
                continue;
            }
            agg = std::move(restored);
            snapGen = *it;
            break;
        }
    }
    info.snapshotGen = snapGen;

    // 2. Replay wal segments beyond the snapshot, ascending; stop each
    //    segment at the first torn frame and truncate the tail.
    uint64_t maxGen = snapGen;
    for (uint64_t gen : listGens(dir_, "wal")) {
        maxGen = std::max(maxGen, gen);
        if (gen <= snapGen)
            continue;
        const std::string path = walPath(gen);
        std::string bytes;
        if (Status st = readWholeFile(path, bytes); !st.ok())
            return st;
        // The cap must match what appendFrameDurable admits, or a
        // record the writer accepted would replay as corrupt.
        FrameDecoder dec(kMaxWalPayload);
        dec.feed(bytes.data(), bytes.size());
        std::string payload;
        size_t consumed = 0;
        bool torn = false;
        for (;;) {
            const auto r = dec.next(payload);
            if (r == FrameDecoder::Result::Frame) {
                if (Status st = applyRecord(payload, agg, &info);
                    !st.ok())
                    return st; // a *verified* frame must parse
                consumed = bytes.size() - dec.pendingBytes();
                continue;
            }
            if (r == FrameDecoder::Result::NeedMore) {
                torn = dec.pendingBytes() > 0;
                break;
            }
            torn = true; // Corrupt: CRC/length failure in the tail
            break;
        }
        if (torn) {
            ++info.tornSegments;
            info.tornBytes += bytes.size() - consumed;
            if (truncate(path.c_str(), off_t(consumed)) != 0)
                return ioError("truncate", path);
        }
        ++info.segmentsReplayed;
    }

    // 3. Live segment: continue the newest wal generation (appending
    //    after its last good record) or start snapGen+1.
    live_gen_ = std::max<uint64_t>(maxGen, snapGen) + (maxGen > snapGen ? 0 : 1);
    live_records_ = 0;
    return openLiveSegment();
}

Status
Wal::openLiveSegment()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    const std::string path = walPath(live_gen_);
    Expected<int> fd =
        vio_->openFile("wal", path, O_WRONLY | O_CREAT | O_APPEND);
    if (!fd.ok())
        return fd.status();
    fd_ = fd.value();
    return vio_->fsyncDir("dir", dir_);
}

Status
Wal::appendFrameDurable(const std::string &payload)
{
    ps_assert_msg(fd_ >= 0, "Wal append before open()");
    // Recovery decodes with a kMaxWalPayload cap; a record beyond it
    // would be written durably but classified as corrupt on replay,
    // silently truncating everything after it.  Refuse it up front.
    if (payload.size() > kMaxWalPayload)
        return Status::error(
            ErrorKind::BudgetExceeded,
            strfmt("wal: record payload %zu exceeds replay cap %u",
                   payload.size(), kMaxWalPayload));
    std::string frame;
    appendFrame(frame, payload);
    if (Status st = vio_->writeAll("wal", fd_, frame.data(),
                                   frame.size(), walPath(live_gen_));
        !st.ok())
        return st;
    if (Status st = vio_->fsyncFile("wal", fd_, walPath(live_gen_));
        !st.ok())
        return st;
    ++live_records_;
    return Status();
}

Status
Wal::appendAdmitted(const AdmittedDelta &delta)
{
    std::string payload;
    putU8(payload, uint8_t(MsgType::WalAdmitted));
    delta.encode(payload);
    return appendFrameDurable(payload);
}

Status
Wal::appendEpoch(uint64_t newEpoch)
{
    std::string payload;
    putU8(payload, uint8_t(MsgType::WalEpoch));
    putU64(payload, newEpoch);
    return appendFrameDurable(payload);
}

Status
Wal::snapshot(const Aggregate &agg)
{
    // Snapshot covering the live generation: temp + fsync + rename so
    // either the old or the new snapshot exists, never a torn one.
    const uint64_t gen = live_gen_;
    const std::string tmp = strfmt("%s/snap.tmp", dir_.c_str());
    const std::string fin = snapPath(gen);
    {
        // The aggregate blob has no size bound, but every frame does:
        // chunk it so recovery (which reassembles the payloads) never
        // sees a frame beyond the decoder cap, no matter how many live
        // keys the aggregate holds.
        std::string frame;
        {
            const std::string blob = agg.serialize();
            size_t off = 0;
            do {
                const size_t n = std::min<size_t>(blob.size() - off,
                                                  kMaxFramePayload);
                appendFrame(frame, blob.substr(off, n));
                off += n;
            } while (off < blob.size());
        }
        Expected<int> tfd =
            vio_->openFile("snap", tmp, O_WRONLY | O_CREAT | O_TRUNC);
        if (!tfd.ok())
            return tfd.status();
        Status st = vio_->writeAll("snap", tfd.value(), frame.data(),
                                   frame.size(), tmp);
        if (st.ok())
            st = vio_->fsyncFile("snap", tfd.value(), tmp);
        if (!st.ok()) {
            ::close(tfd.value());
            return st;
        }
        if (st = vio_->closeFile("snap", tfd.value(), tmp); !st.ok())
            return st;
    }
    if (Status st = vio_->renameFile("snap", tmp, fin); !st.ok())
        return st;
    if (Status st = vio_->fsyncDir("dir", dir_); !st.ok())
        return st;

    // Rotate the live segment, then garbage-collect superseded files.
    live_gen_ = gen + 1;
    live_records_ = 0;
    if (Status st = openLiveSegment(); !st.ok())
        return st;
    for (uint64_t g : listGens(dir_, "wal"))
        if (g <= gen)
            (void)unlink(walPath(g).c_str());
    for (uint64_t g : listGens(dir_, "snap"))
        if (g < gen)
            (void)unlink(snapPath(g).c_str());
    return vio_->fsyncDir("dir", dir_);
}

Status
Wal::reopenAndSnapshot(const Aggregate &agg)
{
    // The suspect segment's on-disk tail is unknown (a failed write or
    // fsync may have left a torn frame); drop the fd and supersede the
    // whole segment with a snapshot of the acked in-memory state.  The
    // snapshot covers generation live_gen_, so GC inside snapshot()
    // unlinks the suspect file; a crash before the rename leaves the
    // old recovery chain intact, and a crash after it replays nothing
    // from the suspect tail.
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    return snapshot(agg);
}

} // namespace pathsched::serve
