#include "serve/wire.hpp"

#include <cstring>

#include "support/hash.hpp"
#include "support/strutil.hpp"

namespace pathsched::serve {

const char *
ackCodeName(AckCode code)
{
    switch (code) {
    case AckCode::Accepted:
        return "accepted";
    case AckCode::Duplicate:
        return "duplicate";
    case AckCode::Throttled:
        return "throttled";
    case AckCode::Quarantined:
        return "quarantined";
    case AckCode::Rejected:
        return "rejected";
    case AckCode::Error:
        return "error";
    case AckCode::Unavailable:
        return "unavailable";
    }
    return "unknown";
}

void
putU8(std::string &out, uint8_t v)
{
    out.push_back(char(v));
}

void
putU16(std::string &out, uint16_t v)
{
    out.push_back(char(v & 0xFF));
    out.push_back(char((v >> 8) & 0xFF));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(char((v >> (8 * i)) & 0xFF));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, uint32_t(s.size()));
    out += s;
}

bool
getU8(const std::string &in, size_t &pos, uint8_t &v)
{
    if (pos + 1 > in.size())
        return false;
    v = uint8_t(in[pos++]);
    return true;
}

bool
getU16(const std::string &in, size_t &pos, uint16_t &v)
{
    if (pos + 2 > in.size())
        return false;
    v = uint16_t(uint8_t(in[pos])) |
        uint16_t(uint16_t(uint8_t(in[pos + 1])) << 8);
    pos += 2;
    return true;
}

bool
getU32(const std::string &in, size_t &pos, uint32_t &v)
{
    if (pos + 4 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(uint8_t(in[pos + i])) << (8 * i);
    pos += 4;
    return true;
}

bool
getU64(const std::string &in, size_t &pos, uint64_t &v)
{
    if (pos + 8 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(uint8_t(in[pos + i])) << (8 * i);
    pos += 8;
    return true;
}

bool
getStr(const std::string &in, size_t &pos, std::string &s)
{
    uint32_t len = 0;
    if (!getU32(in, pos, len))
        return false;
    // The length is attacker-controlled: bound it by what is actually
    // buffered before allocating.
    if (uint64_t(pos) + len > in.size())
        return false;
    s.assign(in, pos, len);
    pos += len;
    return true;
}

void
appendFrame(std::string &out, const std::string &payload)
{
    putU32(out, uint32_t(payload.size()));
    putU32(out, crc32(payload.data(), payload.size()));
    out += payload;
}

void
FrameDecoder::feed(const void *data, size_t size)
{
    // Compact occasionally so a long-lived connection cannot grow the
    // buffer without bound on consumed bytes.
    if (off_ > 0 && off_ >= buf_.size() / 2) {
        buf_.erase(0, off_);
        off_ = 0;
    }
    buf_.append(static_cast<const char *>(data), size);
}

FrameDecoder::Result
FrameDecoder::next(std::string &out)
{
    if (corrupt_)
        return Result::Corrupt;
    size_t pos = off_;
    uint32_t len = 0, crc = 0;
    if (!getU32(buf_, pos, len))
        return Result::NeedMore;
    if (len > max_) {
        corrupt_ = true;
        reason_ = strfmt("declared payload %u exceeds cap %u", len, max_);
        return Result::Corrupt;
    }
    if (!getU32(buf_, pos, crc))
        return Result::NeedMore;
    if (pos + len > buf_.size())
        return Result::NeedMore;
    const uint32_t actual = crc32(buf_.data() + pos, len);
    if (actual != crc) {
        corrupt_ = true;
        reason_ = strfmt("frame CRC mismatch (declared %08x, got %08x)",
                         crc, actual);
        return Result::Corrupt;
    }
    out.assign(buf_, pos, len);
    off_ = pos + len;
    return Result::Frame;
}

std::string
encodeHello(const std::string &clientId, uint16_t version)
{
    std::string p;
    putU8(p, uint8_t(MsgType::Hello));
    putU16(p, version);
    putStr(p, clientId);
    return p;
}

std::string
encodeDelta(uint64_t seq, uint8_t profileKind, const std::string &text)
{
    std::string p;
    putU8(p, uint8_t(MsgType::Delta));
    putU64(p, seq);
    putU8(p, profileKind);
    putStr(p, text);
    return p;
}

namespace {

std::string
encodeBare(MsgType t)
{
    std::string p;
    putU8(p, uint8_t(t));
    return p;
}

} // namespace

std::string
encodeTick()
{
    return encodeBare(MsgType::Tick);
}

std::string
encodeFlush()
{
    return encodeBare(MsgType::Flush);
}

std::string
encodeStatsReq()
{
    return encodeBare(MsgType::StatsReq);
}

std::string
encodeBye()
{
    return encodeBare(MsgType::Bye);
}

std::string
encodeAck(uint64_t seq, AckCode code, const std::string &detail)
{
    std::string p;
    putU8(p, uint8_t(MsgType::Ack));
    putU64(p, seq);
    putU8(p, uint8_t(code));
    putStr(p, detail);
    return p;
}

std::string
encodeStatsRep(const std::string &json)
{
    std::string p;
    putU8(p, uint8_t(MsgType::StatsRep));
    putStr(p, json);
    return p;
}

Status
decodeMessage(const std::string &payload, Message &out)
{
    auto bad = [&](const char *what) {
        return Status::error(ErrorKind::BadProfile,
                             strfmt("wire: %s", what));
    };
    size_t pos = 0;
    uint8_t tag = 0;
    if (!getU8(payload, pos, tag))
        return bad("empty payload");
    out = Message();
    switch (MsgType(tag)) {
    case MsgType::Hello: {
        out.type = MsgType::Hello;
        if (!getU16(payload, pos, out.version) ||
            !getStr(payload, pos, out.clientId))
            return bad("truncated Hello");
        break;
    }
    case MsgType::Delta: {
        out.type = MsgType::Delta;
        if (!getU64(payload, pos, out.seq) ||
            !getU8(payload, pos, out.profileKind) ||
            !getStr(payload, pos, out.text))
            return bad("truncated Delta");
        if (out.profileKind > 1)
            return bad("unknown Delta profile kind");
        break;
    }
    case MsgType::Tick:
    case MsgType::Flush:
    case MsgType::StatsReq:
    case MsgType::Bye:
        out.type = MsgType(tag);
        break;
    case MsgType::Ack: {
        out.type = MsgType::Ack;
        uint8_t code = 0;
        if (!getU64(payload, pos, out.seq) ||
            !getU8(payload, pos, code) ||
            !getStr(payload, pos, out.text))
            return bad("truncated Ack");
        if (code > uint8_t(AckCode::Unavailable))
            return bad("unknown Ack code");
        out.ack = AckCode(code);
        break;
    }
    case MsgType::StatsRep: {
        out.type = MsgType::StatsRep;
        if (!getStr(payload, pos, out.text))
            return bad("truncated StatsRep");
        break;
    }
    default:
        return bad("unknown message type");
    }
    if (pos != payload.size())
        return bad("trailing bytes after message");
    return Status();
}

} // namespace pathsched::serve
