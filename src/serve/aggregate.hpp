/**
 * @file
 * Decayed, time-windowed, shardable profile aggregate.
 *
 * The serve pipeline folds admitted profile deltas from many clients
 * into one per-procedure aggregate that (a) forgets, (b) shards, and
 * (c) detects movement:
 *
 *  - **Windowed decay.**  Counts land in the bucket of the current
 *    epoch; the aggregate keeps the last `windows` epochs and a query
 *    sums the live buckets.  Advancing the epoch rotates the oldest
 *    bucket out — Propeller-style time-bounded discard
 *    (max_time_diff_in_path_buffer_millis) with integer arithmetic, so
 *    decay is exact and replayable instead of a float half-life.
 *
 *  - **Associative merge.**  Every bucket is a sorted map of integer
 *    counters, per-client cursors combine by max, and the epoch by
 *    max, so merge() is associative *and* commutative with bit-exact
 *    results: shard aggregates on N machines, merge in any grouping or
 *    order, and the canonical serialization is byte-identical
 *    (tests/merge_property_test.cpp).  This is RunningStat::merge's
 *    contract, made exact by keeping everything integral.
 *
 *  - **Hot-path fingerprints.**  hotFingerprint(proc) hashes the
 *    identity and order of the procedure's top-K hottest edges and
 *    path windows — not their raw counts — so uniform traffic growth
 *    leaves it fixed while a shift in *which* paths are hot moves it.
 *    The server reschedules only procedures whose fingerprint moved;
 *    everything else is served from the PR-5 stage cache.
 *
 * The canonical serialization (sorted keys, fixed-width little-endian,
 * whole-blob FNV-1a trailer) doubles as the snapshot payload and as
 * the bit-identity witness for crash-recovery tests.
 */

#ifndef PATHSCHED_SERVE_AGGREGATE_HPP
#define PATHSCHED_SERVE_AGGREGATE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/procedure.hpp"
#include "support/status.hpp"

namespace pathsched::profile {
class EdgeProfiler;
class PathProfiler;
struct PathProfileParams;
} // namespace pathsched::profile

namespace pathsched::serve {

/** One admitted, normalized profile delta: the post-admission record
 *  set of one client upload, in canonical (sorted) order.  This is
 *  what the WAL persists and what the aggregate ingests — admission
 *  decisions are baked in at ingest time, so replay never re-audits. */
struct AdmittedDelta
{
    std::string clientId;
    uint64_t seq = 0;

    struct BlockRec
    {
        uint32_t proc = 0;
        uint32_t block = 0;
        uint64_t count = 0;
    };
    struct EdgeRec
    {
        uint32_t proc = 0;
        uint32_t from = 0;
        uint32_t to = 0;
        uint64_t count = 0;
    };
    struct PathRec
    {
        uint32_t proc = 0;
        std::vector<uint32_t> blocks; ///< oldest block first
        uint64_t count = 0;
    };

    std::vector<BlockRec> blocks; ///< sorted by (proc, block)
    std::vector<EdgeRec> edges;   ///< sorted by (proc, from, to)
    std::vector<PathRec> paths;   ///< sorted by (proc, blocks)

    /** Canonicalize: sort and sum duplicate keys. */
    void normalize();

    bool
    empty() const
    {
        return blocks.empty() && edges.empty() && paths.empty();
    }

    /** Binary encode (WAL payload body, after the type byte). */
    void encode(std::string &out) const;
    /** Inverse of encode(); typed error on truncation/overflow. */
    static Status decode(const std::string &in, size_t &pos,
                         AdmittedDelta &out);
};

/** Aggregate sizing/behaviour knobs. */
struct AggregateOptions
{
    /** Live epochs (buckets); counts older than this are discarded. */
    uint32_t windows = 8;
    /** Distinct counter keys one bucket may hold; at the cap, *new*
     *  keys are dropped (and counted) while existing keys still
     *  accumulate — bounded memory under a hostile or runaway fleet. */
    uint64_t maxKeysPerBucket = 1u << 20;
    /** Edges/windows per procedure that enter the hot-path
     *  fingerprint (top-K by count, ties by key). */
    uint32_t fingerprintTopK = 4;
};

/** Windowed, shardable per-procedure profile aggregate. */
class Aggregate
{
  public:
    explicit Aggregate(AggregateOptions opts = AggregateOptions());

    const AggregateOptions &options() const { return opts_; }

    /** Current epoch (starts at 0; advanceEpoch increments). */
    uint64_t epoch() const { return epoch_; }

    /** Merge one admitted delta into the current epoch's bucket.
     *  Also advances the per-client sequence cursor. */
    void apply(const AdmittedDelta &delta);

    /** Rotate to @p newEpoch (monotonic), discarding buckets that
     *  fall out of the window.  No-op when newEpoch <= epoch(). */
    void advanceEpoch(uint64_t newEpoch);

    /** Highest admitted seq for @p clientId; 0 when unseen. */
    uint64_t lastSeq(const std::string &clientId) const;

    /** Fold @p other in (associative + commutative; see file doc).
     *  Window counts must match — shards share a config. */
    void merge(const Aggregate &other);

    /** Keys dropped because a bucket hit maxKeysPerBucket. */
    uint64_t droppedKeys() const { return dropped_keys_; }

    /** Distinct counter keys across all live buckets (memory proxy). */
    uint64_t liveKeys() const;

    /** Procedures with any live data, ascending. */
    std::vector<uint32_t> liveProcs() const;

    /**
     * Hot-path fingerprint of @p proc over the live window: FNV-1a of
     * the ordered top-K edge keys and top-K path windows (by summed
     * count, ties toward the smaller key).  0 when the procedure has
     * no live data.  Count *magnitudes* do not participate — only the
     * identity and rank order of the hot set.
     */
    uint64_t hotFingerprint(uint32_t proc) const;

    /** hotFingerprint for every live procedure. */
    std::map<uint32_t, uint64_t> hotFingerprints() const;

    /** Summed live counts rendered into @p ep / @p pp (for feeding the
     *  pipeline).  Out-of-range records for the target program are
     *  skipped (the program may have changed under the aggregate);
     *  @p skipped counts them. */
    void dumpEdges(profile::EdgeProfiler &ep, uint64_t &skipped) const;
    void dumpPaths(profile::PathProfiler &pp, uint64_t &skipped) const;

    /** True when any live bucket holds path windows. */
    bool hasPathData() const;

    /**
     * Canonical serialization: fixed-width little-endian, sorted keys,
     * FNV-1a trailer.  Equal aggregates produce byte-identical blobs —
     * the crash-recovery bit-identity witness and snapshot payload.
     */
    std::string serialize() const;

    /** Inverse of serialize(); typed ProfileCorrupt on a bad trailer,
     *  truncation, or a window-count mismatch with @p opts. */
    static Status deserialize(const std::string &blob,
                              const AggregateOptions &opts,
                              Aggregate &out);

    /** FNV-1a of serialize() — cheap identity for logs and status. */
    uint64_t contentHash() const;

  private:
    struct Bucket
    {
        uint64_t epoch = 0;
        /** key: (proc<<32)|block */
        std::map<uint64_t, uint64_t> blocks;
        /** key: (proc, (from<<32)|to) */
        std::map<std::pair<uint64_t, uint64_t>, uint64_t> edges;
        /** key: (proc, window blocks) */
        std::map<std::pair<uint32_t, std::vector<uint32_t>>, uint64_t>
            paths;

        uint64_t
        keyCount() const
        {
            return blocks.size() + edges.size() + paths.size();
        }
        bool
        empty() const
        {
            return blocks.empty() && edges.empty() && paths.empty();
        }
    };

    Bucket &currentBucket();
    /** Buckets still inside the window, oldest first. */
    std::vector<const Bucket *> liveBuckets() const;

    AggregateOptions opts_;
    uint64_t epoch_ = 0;
    /** Ring of buckets keyed by epoch; only epochs within
     *  [epoch - windows + 1, epoch] are live. */
    std::map<uint64_t, Bucket> buckets_;
    /** clientId -> highest admitted seq (exactly-once dedup). */
    std::map<std::string, uint64_t> last_seq_;
    uint64_t dropped_keys_ = 0;
};

} // namespace pathsched::serve

#endif // PATHSCHED_SERVE_AGGREGATE_HPP
