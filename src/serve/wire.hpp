/**
 * @file
 * Serve wire format v1: length-prefixed, CRC-framed binary frames.
 *
 * Everything that crosses a durability or trust boundary in the serve
 * subsystem travels in the same frame container — client connections
 * (serve/socket.hpp), the write-ahead log and snapshots (serve/wal.hpp)
 * all reuse it, so one verifier covers every torn-write and bit-rot
 * case:
 *
 *   frame := u32 payloadLen | u32 crc32(payload) | payload
 *
 * All integers are fixed-width little-endian.  The CRC is the shared
 * reflected CRC-32 (support/hash.hpp).  A frame whose declared length
 * exceeds the decoder's cap, or whose payload fails the CRC, is a
 * *typed* error — the connection (or log tail) it came from is
 * untrusted from that byte on, exactly like a torn batch-journal line.
 *
 * The payload's first byte is the message type; the remainder is
 * message-specific.  The protocol is versioned through Hello (clients)
 * and the WAL/snapshot headers (durability), mirroring the v2 profile
 * format's header versioning: unknown versions are rejected up front
 * with a typed error, never half-parsed.
 *
 * Client → server:
 *   Hello     u16 wireVersion | str clientId
 *   Delta     u64 seq | u8 profileKind (0 edge, 1 path) | str text
 *             (text is a v1/v2 serialized profile, profile/serialize)
 *   Tick      (advance the aggregation epoch; admin/test use)
 *   Flush     (snapshot + reschedule now; replay/test use)
 *   StatsReq  (ask for the server's status document)
 *   Bye       (polite close)
 *
 * Server → client:
 *   Ack       u64 seq | u8 ackCode | str detail
 *   StatsRep  str json
 *
 * str := u32 len | bytes.  Every decoder is bounds-checked and
 * Status-returning; malformed payloads are recoverable, typed errors
 * (ErrorKind::BadProfile family), never asserts — frames are untrusted
 * input end to end.
 */

#ifndef PATHSCHED_SERVE_WIRE_HPP
#define PATHSCHED_SERVE_WIRE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace pathsched::serve {

/** Wire protocol version spoken by Hello (and stamped on WAL files). */
constexpr uint16_t kWireVersion = 1;

/** Hard cap on one frame's payload; larger declared lengths are
 *  rejected before any allocation (a 4-byte flip cannot OOM us). */
constexpr uint32_t kMaxFramePayload = 4u << 20;

/** Cap on one WAL *record* payload.  Wider than the socket cap because
 *  re-encoding an admitted (text) delta to binary can grow past
 *  kMaxFramePayload.  The writer enforces it per append and recovery
 *  decodes with exactly this cap, so every record the WAL accepts is
 *  replayable — an oversized record fails the append with a typed
 *  error instead of poisoning the log tail.  Snapshots are exempt:
 *  they are chunked into kMaxFramePayload-sized frames instead. */
constexpr uint32_t kMaxWalPayload = 64u << 20;

/** Payload type tags (first payload byte). */
enum class MsgType : uint8_t
{
    Hello = 1,
    Delta = 2,
    Tick = 3,
    Flush = 4,
    StatsReq = 5,
    Bye = 6,
    Ack = 16,
    StatsRep = 17,
    // Durability records (WAL / snapshot payloads, never on sockets).
    WalAdmitted = 32,
    WalEpoch = 33,
};

/** Ack verdicts, in the order the admission ladder applies them. */
enum class AckCode : uint8_t
{
    Accepted = 0,   ///< admitted, WAL-durable, merged
    Duplicate = 1,  ///< seq <= the client's last admitted seq; dropped
    Throttled = 2,  ///< per-client rate limit; retry after backoff
    Quarantined = 3,///< client flagged as misbehaving; dropped unread
    Rejected = 4,   ///< delta failed parse/admission checks
    Error = 5,      ///< protocol misuse (e.g. Delta before Hello)
    Unavailable = 6,///< server degraded (WAL down); retry with backoff
};

/** Stable display name, e.g. "accepted". */
const char *ackCodeName(AckCode code);

/** @name Primitive little-endian put/get helpers
 *  The get* functions bounds-check and return false on truncation;
 *  decoders turn that into a typed Status.
 *  @{ */
void putU8(std::string &out, uint8_t v);
void putU16(std::string &out, uint16_t v);
void putU32(std::string &out, uint32_t v);
void putU64(std::string &out, uint64_t v);
void putStr(std::string &out, const std::string &s);
bool getU8(const std::string &in, size_t &pos, uint8_t &v);
bool getU16(const std::string &in, size_t &pos, uint16_t &v);
bool getU32(const std::string &in, size_t &pos, uint32_t &v);
bool getU64(const std::string &in, size_t &pos, uint64_t &v);
/** Bounded string read: length capped by the remaining input. */
bool getStr(const std::string &in, size_t &pos, std::string &s);
/** @} */

/** Wrap @p payload in a frame (length + CRC) appended to @p out. */
void appendFrame(std::string &out, const std::string &payload);

/**
 * Incremental frame extractor for a byte stream.  feed() bytes as they
 * arrive; next() pops one verified payload at a time.
 *
 * Torn input is typed, not fatal: a frame that declares more than
 * maxPayload, or whose CRC fails, poisons the decoder (corrupt()) —
 * the caller drops the connection or truncates the log there.  A
 * partial frame at the end of the stream is simply "no frame yet"
 * (finishTruncated() tells a log-replayer whether bytes were left).
 */
class FrameDecoder
{
  public:
    explicit FrameDecoder(uint32_t maxPayload = kMaxFramePayload)
        : max_(maxPayload)
    {}

    /** Append raw stream bytes. */
    void feed(const void *data, size_t size);

    /** Result of one next() call. */
    enum class Result
    {
        Frame,   ///< @p out holds the next verified payload
        NeedMore,///< no complete frame buffered yet
        Corrupt, ///< CRC/length failure; decoder is poisoned
    };

    /** Pop the next verified payload into @p out. */
    Result next(std::string &out);

    /** A CRC/length failure was seen; the stream is untrusted. */
    bool corrupt() const { return corrupt_; }

    /** Human-readable reason for corrupt(). */
    const std::string &corruptReason() const { return reason_; }

    /** Bytes buffered but not yet consumed by complete frames. */
    size_t pendingBytes() const { return buf_.size() - off_; }

  private:
    std::string buf_;
    size_t off_ = 0;
    uint32_t max_;
    bool corrupt_ = false;
    std::string reason_;
};

/** @name Typed message encoders (payloads; wrap with appendFrame) @{ */
std::string encodeHello(const std::string &clientId,
                        uint16_t version = kWireVersion);
std::string encodeDelta(uint64_t seq, uint8_t profileKind,
                        const std::string &text);
std::string encodeTick();
std::string encodeFlush();
std::string encodeStatsReq();
std::string encodeBye();
std::string encodeAck(uint64_t seq, AckCode code,
                      const std::string &detail);
std::string encodeStatsRep(const std::string &json);
/** @} */

/** One decoded client/server message (fields valid per its type). */
struct Message
{
    MsgType type = MsgType::Bye;
    uint16_t version = 0;     ///< Hello
    std::string clientId;     ///< Hello
    uint64_t seq = 0;         ///< Delta / Ack
    uint8_t profileKind = 0;  ///< Delta: 0 = edge, 1 = path
    std::string text;         ///< Delta text / Ack detail / StatsRep json
    AckCode ack = AckCode::Error; ///< Ack
};

/** Decode one frame payload into @p out.  Typed BadProfile error on an
 *  unknown type tag or a truncated/overlong body. */
Status decodeMessage(const std::string &payload, Message &out);

} // namespace pathsched::serve

#endif // PATHSCHED_SERVE_WIRE_HPP
