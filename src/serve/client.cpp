#include "serve/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/strutil.hpp"

namespace pathsched::serve {

namespace {

Status
clientError(const char *op)
{
    return Status::error(ErrorKind::BadProfile,
                         strfmt("client: %s: %s", op, strerror(errno)));
}

} // namespace

Client::Client(Endpoint ep, std::string clientId, ClientOptions opts)
    : ep_(std::move(ep)), client_id_(std::move(clientId)), opts_(opts)
{}

Client::~Client()
{
    disconnect();
}

void
Client::disconnect()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    decoder_ = FrameDecoder();
}

Status
Client::connectOnce()
{
    disconnect();
    fd_ = socket(ep_.isUnix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return clientError("socket");
    int rc;
    if (ep_.isUnix) {
        sockaddr_un addr;
        memset(&addr, 0, sizeof addr);
        addr.sun_family = AF_UNIX;
        strncpy(addr.sun_path, ep_.path.c_str(),
                sizeof addr.sun_path - 1);
        rc = ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    } else {
        sockaddr_in addr;
        memset(&addr, 0, sizeof addr);
        addr.sin_family = AF_INET;
        addr.sin_port = htons(ep_.port);
        if (inet_pton(AF_INET, ep_.host.c_str(), &addr.sin_addr) != 1) {
            disconnect();
            return Status::error(ErrorKind::BadProfile,
                                 strfmt("client: bad IPv4 address '%s'",
                                        ep_.host.c_str()));
        }
        rc = ::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr);
    }
    if (rc != 0) {
        Status st = clientError("connect");
        disconnect();
        return st;
    }
    // Hello + its ack complete the handshake.
    if (Status st = sendFrame(encodeHello(client_id_)); !st.ok()) {
        disconnect();
        return st;
    }
    Message resp;
    if (Status st = awaitResponse(resp); !st.ok()) {
        disconnect();
        return st;
    }
    if (resp.type != MsgType::Ack || resp.ack != AckCode::Accepted) {
        disconnect();
        return Status::error(
            ErrorKind::BadProfile,
            strfmt("client: hello rejected: %s", resp.text.c_str()));
    }
    return Status();
}

Status
Client::connect()
{
    if (fd_ >= 0)
        return Status();
    uint64_t backoff = opts_.backoffMs;
    Status last;
    for (uint32_t attempt = 0; attempt < opts_.maxAttempts; ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
            backoff = std::min(backoff * 2, opts_.backoffCapMs);
            ++reconnects_;
        }
        last = connectOnce();
        if (last.ok())
            return last;
    }
    return last;
}

Status
Client::sendFrame(const std::string &payload)
{
    if (fd_ < 0)
        return Status::error(ErrorKind::BadProfile,
                             "client: not connected");
    std::string frame;
    appendFrame(frame, payload);
    size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n =
            ::write(fd_, frame.data() + off, frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return clientError("write");
        }
        off += size_t(n);
    }
    return Status();
}

Status
Client::awaitResponse(Message &out)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(opts_.ackTimeoutMs);
    for (;;) {
        std::string payload;
        const auto r = decoder_.next(payload);
        if (r == FrameDecoder::Result::Frame) {
            if (Status st = decodeMessage(payload, out); !st.ok())
                return st;
            return Status();
        }
        if (r == FrameDecoder::Result::Corrupt)
            return Status::error(
                ErrorKind::ProfileCorrupt,
                strfmt("client: response stream corrupt: %s",
                       decoder_.corruptReason().c_str()));
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline)
            return Status::error(ErrorKind::DeadlineExceeded,
                                 "client: ack timeout");
        const auto leftMs =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - now)
                .count();
        pollfd pfd{fd_, POLLIN, 0};
        const int nready = poll(&pfd, 1, int(leftMs));
        if (nready < 0) {
            if (errno == EINTR)
                continue;
            return clientError("poll");
        }
        if (nready == 0)
            return Status::error(ErrorKind::DeadlineExceeded,
                                 "client: ack timeout");
        char buf[1 << 16];
        const ssize_t n = read(fd_, buf, sizeof buf);
        if (n > 0) {
            decoder_.feed(buf, size_t(n));
            continue;
        }
        if (n == 0)
            return Status::error(ErrorKind::BadProfile,
                                 "client: server closed connection");
        if (errno != EINTR)
            return clientError("read");
    }
}

Status
Client::requestResponse(const std::string &payload, Message &out)
{
    uint64_t backoff = opts_.backoffMs;
    Status last;
    for (uint32_t attempt = 0; attempt < opts_.maxAttempts; ++attempt) {
        if (attempt > 0) {
            // Doubling backoff, then reconnect and resend — the
            // server's seq cursor absorbs any duplicate this causes.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
            backoff = std::min(backoff * 2, opts_.backoffCapMs);
            disconnect();
            ++reconnects_;
        }
        if (Status st = connect(); !st.ok()) {
            last = st;
            continue;
        }
        if (Status st = sendFrame(payload); !st.ok()) {
            last = st;
            continue;
        }
        last = awaitResponse(out);
        if (last.ok())
            return last;
    }
    return last;
}

Status
Client::sendDelta(uint64_t seq, uint8_t profileKind,
                  const std::string &text, AckCode *ackOut)
{
    const std::string payload = encodeDelta(seq, profileKind, text);
    uint64_t backoff = opts_.backoffMs;
    for (uint32_t attempt = 0; attempt < opts_.maxAttempts; ++attempt) {
        Message resp;
        Status st = requestResponse(payload, resp);
        if (!st.ok())
            return st;
        if (resp.type != MsgType::Ack || resp.seq != seq)
            return Status::error(ErrorKind::BadProfile,
                                 "client: mismatched ack");
        if (ackOut != nullptr)
            *ackOut = resp.ack;
        switch (resp.ack) {
        case AckCode::Accepted:
        case AckCode::Duplicate: // admitted before a reconnect
            return Status();
        case AckCode::Throttled:
        case AckCode::Unavailable:
            // Rate-limited, or the server is degraded (WAL down): back
            // off and retry the same seq.  Unavailable is explicitly
            // NOT a transport error — tearing the connection down and
            // reconnecting would turn one sick disk into a reconnect
            // storm; the delta was not admitted, so the resend is safe.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(backoff));
            backoff = std::min(backoff * 2, opts_.backoffCapMs);
            continue;
        case AckCode::Quarantined:
        case AckCode::Rejected:
        case AckCode::Error:
            return Status::error(
                ErrorKind::BadProfile,
                strfmt("client: delta %s: %s",
                       ackCodeName(resp.ack), resp.text.c_str()));
        }
    }
    return Status::error(ErrorKind::Unavailable,
                         "client: backed off past retry budget");
}

Status
Client::sendTick()
{
    Message resp;
    return requestResponse(encodeTick(), resp);
}

Status
Client::sendFlush()
{
    Message resp;
    return requestResponse(encodeFlush(), resp);
}

Status
Client::requestStats(std::string &jsonOut)
{
    Message resp;
    if (Status st = requestResponse(encodeStatsReq(), resp); !st.ok())
        return st;
    if (resp.type != MsgType::StatsRep)
        return Status::error(ErrorKind::BadProfile,
                             "client: expected StatsRep");
    jsonOut = resp.text;
    return Status();
}

} // namespace pathsched::serve
