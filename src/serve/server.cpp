#include "serve/server.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/json.hpp"
#include "pipeline/backend.hpp"
#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "profile/serialize.hpp"
#include "support/hash.hpp"
#include "support/strutil.hpp"

namespace pathsched::serve {

bool
validClientId(const std::string &id)
{
    if (id.empty() || id.size() > 64)
        return false;
    for (char c : id) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

const char *
healthName(Health h)
{
    switch (h) {
      case Health::Healthy: return "healthy";
      case Health::Degraded: return "degraded";
      case Health::Failing: return "failing";
    }
    return "<bad>";
}

ServeCore::ServeCore(workloads::Workload workload, ServeOptions opts,
                     std::string stateDir)
    : workload_(std::move(workload)), opts_(opts),
      agg_(opts.aggregate), wal_(std::move(stateDir), opts.vio),
      admission_(workload_.program, opts.pipelineBase.pathParams,
                 opts.admission),
      cache_(opts.cacheDir, opts.vio)
{
    if (opts_.reschedEveryEpochs == 0)
        opts_.reschedEveryEpochs = 1;
    if (opts_.reopenBackoffCapTicks == 0)
        opts_.reopenBackoffCapTicks = 1;
}

ServeCore::~ServeCore() = default;

Status
ServeCore::init()
{
    ps_assert_msg(!inited_, "ServeCore::init() called twice");
    if (Status st = wal_.open(agg_, recovery_); !st.ok())
        return st;
    // Admission's epoch-driven soft state restarts in sync with the
    // recovered aggregate epoch; scores/tokens themselves are soft and
    // reset — only the seq cursors are durable (see admission.hpp).
    admission_.onEpoch(agg_.epoch());
    registry_.setGauge("serve.recovery.snapshotGen",
                       double(recovery_.snapshotGen));
    registry_.addCounter("serve.recovery.recordsReplayed",
                         recovery_.recordsReplayed);
    registry_.addCounter("serve.recovery.tornSegments",
                         recovery_.tornSegments);
    registry_.addCounter("serve.recovery.tornBytes",
                         recovery_.tornBytes);
    registry_.addCounter("serve.recovery.snapshotsSkipped",
                         recovery_.snapshotsSkipped);
    inited_ = true;
    return Status();
}

void
ServeCore::dropConnection(const std::string &connKey)
{
    conns_.erase(connKey);
}

std::vector<std::string>
ServeCore::handleFrame(const std::string &connKey,
                       const std::string &payload, bool &dropConn)
{
    ps_assert_msg(inited_, "ServeCore used before init()");
    ++frames_seen_;
    registry_.addCounter("serve.ingest.frames", 1);
    Message msg;
    if (Status st = decodeMessage(payload, msg); !st.ok()) {
        // An undecodable payload inside a CRC-valid frame is protocol
        // misuse, not line noise: drop the connection.
        registry_.addCounter("serve.ingest.badMessages", 1);
        dropConn = true;
        return {encodeAck(0, AckCode::Error, st.toString())};
    }
    return handleMessage(connKey, msg, dropConn);
}

std::vector<std::string>
ServeCore::handleMessage(const std::string &connKey, const Message &msg,
                         bool &dropConn)
{
    std::vector<std::string> out;
    ConnState &conn = conns_[connKey];

    switch (msg.type) {
    case MsgType::Hello: {
        if (msg.version != kWireVersion) {
            registry_.addCounter("serve.ingest.versionMismatch", 1);
            dropConn = true;
            out.push_back(encodeAck(
                0, AckCode::Error,
                strfmt("unsupported wire version %u (speak %u)",
                       msg.version, kWireVersion)));
            break;
        }
        if (!validClientId(msg.clientId)) {
            registry_.addCounter("serve.ingest.badClientId", 1);
            dropConn = true;
            out.push_back(encodeAck(0, AckCode::Error,
                                    "invalid client id (want "
                                    "[A-Za-z0-9_-]{1,64})"));
            break;
        }
        conn.hello = true;
        conn.clientId = msg.clientId;
        out.push_back(encodeAck(0, AckCode::Accepted, "hello"));
        break;
    }
    case MsgType::Delta: {
        if (!conn.hello) {
            registry_.addCounter("serve.ingest.noHello", 1);
            dropConn = true;
            out.push_back(encodeAck(msg.seq, AckCode::Error,
                                    "Delta before Hello"));
            break;
        }
        if (health_ != Health::Healthy) {
            // Degraded: the WAL cannot make this delta durable, so it
            // must not be admitted at all (no token spend, no cursor
            // move — the NACK is side-effect-free).  The client backs
            // off and resends the same seq after recovery.
            registry_.addCounter("serve.ingest.unavailable", 1);
            out.push_back(encodeAck(
                msg.seq, AckCode::Unavailable,
                strfmt("server %s: %s", healthName(health_),
                       last_health_error_.c_str())));
            break;
        }
        AdmissionResult verdict = admission_.evaluate(
            conn.clientId, agg_.lastSeq(conn.clientId), msg.seq,
            msg.profileKind, msg.text);
        registry_.addCounter(
            strfmt("serve.ingest.%s", ackCodeName(verdict.code)), 1);
        if (verdict.code == AckCode::Accepted) {
            // Durability before visibility before the Ack.
            if (Status st = wal_.appendAdmitted(verdict.delta);
                !st.ok()) {
                registry_.addCounter("serve.wal.appendFailures", 1);
                degrade(st);
                out.push_back(encodeAck(msg.seq, AckCode::Unavailable,
                                        st.toString()));
                break;
            }
            agg_.apply(verdict.delta);
            ++deltas_accepted_;
            if (Status st = maybeSnapshot(); !st.ok()) {
                // The append above is durable and the old recovery
                // chain is intact, so the Ack still goes out — but the
                // WAL's write path is suspect: stop acking until a
                // reopen proves it healthy again.
                registry_.addCounter("serve.wal.snapshotFailures", 1);
                degrade(st);
            }
        }
        out.push_back(
            encodeAck(msg.seq, verdict.code, verdict.detail));
        break;
    }
    case MsgType::Tick: {
        if (Status st = tick(); !st.ok())
            out.push_back(encodeAck(
                0,
                st.kind() == ErrorKind::Unavailable
                    ? AckCode::Unavailable
                    : AckCode::Error,
                st.toString()));
        else
            out.push_back(encodeAck(0, AckCode::Accepted, "tick"));
        break;
    }
    case MsgType::Flush: {
        if (Status st = flush(); !st.ok())
            out.push_back(encodeAck(
                0,
                st.kind() == ErrorKind::Unavailable
                    ? AckCode::Unavailable
                    : AckCode::Error,
                st.toString()));
        else
            out.push_back(encodeAck(0, AckCode::Accepted, "flush"));
        break;
    }
    case MsgType::StatsReq:
        out.push_back(encodeStatsRep(statusJson()));
        break;
    case MsgType::Bye:
        dropConn = true;
        break;
    default:
        // Server-to-client or WAL-only tags arriving on the ingest
        // side are protocol misuse.
        registry_.addCounter("serve.ingest.badMessages", 1);
        dropConn = true;
        out.push_back(encodeAck(0, AckCode::Error,
                                "unexpected message direction"));
        break;
    }
    return out;
}

Status
ServeCore::maybeSnapshot()
{
    if (opts_.snapshotEvery == 0 ||
        wal_.liveRecords() < opts_.snapshotEvery)
        return Status();
    Status st = wal_.snapshot(agg_);
    if (st.ok())
        registry_.addCounter("serve.wal.snapshots", 1);
    return st;
}

void
ServeCore::degrade(const Status &why)
{
    if (health_ == Health::Healthy) {
        registry_.addCounter("serve.health.degradeEvents", 1);
        warn("serve: entering degraded mode: %s",
             why.toString().c_str());
        health_ = Health::Degraded;
    }
    last_health_error_ = why.toString();
    // First reopen attempt happens on the next tick; failures then
    // back off with doubling waits (attemptRecovery).
    ticks_until_retry_ = 0;
    retry_backoff_ = 1;
    reopen_failures_ = 0;
}

Status
ServeCore::attemptRecovery()
{
    registry_.addCounter("serve.health.reopenAttempts", 1);
    if (Status st = wal_.reopenAndSnapshot(agg_); !st.ok()) {
        ++reopen_failures_;
        registry_.addCounter("serve.health.reopenFailures", 1);
        last_health_error_ = st.toString();
        ticks_until_retry_ = retry_backoff_;
        retry_backoff_ =
            std::min(retry_backoff_ * 2, opts_.reopenBackoffCapTicks);
        if (reopen_failures_ >= opts_.failingAfterRetries &&
            health_ != Health::Failing) {
            health_ = Health::Failing;
            registry_.addCounter("serve.health.failingEvents", 1);
            warn("serve: %u consecutive WAL reopen failures; health is "
                 "now failing (still retrying)",
                 unsigned(reopen_failures_));
        }
        return Status::error(
            ErrorKind::Unavailable,
            strfmt("WAL reopen failed (%u consecutive): %s",
                   unsigned(reopen_failures_), st.message().c_str()));
    }
    // reopenAndSnapshot published a snapshot of the acked state and
    // rotated to a fresh segment: the WAL is provably writable again.
    health_ = Health::Healthy;
    last_health_error_.clear();
    reopen_failures_ = 0;
    retry_backoff_ = 1;
    ticks_until_retry_ = 0;
    registry_.addCounter("serve.health.recoveries", 1);
    registry_.addCounter("serve.wal.snapshots", 1);
    return Status();
}

Status
ServeCore::tick()
{
    ps_assert_msg(inited_, "ServeCore used before init()");
    if (health_ != Health::Healthy) {
        // Degraded: the aggregate's clock stands still (advancing the
        // epoch without WAL-logging it would fork memory from disk).
        // Ticks instead drive the reopen retry ladder.
        ++ticks_;
        if (ticks_until_retry_ > 0) {
            --ticks_until_retry_;
            return Status();
        }
        if (Status st = attemptRecovery(); !st.ok())
            return st;
        // Fall through healthy: the epoch advances again from here.
    }
    const uint64_t next = agg_.epoch() + 1;
    // WAL first: replaying an epoch record twice is idempotent
    // (advanceEpoch is monotonic), losing one would time-travel decay.
    if (Status st = wal_.appendEpoch(next); !st.ok()) {
        registry_.addCounter("serve.wal.appendFailures", 1);
        degrade(st);
        return st;
    }
    agg_.advanceEpoch(next);
    admission_.onEpoch(next);
    ++ticks_;
    registry_.addCounter("serve.epochs", 1);
    if (Status st = maybeSnapshot(); !st.ok()) {
        registry_.addCounter("serve.wal.snapshotFailures", 1);
        degrade(st);
    }
    if (ticks_ % opts_.reschedEveryEpochs == 0)
        (void)attemptReschedule(false);
    return Status();
}

Status
ServeCore::flush()
{
    ps_assert_msg(inited_, "ServeCore used before init()");
    if (health_ != Health::Healthy) {
        // A flush wants the state durable *now*: try to recover
        // immediately instead of waiting out the tick backoff.  Still
        // down -> typed Unavailable; the caller keeps the
        // last-known-good outputs.
        if (Status st = attemptRecovery(); !st.ok())
            return st;
        // Recovery itself snapshotted; only the reschedule remains.
        (void)attemptReschedule(false);
        return Status();
    }
    if (Status st = wal_.snapshot(agg_); !st.ok()) {
        registry_.addCounter("serve.wal.snapshotFailures", 1);
        degrade(st);
        return st;
    }
    registry_.addCounter("serve.wal.snapshots", 1);
    (void)attemptReschedule(false);
    return Status();
}

RescheduleOutcome
ServeCore::attemptReschedule(bool force)
{
    RescheduleOutcome oc;
    oc.attempted = true;
    registry_.addCounter("serve.resched.attempts", 1);

    // The movement gate: reschedule only when some live procedure's
    // hot-path fingerprint differs from the last scheduled state.
    const std::map<uint32_t, uint64_t> fps = agg_.hotFingerprints();
    oc.procsLive = fps.size();
    for (const auto &[proc, fp] : fps) {
        auto it = scheduled_fps_.find(proc);
        if (it == scheduled_fps_.end() || it->second != fp)
            ++oc.procsMoved;
    }
    // A scheduled procedure whose data rotated out entirely also moved
    // (its hot state is now "none"); without this the stale schedule
    // would persist as long as the live procedures hold still.
    for (const auto &[proc, fp] : scheduled_fps_)
        if (fps.find(proc) == fps.end())
            ++oc.procsMoved;
    if (!force && !runs_.empty() && oc.procsMoved == 0) {
        oc.skippedUnmoved = true;
        oc.scheduleHash = schedule_hash_;
        registry_.addCounter("serve.resched.skippedUnmoved", 1);
        last_resched_ = oc;
        return oc;
    }
    if (fps.empty() && !force) {
        // Nothing live to schedule from: keep the last-known-good
        // schedule (intentional — an idle fleet shouldn't discard the
        // schedule its last traffic earned) until data returns.
        oc.skippedUnmoved = true;
        registry_.addCounter("serve.resched.skippedEmpty", 1);
        last_resched_ = oc;
        return oc;
    }
    registry_.addCounter("serve.resched.procsMoved", oc.procsMoved);

    // Dump the live window as profile text.  Admission already ran per
    // delta at ingest — the aggregate is trusted internal state, so the
    // pipeline loads it with check=Off (also keeping every procedure
    // stage-cache-eligible).  Aggregated counts are sums over many
    // deltas, which the per-run flow checks would misread anyway.
    uint64_t dumpSkipped = 0;
    profile::EdgeProfiler ep(workload_.program);
    agg_.dumpEdges(ep, dumpSkipped);
    profile::PathProfiler pp(workload_.program,
                             opts_.pipelineBase.pathParams);
    agg_.dumpPaths(pp, dumpSkipped);
    if (dumpSkipped > 0)
        registry_.addCounter("serve.resched.dumpSkipped", dumpSkipped);

    const pipeline::BackendDesc &be = pipeline::backendFor(opts_.config);
    pipeline::PipelineOptions po =
        pipeline::PipelineOptions::Builder(opts_.pipelineBase)
            .profileCheck(profile::AdmissionMode::Off)
            .cache(&cache_)
            .threads(1)
            .keepTransformed(true)
            .build();
    if (be.needsPathProfile())
        po.profileInput.pathText = profile::toText(pp);
    if (be.needsEdgeProfile() || !be.needsProfile())
        po.profileInput.edgeText = profile::toText(ep);
    if (opts_.reschedDeadlineMs > 0)
        po.robustness.budget.deadline =
            Deadline::afterMs(opts_.reschedDeadlineMs);

    const pipeline::StageCacheStats before = cache_.stats();
    pipeline::PipelineResult result = pipeline::runPipeline(
        workload_.program, workload_.train, workload_.test,
        opts_.config, po);
    const pipeline::StageCacheStats after = cache_.stats();
    oc.ran = true;
    oc.cacheHits = after.hits - before.hits;
    oc.cacheMisses = after.misses - before.misses;
    oc.status = result.status;
    registry_.addCounter("serve.resched.cacheHits", oc.cacheHits);
    registry_.addCounter("serve.resched.cacheMisses", oc.cacheMisses);

    if (!result.status.ok()) {
        // Deadline expiry (or any run failure) is retried at the next
        // trigger; the previous schedule stays current and the
        // fingerprint gate stays armed because scheduled_fps_ is
        // untouched.
        registry_.addCounter(
            result.status.kind() == ErrorKind::DeadlineExceeded
                ? "serve.resched.deadlineExpired"
                : "serve.resched.failures",
            1);
        last_resched_ = oc;
        return oc;
    }

    ps_assert_msg(result.transformed != nullptr,
                  "keepTransformed run returned no program");
    std::string blob;
    for (const ir::Procedure &proc : result.transformed->procs)
        pipeline::serializeProcedure(proc, blob);
    schedule_blob_ = std::move(blob);
    schedule_hash_ =
        fnv1a64(schedule_blob_.data(), schedule_blob_.size());
    oc.scheduleHash = schedule_hash_;
    scheduled_fps_ = fps;
    registry_.addCounter("serve.resched.runs", 1);
    if (result.degradedRun())
        registry_.addCounter("serve.resched.degradedProcs",
                             result.degraded.size());

    pipeline::ReportRun run;
    run.workload = workload_.name;
    run.result = std::move(result);
    // The transformed program can be large; the report keeps stats
    // only.
    run.result.transformed.reset();
    runs_.push_back(std::move(run));
    last_resched_ = oc;
    return oc;
}

void
ServeCore::syncClientCounters()
{
    // The admission stats are absolute; registry counters accumulate.
    // Bridge by adding the delta, so repeated syncs are idempotent.
    auto sync = [&](const std::string &path, uint64_t absolute) {
        const uint64_t have = registry_.counter(path);
        if (absolute > have)
            registry_.addCounter(path, absolute - have);
    };
    for (const auto &[id, cs] : admission_.allStats()) {
        const std::string base = "serve.client." + id + ".";
        sync(base + "admitted", cs.admitted);
        sync(base + "duplicates", cs.duplicates);
        sync(base + "throttled", cs.throttled);
        sync(base + "quarantinedDeltas", cs.quarantinedDeltas);
        sync(base + "rejected", cs.rejected);
        sync(base + "skippedRecords", cs.skippedRecords);
        sync(base + "unattributedSkips", cs.unattributedSkips);
        sync(base + "procsQuarantined", cs.procsQuarantined);
        sync(base + "procsProjected", cs.procsProjected);
        sync(base + "procsStale", cs.procsStale);
        sync(base + "quarantineEntries", cs.quarantineEntries);
    }
}

const obs::StatRegistry &
ServeCore::stats()
{
    syncClientCounters();
    registry_.setGauge("serve.aggregate.epoch", double(agg_.epoch()));
    registry_.setGauge("serve.aggregate.liveKeys",
                       double(agg_.liveKeys()));
    registry_.setGauge("serve.aggregate.droppedKeys",
                       double(agg_.droppedKeys()));
    registry_.setGauge("serve.health.state", double(uint8_t(health_)));
    return registry_;
}

void
ServeCore::healthToJson(obs::JsonWriter &w)
{
    w.key("health");
    w.beginObject();
    w.member("state", healthName(health_));
    w.member("lastError", last_health_error_);
    w.member("degradeEvents",
             registry_.counter("serve.health.degradeEvents"));
    w.member("reopenAttempts",
             registry_.counter("serve.health.reopenAttempts"));
    w.member("reopenFailures",
             registry_.counter("serve.health.reopenFailures"));
    w.member("recoveries",
             registry_.counter("serve.health.recoveries"));
    w.member("nackedUnavailable",
             registry_.counter("serve.ingest.unavailable"));
    w.endObject();
}

std::string
ServeCore::statusJson()
{
    const obs::StatRegistry &reg = stats();
    obs::JsonWriter w;
    w.beginObject();
    w.member("schema", "pathsched-serve-status-v1");
    w.member("workload", workload_.name);
    w.member("config", pipeline::configName(opts_.config));
    w.member("epoch", agg_.epoch());
    w.member("framesSeen", frames_seen_);
    w.member("deltasAccepted", deltas_accepted_);
    // 64-bit hashes exceed a double's integer range: hex strings.
    w.member("aggregateHash", hex16(agg_.contentHash()));
    w.member("scheduleHash", hex16(schedule_hash_));
    w.key("recovery");
    w.beginObject();
    w.member("snapshotGen", recovery_.snapshotGen);
    w.member("segmentsReplayed", recovery_.segmentsReplayed);
    w.member("recordsReplayed", recovery_.recordsReplayed);
    w.member("epochRecords", recovery_.epochRecords);
    w.member("tornSegments", recovery_.tornSegments);
    w.member("tornBytes", recovery_.tornBytes);
    w.member("snapshotsSkipped", recovery_.snapshotsSkipped);
    w.endObject();
    healthToJson(w);
    w.key("reschedule");
    w.beginObject();
    w.member("attempted", last_resched_.attempted);
    w.member("ran", last_resched_.ran);
    w.member("skippedUnmoved", last_resched_.skippedUnmoved);
    w.member("procsLive", last_resched_.procsLive);
    w.member("procsMoved", last_resched_.procsMoved);
    w.member("cacheHits", last_resched_.cacheHits);
    w.member("cacheMisses", last_resched_.cacheMisses);
    w.member("status", last_resched_.status.toString());
    w.endObject();
    w.key("stats");
    reg.toJson(w);
    w.endObject();
    return w.str();
}

std::string
ServeCore::reportJson()
{
    return pipeline::reportJson(
        runs_, &stats(),
        [this](obs::JsonWriter &w) { healthToJson(w); });
}

bool
ServeCore::writeScheduleBlob(const std::string &path) const
{
    if (schedule_blob_.empty())
        return false;
    // Temp + fsync + rename, like snapshots: a reader never observes a
    // torn blob and a crash right after the write cannot lose it.
    Status st =
        atomicWriteFile(opts_.vio, "schedule", path, schedule_blob_);
    if (!st.ok()) {
        warn("serve: schedule blob not written: %s",
             st.message().c_str());
        return false;
    }
    return true;
}

} // namespace pathsched::serve
