#include "regalloc/linear_scan.hpp"

#include <algorithm>

#include "analysis/liveness.hpp"
#include "pipeline/stages.hpp"
#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::regalloc {

using ir::BlockId;
using ir::Instruction;
using ir::kNoReg;
using ir::Opcode;
using ir::ProcId;
using ir::RegId;

namespace {

struct Interval
{
    RegId vreg;
    uint32_t lo = UINT32_MAX;
    uint32_t hi = 0;
    uint32_t refs = 0; ///< static use+def sites (spill cost proxy)
    bool used = false;
};

/** One coarse live interval per virtual register of @p proc. */
std::vector<Interval>
buildIntervals(const ir::Procedure &proc)
{
    analysis::Liveness live(proc);
    std::vector<Interval> ivs(proc.numRegs);
    for (RegId r = 0; r < proc.numRegs; ++r)
        ivs[r].vreg = r;
    auto extend = [&](RegId r, uint32_t pos) {
        ivs[r].used = true;
        ivs[r].lo = std::min(ivs[r].lo, pos);
        ivs[r].hi = std::max(ivs[r].hi, pos);
    };

    uint32_t pos = 0;
    std::vector<RegId> srcs;
    for (BlockId b = 0; b < proc.blocks.size(); ++b) {
        const uint32_t block_start = pos;
        for (const auto &ins : proc.blocks[b].instrs) {
            ins.sources(srcs);
            for (RegId r : srcs) {
                extend(r, pos);
                ++ivs[r].refs;
            }
            if (ins.hasDst()) {
                extend(ins.dst, pos);
                ++ivs[ins.dst].refs;
            }
            ++pos;
        }
        const uint32_t block_end = pos == block_start ? pos : pos - 1;
        for (RegId r = 0; r < proc.numRegs; ++r) {
            if (live.liveIn(b).test(r))
                extend(r, block_start);
            if (live.liveOut(b).test(r))
                extend(r, block_end);
        }
    }
    for (RegId p = 0; p < proc.numParams; ++p)
        extend(p, 0);
    return ivs;
}

/** Allocate one procedure; returns false when pressure exceeds the file. */
bool
allocateProc(ir::Procedure &proc, uint32_t num_phys, AllocStats &stats)
{
    if (proc.numRegs <= num_phys && proc.numRegs == proc.numParams) {
        // Nothing to do for trivial procedures.
        return true;
    }

    const std::vector<Interval> ivs = buildIntervals(proc);

    // Sort interval starts; parameters first so their precoloring wins.
    std::vector<const Interval *> order;
    for (const auto &iv : ivs) {
        if (iv.used)
            order.push_back(&iv);
    }
    std::sort(order.begin(), order.end(),
              [&](const Interval *a, const Interval *b) {
                  const bool pa = a->vreg < proc.numParams;
                  const bool pb = b->vreg < proc.numParams;
                  if (a->lo != b->lo)
                      return a->lo < b->lo;
                  if (pa != pb)
                      return pa;
                  return a->vreg < b->vreg;
              });

    std::vector<RegId> assignment(proc.numRegs, kNoReg);
    std::vector<uint8_t> phys_free(num_phys, 1);
    // (end position, phys reg) of active intervals, as a simple list.
    std::vector<std::pair<uint32_t, RegId>> active;
    uint32_t pressure = 0;

    for (const Interval *iv : order) {
        // Expire intervals that ended strictly before this start.
        for (size_t i = 0; i < active.size();) {
            if (active[i].first < iv->lo) {
                phys_free[active[i].second] = 1;
                active[i] = active.back();
                active.pop_back();
            } else {
                ++i;
            }
        }

        RegId phys = kNoReg;
        if (iv->vreg < proc.numParams) {
            // Precolored; the parameter registers are the lowest ids
            // and parameters sort first at position 0, so their slots
            // are necessarily still free here.
            phys = iv->vreg;
            ps_assert(phys_free[phys]);
        } else {
            for (RegId p = 0; p < num_phys; ++p) {
                if (phys_free[p]) {
                    phys = p;
                    break;
                }
            }
            if (phys == kNoReg)
                return false; // pressure exceeds the register file
        }
        phys_free[phys] = 0;
        active.push_back({iv->hi, phys});
        assignment[iv->vreg] = phys;
        pressure = std::max(pressure, uint32_t(active.size()));
    }
    stats.maxPressure = std::max(stats.maxPressure, pressure);

    // Rewrite every operand.
    for (auto &bb : proc.blocks) {
        for (auto &ins : bb.instrs) {
            if (ins.dst != kNoReg)
                ins.dst = assignment[ins.dst];
            if (ins.src1 != kNoReg)
                ins.src1 = assignment[ins.src1];
            if (ins.src2 != kNoReg)
                ins.src2 = assignment[ins.src2];
            for (RegId &a : ins.args)
                a = assignment[a];
        }
    }
    proc.numRegs = num_phys;
    return true;
}

/**
 * Spill the longest-lived non-parameter registers of @p proc to fresh
 * static memory slots (appended to @p prog's data memory): every use
 * loads into a fresh short-lived register just before the reader, and
 * every definition stores right after the writer, so pressure collapses
 * to per-instruction locality.  Static slots are only sound when a
 * single activation of the procedure is live at a time — the caller
 * checks for recursion.
 */
bool
spillLongestIntervals(ir::Program &prog, ir::Procedure &proc,
                      size_t how_many, AllocStats &stats,
                      SpillPlan *plan)
{
    std::vector<Interval> ivs = buildIntervals(proc);
    std::vector<const Interval *> candidates;
    for (const auto &iv : ivs) {
        if (iv.used && iv.vreg >= proc.numParams && iv.hi > iv.lo)
            candidates.push_back(&iv);
    }
    // Classic spill metric: prefer ranges that block the allocator for
    // a long time but are rarely referenced, so the inserted loads and
    // stores land on cold code (spilling a loop-carried accumulator
    // would put memory traffic in every iteration).
    std::sort(candidates.begin(), candidates.end(),
              [](const Interval *a, const Interval *b) {
                  const double sa = double(a->hi - a->lo) /
                                    double(1 + a->refs);
                  const double sb = double(b->hi - b->lo) /
                                    double(1 + b->refs);
                  return sa != sb ? sa > sb : a->vreg < b->vreg;
              });
    candidates.resize(std::min(candidates.size(), how_many));
    if (candidates.empty())
        return false; // nothing spillable (point lifetimes only)

    // One fresh word of program memory per spilled register — issued
    // locally (sentinel-relative, rebased at the executor's join) when
    // a plan is present, directly out of memWords otherwise.
    std::vector<int64_t> slot_of(proc.numRegs, -1);
    for (const Interval *iv : candidates) {
        slot_of[iv->vreg] = plan != nullptr
                                ? kSpillSlotBase + int64_t(plan->slots++)
                                : int64_t(prog.memWords++);
        ++stats.regsSpilled;
    }
    auto spilled = [&](RegId r) {
        return r != kNoReg && r < slot_of.size() && slot_of[r] >= 0;
    };

    proc.syncSideTables();
    std::vector<RegId> srcs;
    for (BlockId b = 0; b < proc.blocks.size(); ++b) {
        ir::BasicBlock &bb = proc.blocks[b];
        ir::SuperblockInfo &sb = proc.superblocks[b];
        const bool track = sb.isSuperblock;

        std::vector<Instruction> out;
        std::vector<uint32_t> ordinals;
        out.reserve(bb.instrs.size());
        RegId zero_base = kNoReg;

        for (size_t i = 0; i < bb.instrs.size(); ++i) {
            Instruction ins = std::move(bb.instrs[i]);
            const uint32_t ord = track ? sb.srcOrdinalOf[i] : 0;
            auto emit = [&](Instruction x) {
                out.push_back(std::move(x));
                if (track)
                    ordinals.push_back(ord);
            };
            auto ensure_base = [&]() {
                if (zero_base == kNoReg) {
                    zero_base = proc.newReg();
                    emit(ir::makeLdi(zero_base, 0));
                }
            };

            // Reload each distinct spilled source into a fresh reg.
            ins.sources(srcs);
            std::sort(srcs.begin(), srcs.end());
            srcs.erase(std::unique(srcs.begin(), srcs.end()),
                       srcs.end());
            for (RegId r : srcs) {
                if (!spilled(r))
                    continue;
                ensure_base();
                const RegId fresh = proc.newReg();
                emit(ir::makeLd(fresh, zero_base, slot_of[r]));
                ins.renameSources(r, fresh);
            }

            // Redirect a spilled definition through a fresh reg + store.
            if (spilled(ins.dst)) {
                const int64_t slot = slot_of[ins.dst];
                ensure_base();
                const RegId fresh = proc.newReg();
                ins.dst = fresh;
                emit(std::move(ins));
                emit(ir::makeSt(zero_base, slot, fresh));
            } else {
                emit(std::move(ins));
            }
        }
        bb.instrs = std::move(out);
        if (track)
            sb.srcOrdinalOf = std::move(ordinals);
        // Any schedule for this block is now stale.
        if (b < proc.schedules.size())
            proc.schedules[b] = ir::BlockSchedule();
    }
    return true;
}

} // namespace

std::vector<uint8_t>
findRecursiveProcs(const ir::Program &prog)
{
    const size_t n = prog.procs.size();
    std::vector<std::vector<ProcId>> callees(n);
    for (const auto &p : prog.procs) {
        for (const auto &bb : p.blocks) {
            for (const auto &ins : bb.instrs) {
                if (ins.op == Opcode::Call)
                    callees[p.id].push_back(ins.callee);
            }
        }
    }
    std::vector<uint8_t> recursive(n, 0);
    for (ProcId start = 0; start < n; ++start) {
        std::vector<uint8_t> seen(n, 0);
        std::vector<ProcId> work(callees[start]);
        while (!work.empty()) {
            const ProcId cur = work.back();
            work.pop_back();
            if (cur == start) {
                recursive[start] = 1;
                break;
            }
            if (seen[cur])
                continue;
            seen[cur] = 1;
            for (ProcId next : callees[cur])
                work.push_back(next);
        }
    }
    return recursive;
}

void
rebaseSpillSlots(ir::Procedure &proc, uint64_t base)
{
    for (auto &bb : proc.blocks) {
        for (auto &ins : bb.instrs) {
            if ((ins.isLoad() || ins.isStore()) &&
                ins.imm >= kSpillSlotBase)
                ins.imm = int64_t(base) + (ins.imm - kSpillSlotBase);
        }
    }
}

Status
allocateProcedure(ir::Program &prog, ir::ProcId proc_id,
                  uint32_t num_phys_regs, AllocStats &stats,
                  const AllocOptions &options)
{
    ps_assert_msg(proc_id < prog.procs.size(),
                  "allocateProcedure: procedure %u out of range",
                  proc_id);
    ir::Procedure &proc = prog.procs[proc_id];
    if (proc.numParams > num_phys_regs) {
        return Status::error(
            ErrorKind::ScheduleFailed,
            strfmt("proc %s: more parameters (%u) than machine "
                   "registers (%u)",
                   proc.name.c_str(), proc.numParams, num_phys_regs));
    }
    // Recursion is a whole-program property; recompute it here unless
    // the caller shares a precomputed copy (spilling never adds calls,
    // so the answer is stable across procedures and the per-procedure
    // path matches allocateProgram exactly either way).
    const std::vector<uint8_t> recursive_local =
        options.recursive != nullptr ? std::vector<uint8_t>()
                                     : findRecursiveProcs(prog);
    const std::vector<uint8_t> &recursive =
        options.recursive != nullptr ? *options.recursive
                                     : recursive_local;
    const ResourceBudget *budget = options.budget;

    // Each allocate-or-spill round rescans the whole procedure, so it
    // is charged one unit per instruction against regallocOps.
    BudgetMeter meter(budget, "regalloc",
                      budget != nullptr ? budget->regallocOps : 0);

    bool done = false;
    for (int round = 0; round < 40 && !done; ++round) {
        Status st = meter.checkpoint(proc.instrCount() + 1);
        if (!st.ok())
            return st;
        if (allocateProc(proc, num_phys_regs, stats)) {
            ++stats.procsAllocated;
            done = true;
            break;
        }
        if (recursive[proc.id]) {
            // Static spill slots are unsound under recursion
            // (multiple live activations would share them).
            break;
        }
        // Spill a small batch of the worst offenders and retry.
        if (!spillLongestIntervals(prog, proc, 16, stats,
                                   options.spill))
            break; // nothing left to spill
    }
    if (!done) {
        ++stats.procsSkipped;
        inform("regalloc: pressure too high in %sproc %s; kept on "
               "virtual registers",
               recursive[proc.id] ? "recursive " : "",
               proc.name.c_str());
    }
    return Status();
}

Status
allocateProcedure(ir::Program &prog, ir::ProcId proc_id,
                  uint32_t num_phys_regs, AllocStats &stats,
                  const ResourceBudget *budget)
{
    AllocOptions options;
    options.budget = budget;
    return allocateProcedure(prog, proc_id, num_phys_regs, stats,
                             options);
}

AllocStats
allocateProgram(ir::Program &prog, uint32_t num_phys_regs)
{
    AllocStats stats;
    pipeline::forEachProcOrDie(
        prog, "register allocation", [&](ir::ProcId p) {
            return allocateProcedure(prog, p, num_phys_regs, stats);
        });
    return stats;
}

} // namespace pathsched::regalloc
