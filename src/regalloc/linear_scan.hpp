/**
 * @file
 * Linear-scan register allocation onto the machine register file.
 *
 * The paper's back end preschedules with an infinite-register variant
 * of the target, allocates registers, then postschedules restricted by
 * the allocation decisions (§2.3).  This allocator maps each
 * procedure's virtual registers onto the 128-entry file using one
 * coarse live interval per register.  Parameters are precolored onto
 * registers 0..k-1 (the calling convention).  A procedure whose
 * pressure exceeds the file is left on virtual registers and counted
 * in AllocStats::procsSkipped — with 128 registers and renaming-scale
 * pressure this is rare, and the experiment harness reports it.
 */

#ifndef PATHSCHED_REGALLOC_LINEAR_SCAN_HPP
#define PATHSCHED_REGALLOC_LINEAR_SCAN_HPP

#include <cstdint>
#include <vector>

#include "ir/procedure.hpp"
#include "support/budget.hpp"
#include "support/status.hpp"

namespace pathsched::regalloc {

/** Counters reported by allocateProgram. */
struct AllocStats
{
    uint64_t procsAllocated = 0;
    uint64_t procsSkipped = 0;
    uint64_t regsSpilled = 0; ///< live ranges demoted to memory slots
    uint32_t maxPressure = 0; ///< peak simultaneously-live registers

    AllocStats &
    operator+=(const AllocStats &o)
    {
        procsAllocated += o.procsAllocated;
        procsSkipped += o.procsSkipped;
        regsSpilled += o.regsSpilled;
        maxPressure = maxPressure > o.maxPressure ? maxPressure
                                                  : o.maxPressure;
        return *this;
    }
};

/**
 * @name Procedure-local spill slots (executor mode)
 *
 * Historically every spill slot was carved directly out of
 * Program::memWords, which made register allocation the one transform
 * stage with cross-procedure shared state — unusable from concurrent
 * per-procedure tasks, and address assignment would depend on
 * completion order.  A SpillPlan removes that: slot addresses are
 * issued *locally* per procedure (0, 1, 2, ... recorded only in the
 * plan), emitted into the IR offset from the kSpillSlotBase sentinel —
 * far above any real data address — and rebased onto final absolute
 * addresses by rebaseSpillSlots() at a serial join point, in procedure
 * id order.  A run that allocates procedures in id order therefore
 * produces bit-identical addresses to the historical direct-append
 * path.
 * @{
 */

/** Spill-slot accounting for one procedure's allocation. */
struct SpillPlan
{
    /** Local slots issued so far (== slots the final body references). */
    uint64_t slots = 0;
};

/** Sentinel base for procedure-local slot ids inside Ld/St offsets.
 *  Real data addresses are bounded by Program::memWords and never get
 *  near it. */
inline constexpr int64_t kSpillSlotBase = int64_t(1) << 40;

/**
 * Rewrite every sentinel-relative Ld/LdSpec/St offset of @p proc to an
 * absolute slot address starting at @p base (local slot k becomes
 * address base + k).  Must run before the procedure is interpreted or
 * postscheduled.
 */
void rebaseSpillSlots(ir::Procedure &proc, uint64_t base);

/** @} */

/**
 * Procedures of @p prog that can reach themselves through the call
 * graph.  Static spill slots are unsound for them (multiple live
 * activations would share the slots), so the allocator never spills
 * recursive procedures.  Recursion is a whole-program property; the
 * executor precomputes it once on the untransformed program and shares
 * it read-only across workers via AllocOptions::recursive.
 */
std::vector<uint8_t> findRecursiveProcs(const ir::Program &prog);

/** Knobs for allocateProcedure beyond the register count. */
struct AllocOptions
{
    /** Resource governance (not owned, nullable); see the Status
     *  contract on allocateProcedure. */
    const ResourceBudget *budget = nullptr;
    /**
     * Precomputed findRecursiveProcs() result (not owned, nullable).
     * Null recomputes it per call — correct but a whole-program scan,
     * and a data race if other procedures are being rewritten
     * concurrently; the executor always passes it.
     */
    const std::vector<uint8_t> *recursive = nullptr;
    /**
     * When non-null, spill slots are numbered locally into this plan
     * (sentinel addressing, see SpillPlan) instead of being appended
     * to Program::memWords.  Required for concurrent allocation.
     */
    SpillPlan *spill = nullptr;
};

/**
 * Allocate procedure @p proc of @p prog onto @p num_phys_regs
 * registers, rewriting register operands in place and accumulating
 * counters into @p stats — the recoverable per-procedure entry point
 * behind allocateProgram(), and the form the pipeline executor calls.
 * Spill slots are appended to @p prog's data memory (or issued locally
 * per AllocOptions::spill).  A procedure whose pressure cannot be
 * reduced is *not* an error (it stays on virtual registers and counts
 * as skipped, as documented above); a non-OK return means the
 * procedure cannot be allocated at all (more parameters than machine
 * registers), or — when a budget is set — that budget->regallocOps
 * (charged one unit per instruction per allocation round) or
 * budget->deadline ran out mid-allocation, leaving the procedure
 * partially spilled.
 */
Status allocateProcedure(ir::Program &prog, ir::ProcId proc,
                         uint32_t num_phys_regs, AllocStats &stats,
                         const AllocOptions &options);

/** Back-compat overload: budget only, direct memWords spill slots. */
Status allocateProcedure(ir::Program &prog, ir::ProcId proc,
                         uint32_t num_phys_regs, AllocStats &stats,
                         const ResourceBudget *budget = nullptr);

/**
 * Allocate every procedure of @p prog onto @p num_phys_regs registers,
 * rewriting register operands in place.  Panics on failure — callers
 * that need recovery use allocateProcedure().
 */
AllocStats allocateProgram(ir::Program &prog, uint32_t num_phys_regs);

} // namespace pathsched::regalloc

#endif // PATHSCHED_REGALLOC_LINEAR_SCAN_HPP
