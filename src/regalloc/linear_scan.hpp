/**
 * @file
 * Linear-scan register allocation onto the machine register file.
 *
 * The paper's back end preschedules with an infinite-register variant
 * of the target, allocates registers, then postschedules restricted by
 * the allocation decisions (§2.3).  This allocator maps each
 * procedure's virtual registers onto the 128-entry file using one
 * coarse live interval per register.  Parameters are precolored onto
 * registers 0..k-1 (the calling convention).  A procedure whose
 * pressure exceeds the file is left on virtual registers and counted
 * in AllocStats::procsSkipped — with 128 registers and renaming-scale
 * pressure this is rare, and the experiment harness reports it.
 */

#ifndef PATHSCHED_REGALLOC_LINEAR_SCAN_HPP
#define PATHSCHED_REGALLOC_LINEAR_SCAN_HPP

#include <cstdint>

#include "ir/procedure.hpp"
#include "support/budget.hpp"
#include "support/status.hpp"

namespace pathsched::regalloc {

/** Counters reported by allocateProgram. */
struct AllocStats
{
    uint64_t procsAllocated = 0;
    uint64_t procsSkipped = 0;
    uint64_t regsSpilled = 0; ///< live ranges demoted to memory slots
    uint32_t maxPressure = 0; ///< peak simultaneously-live registers
};

/**
 * Allocate procedure @p proc of @p prog onto @p num_phys_regs
 * registers, rewriting register operands in place and accumulating
 * counters into @p stats — the recoverable per-procedure entry point
 * behind allocateProgram().  Spill slots are appended to @p prog's
 * data memory.  A procedure whose pressure cannot be reduced is *not*
 * an error (it stays on virtual registers and counts as skipped, as
 * documented above); a non-OK return means the procedure cannot be
 * allocated at all (more parameters than machine registers), or — when
 * @p budget is non-null — that budget->regallocOps (charged one unit
 * per instruction per allocation round) or budget->deadline ran out
 * mid-allocation, leaving the procedure partially spilled.
 */
Status allocateProcedure(ir::Program &prog, ir::ProcId proc,
                         uint32_t num_phys_regs, AllocStats &stats,
                         const ResourceBudget *budget = nullptr);

/**
 * Allocate every procedure of @p prog onto @p num_phys_regs registers,
 * rewriting register operands in place.  Panics on failure — callers
 * that need recovery use allocateProcedure().
 */
AllocStats allocateProgram(ir::Program &prog, uint32_t num_phys_regs);

} // namespace pathsched::regalloc

#endif // PATHSCHED_REGALLOC_LINEAR_SCAN_HPP
