/**
 * @file
 * Edge (point) profiler.
 *
 * Aggregates independent frequencies per CFG edge and per block — the
 * "point profile" baseline of the paper (§1, §2.1).  The mutual-most-
 * likely trace selector is built on the successor/predecessor queries
 * exposed here.
 */

#ifndef PATHSCHED_PROFILE_EDGE_PROFILE_HPP
#define PATHSCHED_PROFILE_EDGE_PROFILE_HPP

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "interp/listener.hpp"
#include "ir/procedure.hpp"

namespace pathsched::profile {

/** Collects and serves edge and block execution frequencies. */
class EdgeProfiler : public interp::TraceListener
{
  public:
    explicit EdgeProfiler(const ir::Program &prog);

    void onProcEnter(ir::ProcId proc) override;
    void onEdge(ir::ProcId proc, ir::BlockId from, ir::BlockId to) override;

    /** Dynamic traversals of edge @p from -> @p to in @p proc. */
    uint64_t edgeFreq(ir::ProcId proc, ir::BlockId from,
                      ir::BlockId to) const;

    /** Dynamic entries into block @p b of @p proc. */
    uint64_t blockFreq(ir::ProcId proc, ir::BlockId b) const;

    /**
     * The successor of @p b with the highest edge frequency, or
     * ir::kNoBlock when @p b never executed a successor edge.
     * Ties break toward the smaller block id.
     */
    ir::BlockId mostLikelySucc(ir::ProcId proc, ir::BlockId b) const;

    /** Mirror of mostLikelySucc for predecessors. */
    ir::BlockId mostLikelyPred(ir::ProcId proc, ir::BlockId b) const;

    /** @name Bulk access (profile persistence and merging)
     *  @{
     */
    void forEachBlock(
        const std::function<void(ir::ProcId, ir::BlockId, uint64_t)> &cb)
        const;
    void forEachEdge(
        const std::function<void(ir::ProcId, ir::BlockId, ir::BlockId,
                                 uint64_t)> &cb) const;
    /** Add @p count to a block/edge counter.  Returns false (and
     *  records nothing) when @p proc or a block id is out of range for
     *  the profiled program — untrusted serialized profiles go through
     *  these, so they must reject rather than abort. */
    bool addBlockCount(ir::ProcId proc, ir::BlockId b, uint64_t count);
    bool addEdgeCount(ir::ProcId proc, ir::BlockId from, ir::BlockId to,
                      uint64_t count);
    /** @} */

  private:
    static uint64_t key(ir::BlockId from, ir::BlockId to)
    {
        return (uint64_t(from) << 32) | to;
    }

    std::vector<std::unordered_map<uint64_t, uint64_t>> edges_;
    std::vector<std::vector<uint64_t>> blocks_;
};

} // namespace pathsched::profile

#endif // PATHSCHED_PROFILE_EDGE_PROFILE_HPP
