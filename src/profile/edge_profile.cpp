#include "profile/edge_profile.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace pathsched::profile {

using ir::BlockId;
using ir::kNoBlock;
using ir::ProcId;

EdgeProfiler::EdgeProfiler(const ir::Program &prog)
{
    edges_.resize(prog.procs.size());
    blocks_.resize(prog.procs.size());
    for (const auto &p : prog.procs)
        blocks_[p.id].assign(p.blocks.size(), 0);
}

void
EdgeProfiler::onProcEnter(ProcId proc)
{
    ++blocks_[proc][0];
}

void
EdgeProfiler::onEdge(ProcId proc, BlockId from, BlockId to)
{
    ++edges_[proc][key(from, to)];
    ++blocks_[proc][to];
}

uint64_t
EdgeProfiler::edgeFreq(ProcId proc, BlockId from, BlockId to) const
{
    const auto &m = edges_[proc];
    auto it = m.find(key(from, to));
    return it == m.end() ? 0 : it->second;
}

uint64_t
EdgeProfiler::blockFreq(ProcId proc, BlockId b) const
{
    return blocks_[proc][b];
}

BlockId
EdgeProfiler::mostLikelySucc(ProcId proc, BlockId b) const
{
    BlockId best = kNoBlock;
    uint64_t best_freq = 0;
    for (const auto &[k, freq] : edges_[proc]) {
        if (BlockId(k >> 32) != b || freq == 0)
            continue;
        const BlockId to = BlockId(k & 0xffffffffu);
        if (freq > best_freq || (freq == best_freq && to < best)) {
            best = to;
            best_freq = freq;
        }
    }
    return best;
}

BlockId
EdgeProfiler::mostLikelyPred(ProcId proc, BlockId b) const
{
    BlockId best = kNoBlock;
    uint64_t best_freq = 0;
    for (const auto &[k, freq] : edges_[proc]) {
        if (BlockId(k & 0xffffffffu) != b || freq == 0)
            continue;
        const BlockId from = BlockId(k >> 32);
        if (freq > best_freq || (freq == best_freq && from < best)) {
            best = from;
            best_freq = freq;
        }
    }
    return best;
}

void
EdgeProfiler::forEachBlock(
    const std::function<void(ProcId, BlockId, uint64_t)> &cb) const
{
    for (ProcId p = 0; p < blocks_.size(); ++p) {
        for (BlockId b = 0; b < blocks_[p].size(); ++b) {
            if (blocks_[p][b])
                cb(p, b, blocks_[p][b]);
        }
    }
}

void
EdgeProfiler::forEachEdge(
    const std::function<void(ProcId, BlockId, BlockId, uint64_t)> &cb)
    const
{
    for (ProcId p = 0; p < edges_.size(); ++p) {
        // Deterministic order for serialization: sort the keys.
        std::vector<uint64_t> keys;
        keys.reserve(edges_[p].size());
        for (const auto &[k, n] : edges_[p]) {
            if (n)
                keys.push_back(k);
        }
        std::sort(keys.begin(), keys.end());
        for (uint64_t k : keys) {
            cb(p, BlockId(k >> 32), BlockId(k & 0xffffffffu),
               edges_[p].at(k));
        }
    }
}

bool
EdgeProfiler::addBlockCount(ProcId proc, BlockId b, uint64_t count)
{
    if (proc >= blocks_.size() || b >= blocks_[proc].size())
        return false;
    blocks_[proc][b] += count;
    return true;
}

bool
EdgeProfiler::addEdgeCount(ProcId proc, BlockId from, BlockId to,
                           uint64_t count)
{
    if (proc >= edges_.size() || from >= blocks_[proc].size() ||
        to >= blocks_[proc].size())
        return false;
    edges_[proc][key(from, to)] += count;
    return true;
}

} // namespace pathsched::profile
