#include "profile/serialize.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include "support/strutil.hpp"

namespace pathsched::profile {

using ir::BlockId;
using ir::ProcId;

std::string
toText(const EdgeProfiler &ep)
{
    std::ostringstream out;
    out << "edgeprofile v1\n";
    ep.forEachBlock([&](ProcId p, BlockId b, uint64_t n) {
        out << "block " << p << ' ' << b << ' ' << n << '\n';
    });
    ep.forEachEdge([&](ProcId p, BlockId from, BlockId to, uint64_t n) {
        out << "edge " << p << ' ' << from << ' ' << to << ' ' << n
            << '\n';
    });
    return out.str();
}

namespace {

/**
 * Strict unsigned parse of one whole token.  istream extraction into an
 * unsigned type silently wraps negative input ("-1" becomes 2^64-1) and
 * accepts partial tokens; profile text is untrusted, so every number
 * goes through std::from_chars with overflow, sign and trailing-garbage
 * rejection.
 */
bool
parseU64(const std::string &tok, uint64_t &out)
{
    if (tok.empty())
        return false;
    const char *first = tok.data();
    const char *last = first + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

bool
parseU32(const std::string &tok, uint32_t &out)
{
    uint64_t wide;
    if (!parseU64(tok, wide) || wide > UINT32_MAX)
        return false;
    out = uint32_t(wide);
    return true;
}

/** Split @p line on runs of spaces/tabs. */
std::vector<std::string>
splitWs(const std::string &line)
{
    std::vector<std::string> toks;
    size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                                   line[i] == '\r'))
            ++i;
        const size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
               line[i] != '\r')
            ++i;
        if (i > start)
            toks.push_back(line.substr(start, i - start));
    }
    return toks;
}

} // namespace

bool
fromText(const std::string &text, EdgeProfiler &ep, std::string &error)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != "edgeprofile v1") {
        error = "bad header: '" + line + "'";
        return false;
    }
    size_t lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        const std::vector<std::string> tok = splitWs(line);
        if (tok.empty())
            continue;
        if (tok[0] == "block") {
            uint32_t p, b;
            uint64_t n;
            if (tok.size() != 4 || !parseU32(tok[1], p) ||
                !parseU32(tok[2], b) || !parseU64(tok[3], n)) {
                error = strfmt("line %zu: malformed block record",
                               lineno);
                return false;
            }
            if (!ep.addBlockCount(p, b, n)) {
                error = strfmt("line %zu: block record names "
                               "out-of-range proc %u or block %u",
                               lineno, p, b);
                return false;
            }
        } else if (tok[0] == "edge") {
            uint32_t p, from, to;
            uint64_t n;
            if (tok.size() != 5 || !parseU32(tok[1], p) ||
                !parseU32(tok[2], from) || !parseU32(tok[3], to) ||
                !parseU64(tok[4], n)) {
                error = strfmt("line %zu: malformed edge record",
                               lineno);
                return false;
            }
            if (!ep.addEdgeCount(p, from, to, n)) {
                error = strfmt("line %zu: edge record names "
                               "out-of-range proc %u or blocks %u->%u",
                               lineno, p, from, to);
                return false;
            }
        } else {
            error = strfmt("line %zu: unknown record kind '%s'", lineno,
                           tok[0].c_str());
            return false;
        }
    }
    return true;
}

std::string
toText(const PathProfiler &pp)
{
    std::ostringstream out;
    out << "pathprofile v1 " << pp.params().maxBranches << ' '
        << pp.params().maxBlocks << ' '
        << (pp.params().forwardPathsOnly ? 1 : 0) << '\n';
    pp.forEachPath([&](ProcId p, const std::vector<BlockId> &seq,
                       uint64_t n) {
        out << "path " << p << ' ' << n << ' ' << seq.size();
        for (BlockId b : seq)
            out << ' ' << b;
        out << '\n';
    });
    return out.str();
}

bool
fromText(const std::string &text, PathProfiler &pp, std::string &error)
{
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line)) {
        error = "bad path profile header";
        return false;
    }
    {
        const std::vector<std::string> tok = splitWs(line);
        uint32_t max_branches, max_blocks, forward;
        if (tok.size() != 5 || tok[0] != "pathprofile" ||
            tok[1] != "v1" || !parseU32(tok[2], max_branches) ||
            !parseU32(tok[3], max_blocks) || !parseU32(tok[4], forward)) {
            error = "bad path profile header";
            return false;
        }
        if (max_branches != pp.params().maxBranches ||
            max_blocks != pp.params().maxBlocks ||
            (forward != 0) != pp.params().forwardPathsOnly) {
            error = "path profile parameters do not match the profiler";
            return false;
        }
    }

    std::vector<BlockId> seq;
    size_t lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        const std::vector<std::string> tok = splitWs(line);
        if (tok.empty())
            continue;
        if (tok[0] != "path") {
            error = strfmt("line %zu: unknown record kind '%s'", lineno,
                           tok[0].c_str());
            return false;
        }
        uint32_t p;
        uint64_t n, len;
        if (tok.size() < 4 || !parseU32(tok[1], p) ||
            !parseU64(tok[2], n) || !parseU64(tok[3], len) || len == 0) {
            error = strfmt("line %zu: malformed path record", lineno);
            return false;
        }
        // A window longer than the declared block budget could never
        // have been recorded; rejecting here also bounds the
        // allocation below against absurd lengths in corrupt input.
        if (len > pp.params().maxBlocks) {
            error = strfmt("line %zu: path length %llu exceeds the "
                           "declared block budget %u",
                           lineno, (unsigned long long)len,
                           pp.params().maxBlocks);
            return false;
        }
        if (tok.size() != 4 + size_t(len)) {
            error = strfmt("line %zu: truncated path record "
                           "(%zu of %llu block ids)",
                           lineno, tok.size() - 4,
                           (unsigned long long)len);
            return false;
        }
        seq.assign(size_t(len), 0);
        for (size_t k = 0; k < size_t(len); ++k) {
            if (!parseU32(tok[4 + k], seq[k])) {
                error = strfmt("line %zu: malformed path record",
                               lineno);
                return false;
            }
        }
        if (!pp.addPathCount(p, seq, n)) {
            error = strfmt("line %zu: path record exceeds the "
                           "profiling budget or names out-of-range "
                           "proc/blocks",
                           lineno);
            return false;
        }
    }
    return true;
}

} // namespace pathsched::profile
