#include "profile/serialize.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <vector>

#include "ir/procedure.hpp"
#include "support/strutil.hpp"

namespace pathsched::profile {

using ir::BlockId;
using ir::ProcId;

uint64_t
cfgFingerprint(const ir::Procedure &proc)
{
    uint64_t h = fnv1a64(nullptr, 0);
    h = fnv1a64Mix(h, proc.blocks.size());
    std::vector<BlockId> succs;
    for (const ir::BasicBlock &bb : proc.blocks) {
        succs.clear();
        ir::successorsOf(bb, succs);
        h = fnv1a64Mix(h, succs.size());
        for (BlockId s : succs)
            h = fnv1a64Mix(h, s);
        const bool conditional = !bb.empty() && bb.terminator().isBranch();
        h = fnv1a64Mix(h, conditional ? 1 : 0);
    }
    return h;
}

bool
ProfileMeta::fingerprintFor(uint32_t proc, uint64_t &out) const
{
    for (const auto &[p, fp] : fingerprints) {
        if (p == proc) {
            out = fp;
            return true;
        }
    }
    return false;
}

namespace {

/**
 * Strict unsigned parse of one whole token.  istream extraction into an
 * unsigned type silently wraps negative input ("-1" becomes 2^64-1) and
 * accepts partial tokens; profile text is untrusted, so every number
 * goes through std::from_chars with overflow, sign and trailing-garbage
 * rejection.
 */
bool
parseU64(const std::string &tok, uint64_t &out)
{
    if (tok.empty())
        return false;
    const char *first = tok.data();
    const char *last = first + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc() && ptr == last;
}

bool
parseU32(const std::string &tok, uint32_t &out)
{
    uint64_t wide;
    if (!parseU64(tok, wide) || wide > UINT32_MAX)
        return false;
    out = uint32_t(wide);
    return true;
}

/** Strict whole-token lowercase/uppercase hex parse (≤16 digits). */
bool
parseHex64(const std::string &tok, uint64_t &out)
{
    if (tok.empty() || tok.size() > 16)
        return false;
    const char *first = tok.data();
    const char *last = first + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, out, 16);
    return ec == std::errc() && ptr == last;
}

/** Split @p line on runs of spaces/tabs. */
std::vector<std::string>
splitWs(const std::string &line)
{
    std::vector<std::string> toks;
    size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                                   line[i] == '\r'))
            ++i;
        const size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
               line[i] != '\r')
            ++i;
        if (i > start)
            toks.push_back(line.substr(start, i - start));
    }
    return toks;
}

/** The v2 checksum covers every byte after the header line's newline. */
uint64_t
bodyChecksum(const std::string &text)
{
    const size_t nl = text.find('\n');
    if (nl == std::string::npos)
        return fnv1a64(nullptr, 0);
    return fnv1a64(text.data() + nl + 1, text.size() - nl - 1);
}

std::string
fingerprintLines(const ir::Program &prog)
{
    std::ostringstream out;
    for (const ir::Procedure &proc : prog.procs)
        out << "fingerprint " << proc.id << ' '
            << hex16(cfgFingerprint(proc)) << '\n';
    return out.str();
}

/**
 * Shared per-record skip bookkeeping for the lenient loaders.  A record
 * is attributed to a procedure whenever its proc token still parses;
 * otherwise the skip is counted but unattributed.
 */
void
noteSkip(ProfileMeta &meta, const std::vector<std::string> &tok)
{
    ++meta.recordsSkipped;
    uint32_t p;
    if (tok.size() >= 2 && parseU32(tok[1], p)) {
        if (std::find(meta.skippedProcs.begin(), meta.skippedProcs.end(),
                      p) == meta.skippedProcs.end())
            meta.skippedProcs.push_back(p);
    } else {
        ++meta.unattributedSkips;
    }
}

/**
 * Parse one v1/v2 header line already split into @p tok.  On success
 * fills @p meta (version, checksum declaration) and, for a v2 header,
 * stores the declared checksum in @p declaredCrc.  @p paramTokens
 * receives the fixed parameter tokens between the version and any
 * `crc` field (empty for edge profiles, three tokens for path
 * profiles); the caller validates them.
 */
bool
parseHeader(const std::vector<std::string> &tok, const char *magic,
            size_t nparams, ProfileMeta &meta, uint64_t &declaredCrc,
            std::vector<std::string> &paramTokens)
{
    if (tok.size() < 2 || tok[0] != magic)
        return false;
    int version;
    if (tok[1] == "v1")
        version = 1;
    else if (tok[1] == "v2")
        version = 2;
    else
        return false;
    if (tok.size() < 2 + nparams)
        return false;
    paramTokens.assign(tok.begin() + 2, tok.begin() + 2 + nparams);
    size_t i = 2 + nparams;
    meta.version = version;
    if (version == 1)
        return i == tok.size();
    // v2 requires the crc field; nothing may follow it.
    if (i + 2 != tok.size() || tok[i] != "crc" ||
        !parseHex64(tok[i + 1], declaredCrc))
        return false;
    meta.hasChecksum = true;
    return true;
}

Status
badProfile(std::string msg)
{
    return Status::error(ErrorKind::BadProfile, std::move(msg));
}

} // namespace

std::string
toText(const EdgeProfiler &ep)
{
    std::ostringstream out;
    out << "edgeprofile v1\n";
    ep.forEachBlock([&](ProcId p, BlockId b, uint64_t n) {
        out << "block " << p << ' ' << b << ' ' << n << '\n';
    });
    ep.forEachEdge([&](ProcId p, BlockId from, BlockId to, uint64_t n) {
        out << "edge " << p << ' ' << from << ' ' << to << ' ' << n
            << '\n';
    });
    return out.str();
}

std::string
toTextV2(const EdgeProfiler &ep, const ir::Program &prog)
{
    // Body first: the header embeds the body's checksum.
    const std::string v1 = toText(ep);
    const size_t nl = v1.find('\n');
    std::string body = fingerprintLines(prog);
    body += v1.substr(nl + 1);
    return "edgeprofile v2 crc " + hex16(fnv1a64(body.data(), body.size())) +
           "\n" + body;
}

std::string
toText(const PathProfiler &pp)
{
    std::ostringstream out;
    out << "pathprofile v1 " << pp.params().maxBranches << ' '
        << pp.params().maxBlocks << ' '
        << (pp.params().forwardPathsOnly ? 1 : 0) << '\n';
    pp.forEachPath([&](ProcId p, const std::vector<BlockId> &seq,
                       uint64_t n) {
        out << "path " << p << ' ' << n << ' ' << seq.size();
        for (BlockId b : seq)
            out << ' ' << b;
        out << '\n';
    });
    return out.str();
}

std::string
toTextV2(const PathProfiler &pp, const ir::Program &prog)
{
    const std::string v1 = toText(pp);
    const size_t nl = v1.find('\n');
    std::string body = fingerprintLines(prog);
    body += v1.substr(nl + 1);
    return strfmt("pathprofile v2 %u %u %d crc ", pp.params().maxBranches,
                  pp.params().maxBlocks,
                  pp.params().forwardPathsOnly ? 1 : 0) +
           hex16(fnv1a64(body.data(), body.size())) + "\n" + body;
}

Status
loadEdgeProfile(const std::string &text, EdgeProfiler &ep,
                ProfileMeta &meta, const LoadOptions &opts)
{
    meta = ProfileMeta();
    std::istringstream in(text);
    std::string line;
    uint64_t declared_crc = 0;
    std::vector<std::string> params;
    if (!std::getline(in, line) ||
        !parseHeader(splitWs(line), "edgeprofile", 0, meta, declared_crc,
                     params))
        return badProfile("bad header: '" + line + "'");
    if (meta.hasChecksum) {
        meta.checksumOk = bodyChecksum(text) == declared_crc;
        if (!meta.checksumOk)
            return Status::error(
                ErrorKind::ProfileCorrupt,
                strfmt("edge profile checksum mismatch: header declares "
                       "%s, body hashes to %s",
                       hex16(declared_crc).c_str(),
                       hex16(bodyChecksum(text)).c_str()));
    }

    size_t lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        const std::vector<std::string> tok = splitWs(line);
        if (tok.empty())
            continue;
        if (tok[0] == "block") {
            uint32_t p, b;
            uint64_t n;
            if (tok.size() != 4 || !parseU32(tok[1], p) ||
                !parseU32(tok[2], b) || !parseU64(tok[3], n)) {
                if (opts.lenient) {
                    noteSkip(meta, tok);
                    continue;
                }
                return badProfile(
                    strfmt("line %zu: malformed block record", lineno));
            }
            if (!ep.addBlockCount(p, b, n)) {
                if (opts.lenient) {
                    noteSkip(meta, tok);
                    continue;
                }
                return badProfile(
                    strfmt("line %zu: block record names out-of-range "
                           "proc %u or block %u",
                           lineno, p, b));
            }
        } else if (tok[0] == "edge") {
            uint32_t p, from, to;
            uint64_t n;
            if (tok.size() != 5 || !parseU32(tok[1], p) ||
                !parseU32(tok[2], from) || !parseU32(tok[3], to) ||
                !parseU64(tok[4], n)) {
                if (opts.lenient) {
                    noteSkip(meta, tok);
                    continue;
                }
                return badProfile(
                    strfmt("line %zu: malformed edge record", lineno));
            }
            if (!ep.addEdgeCount(p, from, to, n)) {
                if (opts.lenient) {
                    noteSkip(meta, tok);
                    continue;
                }
                return badProfile(
                    strfmt("line %zu: edge record names out-of-range "
                           "proc %u or blocks %u->%u",
                           lineno, p, from, to));
            }
        } else if (tok[0] == "fingerprint" && meta.version >= 2) {
            uint32_t p;
            uint64_t fp;
            if (tok.size() != 3 || !parseU32(tok[1], p) ||
                !parseHex64(tok[2], fp)) {
                if (opts.lenient) {
                    noteSkip(meta, tok);
                    continue;
                }
                return badProfile(strfmt(
                    "line %zu: malformed fingerprint record", lineno));
            }
            meta.fingerprints.emplace_back(p, fp);
        } else {
            if (opts.lenient) {
                noteSkip(meta, tok);
                continue;
            }
            return badProfile(strfmt("line %zu: unknown record kind '%s'",
                                     lineno, tok[0].c_str()));
        }
    }
    return Status();
}

Status
loadPathProfile(const std::string &text, PathProfiler &pp,
                ProfileMeta &meta, const LoadOptions &opts)
{
    meta = ProfileMeta();
    // A finalized profiler cannot absorb raw counts (addPathCount would
    // assert); file input must surface this as a typed error instead.
    if (pp.finalized())
        return badProfile(
            "cannot load a path profile into a finalized profiler");

    std::istringstream in(text);
    std::string line;
    uint64_t declared_crc = 0;
    std::vector<std::string> params;
    if (!std::getline(in, line) ||
        !parseHeader(splitWs(line), "pathprofile", 3, meta, declared_crc,
                     params))
        return badProfile("bad path profile header");
    {
        uint32_t max_branches, max_blocks, forward;
        if (!parseU32(params[0], max_branches) ||
            !parseU32(params[1], max_blocks) ||
            !parseU32(params[2], forward) || forward > 1)
            return badProfile("bad path profile header");
        if (max_branches != pp.params().maxBranches ||
            max_blocks != pp.params().maxBlocks ||
            (forward != 0) != pp.params().forwardPathsOnly)
            return Status::error(
                ErrorKind::ProfileStale,
                strfmt("path profile parameters (%u branches, %u blocks, "
                       "forward=%u) do not match the profiler "
                       "(%u branches, %u blocks, forward=%d)",
                       max_branches, max_blocks, forward,
                       pp.params().maxBranches, pp.params().maxBlocks,
                       pp.params().forwardPathsOnly ? 1 : 0));
    }
    if (meta.hasChecksum) {
        meta.checksumOk = bodyChecksum(text) == declared_crc;
        if (!meta.checksumOk)
            return Status::error(
                ErrorKind::ProfileCorrupt,
                strfmt("path profile checksum mismatch: header declares "
                       "%s, body hashes to %s",
                       hex16(declared_crc).c_str(),
                       hex16(bodyChecksum(text)).c_str()));
    }

    std::vector<BlockId> seq;
    size_t lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        const std::vector<std::string> tok = splitWs(line);
        if (tok.empty())
            continue;
        if (tok[0] == "fingerprint" && meta.version >= 2) {
            uint32_t p;
            uint64_t fp;
            if (tok.size() != 3 || !parseU32(tok[1], p) ||
                !parseHex64(tok[2], fp)) {
                if (opts.lenient) {
                    noteSkip(meta, tok);
                    continue;
                }
                return badProfile(strfmt(
                    "line %zu: malformed fingerprint record", lineno));
            }
            meta.fingerprints.emplace_back(p, fp);
            continue;
        }
        if (tok[0] != "path") {
            if (opts.lenient) {
                noteSkip(meta, tok);
                continue;
            }
            return badProfile(strfmt("line %zu: unknown record kind '%s'",
                                     lineno, tok[0].c_str()));
        }
        uint32_t p;
        uint64_t n, len;
        if (tok.size() < 4 || !parseU32(tok[1], p) ||
            !parseU64(tok[2], n) || !parseU64(tok[3], len) || len == 0) {
            if (opts.lenient) {
                noteSkip(meta, tok);
                continue;
            }
            return badProfile(
                strfmt("line %zu: malformed path record", lineno));
        }
        // A window longer than the declared block budget could never
        // have been recorded; rejecting here also bounds the
        // allocation below against absurd lengths in corrupt input.
        if (len > pp.params().maxBlocks) {
            if (opts.lenient) {
                noteSkip(meta, tok);
                continue;
            }
            return badProfile(
                strfmt("line %zu: path length %llu exceeds the declared "
                       "block budget %u",
                       lineno, (unsigned long long)len,
                       pp.params().maxBlocks));
        }
        if (tok.size() != 4 + size_t(len)) {
            if (opts.lenient) {
                noteSkip(meta, tok);
                continue;
            }
            return badProfile(
                strfmt("line %zu: truncated path record (%zu of %llu "
                       "block ids)",
                       lineno, tok.size() - 4, (unsigned long long)len));
        }
        seq.assign(size_t(len), 0);
        bool blocks_ok = true;
        for (size_t k = 0; k < size_t(len); ++k) {
            if (!parseU32(tok[4 + k], seq[k])) {
                blocks_ok = false;
                break;
            }
        }
        if (!blocks_ok) {
            if (opts.lenient) {
                noteSkip(meta, tok);
                continue;
            }
            return badProfile(
                strfmt("line %zu: malformed path record", lineno));
        }
        if (!pp.addPathCount(p, seq, n)) {
            if (opts.lenient) {
                noteSkip(meta, tok);
                continue;
            }
            return badProfile(
                strfmt("line %zu: path record exceeds the profiling "
                       "budget or names out-of-range proc/blocks",
                       lineno));
        }
    }
    return Status();
}

bool
fromText(const std::string &text, EdgeProfiler &ep, std::string &error)
{
    ProfileMeta meta;
    const Status st = loadEdgeProfile(text, ep, meta);
    if (st.ok())
        return true;
    error = st.message();
    return false;
}

bool
fromText(const std::string &text, PathProfiler &pp, std::string &error)
{
    ProfileMeta meta;
    const Status st = loadPathProfile(text, pp, meta);
    if (st.ok())
        return true;
    error = st.message();
    return false;
}

} // namespace pathsched::profile
