#include "profile/serialize.hpp"

#include <sstream>

#include "support/strutil.hpp"

namespace pathsched::profile {

using ir::BlockId;
using ir::ProcId;

std::string
toText(const EdgeProfiler &ep)
{
    std::ostringstream out;
    out << "edgeprofile v1\n";
    ep.forEachBlock([&](ProcId p, BlockId b, uint64_t n) {
        out << "block " << p << ' ' << b << ' ' << n << '\n';
    });
    ep.forEachEdge([&](ProcId p, BlockId from, BlockId to, uint64_t n) {
        out << "edge " << p << ' ' << from << ' ' << to << ' ' << n
            << '\n';
    });
    return out.str();
}

bool
fromText(const std::string &text, EdgeProfiler &ep, std::string &error)
{
    std::istringstream in(text);
    std::string header;
    std::getline(in, header);
    if (header != "edgeprofile v1") {
        error = "bad header: '" + header + "'";
        return false;
    }
    std::string kind;
    size_t line = 1;
    while (in >> kind) {
        ++line;
        if (kind == "block") {
            ProcId p;
            BlockId b;
            uint64_t n;
            if (!(in >> p >> b >> n)) {
                error = strfmt("malformed block record at line %zu", line);
                return false;
            }
            ep.addBlockCount(p, b, n);
        } else if (kind == "edge") {
            ProcId p;
            BlockId from, to;
            uint64_t n;
            if (!(in >> p >> from >> to >> n)) {
                error = strfmt("malformed edge record at line %zu", line);
                return false;
            }
            ep.addEdgeCount(p, from, to, n);
        } else {
            error = "unknown record kind: '" + kind + "'";
            return false;
        }
    }
    return true;
}

std::string
toText(const PathProfiler &pp)
{
    std::ostringstream out;
    out << "pathprofile v1 " << pp.params().maxBranches << ' '
        << pp.params().maxBlocks << ' '
        << (pp.params().forwardPathsOnly ? 1 : 0) << '\n';
    pp.forEachPath([&](ProcId p, const std::vector<BlockId> &seq,
                       uint64_t n) {
        out << "path " << p << ' ' << n << ' ' << seq.size();
        for (BlockId b : seq)
            out << ' ' << b;
        out << '\n';
    });
    return out.str();
}

bool
fromText(const std::string &text, PathProfiler &pp, std::string &error)
{
    std::istringstream in(text);
    std::string magic, v;
    uint32_t max_branches, max_blocks;
    int forward;
    if (!(in >> magic >> v >> max_branches >> max_blocks >> forward) ||
        magic != "pathprofile" || v != "v1") {
        error = "bad path profile header";
        return false;
    }
    if (max_branches != pp.params().maxBranches ||
        max_blocks != pp.params().maxBlocks ||
        (forward != 0) != pp.params().forwardPathsOnly) {
        error = "path profile parameters do not match the profiler";
        return false;
    }

    std::string kind;
    std::vector<BlockId> seq;
    size_t record = 0;
    while (in >> kind) {
        ++record;
        if (kind != "path") {
            error = "unknown record kind: '" + kind + "'";
            return false;
        }
        ProcId p;
        uint64_t n;
        size_t len;
        if (!(in >> p >> n >> len) || len == 0) {
            error = strfmt("malformed path record %zu", record);
            return false;
        }
        seq.assign(len, 0);
        for (size_t k = 0; k < len; ++k) {
            if (!(in >> seq[k])) {
                error = strfmt("truncated path record %zu", record);
                return false;
            }
        }
        if (!pp.addPathCount(p, seq, n)) {
            error = strfmt("path record %zu exceeds the profiling "
                           "budget or names unknown blocks",
                           record);
            return false;
        }
    }
    return true;
}

} // namespace pathsched::profile
