/**
 * @file
 * Textual serialization of profiles.
 *
 * The paper's compiler collects profiles in an instrumented training
 * run and consumes them in a separate compilation (§3.1).  This module
 * provides the equivalent persistence: both profilers round-trip
 * through a line-oriented text format, so a training run and the
 * formation pass can live in different processes.
 *
 * Formats (one record per line):
 *
 *   edgeprofile v1
 *   block <proc> <block> <count>
 *   edge <proc> <from> <to> <count>
 *
 *   pathprofile v1 <maxBranches> <maxBlocks> <forward:0|1>
 *   path <proc> <count> <len> <b1> ... <blen>     (oldest block first)
 */

#ifndef PATHSCHED_PROFILE_SERIALIZE_HPP
#define PATHSCHED_PROFILE_SERIALIZE_HPP

#include <string>

#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"

namespace pathsched::profile {

/** Render @p ep as text. */
std::string toText(const EdgeProfiler &ep);

/**
 * Parse @p text into @p ep (counts are *added* to whatever is already
 * recorded, so profiles from several runs can be merged).
 * @return false with @p error set on malformed input.
 */
bool fromText(const std::string &text, EdgeProfiler &ep,
              std::string &error);

/** Render @p pp as text (raw window counts; finalization optional). */
std::string toText(const PathProfiler &pp);

/**
 * Parse @p text into @p pp, which must not be finalized yet and must
 * have been constructed with the same parameters the text declares.
 * Counts merge additively.  @return false with @p error on mismatch
 * or malformed input.
 */
bool fromText(const std::string &text, PathProfiler &pp,
              std::string &error);

} // namespace pathsched::profile

#endif // PATHSCHED_PROFILE_SERIALIZE_HPP
