/**
 * @file
 * Textual serialization of profiles.
 *
 * The paper's compiler collects profiles in an instrumented training
 * run and consumes them in a separate compilation (§3.1).  This module
 * provides the equivalent persistence: both profilers round-trip
 * through a line-oriented text format, so a training run and the
 * formation pass can live in different processes.
 *
 * v1 formats (one record per line):
 *
 *   edgeprofile v1
 *   block <proc> <block> <count>
 *   edge <proc> <from> <to> <count>
 *
 *   pathprofile v1 <maxBranches> <maxBlocks> <forward:0|1>
 *   path <proc> <count> <len> <b1> ... <blen>     (oldest block first)
 *
 * v2 adds integrity metadata and is otherwise a superset of v1:
 *
 *   edgeprofile v2 crc <16-hex>
 *   pathprofile v2 <maxBranches> <maxBlocks> <forward> crc <16-hex>
 *   fingerprint <proc> <16-hex>
 *   ... v1 block/edge/path records ...
 *
 *  - `crc` is the FNV-1a 64-bit hash of every byte *after* the header
 *    line's newline.  Any torn write, bit rot, or splice in the body
 *    fails the whole-file check (ErrorKind::ProfileCorrupt).
 *  - `fingerprint` records cfgFingerprint() of each procedure at
 *    collection time, so a consumer compiling a *different* program
 *    version can detect staleness per procedure (profile/validate.hpp).
 *
 * cfgFingerprint() is a structural hash of one procedure's CFG: FNV-1a
 * over the block count followed by, per block, its successor count,
 * successor ids (in successorsOf() order), and branch arity (1 for a
 * conditional BrNz/BrZ terminator, else 0).  Instruction contents do
 * not participate, so pure data-flow edits keep a profile fresh while
 * any CFG reshaping invalidates it.
 *
 * v1 files load fine through every entry point here; they simply carry
 * no checksum or fingerprints and therefore admit as "unverified"
 * (ProfileMeta::hasChecksum == false, empty fingerprint list).
 */

#ifndef PATHSCHED_PROFILE_SERIALIZE_HPP
#define PATHSCHED_PROFILE_SERIALIZE_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "profile/edge_profile.hpp"
#include "profile/path_profile.hpp"
#include "support/hash.hpp"
#include "support/status.hpp"

namespace pathsched::profile {

/** FNV-1a 64-bit hash (the v2 checksum/fingerprint primitive) — the
 *  shared implementation in support/hash.hpp, re-exported under its
 *  historical name for the pre-extraction call sites. */
using pathsched::fnv1a64;

/** Structural CFG hash of @p proc (see the file comment). */
uint64_t cfgFingerprint(const ir::Procedure &proc);

/**
 * Integrity metadata recovered while loading a serialized profile.
 * For v1 files only `version` is meaningful.
 */
struct ProfileMeta
{
    int version = 1;
    /** v2: a `crc` field was present in the header. */
    bool hasChecksum = false;
    /** v2: the body hashed to the declared checksum. */
    bool checksumOk = true;
    /** v2 `fingerprint` records, in file order: (proc, fingerprint). */
    std::vector<std::pair<uint32_t, uint64_t>> fingerprints;
    /** Lenient mode: records dropped instead of failing the file. */
    uint64_t recordsSkipped = 0;
    /** Procedures named by at least one dropped record (deduplicated;
     *  may include ids out of range for the current program). */
    std::vector<uint32_t> skippedProcs;
    /** Dropped records whose proc field itself was unreadable. */
    uint64_t unattributedSkips = 0;

    /** Fingerprint recorded for @p proc, or false. */
    bool fingerprintFor(uint32_t proc, uint64_t &out) const;
};

/** Loader behaviour toggles. */
struct LoadOptions
{
    /**
     * Skip (and count in ProfileMeta) malformed or out-of-range
     * records instead of failing the whole file.  File-level problems
     * — an unreadable header, a parameter mismatch, a checksum
     * mismatch — still fail.  This is the admission layer's repair
     * mode; the default matches the historical all-or-nothing parse.
     */
    bool lenient = false;
};

/** Render @p ep as v1 text. */
std::string toText(const EdgeProfiler &ep);

/** Render @p pp as v1 text (raw window counts; finalization optional). */
std::string toText(const PathProfiler &pp);

/** Render @p ep as v2 text: checksum plus one fingerprint per
 *  procedure of @p prog (the program the profile was collected on). */
std::string toTextV2(const EdgeProfiler &ep, const ir::Program &prog);

/** v2 render of @p pp; same contract as the edge overload. */
std::string toTextV2(const PathProfiler &pp, const ir::Program &prog);

/**
 * Parse @p text (v1 or v2) into @p ep, *adding* counts to whatever is
 * already recorded so profiles from several runs can be merged.
 * Never panics on any input.  Error kinds: BadProfile for malformed
 * text, ProfileCorrupt for a failed v2 checksum.
 */
Status loadEdgeProfile(const std::string &text, EdgeProfiler &ep,
                       ProfileMeta &meta,
                       const LoadOptions &opts = LoadOptions());

/**
 * Parse @p text (v1 or v2) into @p pp; counts merge additively.
 * @p pp must not be finalized and must match the declared parameters —
 * both are *typed* errors here (BadProfile / ProfileStale), reachable
 * from file input, never an assert.
 */
Status loadPathProfile(const std::string &text, PathProfiler &pp,
                       ProfileMeta &meta,
                       const LoadOptions &opts = LoadOptions());

/** @name Legacy bool loaders
 *  Strict (non-lenient) wrappers over the Status loaders; @p error
 *  receives Status::message() on failure.  Accept v1 and v2 text.
 *  @{
 */
bool fromText(const std::string &text, EdgeProfiler &ep,
              std::string &error);
bool fromText(const std::string &text, PathProfiler &pp,
              std::string &error);
/** @} */

} // namespace pathsched::profile

#endif // PATHSCHED_PROFILE_SERIALIZE_HPP
