/**
 * @file
 * Profile admission control: integrity checks, staleness detection and
 * the per-procedure degradation cascade.
 *
 * Serialized profiles are external inputs: they may be torn, spliced,
 * hand-edited, or collected against an older build of the program.
 * The loaders in profile/serialize.hpp reject what cannot be *parsed*;
 * this module rejects what cannot be *believed*.  It runs semantic
 * checks per procedure and classifies each one:
 *
 *  - Accepted: every check passed; the profile drives scheduling as-is.
 *  - ProjectedEdges (path profiles only): some windows were dropped,
 *    but the survivors still project onto a consistent edge profile.
 *    The procedure degrades from path-based to edge-based trace
 *    selection using that projection — still profile-guided, just with
 *    the weaker point profile of §2.1.
 *  - Quarantined: the procedure's data is stale or irreparable; the
 *    pipeline falls back to the BB baseline for it.
 *
 * The checks exploit two structural facts.  First, projecting each
 * recorded window's count onto its *final* block (resp. final edge)
 * reproduces the exact dynamic block (resp. edge) frequencies, because
 * every dynamic step increments exactly one window ending in the
 * executed block.  Second, real executions therefore satisfy, for
 * every block b, projectedOutflow(b) <= projectedBlockCount(b), and
 * every window's count is bounded by the projected count of each edge
 * it contains.  Corrupt counts break these inequalities without any
 * knowledge of the original run.
 *
 * Edge profiles are checked directly against the EdgeProfiler's
 * counting discipline (onEdge bumps the edge and its head block
 * together): inflow(b) must equal blockFreq(b) exactly for b != 0,
 * entry blocks may only exceed their inflow, outflow can never exceed
 * a block's count, and non-returning blocks may leak at most
 * ValidateOptions::flowSlack executions (frames in flight when a
 * training run was cut short).
 *
 * Staleness uses the v2 fingerprints (serialize.hpp): a procedure
 * whose recorded CFG fingerprint differs from cfgFingerprint() of the
 * current IR is quarantined before any count is trusted.  v1 profiles
 * carry no fingerprints and skip this check ("unverified").
 */

#ifndef PATHSCHED_PROFILE_VALIDATE_HPP
#define PATHSCHED_PROFILE_VALIDATE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "profile/serialize.hpp"
#include "support/status.hpp"

namespace pathsched::profile {

/** How the pipeline treats externally loaded profiles. */
enum class AdmissionMode : uint8_t
{
    Off,    ///< trust the file; no semantic checks (historic behaviour)
    Repair, ///< check, degrade per procedure, never fail the run
    Strict, ///< check; any finding fails the load with a typed error
};

/** Stable lowercase name ("off", "repair", "strict"). */
const char *admissionModeName(AdmissionMode mode);

/** Parse an admission-mode token; false on an unknown token. */
bool parseAdmissionMode(const std::string &token, AdmissionMode &out);

/** Admission outcome for one procedure. */
enum class ProcAction : uint8_t
{
    Accepted,       ///< profile data admitted unchanged
    ProjectedEdges, ///< path data degraded to a projected edge profile
    Quarantined,    ///< no trustworthy data; schedule from the BB baseline
};

/** Stable display name ("accepted", "projected-edges", "quarantined"). */
const char *procActionName(ProcAction action);

/** One procedure's non-clean admission record. */
struct ProcAudit
{
    ir::ProcId proc = 0;
    std::string procName;
    ProcAction action = ProcAction::Accepted;
    /** Failure classification (ProfileCorrupt or ProfileStale). */
    ErrorKind kind = ErrorKind::ProfileCorrupt;
    std::string message;
    /** Windows dropped from this procedure during repair. */
    uint64_t droppedPaths = 0;
};

/** Whole-profile admission verdict. */
struct ProfileAudit
{
    /** Admission ran (mode was not Off). */
    bool enabled = false;
    /** The file itself was rejected (load failure); procs is empty and
     *  the pipeline substitutes its internal training profile. */
    bool fileRejected = false;
    /** The load failure behind fileRejected (OK otherwise). */
    Status fileStatus;
    /** Every non-Accepted procedure, in procedure-id order. */
    std::vector<ProcAudit> procs;

    /** Procedures examined. */
    uint64_t checked = 0;
    /** Procedures degraded to a projected edge profile. */
    uint64_t repaired = 0;
    /** Procedures quarantined to the BB baseline. */
    uint64_t quarantined = 0;
    /** Procedures rejected for a fingerprint (staleness) mismatch. */
    uint64_t staleProcs = 0;
    /** Total windows/records dropped (parse-time and check-time). */
    uint64_t droppedPaths = 0;

    /** True when admission found nothing wrong. */
    bool
    clean() const
    {
        return !fileRejected && procs.empty() && droppedPaths == 0;
    }

    /** The audit record for @p p, or nullptr when @p p was accepted. */
    const ProcAudit *findProc(ir::ProcId p) const;
};

/** Admission tunables. */
struct ValidateOptions
{
    AdmissionMode mode = AdmissionMode::Repair;
    /** Executions a non-returning block may "leak" (frames in flight
     *  when a training run stopped) before flow checks fail. */
    uint64_t flowSlack = 1;
};

/**
 * Project every recorded window of @p pp onto final-block / final-edge
 * counts, accumulated into @p out (an EdgeProfiler over the same
 * program).  For a profile collected by a real run this reproduces the
 * exact dynamic block and edge frequencies whenever the window can
 * hold two blocks (maxBranches >= 1, maxBlocks >= 2).
 */
void projectPathsToEdges(const PathProfiler &pp, EdgeProfiler &out);

/**
 * Admit @p ep (typically loaded from text) against the current
 * program.  Fills @p audit; in Strict mode the first finding is also
 * returned as a typed error.  Never modifies @p ep — quarantined
 * procedures are handled by the caller's cascade.
 */
Status auditEdgeProfile(const ir::Program &prog, const EdgeProfiler &ep,
                        const ProfileMeta &meta,
                        const ValidateOptions &vo, ProfileAudit &audit);

/**
 * Admit @p pp against the current program.  @p pp must hold raw
 * (pre-finalize or finalize-preserved) window counts.  For every
 * procedure degraded to ProjectedEdges, the surviving windows'
 * projection is accumulated into @p projected when non-null (an
 * EdgeProfiler over the same program); the caller schedules those
 * procedures from it in edge mode.  Strict mode returns the first
 * finding as a typed error.
 */
Status auditPathProfile(const ir::Program &prog, const PathProfiler &pp,
                        const ProfileMeta &meta,
                        const ValidateOptions &vo, ProfileAudit &audit,
                        EdgeProfiler *projected);

} // namespace pathsched::profile

#endif // PATHSCHED_PROFILE_VALIDATE_HPP
