#include "profile/validate.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ir/procedure.hpp"
#include "support/strutil.hpp"

namespace pathsched::profile {

using ir::BlockId;
using ir::ProcId;

const char *
admissionModeName(AdmissionMode mode)
{
    switch (mode) {
      case AdmissionMode::Off: return "off";
      case AdmissionMode::Repair: return "repair";
      case AdmissionMode::Strict: return "strict";
    }
    return "<bad>";
}

bool
parseAdmissionMode(const std::string &token, AdmissionMode &out)
{
    if (token == "off")
        out = AdmissionMode::Off;
    else if (token == "repair")
        out = AdmissionMode::Repair;
    else if (token == "strict")
        out = AdmissionMode::Strict;
    else
        return false;
    return true;
}

const char *
procActionName(ProcAction action)
{
    switch (action) {
      case ProcAction::Accepted: return "accepted";
      case ProcAction::ProjectedEdges: return "projected-edges";
      case ProcAction::Quarantined: return "quarantined";
    }
    return "<bad>";
}

const ProcAudit *
ProfileAudit::findProc(ProcId p) const
{
    for (const ProcAudit &pa : procs)
        if (pa.proc == p)
            return &pa;
    return nullptr;
}

void
projectPathsToEdges(const PathProfiler &pp, EdgeProfiler &out)
{
    pp.forEachPath([&](ProcId p, const std::vector<BlockId> &seq,
                       uint64_t n) {
        out.addBlockCount(p, seq.back(), n);
        if (seq.size() >= 2)
            out.addEdgeCount(p, seq[seq.size() - 2], seq.back(), n);
    });
}

namespace {

uint64_t
edgeKey(BlockId from, BlockId to)
{
    return (uint64_t(from) << 32) | to;
}

/** The CFG edge set of one procedure, keyed by edgeKey(). */
std::unordered_set<uint64_t>
cfgEdges(const ir::Procedure &proc)
{
    std::unordered_set<uint64_t> edges;
    std::vector<BlockId> succs;
    for (size_t b = 0; b < proc.blocks.size(); ++b) {
        succs.clear();
        ir::successorsOf(proc.blocks[b], succs);
        for (BlockId s : succs)
            edges.insert(edgeKey(BlockId(b), s));
    }
    return edges;
}

bool
inList(const std::vector<uint32_t> &v, uint32_t x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

/**
 * Fingerprint screen shared by both auditors.  Only v2 files (which
 * always carry a checksum) declare fingerprints; a v2 file must
 * fingerprint every procedure it has data for.
 */
bool
staleCheck(const ir::Procedure &proc, const ProfileMeta &meta,
           bool hasData, std::string &why)
{
    if (!meta.hasChecksum)
        return false; // v1: unverified, nothing to compare
    uint64_t recorded;
    if (!meta.fingerprintFor(proc.id, recorded)) {
        if (!hasData)
            return false;
        why = "profile has data for this procedure but no CFG "
              "fingerprint";
        return true;
    }
    const uint64_t current = cfgFingerprint(proc);
    if (recorded == current)
        return false;
    why = strfmt("CFG fingerprint mismatch: profile records %016llx, "
                 "current IR hashes to %016llx",
                 (unsigned long long)recorded,
                 (unsigned long long)current);
    return true;
}

void
recordProc(ProfileAudit &audit, const ir::Procedure &proc,
           ProcAction action, ErrorKind kind, std::string message,
           uint64_t dropped = 0)
{
    ProcAudit pa;
    pa.proc = proc.id;
    pa.procName = proc.name;
    pa.action = action;
    pa.kind = kind;
    pa.message = std::move(message);
    pa.droppedPaths = dropped;
    audit.procs.push_back(std::move(pa));
    if (action == ProcAction::ProjectedEdges)
        ++audit.repaired;
    else if (action == ProcAction::Quarantined)
        ++audit.quarantined;
    if (kind == ErrorKind::ProfileStale)
        ++audit.staleProcs;
    audit.droppedPaths += dropped;
}

/** Strict mode: turn the first audit finding into a typed error. */
Status
strictVerdict(const ProfileAudit &audit)
{
    if (audit.clean())
        return Status();
    if (!audit.procs.empty()) {
        const ProcAudit &pa = audit.procs.front();
        return Status::error(pa.kind, strfmt("procedure '%s': %s",
                                             pa.procName.c_str(),
                                             pa.message.c_str()));
    }
    return Status::error(ErrorKind::ProfileCorrupt,
                         strfmt("%llu profile records dropped",
                                (unsigned long long)audit.droppedPaths));
}

} // namespace

Status
auditEdgeProfile(const ir::Program &prog, const EdgeProfiler &ep,
                 const ProfileMeta &meta, const ValidateOptions &vo,
                 ProfileAudit &audit)
{
    audit = ProfileAudit();
    if (vo.mode == AdmissionMode::Off)
        return Status();
    audit.enabled = true;
    audit.droppedPaths += meta.recordsSkipped;

    // Recorded edges per procedure (the profiler only serves point
    // queries, so reconstruct the record list once).
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> rec(
        prog.procs.size());
    ep.forEachEdge([&](ProcId p, BlockId from, BlockId to, uint64_t n) {
        rec[p].emplace_back(edgeKey(from, to), n);
    });

    for (const ir::Procedure &proc : prog.procs) {
        ++audit.checked;
        const size_t nblocks = proc.blocks.size();

        bool has_data = !rec[proc.id].empty();
        for (size_t b = 0; !has_data && b < nblocks; ++b)
            has_data = ep.blockFreq(proc.id, BlockId(b)) != 0;
        has_data = has_data || inList(meta.skippedProcs, proc.id);

        std::string why;
        if (staleCheck(proc, meta, has_data, why)) {
            recordProc(audit, proc, ProcAction::Quarantined,
                       ErrorKind::ProfileStale, std::move(why));
            continue;
        }
        if (inList(meta.skippedProcs, proc.id)) {
            recordProc(audit, proc, ProcAction::Quarantined,
                       ErrorKind::ProfileCorrupt,
                       "edge records for this procedure were dropped "
                       "while parsing");
            continue;
        }
        if (!has_data)
            continue; // nothing to admit

        // Flow conservation against the profiler's counting discipline.
        const std::unordered_set<uint64_t> edges = cfgEdges(proc);
        std::vector<uint64_t> inflow(nblocks, 0), outflow(nblocks, 0);
        std::string violation;
        for (const auto &[key, n] : rec[proc.id]) {
            const BlockId from = BlockId(key >> 32);
            const BlockId to = BlockId(key & 0xffffffffu);
            if (!edges.count(key)) {
                violation = strfmt("edge %u->%u is not in the CFG",
                                   from, to);
                break;
            }
            outflow[from] += n;
            inflow[to] += n;
        }
        for (size_t b = 0; violation.empty() && b < nblocks; ++b) {
            const uint64_t freq = ep.blockFreq(proc.id, BlockId(b));
            if (b != 0 && inflow[b] != freq)
                violation = strfmt("block %zu executed %llu times but "
                                   "has inflow %llu",
                                   b, (unsigned long long)freq,
                                   (unsigned long long)inflow[b]);
            else if (b == 0 && inflow[b] > freq)
                violation = strfmt("entry block executed %llu times "
                                   "but has inflow %llu",
                                   (unsigned long long)freq,
                                   (unsigned long long)inflow[b]);
            else if (outflow[b] > freq)
                violation = strfmt("block %zu executed %llu times but "
                                   "has outflow %llu",
                                   b, (unsigned long long)freq,
                                   (unsigned long long)outflow[b]);
            else if (!proc.blocks[b].empty() &&
                     proc.blocks[b].terminator().op != ir::Opcode::Ret &&
                     freq - outflow[b] > vo.flowSlack)
                violation = strfmt("non-returning block %zu leaks %llu "
                                   "executions (slack %llu)",
                                   b,
                                   (unsigned long long)(freq - outflow[b]),
                                   (unsigned long long)vo.flowSlack);
        }
        if (!violation.empty())
            recordProc(audit, proc, ProcAction::Quarantined,
                       ErrorKind::ProfileCorrupt,
                       "flow conservation failed: " + violation);
    }

    if (vo.mode == AdmissionMode::Strict)
        return strictVerdict(audit);
    return Status();
}

Status
auditPathProfile(const ir::Program &prog, const PathProfiler &pp,
                 const ProfileMeta &meta, const ValidateOptions &vo,
                 ProfileAudit &audit, EdgeProfiler *projected)
{
    audit = ProfileAudit();
    if (vo.mode == AdmissionMode::Off)
        return Status();
    audit.enabled = true;
    audit.droppedPaths += meta.recordsSkipped;

    struct Window
    {
        std::vector<BlockId> seq;
        uint64_t count;
    };
    std::vector<std::vector<Window>> wins(prog.procs.size());
    pp.forEachPath([&](ProcId p, const std::vector<BlockId> &seq,
                       uint64_t n) { wins[p].push_back({seq, n}); });

    // The final-pair projection is exact only when a window can hold
    // two blocks; with a tighter budget the pair-bound check is
    // skipped (adjacency and flow checks remain valid).
    const bool pair_bound_valid =
        pp.params().maxBranches >= 1 && pp.params().maxBlocks >= 2;

    for (const ir::Procedure &proc : prog.procs) {
        ++audit.checked;
        std::vector<Window> &ws = wins[proc.id];
        const bool parse_skips = inList(meta.skippedProcs, proc.id);
        const bool has_data = !ws.empty() || parse_skips;

        std::string why;
        if (staleCheck(proc, meta, has_data, why)) {
            recordProc(audit, proc, ProcAction::Quarantined,
                       ErrorKind::ProfileStale, std::move(why));
            continue;
        }
        if (!has_data)
            continue;

        const std::unordered_set<uint64_t> edges = cfgEdges(proc);
        const size_t total = ws.size();
        uint64_t dropped = 0;
        std::string first_drop;

        // Pass 1: every consecutive pair must be a CFG edge.
        std::vector<Window> adj;
        adj.reserve(ws.size());
        for (Window &w : ws) {
            bool ok = true;
            for (size_t k = 0; ok && k + 1 < w.seq.size(); ++k)
                ok = edges.count(edgeKey(w.seq[k], w.seq[k + 1])) != 0;
            if (ok) {
                adj.push_back(std::move(w));
            } else {
                ++dropped;
                if (first_drop.empty())
                    first_drop = "a window crosses a non-CFG edge";
            }
        }

        // Pass 2: a window cannot have recurred more often than any
        // edge it contains was traversed, and every traversal of edge
        // (u,v) lands in some window whose final pair is (u,v).
        std::vector<Window> kept;
        if (pair_bound_valid) {
            std::unordered_map<uint64_t, uint64_t> pair_total;
            for (const Window &w : adj)
                if (w.seq.size() >= 2)
                    pair_total[edgeKey(w.seq[w.seq.size() - 2],
                                       w.seq.back())] += w.count;
            kept.reserve(adj.size());
            for (Window &w : adj) {
                bool ok = true;
                for (size_t k = 0; ok && k + 1 < w.seq.size(); ++k) {
                    const auto it = pair_total.find(
                        edgeKey(w.seq[k], w.seq[k + 1]));
                    ok = it != pair_total.end() && w.count <= it->second;
                }
                if (ok) {
                    kept.push_back(std::move(w));
                } else {
                    ++dropped;
                    if (first_drop.empty())
                        first_drop = "a window's count exceeds the "
                                     "projected count of an edge it "
                                     "contains";
                }
            }
        } else {
            kept = std::move(adj);
        }

        // Pass 3: flow conservation — an edge out of b cannot have
        // been traversed more often than b executed.  This is an
        // integrity screen for *complete* profiles: once windows have
        // been dropped (here or at parse time) the projection is
        // knowingly partial and small flow deficits are expected, so
        // the check would quarantine exactly the procedures the
        // projection repair exists for.
        std::string violation;
        if (dropped == 0 && !parse_skips) {
            const size_t nblocks = proc.blocks.size();
            std::vector<uint64_t> proj_block(nblocks, 0),
                proj_out(nblocks, 0);
            for (const Window &w : kept) {
                proj_block[w.seq.back()] += w.count;
                if (w.seq.size() >= 2)
                    proj_out[w.seq[w.seq.size() - 2]] += w.count;
            }
            for (size_t b = 0; b < nblocks; ++b) {
                if (proj_out[b] > proj_block[b]) {
                    violation = strfmt(
                        "block %zu projects %llu executions but %llu "
                        "outgoing traversals",
                        b, (unsigned long long)proj_block[b],
                        (unsigned long long)proj_out[b]);
                    break;
                }
            }
        }

        if (!violation.empty()) {
            recordProc(audit, proc, ProcAction::Quarantined,
                       ErrorKind::ProfileCorrupt,
                       "projected flow conservation failed: " +
                           violation,
                       dropped);
            continue;
        }
        if (dropped == 0 && !parse_skips)
            continue; // fully accepted
        if (kept.empty()) {
            recordProc(audit, proc, ProcAction::Quarantined,
                       ErrorKind::ProfileCorrupt,
                       strfmt("all %zu windows dropped (%s)", total,
                              first_drop.empty()
                                  ? "records lost while parsing"
                                  : first_drop.c_str()),
                       dropped);
            continue;
        }
        // Degrade: survivors still form a consistent edge profile.
        if (projected) {
            for (const Window &w : kept) {
                projected->addBlockCount(proc.id, w.seq.back(), w.count);
                if (w.seq.size() >= 2)
                    projected->addEdgeCount(proc.id,
                                            w.seq[w.seq.size() - 2],
                                            w.seq.back(), w.count);
            }
        }
        recordProc(audit, proc, ProcAction::ProjectedEdges,
                   ErrorKind::ProfileCorrupt,
                   strfmt("%llu of %zu windows dropped (%s); surviving "
                          "windows projected onto an edge profile",
                          (unsigned long long)dropped, total,
                          first_drop.empty() ? "records lost while parsing"
                                             : first_drop.c_str()),
                   dropped);
    }

    if (vo.mode == AdmissionMode::Strict)
        return strictVerdict(audit);
    return Status();
}

} // namespace pathsched::profile
