/**
 * @file
 * General path profiler (Young, 1998; §2.2 and §3.1 of the paper).
 *
 * A *general path* is any contiguous block sequence containing at most
 * `maxBranches` conditional branches; profiling observes a sliding
 * window of the dynamic block trace, per procedure activation.
 *
 * Implementation: each distinct window is a node of a lazily built
 * *reversed trie* (root-to-node labels spell the window newest block
 * first).  Stepping to block x maps the current node W to the node for
 * "x followed by as much of W as the branch budget allows"; the result
 * is memoised per (node, x), so after its first O(depth) construction
 * every transition costs O(1) — the paper's O(npaths + nedges) bound.
 * Each step increments the current (deepest) node's counter; finalize()
 * folds counters into subtree sums, after which the frequency of any
 * block sequence t is the subtree sum at the node reached by walking
 * reversed(t).  When t exceeds the profiling depth, the walk stops at
 * the budget and thereby returns the frequency of t's *longest suffix
 * with exact frequencies* — precisely the fallback rule of §2.2.
 *
 * A forward-path mode (Ball-Larus-style) is provided for comparison: the
 * window additionally resets when a back edge is traversed.
 */

#ifndef PATHSCHED_PROFILE_PATH_PROFILE_HPP
#define PATHSCHED_PROFILE_PATH_PROFILE_HPP

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "interp/listener.hpp"
#include "ir/procedure.hpp"

namespace pathsched::profile {

/** Path-profiler configuration. */
struct PathProfileParams
{
    /** Maximum conditional branches inside one path (paper: 15). */
    uint32_t maxBranches = 15;
    /** Hard cap on blocks per path (guards jump-only chains). */
    uint32_t maxBlocks = 64;
    /** Chop windows at back edges (forward paths) instead of sliding. */
    bool forwardPathsOnly = false;
};

/** Collects general (or forward) path profiles for a whole program. */
class PathProfiler : public interp::TraceListener
{
  public:
    PathProfiler(const ir::Program &prog,
                 PathProfileParams params = PathProfileParams());

    void onProcEnter(ir::ProcId proc) override;
    void onProcExit(ir::ProcId proc) override;
    void onEdge(ir::ProcId proc, ir::BlockId from, ir::BlockId to) override;

    /** Compute subtree sums.  Must be called once, after the train run. */
    void finalize();

    /** True once finalize() has run.  Loaders must check this before
     *  addPathCount(), which asserts on a finalized profiler. */
    bool finalized() const { return finalized_; }

    /**
     * Frequency with which the block sequence @p seq (oldest block
     * first) was executed contiguously in @p proc.  Exact when @p seq
     * fits the profiling depth; otherwise the frequency of the longest
     * suffix that does.  Requires finalize().
     */
    uint64_t pathFreq(ir::ProcId proc,
                      const std::vector<ir::BlockId> &seq) const;

    /** Frequency of a single block (sum of all paths ending there). */
    uint64_t blockFreq(ir::ProcId proc, ir::BlockId b) const;

    /** Total distinct paths (trie nodes) recorded program-wide. */
    size_t numPaths() const;

    /** Total dynamic steps (edges + entries) processed. */
    uint64_t numSteps() const { return steps_; }

    const PathProfileParams &params() const { return params_; }

    /** @name Bulk access (profile persistence and merging)
     *  @{
     */
    /** Visit every recorded window with a nonzero raw count, as an
     *  oldest-block-first sequence. */
    void forEachPath(
        const std::function<void(ir::ProcId,
                                 const std::vector<ir::BlockId> &,
                                 uint64_t)> &cb) const;
    /**
     * Add @p count occurrences of window @p seq (oldest first).  Must
     * be called before finalize(); fails (returns false) when the
     * sequence exceeds the profiling budget, is empty, or names an
     * out-of-range procedure or block — untrusted serialized profiles
     * go through here, so such input rejects rather than aborts.
     */
    bool addPathCount(ir::ProcId proc,
                      const std::vector<ir::BlockId> &seq,
                      uint64_t count);
    /** @} */

  private:
    struct Node
    {
        ir::BlockId label = ir::kNoBlock;
        uint32_t parent = 0;
        /** Conditional branches consumed by this window. */
        uint32_t branches = 0;
        /** Blocks in this window. */
        uint32_t length = 0;
        uint64_t count = 0;
        uint64_t subtree = 0;
        /** Child per extension-backward-in-time label. */
        std::vector<std::pair<ir::BlockId, uint32_t>> children;
        /** Memoised successor window per next-executed block. */
        std::vector<std::pair<ir::BlockId, uint32_t>> succ;
    };

    /** Per-procedure trie; node 0 is the root (empty window). */
    struct Trie
    {
        std::vector<Node> nodes;
    };

    uint32_t childOf(ir::ProcId proc, uint32_t node, ir::BlockId label);
    uint32_t findChild(const Trie &t, uint32_t node,
                       ir::BlockId label) const;
    uint32_t transition(ir::ProcId proc, uint32_t node, ir::BlockId to);
    void step(ir::ProcId proc, ir::BlockId to);

    PathProfileParams params_;
    std::vector<Trie> tries_;
    /** blocks whose terminator is a conditional branch, per proc. */
    std::vector<std::vector<uint8_t>> condBlock_;
    /** back-edge keys ((from<<32)|to), per proc; forward mode only. */
    std::vector<std::unordered_set<uint64_t>> backEdges_;
    /** Stack of (proc, current node) per live activation. */
    std::vector<std::pair<ir::ProcId, uint32_t>> windowStack_;
    uint64_t steps_ = 0;
    bool finalized_ = false;
};

} // namespace pathsched::profile

#endif // PATHSCHED_PROFILE_PATH_PROFILE_HPP
