#include "profile/path_profile.hpp"

#include <algorithm>

#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "support/logging.hpp"

namespace pathsched::profile {

using ir::BlockId;
using ir::kNoBlock;
using ir::ProcId;

PathProfiler::PathProfiler(const ir::Program &prog,
                           PathProfileParams params)
    : params_(params)
{
    ps_assert(params_.maxBlocks >= 2);
    tries_.resize(prog.procs.size());
    condBlock_.resize(prog.procs.size());
    backEdges_.resize(prog.procs.size());
    for (const auto &p : prog.procs) {
        tries_[p.id].nodes.emplace_back(); // root = empty window
        auto &cond = condBlock_[p.id];
        cond.assign(p.blocks.size(), 0);
        for (BlockId b = 0; b < p.blocks.size(); ++b) {
            if (!p.blocks[b].empty() && p.blocks[b].terminator().isBranch())
                cond[b] = 1;
        }
        if (params_.forwardPathsOnly) {
            analysis::Dominators doms(p);
            analysis::LoopInfo loops(p, doms);
            std::vector<BlockId> succs;
            for (BlockId b = 0; b < p.blocks.size(); ++b) {
                ir::successorsOf(p.blocks[b], succs);
                for (BlockId s : succs) {
                    if (loops.isBackEdge(b, s))
                        backEdges_[p.id].insert((uint64_t(b) << 32) | s);
                }
            }
        }
    }
}

uint32_t
PathProfiler::findChild(const Trie &t, uint32_t node, BlockId label) const
{
    for (const auto &[l, c] : t.nodes[node].children) {
        if (l == label)
            return c;
    }
    return 0; // the root is never a child, so 0 means "absent"
}

uint32_t
PathProfiler::childOf(ProcId proc, uint32_t node, BlockId label)
{
    Trie &t = tries_[proc];
    if (uint32_t c = findChild(t, node, label))
        return c;
    Node child;
    child.label = label;
    child.parent = node;
    child.length = t.nodes[node].length + 1;
    // The newest block (depth-1 node) spends no branch budget; an older
    // block spends one when its terminator is a conditional branch.
    child.branches =
        node == 0 ? 0
                  : t.nodes[node].branches + (condBlock_[proc][label] ? 1
                                                                      : 0);
    const uint32_t idx = uint32_t(t.nodes.size());
    t.nodes.push_back(std::move(child));
    t.nodes[node].children.emplace_back(label, idx);
    return idx;
}

uint32_t
PathProfiler::transition(ProcId proc, uint32_t node, BlockId to)
{
    Trie &t = tries_[proc];
    for (const auto &[l, s] : t.nodes[node].succ) {
        if (l == to)
            return s;
    }

    // First time this window meets `to`: construct the successor window
    // "to, then as much of this window (newest first) as fits".
    std::vector<BlockId> newest_first;
    for (uint32_t cur = node; cur != 0; cur = t.nodes[cur].parent)
        newest_first.push_back(t.nodes[cur].label); // oldest first here
    std::reverse(newest_first.begin(), newest_first.end());

    uint32_t result = childOf(proc, 0, to);
    uint32_t branches = 0;
    uint32_t length = 1;
    for (BlockId label : newest_first) {
        const uint32_t cost = condBlock_[proc][label] ? 1 : 0;
        if (branches + cost > params_.maxBranches ||
            length + 1 > params_.maxBlocks) {
            break;
        }
        result = childOf(proc, result, label);
        branches += cost;
        ++length;
    }

    t.nodes[node].succ.emplace_back(to, result);
    return result;
}

void
PathProfiler::step(ProcId proc, BlockId to)
{
    auto &[p, node] = windowStack_.back();
    ps_assert(p == proc);
    node = transition(proc, node, to);
    ++tries_[proc].nodes[node].count;
    ++steps_;
}

void
PathProfiler::onProcEnter(ProcId proc)
{
    windowStack_.push_back({proc, 0});
    step(proc, 0);
}

void
PathProfiler::onProcExit(ProcId proc)
{
    ps_assert(!windowStack_.empty() &&
              windowStack_.back().first == proc);
    windowStack_.pop_back();
}

void
PathProfiler::onEdge(ProcId proc, BlockId from, BlockId to)
{
    if (params_.forwardPathsOnly &&
        backEdges_[proc].count((uint64_t(from) << 32) | to)) {
        windowStack_.back().second = 0; // chop the window at back edges
    }
    step(proc, to);
}

void
PathProfiler::finalize()
{
    ps_assert_msg(!finalized_, "finalize() called twice");
    for (auto &t : tries_) {
        for (auto &n : t.nodes)
            n.subtree = n.count;
        // Children always have larger indices than their parent, so one
        // reverse sweep accumulates complete subtree sums.
        for (size_t i = t.nodes.size(); i-- > 1;)
            t.nodes[t.nodes[i].parent].subtree += t.nodes[i].subtree;
    }
    finalized_ = true;
}

uint64_t
PathProfiler::pathFreq(ProcId proc, const std::vector<BlockId> &seq) const
{
    ps_assert_msg(finalized_, "pathFreq before finalize()");
    ps_assert(!seq.empty());
    const Trie &t = tries_[proc];

    uint32_t node = findChild(t, 0, seq.back());
    if (node == 0)
        return 0;
    uint32_t branches = 0;
    uint32_t length = 1;
    for (size_t k = seq.size() - 1; k-- > 0;) {
        const BlockId label = seq[k];
        const uint32_t cost = condBlock_[proc][label] ? 1 : 0;
        if (branches + cost > params_.maxBranches ||
            length + 1 > params_.maxBlocks) {
            break; // profiling depth reached: longest-suffix frequency
        }
        const uint32_t child = findChild(t, node, label);
        if (child == 0)
            return 0; // this suffix never executed
        node = child;
        branches += cost;
        ++length;
    }
    return t.nodes[node].subtree;
}

uint64_t
PathProfiler::blockFreq(ProcId proc, BlockId b) const
{
    ps_assert_msg(finalized_, "blockFreq before finalize()");
    const uint32_t node = findChild(tries_[proc], 0, b);
    return node == 0 ? 0 : tries_[proc].nodes[node].subtree;
}

void
PathProfiler::forEachPath(
    const std::function<void(ProcId, const std::vector<BlockId> &,
                             uint64_t)> &cb) const
{
    std::vector<BlockId> seq;
    for (ProcId p = 0; p < tries_.size(); ++p) {
        const Trie &t = tries_[p];
        for (uint32_t n = 1; n < t.nodes.size(); ++n) {
            if (t.nodes[n].count == 0)
                continue;
            // Parent chain yields labels oldest-first already.
            seq.clear();
            for (uint32_t cur = n; cur != 0; cur = t.nodes[cur].parent)
                seq.push_back(t.nodes[cur].label);
            cb(p, seq, t.nodes[n].count);
        }
    }
}

bool
PathProfiler::addPathCount(ProcId proc,
                           const std::vector<BlockId> &seq,
                           uint64_t count)
{
    ps_assert_msg(!finalized_, "addPathCount after finalize()");
    // Out-of-range ids and empty sequences come from untrusted
    // serialized profiles: reject, don't abort.
    if (proc >= tries_.size() || seq.empty())
        return false;
    for (BlockId b : seq) {
        if (b >= condBlock_[proc].size())
            return false;
    }

    uint32_t node = childOf(proc, 0, seq.back());
    uint32_t branches = 0;
    uint32_t length = 1;
    for (size_t k = seq.size() - 1; k-- > 0;) {
        const BlockId label = seq[k];
        const uint32_t cost = condBlock_[proc][label] ? 1 : 0;
        if (branches + cost > params_.maxBranches ||
            length + 1 > params_.maxBlocks) {
            return false; // over budget: not a recordable window
        }
        node = childOf(proc, node, label);
        branches += cost;
        ++length;
    }
    tries_[proc].nodes[node].count += count;
    return true;
}

size_t
PathProfiler::numPaths() const
{
    size_t n = 0;
    for (const auto &t : tries_)
        n += t.nodes.size() - 1;
    return n;
}

} // namespace pathsched::profile
