#include "icache/icache.hpp"

#include "support/logging.hpp"

namespace pathsched::icache {

ICache::ICache() : ICache(Params()) {}

ICache::ICache(const Params &params)
    : params_(params)
{
    ps_assert(params_.lineBytes > 0 &&
              (params_.lineBytes & (params_.lineBytes - 1)) == 0);
    ps_assert(params_.sizeBytes % params_.lineBytes == 0);
    numLines_ = params_.sizeBytes / params_.lineBytes;
    tags_.assign(numLines_, 0);
    valid_.assign(numLines_, 0);
}

uint32_t
ICache::access(uint64_t addr)
{
    ++accesses_;
    const uint64_t line = addr / params_.lineBytes;
    const uint32_t idx = uint32_t(line % numLines_);
    if (valid_[idx] && tags_[idx] == line)
        return 0;
    valid_[idx] = 1;
    tags_[idx] = line;
    ++misses_;
    return params_.missPenaltyCycles;
}

void
ICache::reset()
{
    std::fill(valid_.begin(), valid_.end(), 0);
    std::fill(tags_.begin(), tags_.end(), 0);
    accesses_ = 0;
    misses_ = 0;
}

} // namespace pathsched::icache
