/**
 * @file
 * Direct-mapped instruction cache model.
 *
 * The paper's experimental machine uses a 32 KB direct-mapped I-cache
 * with 32-byte lines and a 6-cycle miss penalty (§3.2, §4).  All three
 * parameters are configurable here.
 */

#ifndef PATHSCHED_ICACHE_ICACHE_HPP
#define PATHSCHED_ICACHE_ICACHE_HPP

#include <cstdint>
#include <vector>

namespace pathsched::icache {

/** Direct-mapped cache indexed by instruction address. */
class ICache
{
  public:
    struct Params
    {
        uint32_t sizeBytes = 32 * 1024;
        uint32_t lineBytes = 32;
        uint32_t missPenaltyCycles = 6;
    };

    /** Build with the paper's default parameters. */
    ICache();
    explicit ICache(const Params &params);

    /**
     * Fetch the line containing @p addr.
     * @return the stall penalty in cycles: 0 on hit, missPenalty on miss.
     */
    uint32_t access(uint64_t addr);

    /** Forget all cached lines and zero the statistics. */
    void reset();

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }
    double missRate() const
    {
        return accesses_ == 0 ? 0.0 : double(misses_) / double(accesses_);
    }
    const Params &params() const { return params_; }

  private:
    Params params_;
    uint32_t numLines_;
    std::vector<uint64_t> tags_;
    std::vector<uint8_t> valid_;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

} // namespace pathsched::icache

#endif // PATHSCHED_ICACHE_ICACHE_HPP
