/**
 * @file
 * The microbenchmarks of Table 1: alt, ph, corr, and wc.
 *
 * alt and ph are a single loop around a conditional; alt's condition
 * follows the periodic pattern TTTF…, ph's is phased (TT…TFF…F).  Both
 * produce identical edge profiles (75% taken) yet completely different
 * path profiles — the Fig. 3 motivating examples.  corr is the simple
 * two-branch correlation example of Young & Smith.  wc is an actual
 * word-count state machine over synthetic text.
 */

#include "workloads/workloads.hpp"

#include "ir/builder.hpp"
#include "workloads/textutil.hpp"

namespace pathsched::workloads {

using ir::BlockId;
using ir::IrBuilder;
using ir::Opcode;
using ir::ProcId;
using ir::RegId;

Workload
makeAlt()
{
    Workload w;
    w.name = "alt";
    w.description = "Sorted example: loop conditional follows TTTF...";
    w.group = "micro";

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 1); // param 0: iteration count
    const BlockId entry = b.currentBlock();
    const BlockId loop = b.newBlock();
    const BlockId left = b.newBlock();
    const BlockId right = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId done = b.newBlock();

    const RegId n = b.param(0);
    const RegId i = b.freshReg();
    const RegId acc = b.freshReg();
    const RegId aux = b.freshReg();

    b.setBlock(entry);
    b.ldiTo(i, 0);
    b.ldiTo(acc, 0);
    b.ldiTo(aux, 1);
    b.jmp(loop);

    b.setBlock(loop);
    {
        const RegId t = b.alui(Opcode::And, i, 3);
        const RegId c = b.alui(Opcode::CmpNe, t, 3);
        b.brnz(c, left, right); // taken 3 of every 4 iterations
    }

    b.setBlock(left);
    {
        b.aluTo(Opcode::Add, acc, acc, i);
        const RegId t = b.alui(Opcode::Xor, i, 21);
        b.aluTo(Opcode::Add, acc, acc, t);
        b.aluiTo(Opcode::Add, aux, aux, 3);
        b.jmp(latch);
    }

    b.setBlock(right);
    {
        const RegId t = b.alui(Opcode::Mul, acc, 3);
        b.aluiTo(Opcode::Add, acc, t, 1);
        b.aluTo(Opcode::Xor, aux, aux, acc);
        b.jmp(latch);
    }

    b.setBlock(latch);
    {
        b.aluiTo(Opcode::Add, i, i, 1);
        const RegId c = b.alu(Opcode::CmpLt, i, n);
        b.brnz(c, loop, done);
    }

    b.setBlock(done);
    {
        const RegId sum = b.add(acc, aux);
        b.emitValue(sum);
        b.ret(sum);
    }

    w.program.mainProc = main;
    w.program.memWords = 16;
    w.train.mainArgs = {60000};
    w.test.mainArgs = {100000};
    return w;
}

Workload
makePh()
{
    Workload w;
    w.name = "ph";
    w.description = "Phased example: conditional true then false halves";
    w.group = "micro";

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 1);
    const BlockId entry = b.currentBlock();
    const BlockId loop = b.newBlock();
    const BlockId left = b.newBlock();
    const BlockId right = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId done = b.newBlock();

    const RegId n = b.param(0);
    const RegId i = b.freshReg();
    const RegId acc = b.freshReg();
    const RegId aux = b.freshReg();
    const RegId half = b.freshReg();

    b.setBlock(entry);
    b.ldiTo(i, 0);
    b.ldiTo(acc, 0);
    b.ldiTo(aux, 7);
    b.aluiTo(Opcode::Shr, half, n, 1);
    b.jmp(loop);

    b.setBlock(loop);
    {
        const RegId c = b.alu(Opcode::CmpLt, i, half);
        b.brnz(c, left, right); // long true phase, then long false phase
    }

    b.setBlock(left);
    {
        b.aluTo(Opcode::Add, acc, acc, i);
        const RegId t = b.alui(Opcode::And, acc, 1023);
        b.aluTo(Opcode::Xor, aux, aux, t);
        b.jmp(latch);
    }

    b.setBlock(right);
    {
        const RegId t = b.alui(Opcode::Shl, i, 1);
        b.aluTo(Opcode::Sub, acc, acc, t);
        b.aluiTo(Opcode::Add, aux, aux, 5);
        b.jmp(latch);
    }

    b.setBlock(latch);
    {
        b.aluiTo(Opcode::Add, i, i, 1);
        const RegId c = b.alu(Opcode::CmpLt, i, n);
        b.brnz(c, loop, done);
    }

    b.setBlock(done);
    {
        const RegId sum = b.add(acc, aux);
        b.emitValue(sum);
        b.ret(sum);
    }

    w.program.mainProc = main;
    w.program.memWords = 16;
    w.train.mainArgs = {60000};
    w.test.mainArgs = {100000};
    return w;
}

Workload
makeCorr()
{
    Workload w;
    w.name = "corr";
    w.description = "Branch correlation example (Young & Smith)";
    w.group = "micro";

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 1);
    const BlockId entry = b.currentBlock();
    const BlockId head = b.newBlock();   // first branch on x
    const BlockId b_then = b.newBlock();
    const BlockId b_else = b.newBlock();
    const BlockId mid = b.newBlock();    // second, correlated branch on x
    const BlockId c_then = b.newBlock();
    const BlockId c_else = b.newBlock();
    const BlockId latch = b.newBlock();
    const BlockId done = b.newBlock();

    const RegId n = b.param(0);
    const RegId i = b.freshReg();
    const RegId acc = b.freshReg();
    const RegId x = b.freshReg();

    b.setBlock(entry);
    b.ldiTo(i, 0);
    b.ldiTo(acc, 0);
    b.jmp(head);

    b.setBlock(head);
    {
        // x is true 3 of every 4 iterations; both branches test the
        // same x, so they are perfectly correlated.  An edge profile
        // sees two independent 75% branches; only a path profile sees
        // that the 75% paths line up.
        const RegId t = b.alui(Opcode::And, i, 3);
        b.aluiTo(Opcode::CmpNe, x, t, 3);
        b.brnz(x, b_then, b_else);
    }

    b.setBlock(b_then);
    b.aluTo(Opcode::Add, acc, acc, i);
    b.jmp(mid);

    b.setBlock(b_else);
    b.aluiTo(Opcode::Xor, acc, acc, 255);
    b.jmp(mid);

    b.setBlock(mid);
    b.brnz(x, c_then, c_else); // correlated with the branch in `head`

    b.setBlock(c_then);
    {
        const RegId t = b.alui(Opcode::Shl, i, 2);
        b.aluTo(Opcode::Add, acc, acc, t);
        b.jmp(latch);
    }

    b.setBlock(c_else);
    {
        const RegId t = b.alui(Opcode::Mul, acc, 5);
        b.aluiTo(Opcode::Add, acc, t, 3);
        b.jmp(latch);
    }

    b.setBlock(latch);
    {
        b.aluiTo(Opcode::Add, i, i, 1);
        const RegId c = b.alu(Opcode::CmpLt, i, n);
        b.brnz(c, head, done);
    }

    b.setBlock(done);
    b.emitValue(acc);
    b.ret(acc);

    w.program.mainProc = main;
    w.program.memWords = 16;
    w.train.mainArgs = {40000};
    w.test.mainArgs = {70000};
    return w;
}

Workload
makeWc()
{
    Workload w;
    w.name = "wc";
    w.description = "UNIX word count over synthetic text";
    w.group = "micro";

    // Memory layout: mem[0] = character count, text from mem[1].
    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);
    const BlockId entry = b.currentBlock();
    const BlockId loop = b.newBlock();
    const BlockId nonspace = b.newBlock();
    const BlockId newword = b.newBlock();
    const BlockId space = b.newBlock();
    const BlockId cont = b.newBlock();
    const BlockId done = b.newBlock();

    const RegId zero = b.freshReg();
    const RegId n = b.freshReg();
    const RegId i = b.freshReg();
    const RegId lines = b.freshReg();
    const RegId words = b.freshReg();
    const RegId chars = b.freshReg();
    const RegId inword = b.freshReg();

    b.setBlock(entry);
    b.ldiTo(zero, 0);
    b.ldTo(n, zero, 0);
    b.ldiTo(i, 0);
    b.ldiTo(lines, 0);
    b.ldiTo(words, 0);
    b.ldiTo(chars, 0);
    b.ldiTo(inword, 0);
    {
        const RegId c = b.alu(Opcode::CmpLt, i, n);
        b.brnz(c, loop, done);
    }

    const RegId ch = b.freshReg();
    b.setBlock(loop);
    {
        const RegId addr = b.addi(i, 1);
        b.ldTo(ch, addr, 0);
        const RegId is_space = b.cmpEqi(ch, ' ');
        const RegId is_nl = b.cmpEqi(ch, '\n');
        const RegId sp = b.alu(Opcode::Or, is_space, is_nl);
        b.brnz(sp, space, nonspace);
    }

    b.setBlock(nonspace);
    b.brnz(inword, cont, newword);

    b.setBlock(newword);
    b.aluiTo(Opcode::Add, words, words, 1);
    b.ldiTo(inword, 1);
    b.jmp(cont);

    b.setBlock(space);
    {
        b.ldiTo(inword, 0);
        const RegId is_nl = b.cmpEqi(ch, '\n');
        b.aluTo(Opcode::Add, lines, lines, is_nl);
        b.jmp(cont);
    }

    b.setBlock(cont);
    {
        b.aluiTo(Opcode::Add, chars, chars, 1);
        b.aluiTo(Opcode::Add, i, i, 1);
        const RegId c = b.alu(Opcode::CmpLt, i, n);
        b.brnz(c, loop, done);
    }

    b.setBlock(done);
    {
        b.emitValue(lines);
        b.emitValue(words);
        b.emitValue(chars);
        const RegId t = b.add(lines, words);
        const RegId r = b.add(t, chars);
        b.ret(r);
    }

    w.program.mainProc = main;

    auto pack = [](const std::vector<int64_t> &text) {
        std::vector<int64_t> mem;
        mem.reserve(text.size() + 1);
        mem.push_back(int64_t(text.size()));
        mem.insert(mem.end(), text.begin(), text.end());
        return mem;
    };
    w.train.memImage = pack(makeText(0x5eed0001, 50000));
    w.test.memImage = pack(makeText(0x5eed0002, 80000));
    w.program.memWords = 1 + 80000 + 8;
    return w;
}

} // namespace pathsched::workloads
