/**
 * @file
 * Deterministic input generators for the workload suite.
 *
 * Every generator is seeded, so train and test inputs differ (distinct
 * seeds and sizes) yet each run of the repository sees identical data.
 */

#ifndef PATHSCHED_WORKLOADS_TEXTUTIL_HPP
#define PATHSCHED_WORKLOADS_TEXTUTIL_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pathsched::workloads {

/**
 * English-like text: lowercase words of 1-9 letters separated by
 * spaces, a newline roughly every twelve words.  One character per
 * memory word.
 */
std::vector<int64_t> makeText(uint64_t seed, size_t nchars);

/**
 * Compressible byte stream: phrases drawn from a small dictionary with
 * occasional random noise, so an LZ-style matcher finds real matches.
 */
std::vector<int64_t> makeCompressibleData(uint64_t seed, size_t nbytes);

/** Uniform pseudo-random values in [0, bound). */
std::vector<int64_t> makeRandomValues(uint64_t seed, size_t count,
                                      int64_t bound);

} // namespace pathsched::workloads

#endif // PATHSCHED_WORKLOADS_TEXTUTIL_HPP
