/**
 * @file
 * SPEC-like kernel workloads: com(press), eqn(tott), esp(resso),
 * ijpeg and vortex.
 *
 * Each kernel reproduces the control-flow character the paper's
 * discussion attributes to the original benchmark:
 *  - compress: execution dominated by a couple of loops (an LZ-style
 *    scan with a match-extension inner loop);
 *  - eqntott: a very frequent branch guarding a tiny block inside a
 *    hot inner loop, where unrolling matters most (§4, Fig. 6);
 *  - espresso: nested loops over bit matrices with moderately
 *    predictable data-dependent branches;
 *  - ijpeg: loop-dominated straight-line DCT-like arithmetic over 8x8
 *    blocks;
 *  - vortex: call-heavy record/database operations with highly
 *    predictable branches.
 */

#include "workloads/workloads.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"
#include "workloads/textutil.hpp"

namespace pathsched::workloads {

using ir::BlockId;
using ir::IrBuilder;
using ir::Opcode;
using ir::ProcId;
using ir::RegId;

Workload
makeCompress()
{
    Workload w;
    w.name = "com";
    w.description = "Lempel-Ziv style compression kernel";
    w.group = "SPECint92";

    // Memory: [0] = n, data at kData.., hash table of 1024 slots at
    // kHash (slot holds position+1; 0 means empty).
    constexpr int64_t kData = 16;
    constexpr int64_t kMaxData = 90000;
    constexpr int64_t kHash = kData + kMaxData;

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);
    const BlockId entry = b.currentBlock();
    const BlockId head = b.newBlock();
    const BlockId probe = b.newBlock();
    const BlockId check = b.newBlock();
    const BlockId match = b.newBlock();
    const BlockId ext_check = b.newBlock();
    const BlockId ext_len = b.newBlock();
    const BlockId ext_body = b.newBlock();
    const BlockId ext_inc = b.newBlock();
    const BlockId emit_match = b.newBlock();
    const BlockId literal = b.newBlock();
    const BlockId done = b.newBlock();

    const RegId zero = b.freshReg();
    const RegId n = b.freshReg();
    const RegId i = b.freshReg();
    const RegId acc = b.freshReg();
    const RegId nmatch = b.freshReg();
    const RegId c0 = b.freshReg();
    const RegId c1 = b.freshReg();
    const RegId cand = b.freshReg();
    const RegId j = b.freshReg();
    const RegId len = b.freshReg();

    b.setBlock(entry);
    b.ldiTo(zero, 0);
    b.ldTo(n, zero, 0);
    b.aluiTo(Opcode::Sub, n, n, 1); // scan needs pairs (c[i], c[i+1])
    b.ldiTo(i, 0);
    b.ldiTo(acc, 0);
    b.ldiTo(nmatch, 0);
    b.jmp(head);

    b.setBlock(head);
    {
        const RegId c = b.alu(Opcode::CmpLt, i, n);
        b.brnz(c, probe, done);
    }

    b.setBlock(probe);
    {
        const RegId a0 = b.addi(i, kData);
        b.ldTo(c0, a0, 0);
        b.ldTo(c1, a0, 1);
        const RegId t = b.muli(c0, 31);
        const RegId t2 = b.add(t, c1);
        const RegId h = b.alui(Opcode::And, t2, 1023);
        const RegId ha = b.addi(h, kHash);
        b.ldTo(cand, ha, 0);
        const RegId ip1 = b.addi(i, 1);
        b.st(ha, 0, ip1);
        b.brnz(cand, check, literal);
    }

    b.setBlock(check);
    {
        b.aluiTo(Opcode::Sub, j, cand, 1);
        const RegId aj = b.addi(j, kData);
        const RegId m0 = b.ld(aj, 0);
        const RegId m1 = b.ld(aj, 1);
        const RegId e0 = b.cmpEq(m0, c0);
        const RegId e1 = b.cmpEq(m1, c1);
        const RegId e = b.alu(Opcode::And, e0, e1);
        b.brnz(e, match, literal);
    }

    b.setBlock(match);
    b.ldiTo(len, 2);
    b.jmp(ext_check);

    b.setBlock(ext_check);
    {
        const RegId t = b.add(i, len);
        const RegId c = b.alu(Opcode::CmpLt, t, n);
        b.brnz(c, ext_len, emit_match);
    }

    b.setBlock(ext_len);
    {
        const RegId c = b.cmpLti(len, 12);
        b.brnz(c, ext_body, emit_match);
    }

    b.setBlock(ext_body);
    {
        const RegId ti = b.add(i, len);
        const RegId tj = b.add(j, len);
        const RegId ai = b.addi(ti, kData);
        const RegId aj = b.addi(tj, kData);
        const RegId x = b.ld(ai, 0);
        const RegId y = b.ld(aj, 0);
        const RegId e = b.cmpEq(x, y);
        b.brnz(e, ext_inc, emit_match);
    }

    b.setBlock(ext_inc);
    {
        b.aluiTo(Opcode::Add, len, len, 1);
        b.jmp(ext_check);
    }

    b.setBlock(emit_match);
    {
        const RegId t = b.muli(len, 7);
        b.aluTo(Opcode::Add, acc, acc, t);
        b.aluTo(Opcode::Xor, acc, acc, j);
        b.aluiTo(Opcode::Add, nmatch, nmatch, 1);
        b.aluTo(Opcode::Add, i, i, len);
        b.jmp(head);
    }

    b.setBlock(literal);
    {
        const RegId t = b.muli(acc, 3);
        const RegId t2 = b.add(t, c0);
        const RegId m = b.alui(Opcode::And, t2, 0xffffff);
        b.movTo(acc, m);
        b.aluiTo(Opcode::Add, i, i, 1);
        b.jmp(head);
    }

    b.setBlock(done);
    b.emitValue(acc);
    b.emitValue(nmatch);
    b.ret(acc);

    w.program.mainProc = main;
    w.program.memWords = kHash + 1024;

    auto pack = [](const std::vector<int64_t> &data) {
        std::vector<int64_t> mem(16, 0);
        mem[0] = int64_t(data.size());
        mem.insert(mem.end(), data.begin(), data.end());
        return mem;
    };
    w.train.memImage = pack(makeCompressibleData(0xc0de0001, 40000));
    w.test.memImage = pack(makeCompressibleData(0xc0de0002, 65000));
    return w;
}

Workload
makeEqntott()
{
    Workload w;
    w.name = "eqn";
    w.description = "Bit-vector comparison with a tiny guarded block";
    w.group = "SPECint92";

    // Memory: [0] = pair count P; vector pairs from kVecs: pair p
    // occupies 2*kLen words (A then B).
    constexpr int64_t kLen = 24;
    constexpr int64_t kVecs = 16;

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);
    const BlockId entry = b.currentBlock();
    const BlockId outer = b.newBlock();
    const BlockId pair_start = b.newBlock();
    const BlockId inner = b.newBlock();
    const BlockId differ = b.newBlock(); // the tiny guarded block
    const BlockId next_j = b.newBlock();
    const BlockId outer_latch = b.newBlock();
    const BlockId done = b.newBlock();

    const RegId zero = b.freshReg();
    const RegId npairs = b.freshReg();
    const RegId p = b.freshReg();
    const RegId acc = b.freshReg();
    const RegId base = b.freshReg();
    const RegId jj = b.freshReg();
    const RegId verdict = b.freshReg();

    b.setBlock(entry);
    b.ldiTo(zero, 0);
    b.ldTo(npairs, zero, 0);
    b.ldiTo(p, 0);
    b.ldiTo(acc, 0);
    b.jmp(outer);

    b.setBlock(outer);
    {
        const RegId c = b.alu(Opcode::CmpLt, p, npairs);
        b.brnz(c, pair_start, done);
    }

    b.setBlock(pair_start);
    {
        const RegId t = b.muli(p, 2 * kLen);
        b.aluiTo(Opcode::Add, base, t, kVecs);
        b.ldiTo(jj, 0);
        b.ldiTo(verdict, 0);
        b.jmp(inner);
    }

    b.setBlock(inner);
    {
        // The hot path: words equal, continue with the next word.
        // `differ` is the paper's "very small block guarded by a very
        // high-frequency branch" — taken at most once per pair.
        const RegId addr_a = b.add(base, jj);
        const RegId a = b.ld(addr_a, 0);
        const RegId bv = b.ld(addr_a, kLen);
        const RegId ne = b.alu(Opcode::CmpNe, a, bv);
        b.brnz(ne, differ, next_j);
    }

    b.setBlock(differ);
    {
        const RegId addr_a = b.add(base, jj);
        const RegId a = b.ld(addr_a, 0);
        const RegId bv = b.ld(addr_a, kLen);
        const RegId lt = b.alu(Opcode::CmpLt, a, bv);
        const RegId t = b.muli(lt, 2);
        b.aluiTo(Opcode::Sub, verdict, t, 1); // -1 or +1
        b.jmp(outer_latch);
    }

    b.setBlock(next_j);
    {
        b.aluiTo(Opcode::Add, jj, jj, 1);
        const RegId c = b.cmpLti(jj, kLen);
        b.brnz(c, inner, outer_latch);
    }

    b.setBlock(outer_latch);
    {
        const RegId t = b.muli(acc, 5);
        const RegId t2 = b.add(t, verdict);
        const RegId m = b.alui(Opcode::And, t2, 0xfffffff);
        b.movTo(acc, m);
        b.aluiTo(Opcode::Add, p, p, 1);
        b.jmp(outer);
    }

    b.setBlock(done);
    b.emitValue(acc);
    b.ret(acc);

    w.program.mainProc = main;

    auto makePairs = [&](uint64_t seed, int64_t pairs) {
        Rng rng(seed);
        std::vector<int64_t> mem(size_t(kVecs + pairs * 2 * kLen), 0);
        mem[0] = pairs;
        for (int64_t q = 0; q < pairs; ++q) {
            const size_t a0 = size_t(kVecs + q * 2 * kLen);
            for (int64_t k = 0; k < kLen; ++k) {
                const int64_t v = int64_t(rng.below(1 << 16));
                mem[a0 + size_t(k)] = v;
                mem[a0 + size_t(kLen + k)] = v; // B starts equal to A
            }
            // ~85% of pairs differ, always in the last few words, so
            // the inner loop usually runs nearly to completion.
            if (rng.chance(0.85)) {
                const size_t at = size_t(kLen - 1 - int64_t(rng.below(3)));
                mem[a0 + size_t(kLen) + at] ^= 1 + int64_t(rng.below(7));
            }
        }
        return mem;
    };
    w.train.memImage = makePairs(0xe9000001, 1500);
    w.test.memImage = makePairs(0xe9000002, 2400);
    w.program.memWords = uint64_t(kVecs + 2400 * 2 * kLen + 8);
    return w;
}

Workload
makeEspresso()
{
    Workload w;
    w.name = "esp";
    w.description = "Cube intersection over bit matrices";
    w.group = "SPECint92";

    // Memory: [0] = repeat count, [1] = rows; matrix of rows x kCols
    // words from kMat.
    constexpr int64_t kCols = 8;
    constexpr int64_t kMat = 16;

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);
    const BlockId entry = b.currentBlock();
    const BlockId rep_head = b.newBlock();
    const BlockId r1_head = b.newBlock();
    const BlockId r2_head = b.newBlock();
    const BlockId col_head = b.newBlock();
    const BlockId col_body = b.newBlock();
    const BlockId hit = b.newBlock();
    const BlockId miss = b.newBlock();
    const BlockId col_latch = b.newBlock();
    const BlockId r2_latch = b.newBlock();
    const BlockId r1_latch = b.newBlock();
    const BlockId rep_latch = b.newBlock();
    const BlockId done = b.newBlock();

    const RegId zero = b.freshReg();
    const RegId reps = b.freshReg();
    const RegId rows = b.freshReg();
    const RegId rep = b.freshReg();
    const RegId r1 = b.freshReg();
    const RegId r2 = b.freshReg();
    const RegId col = b.freshReg();
    const RegId weight = b.freshReg();
    const RegId empties = b.freshReg();
    const RegId a1 = b.freshReg();
    const RegId a2 = b.freshReg();

    b.setBlock(entry);
    b.ldiTo(zero, 0);
    b.ldTo(reps, zero, 0);
    b.ldTo(rows, zero, 1);
    b.ldiTo(rep, 0);
    b.ldiTo(weight, 0);
    b.ldiTo(empties, 0);
    b.jmp(rep_head);

    b.setBlock(rep_head);
    {
        const RegId c = b.alu(Opcode::CmpLt, rep, reps);
        b.brnz(c, r1_head, done);
    }

    b.setBlock(r1_head);
    b.ldiTo(r1, 0);
    b.jmp(r2_head);

    b.setBlock(r2_head);
    {
        b.aluiTo(Opcode::Add, r2, r1, 1);
        const RegId t1 = b.muli(r1, kCols);
        b.aluiTo(Opcode::Add, a1, t1, kMat);
        const RegId c = b.alu(Opcode::CmpLt, r2, rows);
        b.brnz(c, col_head, r1_latch);
    }

    b.setBlock(col_head);
    {
        const RegId t2 = b.muli(r2, kCols);
        b.aluiTo(Opcode::Add, a2, t2, kMat);
        b.ldiTo(col, 0);
        b.jmp(col_body);
    }

    b.setBlock(col_body);
    {
        const RegId p1 = b.add(a1, col);
        const RegId p2 = b.add(a2, col);
        const RegId x = b.ld(p1, 0);
        const RegId y = b.ld(p2, 0);
        const RegId t = b.alu(Opcode::And, x, y);
        b.brnz(t, hit, miss);
    }

    b.setBlock(hit);
    {
        const RegId p1 = b.add(a1, col);
        const RegId x = b.ld(p1, 0);
        const RegId low = b.alui(Opcode::And, x, 7);
        b.aluTo(Opcode::Add, weight, weight, low);
        b.jmp(col_latch);
    }

    b.setBlock(miss);
    b.aluiTo(Opcode::Add, empties, empties, 1);
    b.jmp(col_latch);

    b.setBlock(col_latch);
    {
        b.aluiTo(Opcode::Add, col, col, 1);
        const RegId c = b.cmpLti(col, kCols);
        b.brnz(c, col_body, r2_latch);
    }

    b.setBlock(r2_latch);
    {
        b.aluiTo(Opcode::Add, r2, r2, 1);
        const RegId c = b.alu(Opcode::CmpLt, r2, rows);
        b.brnz(c, col_head, r1_latch);
    }

    b.setBlock(r1_latch);
    {
        b.aluiTo(Opcode::Add, r1, r1, 1);
        const RegId lim = b.alui(Opcode::Sub, rows, 1);
        const RegId c = b.alu(Opcode::CmpLt, r1, lim);
        b.brnz(c, r2_head, rep_latch);
    }

    b.setBlock(rep_latch);
    b.aluiTo(Opcode::Add, rep, rep, 1);
    b.jmp(rep_head);

    b.setBlock(done);
    b.emitValue(weight);
    b.emitValue(empties);
    {
        const RegId r = b.add(weight, empties);
        b.ret(r);
    }

    w.program.mainProc = main;

    auto makeMatrix = [&](uint64_t seed, int64_t reps_v, int64_t rows_v) {
        Rng rng(seed);
        std::vector<int64_t> mem(size_t(kMat + rows_v * kCols), 0);
        mem[0] = reps_v;
        mem[1] = rows_v;
        for (size_t k = size_t(kMat); k < mem.size(); ++k) {
            // ~45% zero words so the hit/miss branch stays data
            // dependent but biased.
            mem[k] = rng.chance(0.45) ? 0 : int64_t(rng.below(256));
        }
        return mem;
    };
    w.train.memImage = makeMatrix(0xe5b0001, 35, 24);
    w.test.memImage = makeMatrix(0xe5b0002, 45, 26);
    w.program.memWords = uint64_t(kMat + 26 * kCols + 8);
    return w;
}

Workload
makeIjpeg()
{
    Workload w;
    w.name = "ijpeg";
    w.description = "DCT-like transform and quantization of 8x8 blocks";
    w.group = "SPECint95";

    // Memory: [0] = number of 8x8 blocks; samples from kPix, 64 words
    // per block.
    constexpr int64_t kPix = 16;

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);
    const BlockId entry = b.currentBlock();
    const BlockId blk_head = b.newBlock();
    const BlockId row_body = b.newBlock();
    const BlockId quant_head = b.newBlock();
    const BlockId quant_body = b.newBlock();
    const BlockId quant_small = b.newBlock();
    const BlockId quant_big = b.newBlock();
    const BlockId quant_latch = b.newBlock();
    const BlockId advance = b.newBlock();
    const BlockId done = b.newBlock();

    const RegId zero = b.freshReg();
    const RegId nblocks = b.freshReg();
    const RegId blk = b.freshReg();
    const RegId row = b.freshReg();
    const RegId q = b.freshReg();
    const RegId acc = b.freshReg();
    const RegId nbig = b.freshReg();
    const RegId base = b.freshReg();

    b.setBlock(entry);
    b.ldiTo(zero, 0);
    b.ldTo(nblocks, zero, 0);
    b.ldiTo(blk, 0);
    b.ldiTo(acc, 0);
    b.ldiTo(nbig, 0);
    b.jmp(blk_head);

    b.setBlock(blk_head);
    {
        const RegId t = b.muli(blk, 64);
        b.aluiTo(Opcode::Add, base, t, kPix);
        b.ldiTo(row, 0);
        const RegId c = b.alu(Opcode::CmpLt, blk, nblocks);
        b.brnz(c, row_body, done);
    }

    // One straight-line 8-point butterfly per row: a big basic block of
    // mostly independent arithmetic — the ILP-rich, predictable inner
    // loop that makes ijpeg love wide issue.
    b.setBlock(row_body);
    {
        const RegId roff = b.muli(row, 8);
        const RegId ra = b.add(base, roff);
        const RegId x0 = b.ld(ra, 0);
        const RegId x1 = b.ld(ra, 1);
        const RegId x2 = b.ld(ra, 2);
        const RegId x3 = b.ld(ra, 3);
        const RegId x4 = b.ld(ra, 4);
        const RegId x5 = b.ld(ra, 5);
        const RegId x6 = b.ld(ra, 6);
        const RegId x7 = b.ld(ra, 7);
        const RegId s07 = b.add(x0, x7);
        const RegId d07 = b.sub(x0, x7);
        const RegId s16 = b.add(x1, x6);
        const RegId d16 = b.sub(x1, x6);
        const RegId s25 = b.add(x2, x5);
        const RegId d25 = b.sub(x2, x5);
        const RegId s34 = b.add(x3, x4);
        const RegId d34 = b.sub(x3, x4);
        const RegId e0 = b.add(s07, s34);
        const RegId e1 = b.add(s16, s25);
        const RegId e2 = b.sub(s07, s34);
        const RegId e3 = b.sub(s16, s25);
        const RegId o0 = b.muli(d07, 3);
        const RegId o1 = b.muli(d16, 5);
        const RegId o2 = b.muli(d25, 7);
        const RegId o3 = b.muli(d34, 9);
        const RegId f0 = b.add(e0, e1);
        const RegId f1 = b.sub(e0, e1);
        const RegId f2 = b.add(e2, e3);
        const RegId g0 = b.add(o0, o1);
        const RegId g1 = b.add(o2, o3);
        const RegId h0 = b.add(f0, g0);
        const RegId h1 = b.add(f1, g1);
        const RegId h2 = b.add(f2, h0);
        b.st(ra, 0, h0);
        b.st(ra, 1, h1);
        b.st(ra, 2, h2);
        const RegId t1 = b.alui(Opcode::And, h2, 0xffff);
        b.aluTo(Opcode::Add, acc, acc, t1);
        b.aluiTo(Opcode::Add, row, row, 1);
        const RegId c = b.cmpLti(row, 8);
        b.brnz(c, row_body, quant_head);
    }

    b.setBlock(quant_head);
    b.ldiTo(q, 0);
    b.jmp(quant_body);

    // Quantization: biased magnitude test (most coefficients small).
    b.setBlock(quant_body);
    {
        const RegId qa = b.add(base, q);
        const RegId v = b.ld(qa, 0);
        const RegId m = b.alui(Opcode::And, v, 0x3ff);
        const RegId big = b.alui(Opcode::CmpGt, m, 900);
        b.brnz(big, quant_big, quant_small);
    }

    b.setBlock(quant_small);
    {
        const RegId qa = b.add(base, q);
        const RegId v = b.ld(qa, 0);
        const RegId t = b.alui(Opcode::Shr, v, 3);
        b.aluTo(Opcode::Xor, acc, acc, t);
        b.jmp(quant_latch);
    }

    b.setBlock(quant_big);
    {
        b.aluiTo(Opcode::Add, nbig, nbig, 1);
        const RegId t = b.muli(acc, 3);
        const RegId m = b.alui(Opcode::And, t, 0xffffff);
        b.movTo(acc, m);
        b.jmp(quant_latch);
    }

    b.setBlock(quant_latch);
    {
        b.aluiTo(Opcode::Add, q, q, 1);
        const RegId more_q = b.cmpLti(q, 64);
        b.brnz(more_q, quant_body, advance);
    }

    b.setBlock(advance);
    b.aluiTo(Opcode::Add, blk, blk, 1);
    b.jmp(blk_head);

    b.setBlock(done);
    b.emitValue(acc);
    b.emitValue(nbig);
    b.ret(acc);

    w.program.mainProc = main;

    auto makeBlocks = [&](uint64_t seed, int64_t blocks) {
        Rng rng(seed);
        std::vector<int64_t> mem(size_t(kPix + blocks * 64), 0);
        mem[0] = blocks;
        for (size_t k = size_t(kPix); k < mem.size(); ++k)
            mem[k] = int64_t(rng.below(256)) - 128;
        return mem;
    };
    w.train.memImage = makeBlocks(0x1b3c0001, 500);
    w.test.memImage = makeBlocks(0x1b3c0002, 800);
    w.program.memWords = uint64_t(kPix + 800 * 64 + 8);
    return w;
}

Workload
makeVortex()
{
    Workload w;
    w.name = "vortex";
    w.description = "Record database: insert, lookup, validate";
    w.group = "SPECint95";

    // Memory: [0] = operation count; op words from kOps; record store
    // from kRecs (8 words per record); hash index of 512 buckets with
    // one size word plus 4 chain slots each, from kIndex.
    constexpr int64_t kOps = 16;
    constexpr int64_t kMaxOps = 30000;
    constexpr int64_t kRecs = kOps + kMaxOps;
    constexpr int64_t kMaxRecs = 20000;
    constexpr int64_t kIndex = kRecs + kMaxRecs * 8;
    constexpr int64_t kBuckets = 512;

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);
    const ProcId insert = b.newProc("insert", 2);     // (key, recno)
    const ProcId lookup = b.newProc("lookup", 1);     // key -> recno+1|0
    const ProcId validate = b.newProc("validate", 1); // recno -> 0/1

    // --- insert(key, recno): store a record, link into the index ---
    {
        b.setProc(insert);
        const BlockId ientry = 0;
        const BlockId store = b.newBlock();
        const BlockId full = b.newBlock();

        const RegId key = b.param(0);
        const RegId rec = b.param(1);
        const RegId slot = b.freshReg();

        b.setBlock(ientry);
        {
            const RegId t = b.muli(rec, 8);
            const RegId ra = b.addi(t, kRecs);
            b.st(ra, 0, key);
            const RegId f1 = b.muli(key, 3);
            b.st(ra, 1, f1);
            const RegId f2 = b.alui(Opcode::Xor, key, 0x5a5a);
            b.st(ra, 2, f2);
            const RegId f3 = b.add(f1, f2);
            b.st(ra, 3, f3);
            b.st(ra, 4, key);
            const RegId h = b.alui(Opcode::And, key, kBuckets - 1);
            const RegId ba = b.muli(h, 5);
            b.aluiTo(Opcode::Add, slot, ba, kIndex);
            const RegId used = b.ld(slot, 0);
            const RegId c = b.cmpLti(used, 4);
            b.brnz(c, store, full);
        }

        b.setBlock(store);
        {
            const RegId used = b.ld(slot, 0);
            const RegId sa = b.add(slot, used);
            const RegId rp1 = b.addi(rec, 1);
            b.st(sa, 1, rp1);
            const RegId up1 = b.addi(used, 1);
            b.st(slot, 0, up1);
            b.ret(rec);
        }

        b.setBlock(full);
        {
            // Overwrite the first chain slot (bounded chains keep
            // lookups short and predictable).
            const RegId rp1 = b.addi(rec, 1);
            b.st(slot, 1, rp1);
            b.ret(rec);
        }
    }

    // --- lookup(key): probe the bucket chain ---
    {
        b.setProc(lookup);
        const BlockId lentry = 0;
        const BlockId probe = b.newBlock();
        const BlockId compare = b.newBlock();
        const BlockId found = b.newBlock();
        const BlockId next = b.newBlock();
        const BlockId missing = b.newBlock();

        const RegId key = b.param(0);
        const RegId slot = b.freshReg();
        const RegId k = b.freshReg();
        const RegId recno = b.freshReg();

        b.setBlock(lentry);
        {
            const RegId h = b.alui(Opcode::And, key, kBuckets - 1);
            const RegId ba = b.muli(h, 5);
            b.aluiTo(Opcode::Add, slot, ba, kIndex);
            b.ldiTo(k, 0);
            b.jmp(probe);
        }

        b.setBlock(probe);
        {
            const RegId used = b.ld(slot, 0);
            const RegId c = b.alu(Opcode::CmpLt, k, used);
            b.brnz(c, compare, missing);
        }

        b.setBlock(compare);
        {
            const RegId sa = b.add(slot, k);
            const RegId rp1 = b.ld(sa, 1);
            b.aluiTo(Opcode::Sub, recno, rp1, 1);
            const RegId t = b.muli(recno, 8);
            const RegId ra = b.addi(t, kRecs);
            const RegId stored = b.ld(ra, 0);
            const RegId e = b.cmpEq(stored, key);
            b.brnz(e, found, next);
        }

        b.setBlock(found);
        {
            const RegId rp1 = b.addi(recno, 1);
            b.ret(rp1);
        }

        b.setBlock(next);
        b.aluiTo(Opcode::Add, k, k, 1);
        b.jmp(probe);

        b.setBlock(missing);
        {
            const RegId z = b.ldi(0);
            b.ret(z);
        }
    }

    // --- validate(recno): field consistency checks, almost always ok ---
    {
        b.setProc(validate);
        const BlockId ventry = 0;
        const BlockId chk2 = b.newBlock();
        const BlockId ok = b.newBlock();
        const BlockId bad = b.newBlock();

        const RegId recno = b.param(0);

        b.setBlock(ventry);
        {
            const RegId t = b.muli(recno, 8);
            const RegId ra = b.addi(t, kRecs);
            const RegId key = b.ld(ra, 0);
            const RegId f1 = b.ld(ra, 1);
            const RegId expect = b.muli(key, 3);
            const RegId e = b.cmpEq(f1, expect);
            b.brnz(e, chk2, bad);
        }

        b.setBlock(chk2);
        {
            const RegId t = b.muli(recno, 8);
            const RegId ra = b.addi(t, kRecs);
            const RegId key = b.ld(ra, 0);
            const RegId f2 = b.ld(ra, 2);
            const RegId expect = b.alui(Opcode::Xor, key, 0x5a5a);
            const RegId e = b.cmpEq(f2, expect);
            b.brnz(e, ok, bad);
        }

        b.setBlock(ok);
        {
            const RegId one = b.ldi(1);
            b.ret(one);
        }
        b.setBlock(bad);
        {
            const RegId z = b.ldi(0);
            b.ret(z);
        }
    }

    // --- main: drive the operation stream ---
    {
        b.setProc(main);
        const BlockId mentry = 0;
        const BlockId head = b.newBlock();
        const BlockId dispatch = b.newBlock();
        const BlockId do_insert = b.newBlock();
        const BlockId look_or_val = b.newBlock();
        const BlockId do_lookup = b.newBlock();
        const BlockId do_validate = b.newBlock();
        const BlockId have_rec = b.newBlock();
        const BlockId latch = b.newBlock();
        const BlockId done = b.newBlock();

        const RegId zero = b.freshReg();
        const RegId nops = b.freshReg();
        const RegId i = b.freshReg();
        const RegId acc = b.freshReg();
        const RegId inserted = b.freshReg();
        const RegId key = b.freshReg();
        const RegId kind = b.freshReg();

        b.setBlock(mentry);
        b.ldiTo(zero, 0);
        b.ldTo(nops, zero, 0);
        b.ldiTo(i, 0);
        b.ldiTo(acc, 0);
        b.ldiTo(inserted, 0);
        b.jmp(head);

        b.setBlock(head);
        {
            const RegId c = b.alu(Opcode::CmpLt, i, nops);
            b.brnz(c, dispatch, done);
        }

        b.setBlock(dispatch);
        {
            const RegId oa = b.addi(i, kOps);
            const RegId op = b.ld(oa, 0);
            b.aluiTo(Opcode::And, key, op, 0xffff);
            b.aluiTo(Opcode::Shr, kind, op, 16); // kind bucket 0..9
            const RegId is_ins = b.cmpLti(kind, 5);
            b.brnz(is_ins, do_insert, look_or_val);
        }

        b.setBlock(do_insert);
        {
            const RegId rec = b.callValue(insert, {key, inserted});
            b.aluiTo(Opcode::Add, inserted, inserted, 1);
            b.aluTo(Opcode::Xor, acc, acc, rec);
            b.jmp(latch);
        }

        b.setBlock(look_or_val);
        {
            const RegId is_look = b.cmpLti(kind, 9);
            b.brnz(is_look, do_lookup, do_validate);
        }

        b.setBlock(do_lookup);
        {
            const RegId r = b.callValue(lookup, {key});
            b.aluTo(Opcode::Add, acc, acc, r);
            b.jmp(latch);
        }

        b.setBlock(do_validate);
        {
            const RegId r = b.callValue(lookup, {key});
            b.brnz(r, have_rec, latch);
        }

        b.setBlock(have_rec);
        {
            const RegId r = b.callValue(lookup, {key});
            const RegId recno = b.alui(Opcode::Sub, r, 1);
            const RegId v = b.callValue(validate, {recno});
            b.aluTo(Opcode::Add, acc, acc, v);
            b.jmp(latch);
        }

        b.setBlock(latch);
        b.aluiTo(Opcode::Add, i, i, 1);
        b.jmp(head);

        b.setBlock(done);
        b.emitValue(acc);
        b.emitValue(inserted);
        b.ret(acc);
    }

    w.program.mainProc = main;

    auto makeOps = [&](uint64_t seed, int64_t count) {
        Rng rng(seed);
        std::vector<int64_t> mem(size_t(kOps + count), 0);
        mem[0] = count;
        for (int64_t k = 0; k < count; ++k) {
            const int64_t kind = int64_t(rng.below(10));
            const int64_t key = int64_t(rng.below(4096));
            mem[size_t(kOps + k)] = (kind << 16) | key;
        }
        return mem;
    };
    w.train.memImage = makeOps(0x7c0de001, 12000);
    w.test.memImage = makeOps(0x7c0de002, 20000);
    w.program.memWords = uint64_t(kIndex + kBuckets * 5 + 8);
    return w;
}

} // namespace pathsched::workloads
