/**
 * @file
 * Call-heavy and interpreter-style workloads: gcc, go, li, m88k(sim)
 * and perl.
 *
 * Control-flow characters per the paper's discussion (§4):
 *  - gcc: many procedures, large code footprint, irregular branch
 *    probabilities — code expansion raises its I-cache miss rate;
 *  - go: low-iteration-count loops and frequent procedure calls with
 *    poorly predictable branches ("unrolling alone is insufficient");
 *  - li: a recursive expression interpreter — frequent calls, little
 *    to unroll;
 *  - m88ksim: a fetch/decode/execute loop whose dispatch follows a
 *    dominant opcode mix;
 *  - perl: a bytecode VM whose dispatch *sequence* repeats with the
 *    interpreted program's loop — exactly the cross-iteration branch
 *    correlation that general paths capture and edge profiles cannot.
 */

#include "workloads/workloads.hpp"

#include "ir/builder.hpp"
#include "support/rng.hpp"

namespace pathsched::workloads {

using ir::BlockId;
using ir::IrBuilder;
using ir::Opcode;
using ir::ProcId;
using ir::RegId;

Workload
makeLi()
{
    Workload w;
    w.name = "li";
    w.description = "Recursive expression-tree interpreter";
    w.group = "SPECint95";

    // Memory: [0] = root count, [1] = repeat count; root node indices
    // from kRoots; an association list (env) of 3-word cells
    // [key, value, next+1] from kEnv (8 cells); expression nodes of 4
    // words [op, left, right, value] from kNodes.  op 0 = leaf (value
    // is an env key), 1 = add, 2 = mul, 3 = xor.
    constexpr int64_t kRoots = 16;
    constexpr int64_t kMaxRoots = 64;
    constexpr int64_t kEnv = kRoots + kMaxRoots;
    constexpr int64_t kEnvCells = 8;
    constexpr int64_t kNodes = kEnv + kEnvCells * 3;

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);
    const ProcId eval = b.newProc("eval", 1);   // node index -> value
    const ProcId env_get = b.newProc("envGet", 1); // key -> value

    // --- envGet(key): assoc-list walk, xlisp style ---
    {
        b.setProc(env_get);
        const BlockId entry = 0;
        const BlockId walk = b.newBlock();
        const BlockId found = b.newBlock();
        const BlockId next = b.newBlock();
        const BlockId missing = b.newBlock();

        const RegId key = b.param(0);
        const RegId cell = b.freshReg();

        b.setBlock(entry);
        b.ldiTo(cell, 0); // head cell index
        b.jmp(walk);

        b.setBlock(walk);
        {
            const RegId t = b.muli(cell, 3);
            const RegId ca = b.addi(t, kEnv);
            const RegId k = b.ld(ca, 0);
            const RegId e = b.cmpEq(k, key);
            b.brnz(e, found, next);
        }

        b.setBlock(found);
        {
            const RegId t = b.muli(cell, 3);
            const RegId ca = b.addi(t, kEnv);
            const RegId v = b.ld(ca, 1);
            b.ret(v);
        }

        b.setBlock(next);
        {
            const RegId t = b.muli(cell, 3);
            const RegId ca = b.addi(t, kEnv);
            const RegId link = b.ld(ca, 2); // next+1, 0 terminates
            b.movTo(cell, b.alui(Opcode::Sub, link, 1));
            b.brnz(link, walk, missing);
        }

        b.setBlock(missing);
        {
            const RegId z = b.ldi(0);
            b.ret(z);
        }
    }

    {
        b.setProc(eval);
        const BlockId entry = 0;
        const BlockId inner = b.newBlock();
        const BlockId is_add = b.newBlock();
        const BlockId not_add = b.newBlock();
        const BlockId is_mul = b.newBlock();
        const BlockId is_xor = b.newBlock();
        const BlockId leaf = b.newBlock();

        const RegId idx = b.param(0);
        const RegId ra = b.freshReg();
        const RegId op = b.freshReg();
        const RegId lv = b.freshReg();
        const RegId rv = b.freshReg();

        b.setBlock(entry);
        {
            const RegId t = b.muli(idx, 4);
            b.aluiTo(Opcode::Add, ra, t, kNodes);
            b.ldTo(op, ra, 0);
            b.brnz(op, inner, leaf);
        }

        b.setBlock(inner);
        {
            const RegId l = b.ld(ra, 1);
            const RegId r = b.ld(ra, 2);
            const RegId lval = b.callValue(eval, {l});
            b.movTo(lv, lval);
            const RegId rval = b.callValue(eval, {r});
            b.movTo(rv, rval);
            const RegId c = b.cmpEqi(op, 1);
            b.brnz(c, is_add, not_add);
        }

        b.setBlock(is_add);
        {
            const RegId s = b.add(lv, rv);
            b.ret(s);
        }

        b.setBlock(not_add);
        {
            const RegId c = b.cmpEqi(op, 2);
            b.brnz(c, is_mul, is_xor);
        }

        b.setBlock(is_mul);
        {
            const RegId s = b.mul(lv, rv);
            const RegId m = b.alui(Opcode::And, s, 0xffffff);
            b.ret(m);
        }

        b.setBlock(is_xor);
        {
            const RegId s = b.alu(Opcode::Xor, lv, rv);
            const RegId s3 = b.addi(s, 3);
            b.ret(s3);
        }

        b.setBlock(leaf);
        {
            const RegId k = b.ld(ra, 3);
            const RegId v = b.callValue(env_get, {k});
            b.ret(v);
        }
    }

    {
        b.setProc(main);
        const BlockId entry = 0;
        const BlockId rep_head = b.newBlock();
        const BlockId tree_head = b.newBlock();
        const BlockId tree_body = b.newBlock();
        const BlockId rep_latch = b.newBlock();
        const BlockId done = b.newBlock();

        const RegId zero = b.freshReg();
        const RegId nroots = b.freshReg();
        const RegId reps = b.freshReg();
        const RegId rep = b.freshReg();
        const RegId r = b.freshReg();
        const RegId acc = b.freshReg();

        b.setBlock(entry);
        b.ldiTo(zero, 0);
        b.ldTo(nroots, zero, 0);
        b.ldTo(reps, zero, 1);
        b.ldiTo(rep, 0);
        b.ldiTo(acc, 0);
        b.jmp(rep_head);

        b.setBlock(rep_head);
        {
            const RegId c = b.alu(Opcode::CmpLt, rep, reps);
            b.brnz(c, tree_head, done);
        }

        b.setBlock(tree_head);
        b.ldiTo(r, 0);
        b.jmp(tree_body);

        b.setBlock(tree_body);
        {
            const RegId addr = b.addi(r, kRoots);
            const RegId root = b.ld(addr, 0);
            const RegId v = b.callValue(eval, {root});
            b.aluTo(Opcode::Xor, acc, acc, v);
            b.aluiTo(Opcode::Add, r, r, 1);
            const RegId c = b.alu(Opcode::CmpLt, r, nroots);
            b.brnz(c, tree_body, rep_latch);
        }

        b.setBlock(rep_latch);
        b.aluiTo(Opcode::Add, rep, rep, 1);
        b.jmp(rep_head);

        b.setBlock(done);
        b.emitValue(acc);
        b.ret(acc);
    }

    w.program.mainProc = main;

    // Host-side tree builder: random topology, ops skewed toward add.
    auto makeTrees = [&](uint64_t seed, int64_t roots, int64_t reps) {
        Rng rng(seed);
        std::vector<int64_t> nodes; // flat [op,l,r,v] quads
        auto addNode = [&](int64_t op, int64_t l, int64_t r, int64_t v) {
            nodes.insert(nodes.end(), {op, l, r, v});
            return int64_t(nodes.size() / 4 - 1);
        };
        // Recursive build via explicit generator lambda.
        auto build = [&](auto &&self, int depth) -> int64_t {
            if (depth >= 6 || (depth > 1 && rng.chance(0.30))) {
                // Leaf: an env key, skewed toward the front of the
                // assoc list so lookups usually end in 1-3 steps.
                const int64_t key =
                    rng.chance(0.85) ? int64_t(rng.below(2))
                                     : int64_t(rng.below(kEnvCells));
                return addNode(0, 0, 0, key);
            }
            const double pick = rng.uniform();
            const int64_t op = pick < 0.6 ? 1 : pick < 0.85 ? 2 : 3;
            const int64_t l = self(self, depth + 1);
            const int64_t r = self(self, depth + 1);
            return addNode(op, l, r, 0);
        };
        std::vector<int64_t> mem(size_t(kNodes), 0);
        mem[0] = roots;
        mem[1] = reps;
        // Assoc list: cell i holds key i, value, link to cell i+1.
        for (int64_t c = 0; c < kEnvCells; ++c) {
            const size_t at = size_t(kEnv + c * 3);
            mem[at] = c;
            mem[at + 1] = int64_t(rng.below(1000));
            mem[at + 2] = c + 1 < kEnvCells ? c + 2 : 0;
        }
        for (int64_t t = 0; t < roots; ++t)
            mem[size_t(kRoots + t)] = build(build, 0);
        mem.insert(mem.end(), nodes.begin(), nodes.end());
        return mem;
    };
    w.train.memImage = makeTrees(0x11a11001, 24, 70);
    w.test.memImage = makeTrees(0x11a11002, 24, 120);
    const size_t words = std::max(w.train.memImage.size(),
                                  w.test.memImage.size());
    w.program.memWords = words + 16;
    return w;
}

Workload
makeGo()
{
    Workload w;
    w.name = "go";
    w.description = "Board evaluation: short loops, frequent calls";
    w.group = "SPECint95";

    // Memory: [0] = move count; 21x21 board (sentinel border value 3)
    // from kBoard; candidate positions from kMoves; neighbor deltas at
    // kDeltas.
    constexpr int64_t kBoard = 16;
    constexpr int64_t kSize = 21;
    constexpr int64_t kMoves = kBoard + kSize * kSize;
    constexpr int64_t kMaxMoves = 30000;
    constexpr int64_t kDeltas = kMoves + kMaxMoves;

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);
    const ProcId liberties = b.newProc("liberties", 1); // pos -> 0..4
    const ProcId eval_point = b.newProc("evalPoint", 1); // pos -> score

    // --- liberties(pos): count empty neighbors, early exit at 2 ---
    {
        b.setProc(liberties);
        const BlockId entry = 0;
        const BlockId loop = b.newBlock();
        const BlockId empty = b.newBlock();
        const BlockId latch = b.newBlock();
        const BlockId out = b.newBlock();

        const RegId pos = b.param(0);
        const RegId d = b.freshReg();
        const RegId libs = b.freshReg();

        b.setBlock(entry);
        b.ldiTo(d, 0);
        b.ldiTo(libs, 0);
        b.jmp(loop);

        b.setBlock(loop);
        {
            const RegId da = b.addi(d, kDeltas);
            const RegId delta = b.ld(da, 0);
            const RegId nb = b.add(pos, delta);
            const RegId na = b.addi(nb, kBoard);
            const RegId v = b.ld(na, 0);
            const RegId is_empty = b.cmpEqi(v, 0);
            b.brnz(is_empty, empty, latch);
        }

        b.setBlock(empty);
        {
            b.aluiTo(Opcode::Add, libs, libs, 1);
            const RegId enough = b.alui(Opcode::CmpGe, libs, 2);
            b.brnz(enough, out, latch); // early exit: 2 is enough
        }

        b.setBlock(latch);
        {
            b.aluiTo(Opcode::Add, d, d, 1);
            const RegId c = b.cmpLti(d, 4);
            b.brnz(c, loop, out);
        }

        b.setBlock(out);
        b.ret(libs);
    }

    // --- evalPoint(pos): classify the four neighbors ---
    {
        b.setProc(eval_point);
        const BlockId entry = 0;
        const BlockId loop = b.newBlock();
        const BlockId empty = b.newBlock();
        const BlockId stone = b.newBlock();
        const BlockId mine = b.newBlock();
        const BlockId not_mine = b.newBlock();
        const BlockId theirs = b.newBlock();
        const BlockId latch = b.newBlock();
        const BlockId out = b.newBlock();

        const RegId pos = b.param(0);
        const RegId d = b.freshReg();
        const RegId score = b.freshReg();

        b.setBlock(entry);
        b.ldiTo(d, 0);
        b.ldiTo(score, 0);
        b.jmp(loop);

        b.setBlock(loop);
        {
            const RegId da = b.addi(d, kDeltas);
            const RegId delta = b.ld(da, 0);
            const RegId nb = b.add(pos, delta);
            const RegId na = b.addi(nb, kBoard);
            const RegId v = b.ld(na, 0);
            const RegId is_empty = b.cmpEqi(v, 0);
            b.brnz(is_empty, empty, stone);
        }

        b.setBlock(empty);
        b.aluiTo(Opcode::Add, score, score, 1);
        b.jmp(latch);

        b.setBlock(stone);
        {
            const RegId da = b.addi(d, kDeltas);
            const RegId delta = b.ld(da, 0);
            const RegId nb = b.add(pos, delta);
            const RegId na = b.addi(nb, kBoard);
            const RegId v = b.ld(na, 0);
            const RegId is_mine = b.cmpEqi(v, 1);
            b.brnz(is_mine, mine, not_mine);
        }

        b.setBlock(not_mine);
        {
            // Border sentinels (value 3) are stones of neither colour;
            // never chase their liberties.
            const RegId da = b.addi(d, kDeltas);
            const RegId delta = b.ld(da, 0);
            const RegId nb = b.add(pos, delta);
            const RegId na = b.addi(nb, kBoard);
            const RegId v = b.ld(na, 0);
            const RegId is_theirs = b.cmpEqi(v, 2);
            b.brnz(is_theirs, theirs, latch);
        }

        b.setBlock(mine);
        {
            const RegId da = b.addi(d, kDeltas);
            const RegId delta = b.ld(da, 0);
            const RegId nb = b.add(pos, delta);
            const RegId l = b.callValue(liberties, {nb});
            const RegId t = b.muli(l, 2);
            b.aluTo(Opcode::Add, score, score, t);
            b.jmp(latch);
        }

        b.setBlock(theirs);
        {
            const RegId da = b.addi(d, kDeltas);
            const RegId delta = b.ld(da, 0);
            const RegId nb = b.add(pos, delta);
            const RegId l = b.callValue(liberties, {nb});
            const RegId one = b.ldi(1);
            const RegId weak = b.sub(one, l); // negative when alive
            b.aluTo(Opcode::Add, score, score, weak);
            b.jmp(latch);
        }

        b.setBlock(latch);
        {
            b.aluiTo(Opcode::Add, d, d, 1);
            const RegId c = b.cmpLti(d, 4);
            b.brnz(c, loop, out);
        }

        b.setBlock(out);
        b.ret(score);
    }

    // --- generated pattern evaluators ---
    // Real go engines carry hundreds of pattern-matching routines;
    // this family gives the workload a realistically large static
    // footprint so code-expanding formation shows up in the I-cache
    // (the paper: go's miss rate rises from 2.53% to 4.67% under the
    // path-based approach).
    constexpr int kPatterns = 256;
    std::vector<ProcId> patterns;
    for (int k = 0; k < kPatterns; ++k) {
        Rng shape(0x60900000ULL + uint64_t(k));
        const ProcId pk = b.newProc("pattern" + std::to_string(k), 1);
        patterns.push_back(pk);
        const RegId pos = b.param(0);
        const BlockId armA = b.newBlock();
        const BlockId armB = b.newBlock();
        const BlockId join = b.newBlock();
        const RegId pacc = b.freshReg();

        b.setBlock(0);
        {
            RegId v = pos;
            const int pre = 3 + int(shape.below(6));
            for (int i = 0; i < pre; ++i)
                v = b.alui(shape.chance(0.5) ? Opcode::Add : Opcode::Xor,
                           v, int64_t(1 + shape.below(127)));
            b.movTo(pacc, v);
            const RegId na = b.addi(pos, kBoard);
            const RegId bv = b.ld(na, 0);
            b.brnz(bv, armA, armB);
        }

        b.setBlock(armA);
        {
            RegId v = pacc;
            const int ops = 4 + int(shape.below(10));
            for (int i = 0; i < ops; ++i)
                v = b.alui(shape.chance(0.6) ? Opcode::Add : Opcode::Xor,
                           v, int64_t(1 + shape.below(255)));
            if (shape.chance(0.3)) {
                const RegId l = b.callValue(liberties, {pos});
                v = b.add(v, l);
            }
            b.movTo(pacc, v);
            b.jmp(join);
        }

        b.setBlock(armB);
        {
            RegId v = pacc;
            const int ops = 4 + int(shape.below(10));
            for (int i = 0; i < ops; ++i)
                v = b.alui(shape.chance(0.6) ? Opcode::Xor : Opcode::Add,
                           v, int64_t(1 + shape.below(255)));
            b.movTo(pacc, v);
            b.jmp(join);
        }

        b.setBlock(join);
        {
            const RegId m = b.alui(Opcode::And, pacc, 0xffff);
            b.ret(m);
        }
    }

    // --- main ---
    {
        b.setProc(main);
        const BlockId entry = 0;
        const BlockId head = b.newBlock();
        const BlockId body = b.newBlock();
        const BlockId good = b.newBlock();
        const BlockId latch = b.newBlock();
        const BlockId done = b.newBlock();

        const RegId zero = b.freshReg();
        const RegId nmoves = b.freshReg();
        const RegId i = b.freshReg();
        const RegId acc = b.freshReg();
        const RegId best = b.freshReg();

        b.setBlock(entry);
        b.ldiTo(zero, 0);
        b.ldTo(nmoves, zero, 0);
        b.ldiTo(i, 0);
        b.ldiTo(acc, 0);
        b.ldiTo(best, 0);
        b.jmp(head);

        b.setBlock(head);
        {
            const RegId c = b.alu(Opcode::CmpLt, i, nmoves);
            b.brnz(c, body, done);
        }

        const RegId sel = b.freshReg();
        const RegId cur_pos = b.freshReg();
        const RegId cur_s = b.freshReg();
        const BlockId after = b.newBlock();
        std::vector<BlockId> leaves;
        for (int k = 0; k < kPatterns; ++k)
            leaves.push_back(b.newBlock());

        b.setBlock(body);
        {
            const RegId ma = b.addi(i, kMoves);
            b.ldTo(cur_pos, ma, 0);
            const RegId s = b.callValue(eval_point, {cur_pos});
            b.movTo(cur_s, s);
            b.aluTo(Opcode::Add, acc, acc, s);
            const RegId t1 = b.muli(s, 13);
            const RegId t2 = b.add(cur_pos, t1);
            b.aluiTo(Opcode::And, sel, t2, kPatterns - 1);
            b.jmp(head); // placeholder, patched onto the dispatch tree
        }

        // Binary decision tree over the pattern family.
        auto tree = [&](auto &&self, int lo, int hi) -> BlockId {
            if (hi - lo == 1)
                return leaves[size_t(lo)];
            const BlockId node = b.newBlock();
            const int mid = (lo + hi) / 2;
            const BlockId left = self(self, lo, mid);
            const BlockId right = self(self, mid, hi);
            b.setBlock(node);
            const RegId c = b.cmpLti(sel, mid);
            b.brnz(c, left, right);
            return node;
        };
        const BlockId root = tree(tree, 0, kPatterns);
        w.program.proc(main).blocks[body].terminator().target0 = root;

        for (int k = 0; k < kPatterns; ++k) {
            b.setBlock(leaves[size_t(k)]);
            const RegId v = b.callValue(patterns[size_t(k)], {cur_pos});
            b.aluTo(Opcode::Add, acc, acc, v);
            b.jmp(after);
        }

        b.setBlock(after);
        {
            const RegId better = b.alu(Opcode::CmpGt, cur_s, best);
            b.brnz(better, good, latch);
        }

        b.setBlock(good);
        {
            const RegId s = b.callValue(eval_point, {cur_pos});
            b.movTo(best, s);
            b.jmp(latch);
        }

        b.setBlock(latch);
        {
            b.aluiTo(Opcode::Add, i, i, 1);
            b.jmp(head);
        }

        b.setBlock(done);
        b.emitValue(acc);
        b.emitValue(best);
        b.ret(acc);
    }

    w.program.mainProc = main;

    auto makeInput = [&](uint64_t seed, int64_t moves) {
        Rng rng(seed);
        std::vector<int64_t> mem(size_t(kDeltas + 4), 0);
        mem[0] = moves;
        // Board: border = 3, interior 0/1/2 with ~55% empty.
        for (int64_t y = 0; y < kSize; ++y) {
            for (int64_t x = 0; x < kSize; ++x) {
                const size_t at = size_t(kBoard + y * kSize + x);
                if (x == 0 || y == 0 || x == kSize - 1 || y == kSize - 1) {
                    mem[at] = 3;
                } else {
                    // Mostly empty with clustered stones: real boards
                    // have strong local structure, which is what makes
                    // evaluation paths repeat.
                    const double p = rng.uniform();
                    const int64_t left = mem[at - 1];
                    if (left != 0 && left != 3 && rng.chance(0.5)) {
                        mem[at] = left; // extend the neighboring group
                    } else {
                        mem[at] = p < 0.70 ? 0 : p < 0.88 ? 1 : 2;
                    }
                }
            }
        }
        // Candidate positions: interior cells only.
        for (int64_t k = 0; k < moves; ++k) {
            const int64_t x = 1 + int64_t(rng.below(kSize - 2));
            const int64_t y = 1 + int64_t(rng.below(kSize - 2));
            mem[size_t(kMoves + k)] = y * kSize + x;
        }
        mem[size_t(kDeltas + 0)] = -kSize;
        mem[size_t(kDeltas + 1)] = -1;
        mem[size_t(kDeltas + 2)] = 1;
        mem[size_t(kDeltas + 3)] = kSize;
        return mem;
    };
    w.train.memImage = makeInput(0x60600001, 9000);
    w.test.memImage = makeInput(0x60600002, 15000);
    w.program.memWords = uint64_t(kDeltas + 4 + 8);
    return w;
}

Workload
makeGcc()
{
    Workload w;
    w.name = "gcc";
    w.description = "Token dispatch across a large family of handlers";
    w.group = "SPECint95";

    // Memory: [0] = token count; tokens from kToks; symbol table of
    // 256 direct-mapped slots at kSyms; emit counters at kCnt.
    //
    // The structure mirrors what makes gcc interesting in the paper:
    // a large code footprint (a 64-way dispatch into generated handler
    // procedures, like gcc's big switches), irregular per-handler
    // branch probabilities, and a working set whose duplication-driven
    // growth shows up in the I-cache (gcc's miss rate rises from 2.67%
    // to 3.92% under the path-based approach in the paper).
    constexpr int64_t kToks = 16;
    constexpr int64_t kMaxToks = 70000;
    constexpr int64_t kSyms = kToks + kMaxToks;
    constexpr int64_t kCnt = kSyms + 256;
    constexpr int kHandlers = 256;

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);
    const ProcId emit_node = b.newProc("emitNode", 2); // (kind, val)
    const ProcId sym_ref = b.newProc("symRef", 1);     // ident -> 0/1

    // --- emitNode(kind, val): bump a counter, fold val ---
    {
        b.setProc(emit_node);
        const RegId kind = b.param(0);
        const RegId val = b.param(1);
        b.setBlock(0);
        const RegId ca = b.addi(kind, kCnt);
        const RegId old = b.ld(ca, 0);
        const RegId t = b.muli(old, 3);
        const RegId t2 = b.add(t, val);
        const RegId m = b.alui(Opcode::And, t2, 0xfffff);
        b.st(ca, 0, m);
        b.ret(m);
    }

    // --- symRef(ident): direct-mapped symbol table reference ---
    {
        b.setProc(sym_ref);
        const BlockId hitb = b.newBlock();
        const BlockId missb = b.newBlock();
        const RegId ident = b.param(0);
        const RegId sa = b.freshReg();

        b.setBlock(0);
        {
            const RegId h = b.alui(Opcode::And, ident, 255);
            b.aluiTo(Opcode::Add, sa, h, kSyms);
            const RegId cur = b.ld(sa, 0);
            const RegId e = b.cmpEq(cur, ident);
            b.brnz(e, hitb, missb);
        }
        b.setBlock(hitb);
        {
            const RegId one = b.ldi(1);
            b.ret(one);
        }
        b.setBlock(missb);
        {
            b.st(sa, 0, ident);
            const RegId z = b.ldi(0);
            b.ret(z);
        }
    }

    // --- 64 generated handlers, each with its own branchy body ---
    std::vector<ProcId> handlers;
    for (int k = 0; k < kHandlers; ++k) {
        Rng shape(0x9cc00000ULL + uint64_t(k));
        const ProcId h = b.newProc("handle" + std::to_string(k), 1);
        handlers.push_back(h);
        const RegId tok = b.param(0);
        const BlockId armA = b.newBlock();
        const BlockId armB = b.newBlock();
        const BlockId join = b.newBlock();
        const RegId acc = b.freshReg();

        b.setBlock(0);
        {
            // A few handler-specific ALU ops, then a data-dependent
            // branch whose bias varies per handler.
            RegId v = tok;
            const int pre_ops = 4 + int(shape.below(8));
            for (int i = 0; i < pre_ops; ++i) {
                const Opcode op = shape.chance(0.5) ? Opcode::Add
                                : shape.chance(0.5) ? Opcode::Xor
                                                    : Opcode::Mul;
                v = b.alui(op, v, int64_t(1 + shape.below(97)));
            }
            b.movTo(acc, v);
            const int bit = int(shape.below(4));
            const RegId t = b.alui(Opcode::Shr, tok, bit);
            const RegId c = b.alui(Opcode::And, t, 1);
            b.brnz(c, armA, armB);
        }

        b.setBlock(armA);
        {
            RegId v = acc;
            const int ops = 6 + int(shape.below(12));
            for (int i = 0; i < ops; ++i)
                v = b.alui(shape.chance(0.6) ? Opcode::Add : Opcode::Xor,
                           v, int64_t(1 + shape.below(255)));
            if (shape.chance(0.5)) {
                const RegId e = b.callValue(emit_node,
                                            {b.ldi(k & 7), v});
                v = b.add(v, e);
            }
            b.movTo(acc, v);
            b.jmp(join);
        }

        b.setBlock(armB);
        {
            RegId v = acc;
            const int ops = 6 + int(shape.below(12));
            for (int i = 0; i < ops; ++i)
                v = b.alui(shape.chance(0.6) ? Opcode::Xor : Opcode::Add,
                           v, int64_t(1 + shape.below(255)));
            if (shape.chance(0.4)) {
                const RegId s = b.callValue(sym_ref, {v});
                v = b.add(v, s);
            }
            b.movTo(acc, v);
            b.jmp(join);
        }

        b.setBlock(join);
        {
            const RegId m = b.alui(Opcode::And, acc, 0xffffff);
            b.ret(m);
        }
    }

    // --- main: fetch tokens, binary-tree dispatch over 64 handlers ---
    {
        b.setProc(main);
        const BlockId head = b.newBlock();
        const BlockId fetch = b.newBlock();
        const BlockId latch = b.newBlock();
        const BlockId done = b.newBlock();

        const RegId zero = b.freshReg();
        const RegId ntoks = b.freshReg();
        const RegId i = b.freshReg();
        const RegId acc = b.freshReg();
        const RegId tok = b.freshReg();
        const RegId sel = b.freshReg();

        // Call-leaf blocks, one per handler.
        std::vector<BlockId> leaves;
        for (int k = 0; k < kHandlers; ++k)
            leaves.push_back(b.newBlock());

        b.setBlock(0);
        b.ldiTo(zero, 0);
        b.ldTo(ntoks, zero, 0);
        b.ldiTo(i, 0);
        b.ldiTo(acc, 0);
        b.jmp(head);

        b.setBlock(head);
        {
            const RegId c = b.alu(Opcode::CmpLt, i, ntoks);
            b.brnz(c, fetch, done);
        }

        b.setBlock(fetch);
        {
            const RegId ta = b.addi(i, kToks);
            b.ldTo(tok, ta, 0);
            const RegId t = b.alui(Opcode::Shr, tok, 6);
            b.aluiTo(Opcode::And, sel, t, kHandlers - 1);
            b.jmp(1); // placeholder; replaced after tree construction
        }

        // Recursive binary decision tree over [lo, hi).
        auto tree = [&](auto &&self, int lo, int hi) -> BlockId {
            if (hi - lo == 1)
                return leaves[size_t(lo)];
            const BlockId node = b.newBlock();
            const int mid = (lo + hi) / 2;
            const BlockId left = self(self, lo, mid);
            const BlockId right = self(self, mid, hi);
            b.setBlock(node);
            const RegId c = b.cmpLti(sel, mid);
            b.brnz(c, left, right);
            return node;
        };
        const BlockId root = tree(tree, 0, kHandlers);
        // Patch the fetch block\'s terminator onto the tree root.
        w.program.proc(main).blocks[fetch].terminator().target0 = root;

        for (int k = 0; k < kHandlers; ++k) {
            b.setBlock(leaves[size_t(k)]);
            const RegId v = b.callValue(handlers[size_t(k)], {tok});
            b.aluTo(Opcode::Add, acc, acc, v);
            b.jmp(latch);
        }

        b.setBlock(latch);
        {
            const RegId m = b.alui(Opcode::And, acc, 0xffffff);
            b.movTo(acc, m);
            b.aluiTo(Opcode::Add, i, i, 1);
            b.jmp(head);
        }

        b.setBlock(done);
        b.emitValue(acc);
        b.ret(acc);
    }

    w.program.mainProc = main;

    auto makeTokens = [&](uint64_t seed, int64_t count) {
        Rng rng(seed);
        std::vector<int64_t> mem(size_t(kToks + count), 0);
        mem[0] = count;
        for (int64_t k = 0; k < count; ++k) {
            // Zipf-ish handler popularity: a hot head, a long tail —
            // the dynamic footprint covers most of the handler family.
            const double u = rng.uniform();
            const int64_t h = int64_t(double(kHandlers) * u * u);
            const int64_t payload = int64_t(rng.below(64));
            const int64_t hi = int64_t(rng.below(1024));
            mem[size_t(kToks + k)] =
                (hi << 12) | (std::min<int64_t>(h, kHandlers - 1) << 6) |
                payload;
        }
        return mem;
    };
    w.train.memImage = makeTokens(0x6cc00001, 25000);
    w.test.memImage = makeTokens(0x6cc00002, 40000);
    w.program.memWords = uint64_t(kCnt + 16);
    return w;
}

Workload
makeM88ksim()
{
    Workload w;
    w.name = "m88k";
    w.description = "Fetch/decode/execute microprocessor simulator";
    w.group = "SPECint95";

    // Memory: [0] = simulated instruction count to run; simulated code
    // from kCode (4 words per instruction: op, rd, rs, imm); simulated
    // register file (16) at kRegs; simulated data memory at kSData.
    constexpr int64_t kCode = 16;
    constexpr int64_t kMaxCode = 64 * 4;
    constexpr int64_t kRegs = kCode + kMaxCode;
    constexpr int64_t kSData = kRegs + 16;
    constexpr int64_t kSDataWords = 256;

    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);

    const BlockId entry = 0;
    const BlockId head = b.newBlock();
    const BlockId decode = b.newBlock();
    const BlockId grp_alu = b.newBlock();
    const BlockId grp_mem = b.newBlock();
    const BlockId op_addi = b.newBlock();
    const BlockId op_add = b.newBlock();
    const BlockId op_xor = b.newBlock();
    const BlockId op_ld = b.newBlock();
    const BlockId op_st = b.newBlock();
    const BlockId op_beq = b.newBlock();
    const BlockId beq_taken = b.newBlock();
    const BlockId advance = b.newBlock();
    const BlockId done = b.newBlock();

    const RegId zero = b.freshReg();
    const RegId budget = b.freshReg();
    const RegId executed = b.freshReg();
    const RegId pc = b.freshReg();
    const RegId op = b.freshReg();
    const RegId rd = b.freshReg();
    const RegId rs = b.freshReg();
    const RegId imm = b.freshReg();
    const RegId acc = b.freshReg();

    b.setBlock(entry);
    b.ldiTo(zero, 0);
    b.ldTo(budget, zero, 0);
    b.ldiTo(executed, 0);
    b.ldiTo(pc, 0);
    b.ldiTo(acc, 0);
    b.jmp(head);

    b.setBlock(head);
    {
        const RegId c = b.alu(Opcode::CmpLt, executed, budget);
        b.brnz(c, decode, done);
    }

    b.setBlock(decode);
    {
        const RegId t = b.muli(pc, 4);
        const RegId ia = b.addi(t, kCode);
        b.ldTo(op, ia, 0);
        b.ldTo(rd, ia, 1);
        b.ldTo(rs, ia, 2);
        b.ldTo(imm, ia, 3);
        const RegId c = b.cmpLti(op, 3);
        b.brnz(c, grp_alu, grp_mem);
    }

    b.setBlock(grp_alu); // ops 0 addi, 1 add, 2 xor
    {
        const RegId c = b.cmpLti(op, 1);
        const BlockId pick12 = b.newBlock();
        b.brnz(c, op_addi, pick12);
        b.setBlock(pick12);
        const RegId c2 = b.cmpEqi(op, 1);
        b.brnz(c2, op_add, op_xor);
    }

    b.setBlock(grp_mem); // ops 3 ld, 4 st, 5 beq
    {
        const RegId c = b.cmpEqi(op, 3);
        const BlockId pick45 = b.newBlock();
        b.brnz(c, op_ld, pick45);
        b.setBlock(pick45);
        const RegId c2 = b.cmpEqi(op, 4);
        b.brnz(c2, op_st, op_beq);
    }

    b.setBlock(op_addi);
    {
        const RegId sa = b.addi(rs, kRegs);
        const RegId v = b.ld(sa, 0);
        const RegId r = b.add(v, imm);
        const RegId da = b.addi(rd, kRegs);
        b.st(da, 0, r);
        b.jmp(advance);
    }

    b.setBlock(op_add);
    {
        const RegId sa = b.addi(rs, kRegs);
        const RegId v = b.ld(sa, 0);
        const RegId da = b.addi(rd, kRegs);
        const RegId v2 = b.ld(da, 0);
        const RegId r = b.add(v, v2);
        b.st(da, 0, r);
        b.jmp(advance);
    }

    b.setBlock(op_xor);
    {
        const RegId sa = b.addi(rs, kRegs);
        const RegId v = b.ld(sa, 0);
        const RegId da = b.addi(rd, kRegs);
        const RegId v2 = b.ld(da, 0);
        const RegId r = b.alu(Opcode::Xor, v, v2);
        b.st(da, 0, r);
        b.jmp(advance);
    }

    b.setBlock(op_ld);
    {
        const RegId sa = b.addi(rs, kRegs);
        const RegId base = b.ld(sa, 0);
        const RegId off = b.add(base, imm);
        const RegId masked = b.alui(Opcode::And, off, kSDataWords - 1);
        const RegId da = b.addi(masked, kSData);
        const RegId v = b.ld(da, 0);
        const RegId ra = b.addi(rd, kRegs);
        b.st(ra, 0, v);
        b.aluTo(Opcode::Add, acc, acc, v);
        b.jmp(advance);
    }

    b.setBlock(op_st);
    {
        const RegId sa = b.addi(rs, kRegs);
        const RegId base = b.ld(sa, 0);
        const RegId off = b.add(base, imm);
        const RegId masked = b.alui(Opcode::And, off, kSDataWords - 1);
        const RegId da = b.addi(masked, kSData);
        const RegId ra = b.addi(rd, kRegs);
        const RegId v = b.ld(ra, 0);
        b.st(da, 0, v);
        b.jmp(advance);
    }

    b.setBlock(op_beq);
    {
        // beq rd, rs, imm: simulated loop back edge — taken until the
        // simulated counter register drains, so the simulator's own
        // dispatch path repeats in long dominant runs.
        const RegId da = b.addi(rd, kRegs);
        const RegId v1 = b.ld(da, 0);
        const RegId sa = b.addi(rs, kRegs);
        const RegId v2 = b.ld(sa, 0);
        const RegId ne = b.alu(Opcode::CmpNe, v1, v2);
        b.brnz(ne, beq_taken, advance);
    }

    b.setBlock(beq_taken);
    {
        b.movTo(pc, imm);
        b.aluiTo(Opcode::Add, executed, executed, 1);
        b.jmp(head);
    }

    b.setBlock(advance);
    {
        b.aluiTo(Opcode::Add, pc, pc, 1);
        b.aluiTo(Opcode::Add, executed, executed, 1);
        b.jmp(head);
    }

    b.setBlock(done);
    {
        // Fold the simulated register file into the output.
        const RegId r0 = b.ld(zero, kRegs + 1);
        const RegId r1 = b.ld(zero, kRegs + 2);
        const RegId s = b.add(r0, r1);
        b.aluTo(Opcode::Add, acc, acc, s);
        b.emitValue(acc);
        b.ret(acc);
    }

    w.program.mainProc = main;

    // The simulated program: an 11-instruction loop (dhrystone-ish op
    // mix) that decrements r1 until it equals r0 (zero).
    auto makeSim = [&](uint64_t seed, int64_t steps) {
        Rng rng(seed);
        std::vector<int64_t> mem(size_t(kSData + kSDataWords), 0);
        mem[0] = steps;
        int64_t pc_gen = 0;
        auto emit = [&](int64_t o, int64_t d, int64_t s, int64_t im) {
            const size_t at = size_t(kCode + pc_gen * 4);
            mem[at] = o;
            mem[at + 1] = d;
            mem[at + 2] = s;
            mem[at + 3] = im;
            ++pc_gen;
        };
        emit(0, 1, 0, 1 << 20);   // r1 = big counter
        emit(0, 2, 0, 3);         // r2 = 3
        // loop body (pc 2..9)
        emit(1, 3, 2, 0);         // r3 += r2
        emit(3, 4, 3, 5);         // r4 = sdata[r3+5]
        emit(2, 5, 4, 0);         // r5 ^= r4
        emit(4, 5, 3, 2);         // sdata[r3+2] = r5
        emit(0, 6, 5, 7);         // r6 = r5 + 7
        emit(1, 7, 6, 0);         // r7 += r6
        emit(2, 3, 7, 0);         // r3 ^= r7
        emit(0, 1, 1, -1);        // r1 -= 1
        emit(5, 1, 0, 2);         // beq: while r1 != r0 goto pc 2
        emit(5, 0, 0, 0);         // r0 == r0 -> halt-loop to pc 0? no:
        // pc 11 reached only when r1 == r0; make it spin forward into
        // plain ALU filler until the budget expires.
        for (int f = 0; f < 8; ++f)
            emit(int64_t(rng.below(3)), 3 + int64_t(rng.below(4)),
                 3 + int64_t(rng.below(4)), int64_t(rng.below(16)));
        emit(5, 0, 0, 0); // unconditional-ish jump back to 0 (r0==r0
                          // never taken; falls through and wraps)
        emit(0, 3, 3, 1); // filler
        emit(5, 2, 0, 2); // r2 != 0 -> back to the loop body
        // seed simulated data memory
        for (size_t k = size_t(kSData); k < mem.size(); ++k)
            mem[k] = int64_t(rng.below(1024));
        return mem;
    };
    w.train.memImage = makeSim(0x88000001, 60000);
    w.test.memImage = makeSim(0x88000002, 100000);
    w.program.memWords = uint64_t(kSData + kSDataWords + 8);
    return w;
}

Workload
makePerl()
{
    Workload w;
    w.name = "perl";
    w.description = "Bytecode VM with stack and hash operations";
    w.group = "SPECint95";

    // Memory: [0] = VM step budget; bytecode from kCode (2 words per
    // op: opcode, argument); VM stack at kStack; variables at kVars;
    // hash table (openly addressed, 256 slots of key/value pairs) at
    // kHash.
    constexpr int64_t kCode = 16;
    constexpr int64_t kMaxCode = 64 * 2;
    constexpr int64_t kStack = kCode + kMaxCode;
    constexpr int64_t kStackWords = 64;
    constexpr int64_t kVars = kStack + kStackWords;
    constexpr int64_t kHash = kVars + 16;

    // Opcodes: 0 PUSHC, 1 LOADV, 2 STOREV, 3 ADD, 4 MUL3ADD,
    // 5 HASHPUT, 6 HASHGET, 7 DECJNZ, 8 HALT.
    IrBuilder b(w.program);
    const ProcId main = b.newProc("main", 0);

    const BlockId entry = 0;
    const BlockId head = b.newBlock();
    const BlockId fetch = b.newBlock();
    const BlockId g03 = b.newBlock();
    const BlockId g01 = b.newBlock();
    const BlockId g23 = b.newBlock();
    const BlockId g47 = b.newBlock();
    const BlockId g45 = b.newBlock();
    const BlockId g67 = b.newBlock();
    const BlockId o_pushc = b.newBlock();
    const BlockId o_loadv = b.newBlock();
    const BlockId o_storev = b.newBlock();
    const BlockId o_add = b.newBlock();
    const BlockId o_mul3 = b.newBlock();
    const BlockId o_hput = b.newBlock();
    const BlockId o_hget = b.newBlock();
    const BlockId o_decjnz = b.newBlock();
    const BlockId jnz_taken = b.newBlock();
    const BlockId advance = b.newBlock();
    const BlockId done = b.newBlock();

    const RegId zero = b.freshReg();
    const RegId budget = b.freshReg();
    const RegId steps = b.freshReg();
    const RegId pc = b.freshReg();
    const RegId sp = b.freshReg(); // stack depth
    const RegId op = b.freshReg();
    const RegId arg = b.freshReg();
    const RegId acc = b.freshReg();

    b.setBlock(entry);
    b.ldiTo(zero, 0);
    b.ldTo(budget, zero, 0);
    b.ldiTo(steps, 0);
    b.ldiTo(pc, 0);
    b.ldiTo(sp, 0);
    b.ldiTo(acc, 0);
    b.jmp(head);

    b.setBlock(head);
    {
        const RegId c = b.alu(Opcode::CmpLt, steps, budget);
        b.brnz(c, fetch, done);
    }

    b.setBlock(fetch);
    {
        const RegId t = b.muli(pc, 2);
        const RegId ia = b.addi(t, kCode);
        b.ldTo(op, ia, 0);
        b.ldTo(arg, ia, 1);
        const RegId c = b.cmpLti(op, 4);
        b.brnz(c, g03, g47);
    }

    b.setBlock(g03);
    {
        const RegId c = b.cmpLti(op, 2);
        b.brnz(c, g01, g23);
    }
    b.setBlock(g01);
    {
        const RegId c = b.cmpEqi(op, 0);
        b.brnz(c, o_pushc, o_loadv);
    }
    b.setBlock(g23);
    {
        const RegId c = b.cmpEqi(op, 2);
        b.brnz(c, o_storev, o_add);
    }
    b.setBlock(g47);
    {
        const RegId c = b.cmpLti(op, 6);
        b.brnz(c, g45, g67);
    }
    b.setBlock(g45);
    {
        const RegId c = b.cmpEqi(op, 4);
        b.brnz(c, o_mul3, o_hput);
    }
    b.setBlock(g67);
    {
        const RegId c = b.cmpEqi(op, 6);
        b.brnz(c, o_hget, o_decjnz);
    }

    b.setBlock(o_pushc);
    {
        const RegId sa = b.addi(sp, kStack);
        b.st(sa, 0, arg);
        b.aluiTo(Opcode::Add, sp, sp, 1);
        b.jmp(advance);
    }

    b.setBlock(o_loadv);
    {
        const RegId va = b.addi(arg, kVars);
        const RegId v = b.ld(va, 0);
        const RegId sa = b.addi(sp, kStack);
        b.st(sa, 0, v);
        b.aluiTo(Opcode::Add, sp, sp, 1);
        b.jmp(advance);
    }

    b.setBlock(o_storev);
    {
        b.aluiTo(Opcode::Sub, sp, sp, 1);
        const RegId sa = b.addi(sp, kStack);
        const RegId v = b.ld(sa, 0);
        const RegId va = b.addi(arg, kVars);
        b.st(va, 0, v);
        b.jmp(advance);
    }

    b.setBlock(o_add);
    {
        b.aluiTo(Opcode::Sub, sp, sp, 1);
        const RegId sa = b.addi(sp, kStack);
        const RegId v2 = b.ld(sa, 0);
        const RegId v1 = b.ld(sa, -1);
        const RegId s = b.add(v1, v2);
        b.st(sa, -1, s);
        b.jmp(advance);
    }

    b.setBlock(o_mul3);
    {
        const RegId sa = b.addi(sp, kStack);
        const RegId v = b.ld(sa, -1);
        const RegId t = b.muli(v, 3);
        const RegId t2 = b.add(t, arg);
        const RegId m = b.alui(Opcode::And, t2, 0xffffff);
        b.st(sa, -1, m);
        b.jmp(advance);
    }

    b.setBlock(o_hput);
    {
        // hash[top & 255] = (key, value=top)
        const RegId sa = b.addi(sp, kStack);
        const RegId v = b.ld(sa, -1);
        const RegId h = b.alui(Opcode::And, v, 255);
        const RegId t = b.muli(h, 2);
        const RegId ha = b.addi(t, kHash);
        b.st(ha, 0, v);
        b.st(ha, 1, v);
        b.jmp(advance);
    }

    b.setBlock(o_hget);
    {
        const RegId sa = b.addi(sp, kStack);
        const RegId v = b.ld(sa, -1);
        const RegId key = b.add(v, arg);
        const RegId h = b.alui(Opcode::And, key, 255);
        const RegId t = b.muli(h, 2);
        const RegId ha = b.addi(t, kHash);
        const RegId stored = b.ld(ha, 1);
        const RegId s = b.add(v, stored);
        b.st(sa, -1, s);
        b.aluTo(Opcode::Xor, acc, acc, stored);
        b.jmp(advance);
    }

    b.setBlock(o_decjnz);
    {
        const RegId va = b.addi(arg, kVars);
        const RegId v = b.ld(va, 0);
        const RegId v2 = b.alui(Opcode::Sub, v, 1);
        b.st(va, 0, v2);
        b.brnz(v2, jnz_taken, advance);
    }

    b.setBlock(jnz_taken);
    {
        b.ldiTo(pc, 2); // loop start in the bytecode program
        b.aluiTo(Opcode::Add, steps, steps, 1);
        b.jmp(head);
    }

    b.setBlock(advance);
    {
        b.aluiTo(Opcode::Add, pc, pc, 1);
        b.aluiTo(Opcode::Add, steps, steps, 1);
        b.jmp(head);
    }

    b.setBlock(done);
    {
        const RegId sa = b.ldi(kStack);
        const RegId bot = b.ld(sa, 0);
        b.aluTo(Opcode::Add, acc, acc, bot);
        b.emitValue(acc);
        b.ret(acc);
    }

    w.program.mainProc = main;

    // Bytecode: v0 = N; s = 0; loop: s=s*3+k; hash ops; v0--; jnz.
    auto makeProgram = [&](int64_t steps_budget, int64_t loop_count) {
        std::vector<int64_t> mem(size_t(kHash + 512), 0);
        mem[0] = steps_budget;
        int64_t pc_gen = 0;
        auto emit = [&](int64_t o, int64_t a) {
            const size_t at = size_t(kCode + pc_gen * 2);
            mem[at] = o;
            mem[at + 1] = a;
            ++pc_gen;
        };
        emit(0, loop_count); // PUSHC n
        emit(2, 0);          // STOREV v0 = n
        // loop body: pc 2..9
        emit(0, 17);         // PUSHC 17
        emit(1, 0);          // LOADV v0
        emit(3, 0);          // ADD
        emit(4, 11);         // MUL3ADD 11
        emit(5, 0);          // HASHPUT
        emit(6, 5);          // HASHGET +5
        emit(2, 1);          // STOREV v1 (pops)
        emit(7, 0);          // DECJNZ v0 -> pc 2
        emit(8, 0);          // HALT (never reached within budget)
        // HALT handler: opcode 8 is decoded as o_decjnz? No: op 8
        // falls into g67's "else" (o_decjnz) with arg 0 -> v0 stays 0,
        // never taken, pc advances into zeroed code (op 0 PUSHC 0) —
        // but the budget expires first by construction.
        return mem;
    };
    w.train.memImage = makeProgram(140000, 1 << 30);
    w.test.memImage = makeProgram(230000, 1 << 30);
    w.program.memWords = uint64_t(kHash + 512 + 8);
    return w;
}

} // namespace pathsched::workloads
