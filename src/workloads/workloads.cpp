#include "workloads/workloads.hpp"

#include "support/logging.hpp"

namespace pathsched::workloads {

std::vector<std::string>
benchmarkNames()
{
    // Table 1 order.
    return {"alt", "ph", "corr", "wc", "com", "eqn", "esp",
            "gcc", "go", "ijpeg", "li", "m88k", "perl", "vortex"};
}

Workload
makeByName(const std::string &name)
{
    if (name == "alt")
        return makeAlt();
    if (name == "ph")
        return makePh();
    if (name == "corr")
        return makeCorr();
    if (name == "wc")
        return makeWc();
    if (name == "com")
        return makeCompress();
    if (name == "eqn")
        return makeEqntott();
    if (name == "esp")
        return makeEspresso();
    if (name == "gcc")
        return makeGcc();
    if (name == "go")
        return makeGo();
    if (name == "ijpeg")
        return makeIjpeg();
    if (name == "li")
        return makeLi();
    if (name == "m88k")
        return makeM88ksim();
    if (name == "perl")
        return makePerl();
    if (name == "vortex")
        return makeVortex();
    panic("unknown workload '%s'", name.c_str());
}

std::vector<Workload>
standardBenchmarks()
{
    std::vector<Workload> out;
    for (const auto &name : benchmarkNames())
        out.push_back(makeByName(name));
    return out;
}

} // namespace pathsched::workloads
