#include "workloads/textutil.hpp"

#include "support/rng.hpp"

namespace pathsched::workloads {

std::vector<int64_t>
makeText(uint64_t seed, size_t nchars)
{
    Rng rng(seed);
    std::vector<int64_t> text;
    text.reserve(nchars);
    size_t words_on_line = 0;
    while (text.size() < nchars) {
        const size_t len = size_t(rng.range(1, 9));
        for (size_t i = 0; i < len && text.size() < nchars; ++i)
            text.push_back(int64_t('a' + rng.below(26)));
        if (text.size() >= nchars)
            break;
        if (++words_on_line >= 12) {
            text.push_back('\n');
            words_on_line = 0;
        } else {
            text.push_back(' ');
        }
    }
    return text;
}

std::vector<int64_t>
makeCompressibleData(uint64_t seed, size_t nbytes)
{
    Rng rng(seed);
    // A small phrase dictionary: repeated phrases give an LZ matcher
    // real back-references to find.
    std::vector<std::vector<int64_t>> phrases;
    for (int p = 0; p < 16; ++p) {
        std::vector<int64_t> phrase;
        const size_t len = size_t(rng.range(4, 24));
        for (size_t i = 0; i < len; ++i)
            phrase.push_back(int64_t(rng.below(64)));
        phrases.push_back(std::move(phrase));
    }
    std::vector<int64_t> data;
    data.reserve(nbytes);
    while (data.size() < nbytes) {
        if (rng.chance(0.8)) {
            const auto &phrase = phrases[rng.below(phrases.size())];
            for (int64_t c : phrase) {
                if (data.size() >= nbytes)
                    break;
                data.push_back(c);
            }
        } else {
            data.push_back(int64_t(rng.below(256)));
        }
    }
    return data;
}

std::vector<int64_t>
makeRandomValues(uint64_t seed, size_t count, int64_t bound)
{
    Rng rng(seed);
    std::vector<int64_t> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(rng.range(0, bound - 1));
    return out;
}

} // namespace pathsched::workloads
