/**
 * @file
 * The benchmark suite (Table 1 of the paper).
 *
 * The paper evaluates three microbenchmarks (alt, ph, corr), wc, and
 * ten SPECint92/95 programs.  SPEC sources and reference inputs are not
 * redistributable, so each SPEC entry here is a hand-written IR kernel
 * that reproduces the *control-flow character* the paper's discussion
 * attributes to that benchmark (dominant-path loops, phased behaviour,
 * branch correlation, low-iteration loops, call-heavy interpreters,
 * ...).  DESIGN.md documents each substitution.  Every workload ships
 * distinct train and test inputs, as in the paper ("we use different
 * training and testing data sets").
 */

#ifndef PATHSCHED_WORKLOADS_WORKLOADS_HPP
#define PATHSCHED_WORKLOADS_WORKLOADS_HPP

#include <string>
#include <vector>

#include "interp/interpreter.hpp"
#include "ir/procedure.hpp"

namespace pathsched::workloads {

/** One benchmark: a program plus its train/test inputs. */
struct Workload
{
    std::string name;
    std::string description;
    /** Paper group: "micro", "SPECint92" or "SPECint95". */
    std::string group;
    ir::Program program;
    interp::ProgramInput train;
    interp::ProgramInput test;
};

/** @name Individual workload builders
 *  @{
 */
Workload makeAlt();      ///< TTTF-periodic conditional in a loop
Workload makePh();       ///< phased conditional (TT..TFF..F)
Workload makeCorr();     ///< correlated branches (Young & Smith)
Workload makeWc();       ///< UNIX word count over synthetic text
Workload makeCompress(); ///< LZ-style compression kernel
Workload makeEqntott();  ///< correlated branch guarding a tiny block
Workload makeEspresso(); ///< nested loops over bit matrices
Workload makeGcc();      ///< many procedures, irregular branching
Workload makeGo();       ///< low-iteration loops + frequent calls
Workload makeIjpeg();    ///< loop-dominated DCT-like array kernels
Workload makeLi();       ///< recursive expression interpreter
Workload makeM88ksim();  ///< fetch/decode/execute simulator loop
Workload makePerl();     ///< opcode-dispatch interpreter with hashing
Workload makeVortex();   ///< record-oriented database operations
/** @} */

/** All 14 workloads in Table 1 order. */
std::vector<Workload> standardBenchmarks();

/** Build one workload by its Table 1 name; panics on unknown names. */
Workload makeByName(const std::string &name);

/** The Table 1 names in order. */
std::vector<std::string> benchmarkNames();

} // namespace pathsched::workloads

#endif // PATHSCHED_WORKLOADS_WORKLOADS_HPP
