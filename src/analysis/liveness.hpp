/**
 * @file
 * Per-block virtual-register liveness.
 *
 * The compactor uses live-in sets of superblock exit targets to decide
 * whether an instruction's destination may be hoisted above an exit and
 * whether live-off-trace renaming is required.
 */

#ifndef PATHSCHED_ANALYSIS_LIVENESS_HPP
#define PATHSCHED_ANALYSIS_LIVENESS_HPP

#include <vector>

#include "ir/procedure.hpp"
#include "support/bitvec.hpp"

namespace pathsched::analysis {

/** Backward may-liveness over the virtual registers of one procedure. */
class Liveness
{
  public:
    /** Solve liveness for @p proc to a fixed point. */
    explicit Liveness(const ir::Procedure &proc);

    /** Registers live on entry to block @p b. */
    const BitVec &liveIn(ir::BlockId b) const { return liveIn_[b]; }

    /** Registers live on exit from block @p b. */
    const BitVec &liveOut(ir::BlockId b) const { return liveOut_[b]; }

    /**
     * The register universe this instance was solved over.  The
     * procedure may have grown fresh registers since (renaming); fresh
     * registers are never live across pre-existing block boundaries,
     * so consumers size their scratch sets with this.
     */
    size_t numRegs() const { return liveIn_.empty() ? 0
                                                    : liveIn_[0].size(); }

  private:
    std::vector<BitVec> liveIn_;
    std::vector<BitVec> liveOut_;
};

} // namespace pathsched::analysis

#endif // PATHSCHED_ANALYSIS_LIVENESS_HPP
