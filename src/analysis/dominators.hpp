/**
 * @file
 * Dominator-tree computation (Cooper-Harvey-Kennedy iterative algorithm).
 */

#ifndef PATHSCHED_ANALYSIS_DOMINATORS_HPP
#define PATHSCHED_ANALYSIS_DOMINATORS_HPP

#include <vector>

#include "ir/procedure.hpp"

namespace pathsched::analysis {

/** Immediate-dominator table for one procedure. */
class Dominators
{
  public:
    /** Build dominators for @p proc (entry block 0). */
    explicit Dominators(const ir::Procedure &proc);

    /**
     * Immediate dominator of @p b; the entry dominates itself.
     * Unreachable blocks report ir::kNoBlock.
     */
    ir::BlockId idom(ir::BlockId b) const { return idom_[b]; }

    /** True when @p a dominates @p b (reflexive). */
    bool dominates(ir::BlockId a, ir::BlockId b) const;

    /** True when @p b is reachable from the entry. */
    bool reachable(ir::BlockId b) const
    {
        return idom_[b] != ir::kNoBlock;
    }

    /** Blocks in reverse postorder (reachable blocks only). */
    const std::vector<ir::BlockId> &rpo() const { return rpo_; }

  private:
    std::vector<ir::BlockId> idom_;
    std::vector<ir::BlockId> rpo_;
    std::vector<uint32_t> rpoIndex_;
};

} // namespace pathsched::analysis

#endif // PATHSCHED_ANALYSIS_DOMINATORS_HPP
