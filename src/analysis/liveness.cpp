#include "analysis/liveness.hpp"

namespace pathsched::analysis {

using ir::BlockId;
using ir::kNoReg;
using ir::RegId;

namespace {

/**
 * One way control leaves a block: the targets of a (possibly mid-block)
 * branch, jmp, or the implicit end of a Ret, together with the
 * registers defined in the block strictly before that point.
 *
 * With superblocks a block can be left part-way through, so the classic
 * summary `liveIn = use ∪ (liveOut − def)` is wrong: a register defined
 * only *after* a side exit does not shadow the in-flight value that the
 * exit path still reads (the def never executes on that path).  Each
 * exit therefore contributes its targets' live-in minus only the defs
 * that precede it.
 */
struct ExitTerm
{
    std::vector<BlockId> targets;
    BitVec defsBefore;
};

} // namespace

Liveness::Liveness(const ir::Procedure &proc)
{
    const size_t n = proc.blocks.size();
    const size_t nregs = proc.numRegs;
    liveIn_.assign(n, BitVec(nregs));
    liveOut_.assign(n, BitVec(nregs));

    // use[b]: registers read before any write in b (branch conditions
    // and ret operands are plain reads and land here too).
    std::vector<BitVec> use(n, BitVec(nregs));
    std::vector<std::vector<ExitTerm>> exits(n);
    std::vector<RegId> srcs;
    for (BlockId b = 0; b < n; ++b) {
        BitVec defs(nregs);
        for (const auto &ins : proc.blocks[b].instrs) {
            ins.sources(srcs);
            for (RegId r : srcs) {
                if (!defs.test(r))
                    use[b].set(r);
            }
            if (ins.isControlFlow()) {
                ExitTerm e;
                if (ins.isBranch()) {
                    e.targets.push_back(ins.target0);
                    if (ins.target1 != ir::kNoBlock)
                        e.targets.push_back(ins.target1);
                } else if (ins.op == ir::Opcode::Jmp) {
                    e.targets.push_back(ins.target0);
                }
                // Ret contributes an empty-target term: nothing is live
                // past the end of the program.
                e.defsBefore = defs;
                exits[b].push_back(std::move(e));
            }
            if (ins.dst != kNoReg)
                defs.set(ins.dst);
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = n; i-- > 0;) {
            const BlockId b = BlockId(i);
            // Every path out of b goes through some exit, so live-in is
            // the plain upward-exposed reads plus, per exit, whatever
            // the exit's targets need that b has not yet redefined at
            // that point.
            BitVec out(nregs);
            BitVec in = use[b];
            for (const ExitTerm &e : exits[b]) {
                BitVec flow(nregs);
                for (BlockId s : e.targets)
                    flow.unionWith(liveIn_[s]);
                out.unionWith(flow);
                flow.subtract(e.defsBefore);
                in.unionWith(flow);
            }
            if (!(out == liveOut_[b])) {
                liveOut_[b] = std::move(out);
                changed = true;
            }
            if (!(in == liveIn_[b])) {
                liveIn_[b] = std::move(in);
                changed = true;
            }
        }
    }
}

} // namespace pathsched::analysis
