#include "analysis/liveness.hpp"

namespace pathsched::analysis {

using ir::BlockId;
using ir::kNoReg;
using ir::RegId;

Liveness::Liveness(const ir::Procedure &proc)
{
    const size_t n = proc.blocks.size();
    const size_t nregs = proc.numRegs;
    liveIn_.assign(n, BitVec(nregs));
    liveOut_.assign(n, BitVec(nregs));

    // use[b]: registers read before any write in b.
    // def[b]: registers written in b.
    //
    // A mid-block exit branch in a superblock makes registers live at the
    // exit target observable part-way through the block.  For block-level
    // sets this is conservatively handled below by folding every
    // successor's live-in into liveOut (exits are successors), and the
    // in-block upward exposure is exact because exit branches only read.
    std::vector<BitVec> use(n, BitVec(nregs)), def(n, BitVec(nregs));
    std::vector<RegId> srcs;
    for (BlockId b = 0; b < n; ++b) {
        for (const auto &ins : proc.blocks[b].instrs) {
            ins.sources(srcs);
            for (RegId r : srcs) {
                if (!def[b].test(r))
                    use[b].set(r);
            }
            if (ins.dst != kNoReg)
                def[b].set(ins.dst);
        }
    }

    std::vector<std::vector<BlockId>> succs(n);
    for (BlockId b = 0; b < n; ++b)
        ir::successorsOf(proc.blocks[b], succs[b]);

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = n; i-- > 0;) {
            const BlockId b = BlockId(i);
            BitVec out(nregs);
            for (BlockId s : succs[b])
                out.unionWith(liveIn_[s]);
            BitVec in = out;
            in.subtract(def[b]);
            in.unionWith(use[b]);
            if (!(out == liveOut_[b])) {
                liveOut_[b] = out;
                changed = true;
            }
            if (!(in == liveIn_[b])) {
                liveIn_[b] = std::move(in);
                changed = true;
            }
        }
    }
}

} // namespace pathsched::analysis
