#include "analysis/callgraph.hpp"

namespace pathsched::analysis {

CallGraph::CallGraph(const ir::Program &prog)
    : numProcs_(prog.procs.size())
{
    for (const auto &p : prog.procs) {
        for (const auto &bb : p.blocks) {
            for (const auto &ins : bb.instrs) {
                if (ins.op == ir::Opcode::Call)
                    weights_[{p.id, ins.callee}] += 0;
            }
        }
    }
}

void
CallGraph::addWeight(ir::ProcId caller, ir::ProcId callee, uint64_t count)
{
    weights_[{caller, callee}] += count;
}

std::vector<CallGraph::Edge>
CallGraph::edges() const
{
    std::vector<Edge> out;
    out.reserve(weights_.size());
    for (const auto &[key, w] : weights_)
        out.push_back({key.first, key.second, w});
    return out;
}

} // namespace pathsched::analysis
