/**
 * @file
 * Static call graph with optional dynamic edge weights.
 *
 * Pettis-Hansen procedure placement consumes this graph with weights
 * taken from a profiling run.
 */

#ifndef PATHSCHED_ANALYSIS_CALLGRAPH_HPP
#define PATHSCHED_ANALYSIS_CALLGRAPH_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "ir/procedure.hpp"

namespace pathsched::analysis {

/** Weighted, directed call multigraph collapsed to unique edges. */
class CallGraph
{
  public:
    /** Build the static graph of @p prog with zero weights. */
    explicit CallGraph(const ir::Program &prog);

    /** Add @p count dynamic calls to the @p caller -> @p callee edge. */
    void addWeight(ir::ProcId caller, ir::ProcId callee, uint64_t count);

    /** All edges, deterministically ordered by (caller, callee). */
    struct Edge
    {
        ir::ProcId caller;
        ir::ProcId callee;
        uint64_t weight;
    };
    std::vector<Edge> edges() const;

    size_t numProcs() const { return numProcs_; }

  private:
    size_t numProcs_;
    std::map<std::pair<ir::ProcId, ir::ProcId>, uint64_t> weights_;
};

} // namespace pathsched::analysis

#endif // PATHSCHED_ANALYSIS_CALLGRAPH_HPP
