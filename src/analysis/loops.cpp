#include "analysis/loops.hpp"

#include <algorithm>

namespace pathsched::analysis {

using ir::BlockId;

namespace {

uint64_t
edgeKey(BlockId from, BlockId to)
{
    return (uint64_t(from) << 32) | to;
}

} // namespace

LoopInfo::LoopInfo(const ir::Procedure &proc, const Dominators &doms)
{
    const size_t n = proc.blocks.size();
    std::vector<std::vector<BlockId>> preds = ir::computePreds(proc);
    std::vector<BlockId> succs;

    for (BlockId b = 0; b < n; ++b) {
        if (!doms.reachable(b))
            continue;
        ir::successorsOf(proc.blocks[b], succs);
        for (BlockId s : succs) {
            if (doms.dominates(s, b)) {
                backEdges_.insert(edgeKey(b, s));
                headers_.insert(s);

                // Natural loop of the back edge: all blocks that can
                // reach `b` without passing through the header `s`.
                NaturalLoop loop;
                loop.header = s;
                std::vector<uint8_t> in(n, 0);
                in[s] = 1;
                std::vector<BlockId> work;
                if (!in[b]) {
                    in[b] = 1;
                    work.push_back(b);
                }
                while (!work.empty()) {
                    BlockId cur = work.back();
                    work.pop_back();
                    for (BlockId p : preds[cur]) {
                        if (!in[p]) {
                            in[p] = 1;
                            work.push_back(p);
                        }
                    }
                }
                for (BlockId m = 0; m < n; ++m) {
                    if (in[m])
                        loop.body.push_back(m);
                }
                loops_.push_back(std::move(loop));
            }
        }
    }
}

bool
LoopInfo::isBackEdge(BlockId from, BlockId to) const
{
    return backEdges_.count(edgeKey(from, to)) != 0;
}

bool
LoopInfo::isLoopHeader(BlockId b) const
{
    return headers_.count(b) != 0;
}

} // namespace pathsched::analysis
