#include "analysis/dominators.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace pathsched::analysis {

using ir::BlockId;
using ir::kNoBlock;

Dominators::Dominators(const ir::Procedure &proc)
{
    const size_t n = proc.blocks.size();
    idom_.assign(n, kNoBlock);
    rpoIndex_.assign(n, uint32_t(-1));

    // Iterative postorder DFS from the entry.
    std::vector<BlockId> postorder;
    postorder.reserve(n);
    std::vector<uint8_t> state(n, 0); // 0 unvisited, 1 on stack, 2 done
    std::vector<std::pair<BlockId, size_t>> stack;
    std::vector<std::vector<BlockId>> succs(n);
    for (BlockId b = 0; b < n; ++b)
        ir::successorsOf(proc.blocks[b], succs[b]);

    stack.push_back({0, 0});
    state[0] = 1;
    while (!stack.empty()) {
        auto &[b, idx] = stack.back();
        if (idx < succs[b].size()) {
            BlockId s = succs[b][idx++];
            if (state[s] == 0) {
                state[s] = 1;
                stack.push_back({s, 0});
            }
        } else {
            state[b] = 2;
            postorder.push_back(b);
            stack.pop_back();
        }
    }

    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (uint32_t i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = i;

    // Cooper-Harvey-Kennedy: iterate to a fixed point over RPO.
    std::vector<std::vector<BlockId>> preds = ir::computePreds(proc);

    auto intersect = [&](BlockId a, BlockId c) {
        while (a != c) {
            while (rpoIndex_[a] > rpoIndex_[c])
                a = idom_[a];
            while (rpoIndex_[c] > rpoIndex_[a])
                c = idom_[c];
        }
        return a;
    };

    idom_[0] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (BlockId b : rpo_) {
            if (b == 0)
                continue;
            BlockId new_idom = kNoBlock;
            for (BlockId p : preds[b]) {
                if (idom_[p] == kNoBlock)
                    continue; // unreachable or not yet processed
                new_idom = new_idom == kNoBlock ? p
                                                : intersect(p, new_idom);
            }
            if (new_idom != kNoBlock && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
}

bool
Dominators::dominates(BlockId a, BlockId b) const
{
    if (!reachable(b))
        return false;
    BlockId cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (cur == 0)
            return a == 0;
        cur = idom_[cur];
    }
}

} // namespace pathsched::analysis
