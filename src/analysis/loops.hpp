/**
 * @file
 * Back-edge and natural-loop identification.
 *
 * Trace selection must never grow a trace across a back edge (§2.1 of
 * the paper), so the form pass queries this analysis for every candidate
 * extension edge.
 */

#ifndef PATHSCHED_ANALYSIS_LOOPS_HPP
#define PATHSCHED_ANALYSIS_LOOPS_HPP

#include <unordered_set>
#include <vector>

#include "analysis/dominators.hpp"
#include "ir/procedure.hpp"

namespace pathsched::analysis {

/** A natural loop: header plus member blocks. */
struct NaturalLoop
{
    ir::BlockId header;
    std::vector<ir::BlockId> body; // includes the header
};

/** Back edges and natural loops of one procedure. */
class LoopInfo
{
  public:
    /** Analyse @p proc using its dominator tree. */
    LoopInfo(const ir::Procedure &proc, const Dominators &doms);

    /** True when the CFG edge @p from -> @p to is a back edge. */
    bool isBackEdge(ir::BlockId from, ir::BlockId to) const;

    /** True when @p b is the header of some natural loop. */
    bool isLoopHeader(ir::BlockId b) const;

    const std::vector<NaturalLoop> &loops() const { return loops_; }

  private:
    std::unordered_set<uint64_t> backEdges_;
    std::unordered_set<ir::BlockId> headers_;
    std::vector<NaturalLoop> loops_;
};

} // namespace pathsched::analysis

#endif // PATHSCHED_ANALYSIS_LOOPS_HPP
