/**
 * @file
 * The scheduler-backend registry: configuration dispatch as data.
 *
 * A scheduling configuration used to be a bare SchedConfig enumerator
 * whose meaning was re-derived by `config == SchedConfig::P4`-style
 * predicates scattered across the pipeline, the server, the oracle and
 * the tools — every new config family had to edit a dozen switch sites
 * or silently miss one.  This header replaces all of those predicates
 * with one descriptor per backend:
 *
 *  - a stable *name* ("P4", "G4") that is the string key for
 *    `--config` parsing everywhere and part of the stage-cache key;
 *  - *capability queries* — needsEdgeProfile()/needsPathProfile() —
 *    that answer every "which profile does this config consume?"
 *    question (training-listener attachment, profile admission, cache
 *    profile hashing, the serving loop's reschedule inputs);
 *  - a *knobs hash* folding the backend's own option knobs into the
 *    PR-5 stage-cache key, so unrelated knobs of other families cannot
 *    over- or under-key an entry;
 *  - a per-procedure Status-returning *transform* entry point (the
 *    "form" slot of the pipeline's task chain) following the
 *    src/pipeline/stages.hpp conventions, through which the executor,
 *    quarantine, budget and fault-injection machinery drive the
 *    backend without knowing what it does.
 *
 * Adding a backend is now one registration in backend.cpp: the fuzz
 * oracle, `--config all`, the batch sweep, the serving loop and the
 * stage cache pick it up from allBackends() with no further edits —
 * this is the API the C4 cloning family (ROADMAP item 1) plugs into.
 */

#ifndef PATHSCHED_PIPELINE_BACKEND_HPP
#define PATHSCHED_PIPELINE_BACKEND_HPP

#include <functional>
#include <string>
#include <vector>

#include "pipeline/cache.hpp"
#include "pipeline/pipeline.hpp"
#include "sched/gcm.hpp"

namespace pathsched::pipeline {

/** Everything a backend's transform stage may read, assembled by the
 *  pipeline per procedure.  Pointers follow the capability queries: a
 *  profile pointer is meaningful only when the matching capability is
 *  set (the internal training profile otherwise carries zero counts). */
struct TransformContext
{
    SchedConfig config = SchedConfig::BB;
    const PipelineOptions *opt = nullptr;
    /** Admitted edge profile (external or internal training). */
    const profile::EdgeProfiler *edge = nullptr;
    /** Admitted, finalized path profile. */
    const profile::PathProfiler *path = nullptr;
    /** Edge projection of a partially-admitted path profile. */
    const profile::EdgeProfiler *projectedEdge = nullptr;
    /** Admission degraded this procedure's path windows: a
     *  path-consuming backend must fall back to projectedEdge. */
    bool useProjectedEdges = false;
    /** "time.<config>."-prefixed observer for pass timers. */
    const obs::Observer *timed = nullptr;
    /** Per-procedure budget view (null when unbudgeted/quarantined). */
    const ResourceBudget *budget = nullptr;
    /** Stage-boundary fault-injection hook (empty = no injector).
     *  Backends query it at the same boundaries a real failure could
     *  occur, so injected and organic failures take identical paths. */
    std::function<Status(const char *stage)> inject;

    /** Query the injection hook; OK when no injector is attached. */
    Status
    injectAt(const char *stage) const
    {
        return inject ? inject(stage) : Status();
    }
};

/** Counters a transform stage may fill; unused members stay zero and
 *  cost nothing (the pipeline only reports a family's own counters). */
struct TransformStats
{
    form::FormStats form;
    sched::GcmStats gcm;
};

/**
 * One scheduling backend.  Plain data plus free-function hooks so a
 * registration is a braced literal; see backend.cpp for the built-ins.
 */
struct BackendDesc
{
    /**
     * Per-procedure transform entry point (the chain head before
     * compact -> regalloc), per stages.hpp: transforms @c prog's
     * procedure @c proc in place and returns a Status — non-OK sends
     * the procedure through the quarantine path, which restores its
     * original body.  @c failedStage names the stage boundary to
     * attribute a failure to (preset to transformLabel; the hook
     * updates it as it crosses internal boundaries).  Null = no
     * transform stage at all (the BB baseline).
     */
    using TransformFn = Status (*)(ir::Program &prog, ir::ProcId proc,
                                   const TransformContext &ctx,
                                   TransformStats &stats,
                                   const char **failedStage);
    /** Fold the backend's own knob fields into a stage-cache key. */
    using KnobsHashFn = void (*)(KeyHasher &h,
                                 const PipelineOptions &opt);

    SchedConfig config = SchedConfig::BB;
    /** Stable display/parse name, e.g. "P4e"; also cache-key material. */
    const char *name = "";
    /** One-line description for --help and docs. */
    const char *summary = "";
    /** Consumes an edge profile (training listener + admission). */
    bool edgeProfile = false;
    /** Consumes a path profile (training listener + admission). */
    bool pathProfile = false;
    /** Forms superblocks (gates the "form.<cfg>.*" counters). */
    bool formsSuperblocks = false;
    /** Runs global code motion (gates the "gcm.<cfg>.*" counters). */
    bool usesGcm = false;
    /** Timing/deadline label of the transform stage ("form", "gcm"). */
    const char *transformLabel = "form";
    TransformFn transform = nullptr;
    KnobsHashFn knobsHash = nullptr;

    /** @name Capability queries — the only sanctioned way to ask what
     *  a configuration needs; raw SchedConfig comparisons outside the
     *  registry are rejected by backend_registry_test's guard. @{ */
    bool needsEdgeProfile() const { return edgeProfile; }
    bool needsPathProfile() const { return pathProfile; }
    bool needsProfile() const { return edgeProfile || pathProfile; }
    bool hasTransform() const { return transform != nullptr; }
    /** @} */
};

/** Descriptor of @p config; panics on an unregistered enumerator. */
const BackendDesc &backendFor(SchedConfig config);

/** Descriptor registered under @p name, or null — the string-keyed
 *  lookup behind every tool's --config parsing. */
const BackendDesc *findBackend(const std::string &name);

/** Every registered backend, in registration order (the built-ins
 *  first: BB, M4, M16, P4, P4e, G4, G4e).  This order is the canonical
 *  config list of `--config all`, the batch sweep and the fuzz
 *  oracle. */
const std::vector<const BackendDesc *> &allBackends();

/**
 * Register an out-of-tree backend.  The name and config enumerator
 * must both be unused (panics otherwise).  Not thread-safe against
 * concurrent lookups: register during startup, before pipelines run.
 */
void registerBackend(const BackendDesc &desc);

} // namespace pathsched::pipeline

#endif // PATHSCHED_PIPELINE_BACKEND_HPP
