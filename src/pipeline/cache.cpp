#include "pipeline/cache.hpp"

#include <cstdio>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "profile/serialize.hpp"
#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::pipeline {

namespace {

constexpr uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr char kMagic[4] = {'P', 'S', 'C', '1'};

/** @name Fixed-width little-endian encoding
 *  @{
 */
void
putU8(std::string &out, uint8_t v)
{
    out.push_back(char(v));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(char((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(char((v >> (8 * i)) & 0xff));
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, uint32_t(s.size()));
    out.append(s);
}

bool
getU8(const std::string &in, size_t &pos, uint8_t &v)
{
    if (pos + 1 > in.size())
        return false;
    v = uint8_t(in[pos++]);
    return true;
}

bool
getU32(const std::string &in, size_t &pos, uint32_t &v)
{
    if (pos + 4 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= uint32_t(uint8_t(in[pos++])) << (8 * i);
    return true;
}

bool
getU64(const std::string &in, size_t &pos, uint64_t &v)
{
    if (pos + 8 > in.size())
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= uint64_t(uint8_t(in[pos++])) << (8 * i);
    return true;
}

bool
getStr(const std::string &in, size_t &pos, std::string &s)
{
    uint32_t len = 0;
    if (!getU32(in, pos, len) || pos + len > in.size())
        return false;
    s.assign(in, pos, len);
    pos += len;
    return true;
}
/** @} */

/** Anything counted can, in principle, exceed memory when the file is
 *  garbage; cap element counts at something no real procedure hits so
 *  a corrupt length field cannot drive a giant allocation. */
constexpr uint32_t kMaxCount = 1u << 24;

} // namespace

KeyHasher &
KeyHasher::bytes(const void *data, size_t size)
{
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < size; ++i) {
        lo_ = (lo_ ^ p[i]) * kFnvPrime;
        hi_ = (hi_ ^ p[i]) * kFnvPrime;
        // Decorrelate the streams: without this they differ only by
        // their bases and would collide together.
        hi_ ^= hi_ >> 29;
    }
    return *this;
}

KeyHasher &
KeyHasher::u64(uint64_t v)
{
    uint8_t buf[8];
    for (int i = 0; i < 8; ++i)
        buf[i] = uint8_t((v >> (8 * i)) & 0xff);
    return bytes(buf, sizeof buf);
}

KeyHasher &
KeyHasher::str(const std::string &s)
{
    u64(s.size());
    return bytes(s.data(), s.size());
}

void
serializeProcedure(const ir::Procedure &proc, std::string &out)
{
    putStr(out, proc.name);
    putU32(out, proc.id);
    putU32(out, proc.numParams);
    putU32(out, proc.numRegs);
    putU32(out, uint32_t(proc.blocks.size()));
    for (const auto &bb : proc.blocks) {
        putU32(out, uint32_t(bb.instrs.size()));
        for (const auto &ins : bb.instrs) {
            putU8(out, uint8_t(ins.op));
            putU8(out, ins.useImm ? 1 : 0);
            putU32(out, ins.dst);
            putU32(out, ins.src1);
            putU32(out, ins.src2);
            putU64(out, uint64_t(ins.imm));
            putU32(out, ins.target0);
            putU32(out, ins.target1);
            putU32(out, ins.callee);
            putU32(out, uint32_t(ins.args.size()));
            for (ir::RegId a : ins.args)
                putU32(out, a);
        }
    }
    putU32(out, uint32_t(proc.schedules.size()));
    for (const auto &sch : proc.schedules) {
        putU8(out, sch.valid ? 1 : 0);
        putU32(out, sch.numCycles);
        putU32(out, uint32_t(sch.cycleOf.size()));
        for (uint32_t c : sch.cycleOf)
            putU32(out, c);
    }
    putU32(out, uint32_t(proc.superblocks.size()));
    for (const auto &sb : proc.superblocks) {
        putU8(out, sb.isSuperblock ? 1 : 0);
        putU8(out, sb.isLoop ? 1 : 0);
        putU32(out, sb.numSrcBlocks);
        putU32(out, uint32_t(sb.srcOrdinalOf.size()));
        for (uint32_t o : sb.srcOrdinalOf)
            putU32(out, o);
    }
}

bool
deserializeProcedure(const std::string &in, size_t &pos,
                     ir::Procedure &out)
{
    out = ir::Procedure();
    uint32_t nblocks = 0;
    if (!getStr(in, pos, out.name) || !getU32(in, pos, out.id) ||
        !getU32(in, pos, out.numParams) ||
        !getU32(in, pos, out.numRegs) || !getU32(in, pos, nblocks) ||
        nblocks > kMaxCount)
        return false;
    out.blocks.resize(nblocks);
    for (auto &bb : out.blocks) {
        uint32_t ninstrs = 0;
        if (!getU32(in, pos, ninstrs) || ninstrs > kMaxCount)
            return false;
        bb.instrs.resize(ninstrs);
        for (auto &ins : bb.instrs) {
            uint8_t op = 0, use_imm = 0;
            uint64_t imm = 0;
            uint32_t nargs = 0;
            if (!getU8(in, pos, op) || op >= ir::kNumOpcodes ||
                !getU8(in, pos, use_imm) || !getU32(in, pos, ins.dst) ||
                !getU32(in, pos, ins.src1) ||
                !getU32(in, pos, ins.src2) || !getU64(in, pos, imm) ||
                !getU32(in, pos, ins.target0) ||
                !getU32(in, pos, ins.target1) ||
                !getU32(in, pos, ins.callee) ||
                !getU32(in, pos, nargs) || nargs > kMaxCount)
                return false;
            ins.op = ir::Opcode(op);
            ins.useImm = use_imm != 0;
            ins.imm = int64_t(imm);
            ins.args.resize(nargs);
            for (ir::RegId &a : ins.args) {
                if (!getU32(in, pos, a))
                    return false;
            }
        }
    }
    uint32_t nsched = 0;
    if (!getU32(in, pos, nsched) || nsched > kMaxCount)
        return false;
    out.schedules.resize(nsched);
    for (auto &sch : out.schedules) {
        uint8_t valid = 0;
        uint32_t ncycles = 0;
        if (!getU8(in, pos, valid) || !getU32(in, pos, sch.numCycles) ||
            !getU32(in, pos, ncycles) || ncycles > kMaxCount)
            return false;
        sch.valid = valid != 0;
        sch.cycleOf.resize(ncycles);
        for (uint32_t &c : sch.cycleOf) {
            if (!getU32(in, pos, c))
                return false;
        }
    }
    uint32_t nsb = 0;
    if (!getU32(in, pos, nsb) || nsb > kMaxCount)
        return false;
    out.superblocks.resize(nsb);
    for (auto &sb : out.superblocks) {
        uint8_t is_sb = 0, is_loop = 0;
        uint32_t nord = 0;
        if (!getU8(in, pos, is_sb) || !getU8(in, pos, is_loop) ||
            !getU32(in, pos, sb.numSrcBlocks) ||
            !getU32(in, pos, nord) || nord > kMaxCount)
            return false;
        sb.isSuperblock = is_sb != 0;
        sb.isLoop = is_loop != 0;
        sb.srcOrdinalOf.resize(nord);
        for (uint32_t &o : sb.srcOrdinalOf) {
            if (!getU32(in, pos, o))
                return false;
        }
    }
    return true;
}

uint64_t
hashMachineModel(const machine::MachineModel &mm)
{
    std::string buf;
    putU32(buf, mm.issueWidth);
    putU32(buf, mm.controlPerCycle);
    putU32(buf, mm.numRegs);
    for (uint32_t l : mm.latency)
        putU32(buf, l);
    return profile::fnv1a64(buf.data(), buf.size());
}

namespace {

/** Entry payload (everything between the key header and the trailing
 *  checksum), shared by the disk writer and reader. */
void
serializeEntry(const StageCache::Entry &e, std::string &out)
{
    serializeProcedure(e.proc, out);
    putU64(out, e.spillSlots);
    putU64(out, e.form.tracesSelected);
    putU64(out, e.form.multiBlockTraces);
    putU64(out, e.form.superblocksFormed);
    putU64(out, e.form.enlargedSuperblocks);
    putU64(out, e.form.blocksDuplicated);
    putU64(out, e.form.unreachableRemoved);
    putU64(out, e.gcm.candidates);
    putU64(out, e.gcm.hoisted);
    putU64(out, e.gcm.loopHoisted);
    putU64(out, e.gcm.latencyHoisted);
    putU64(out, e.compact.opt.copiesPropagated);
    putU64(out, e.compact.opt.constantsFolded);
    putU64(out, e.compact.opt.chainsFolded);
    putU64(out, e.compact.opt.deadRemoved);
    putU64(out, e.compact.rename.defsRenamed);
    putU64(out, e.compact.rename.stubsCreated);
    putU64(out, e.compact.rename.copiesInserted);
    putU64(out, e.compact.sched.blocksScheduled);
    putU64(out, e.compact.sched.loadsSpeculated);
    putU64(out, e.compact.sched.totalCycles);
    putU64(out, e.alloc.procsAllocated);
    putU64(out, e.alloc.procsSkipped);
    putU64(out, e.alloc.regsSpilled);
    putU32(out, e.alloc.maxPressure);
}

bool
deserializeEntry(const std::string &in, size_t &pos,
                 StageCache::Entry &e)
{
    return deserializeProcedure(in, pos, e.proc) &&
           getU64(in, pos, e.spillSlots) &&
           getU64(in, pos, e.form.tracesSelected) &&
           getU64(in, pos, e.form.multiBlockTraces) &&
           getU64(in, pos, e.form.superblocksFormed) &&
           getU64(in, pos, e.form.enlargedSuperblocks) &&
           getU64(in, pos, e.form.blocksDuplicated) &&
           getU64(in, pos, e.form.unreachableRemoved) &&
           getU64(in, pos, e.gcm.candidates) &&
           getU64(in, pos, e.gcm.hoisted) &&
           getU64(in, pos, e.gcm.loopHoisted) &&
           getU64(in, pos, e.gcm.latencyHoisted) &&
           getU64(in, pos, e.compact.opt.copiesPropagated) &&
           getU64(in, pos, e.compact.opt.constantsFolded) &&
           getU64(in, pos, e.compact.opt.chainsFolded) &&
           getU64(in, pos, e.compact.opt.deadRemoved) &&
           getU64(in, pos, e.compact.rename.defsRenamed) &&
           getU64(in, pos, e.compact.rename.stubsCreated) &&
           getU64(in, pos, e.compact.rename.copiesInserted) &&
           getU64(in, pos, e.compact.sched.blocksScheduled) &&
           getU64(in, pos, e.compact.sched.loadsSpeculated) &&
           getU64(in, pos, e.compact.sched.totalCycles) &&
           getU64(in, pos, e.alloc.procsAllocated) &&
           getU64(in, pos, e.alloc.procsSkipped) &&
           getU64(in, pos, e.alloc.regsSpilled) &&
           getU32(in, pos, e.alloc.maxPressure);
}

} // namespace

StageCache::StageCache(std::string dir, Vio *vio)
    : dir_(std::move(dir)),
      vio_(vio != nullptr ? vio : &Vio::system())
{}

std::string
StageCache::filePath(const CacheKey &key) const
{
    return strfmt("%s/%016llx%016llx.psc", dir_.c_str(),
                  (unsigned long long)key.lo,
                  (unsigned long long)key.hi);
}

bool
StageCache::lookup(const CacheKey &key, Entry &out)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            ++stats_.hits;
            out = it->second;
            return true;
        }
    }
    bool diskOk;
    {
        std::lock_guard<std::mutex> lk(mu_);
        diskOk = !dir_.empty() && !disk_disabled_;
    }
    if (diskOk) {
        // Disk tier: any failure below — unreadable, short, bad magic,
        // wrong key (hash collision in the file name), bad checksum,
        // malformed payload — is a plain miss, never an error.
        std::ifstream f(filePath(key), std::ios::binary);
        if (f) {
            std::string blob((std::istreambuf_iterator<char>(f)),
                             std::istreambuf_iterator<char>());
            size_t pos = 0;
            uint64_t lo = 0, hi = 0, crc = 0;
            Entry e;
            const bool header_ok =
                blob.size() > sizeof kMagic + 24 &&
                blob.compare(0, sizeof kMagic, kMagic,
                             sizeof kMagic) == 0 &&
                (pos = sizeof kMagic, getU64(blob, pos, lo)) &&
                getU64(blob, pos, hi) && lo == key.lo && hi == key.hi;
            bool ok = false;
            if (header_ok) {
                const size_t payload_at = pos;
                ok = deserializeEntry(blob, pos, e) &&
                     getU64(blob, pos, crc) && pos == blob.size() &&
                     crc == profile::fnv1a64(blob.data() + payload_at,
                                             pos - 8 - payload_at);
            }
            std::lock_guard<std::mutex> lk(mu_);
            if (ok) {
                ++stats_.hits;
                ++stats_.diskHits;
                out = e;
                map_.emplace(key, std::move(e));
                return true;
            }
            ++stats_.corrupt;
        }
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    return false;
}

void
StageCache::insert(const CacheKey &key, const Entry &entry)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.stores;
        map_[key] = entry;
        if (dir_.empty() || disk_disabled_)
            return;
    }
    std::string blob(kMagic, sizeof kMagic);
    putU64(blob, key.lo);
    putU64(blob, key.hi);
    const size_t payload_at = blob.size();
    serializeEntry(entry, blob);
    putU64(blob, profile::fnv1a64(blob.data() + payload_at,
                                  blob.size() - payload_at));
    // Write-then-rename so a concurrent reader only ever sees either
    // no file or a complete one (the checksum catches the rest).  No
    // per-entry fsync: a torn entry after a crash just fails its
    // checksum and reads as a miss.
    const std::string path = filePath(key);
    const std::string tmp =
        strfmt("%s.tmp.%d", path.c_str(), int(getpid()));
    Status st;
    {
        Expected<int> fd = vio_->openFile(
            "cache", tmp, O_WRONLY | O_CREAT | O_TRUNC);
        if (!fd.ok()) {
            st = fd.status();
        } else {
            st = vio_->writeAll("cache", fd.value(), blob.data(),
                                blob.size(), tmp);
            Status cl = vio_->closeFile("cache", fd.value(), tmp);
            if (st.ok())
                st = cl;
        }
    }
    if (st.ok())
        st = vio_->renameFile("cache", tmp, path);
    if (!st.ok()) {
        // One fault sidelines the whole disk tier for the rest of the
        // run: a sick disk must not be probed on every insert, and the
        // memory tier keeps the run's output bit-identical.
        std::remove(tmp.c_str());
        warn("stage cache: %s; disk tier disabled for this run",
             st.message().c_str());
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.diskFailures;
        disk_disabled_ = true;
    }
}

bool
StageCache::diskDisabled() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return disk_disabled_;
}

StageCacheStats
StageCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

} // namespace pathsched::pipeline
