#include "pipeline/executor.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "support/logging.hpp"

namespace pathsched::pipeline {

const char *
execPolicyName(ExecPolicy policy)
{
    switch (policy) {
      case ExecPolicy::Static: return "static";
      case ExecPolicy::Dynamic: return "dynamic";
      case ExecPolicy::Steal: return "steal";
    }
    return "<bad>";
}

bool
parseExecPolicy(const std::string &name, ExecPolicy &out)
{
    if (name == "static") {
        out = ExecPolicy::Static;
    } else if (name == "dynamic") {
        out = ExecPolicy::Dynamic;
    } else if (name == "steal") {
        out = ExecPolicy::Steal;
    } else {
        return false;
    }
    return true;
}

size_t
TaskGraph::add(Fn fn, const std::vector<size_t> &deps, int affinity)
{
    const size_t id = nodes_.size();
    Node node;
    node.fn = std::move(fn);
    node.affinity = affinity;
    for (size_t d : deps) {
        ps_assert_msg(d < id,
                      "TaskGraph: node %zu depends on not-yet-added "
                      "node %zu",
                      id, d);
        nodes_[d].succs.push_back(id);
        ++node.preds;
    }
    nodes_.push_back(std::move(node));
    return id;
}

Executor::Executor(unsigned threads, ExecPolicy policy)
    : threads_(threads == 0 ? hardwareThreads() : threads),
      policy_(policy)
{}

unsigned
Executor::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

namespace {

/** Everything the worker threads share, guarded by one mutex. */
struct RunState
{
    std::mutex mu;
    std::condition_variable cv;
    std::vector<uint32_t> preds;
    /** Per-worker ready deques (steal) or one shared deque at index 0
     *  (dynamic).  Unused by static. */
    std::vector<std::deque<size_t>> ready;
    /** Static policy: every node id pre-assigned to a worker, in graph
     *  order, plus a ran-flag per node. */
    std::vector<std::vector<size_t>> assigned;
    std::vector<uint8_t> ran;
    size_t done = 0;
    uint64_t steals = 0;
};

} // namespace

ExecStats
Executor::run(TaskGraph &graph)
{
    ExecStats stats;
    stats.policy = policy_;
    const size_t n = graph.nodes_.size();
    stats.threads =
        threads_ <= 1
            ? 1
            : unsigned(std::min<size_t>(threads_, std::max<size_t>(n, 1)));
    if (n == 0)
        return stats;

    std::vector<uint32_t> preds(n);
    for (size_t i = 0; i < n; ++i)
        preds[i] = graph.nodes_[i].preds;

    if (stats.threads == 1) {
        // Inline, ready-FIFO: for a stage-major graph this replays the
        // historical serial loop order exactly, on the calling thread.
        std::deque<size_t> ready;
        for (size_t i = 0; i < n; ++i) {
            if (preds[i] == 0)
                ready.push_back(i);
        }
        while (!ready.empty()) {
            const size_t id = ready.front();
            ready.pop_front();
            TaskGraph::Node &node = graph.nodes_[id];
            node.fn();
            node.fn = nullptr;
            ++stats.tasks;
            for (size_t s : node.succs) {
                if (--preds[s] == 0)
                    ready.push_back(s);
            }
        }
        ps_assert_msg(stats.tasks == n,
                      "TaskGraph: cycle — only %llu of %zu nodes ran",
                      (unsigned long long)stats.tasks, n);
        return stats;
    }

    const unsigned T = stats.threads;
    RunState rs;
    rs.preds = std::move(preds);
    const auto homeOf = [&](size_t id) -> unsigned {
        const int a = graph.nodes_[id].affinity;
        return unsigned(a >= 0 ? size_t(a) : id) % T;
    };

    switch (policy_) {
      case ExecPolicy::Static:
        rs.assigned.resize(T);
        rs.ran.assign(n, 0);
        for (size_t i = 0; i < n; ++i)
            rs.assigned[homeOf(i)].push_back(i);
        break;
      case ExecPolicy::Dynamic:
        rs.ready.resize(1);
        for (size_t i = 0; i < n; ++i) {
            if (rs.preds[i] == 0)
                rs.ready[0].push_back(i);
        }
        break;
      case ExecPolicy::Steal:
        rs.ready.resize(T);
        for (size_t i = 0; i < n; ++i) {
            if (rs.preds[i] == 0)
                rs.ready[homeOf(i)].push_back(i);
        }
        break;
    }

    // Claim one runnable node for worker @p w, or n for "none".
    // Callers hold rs.mu.
    const auto claim = [&](unsigned w, bool &stole) -> size_t {
        stole = false;
        switch (policy_) {
          case ExecPolicy::Static:
            // First not-yet-run node of w's own list whose deps are
            // satisfied.  Skipping past a blocked head keeps the
            // assignment static (no work moves between workers) while
            // staying deadlock-free for any DAG shape.
            for (size_t id : rs.assigned[w]) {
                if (!rs.ran[id] && rs.preds[id] == 0) {
                    rs.ran[id] = 1;
                    return id;
                }
            }
            return n;
          case ExecPolicy::Dynamic:
            if (rs.ready[0].empty())
                return n;
            {
                const size_t id = rs.ready[0].front();
                rs.ready[0].pop_front();
                return id;
            }
          case ExecPolicy::Steal:
            if (!rs.ready[w].empty()) {
                const size_t id = rs.ready[w].front();
                rs.ready[w].pop_front();
                return id;
            }
            for (unsigned k = 1; k < T; ++k) {
                const unsigned v = (w + k) % T;
                if (!rs.ready[v].empty()) {
                    const size_t id = rs.ready[v].back();
                    rs.ready[v].pop_back();
                    stole = true;
                    return id;
                }
            }
            return n;
        }
        return n;
    };

    std::vector<uint64_t> tasks_per(T, 0);
    auto worker = [&](unsigned w) {
        std::unique_lock<std::mutex> lk(rs.mu);
        for (;;) {
            size_t id = n;
            bool stole = false;
            rs.cv.wait(lk, [&] {
                if (rs.done == n)
                    return true;
                id = claim(w, stole);
                return id != n;
            });
            if (id == n)
                return; // all done
            if (stole)
                ++rs.steals;
            lk.unlock();
            TaskGraph::Node &node = graph.nodes_[id];
            node.fn();
            node.fn = nullptr;
            ++tasks_per[w];
            lk.lock();
            ++rs.done;
            for (size_t s : node.succs) {
                if (--rs.preds[s] == 0) {
                    // A freshly unblocked node: under steal it lands on
                    // the *front* of the unblocking worker's deque, so
                    // one procedure's stage chain runs back to back on
                    // one worker unless somebody steals it.
                    if (policy_ == ExecPolicy::Dynamic)
                        rs.ready[0].push_back(s);
                    else if (policy_ == ExecPolicy::Steal)
                        rs.ready[w].push_front(s);
                }
            }
            rs.cv.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(T);
    for (unsigned w = 0; w < T; ++w)
        pool.emplace_back(worker, w);
    for (auto &t : pool)
        t.join();

    for (uint64_t c : tasks_per)
        stats.tasks += c;
    stats.steals = rs.steals;
    ps_assert_msg(stats.tasks == n,
                  "TaskGraph: cycle — only %llu of %zu nodes ran",
                  (unsigned long long)stats.tasks, n);
    return stats;
}

} // namespace pathsched::pipeline
