/**
 * @file
 * Memoized stage cache: fingerprint-keyed reuse of transformed
 * procedures.
 *
 * Profile-driven pipelines are rerun constantly with mostly-unchanged
 * inputs — a batch sweep over configs × workloads reschedules the same
 * procedures again and again.  StageCache memoizes the expensive part:
 * the per-procedure transform chain (form → compact → regalloc), keyed
 * by everything that can influence its output:
 *
 *  - the structural CFG fingerprint (profile::cfgFingerprint) *and* a
 *    content hash of the procedure's canonical binary serialization
 *    (the fingerprint alone ignores instruction payloads);
 *  - a content hash of the profile slice driving formation for that
 *    procedure (edge records or path windows, combined commutatively
 *    so unordered-map iteration order cannot leak into the key);
 *  - the scheduling backend (its registry name plus whatever knobs its
 *    knobsHash hook folds in) and the machine model hash.
 *
 * A hit restores the post-regalloc procedure body along with the
 * per-procedure stage counters and spill-slot count, so a warm run
 * reports the same statistics as a cold one.  Cached bodies keep their
 * spill offsets *sentinel-relative* (regalloc::kSpillSlotBase): the
 * executor rebases them in procedure-id order at its serial join,
 * which is what makes a cached body position-independent — it can be
 * reused in a run where other procedures spilled differently.
 *
 * The cache is two-tier: an in-memory map (always) and an optional
 * on-disk directory (--cache-dir) holding one checksummed binary file
 * per key, so separate processes of a batch sweep can share work.  A
 * torn, truncated or corrupted file fails its checksum and is treated
 * as a miss — admission control for cache entries; a stale entry
 * cannot exist because the key covers every input.
 *
 * Thread safety: lookup/insert are mutex-guarded and safe to call from
 * concurrent executor tasks.
 */

#ifndef PATHSCHED_PIPELINE_CACHE_HPP
#define PATHSCHED_PIPELINE_CACHE_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "form/form.hpp"
#include "ir/procedure.hpp"
#include "machine/machine.hpp"
#include "regalloc/linear_scan.hpp"
#include "sched/compact.hpp"
#include "sched/gcm.hpp"
#include "support/vio.hpp"

namespace pathsched::pipeline {

/** 128-bit content key: two independently-seeded FNV-1a streams over
 *  the same input bytes. */
struct CacheKey
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool
    operator==(const CacheKey &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

/**
 * Incremental CacheKey builder.  Feed it the key material (bytes,
 * integers, doubles-as-bit-patterns); every u64() goes through a fixed
 * little-endian encoding so keys are stable across platforms.
 */
class KeyHasher
{
  public:
    KeyHasher &bytes(const void *data, size_t size);
    KeyHasher &u64(uint64_t v);
    KeyHasher &str(const std::string &s);

    CacheKey
    key() const
    {
        return {lo_, hi_};
    }

  private:
    uint64_t lo_ = 0xcbf29ce484222325ULL; ///< FNV-1a offset basis
    uint64_t hi_ = 0x6c62272e07bb0142ULL; ///< independent second basis
};

/** Cumulative counters over the cache's lifetime (may span runs). */
struct StageCacheStats
{
    uint64_t hits = 0;     ///< lookups served (memory or disk)
    uint64_t misses = 0;   ///< lookups that found nothing
    uint64_t diskHits = 0; ///< subset of hits loaded from --cache-dir
    uint64_t stores = 0;   ///< entries inserted
    uint64_t corrupt = 0;  ///< disk entries rejected by the checksum
    uint64_t diskFailures = 0; ///< disk-tier write faults observed
};

/** Two-tier memoization of transformed procedures; see file comment. */
class StageCache
{
  public:
    /** @p dir is the optional on-disk tier; empty = memory only.  The
     *  directory must already exist (the CLI creates it).  Disk writes
     *  go through @p vio under the "cache" label (nullptr = the system
     *  passthrough); the first write fault disables the disk tier for
     *  the rest of the run — the memory tier, and therefore the run's
     *  output, is unaffected. */
    explicit StageCache(std::string dir = "", Vio *vio = nullptr);

    /** Everything a warm run needs to skip one procedure's transform
     *  chain and still report identical results. */
    struct Entry
    {
        /** Post-regalloc body, spill offsets sentinel-relative. */
        ir::Procedure proc;
        /** Local spill slots the body references (rebase input). */
        uint64_t spillSlots = 0;
        form::FormStats form;
        sched::GcmStats gcm;
        sched::CompactStats compact;
        regalloc::AllocStats alloc;
    };

    /** True and fills @p out when @p key is cached (either tier). */
    bool lookup(const CacheKey &key, Entry &out);

    /** Memoize @p entry under @p key (and persist it when a disk tier
     *  is configured — torn writes are defeated by temp-file rename
     *  plus the checksum on read). */
    void insert(const CacheKey &key, const Entry &entry);

    StageCacheStats stats() const;

    /** True once a disk-tier write fault has sidelined the tier. */
    bool diskDisabled() const;

    const std::string &
    dir() const
    {
        return dir_;
    }

  private:
    struct KeyHash
    {
        size_t
        operator()(const CacheKey &k) const
        {
            return size_t(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
        }
    };

    std::string filePath(const CacheKey &key) const;

    std::string dir_;
    Vio *vio_;
    mutable std::mutex mu_;
    std::unordered_map<CacheKey, Entry, KeyHash> map_;
    StageCacheStats stats_;
    bool disk_disabled_ = false;
};

/**
 * Canonical binary serialization of @p proc (fixed-width little-endian
 * fields, every Instruction member included) appended to @p out — the
 * cache's persistence format and the content-hash input for keys.
 */
void serializeProcedure(const ir::Procedure &proc, std::string &out);

/** Inverse of serializeProcedure, reading at @p pos (advanced past the
 *  record).  False on truncated or malformed input, @p out then
 *  unspecified. */
bool deserializeProcedure(const std::string &in, size_t &pos,
                          ir::Procedure &out);

/** Hash of every MachineModel field that can change a schedule. */
uint64_t hashMachineModel(const machine::MachineModel &mm);

} // namespace pathsched::pipeline

#endif // PATHSCHED_PIPELINE_CACHE_HPP
