#include "pipeline/pipeline.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>

#include "analysis/callgraph.hpp"
#include "interp/stats_listener.hpp"
#include "ir/verifier.hpp"
#include "layout/code_layout.hpp"
#include "layout/pettis_hansen.hpp"
#include "pipeline/backend.hpp"
#include "pipeline/cache.hpp"
#include "profile/edge_profile.hpp"
#include "profile/serialize.hpp"
#include "support/logging.hpp"
#include "support/strutil.hpp"

namespace pathsched::pipeline {

double
PipelineResult::totalMs() const
{
    double total = 0;
    for (const auto &s : stages)
        total += s.ms;
    return total;
}

size_t
PipelineResult::budgetDegradations() const
{
    size_t n = 0;
    for (const auto &d : degraded) {
        if (d.kind == ErrorKind::BudgetExceeded ||
            d.kind == ErrorKind::DeadlineExceeded)
            ++n;
    }
    return n;
}

// configName and formConfigFor live in backend.cpp, beside the
// registrations whose descriptors they reflect.

namespace {

/** How far the surviving procedures have progressed when a fallback
 *  runs — the BB fallback must catch the quarantined procedure up to
 *  exactly this point. */
enum class StageReached
{
    Form,      ///< transform stage: nothing else has run yet
    Compact,   ///< compaction has run
    Regalloc,  ///< register allocation has run
    Postsched, ///< postschedule + IR verification have run
};

/** Accumulates the enclosing scope's wall time into a double, so a
 *  stage's total is the sum of its tasks regardless of which worker
 *  ran them. */
class MsAccum
{
  public:
    explicit MsAccum(double &acc)
        : acc_(acc), t0_(std::chrono::steady_clock::now())
    {}
    ~MsAccum()
    {
        acc_ += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0_)
                    .count();
    }

  private:
    double &acc_;
    std::chrono::steady_clock::time_point t0_;
};

/**
 * Everything one procedure's task chain reads and writes exclusively.
 * Workers never share a ProcCtx, which is the whole determinism story:
 * all cross-procedure aggregation happens at the serial joins, in
 * procedure-id order.
 */
struct ProcCtx
{
    /** Backend transform counters (form and/or gcm, per descriptor). */
    TransformStats xf;
    sched::CompactStats compact;
    regalloc::AllocStats alloc;
    sched::ScheduleStats postsched;
    /** Locally-numbered spill slots (rebased at the phase-A join). */
    regalloc::SpillPlan spill;
    /** This procedure's degradations, merged at the join. */
    std::vector<Degradation> degraded;
    /** Multi-threaded runs: a private registry stands in for the
     *  shared one and merges at the join. */
    std::unique_ptr<obs::StatRegistry> ownStats;
    /** "time.<config>."-prefixed observer backing this chain's pass
     *  timers (the real observer when single-threaded). */
    obs::Observer timed;
    double formMs = 0, compactMs = 0, regallocMs = 0, postschedMs = 0;
    bool cacheHit = false;
    bool cacheEligible = false;
    CacheKey key;
    /** Phase B: a failed IR verification, handled serially after the
     *  join (its fallback reallocates spill slots, which is a serial
     *  operation). */
    Status verifyFailure;
};

/** Little-endian FNV-1a over a u64 sequence — the per-record primitive
 *  of the per-procedure profile content hash. */
uint64_t
hashU64s(std::initializer_list<uint64_t> vals)
{
    uint8_t buf[8 * 8];
    size_t n = 0;
    for (uint64_t v : vals) {
        for (int i = 0; i < 8; ++i)
            buf[n++] = uint8_t((v >> (8 * i)) & 0xff);
    }
    return profile::fnv1a64(buf, n);
}

/** Bump when anything about the transform chain's semantics changes,
 *  so stale --cache-dir entries from older builds can never hit.
 *  2: backend-registry key layout (backend name + per-family knobs
 *  hash replace the enum value + flat knob fields), gcm entry stats. */
constexpr uint64_t kCacheSchema = 2;

} // namespace

PipelineResult
runPipeline(const ir::Program &program, const interp::ProgramInput &train,
            const interp::ProgramInput &test, SchedConfig config,
            const PipelineOptions &options)
{
    const PipelineOptions &opt = options;
    const BackendDesc &be = backendFor(config);
    PipelineResult result;
    result.config = config;
    result.name = be.name;
    {
        Status st = ir::verifyStatus(program, ir::VerifyMode::Strict);
        if (!st.ok()) {
            result.status = st;
            return result;
        }
    }

    // Observability: "timed" carries the "time.<config>." prefix for
    // stage stopwatches; counters register as <stage>.<config>.<name>.
    const obs::Observer base = opt.observability.observer != nullptr
                                   ? *opt.observability.observer
                                   : obs::Observer();
    const obs::Observer timed =
        base.withPrefix("time." + result.name + ".");
    const std::string cfg_dot = "." + result.name + ".";
    const bool want_interp_stats =
        opt.observability.interpStats && base.stats != nullptr;

    // Resource governance: null when no budget is set, so the entire
    // budget machinery vanishes and the run is bit-identical to an
    // unbudgeted build.
    const ResourceBudget &bud = opt.robustness.budget;
    const bool budget_active = !bud.unlimited();
    const ResourceBudget *budp = budget_active ? &bud : nullptr;
    result.budgeted = budget_active;

    // Executor setup.  The thread count and policy change only *how*
    // the per-procedure chains are interleaved, never their results.
    unsigned threads = opt.executor.threads;
    if (threads == 0)
        threads = Executor::hardwareThreads();
    const bool parallel = threads > 1;
    StageCache *cache = opt.executor.cache;
    result.exec.threads = threads;
    result.exec.policy = opt.executor.policy;
    result.exec.cacheEnabled = cache != nullptr;

    // --- 1. Training run on the original program: gather profiles and
    //        dynamic call counts for procedure placement. ---
    profile::EdgeProfiler edge_profile(program);
    profile::PathProfiler path_profile(program, opt.pathParams);
    interp::RunResult train_run;
    {
        auto t = timed.time("train");
        interp::InterpOptions iopts;
        iopts.maxSteps = opt.maxSteps;
        iopts.budgetSteps = bud.interpSteps;
        iopts.deadline = bud.deadline;
        iopts.collectCallCounts = true;
        interp::Interpreter interp(program, iopts);
        const bool need_edge = be.needsEdgeProfile();
        const bool need_path = be.needsPathProfile();
        if (need_edge)
            interp.addListener(&edge_profile);
        if (need_path)
            interp.addListener(&path_profile);
        interp::StatsListener istats(base.stats,
                                     "interp" + cfg_dot + "train");
        if (want_interp_stats)
            interp.addListener(&istats);
        train_run = interp.run(train);
        if (want_interp_stats)
            istats.flush();
        if (need_path) {
            path_profile.finalize();
            result.numPaths = path_profile.numPaths();
        }
        t.stop();
        result.stages.push_back({"train", t.elapsedMs()});
    }
    if (train_run.stepLimit) {
        result.status = Status::error(
            ErrorKind::StepLimit,
            strfmt("training run exceeded %llu steps",
                   (unsigned long long)opt.maxSteps));
        return result;
    }
    if (train_run.budgetStop) {
        // The training run executes the *original* program, so there is
        // no procedure to degrade: the budget is simply too small for
        // this workload.
        result.status = Status::error(
            ErrorKind::BudgetExceeded,
            strfmt("training run exceeded the %llu-step budget",
                   (unsigned long long)bud.interpSteps));
        return result;
    }
    if (train_run.deadlineStop) {
        result.status = Status::error(
            ErrorKind::DeadlineExceeded,
            "deadline expired during the training run");
        return result;
    }
    result.trainSteps = train_run.dynInstrs;
    base.addCounter("profile" + cfg_dot + "trainSteps",
                    train_run.dynInstrs);
    base.addCounter("profile" + cfg_dot + "paths", result.numPaths);

    // --- 1b. Profile admission: externally supplied profiles are
    //         loaded, checked and (in Repair mode) degraded per
    //         procedure before they may drive trace selection.  With
    //         no external text this whole block is inert and the run
    //         is bit-identical to a build without the admission layer.
    profile::EdgeProfiler ext_edge(program);
    profile::PathProfiler ext_path(program, opt.pathParams);
    profile::EdgeProfiler proj_edge(program);
    const profile::EdgeProfiler *edge_for_form = &edge_profile;
    const profile::PathProfiler *path_for_form = &path_profile;
    profile::ProfileAudit &audit = result.profileAudit;
    {
        const bool need_edge = be.needsEdgeProfile();
        const bool need_path = be.needsPathProfile();
        profile::ValidateOptions vo;
        vo.mode = opt.profileInput.check;
        vo.flowSlack = opt.profileInput.flowSlack;
        profile::LoadOptions lo;
        lo.lenient =
            opt.profileInput.check == profile::AdmissionMode::Repair;
        // Whole-file rejection: Repair substitutes the internal
        // training profile; Strict and Off fail the run (true).
        auto admitFailed = [&](Status st) -> bool {
            if (opt.profileInput.check ==
                profile::AdmissionMode::Repair) {
                warn("config %s: external profile rejected (%s); "
                     "falling back to the internal training profile",
                     result.name.c_str(), st.toString().c_str());
                audit.enabled = true;
                audit.fileRejected = true;
                audit.fileStatus = std::move(st);
                return false;
            }
            result.status = std::move(st);
            return true;
        };
        if (need_edge && !opt.profileInput.edgeText.empty()) {
            profile::ProfileMeta meta;
            Status st = profile::loadEdgeProfile(
                opt.profileInput.edgeText, ext_edge, meta, lo);
            if (!st.ok()) {
                if (admitFailed(std::move(st)))
                    return result;
            } else {
                st = profile::auditEdgeProfile(program, ext_edge, meta,
                                               vo, audit);
                if (!st.ok()) { // strict mode only
                    result.status = std::move(st);
                    return result;
                }
                edge_for_form = &ext_edge;
            }
        }
        if (need_path && !opt.profileInput.pathText.empty()) {
            profile::ProfileMeta meta;
            Status st = profile::loadPathProfile(
                opt.profileInput.pathText, ext_path, meta, lo);
            if (!st.ok()) {
                if (admitFailed(std::move(st)))
                    return result;
            } else {
                st = profile::auditPathProfile(program, ext_path, meta,
                                               vo, audit, &proj_edge);
                if (!st.ok()) { // strict mode only
                    result.status = std::move(st);
                    return result;
                }
                ext_path.finalize();
                path_for_form = &ext_path;
                result.numPaths = ext_path.numPaths();
            }
        }
        if (audit.enabled) {
            base.addCounter("profile" + cfg_dot + "audit.checked",
                            audit.checked);
            base.addCounter("profile" + cfg_dot + "audit.repaired",
                            audit.repaired);
            base.addCounter("profile" + cfg_dot + "audit.droppedPaths",
                            audit.droppedPaths);
            base.addCounter("profile" + cfg_dot + "audit.staleProcs",
                            audit.staleProcs);
            base.addCounter("robust" + cfg_dot + "profile.repaired",
                            audit.repaired);
            base.addCounter("robust" + cfg_dot + "profile.quarantined",
                            audit.quarantined);
            base.addCounter("robust" + cfg_dot + "profile.stale",
                            audit.staleProcs);
            if (audit.fileRejected)
                base.addCounter(
                    "robust" + cfg_dot + "profile.fileRejected", 1);
        }
    }

    // --- 2. Transform a copy of the program as a task DAG: one chain
    //        of per-procedure stage tasks per procedure, with
    //        per-procedure quarantine (see the file comment). ---
    ir::Program prog = program;
    const size_t num_procs = prog.procs.size();
    std::vector<uint8_t> quarantined(num_procs, 0);

    // Recursion is a property of the caller->callee edge set, which no
    // transform stage changes (formation duplicates call sites but
    // never severs an edge), so it is computed once here and shared
    // read-only across workers — computing it lazily inside regalloc
    // would be a whole-program read racing the other chains.
    std::vector<uint8_t> recursive;
    if (opt.registerAllocate)
        recursive = regalloc::findRecursiveProcs(prog);

    // Stage-boundary fault injection; quarantined procedures are never
    // queried again, so the BB fallback cannot be re-failed.  The
    // injector keeps internal state (fire counts, its RNG), hence the
    // mutex; which *worker* reaches a shared count=/prob= fault first
    // is scheduling-dependent, so only proc-targeted deterministic
    // faults give thread-count-invariant attribution.
    FaultInjector *const faults = opt.robustness.faults;
    std::mutex fault_mu;
    auto inject = [&](const char *stage, ir::ProcId p) -> Status {
        if (faults == nullptr || quarantined[p])
            return Status();
        std::optional<ErrorKind> kind;
        {
            std::lock_guard<std::mutex> lk(fault_mu);
            kind = faults->fire(stage, p);
        }
        if (kind)
            return Status::error(
                *kind, strfmt("injected fault at %s", stage));
        return Status();
    };

    auto noteFailureTo = [&](std::vector<Degradation> &out, ir::ProcId p,
                             const char *stage, const Status &st) {
        quarantined[p] = 1;
        warn("config %s: proc %s failed at %s (%s); degrading to BB",
             result.name.c_str(), program.procs[p].name.c_str(), stage,
             st.toString().c_str());
        out.push_back({p, program.procs[p].name, stage, st.kind(),
                       st.message()});
    };

    // An expired run-wide deadline ends the run with a typed status at
    // the phase join; tasks poll the flag on entry and fall through
    // (the stage that noticed the expiry has already degraded its
    // in-flight procedure by then).
    std::atomic<bool> deadline_hit{false};
    std::mutex deadline_mu;
    Status deadline_status;
    auto deadlineUp = [&](const char *stage) -> bool {
        if (!budget_active)
            return false;
        if (deadline_hit.load(std::memory_order_relaxed))
            return true;
        Status st = deadlineStatus(budp, stage);
        if (st.ok())
            return false;
        {
            std::lock_guard<std::mutex> lk(deadline_mu);
            if (deadline_status.ok())
                deadline_status = std::move(st);
        }
        deadline_hit.store(true, std::memory_order_relaxed);
        return true;
    };
    // Per-procedure budget view: quarantined procedures already run
    // their BB fallback body, which is always budget-free.
    auto budgetFor = [&](ir::ProcId p) -> const ResourceBudget * {
        return quarantined[p] ? nullptr : budp;
    };

    // Per-procedure task state; see ProcCtx.
    std::vector<ProcCtx> ctxs(num_procs);
    for (size_t p = 0; p < num_procs; ++p) {
        if (!parallel) {
            ctxs[p].timed = timed;
        } else if (base.stats != nullptr) {
            ctxs[p].ownStats = std::make_unique<obs::StatRegistry>();
            obs::Observer own;
            own.stats = ctxs[p].ownStats.get();
            ctxs[p].timed =
                own.withPrefix("time." + result.name + ".");
        }
        // else: parallel with no stats sink — ctx.timed stays sinkless.
    }

    // Stage-cache admission: a chain may be memoized only when its
    // result is a pure function of the key — no op/step budgets (a hit
    // would bypass the exhaustion an uncached run records), no armed
    // faults (they misbehave on purpose), no admission action on the
    // procedure (it changes the profile the chain consumes).  A
    // *deadline-only* budget is compatible: expiry is a wall-clock race
    // in any case, degraded procedures are never stored (storeInCache
    // skips quarantined[p]), and a hit only shortens the run — the
    // serving loop relies on this to reschedule under a deadline while
    // still reusing unchanged procedures.
    const bool ops_budgeted =
        budget_active &&
        (bud.formGrowthOps != 0 || bud.compactOps != 0 ||
         bud.regallocOps != 0 || bud.interpSteps != 0);
    const bool cache_usable =
        cache != nullptr && !ops_budgeted && faults == nullptr;
    if (cache_usable) {
        // Per-procedure profile content hash over every profile kind
        // the backend consumes.  Record hashes combine by wrapping
        // addition: the profilers iterate hash maps, whose order must
        // not leak into the key.
        std::vector<uint64_t> prof_hash(num_procs, 0);
        if (be.needsEdgeProfile()) {
            edge_for_form->forEachBlock(
                [&](ir::ProcId p, ir::BlockId b, uint64_t count) {
                    prof_hash[p] += hashU64s({1, b, count});
                });
            edge_for_form->forEachEdge([&](ir::ProcId p, ir::BlockId f,
                                           ir::BlockId t,
                                           uint64_t count) {
                prof_hash[p] += hashU64s({2, f, t, count});
            });
        }
        if (be.needsPathProfile()) {
            path_for_form->forEachPath(
                [&](ir::ProcId p, const std::vector<ir::BlockId> &seq,
                    uint64_t count) {
                    uint64_t h = hashU64s({3, count, seq.size()});
                    for (ir::BlockId b : seq)
                        h = hashU64s({h, b});
                    prof_hash[p] += h;
                });
        }
        const uint64_t machine_hash = hashMachineModel(opt.machine);
        std::string body;
        for (size_t p = 0; p < num_procs; ++p) {
            ProcCtx &ctx = ctxs[p];
            ctx.cacheEligible =
                !audit.enabled || audit.findProc(p) == nullptr;
            if (!ctx.cacheEligible)
                continue;
            body.clear();
            serializeProcedure(program.procs[p], body);
            // Common material first, then the backend's own knobs —
            // each family keys on exactly the knobs it reads.
            KeyHasher h;
            h.u64(kCacheSchema)
                .str(be.name)
                .str(body)
                .u64(profile::cfgFingerprint(program.procs[p]))
                .u64(prof_hash[p])
                .u64(machine_hash)
                .u64(uint64_t(opt.schedPriority))
                .u64(opt.registerAllocate ? 1 : 0)
                .u64(opt.registerAllocate && recursive[p] ? 1 : 0);
            if (be.knobsHash != nullptr)
                be.knobsHash(h, opt);
            ctx.key = h.key();
        }
    }

    // A hit replays the whole transform chain from the cache entry:
    // the post-regalloc body (spill offsets still sentinel-relative)
    // plus the chain's counters.
    auto tryCacheRestore = [&](ProcCtx &ctx, ir::ProcId p) -> bool {
        if (!ctx.cacheEligible)
            return false;
        StageCache::Entry e;
        if (!cache->lookup(ctx.key, e))
            return false;
        prog.procs[p] = std::move(e.proc);
        prog.procs[p].syncSideTables();
        ctx.xf.form = e.form;
        ctx.xf.gcm = e.gcm;
        ctx.compact = e.compact;
        ctx.alloc = e.alloc;
        ctx.spill.slots = e.spillSlots;
        ctx.cacheHit = true;
        return true;
    };
    // Memoize a cleanly-completed chain (a quarantined procedure's body
    // is the fallback's work, not this key's transform).
    auto storeInCache = [&](ProcCtx &ctx, ir::ProcId p) {
        if (!ctx.cacheEligible || ctx.cacheHit || quarantined[p])
            return;
        StageCache::Entry e;
        e.proc = prog.procs[p];
        e.spillSlots = ctx.spill.slots;
        e.form = ctx.xf.form;
        e.gcm = ctx.xf.gcm;
        e.compact = ctx.compact;
        e.alloc = ctx.alloc;
        cache->insert(ctx.key, e);
    };

    // Restore procedure p's original (basic-block) body and re-run the
    // stages its chain already passed — budget- and injection-free,
    // entirely within the chain's own tasks.  A failure here means the
    // always-safe baseline itself is broken, which is an internal bug:
    // abort.
    auto rebuildInChain = [&](ProcCtx &ctx, ir::ProcId p,
                              StageReached reached) {
        auto t = ctx.timed.time("fallback");
        prog.procs[p] = program.procs[p];
        prog.procs[p].syncSideTables();
        ctx.spill.slots = 0; // the restored body references no slots
        Status st = Status();
        sched::CompactOptions fb_opts;
        fb_opts.priority = opt.schedPriority;
        sched::CompactStats fb_compact;
        regalloc::AllocStats fb_alloc;
        if (reached >= StageReached::Compact)
            st = sched::compactProcedure(prog, p, opt.machine, fb_opts,
                                         fb_compact);
        if (st.ok() && reached >= StageReached::Regalloc &&
            opt.registerAllocate) {
            regalloc::AllocOptions ao;
            ao.recursive = &recursive;
            ao.spill = &ctx.spill;
            st = regalloc::allocateProcedure(
                prog, p, opt.machine.numRegs, fb_alloc, ao);
        }
        if (!st.ok())
            panic("BB fallback failed for proc %s: %s",
                  program.procs[p].name.c_str(), st.toString().c_str());
    };

    // --- Phase A: transform -> compact -> regalloc, one chain per
    //     procedure.  Nodes are inserted stage-major so the 1-thread
    //     ready-FIFO order replays the historical serial loops.  The
    //     transform stage is the backend's descriptor entry point —
    //     the pipeline only owns the chain plumbing (quarantine,
    //     cache, budget view, injection hook). ---
    auto transformTask = [&](ir::ProcId p) {
        ProcCtx &ctx = ctxs[p];
        MsAccum acc(ctx.formMs);
        if (deadlineUp(be.transformLabel))
            return;
        const profile::ProcAudit *pa =
            audit.enabled ? audit.findProc(p) : nullptr;
        if (pa && pa->action == profile::ProcAction::Quarantined) {
            // No believable profile data for this procedure: schedule
            // it from the BB baseline.
            noteFailureTo(ctx.degraded, p, "profile",
                          Status::error(pa->kind, pa->message));
            rebuildInChain(ctx, p, StageReached::Form);
            return;
        }
        if (tryCacheRestore(ctx, p))
            return;
        TransformContext tc;
        tc.config = config;
        tc.opt = &opt;
        tc.edge = edge_for_form;
        tc.path = path_for_form;
        tc.projectedEdge = &proj_edge;
        tc.useProjectedEdges =
            pa && pa->action == profile::ProcAction::ProjectedEdges;
        tc.timed = &ctx.timed;
        tc.budget = budgetFor(p);
        if (faults != nullptr)
            tc.inject = [&inject, p](const char *stage) {
                return inject(stage, p);
            };
        const char *stage = be.transformLabel;
        Status st = be.transform(prog, p, tc, ctx.xf, &stage);
        if (!st.ok()) {
            noteFailureTo(ctx.degraded, p, stage, st);
            rebuildInChain(ctx, p, StageReached::Form);
        }
    };

    auto compactTask = [&](ir::ProcId p) {
        ProcCtx &ctx = ctxs[p];
        MsAccum acc(ctx.compactMs);
        if (ctx.cacheHit)
            return;
        if (deadlineUp("compact"))
            return;
        // For transform-less backends (the BB baseline) this is the
        // chain head: the cache lookup lives here.
        if (!be.hasTransform() && tryCacheRestore(ctx, p))
            return;
        sched::CompactOptions copts;
        copts.priority = opt.schedPriority;
        const obs::Observer compact_obs =
            ctx.timed.withPrefix("compact.");
        copts.observer = &compact_obs;
        copts.budget = budgetFor(p);
        Status st = inject("compact", p);
        if (st.ok())
            st = sched::compactProcedure(prog, p, opt.machine, copts,
                                         ctx.compact);
        if (!st.ok()) {
            noteFailureTo(ctx.degraded, p, "compact", st);
            rebuildInChain(ctx, p, StageReached::Compact);
        }
        if (!opt.registerAllocate)
            storeInCache(ctx, p); // chain ends here
    };

    auto regallocTask = [&](ir::ProcId p) {
        ProcCtx &ctx = ctxs[p];
        MsAccum acc(ctx.regallocMs);
        if (ctx.cacheHit)
            return;
        if (deadlineUp("regalloc"))
            return;
        Status st = inject("regalloc", p);
        if (st.ok()) {
            regalloc::AllocOptions ao;
            ao.budget = budgetFor(p);
            ao.recursive = &recursive;
            ao.spill = &ctx.spill;
            st = regalloc::allocateProcedure(
                prog, p, opt.machine.numRegs, ctx.alloc, ao);
        }
        if (!st.ok()) {
            noteFailureTo(ctx.degraded, p, "regalloc", st);
            rebuildInChain(ctx, p, StageReached::Regalloc);
        }
        storeInCache(ctx, p);
    };

    {
        TaskGraph graph;
        std::vector<size_t> prev(num_procs, SIZE_MAX);
        if (be.hasTransform()) {
            for (ir::ProcId p = 0; p < num_procs; ++p)
                prev[p] = graph.add(
                    [&transformTask, p] { transformTask(p); }, {},
                    int(p));
        }
        for (ir::ProcId p = 0; p < num_procs; ++p) {
            const std::vector<size_t> deps =
                prev[p] == SIZE_MAX ? std::vector<size_t>{}
                                    : std::vector<size_t>{prev[p]};
            prev[p] = graph.add([&compactTask, p] { compactTask(p); },
                                deps, int(p));
        }
        if (opt.registerAllocate) {
            for (ir::ProcId p = 0; p < num_procs; ++p)
                prev[p] = graph.add(
                    [&regallocTask, p] { regallocTask(p); }, {prev[p]},
                    int(p));
        }
        Executor ex(threads, opt.executor.policy);
        ExecStats es = ex.run(graph);
        result.exec.tasks += es.tasks;
        result.exec.steals += es.steals;
    }

    // --- Phase A join (serial).  Everything order-sensitive happens
    //     here, in procedure-id order: stat merging, degradation
    //     recording, and spill-slot rebasing. ---
    double form_ms = 0, compact_ms = 0, regalloc_ms = 0;
    for (size_t p = 0; p < num_procs; ++p) {
        ProcCtx &ctx = ctxs[p];
        result.form += ctx.xf.form;
        result.gcm += ctx.xf.gcm;
        result.compact += ctx.compact;
        result.alloc += ctx.alloc;
        for (auto &d : ctx.degraded)
            result.degraded.push_back(std::move(d));
        ctx.degraded.clear();
        if (ctx.cacheHit)
            ++result.exec.cacheHits;
        else if (ctx.cacheEligible)
            ++result.exec.cacheMisses;
        form_ms += ctx.formMs;
        compact_ms += ctx.compactMs;
        regalloc_ms += ctx.regallocMs;
        if (ctx.ownStats != nullptr)
            base.stats->merge(*ctx.ownStats);
    }
    // Rebase every chain's locally-numbered spill slots onto the
    // program's data memory.  Procedure-id order reproduces the
    // historical serial slot addresses for non-degraded runs.
    if (opt.registerAllocate) {
        for (size_t p = 0; p < num_procs; ++p) {
            if (ctxs[p].spill.slots == 0)
                continue;
            regalloc::rebaseSpillSlots(prog.procs[p], prog.memWords);
            prog.memWords += ctxs[p].spill.slots;
        }
    }
    if (deadline_hit.load()) {
        result.status = std::move(deadline_status);
        return result;
    }
    if (be.hasTransform()) {
        result.stages.push_back({be.transformLabel, form_ms});
        timed.addSample(std::string(be.transformLabel) + ".total",
                        form_ms);
    }
    if (be.formsSuperblocks) {
        base.addCounter("form" + cfg_dot + "tracesSelected",
                        result.form.tracesSelected);
        base.addCounter("form" + cfg_dot + "multiBlockTraces",
                        result.form.multiBlockTraces);
        base.addCounter("form" + cfg_dot + "superblocks",
                        result.form.superblocksFormed);
        base.addCounter("form" + cfg_dot + "enlarged",
                        result.form.enlargedSuperblocks);
        base.addCounter("form" + cfg_dot + "blocksDuplicated",
                        result.form.blocksDuplicated);
        base.addCounter("form" + cfg_dot + "unreachableRemoved",
                        result.form.unreachableRemoved);
    }
    if (be.usesGcm) {
        base.addCounter("gcm" + cfg_dot + "candidates",
                        result.gcm.candidates);
        base.addCounter("gcm" + cfg_dot + "hoisted",
                        result.gcm.hoisted);
        base.addCounter("gcm" + cfg_dot + "loopHoisted",
                        result.gcm.loopHoisted);
        base.addCounter("gcm" + cfg_dot + "latencyHoisted",
                        result.gcm.latencyHoisted);
    }
    result.stages.push_back({"compact", compact_ms});
    timed.addSample("compact.total", compact_ms);
    base.addCounter("compact" + cfg_dot + "copiesPropagated",
                    result.compact.opt.copiesPropagated);
    base.addCounter("compact" + cfg_dot + "deadRemoved",
                    result.compact.opt.deadRemoved);
    base.addCounter("compact" + cfg_dot + "defsRenamed",
                    result.compact.rename.defsRenamed);
    base.addCounter("compact" + cfg_dot + "stubsCreated",
                    result.compact.rename.stubsCreated);
    base.addCounter("compact" + cfg_dot + "loadsSpeculated",
                    result.compact.sched.loadsSpeculated);
    if (opt.registerAllocate) {
        result.stages.push_back({"regalloc", regalloc_ms});
        timed.addSample("regalloc", regalloc_ms);
        base.addCounter("alloc" + cfg_dot + "regsSpilled",
                        result.alloc.regsSpilled);
        base.setGauge("alloc" + cfg_dot + "maxPressure",
                      result.alloc.maxPressure);
    }

    // --- Phase B: postschedule -> per-procedure IR verification. ---
    auto postschedTask = [&](ir::ProcId p) {
        ProcCtx &ctx = ctxs[p];
        MsAccum acc(ctx.postschedMs);
        ctx.postsched += sched::scheduleProcedure(
            prog, p, opt.machine, opt.schedPriority);
    };
    auto verifyTask = [&](ir::ProcId p) {
        ProcCtx &ctx = ctxs[p];
        if (deadlineUp("verify"))
            return;
        Status st = inject("verify", p);
        if (st.ok())
            st = ir::verifyProcStatus(prog, p,
                                      ir::VerifyMode::Superblock);
        if (!st.ok())
            ctx.verifyFailure = std::move(st);
    };
    {
        TaskGraph graph;
        std::vector<size_t> prev(num_procs, SIZE_MAX);
        if (opt.registerAllocate) {
            for (ir::ProcId p = 0; p < num_procs; ++p)
                prev[p] = graph.add(
                    [&postschedTask, p] { postschedTask(p); }, {},
                    int(p));
        }
        for (ir::ProcId p = 0; p < num_procs; ++p) {
            const std::vector<size_t> deps =
                prev[p] == SIZE_MAX ? std::vector<size_t>{}
                                    : std::vector<size_t>{prev[p]};
            graph.add([&verifyTask, p] { verifyTask(p); }, deps,
                      int(p));
        }
        Executor ex(threads, opt.executor.policy);
        ExecStats es = ex.run(graph);
        result.exec.tasks += es.tasks;
        result.exec.steals += es.steals;
    }
    if (opt.registerAllocate) {
        // The postschedule replaces the preschedule's cycle counts.
        result.compact.sched = sched::ScheduleStats();
        double postsched_ms = 0;
        for (size_t p = 0; p < num_procs; ++p) {
            result.compact.sched += ctxs[p].postsched;
            postsched_ms += ctxs[p].postschedMs;
        }
        result.stages.push_back({"postsched", postsched_ms});
        timed.addSample("postsched", postsched_ms);
    }
    if (deadline_hit.load()) {
        result.status = std::move(deadline_status);
        return result;
    }

    // Serial-tail fallback: restore procedure p's original body and
    // catch it up past postschedule.  Used by the verification,
    // budget-attribution and output-compare recoveries below, all of
    // which run after the parallel phases — spill slots append
    // directly to the program's data memory here.
    auto rebuildAsBB = [&](ir::ProcId p) {
        auto t = timed.time("fallback");
        prog.procs[p] = program.procs[p];
        prog.procs[p].syncSideTables();
        sched::CompactOptions fb_opts;
        fb_opts.priority = opt.schedPriority;
        sched::CompactStats fb_compact;
        regalloc::AllocStats fb_alloc;
        Status st = sched::compactProcedure(prog, p, opt.machine,
                                            fb_opts, fb_compact);
        if (st.ok() && opt.registerAllocate) {
            st = regalloc::allocateProcedure(
                prog, p, opt.machine.numRegs, fb_alloc);
            if (st.ok())
                sched::scheduleProcedure(prog, p, opt.machine,
                                         opt.schedPriority);
        }
        if (st.ok())
            st = ir::verifyProcStatus(prog, p,
                                      ir::VerifyMode::Superblock);
        if (!st.ok())
            panic("BB fallback failed for proc %s: %s",
                  program.procs[p].name.c_str(), st.toString().c_str());
    };

    // IR-verification fallbacks, procedure-id order (canonical).
    for (ir::ProcId p = 0; p < num_procs; ++p) {
        if (ctxs[p].verifyFailure.ok())
            continue;
        noteFailureTo(result.degraded, p, "verify",
                      ctxs[p].verifyFailure);
        rebuildAsBB(p);
    }

    // --- 5. Procedure placement and address assignment. ---
    // Re-runnable: the output-equivalence fallback lays the program out
    // again after degrading suspects.
    layout::CodeLayout code_layout;
    auto runLayout = [&](const char *stage_name) {
        auto t = timed.time(stage_name);
        if (opt.pettisHansen) {
            analysis::CallGraph cg(prog);
            for (const auto &[edge, count] : train_run.callCounts)
                cg.addWeight(edge.first, edge.second, count);
            code_layout = layout::layoutProgram(
                prog, layout::pettisHansenOrder(cg), opt.blockOrder);
        } else {
            code_layout =
                layout::layoutProgram(prog, {}, opt.blockOrder);
        }
        t.stop();
        result.stages.push_back({stage_name, t.elapsedMs()});
        result.codeBytes = code_layout.totalBytes;
        base.setGauge("layout" + cfg_dot + "codeBytes",
                      double(result.codeBytes));
    };
    runLayout("layout");

    // --- 6. Measured test run of the transformed program (the I-cache
    //        simulation when opt.useICache is set).  Re-runnable, with
    //        a fresh I-cache per attempt so a retry never sees the
    //        first attempt's cache contents. ---
    auto runTest = [&](const char *stage_name) {
        auto t = timed.time(stage_name);
        interp::InterpOptions iopts;
        iopts.maxSteps = opt.maxSteps;
        iopts.budgetSteps = bud.interpSteps;
        iopts.deadline = bud.deadline;
        iopts.codeLayout = &code_layout;
        icache::ICache icache_sim(opt.cacheParams);
        if (opt.useICache)
            iopts.cache = &icache_sim;
        interp::Interpreter interp(prog, iopts);
        interp::StatsListener istats(base.stats,
                                     "interp" + cfg_dot + "test");
        if (want_interp_stats)
            interp.addListener(&istats);
        result.test = interp.run(test);
        if (want_interp_stats)
            istats.flush();
        t.stop();
        result.stages.push_back({stage_name, t.elapsedMs()});
    };
    runTest("test");

    // --- 7. Semantic check against the original program. ---
    interp::RunResult ref;
    {
        auto t = timed.time("verify");
        interp::InterpOptions iopts;
        iopts.maxSteps = opt.maxSteps;
        iopts.budgetSteps = bud.interpSteps;
        iopts.deadline = bud.deadline;
        interp::Interpreter interp(program, iopts);
        ref = interp.run(test);
        t.stop();
        result.stages.push_back({"verify", t.elapsedMs()});
    }
    if (ref.stepLimit) {
        // The *original* program blew the step ceiling on the test
        // input: a user/configuration problem, not a miscompile.
        result.status = Status::error(
            ErrorKind::StepLimit,
            strfmt("reference test run exceeded %llu steps",
                   (unsigned long long)opt.maxSteps));
        return result;
    }
    if (ref.budgetStop) {
        // The original program itself exceeds the step budget, so no
        // amount of degrading can bring the measured run under it.
        result.status = Status::error(
            ErrorKind::BudgetExceeded,
            strfmt("reference test run exceeded the %llu-step budget",
                   (unsigned long long)bud.interpSteps));
        return result;
    }
    if (ref.deadlineStop) {
        result.status = Status::error(
            ErrorKind::DeadlineExceeded,
            "deadline expired during the reference test run");
        return result;
    }

    // A budget-truncated measured run carries a stopProc attribution:
    // degrade that procedure to BB and re-measure.  Bounded — each
    // round quarantines one more procedure, and the reference run has
    // already shown the all-BB limit fits the budget, so attribution
    // running dry (or going in circles) is reported as a typed error,
    // never an abort.
    for (size_t round = 0; result.test.budgetStop ||
                           result.test.deadlineStop;
         ++round) {
        if (result.test.deadlineStop) {
            result.status = Status::error(
                ErrorKind::DeadlineExceeded,
                "deadline expired during the measured test run");
            return result;
        }
        const ir::ProcId sp = result.test.stopProc;
        if (sp == ir::kNoProc || sp >= num_procs || quarantined[sp] ||
            round >= num_procs) {
            result.status = Status::error(
                ErrorKind::BudgetExceeded,
                strfmt("test run exceeded the %llu-step budget even "
                       "after degrading %zu procedures",
                       (unsigned long long)bud.interpSteps,
                       result.degraded.size()));
            return result;
        }
        noteFailureTo(
            result.degraded, sp, "interp",
            Status::error(
                ErrorKind::BudgetExceeded,
                strfmt("test run exceeded the %llu-step budget "
                       "in proc %s",
                       (unsigned long long)bud.interpSteps,
                       program.procs[sp].name.c_str())));
        rebuildAsBB(sp);
        runLayout("layout-retry");
        runTest("test-retry");
    }

    auto matches = [&]() {
        return !result.test.truncated() &&
               ref.output == result.test.output &&
               ref.returnValue == result.test.returnValue;
    };

    // Injected output-compare faults name their suspects (and the
    // error kind to record) directly.
    std::vector<std::pair<ir::ProcId, Status>> suspects;
    for (ir::ProcId p = 0; p < num_procs; ++p) {
        Status st = inject("output-compare", p);
        if (!st.ok())
            suspects.push_back({p, std::move(st)});
    }

    result.outputMatches = matches();
    if (!result.outputMatches || !suspects.empty()) {
        if (suspects.empty()) {
            // A real mismatch carries no attribution: suspect every
            // procedure that is not already running its BB body.
            const bool step_limited = result.test.stepLimit;
            const Status st = Status::error(
                step_limited ? ErrorKind::StepLimit
                             : ErrorKind::OutputMismatch,
                step_limited
                    ? strfmt("test run exceeded %llu steps",
                             (unsigned long long)opt.maxSteps)
                    : strfmt("%zu vs %zu output values, "
                             "return %lld vs %lld",
                             ref.output.size(),
                             result.test.output.size(),
                             (long long)ref.returnValue,
                             (long long)result.test.returnValue));
            for (ir::ProcId p = 0; p < num_procs; ++p) {
                if (!quarantined[p])
                    suspects.push_back({p, st});
            }
        }
        ps_assert_msg(!suspects.empty(),
                      "config %s changed program behaviour with every "
                      "procedure already degraded to BB "
                      "(%zu vs %zu output values, return %lld vs %lld)",
                      result.name.c_str(), ref.output.size(),
                      result.test.output.size(),
                      (long long)ref.returnValue,
                      (long long)result.test.returnValue);
        for (const auto &[p, st] : suspects) {
            noteFailureTo(result.degraded, p, "output-compare", st);
            rebuildAsBB(p);
        }
        // Hyphenated names: "layout.retry" would nest under the
        // "layout" leaf in the stats registry, which forbids that.
        runLayout("layout-retry");
        runTest("test-retry");
        if (result.test.budgetStop || result.test.deadlineStop) {
            // The retry itself ran out of budget: a governance limit,
            // not a miscompile — report it typed instead of asserting.
            result.status = Status::error(
                result.test.deadlineStop ? ErrorKind::DeadlineExceeded
                                         : ErrorKind::BudgetExceeded,
                "resource budget exhausted during the output-compare "
                "retry run");
            return result;
        }
        result.outputMatches = matches();
        ps_assert_msg(result.outputMatches,
                      "config %s changed program behaviour even after "
                      "BB fallback "
                      "(%zu vs %zu output values, return %lld vs %lld)",
                      result.name.c_str(), ref.output.size(),
                      result.test.output.size(),
                      (long long)ref.returnValue,
                      (long long)result.test.returnValue);
    }

    // Test-run counters are recorded once, from the *final* (possibly
    // retried) test run.
    base.addCounter("test" + cfg_dot + "cycles", result.test.cycles);
    base.addCounter("test" + cfg_dot + "instrs", result.test.dynInstrs);
    base.addCounter("test" + cfg_dot + "branches",
                    result.test.dynBranches);
    if (opt.useICache) {
        base.addCounter("test" + cfg_dot + "icacheAccesses",
                        result.test.icacheAccesses);
        base.addCounter("test" + cfg_dot + "icacheMisses",
                        result.test.icacheMisses);
        base.addCounter("test" + cfg_dot + "stallCycles",
                        result.test.stallCycles);
    }

    // --- 8. Robustness and executor accounting. ---
    base.addCounter("robust" + cfg_dot + "degraded",
                    result.degraded.size());
    for (ErrorKind k : kAllErrorKinds) {
        uint64_t n = 0;
        for (const auto &d : result.degraded) {
            if (d.kind == k)
                ++n;
        }
        if (n > 0)
            base.addCounter(
                "robust" + cfg_dot + "errors." + errorKindName(k), n);
    }
    if (budget_active) {
        // Gated on governance being on, so unbudgeted runs register
        // exactly the same stats as before the budget layer existed.
        base.addCounter("robust" + cfg_dot + "budget.exhausted",
                        result.budgetDegradations());
        if (bud.deadline.active())
            base.setGauge("robust" + cfg_dot +
                              "budget.deadlineRemainingMs",
                          double(bud.deadline.remainingMs()));
    }
    // Executor stats vary with the thread count and policy (steals,
    // cache warmth) — consumers comparing runs for determinism must
    // ignore the "executor." subtree, and only it.
    base.addCounter("executor" + cfg_dot + "tasks", result.exec.tasks);
    base.addCounter("executor" + cfg_dot + "steals",
                    result.exec.steals);
    base.setGauge("executor" + cfg_dot + "threads", double(threads));
    if (cache != nullptr) {
        base.addCounter("executor" + cfg_dot + "cacheHits",
                        result.exec.cacheHits);
        base.addCounter("executor" + cfg_dot + "cacheMisses",
                        result.exec.cacheMisses);
    }

    if (opt.keepTransformed)
        result.transformed =
            std::make_shared<ir::Program>(std::move(prog));

    return result;
}

} // namespace pathsched::pipeline
